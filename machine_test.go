package bbb

import (
	"strings"
	"testing"
)

func TestMachineBasicRun(t *testing.T) {
	m := NewMachine(SchemeBBB, Options{Threads: 2})
	if m.Cores() != 2 {
		t.Fatalf("Cores = %d", m.Cores())
	}
	a := m.PAlloc(64)
	b := m.PAlloc(64)
	res := m.RunPrograms(
		func(e Env) { e.Store(a, 8, 111) },
		func(e Env) { e.Store(b, 8, 222) },
	)
	if res.PersistingStores != 2 {
		t.Fatalf("persisting stores = %d", res.PersistingStores)
	}
	// After a completed run the bbPB may still hold the lines; Peek sees
	// the durable image only, so values may or may not be there. Crash
	// machines are the way to assert durability — see below.
}

func TestMachineCrashDurability(t *testing.T) {
	m := NewMachine(SchemeBBB, Options{Threads: 1})
	a := m.PAlloc(64)
	finished, rep := m.RunUntilCrash(1_000_000, func(e Env) {
		e.Store(a, 8, 777)
	})
	if !finished {
		t.Fatal("tiny program did not finish")
	}
	if m.Peek64(a) != 777 {
		t.Fatalf("durable value = %d, want 777", m.Peek64(a))
	}
	if rep.Lines() == 0 {
		t.Fatal("nothing drained")
	}
}

func TestMachinePokeInitialState(t *testing.T) {
	m := NewMachine(SchemeEADR, Options{Threads: 1})
	a := m.PAlloc(64)
	m.Poke(a, []byte{0x2A})
	var loaded uint64
	m.RunPrograms(func(e Env) { loaded = e.Load(a, 8) })
	if loaded != 0x2A {
		t.Fatalf("loaded = %d, want the poked 42", loaded)
	}
}

func TestMachineVolatileBaseNotPersistent(t *testing.T) {
	m := NewMachine(SchemeBBB, Options{Threads: 1})
	v := m.VolatileBase()
	res := m.RunPrograms(func(e Env) { e.Store(v, 8, 5) })
	if res.PersistingStores != 0 {
		t.Fatal("volatile store counted as persisting")
	}
}

func TestMachineCASExposed(t *testing.T) {
	m := NewMachine(SchemeBBB, Options{Threads: 1})
	a := m.PAlloc(64)
	var ok bool
	m.RunUntilCrash(1_000_000, func(e Env) {
		e.Store(a, 8, 1)
		_, ok = e.CompareAndSwap(a, 8, 1, 2)
	})
	if !ok {
		t.Fatal("CAS failed")
	}
	if m.Peek64(a) != 2 {
		t.Fatalf("durable = %d, want 2 (CAS persisted)", m.Peek64(a))
	}
}

func TestMachineWrongProgramCountPanics(t *testing.T) {
	m := NewMachine(SchemeBBB, Options{Threads: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.RunPrograms(func(e Env) {})
}

func TestMachineDumpTrace(t *testing.T) {
	m := NewMachine(SchemeBBB, Options{Threads: 1, TraceCapacity: 64})
	a := m.PAlloc(64)
	m.RunUntilCrash(1_000_000, func(e Env) { e.Store(a, 8, 9) })
	var b strings.Builder
	m.DumpTrace(&b)
	if !strings.Contains(b.String(), "store-commit") {
		t.Fatalf("trace missing store-commit:\n%s", b.String())
	}
}

func TestRunTraced(t *testing.T) {
	var b strings.Builder
	res, err := RunTraced("hashmap", SchemeBBB, scaled(30), &b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles")
	}
	if !strings.Contains(b.String(), "pb-alloc") {
		t.Fatal("trace missing bbPB events")
	}
}
