package workload

import (
	"fmt"

	"bbb/internal/cpu"
	"bbb/internal/memory"
	"bbb/internal/palloc"
	"bbb/internal/system"
)

// Hashmap is the Table IV "hashmap" row: random-key insertions into a
// chained hash table whose buckets and nodes live in the persistent heap.
// Each thread owns a private table (the paper's structure workloads are
// contention-free; the array workloads cover conflicts).
//
// Insert ordering (crash consistent by construction): fully write the node
// — key, value, next, then magic — and only then publish it by storing the
// bucket head. A crash at any prefix leaves the chain intact.
//
// Node layout (one line): [magic, key, val, next].
type Hashmap struct {
	buckets    int
	tableBases []memory.Addr
	arenas     []*palloc.Arena
	threads    int
}

// NewHashmap builds the hashmap workload with the default geometry.
func NewHashmap() *Hashmap { return &Hashmap{buckets: 1024} }

// Name implements Workload.
func (h *Hashmap) Name() string { return "hashmap" }

// Description implements Workload.
func (h *Hashmap) Description() string { return "random insertions into a persistent chained hashmap" }

// PaperPStores implements Workload (Table IV: 6.0%).
func (h *Hashmap) PaperPStores() float64 { return 6.0 }

const (
	offHashMagic = 0
	offHashKey   = 8
	offHashVal   = 16
	offHashNext  = 24
	hashNodeSize = 32
)

func hashKey(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// Setup implements Workload: per-thread bucket arrays zeroed in the image.
func (h *Hashmap) Setup(mem *memory.Memory, arena *palloc.Arena, p Params) {
	h.threads = p.Threads
	h.tableBases = nil
	h.arenas = nil
	for t := 0; t < p.Threads; t++ {
		base := arena.Alloc(uint64(h.buckets) * 8)
		for b := 0; b < h.buckets; b++ {
			poke64(mem, base+memory.Addr(b*8), 0)
		}
		h.tableBases = append(h.tableBases, base)
		h.arenas = append(h.arenas, arena.Sub(uint64(p.OpsPerThread+1)*memory.LineSize))
	}
}

func (h *Hashmap) bucketAddr(t int, b uint64) memory.Addr {
	return h.tableBases[t] + memory.Addr(b*8)
}

// Programs implements Workload.
func (h *Hashmap) Programs(p Params) []system.Program {
	progs := make([]system.Program, p.Threads)
	for t := 0; t < p.Threads; t++ {
		t := t
		progs[t] = func(e cpu.Env) {
			r := rng(p, t)
			for i := 0; i < p.OpsPerThread; i++ {
				key := r.Uint64()
				b := hashKey(key) % uint64(h.buckets)
				bucket := h.bucketAddr(t, b)
				head := cpu.Load64(e, bucket)
				node := h.arenas[t].Alloc(hashNodeSize)
				cpu.Store64(e, node+offHashKey, key)
				cpu.Store64(e, node+offHashVal, uint64(i))
				cpu.Store64(e, node+offHashNext, head)
				cpu.Store64(e, node+offHashMagic, magicHashNode)
				barrier(e, p, node)
				cpu.Store64(e, bucket, node) //bbbvet:commit-store node
				barrier(e, p, bucket)
				volatileWork(e, t, h.volWork(p), r)
			}
		}
	}
	return progs
}

// volWork sets the volatile:persistent store mix; the default lands near
// Table IV's 6.0% P-stores (5 persisting stores per op).
func (h *Hashmap) volWork(p Params) int {
	if p.VolatileWork > 0 {
		return p.VolatileWork
	}
	return 78
}

// Check implements Workload: every reachable node is fully initialized and
// hangs from the bucket its key hashes to.
func (h *Hashmap) Check(mem *memory.Memory) error {
	for t := 0; t < h.threads; t++ {
		for b := 0; b < h.buckets; b++ {
			ptr := peek64(mem, h.bucketAddr(t, uint64(b)))
			steps := 0
			for ptr != 0 {
				a := memory.Addr(ptr)
				if magic := peek64(mem, a+offHashMagic); magic != magicHashNode {
					return fmt.Errorf("hashmap[%d]: bucket %d reaches node %#x with magic %#x (unpersisted node published)", t, b, ptr, magic)
				}
				key := peek64(mem, a+offHashKey)
				if got := hashKey(key) % uint64(h.buckets); got != uint64(b) {
					return fmt.Errorf("hashmap[%d]: node %#x key %#x hashes to bucket %d, found in %d", t, ptr, key, got, b)
				}
				ptr = peek64(mem, a+offHashNext)
				if steps++; steps > 1<<22 {
					return fmt.Errorf("hashmap[%d]: cycle in bucket %d", t, b)
				}
			}
		}
	}
	return nil
}

var _ Workload = (*Hashmap)(nil)
