package workload

// Negative tests: each recovery checker must actually detect a corrupted
// image — a checker that can never fail would make every crash campaign
// vacuously green.

import (
	"strings"
	"testing"

	"bbb/internal/memory"
	"bbb/internal/palloc"
	"bbb/internal/persistency"
)

// buildImage runs the workload to completion under BBB and flushes
// everything durable, returning the machine for image mutation.
func buildImage(t *testing.T, w Workload, p Params) *memory.Memory {
	t.Helper()
	sys, progs := Build(w, persistency.BBB, testConfig(), p)
	defer sys.Shutdown()
	sys.Run(progs)
	sys.Model.CrashDrain(sys.Cores, sys.Hier, sys.NVMM, sys.Mem)
	if err := w.Check(sys.Mem); err != nil {
		t.Fatalf("clean image fails check: %v", err)
	}
	return sys.Mem
}

// corrupt64 overwrites a little-endian word in the image.
func corrupt64(mem *memory.Memory, a memory.Addr, v uint64) {
	b := make([]byte, 8)
	for i := range b {
		b[i] = byte(v >> (8 * uint(i)))
	}
	mem.Poke(a, b)
}

func TestLinkedListCheckerDetectsDanglingHead(t *testing.T) {
	w := NewLinkedList()
	p := testParams(50)
	mem := buildImage(t, w, p)
	// Point a head into the heads line itself, where no node lives (the
	// word there is zero, so the walk finds a zero magic).
	corrupt64(mem, w.head(1), uint64(w.head(1))+16)
	err := w.Check(mem)
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("dangling head not detected: %v", err)
	}
}

func TestLinkedListCheckerDetectsBrokenChainValues(t *testing.T) {
	w := NewLinkedList()
	p := testParams(50)
	mem := buildImage(t, w, p)
	head := peek64(mem, w.head(0))
	corrupt64(mem, memory.Addr(head)+offListVal, 9999)
	if err := w.Check(mem); err == nil {
		t.Fatal("non-consecutive chain values not detected")
	}
}

func TestHashmapCheckerDetectsWrongBucket(t *testing.T) {
	w := NewHashmap()
	p := testParams(60)
	mem := buildImage(t, w, p)
	// Find a non-empty bucket and corrupt its node's key so it no longer
	// hashes there.
	for b := 0; b < w.buckets; b++ {
		ptr := peek64(mem, w.bucketAddr(0, uint64(b)))
		if ptr == 0 {
			continue
		}
		corrupt64(mem, memory.Addr(ptr)+offHashKey, peek64(mem, memory.Addr(ptr)+offHashKey)+1)
		err := w.Check(mem)
		if err == nil || !strings.Contains(err.Error(), "hashes to bucket") {
			t.Fatalf("wrong-bucket key not detected: %v", err)
		}
		return
	}
	t.Fatal("no populated bucket found")
}

func TestHashmapCheckerDetectsUnpersistedNode(t *testing.T) {
	w := NewHashmap()
	p := testParams(60)
	mem := buildImage(t, w, p)
	for b := 0; b < w.buckets; b++ {
		ptr := peek64(mem, w.bucketAddr(0, uint64(b)))
		if ptr == 0 {
			continue
		}
		corrupt64(mem, memory.Addr(ptr)+offHashMagic, 0) // zero magic = never written
		if err := w.Check(mem); err == nil {
			t.Fatal("zeroed node magic not detected")
		}
		return
	}
	t.Fatal("no populated bucket found")
}

func TestCTreeCheckerDetectsPathViolation(t *testing.T) {
	w := NewCTree()
	p := testParams(60)
	mem := buildImage(t, w, p)
	root := memory.Addr(peek64(mem, w.root(0)))
	if peek64(mem, root+offIntMagic) != magicInternal {
		t.Skip("tree too small to have an internal root")
	}
	bit := peek64(mem, root+offIntBit)
	left := memory.Addr(peek64(mem, root+offIntLeft))
	// Force the left subtree's leaf (or first leaf found) to violate the
	// branch bit.
	n := left
	for peek64(mem, n+offIntMagic) == magicInternal {
		n = memory.Addr(peek64(mem, n+offIntLeft))
	}
	key := peek64(mem, n+offLeafKey)
	corrupt64(mem, n+offLeafKey, key|1<<bit) // set the bit the left path forbids
	err := w.Check(mem)
	if err == nil || !strings.Contains(err.Error(), "path bits") {
		t.Fatalf("path-bit violation not detected: %v", err)
	}
}

func TestCTreeCheckerDetectsNilChild(t *testing.T) {
	w := NewCTree()
	p := testParams(60)
	mem := buildImage(t, w, p)
	root := memory.Addr(peek64(mem, w.root(0)))
	if peek64(mem, root+offIntMagic) != magicInternal {
		t.Skip("tree too small")
	}
	corrupt64(mem, root+offIntRight, 0)
	if err := w.Check(mem); err == nil {
		t.Fatal("nil child not detected")
	}
}

func TestRTreeCheckerDetectsEscapedBounds(t *testing.T) {
	w := NewRTree()
	p := testParams(80)
	mem := buildImage(t, w, p)
	root := memory.Addr(peek64(mem, w.root(0)))
	if peek64(mem, root+offRLeaf) == 1 {
		t.Skip("tree too small to have children")
	}
	child := memory.Addr(peek64(mem, root+offREntry))
	// Widen the child beyond the parent: containment violated.
	corrupt64(mem, child+offRHi, peek64(mem, root+offRHi)+1000)
	err := w.Check(mem)
	if err == nil || !strings.Contains(err.Error(), "escapes parent") {
		t.Fatalf("containment violation not detected: %v", err)
	}
}

func TestRTreeCheckerDetectsBadCount(t *testing.T) {
	w := NewRTree()
	p := testParams(80)
	mem := buildImage(t, w, p)
	root := memory.Addr(peek64(mem, w.root(0)))
	corrupt64(mem, root+offRCount, rFanout+5)
	if err := w.Check(mem); err == nil {
		t.Fatal("out-of-range count not detected")
	}
}

func TestArrayCheckerDetectsTornValue(t *testing.T) {
	a := NewArray(OpMutate, false)
	p := testParams(50)
	mem := buildImage(t, a, p)
	corrupt64(mem, a.elem(3), 0xDEAD) // untagged
	err := a.Check(mem)
	if err == nil || !strings.Contains(err.Error(), "untagged") {
		t.Fatalf("torn value not detected: %v", err)
	}
}

func TestArrayCheckerDetectsForeignWriter(t *testing.T) {
	a := NewArray(OpMutate, false)
	p := testParams(50)
	mem := buildImage(t, a, p)
	// Element 0 belongs to thread 0's partition; tag it as thread 3's.
	corrupt64(mem, a.elem(0), encode(3, 1))
	err := a.Check(mem)
	if err == nil || !strings.Contains(err.Error(), "outside its partition") {
		t.Fatalf("foreign writer not detected: %v", err)
	}
}

// Setup on a fresh arena must isolate runs: two sequential Builds of the
// same workload value must not alias state.
func TestSetupIsolatesRuns(t *testing.T) {
	w := NewHashmap()
	p := testParams(30)
	for i := 0; i < 2; i++ {
		sys, progs := Build(w, persistency.BBB, testConfig(), p)
		sys.Run(progs)
		sys.Model.CrashDrain(sys.Cores, sys.Hier, sys.NVMM, sys.Mem)
		if err := w.Check(sys.Mem); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		sys.Shutdown()
	}
}

var _ = palloc.FromLayout // keep the import for helper extensions
