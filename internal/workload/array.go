package workload

import (
	"fmt"

	"bbb/internal/cpu"
	"bbb/internal/memory"
	"bbb/internal/palloc"
	"bbb/internal/system"
)

// ArrayOp selects the array workload's operation (Table IV rows
// mutate[NC/C] and swap[NC/C]).
type ArrayOp int

// The two array operations of Table IV.
const (
	OpMutate ArrayOp = iota
	OpSwap
)

// Array is the Table IV array workload: random mutate or swap operations on
// a persistent element array. The NC ("non-conflicting") variant gives each
// thread a private partition; the C ("conflicting") variant lets every
// thread hit the whole array, producing inter-core block ping-pong and bbPB
// entry migration.
//
// Elements are tagged (tag byte, thread, sequence) so the recovery check
// can tell a validly persisted value from torn garbage. Swap atomicity is
// *not* promised — persist ordering is the paper's scope, not transactions
// — so the swap checker verifies value validity, not permutation-ness.
type Array struct {
	op       ArrayOp
	conflict bool
	elems    int
	base     memory.Addr
	threads  int
}

// NewArray builds an array workload; 8 elements share each cache line,
// exactly the layout that makes mutate/swap generate coalescable persists.
func NewArray(op ArrayOp, conflict bool) *Array {
	return &Array{op: op, conflict: conflict, elems: 1 << 15}
}

// Name implements Workload.
func (a *Array) Name() string {
	n := "mutate"
	if a.op == OpSwap {
		n = "swap"
	}
	if a.conflict {
		return n + "C"
	}
	return n + "NC"
}

// Description implements Workload.
func (a *Array) Description() string {
	verb := "modify"
	if a.op == OpSwap {
		verb = "swap"
	}
	mode := "partitioned"
	if a.conflict {
		mode = "conflicting"
	}
	return fmt.Sprintf("random %s in a persistent array (%s)", verb, mode)
}

// PaperPStores implements Workload (Table IV: 23.8%).
func (a *Array) PaperPStores() float64 { return 23.8 }

const arrayTag = uint64(0xA5) << 56

func encode(thread int, seq uint64) uint64 {
	return arrayTag | uint64(thread&0xFF)<<48 | (seq & 0xFFFF_FFFF_FFFF)
}

func initialVal(idx int) uint64 { return encode(0xFF, uint64(idx)) }

func validVal(v uint64) bool { return v>>56 == 0xA5 }

func (a *Array) elem(i int) memory.Addr { return a.base + memory.Addr(i*8) }

// Setup implements Workload: the array is pre-loaded with tagged initial
// values.
func (a *Array) Setup(mem *memory.Memory, arena *palloc.Arena, p Params) {
	a.threads = p.Threads
	a.base = arena.Alloc(uint64(a.elems) * 8)
	for i := 0; i < a.elems; i++ {
		poke64(mem, a.elem(i), initialVal(i))
	}
}

// pick returns a random element index for thread t under the conflict mode.
func (a *Array) pick(t int, r interface{ Intn(int) int }) int {
	if a.conflict {
		return r.Intn(a.elems)
	}
	part := a.elems / a.threads
	return t*part + r.Intn(part)
}

// Programs implements Workload.
func (a *Array) Programs(p Params) []system.Program {
	progs := make([]system.Program, p.Threads)
	for t := 0; t < p.Threads; t++ {
		t := t
		progs[t] = func(e cpu.Env) {
			r := rng(p, t)
			for i := 0; i < p.OpsPerThread; i++ {
				switch a.op {
				case OpMutate:
					idx := a.pick(t, r)
					cpu.Load64(e, a.elem(idx))
					cpu.Store64(e, a.elem(idx), encode(t, uint64(i)))
					barrier(e, p, a.elem(idx))
				case OpSwap:
					i1 := a.pick(t, r)
					i2 := a.pick(t, r)
					v1 := cpu.Load64(e, a.elem(i1))
					v2 := cpu.Load64(e, a.elem(i2))
					cpu.Store64(e, a.elem(i1), v2)
					cpu.Store64(e, a.elem(i2), v1)
					barrier(e, p, a.elem(i1), a.elem(i2))
				}
				volatileWork(e, t, a.volWork(p), r)
			}
		}
	}
	return progs
}

// volWork targets Table IV's 23.8% P-stores (1-2 persisting stores/op).
func (a *Array) volWork(p Params) int {
	if p.VolatileWork > 0 {
		return p.VolatileWork
	}
	if a.op == OpSwap {
		return 6
	}
	return 3
}

// Check implements Workload: every element must hold a validly tagged value
// — either its initial value or one written by some thread; in NC mode a
// mutate value must come from the partition's owner.
func (a *Array) Check(mem *memory.Memory) error {
	part := a.elems / a.threads
	for i := 0; i < a.elems; i++ {
		v := peek64(mem, a.elem(i))
		if !validVal(v) {
			return fmt.Errorf("array %s: element %d holds untagged value %#x (torn persist)", a.Name(), i, v)
		}
		if a.op == OpMutate && !a.conflict {
			writer := int(v >> 48 & 0xFF)
			if writer != 0xFF && writer != i/part {
				return fmt.Errorf("array %s: element %d written by thread %d outside its partition", a.Name(), i, writer)
			}
		}
	}
	return nil
}

var _ Workload = (*Array)(nil)
