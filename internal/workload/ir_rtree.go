package workload

import (
	"bbb/internal/ir"
	"bbb/internal/memory"
	"bbb/internal/system"
)

const (
	rtI     ir.Reg = iota // op index
	rtOps                 // OpsPerThread
	rtVal                 // inserted value
	rtPC                  // ptrCell address
	rtNd                  // current node address
	rtLo                  // node lo
	rtHi                  // node hi
	rtChg                 // widen changed flag
	rtLeafF               // leaf flag
	rtCount               // entry count
	rtBest                // best child address
	rtBestC               // best child cell address
	rtBCost               // best enlargement cost
	rtJ                   // child scan index
	rtTmp                 // scratch
	rtCell                // child cell address
	rtChild               // child address
	rtCLo                 // child lo
	rtCHi                 // child hi
	rtCost                // enlargement cost
	rtSlot                // append slot base
	rtS0                  // split items occupy rtS0 .. rtS0+6
	rtS1
	rtS2
	rtS3
	rtS4
	rtS5
	rtS6
	rtLB   // leafB address
	rtIN   // new internal node address
	rtLA   // LineAddr(ptrCell)
	rtNode // arena bump: next allocation address
	rtOne  // constant 1
	rtSix  // constant rFanout
	rtMagR // magicRNode
)

// CompiledPrograms implements CompiledWorkload.
func (rt *RTree) CompiledPrograms(p Params) []system.CompiledProgram {
	progs := make([]system.CompiledProgram, p.Threads)
	for t := 0; t < p.Threads; t++ {
		progs[t] = rt.compile(p, t)
	}
	return progs
}

// compile transcribes RTree.insert: widen-before-descend, least-enlargement
// child choice, slot-then-count appends, and the median split — the same
// loads, stores and barriers in the twin's order. Only splits allocate
// (three two-line nodes), so the bump register advances by 3*128 there.
func (rt *RTree) compile(p Params, t int) *ir.Prog {
	em := newEmitter(p, t)
	root := uint64(rt.root(t))
	em.Const(rtOne, 1)
	em.Const(rtSix, rFanout)
	em.Const(rtMagR, magicRNode)
	em.Const(rtNode, uint64(rt.arenas[t].Mark()))
	// One allocation rounds 88 bytes up to two lines.
	const nodeStride = 2 * memory.LineSize
	return em.opLoop(rtI, rtOps, func() {
		em.RandInt63n(rtVal, 1<<40)
		vw := em.NewLabel()

		em.Const(rtPC, root)
		em.Load64(rtNd, rtPC, 0)
		desc, descDone := em.NewLabel(), em.NewLabel()
		em.Bind(desc)

		// widen: grow [lo, hi] to include val, barrier only when changed.
		em.Load64(rtLo, rtNd, offRLo)
		em.Load64(rtHi, rtNd, offRHi)
		em.Const(rtChg, 0)
		empty, widened := em.NewLabel(), em.NewLabel()
		em.BltU(rtHi, rtLo, empty) // lo > hi: empty interval
		skipLo := em.NewLabel()
		em.BgeU(rtVal, rtLo, skipLo)
		em.Store64(rtVal, rtNd, offRLo)
		em.Const(rtChg, 1)
		em.Bind(skipLo)
		skipHi := em.NewLabel()
		em.BgeU(rtHi, rtVal, skipHi)
		em.Store64(rtVal, rtNd, offRHi)
		em.Const(rtChg, 1)
		em.Bind(skipHi)
		em.Jmp(widened)
		em.Bind(empty)
		em.Store64(rtVal, rtNd, offRLo)
		em.Store64(rtVal, rtNd, offRHi)
		em.Const(rtChg, 1)
		em.Bind(widened)
		if !p.NoBarriers {
			skipB := em.NewLabel()
			em.Beq(rtChg, regZero, skipB)
			em.BarrierAddr(rtNd, 0)
			em.Barrier()
			em.Bind(skipB)
		}

		em.Load64(rtLeafF, rtNd, offRLeaf)
		em.Beq(rtLeafF, rtOne, descDone)

		// Internal: pick the child needing the least enlargement.
		em.Load64(rtCount, rtNd, offRCount)
		em.Const(rtBest, 0)
		em.Const(rtBestC, 0)
		em.Const(rtBCost, ^uint64(0))
		em.Const(rtJ, 0)
		child, childDone := em.NewLabel(), em.NewLabel()
		em.Bind(child)
		em.BgeU(rtJ, rtCount, childDone)
		em.ShlImm(rtTmp, rtJ, 3)
		em.Add(rtCell, rtNd, rtTmp)
		em.AddImm(rtCell, rtCell, offREntry)
		em.Load64(rtChild, rtCell, 0)
		em.Load64(rtCLo, rtChild, offRLo)
		em.Load64(rtCHi, rtChild, offRHi)
		em.Const(rtCost, 0)
		costDone, above := em.NewLabel(), em.NewLabel()
		em.BltU(rtCHi, rtCLo, costDone) // empty child: free
		em.BgeU(rtVal, rtCLo, above)
		em.Sub(rtCost, rtCLo, rtVal)
		em.Jmp(costDone)
		em.Bind(above)
		em.BgeU(rtCHi, rtVal, costDone) // inside: free
		em.Sub(rtCost, rtVal, rtCHi)
		em.Bind(costDone)
		notBest := em.NewLabel()
		em.BgeU(rtCost, rtBCost, notBest)
		em.Mov(rtBCost, rtCost)
		em.Mov(rtBest, rtChild)
		em.Mov(rtBestC, rtCell)
		em.Bind(notBest)
		em.AddImm(rtJ, rtJ, 1)
		em.Jmp(child)
		em.Bind(childDone)
		em.Mov(rtPC, rtBestC)
		em.Mov(rtNd, rtBest)
		em.Jmp(desc)
		em.Bind(descDone)

		em.Load64(rtCount, rtNd, offRCount)
		split := em.NewLabel()
		em.BgeU(rtCount, rtSix, split)
		// Append: item slot first, count after.
		em.ShlImm(rtTmp, rtCount, 3)
		em.Add(rtSlot, rtNd, rtTmp)
		em.Store64(rtVal, rtSlot, offREntry)
		em.barrier(bAddr{rtSlot, offREntry})
		em.AddImm(rtTmp, rtCount, 1)
		em.Store64(rtTmp, rtNd, offRCount)
		em.barrier(bAddr{rtNd, 0})
		em.Jmp(vw)
		em.Bind(split)

		// Median split: read the six items, sort them with val, build two
		// fresh leaves and an internal node off to the side.
		for j := 0; j < rFanout; j++ {
			em.Load64(rtS0+ir.Reg(j), rtNd, offREntry+uint64(j*8))
		}
		em.Mov(rtS6, rtVal)
		em.SortNetwork([]ir.Reg{rtS0, rtS1, rtS2, rtS3, rtS4, rtS5, rtS6}, rtTmp)
		em.AddImm(rtLB, rtNode, nodeStride)
		em.AddImm(rtIN, rtNode, 2*nodeStride)
		// leafA: items[0:3].
		em.Store64(rtOne, rtNode, offRLeaf)
		em.Const(rtTmp, 3)
		em.Store64(rtTmp, rtNode, offRCount)
		em.Store64(rtS0, rtNode, offRLo)
		em.Store64(rtS2, rtNode, offRHi)
		em.Store64(rtS0, rtNode, offREntry)
		em.Store64(rtS1, rtNode, offREntry+8)
		em.Store64(rtS2, rtNode, offREntry+16)
		em.Store64(rtMagR, rtNode, offRMagic)
		// leafB: items[3:7].
		em.Store64(rtOne, rtLB, offRLeaf)
		em.Const(rtTmp, 4)
		em.Store64(rtTmp, rtLB, offRCount)
		em.Store64(rtS3, rtLB, offRLo)
		em.Store64(rtS6, rtLB, offRHi)
		em.Store64(rtS3, rtLB, offREntry)
		em.Store64(rtS4, rtLB, offREntry+8)
		em.Store64(rtS5, rtLB, offREntry+16)
		em.Store64(rtS6, rtLB, offREntry+24)
		em.Store64(rtMagR, rtLB, offRMagic)
		// Internal node over both.
		em.Store64(regZero, rtIN, offRLeaf)
		em.Const(rtTmp, 2)
		em.Store64(rtTmp, rtIN, offRCount)
		em.Store64(rtS0, rtIN, offRLo)
		em.Store64(rtS6, rtIN, offRHi)
		em.Store64(rtNode, rtIN, offREntry)
		em.Store64(rtLB, rtIN, offREntry+8)
		em.Store64(rtMagR, rtIN, offRMagic)
		em.barrier(
			bAddr{rtNode, 0}, bAddr{rtNode, memory.LineSize},
			bAddr{rtLB, 0}, bAddr{rtLB, memory.LineSize},
			bAddr{rtIN, 0}, bAddr{rtIN, memory.LineSize})
		em.Store64(rtIN, rtPC, 0)
		em.AndImm(rtLA, rtPC, ^uint64(memory.LineSize-1))
		em.barrier(bAddr{rtLA, 0})
		em.AddImm(rtNode, rtNode, 3*nodeStride)

		em.Bind(vw)
		em.volatileWork(rt.volWork(p))
	})
}

var _ CompiledWorkload = (*RTree)(nil)
