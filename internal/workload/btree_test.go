package workload

import (
	"strings"
	"testing"

	"bbb/internal/memory"
	"bbb/internal/persistency"
)

func TestBTreeRunsAndValidates(t *testing.T) {
	w := NewBTree()
	p := testParams(150)
	sys, progs := Build(w, persistency.BBB, testConfig(), p)
	defer sys.Shutdown()
	res := sys.Run(progs)
	if res.PersistingStores == 0 {
		t.Fatal("no persisting stores")
	}
	sys.Model.CrashDrain(sys.Cores, sys.Hier, sys.NVMM, sys.Mem)
	if err := w.Check(sys.Mem); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeCrashConsistentNoBarriersBBB(t *testing.T) {
	w := NewBTree()
	p := testParams(200)
	p.NoBarriers = true
	for _, crashAt := range []uint64{8_000, 40_000, 120_000} {
		sys, _, _ := RunToCrash(w, persistency.BBB, testConfig(), p, crashAt)
		if err := w.Check(sys.Mem); err != nil {
			t.Fatalf("crash@%d: %v", crashAt, err)
		}
	}
}

func TestBTreeCrashConsistentWithBarriersPMEM(t *testing.T) {
	w := NewBTree()
	p := testParams(200)
	for _, crashAt := range []uint64{20_000, 90_000} {
		sys, _, _ := RunToCrash(w, persistency.PMEM, testConfig(), p, crashAt)
		if err := w.Check(sys.Mem); err != nil {
			t.Fatalf("crash@%d: %v", crashAt, err)
		}
	}
}

func TestBTreeByName(t *testing.T) {
	if _, err := ByName("btree"); err != nil {
		t.Fatal(err)
	}
	if len(Extras()) != 3 {
		t.Fatalf("Extras = %d, want linkedlist + btree + wal", len(Extras()))
	}
}

func TestBTreeKeysSortedAfterManyInserts(t *testing.T) {
	// Functional depth: inserts far beyond one node force repeated splits
	// and root growth; the checker then validates separators and balance.
	w := NewBTree()
	p := testParams(400)
	p.Threads = 2
	sys, progs := Build(w, persistency.EADR, testConfig(), p)
	defer sys.Shutdown()
	sys.Run(progs)
	sys.Model.CrashDrain(sys.Cores, sys.Hier, sys.NVMM, sys.Mem)
	if err := w.Check(sys.Mem); err != nil {
		t.Fatal(err)
	}
	// The tree must actually have grown multiple levels.
	root := memory.Addr(peek64(sys.Mem, w.root(0)))
	if peek64(sys.Mem, root+offBLeaf) == 1 {
		t.Fatal("400 inserts left a single-leaf tree: splits not happening")
	}
}

func TestBTreeCheckerDetectsUnsortedKeys(t *testing.T) {
	w := NewBTree()
	p := testParams(100)
	mem := buildImage(t, w, p)
	root := memory.Addr(peek64(mem, w.root(0)))
	// Swap two keys in the root to break ordering.
	k0 := peek64(mem, root+offBKeys)
	k1 := peek64(mem, root+offBKeys+8)
	corrupt64(mem, root+offBKeys, k1)
	corrupt64(mem, root+offBKeys+8, k0)
	err := w.Check(mem)
	if err == nil || !strings.Contains(err.Error(), "ascending") {
		t.Fatalf("unsorted keys not detected: %v", err)
	}
}

func TestBTreeCheckerDetectsUnpersistedShadow(t *testing.T) {
	w := NewBTree()
	p := testParams(100)
	mem := buildImage(t, w, p)
	root := memory.Addr(peek64(mem, w.root(0)))
	corrupt64(mem, root+offBMagic, 0)
	if err := w.Check(mem); err == nil {
		t.Fatal("zeroed shadow magic not detected")
	}
}
