package workload

import (
	"fmt"

	"bbb/internal/cpu"
	"bbb/internal/memory"
	"bbb/internal/palloc"
	"bbb/internal/system"
)

// WAL is an extra workload modelling the write-ahead-logging pattern of the
// persistent-memory systems the paper cites (NVWAL and friends): each
// thread appends fixed-size records to a private persistent log and then
// publishes them by bumping a tail counter.
//
// The ordering contract is the classic one: the record's payload (checksum
// last) must persist before the tail that makes it visible to recovery.
// Under BBB the natural code (payload stores, then tail store) is already
// correct; under the PMEM baseline the same code needs a barrier between
// record and tail, and omitting it lets recovery read a published record
// whose payload never persisted — caught by the checksum.
//
// Traffic profile: pure sequential streaming persists (no reuse at all)
// plus one maximally hot tail line per thread.
type WAL struct {
	headersBase memory.Addr
	logsBase    []memory.Addr
	threads     int
	capacity    int
}

// NewWAL builds the write-ahead-log workload.
func NewWAL() *WAL { return &WAL{} }

// Name implements Workload.
func (w *WAL) Name() string { return "wal" }

// Description implements Workload.
func (w *WAL) Description() string {
	return "sequential append to a persistent write-ahead log (NVWAL pattern)"
}

// PaperPStores implements Workload; not a Table IV row.
func (w *WAL) PaperPStores() float64 { return 0 }

const (
	walMagic   = 0xB1B0_0007
	offWALSeq  = 0
	offWALTag  = 8
	offWALBody = 16 // five payload words
	offWALSum  = 56
)

func (w *WAL) header(t int) memory.Addr {
	return w.headersBase + memory.Addr(t)*memory.LineSize
}

func (w *WAL) record(t, i int) memory.Addr {
	return w.logsBase[t] + memory.Addr(i)*memory.LineSize
}

// Setup implements Workload: a tail header and a record region per thread.
func (w *WAL) Setup(mem *memory.Memory, arena *palloc.Arena, p Params) {
	w.threads = p.Threads
	w.capacity = p.OpsPerThread
	w.headersBase = arena.Alloc(uint64(p.Threads) * memory.LineSize)
	w.logsBase = nil
	for t := 0; t < p.Threads; t++ {
		poke64(mem, w.header(t), 0) // tail = 0
		w.logsBase = append(w.logsBase, arena.Alloc(uint64(p.OpsPerThread+1)*memory.LineSize))
	}
}

// walChecksum folds the record fields the way recovery will re-derive them.
func walChecksum(seq, tag uint64, body [5]uint64) uint64 {
	h := seq*0x9E3779B97F4A7C15 ^ tag
	for _, b := range body {
		h = (h ^ b) * 0x100000001B3
	}
	return h
}

// Programs implements Workload.
func (w *WAL) Programs(p Params) []system.Program {
	progs := make([]system.Program, p.Threads)
	for t := 0; t < p.Threads; t++ {
		t := t
		progs[t] = func(e cpu.Env) {
			r := rng(p, t)
			tail := w.header(t)
			for i := 0; i < p.OpsPerThread; i++ {
				rec := w.record(t, i)
				seq := uint64(i) + 1
				tag := uint64(t)<<32 | walMagic
				var body [5]uint64
				for j := range body {
					body[j] = r.Uint64()
					cpu.Store64(e, rec+offWALBody+memory.Addr(j*8), body[j])
				}
				cpu.Store64(e, rec+offWALSeq, seq)
				cpu.Store64(e, rec+offWALTag, tag)
				cpu.Store64(e, rec+offWALSum, walChecksum(seq, tag, body))
				barrier(e, p, rec)        // record before tail (the WAL contract)
				cpu.Store64(e, tail, seq) //bbbvet:commit-store rec
				barrier(e, p, tail)
				volatileWork(e, t, w.volWork(p), r)
			}
		}
	}
	return progs
}

func (w *WAL) volWork(p Params) int {
	if p.VolatileWork > 0 {
		return p.VolatileWork
	}
	return 12
}

// Check implements Workload: every record the durable tail publishes must
// be fully intact (checksum and sequence), exactly what log recovery
// replays.
func (w *WAL) Check(mem *memory.Memory) error {
	for t := 0; t < w.threads; t++ {
		tail := peek64(mem, w.header(t))
		if tail > uint64(w.capacity) {
			return fmt.Errorf("wal[%d]: tail %d beyond capacity %d", t, tail, w.capacity)
		}
		for i := uint64(0); i < tail; i++ {
			rec := w.record(t, int(i))
			seq := peek64(mem, rec+offWALSeq)
			tag := peek64(mem, rec+offWALTag)
			var body [5]uint64
			for j := range body {
				body[j] = peek64(mem, rec+offWALBody+memory.Addr(j*8))
			}
			sum := peek64(mem, rec+offWALSum)
			if seq != i+1 {
				return fmt.Errorf("wal[%d]: record %d has seq %d (tail persisted before record — the WAL ordering bug)", t, i, seq)
			}
			if tag&0xFFFFFFFF != walMagic || tag>>32 != uint64(t) {
				return fmt.Errorf("wal[%d]: record %d has tag %#x", t, i, tag)
			}
			if sum != walChecksum(seq, tag, body) {
				return fmt.Errorf("wal[%d]: record %d checksum mismatch (torn record published)", t, i)
			}
		}
	}
	return nil
}

var _ Workload = (*WAL)(nil)
