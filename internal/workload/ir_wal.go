package workload

import (
	"bbb/internal/ir"
	"bbb/internal/system"
)

const (
	wlI   ir.Reg = iota // op index
	wlOps               // OpsPerThread
	wlRec               // record byte offset (i * LineSize)
	wlSeq               // sequence number (i + 1)
	wlSum               // checksum accumulator
	wlTag               // per-thread tag constant
	wlB0                // body words occupy wlB0 .. wlB0+4
)

const walBodyWords = 5

// CompiledPrograms implements CompiledWorkload.
func (w *WAL) CompiledPrograms(p Params) []system.CompiledProgram {
	progs := make([]system.CompiledProgram, p.Threads)
	for t := 0; t < p.Threads; t++ {
		progs[t] = w.compile(p, t)
	}
	return progs
}

func (w *WAL) compile(p Params, t int) *ir.Prog {
	em := newEmitter(p, t)
	logs := uint64(w.logsBase[t])
	tailA := uint64(w.header(t))
	tag := uint64(t)<<32 | walMagic
	em.Const(wlTag, tag)
	return em.opLoop(wlI, wlOps, func() {
		em.ShlImm(wlRec, wlI, 6) // records are one line apart
		// Body words: draw and store interleaved, exactly the twin's loop.
		for j := 0; j < walBodyWords; j++ {
			em.Rand64(wlB0 + ir.Reg(j))
			em.Store64(wlB0+ir.Reg(j), wlRec, logs+offWALBody+uint64(j*8))
		}
		em.AddImm(wlSeq, wlI, 1)
		em.Store64(wlSeq, wlRec, logs+offWALSeq)
		em.Store64(wlTag, wlRec, logs+offWALTag)
		// walChecksum(seq, tag, body), term by term.
		em.MulImm(wlSum, wlSeq, 0x9E3779B97F4A7C15)
		em.XorImm(wlSum, wlSum, tag)
		for j := 0; j < walBodyWords; j++ {
			em.Xor(wlSum, wlSum, wlB0+ir.Reg(j))
			em.MulImm(wlSum, wlSum, 0x100000001B3)
		}
		em.Store64(wlSum, wlRec, logs+offWALSum)
		em.barrier(bAddr{wlRec, logs}) // record before tail (the WAL contract)
		em.Store64(wlSeq, regZero, tailA)
		em.barrier(bAddr{regZero, tailA})
		em.volatileWork(w.volWork(p))
	})
}

var _ CompiledWorkload = (*WAL)(nil)
