// Package workload implements the paper's Table IV benchmarks as real data
// structures executing against the simulated machine: rtree, ctree and
// hashmap insertions, array mutate and array swap (non-conflicting and
// conflicting variants), plus the motivating linked-list example of
// Figures 2 and 3.
//
// Every structure lives in the persistent heap and is written with
// *ordering-aware* code: each operation's stores are sequenced so that every
// program-order prefix leaves the structure consistent (fully initialize a
// node, then publish it with a single pointer store; widen bounds before
// descending; bump counts after filling slots). Under BBB that ordering is
// durable for free; under the PMEM baseline it needs the PersistBarrier
// calls, and omitting them (NoBarriers) reproduces the Figure 2 bug.
// Failure *atomicity* of whole operations is explicitly out of scope, as in
// the paper (§II-A, §VI) — checkers verify ordering invariants only.
package workload

import (
	"fmt"
	"math/rand"
	"sync"

	"bbb/internal/cpu"
	"bbb/internal/engine"
	"bbb/internal/memory"
	"bbb/internal/palloc"
	"bbb/internal/system"
)

// Params control a workload instance.
type Params struct {
	// Threads is the number of cores/programs (the paper runs 8).
	Threads int
	// OpsPerThread is the number of operations each thread performs.
	OpsPerThread int
	// Seed makes runs reproducible.
	Seed int64
	// NoBarriers omits PersistBarrier calls, reproducing Figure 2's buggy
	// code under the PMEM baseline (harmless under BBB/eADR — the point of
	// the paper).
	NoBarriers bool
	// VolatileWork scales the DRAM-side work interleaved between
	// operations, which sets the %P-stores mix of Table IV. Zero uses the
	// workload's default.
	VolatileWork int
	// BatchWindow is the request-batching window of the service-tier
	// workloads (internal/kvservice): a client holds its batch open for
	// this many cycles before the commit that makes the batch durable.
	// Zero uses the workload's default. Table IV workloads ignore it.
	BatchWindow engine.Cycle
	// SLOTarget is the service tier's latency objective in cycles: the
	// windowed latency series (kv.lat.win) counts requests over this
	// target per time window, which is what the CLIs render as SLO burn.
	// Zero uses the workload's default. Table IV workloads ignore it.
	SLOTarget uint64
}

// DefaultParams mirrors the paper's setup at a simulation-friendly scale.
func DefaultParams() Params {
	return Params{Threads: 8, OpsPerThread: 2000, Seed: 1}
}

// Workload is one Table IV benchmark.
type Workload interface {
	// Name is the Table IV identifier (rtree, ctree, hashmap, mutateNC...).
	Name() string
	// Description matches the Table IV description column.
	Description() string
	// Setup pre-loads the initial persistent image (roots, arrays) and
	// claims heap space from arena. Called once before Programs.
	Setup(mem *memory.Memory, arena *palloc.Arena, p Params)
	// Programs returns one program per thread.
	Programs(p Params) []system.Program
	// Check walks the persistent image as post-crash recovery code would,
	// returning an error on any ordering-invariant violation.
	Check(mem *memory.Memory) error
	// PaperPStores is the %P-stores column of Table IV (0 if not listed).
	PaperPStores() float64
}

// Registry returns the Table IV workloads, in the paper's order.
func Registry() []Workload {
	return []Workload{
		NewRTree(),
		NewCTree(),
		NewHashmap(),
		NewArray(OpMutate, false),
		NewArray(OpMutate, true),
		NewArray(OpSwap, false),
		NewArray(OpSwap, true),
	}
}

// Extras returns the workloads beyond Table IV: the Figures 2/3 linked
// list, the shadow-paging btree the paper's §IV-B prose mentions, and the
// write-ahead-log pattern of the NVWAL line of work.
func Extras() []Workload {
	return []Workload{NewLinkedList(), NewBTree(), NewWAL()}
}

// extraFactories holds workloads registered by other packages. They are
// factories, not instances, so every ByName lookup gets fresh state —
// matching how Registry and Extras construct on each call (the crash-image
// checker relies on that for its parallel sweeps).
var extraFactories []func() Workload

// byNameCache memoizes the name → factory mapping ByName resolves through.
// ByName is hot in witness replay and per-point sweep fan-out, where the old
// behavior — constructing every Registry, Extras and registered workload per
// lookup — dominated the lookup cost. The cache holds *factories*, never
// instances: each hit still constructs a fresh workload, preserving the
// crash-image isolation the parallel sweeps rely on. Guarded by byNameMu and
// invalidated by Register (init-time registrations may land after a first
// lookup in tests).
var (
	byNameMu    sync.Mutex
	byNameCache map[string]func() Workload
)

// Register adds a workload constructor to the ByName namespace. It exists
// for generated corpora (the litmus tests of internal/litmus) and the
// service tier (internal/kvservice, internal/pds): registered workloads
// resolve by name — so witness replay finds them — but stay out of Registry
// and Extras, leaving the experiment matrices untouched.
func Register(f func() Workload) {
	byNameMu.Lock()
	defer byNameMu.Unlock()
	extraFactories = append(extraFactories, f)
	byNameCache = nil
}

// factoryFor returns the memoized factory for name, building the cache on
// the first lookup after a Register.
func factoryFor(name string) (func() Workload, bool) {
	byNameMu.Lock()
	defer byNameMu.Unlock()
	if byNameCache == nil {
		byNameCache = make(map[string]func() Workload)
		builtins := []func() Workload{
			func() Workload { return NewRTree() },
			func() Workload { return NewCTree() },
			func() Workload { return NewHashmap() },
			func() Workload { return NewArray(OpMutate, false) },
			func() Workload { return NewArray(OpMutate, true) },
			func() Workload { return NewArray(OpSwap, false) },
			func() Workload { return NewArray(OpSwap, true) },
			func() Workload { return NewLinkedList() },
			func() Workload { return NewBTree() },
			func() Workload { return NewWAL() },
		}
		for _, f := range append(builtins, extraFactories...) {
			name := f().Name() // one construction to learn the name
			if _, dup := byNameCache[name]; !dup {
				byNameCache[name] = f
			}
		}
	}
	f, ok := byNameCache[name]
	return f, ok
}

// ByName finds a registered workload (Table IV rows, Extras, and anything
// added via Register). Every call returns a freshly constructed instance.
func ByName(name string) (Workload, error) {
	if f, ok := factoryFor(name); ok {
		return f(), nil
	}
	return nil, fmt.Errorf("workload: unknown workload %q", name)
}

// --- shared helpers ---

const (
	magicListNode = 0xB1B0_0001
	magicHashNode = 0xB1B0_0002
	magicLeaf     = 0xB1B0_0003
	magicInternal = 0xB1B0_0004
	magicRNode    = 0xB1B0_0005
	magicBNode    = 0xB1B0_0006
)

// rng returns the deterministic per-thread random stream.
func rng(p Params, thread int) *rand.Rand {
	return rand.New(rand.NewSource(p.Seed*1000003 + int64(thread)))
}

// volatileScratchBase returns a per-thread DRAM scratch buffer address used
// to model the computation between persists (key generation, comparisons).
// The scratch region is outside every persistence domain, so stores through
// it carry no persist pressure.
//
//bbbvet:volatile
func volatileScratchBase(thread int) memory.Addr {
	return memory.Addr(0x1000_0000 + thread*64*memory.LineSize)
}

// volatileWork performs n DRAM stores (plus a read and a little compute) in
// the thread's scratch buffer — the non-persistent side of the store mix.
func volatileWork(e cpu.Env, thread, n int, r *rand.Rand) {
	base := volatileScratchBase(thread)
	for i := 0; i < n; i++ {
		off := memory.Addr(r.Intn(64*8)) * 8
		cpu.Store64(e, base+off, r.Uint64())
	}
	if n > 0 {
		cpu.Load64(e, base)
		e.Compute(engine.Cycle(4 * n))
	}
}

// peek64 reads a little-endian uint64 from the durable image.
func peek64(mem *memory.Memory, a memory.Addr) uint64 {
	b := mem.Peek(a, 8)
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// poke64 writes a little-endian uint64 into the durable image (setup only).
func poke64(mem *memory.Memory, a memory.Addr, v uint64) {
	mem.Poke64(a, v)
}

// barrier issues the scheme's persist barrier unless the workload was built
// without them. It goes through cpu.PersistBarrier so the per-op variadic
// address list stays on the stack instead of escaping through the interface
// call.
func barrier(e cpu.Env, p Params, addrs ...memory.Addr) {
	if p.NoBarriers {
		return
	}
	cpu.PersistBarrier(e, addrs...)
}
