package workload

import (
	"bbb/internal/ir"
	"bbb/internal/memory"
	"bbb/internal/system"
)

const (
	llI     ir.Reg = iota // op index
	llOps                 // OpsPerThread
	llCur                 // current head value
	llNode                // arena bump: next node address
	llVal                 // node value (i + 1)
	llMagic               // magicListNode
)

// CompiledPrograms implements CompiledWorkload.
func (l *LinkedList) CompiledPrograms(p Params) []system.CompiledProgram {
	progs := make([]system.CompiledProgram, p.Threads)
	for t := 0; t < p.Threads; t++ {
		progs[t] = l.compile(p, t)
	}
	return progs
}

func (l *LinkedList) compile(p Params, t int) *ir.Prog {
	em := newEmitter(p, t)
	head := uint64(l.head(t))
	em.Const(llMagic, magicListNode)
	// The goroutine twin allocates one line-rounded node per op from the
	// thread's private arena and never frees: the addresses are the bump
	// sequence from the arena's current mark, replayed here in a register.
	em.Const(llNode, uint64(l.arenas[t].Mark()))
	em.Load64(llCur, regZero, head)
	return em.opLoop(llI, llOps, func() {
		em.AddImm(llVal, llI, 1)
		em.Store64(llVal, llNode, offListVal)
		em.Store64(llCur, llNode, offListNext)
		em.Store64(llMagic, llNode, offListMagic)
		em.barrier(bAddr{llNode, 0})
		em.Store64(llNode, regZero, head)
		em.barrier(bAddr{regZero, head})
		em.Mov(llCur, llNode)
		em.volatileWork(l.volWork(p))
		em.AddImm(llNode, llNode, memory.LineSize)
	})
}

var _ CompiledWorkload = (*LinkedList)(nil)
