package workload

import (
	"strings"
	"testing"

	"bbb/internal/persistency"
	"bbb/internal/system"
)

// testConfig is a scaled-down Table III machine that still exercises
// evictions and buffer pressure.
func testConfig() system.Config {
	cfg := system.DefaultConfig(persistency.BBB)
	cfg.Hierarchy.L1Size = 8 * 1024
	cfg.Hierarchy.L2Size = 64 * 1024
	return cfg
}

func testParams(ops int) Params {
	p := DefaultParams()
	p.Threads = 4
	p.OpsPerThread = ops
	return p
}

func TestRegistryNamesMatchTableIV(t *testing.T) {
	want := []string{"rtree", "ctree", "hashmap", "mutateNC", "mutateC", "swapNC", "swapC"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d workloads, want %d", len(reg), len(want))
	}
	for i, w := range reg {
		if w.Name() != want[i] {
			t.Fatalf("registry[%d] = %q, want %q", i, w.Name(), want[i])
		}
		if w.Description() == "" {
			t.Fatalf("%s has no description", w.Name())
		}
		if w.PaperPStores() <= 0 {
			t.Fatalf("%s has no Table IV P-store figure", w.Name())
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("rtree"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("linkedlist"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name should error")
	}
}

// stubWorkload pins the Register/ByName cache-invalidation contract.
type stubWorkload struct{ Workload }

func (stubWorkload) Name() string { return "test/stub" }

// The ByName factory cache must (a) hand out a fresh instance per lookup —
// the crash-image sweeps mutate the instances they resolve — and (b) pick up
// factories registered after the cache was built.
func TestByNameFactoryCache(t *testing.T) {
	a, err := ByName("linkedlist")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ByName("linkedlist")
	if err != nil {
		t.Fatal(err)
	}
	if a.(*LinkedList) == b.(*LinkedList) {
		t.Fatal("ByName returned the same instance twice; sweeps need fresh state per lookup")
	}
	// Every Registry and Extras name must resolve through the cache.
	for _, w := range append(Registry(), Extras()...) {
		got, err := ByName(w.Name())
		if err != nil {
			t.Fatal(err)
		}
		if got.Name() != w.Name() {
			t.Fatalf("ByName(%q) resolved %q", w.Name(), got.Name())
		}
	}
	// Registering after a lookup must invalidate the cache.
	Register(func() Workload { return stubWorkload{NewLinkedList()} })
	if _, err := ByName("test/stub"); err != nil {
		t.Fatalf("freshly registered workload not visible: %v", err)
	}
}

// Each workload must run to completion under BBB with zero barriers in the
// code path and leave a consistent durable image after a full drain-free
// finish plus crash-style flush.
func TestWorkloadsRunAndCheckUnderBBB(t *testing.T) {
	for _, w := range append(Registry(), Workload(NewLinkedList())) {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			p := testParams(120)
			sys, progs := Build(w, persistency.BBB, testConfig(), p)
			defer sys.Shutdown()
			res := sys.Run(progs)
			if res.PersistingStores == 0 {
				t.Fatal("no persisting stores recorded")
			}
			// Flush the remaining persistence domain as a crash would and
			// verify the recovery invariants on the image.
			sys.Model.CrashDrain(sys.Cores, sys.Hier, sys.NVMM, sys.Mem)
			if err := w.Check(sys.Mem); err != nil {
				t.Fatal(err)
			}
			if err := sys.Hier.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Under eADR with barriers elided the same completeness must hold.
func TestWorkloadsRunUnderEADR(t *testing.T) {
	for _, w := range Registry()[:3] { // the three structure workloads
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			p := testParams(100)
			sys, progs := Build(w, persistency.EADR, testConfig(), p)
			defer sys.Shutdown()
			sys.Run(progs)
			sys.Model.CrashDrain(sys.Cores, sys.Hier, sys.NVMM, sys.Mem)
			if err := w.Check(sys.Mem); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Under the PMEM baseline with barriers present, a mid-run crash must still
// leave a consistent image (that is what the barriers are for).
func TestPMEMWithBarriersCrashConsistent(t *testing.T) {
	for _, name := range []string{"linkedlist", "hashmap", "ctree"} {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			p := testParams(200)
			for _, crashAt := range []uint64{20_000, 60_000, 140_000} {
				sys, _, _ := RunToCrash(w, persistency.PMEM, testConfig(), p, crashAt)
				if err := w.Check(sys.Mem); err != nil {
					t.Fatalf("crash@%d: %v", crashAt, err)
				}
			}
		})
	}
}

// Under BBB with NO barriers, every crash point must still be consistent —
// the paper's core programmability claim.
func TestBBBNoBarriersCrashConsistent(t *testing.T) {
	for _, name := range []string{"linkedlist", "hashmap", "ctree", "rtree"} {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			p := testParams(200)
			p.NoBarriers = true
			for _, crashAt := range []uint64{10_000, 35_000, 90_000, 180_000} {
				sys, _, _ := RunToCrash(w, persistency.BBB, testConfig(), p, crashAt)
				if err := w.Check(sys.Mem); err != nil {
					t.Fatalf("crash@%d: %v", crashAt, err)
				}
			}
		})
	}
}

// Under PMEM with NO barriers, some crash point must expose the Figure 2
// bug — if it never does, the baseline is too forgiving and the comparison
// is meaningless.
func TestPMEMNoBarriersEventuallyInconsistent(t *testing.T) {
	w := NewLinkedList()
	p := testParams(300)
	p.NoBarriers = true
	cfg := testConfig()
	// Shrink caches hard so evictions reorder persists aggressively.
	cfg.Hierarchy.L1Size = 1024
	cfg.Hierarchy.L2Size = 4096
	failures := 0
	for crashAt := uint64(5_000); crashAt <= 100_000; crashAt += 5_000 {
		sys, _, _ := RunToCrash(w, persistency.PMEM, cfg, p, crashAt)
		if err := w.Check(sys.Mem); err != nil {
			failures++
			if !strings.Contains(err.Error(), "linkedlist") {
				t.Fatalf("unexpected error shape: %v", err)
			}
		}
	}
	if failures == 0 {
		t.Fatal("PMEM without barriers never produced an inconsistent image across 20 crash points")
	}
	t.Logf("PMEM/no-barriers inconsistent at %d/20 crash points", failures)
}

// The store mix should be in the neighbourhood of Table IV.
func TestPStoreMixRoughlyTableIV(t *testing.T) {
	for _, w := range Registry() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			p := testParams(150)
			res := Run(w, persistency.EADR, testConfig(), p)
			got := 100 * float64(res.PersistingStores) / float64(res.Stores)
			want := w.PaperPStores()
			if got < want/3 || got > want*3 {
				t.Fatalf("%%P-stores = %.1f, paper says %.1f (off by >3x)", got, want)
			}
			t.Logf("%%P-stores = %.1f (paper %.1f)", got, want)
		})
	}
}

func TestDeterministicWorkloadRuns(t *testing.T) {
	w := NewHashmap()
	p := testParams(100)
	a := Run(w, persistency.BBB, testConfig(), p)
	b := Run(w, persistency.BBB, testConfig(), p)
	if a.Cycles != b.Cycles || a.NVMMWrites != b.NVMMWrites {
		t.Fatalf("nondeterministic: %v/%v vs %v/%v", a.Cycles, a.NVMMWrites, b.Cycles, b.NVMMWrites)
	}
}

// The conflicting array variants must actually migrate bbPB entries.
func TestConflictingArrayMigratesEntries(t *testing.T) {
	w := NewArray(OpMutate, true)
	p := testParams(300)
	res := Run(w, persistency.BBB, testConfig(), p)
	if res.Counters.Get("bbpb.migrated_out") == 0 {
		t.Fatal("conflicting workload produced no bbPB migrations")
	}
	nc := Run(NewArray(OpMutate, false), persistency.BBB, testConfig(), p)
	if nc.Counters.Get("bbpb.migrated_out") > res.Counters.Get("bbpb.migrated_out") {
		t.Fatal("non-conflicting variant migrated more than conflicting one")
	}
}
