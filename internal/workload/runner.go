package workload

import (
	"bbb/internal/engine"
	"bbb/internal/palloc"
	"bbb/internal/persistency"
	"bbb/internal/stats"
	"bbb/internal/system"
)

// Build constructs a fresh machine for scheme s, sets the workload up in
// its persistent image, and returns the machine plus the per-core programs.
// Each call gets an independent arena, so runs never share state.
func Build(w Workload, s persistency.Scheme, cfg system.Config, p Params) (*system.System, []system.Program) {
	cfg.Scheme = s
	cfg.Cores = p.Threads
	cfg.Hierarchy.Cores = p.Threads
	sys := system.New(cfg)
	arena := palloc.FromLayout(cfg.Layout)
	w.Setup(sys.Mem, arena, p)
	return sys, w.Programs(p)
}

// ServiceMetrics is implemented by workloads that collect application-level
// measurements of their own (per-client request latencies, batch sizes);
// Run folds them into Result.Metrics after the machine stops.
type ServiceMetrics interface {
	// MergeServiceMetrics merges the workload's histograms into m under
	// their Glossary names.
	MergeServiceMetrics(m *stats.Metrics)
}

// Run executes the workload to completion under scheme s and returns the
// result (the Fig. 7 measurement path).
func Run(w Workload, s persistency.Scheme, cfg system.Config, p Params) system.Result {
	sys, progs := Build(w, s, cfg, p)
	defer sys.Shutdown()
	res := sys.Run(progs)
	FoldServiceMetrics(w, &res)
	return res
}

// FoldServiceMetrics merges w's application-level measurements into
// res.Metrics when w implements ServiceMetrics, creating the registry if
// the run had tracing off. Harnesses that Build and drive the machine
// themselves (tracing, checking) call it to match Run's behaviour.
func FoldServiceMetrics(w Workload, res *system.Result) {
	if sm, ok := w.(ServiceMetrics); ok {
		if res.Metrics == nil {
			res.Metrics = stats.NewMetrics()
		}
		sm.MergeServiceMetrics(res.Metrics)
	}
}

// BuildToCrash executes the workload until crashCycle (or completion,
// whichever comes first) and returns the stopped-but-not-yet-crashed
// machine, with caches, persist buffers and WPQ still holding their
// in-flight state. The crash-image model checker captures the pending
// persistence-domain writes from this state before performing the
// flush-on-fail itself; plain crash injection calls System.Crash directly.
func BuildToCrash(w Workload, s persistency.Scheme, cfg system.Config, p Params, crashCycle engine.Cycle) (*system.System, bool) {
	sys, progs := Build(w, s, cfg, p)
	finished := sys.RunUntil(crashCycle, progs)
	return sys, finished
}

// RunToCrash executes the workload, crashes it at crashCycle (or lets it
// finish if it completes first), performs the scheme's flush-on-fail, and
// returns the machine for image inspection plus the drain report.
func RunToCrash(w Workload, s persistency.Scheme, cfg system.Config, p Params, crashCycle engine.Cycle) (*system.System, persistency.DrainReport, bool) {
	sys, finished := BuildToCrash(w, s, cfg, p, crashCycle)
	rep := sys.Crash()
	return sys, rep, finished
}
