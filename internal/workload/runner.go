package workload

import (
	"bbb/internal/engine"
	"bbb/internal/palloc"
	"bbb/internal/persistency"
	"bbb/internal/system"
)

// Build constructs a fresh machine for scheme s, sets the workload up in
// its persistent image, and returns the machine plus the per-core programs.
// Each call gets an independent arena, so runs never share state.
func Build(w Workload, s persistency.Scheme, cfg system.Config, p Params) (*system.System, []system.Program) {
	cfg.Scheme = s
	cfg.Cores = p.Threads
	cfg.Hierarchy.Cores = p.Threads
	sys := system.New(cfg)
	arena := palloc.FromLayout(cfg.Layout)
	w.Setup(sys.Mem, arena, p)
	return sys, w.Programs(p)
}

// Run executes the workload to completion under scheme s and returns the
// result (the Fig. 7 measurement path).
func Run(w Workload, s persistency.Scheme, cfg system.Config, p Params) system.Result {
	sys, progs := Build(w, s, cfg, p)
	defer sys.Shutdown()
	return sys.Run(progs)
}

// RunToCrash executes the workload, crashes it at crashCycle (or lets it
// finish if it completes first), performs the scheme's flush-on-fail, and
// returns the machine for image inspection plus the drain report.
func RunToCrash(w Workload, s persistency.Scheme, cfg system.Config, p Params, crashCycle engine.Cycle) (*system.System, persistency.DrainReport, bool) {
	sys, progs := Build(w, s, cfg, p)
	finished := sys.RunUntil(crashCycle, progs)
	rep := sys.Crash()
	return sys, rep, finished
}
