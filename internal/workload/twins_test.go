package workload

import (
	"encoding/binary"
	"fmt"
	"testing"

	"bbb/internal/cpu"
	"bbb/internal/engine"
	"bbb/internal/ir"
	"bbb/internal/memory"
	"bbb/internal/palloc"
)

// TestIRTwinsPinned pins the contract the static analyzers depend on:
// pressurelint and persistlint analyze the cpu.Env twins' source, so their
// certificates (pressure_bounds.json battery sizings) are sound for the
// compiled path only if every workload's IR emission performs the identical
// machine-op sequence — same loads, stores, flushes, fences, epochs and
// compute, same addresses, sizes and values, in the same order.
//
// Both twins execute functionally here (no engine, no caches): each thread
// runs to completion against its path's copy of the post-Setup memory
// image, so the comparison is a pure trace diff of the program logic under
// all three persist-expansion modes.
func TestIRTwinsPinned(t *testing.T) {
	modes := []struct {
		name string
		cfg  ir.Config
	}{
		{"battery", ir.Config{}},
		{"epoch", ir.Config{EpochMode: true}},
		{"explicit", ir.Config{ExplicitPersist: true}},
	}
	for _, w := range append(Registry(), Extras()...) {
		cw, ok := Compiled(w)
		if !ok {
			continue
		}
		for _, mode := range modes {
			for _, seed := range []int64{1, 5} {
				t.Run(fmt.Sprintf("%s/%s/seed%d", w.Name(), mode.name, seed), func(t *testing.T) {
					p := Params{Threads: 4, OpsPerThread: 40, Seed: seed}

					// Fresh instance per path: ByName-style construction so
					// neither run sees the other's Go-side state.
					layout := memory.DefaultLayout()
					envMem := memory.New(layout)
					cw.Setup(envMem, palloc.FromLayout(layout), p)
					irMem := envMem.Clone()

					progs := cw.Programs(p)
					cprogs := cw.CompiledPrograms(p)
					if len(progs) != p.Threads || len(cprogs) != p.Threads {
						t.Fatalf("program counts: env %d, ir %d, want %d", len(progs), len(cprogs), p.Threads)
					}

					for th := 0; th < p.Threads; th++ {
						envTrace := runEnvTwin(progs[th], th, envMem, mode.cfg)
						irTrace := runIRTwin(t, cprogs[th], irMem, mode.cfg)
						if len(envTrace) != len(irTrace) {
							t.Fatalf("thread %d: env twin made %d machine ops, IR twin %d",
								th, len(envTrace), len(irTrace))
						}
						for i := range envTrace {
							if envTrace[i] != irTrace[i] {
								t.Fatalf("thread %d diverges at machine op %d:\nenv: %+v\nir:  %+v",
									th, i, envTrace[i], irTrace[i])
							}
						}
					}
				})
			}
		}
	}
}

// mop is one recorded machine operation; comparable, so trace diffing is a
// plain != loop.
type mop struct {
	kind string
	addr memory.Addr
	size int
	val  uint64 // store/CAS-new value, load result, compute cycles
	old  uint64 // CAS expected
}

// funcMem gives both twins the same functional memory semantics: flat
// little-endian reads and writes straight into a memory.Memory, no timing.
type funcMem struct{ m *memory.Memory }

func (f funcMem) load(a memory.Addr, size int) uint64 {
	var b [8]byte
	copy(b[:size], f.m.Peek(a, size))
	return binary.LittleEndian.Uint64(b[:])
}

func (f funcMem) store(a memory.Addr, size int, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	f.m.Poke(a, b[:size])
}

// recEnv is the cpu.Env recorder: it executes a goroutine twin's program
// body inline (the program never blocks because every operation completes
// immediately) and expands PersistBarrier/Flush/Fence with exactly
// env.persistBarrier's mode logic.
type recEnv struct {
	funcMem
	id    int
	cfg   ir.Config
	trace []mop
}

func (e *recEnv) CoreID() int { return e.id }

func (e *recEnv) Load(addr memory.Addr, size int) uint64 {
	v := e.load(addr, size)
	e.trace = append(e.trace, mop{kind: "load", addr: addr, size: size, val: v})
	return v
}

func (e *recEnv) Store(addr memory.Addr, size int, val uint64) {
	e.store(addr, size, val)
	e.trace = append(e.trace, mop{kind: "store", addr: addr, size: size, val: val})
}

func (e *recEnv) PersistBarrier(addrs ...memory.Addr) {
	if e.cfg.EpochMode {
		e.trace = append(e.trace, mop{kind: "epoch"})
		return
	}
	if !e.cfg.ExplicitPersist {
		return
	}
	for _, a := range addrs {
		e.trace = append(e.trace, mop{kind: "flush", addr: a})
	}
	e.trace = append(e.trace, mop{kind: "fence"})
}

func (e *recEnv) Flush(addr memory.Addr) {
	if e.cfg.ExplicitPersist {
		e.trace = append(e.trace, mop{kind: "flush", addr: addr})
	}
}

func (e *recEnv) Fence() {
	if e.cfg.EpochMode {
		e.trace = append(e.trace, mop{kind: "epoch"})
		return
	}
	if e.cfg.ExplicitPersist {
		e.trace = append(e.trace, mop{kind: "fence"})
	}
}

// Now returns a pseudo-clock (the trace length): the recorder has no real
// timeline, it only needs a deterministic monotonic value.
func (e *recEnv) Now() engine.Cycle { return engine.Cycle(len(e.trace)) }

func (e *recEnv) Compute(n engine.Cycle) {
	if n == 0 {
		return
	}
	e.trace = append(e.trace, mop{kind: "compute", val: uint64(n)})
}

func (e *recEnv) CompareAndSwap(addr memory.Addr, size int, old, new uint64) (uint64, bool) {
	prev := e.load(addr, size)
	if prev == old {
		e.store(addr, size, new)
	}
	e.trace = append(e.trace, mop{kind: "cas", addr: addr, size: size, val: new, old: old})
	return prev, prev == old
}

func runEnvTwin(prog func(cpu.Env), thread int, mem *memory.Memory, cfg ir.Config) []mop {
	e := &recEnv{funcMem: funcMem{mem}, id: thread, cfg: cfg}
	prog(e)
	return e.trace
}

// runIRTwin drives the compiled program through the interpreter with the
// same functional memory, recording the identical mop vocabulary.
func runIRTwin(t *testing.T, p *ir.Prog, mem *memory.Memory, cfg ir.Config) []mop {
	t.Helper()
	f := funcMem{mem}
	var it ir.Interp
	it.Reset(p, cfg)
	var trace []mop
	var resume uint64
	for step := 0; ; step++ {
		if step > 10_000_000 {
			t.Fatal("compiled program did not halt")
		}
		var act ir.Action
		it.Next(resume, &act)
		resume = 0
		switch act.Kind {
		case ir.ActionDone:
			return trace
		case ir.ActionLoad:
			v := f.load(act.Addr, act.Size)
			trace = append(trace, mop{kind: "load", addr: act.Addr, size: act.Size, val: v})
			resume = v
		case ir.ActionStore:
			f.store(act.Addr, act.Size, act.Val)
			trace = append(trace, mop{kind: "store", addr: act.Addr, size: act.Size, val: act.Val})
		case ir.ActionFlush:
			trace = append(trace, mop{kind: "flush", addr: act.Addr})
		case ir.ActionFence:
			trace = append(trace, mop{kind: "fence"})
		case ir.ActionEpoch:
			trace = append(trace, mop{kind: "epoch"})
		case ir.ActionCompute:
			trace = append(trace, mop{kind: "compute", val: uint64(act.Cycles)})
		case ir.ActionCAS:
			prev := f.load(act.Addr, act.Size)
			if prev == act.Old {
				f.store(act.Addr, act.Size, act.Val)
			}
			trace = append(trace, mop{kind: "cas", addr: act.Addr, size: act.Size, val: act.Val, old: act.Old})
			resume = prev
		default:
			t.Fatalf("unknown action kind %d", act.Kind)
		}
	}
}
