package workload

import (
	"fmt"

	"bbb/internal/cpu"
	"bbb/internal/memory"
	"bbb/internal/palloc"
	"bbb/internal/system"
)

// BTree is an extra workload beyond Table IV (the paper's §IV-B prose also
// names a btree): random-key insertions into a B+tree made crash consistent
// by *shadow paging* — the copy-on-write discipline of BPFS, which the
// paper cites as the origin of epoch persistency. Every insertion rewrites
// the root-to-leaf path into fresh nodes off to the side and commits with a
// single root-pointer store, so every program-order prefix is a complete,
// valid tree.
//
// This gives the simulator a very different persist-traffic profile from
// the in-place structures: several fresh, never-again-written lines per
// operation (no coalescing window at all), plus one hot root-pointer line
// (maximal coalescing). Each thread owns a private tree.
//
// Node layout (two lines): [magic, leaf, count, k0..k5, c0..c5] where the
// c slots hold child pointers (internal) or values (leaf).
type BTree struct {
	rootsBase  memory.Addr
	arenas     []*palloc.Arena
	threads    int
	noBarriers bool
}

// NewBTree builds the shadow-paging B+tree workload.
func NewBTree() *BTree { return &BTree{} }

// Name implements Workload.
func (bt *BTree) Name() string { return "btree" }

// Description implements Workload.
func (bt *BTree) Description() string {
	return "shadow-paging B+tree insertions (BPFS-style copy-on-write)"
}

// PaperPStores implements Workload; not a Table IV row, so no target. The
// measured mix is reported alongside.
func (bt *BTree) PaperPStores() float64 { return 0 }

const (
	offBMagic = 0
	offBLeaf  = 8
	offBCount = 16
	offBKeys  = 24
	bFanout   = 6
	offBVals  = offBKeys + bFanout*8
	bNodeSize = offBVals + bFanout*8 // 120 -> two lines
)

func (bt *BTree) root(t int) memory.Addr {
	return bt.rootsBase + memory.Addr(t)*memory.LineSize
}

// Setup implements Workload: per-thread root pointers at nil (empty tree).
func (bt *BTree) Setup(mem *memory.Memory, arena *palloc.Arena, p Params) {
	bt.threads = p.Threads
	bt.rootsBase = arena.Alloc(uint64(p.Threads) * memory.LineSize)
	bt.arenas = nil
	for t := 0; t < p.Threads; t++ {
		poke64(mem, bt.root(t), 0)
		// Shadow paging rewrites up to depth+1 nodes (2 lines each) per
		// insertion; depth grows with log_3(n). Budget generously.
		bt.arenas = append(bt.arenas, arena.Sub(uint64(24*(p.OpsPerThread+4))*memory.LineSize))
	}
}

// nodeView is a host-side decoded copy of a node, used while building the
// shadow path. All simulated traffic happens in load/store helpers.
type nodeView struct {
	leaf  bool
	count int
	keys  [bFanout]uint64
	vals  [bFanout]uint64 // child pointers or leaf values
}

func (bt *BTree) readNode(e cpu.Env, a memory.Addr) nodeView {
	var v nodeView
	v.leaf = cpu.Load64(e, a+offBLeaf) == 1
	v.count = int(cpu.Load64(e, a+offBCount))
	for i := 0; i < v.count; i++ {
		v.keys[i] = cpu.Load64(e, a+offBKeys+memory.Addr(i*8))
		v.vals[i] = cpu.Load64(e, a+offBVals+memory.Addr(i*8))
	}
	return v
}

// writeNode materializes a fully initialized shadow node (magic last).
func (bt *BTree) writeNode(e cpu.Env, t int, v nodeView) memory.Addr {
	a := bt.arenas[t].Alloc(bNodeSize)
	leaf := uint64(0)
	if v.leaf {
		leaf = 1
	}
	cpu.Store64(e, a+offBLeaf, leaf)
	cpu.Store64(e, a+offBCount, uint64(v.count))
	for i := 0; i < v.count; i++ {
		cpu.Store64(e, a+offBKeys+memory.Addr(i*8), v.keys[i])
		cpu.Store64(e, a+offBVals+memory.Addr(i*8), v.vals[i])
	}
	cpu.Store64(e, a+offBMagic, magicBNode)
	return a
}

// insertView returns v with (key, val) inserted in sorted position; the
// caller guarantees capacity.
func insertView(v nodeView, key, val uint64) nodeView {
	i := v.count
	for i > 0 && v.keys[i-1] > key {
		v.keys[i] = v.keys[i-1]
		v.vals[i] = v.vals[i-1]
		i--
	}
	v.keys[i] = key
	v.vals[i] = val
	v.count++
	return v
}

// split divides an overfull view (count == bFanout after insertion would
// exceed) into two; used when count == bFanout and one more entry arrives.
func splitViews(v nodeView, key, val uint64) (left, right nodeView, sep uint64) {
	// Build the oversized ordered sequence on the host.
	keys := make([]uint64, 0, bFanout+1)
	vals := make([]uint64, 0, bFanout+1)
	ins := false
	for i := 0; i < v.count; i++ {
		if !ins && key < v.keys[i] {
			keys = append(keys, key)
			vals = append(vals, val)
			ins = true
		}
		keys = append(keys, v.keys[i])
		vals = append(vals, v.vals[i])
	}
	if !ins {
		keys = append(keys, key)
		vals = append(vals, val)
	}
	mid := len(keys) / 2
	left = nodeView{leaf: v.leaf}
	for i := 0; i < mid; i++ {
		left.keys[i], left.vals[i] = keys[i], vals[i]
		left.count++
	}
	right = nodeView{leaf: v.leaf}
	for i := mid; i < len(keys); i++ {
		right.keys[i-mid], right.vals[i-mid] = keys[i], vals[i]
		right.count++
	}
	return left, right, right.keys[0]
}

// insert performs one shadow-paging insertion and returns the new root
// (plus the shadow node addresses for the persist barrier).
func (bt *BTree) insert(e cpu.Env, t int, rootPtr memory.Addr, key, val uint64) {
	old := memory.Addr(cpu.Load64(e, rootPtr))
	var newRoot memory.Addr
	var shadows []memory.Addr
	if old == 0 {
		leaf := bt.writeNode(e, t, insertView(nodeView{leaf: true}, key, val))
		newRoot, shadows = leaf, []memory.Addr{leaf}
	} else {
		a, b, sep, sh := bt.shadowInsert(e, t, old, key, val)
		shadows = sh
		if b == 0 {
			newRoot = a
		} else {
			// Root split: one fresh internal root over the two halves.
			root := nodeView{count: 2}
			root.keys[0], root.vals[0] = 0, uint64(a)
			root.keys[1], root.vals[1] = sep, uint64(b)
			newRoot = bt.writeNode(e, t, root)
			shadows = append(shadows, newRoot)
		}
	}
	// Persist the shadow nodes (both lines each), then commit with the
	// single root-pointer store.
	barrierAddrs := make([]memory.Addr, 0, 2*len(shadows))
	for _, s := range shadows {
		barrierAddrs = append(barrierAddrs, s, s+memory.LineSize)
	}
	barrierParams := Params{NoBarriers: bt.noBarriers}
	barrier(e, barrierParams, barrierAddrs...)
	cpu.Store64(e, rootPtr, uint64(newRoot)) //bbbvet:commit-store newRoot shadows
	barrier(e, barrierParams, rootPtr)
}

// shadowInsert copies the path through node for (key,val). It returns one
// or two replacement nodes (two when node split, with the separator), and
// the shadow node addresses written.
func (bt *BTree) shadowInsert(e cpu.Env, t int, node memory.Addr, key, val uint64) (a, b memory.Addr, sep uint64, shadows []memory.Addr) {
	v := bt.readNode(e, node)
	if v.leaf {
		// Duplicate key: copy-on-write update in place, no growth.
		for i := 0; i < v.count; i++ {
			if v.keys[i] == key {
				v.vals[i] = val
				n := bt.writeNode(e, t, v)
				return n, 0, 0, []memory.Addr{n}
			}
		}
		if v.count < bFanout {
			n := bt.writeNode(e, t, insertView(v, key, val))
			return n, 0, 0, []memory.Addr{n}
		}
		lv, rv, s := splitViews(v, key, val)
		ln := bt.writeNode(e, t, lv)
		rn := bt.writeNode(e, t, rv)
		return ln, rn, s, []memory.Addr{ln, rn}
	}
	// Internal: pick the child whose separator range covers key (entries
	// are sorted; entry i covers keys >= keys[i], entry 0 covers the rest).
	ci := 0
	for i := 1; i < v.count; i++ {
		if key >= v.keys[i] {
			ci = i
		}
	}
	ca, cb, csep, sh := bt.shadowInsert(e, t, memory.Addr(v.vals[ci]), key, val)
	shadows = sh
	v.vals[ci] = uint64(ca)
	if cb != 0 {
		if v.count < bFanout {
			v = insertView(v, csep, uint64(cb))
			n := bt.writeNode(e, t, v)
			return n, 0, 0, append(shadows, n)
		}
		lv, rv, s := splitViews(v, csep, uint64(cb))
		ln := bt.writeNode(e, t, lv)
		rn := bt.writeNode(e, t, rv)
		return ln, rn, s, append(shadows, ln, rn)
	}
	n := bt.writeNode(e, t, v)
	return n, 0, 0, append(shadows, n)
}

// Programs implements Workload.
func (bt *BTree) Programs(p Params) []system.Program {
	bt.noBarriers = p.NoBarriers
	progs := make([]system.Program, p.Threads)
	for t := 0; t < p.Threads; t++ {
		t := t
		progs[t] = func(e cpu.Env) {
			r := rng(p, t)
			for i := 0; i < p.OpsPerThread; i++ {
				bt.insert(e, t, bt.root(t), r.Uint64(), uint64(i))
				volatileWork(e, t, bt.volWork(p), r)
			}
		}
	}
	return progs
}

func (bt *BTree) volWork(p Params) int {
	if p.VolatileWork > 0 {
		return p.VolatileWork
	}
	return 30
}

// Check implements Workload: full B+tree validation on the durable image —
// magic on every reachable node, counts in range, keys sorted, children
// within separator ranges, uniform leaf depth.
func (bt *BTree) Check(mem *memory.Memory) error {
	for t := 0; t < bt.threads; t++ {
		rootPtr := peek64(mem, bt.root(t))
		if rootPtr == 0 {
			continue
		}
		if _, err := bt.checkNode(mem, t, memory.Addr(rootPtr), 0, ^uint64(0), 0); err != nil {
			return err
		}
	}
	return nil
}

// checkNode returns the leaf depth of the subtree.
func (bt *BTree) checkNode(mem *memory.Memory, t int, node memory.Addr, lo, hi uint64, depth int) (int, error) {
	if depth > 40 {
		return 0, fmt.Errorf("btree[%d]: depth limit exceeded", t)
	}
	if magic := peek64(mem, node+offBMagic); magic != magicBNode {
		return 0, fmt.Errorf("btree[%d]: reachable node %#x has magic %#x (shadow published before persist)", t, node, magic)
	}
	leaf := peek64(mem, node+offBLeaf) == 1
	count := int(peek64(mem, node+offBCount))
	if count < 1 || count > bFanout {
		return 0, fmt.Errorf("btree[%d]: node %#x count %d out of range", t, node, count)
	}
	var prev uint64
	for i := 0; i < count; i++ {
		k := peek64(mem, node+offBKeys+memory.Addr(i*8))
		if i > 0 && k <= prev {
			return 0, fmt.Errorf("btree[%d]: node %#x keys not ascending (%d then %d)", t, node, prev, k)
		}
		prev = k
		if leaf && (k < lo || k >= hi) {
			return 0, fmt.Errorf("btree[%d]: leaf %#x key %#x outside range [%#x,%#x)", t, node, k, lo, hi)
		}
	}
	if leaf {
		return depth, nil
	}
	leafDepth := -1
	for i := 0; i < count; i++ {
		child := peek64(mem, node+offBVals+memory.Addr(i*8))
		if child == 0 {
			return 0, fmt.Errorf("btree[%d]: internal %#x has nil child", t, node)
		}
		cLo := lo
		if i > 0 {
			cLo = peek64(mem, node+offBKeys+memory.Addr(i*8))
		}
		cHi := hi
		if i+1 < count {
			cHi = peek64(mem, node+offBKeys+memory.Addr((i+1)*8))
		}
		d, err := bt.checkNode(mem, t, memory.Addr(child), cLo, cHi, depth+1)
		if err != nil {
			return 0, err
		}
		if leafDepth == -1 {
			leafDepth = d
		} else if d != leafDepth {
			return 0, fmt.Errorf("btree[%d]: leaves at mixed depths %d vs %d (unbalanced shadow commit)", t, leafDepth, d)
		}
	}
	return leafDepth, nil
}

var _ Workload = (*BTree)(nil)
