package workload

import (
	"strings"
	"testing"

	"bbb/internal/memory"
	"bbb/internal/persistency"
)

func TestWALRunsAndValidates(t *testing.T) {
	w := NewWAL()
	p := testParams(200)
	sys, progs := Build(w, persistency.BBB, testConfig(), p)
	defer sys.Shutdown()
	sys.Run(progs)
	sys.Model.CrashDrain(sys.Cores, sys.Hier, sys.NVMM, sys.Mem)
	if err := w.Check(sys.Mem); err != nil {
		t.Fatal(err)
	}
	// Full run: every tail reaches capacity.
	for i := 0; i < p.Threads; i++ {
		if tail := peek64(sys.Mem, w.header(i)); tail != uint64(p.OpsPerThread) {
			t.Fatalf("thread %d tail = %d, want %d", i, tail, p.OpsPerThread)
		}
	}
}

func TestWALCrashConsistentBBBNoBarriers(t *testing.T) {
	w := NewWAL()
	p := testParams(300)
	p.NoBarriers = true
	for _, crashAt := range []uint64{6_000, 25_000, 80_000} {
		sys, _, _ := RunToCrash(w, persistency.BBB, testConfig(), p, crashAt)
		if err := w.Check(sys.Mem); err != nil {
			t.Fatalf("crash@%d: %v", crashAt, err)
		}
	}
}

func TestWALPMEMNoBarriersTearsRecords(t *testing.T) {
	w := NewWAL()
	p := testParams(400)
	p.NoBarriers = true
	cfg := testConfig()
	cfg.Hierarchy.L1Size = 1024
	cfg.Hierarchy.L2Size = 4096
	failures := 0
	for crashAt := uint64(4_000); crashAt <= 80_000; crashAt += 4_000 {
		sys, _, _ := RunToCrash(w, persistency.PMEM, cfg, p, crashAt)
		if err := w.Check(sys.Mem); err != nil {
			failures++
			if !strings.Contains(err.Error(), "wal[") {
				t.Fatalf("unexpected error shape: %v", err)
			}
		}
	}
	if failures == 0 {
		t.Fatal("PMEM without barriers never tore a published record")
	}
	t.Logf("WAL under PMEM/no-barriers: %d/20 crash points inconsistent", failures)
}

func TestWALPMEMWithBarriersConsistent(t *testing.T) {
	w := NewWAL()
	p := testParams(300)
	for _, crashAt := range []uint64{10_000, 50_000} {
		sys, _, _ := RunToCrash(w, persistency.PMEM, testConfig(), p, crashAt)
		if err := w.Check(sys.Mem); err != nil {
			t.Fatalf("crash@%d: %v", crashAt, err)
		}
	}
}

func TestWALCheckerDetectsTornRecord(t *testing.T) {
	w := NewWAL()
	p := testParams(100)
	mem := buildImage(t, w, p)
	// Corrupt a published record's payload.
	corrupt64(mem, w.record(0, 3)+offWALBody, 0xBAD)
	err := w.Check(mem)
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("torn record not detected: %v", err)
	}
}

func TestWALCheckerDetectsPrematureTail(t *testing.T) {
	w := NewWAL()
	p := testParams(100)
	mem := buildImage(t, w, p)
	// Publish one record past the real end: its seq is zero.
	corrupt64(mem, w.header(2), uint64(p.OpsPerThread+1))
	err := w.Check(mem)
	if err == nil {
		t.Fatal("premature tail not detected")
	}
	_ = memory.LineSize
}

func TestWALByName(t *testing.T) {
	if _, err := ByName("wal"); err != nil {
		t.Fatal(err)
	}
}
