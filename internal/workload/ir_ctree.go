package workload

import (
	"bbb/internal/ir"
	"bbb/internal/memory"
	"bbb/internal/system"
)

const (
	ctI    ir.Reg = iota // op index
	ctOps                // OpsPerThread
	ctKey                // random key
	ctCur                // root pointer value
	ctPC                 // ptrCell address
	ctNd                 // current node address
	ctPeek               // magic probe
	ctBit                // crit bit / internal node bit
	ctMask               // 1 << bit
	ctTmp                // key&mask scratch / LineAddr scratch
	ctExK                // existing leaf key
	ctDiff               // exKey ^ key
	ctNBit               // descend-2 node bit
	ctIN                 // new internal node address
	ctNode               // arena bump: next allocation address
	ctOne                // constant 1
	ctMagI               // magicInternal
	ctMagL               // magicLeaf
)

// CompiledPrograms implements CompiledWorkload.
func (c *CTree) CompiledPrograms(p Params) []system.CompiledProgram {
	progs := make([]system.CompiledProgram, p.Threads)
	for t := 0; t < p.Threads; t++ {
		progs[t] = c.compile(p, t)
	}
	return progs
}

// compile transcribes CTree.insert op for op: same loads in the same
// order, same branch structure, so the machine-action stream is the
// goroutine twin's exactly. Allocation is a bump register: leaf and
// internal nodes both round to one line, and the twin allocates a leaf
// (empty root), nothing (update) or leaf+internal (split) per op.
func (c *CTree) compile(p Params, t int) *ir.Prog {
	em := newEmitter(p, t)
	root := uint64(c.root(t))
	em.Const(ctOne, 1)
	em.Const(ctMagI, magicInternal)
	em.Const(ctMagL, magicLeaf)
	em.Const(ctNode, uint64(c.arenas[t].Mark()))
	return em.opLoop(ctI, ctOps, func() {
		em.Rand64(ctKey) // val is the op index ctI
		vw := em.NewLabel()

		em.Load64(ctCur, regZero, root)
		nonempty := em.NewLabel()
		em.Bne(ctCur, regZero, nonempty)
		// Empty root: fresh leaf, publish into the root cell.
		em.Store64(ctKey, ctNode, offLeafKey)
		em.Store64(ctI, ctNode, offLeafVal)
		em.Store64(ctMagL, ctNode, offLeafMagic)
		em.barrier(bAddr{ctNode, 0})
		em.Store64(ctNode, regZero, root)
		em.barrier(bAddr{regZero, root})
		em.AddImm(ctNode, ctNode, memory.LineSize)
		em.Jmp(vw)
		em.Bind(nonempty)

		// First descent: walk internal nodes by key bit to the candidate
		// leaf, tracking the edge cell.
		em.Const(ctPC, root)
		em.Mov(ctNd, ctCur)
		d1, d1done := em.NewLabel(), em.NewLabel()
		em.Bind(d1)
		em.Load64(ctPeek, ctNd, offIntMagic)
		em.Bne(ctPeek, ctMagI, d1done)
		em.Load64(ctBit, ctNd, offIntBit)
		em.Shl(ctMask, ctOne, ctBit)
		em.And(ctTmp, ctKey, ctMask)
		right1, next1 := em.NewLabel(), em.NewLabel()
		em.Bne(ctTmp, regZero, right1)
		em.AddImm(ctPC, ctNd, offIntLeft)
		em.Jmp(next1)
		em.Bind(right1)
		em.AddImm(ctPC, ctNd, offIntRight)
		em.Bind(next1)
		em.Load64(ctNd, ctPC, 0)
		em.Jmp(d1)
		em.Bind(d1done)

		em.Load64(ctExK, ctNd, offLeafKey)
		fresh := em.NewLabel()
		em.Bne(ctExK, ctKey, fresh)
		// Same key: update in place.
		em.Store64(ctI, ctNd, offLeafVal)
		em.barrier(bAddr{ctNd, 0})
		em.Jmp(vw)
		em.Bind(fresh)

		// Highest differing bit (pure host work in the twin: inline only).
		em.Xor(ctDiff, ctExK, ctKey)
		em.Const(ctBit, 63)
		bitloop, bitdone := em.NewLabel(), em.NewLabel()
		em.Bind(bitloop)
		em.Shl(ctMask, ctOne, ctBit)
		em.And(ctTmp, ctDiff, ctMask)
		em.Bne(ctTmp, regZero, bitdone)
		em.SubImm(ctBit, ctBit, 1)
		em.Jmp(bitloop)
		em.Bind(bitdone)

		// Second descent: stop at the first edge whose crit bit is at or
		// below ours.
		em.Const(ctPC, root)
		em.Load64(ctNd, regZero, root)
		d2, d2done := em.NewLabel(), em.NewLabel()
		em.Bind(d2)
		em.Load64(ctPeek, ctNd, offIntMagic)
		em.Bne(ctPeek, ctMagI, d2done)
		em.Load64(ctNBit, ctNd, offIntBit)
		em.BgeU(ctBit, ctNBit, d2done) // nbit <= bit: insertion point
		em.Shl(ctMask, ctOne, ctNBit)
		em.And(ctTmp, ctKey, ctMask)
		right2, next2 := em.NewLabel(), em.NewLabel()
		em.Bne(ctTmp, regZero, right2)
		em.AddImm(ctPC, ctNd, offIntLeft)
		em.Jmp(next2)
		em.Bind(right2)
		em.AddImm(ctPC, ctNd, offIntRight)
		em.Bind(next2)
		em.Load64(ctNd, ctPC, 0)
		em.Jmp(d2)
		em.Bind(d2done)

		// Build leaf (at the bump) and internal node (next line) off to
		// the side, magics last; then the single commit store.
		em.Store64(ctKey, ctNode, offLeafKey)
		em.Store64(ctI, ctNode, offLeafVal)
		em.Store64(ctMagL, ctNode, offLeafMagic)
		em.AddImm(ctIN, ctNode, memory.LineSize)
		em.Store64(ctBit, ctIN, offIntBit)
		em.Shl(ctMask, ctOne, ctBit)
		em.And(ctTmp, ctKey, ctMask)
		keyhi, magic := em.NewLabel(), em.NewLabel()
		em.Bne(ctTmp, regZero, keyhi)
		em.Store64(ctNode, ctIN, offIntLeft)
		em.Store64(ctNd, ctIN, offIntRight)
		em.Jmp(magic)
		em.Bind(keyhi)
		em.Store64(ctNd, ctIN, offIntLeft)
		em.Store64(ctNode, ctIN, offIntRight)
		em.Bind(magic)
		em.Store64(ctMagI, ctIN, offIntMagic)
		em.barrier(bAddr{ctNode, 0}, bAddr{ctIN, 0})
		em.Store64(ctIN, ctPC, 0)
		em.AndImm(ctTmp, ctPC, ^uint64(memory.LineSize-1))
		em.barrier(bAddr{ctTmp, 0})
		em.AddImm(ctNode, ctNode, 2*memory.LineSize)

		em.Bind(vw)
		em.volatileWork(c.volWork(p))
	})
}

var _ CompiledWorkload = (*CTree)(nil)
