package workload

import (
	"bbb/internal/ir"
	"bbb/internal/system"
)

// Register plan for the array programs (low registers; shared helpers own
// the top of the file).
const (
	arI    ir.Reg = iota // op index
	arOps                // OpsPerThread
	arIdx                // first picked element (byte offset after shift)
	arIdx2               // second picked element (swap)
	arTmp                // discarded load value
	arVal                // encoded store value / swap temp 1
	arVal2               // swap temp 2
)

// CompiledPrograms implements CompiledWorkload.
func (a *Array) CompiledPrograms(p Params) []system.CompiledProgram {
	progs := make([]system.CompiledProgram, p.Threads)
	for t := 0; t < p.Threads; t++ {
		progs[t] = a.compile(p, t)
	}
	return progs
}

// emitPick emits a.pick(t, r) into d as a byte offset from a.base.
func (a *Array) emitPick(em *emitter, d ir.Reg, t int) {
	if a.conflict {
		em.RandIntn(d, a.elems)
	} else {
		part := a.elems / a.threads
		em.RandIntn(d, part)
		em.AddImm(d, d, uint64(t*part))
	}
	em.ShlImm(d, d, 3)
}

func (a *Array) compile(p Params, t int) *ir.Prog {
	em := newEmitter(p, t)
	base := uint64(a.base)
	return em.opLoop(arI, arOps, func() {
		switch a.op {
		case OpMutate:
			a.emitPick(em, arIdx, t)
			em.Load64(arTmp, arIdx, base)
			// encode(t, i): ops stay far below 2^48, so the seq mask is
			// the identity and encode is a single OR.
			em.OrImm(arVal, arI, arrayTag|uint64(t&0xFF)<<48)
			em.Store64(arVal, arIdx, base)
			em.barrier(bAddr{arIdx, base})
		case OpSwap:
			a.emitPick(em, arIdx, t)
			a.emitPick(em, arIdx2, t)
			em.Load64(arVal, arIdx, base)
			em.Load64(arVal2, arIdx2, base)
			em.Store64(arVal2, arIdx, base)
			em.Store64(arVal, arIdx2, base)
			em.barrier(bAddr{arIdx, base}, bAddr{arIdx2, base})
		}
		em.volatileWork(a.volWork(p))
	})
}

var _ CompiledWorkload = (*Array)(nil)
