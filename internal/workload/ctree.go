package workload

import (
	"fmt"

	"bbb/internal/cpu"
	"bbb/internal/memory"
	"bbb/internal/palloc"
	"bbb/internal/system"
)

// CTree is the Table IV "ctree" row: random-key insertions into a crit-bit
// (binary radix) tree, the structure the PMDK examples call ctree. Each
// thread owns a private tree.
//
// Insert ordering: the new leaf and its new internal parent are fully
// initialized (children pointing at both the old subtree and the new leaf,
// magic written last), and the operation commits with a single pointer
// store into the existing tree — so every crash prefix is a valid tree.
//
// Leaf layout:     [magic, key, val]
// Internal layout: [magic, bit, left, right]
type CTree struct {
	rootsBase memory.Addr
	arenas    []*palloc.Arena
	threads   int
}

// NewCTree builds the crit-bit tree workload.
func NewCTree() *CTree { return &CTree{} }

// Name implements Workload.
func (c *CTree) Name() string { return "ctree" }

// Description implements Workload.
func (c *CTree) Description() string { return "random insertions into a persistent crit-bit tree" }

// PaperPStores implements Workload (Table IV: 18.9%).
func (c *CTree) PaperPStores() float64 { return 18.9 }

const (
	offLeafMagic = 0
	offLeafKey   = 8
	offLeafVal   = 16
	leafSize     = 24

	offIntMagic = 0
	offIntBit   = 8
	offIntLeft  = 16
	offIntRight = 24
	intSize     = 32
)

// Setup implements Workload: a root pointer per thread, nil-initialized.
func (c *CTree) Setup(mem *memory.Memory, arena *palloc.Arena, p Params) {
	c.threads = p.Threads
	c.rootsBase = arena.Alloc(uint64(p.Threads) * memory.LineSize)
	c.arenas = nil
	for t := 0; t < p.Threads; t++ {
		poke64(mem, c.root(t), 0)
		// Worst case two nodes per insertion.
		c.arenas = append(c.arenas, arena.Sub(uint64(2*p.OpsPerThread+2)*memory.LineSize))
	}
}

func (c *CTree) root(t int) memory.Addr {
	return c.rootsBase + memory.Addr(t)*memory.LineSize
}

// newLeaf writes a fully initialized leaf and returns its address.
func (c *CTree) newLeaf(e cpu.Env, t int, key, val uint64) memory.Addr {
	leaf := c.arenas[t].Alloc(leafSize)
	cpu.Store64(e, leaf+offLeafKey, key)
	cpu.Store64(e, leaf+offLeafVal, val)
	cpu.Store64(e, leaf+offLeafMagic, magicLeaf)
	return leaf
}

// Programs implements Workload.
func (c *CTree) Programs(p Params) []system.Program {
	progs := make([]system.Program, p.Threads)
	for t := 0; t < p.Threads; t++ {
		t := t
		progs[t] = func(e cpu.Env) {
			r := rng(p, t)
			root := c.root(t)
			for i := 0; i < p.OpsPerThread; i++ {
				c.insert(e, p, t, root, r.Uint64(), uint64(i))
				volatileWork(e, t, c.volWork(p), r)
			}
		}
	}
	return progs
}

func (c *CTree) volWork(p Params) int {
	if p.VolatileWork > 0 {
		return p.VolatileWork
	}
	return 34
}

// insert adds (key, val) to the tree rooted at the pointer cell root.
func (c *CTree) insert(e cpu.Env, p Params, t int, root memory.Addr, key, val uint64) {
	cur := cpu.Load64(e, root)
	if cur == 0 {
		leaf := c.newLeaf(e, t, key, val)
		barrier(e, p, leaf)
		cpu.Store64(e, root, leaf) //bbbvet:commit-store leaf
		barrier(e, p, root)
		return
	}
	// Descend to the candidate leaf, remembering the path cells.
	ptrCell := root
	node := memory.Addr(cur)
	for peek := cpu.Load64(e, node+offIntMagic); peek == magicInternal; peek = cpu.Load64(e, node+offIntMagic) {
		bit := cpu.Load64(e, node+offIntBit)
		if key&(1<<bit) == 0 {
			ptrCell = node + offIntLeft
		} else {
			ptrCell = node + offIntRight
		}
		node = memory.Addr(cpu.Load64(e, ptrCell))
	}
	exKey := cpu.Load64(e, node+offLeafKey)
	if exKey == key {
		// Update in place: a single 8-byte store, trivially ordered.
		cpu.Store64(e, node+offLeafVal, val)
		barrier(e, p, node)
		return
	}
	// Find the highest differing bit, then re-descend to the correct
	// insertion point: the first edge whose subtree's crit bit is below
	// ours (standard crit-bit insertion).
	diff := exKey ^ key
	bit := uint64(63)
	for diff&(1<<bit) == 0 {
		bit--
	}
	ptrCell = root
	node = memory.Addr(cpu.Load64(e, root))
	for cpu.Load64(e, node+offIntMagic) == magicInternal {
		nbit := cpu.Load64(e, node+offIntBit)
		if nbit <= bit {
			break
		}
		if key&(1<<nbit) == 0 {
			ptrCell = node + offIntLeft
		} else {
			ptrCell = node + offIntRight
		}
		node = memory.Addr(cpu.Load64(e, ptrCell))
	}
	// Build the new leaf and internal node completely off to the side.
	leaf := c.newLeaf(e, t, key, val)
	inode := c.arenas[t].Alloc(intSize)
	cpu.Store64(e, inode+offIntBit, bit)
	if key&(1<<bit) == 0 {
		cpu.Store64(e, inode+offIntLeft, leaf)
		cpu.Store64(e, inode+offIntRight, uint64(node))
	} else {
		cpu.Store64(e, inode+offIntLeft, uint64(node))
		cpu.Store64(e, inode+offIntRight, leaf)
	}
	cpu.Store64(e, inode+offIntMagic, magicInternal)
	barrier(e, p, leaf, inode)
	// Commit: one pointer store into the live tree.
	cpu.Store64(e, ptrCell, inode) //bbbvet:commit-store leaf inode
	barrier(e, p, memory.LineAddr(ptrCell))
}

// Check implements Workload: every reachable node is fully initialized and
// every leaf's key is consistent with the bit decisions on its path.
func (c *CTree) Check(mem *memory.Memory) error {
	for t := 0; t < c.threads; t++ {
		rootPtr := peek64(mem, c.root(t))
		if rootPtr == 0 {
			continue
		}
		if err := c.checkNode(mem, t, memory.Addr(rootPtr), 0, 0, 0); err != nil {
			return err
		}
	}
	return nil
}

// checkNode validates the subtree at node; fixedMask/fixedBits carry the key
// bits implied by the path so far.
func (c *CTree) checkNode(mem *memory.Memory, t int, node memory.Addr, fixedMask, fixedBits uint64, depth int) error {
	if depth > 70 {
		return fmt.Errorf("ctree[%d]: depth exceeds key width (corrupt links)", t)
	}
	switch magic := peek64(mem, node+offIntMagic); magic {
	case magicLeaf:
		key := peek64(mem, node+offLeafKey)
		if key&fixedMask != fixedBits {
			return fmt.Errorf("ctree[%d]: leaf %#x key %#x violates path bits (mask %#x want %#x)", t, node, key, fixedMask, fixedBits)
		}
		return nil
	case magicInternal:
		bit := peek64(mem, node+offIntBit)
		if bit > 63 {
			return fmt.Errorf("ctree[%d]: internal %#x has bit %d", t, node, bit)
		}
		left := peek64(mem, node+offIntLeft)
		right := peek64(mem, node+offIntRight)
		if left == 0 || right == 0 {
			return fmt.Errorf("ctree[%d]: internal %#x has nil child (partial publish)", t, node)
		}
		if err := c.checkNode(mem, t, memory.Addr(left), fixedMask|1<<bit, fixedBits, depth+1); err != nil {
			return err
		}
		return c.checkNode(mem, t, memory.Addr(right), fixedMask|1<<bit, fixedBits|1<<bit, depth+1)
	default:
		return fmt.Errorf("ctree[%d]: reachable node %#x has magic %#x (unpersisted node published)", t, node, magic)
	}
}

var _ Workload = (*CTree)(nil)
