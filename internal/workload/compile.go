package workload

import (
	"fmt"

	"bbb/internal/engine"
	"bbb/internal/ir"
	"bbb/internal/palloc"
	"bbb/internal/persistency"
	"bbb/internal/system"
)

// CompiledWorkload is a Workload that can also express its per-thread
// programs as ir.Prog streams the core interprets inline from the event
// kernel — no goroutine, no channel handoff per access. A compiled program
// must be the exact twin of the corresponding Programs entry: same PRNG
// draw order, same loads, stores, barriers and compute in the same order,
// so both paths produce byte-identical system.Results (`make ir-equiv`).
//
// Setup must run before CompiledPrograms: compilation bakes in the heap
// bases Setup chose, and replays the deterministic arena bump sequence with
// a register (palloc rounds to whole lines and compiled workloads never
// Free, so the allocation addresses are a pure function of the op stream).
type CompiledWorkload interface {
	Workload
	// CompiledPrograms returns one compiled program per thread.
	CompiledPrograms(p Params) []system.CompiledProgram
}

// Compiled reports whether w supports the compiled path.
func Compiled(w Workload) (CompiledWorkload, bool) {
	cw, ok := w.(CompiledWorkload)
	return cw, ok
}

// BuildCompiled is Build over the compiled path: fresh machine, Setup, then
// compile one program per thread against the chosen heap layout.
func BuildCompiled(w CompiledWorkload, s persistency.Scheme, cfg system.Config, p Params) (*system.System, []system.CompiledProgram) {
	cfg.Scheme = s
	cfg.Cores = p.Threads
	cfg.Hierarchy.Cores = p.Threads
	sys := system.New(cfg)
	arena := palloc.FromLayout(cfg.Layout)
	w.Setup(sys.Mem, arena, p)
	return sys, w.CompiledPrograms(p)
}

// RunCompiled executes the workload to completion on the compiled path.
func RunCompiled(w CompiledWorkload, s persistency.Scheme, cfg system.Config, p Params) system.Result {
	sys, progs := BuildCompiled(w, s, cfg, p)
	defer sys.Shutdown()
	return sys.RunCompiled(progs)
}

// BuildToCrashCompiled is BuildToCrash over the compiled path: run until
// crashCycle (or completion) and return the stopped machine.
func BuildToCrashCompiled(w CompiledWorkload, s persistency.Scheme, cfg system.Config, p Params, crashCycle engine.Cycle) (*system.System, bool) {
	sys, progs := BuildCompiled(w, s, cfg, p)
	finished := sys.RunUntilCompiled(crashCycle, progs)
	return sys, finished
}

// --- emission helpers shared by every compiled workload ---

// Fixed high registers for the shared helpers; workload bodies allocate
// upward from 0 and must stay below regVWVal.
const (
	// regZero always holds zero (set by newEmitter), giving branches a
	// zero operand and absolute addresses a zero base.
	regZero ir.Reg = 47
	// regVWCnt/regVWOff/regVWVal are volatileWork's loop counter, offset
	// and value scratch.
	regVWCnt ir.Reg = 46
	regVWOff ir.Reg = 45
	regVWVal ir.Reg = 44
)

// emitter wraps ir.Builder with the workload-side conventions: the
// NoBarriers gate, volatileWork with the goroutine twin's exact PRNG draw
// order, and the outer per-op loop.
type emitter struct {
	*ir.Builder
	p      Params
	thread int
}

func newEmitter(p Params, thread int) *emitter {
	em := &emitter{
		Builder: ir.NewBuilder(p.Seed*1000003 + int64(thread)),
		p:       p,
		thread:  thread,
	}
	em.Const(regZero, 0)
	return em
}

// bAddr names one barrier address as reg[base] + off.
type bAddr struct {
	base ir.Reg
	off  uint64
}

// barrier emits the workload barrier over the given addresses — nothing at
// all under NoBarriers, mirroring the barrier() helper of the Env twins.
func (em *emitter) barrier(addrs ...bAddr) {
	if em.p.NoBarriers {
		return
	}
	for _, a := range addrs {
		em.BarrierAddr(a.base, a.off)
	}
	em.Barrier()
}

// volatileWork emits the DRAM-side store mix of volatileWork(): n draws of
// (Intn offset, Uint64 value) each stored to the thread's scratch buffer,
// then one load and a little compute.
func (em *emitter) volatileWork(n int) {
	if n <= 0 {
		return
	}
	base := uint64(volatileScratchBase(em.thread))
	em.Const(regVWCnt, uint64(n))
	top := em.NewLabel()
	em.Bind(top)
	em.RandIntn(regVWOff, 64*8)
	em.ShlImm(regVWOff, regVWOff, 3)
	em.Rand64(regVWVal)
	em.Store64(regVWVal, regVWOff, base)
	em.SubImm(regVWCnt, regVWCnt, 1)
	em.Bne(regVWCnt, regZero, top)
	em.Load64(regVWVal, regZero, base)
	em.Compute(uint64(4 * n))
}

// opLoop seals the program: body emitted once inside a loop that runs
// OpsPerThread times with the op index in counter, then Halt and Build.
func (em *emitter) opLoop(counter, limit ir.Reg, body func()) *ir.Prog {
	if em.p.OpsPerThread <= 0 {
		em.Halt()
		return em.Build()
	}
	em.Const(counter, 0)
	em.Const(limit, uint64(em.p.OpsPerThread))
	top := em.NewLabel()
	em.Bind(top)
	body()
	em.AddImm(counter, counter, 1)
	em.BltU(counter, limit, top)
	em.Halt()
	return em.Build()
}

// mustPow2 guards compile-time modulo-to-mask strength reduction.
func mustPow2(n int, what string) {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("workload: %s (%d) must be a power of two to compile", what, n))
	}
}
