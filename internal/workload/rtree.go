package workload

import (
	"fmt"

	"bbb/internal/cpu"
	"bbb/internal/memory"
	"bbb/internal/palloc"
	"bbb/internal/system"
)

// RTree is the Table IV "rtree" row: random insertions into a persistent
// hierarchical bounding structure. Nodes carry a 1-D bounding interval
// [lo, hi]; internal nodes hold child pointers, leaves hold point items.
// Each thread owns a private tree.
//
// Insert ordering (the interesting part for persist ordering):
//
//  1. Descending, a node's bounds are *widened before* the insertion
//     proceeds into its subtree — so at every instant each node's interval
//     contains its children's (a conservative, never-violated containment).
//  2. A leaf append writes the item slot first and bumps the count after —
//     a crash between the two just hides the item.
//  3. A full leaf is handled by building a fully initialized internal node
//     (old leaf + fresh leaf as children, magic last) and swinging the
//     parent's single pointer — every prefix is a valid tree.
//
// Node layout (two lines): [magic, leaf, count, lo, hi, e0..e5] where the
// entries are child pointers (internal) or item values (leaf).
type RTree struct {
	rootsBase memory.Addr
	arenas    []*palloc.Arena
	threads   int
}

// NewRTree builds the rtree workload.
func NewRTree() *RTree { return &RTree{} }

// Name implements Workload.
func (rt *RTree) Name() string { return "rtree" }

// Description implements Workload.
func (rt *RTree) Description() string {
	return "random insertions into a persistent bounding-interval tree"
}

// PaperPStores implements Workload (Table IV: 15.5%).
func (rt *RTree) PaperPStores() float64 { return 15.5 }

const (
	offRMagic = 0
	offRLeaf  = 8
	offRCount = 16
	offRLo    = 24
	offRHi    = 32
	offREntry = 40
	rFanout   = 6
	rNodeSize = offREntry + rFanout*8 // 88 -> two lines
)

func (rt *RTree) root(t int) memory.Addr {
	return rt.rootsBase + memory.Addr(t)*memory.LineSize
}

// Setup implements Workload: per-thread root pointers, each pointing at an
// empty leaf pre-loaded in the image.
func (rt *RTree) Setup(mem *memory.Memory, arena *palloc.Arena, p Params) {
	rt.threads = p.Threads
	rt.rootsBase = arena.Alloc(uint64(p.Threads) * memory.LineSize)
	rt.arenas = nil
	for t := 0; t < p.Threads; t++ {
		// Worst case: a split allocates three two-line nodes per insertion.
		sub := arena.Sub(uint64(8*(p.OpsPerThread+2)) * memory.LineSize)
		rt.arenas = append(rt.arenas, sub)
		leaf := sub.Alloc(rNodeSize)
		poke64(mem, leaf+offRMagic, magicRNode)
		poke64(mem, leaf+offRLeaf, 1)
		poke64(mem, leaf+offRCount, 0)
		poke64(mem, leaf+offRLo, ^uint64(0)) // empty interval: lo > hi
		poke64(mem, leaf+offRHi, 0)
		poke64(mem, rt.root(t), uint64(leaf))
	}
}

// Programs implements Workload.
func (rt *RTree) Programs(p Params) []system.Program {
	progs := make([]system.Program, p.Threads)
	for t := 0; t < p.Threads; t++ {
		t := t
		progs[t] = func(e cpu.Env) {
			r := rng(p, t)
			for i := 0; i < p.OpsPerThread; i++ {
				val := uint64(r.Int63n(1 << 40))
				rt.insert(e, p, t, val)
				volatileWork(e, t, rt.volWork(p), r)
			}
		}
	}
	return progs
}

func (rt *RTree) volWork(p Params) int {
	if p.VolatileWork > 0 {
		return p.VolatileWork
	}
	return 43
}

// widen grows node's interval to include val, persisting before the caller
// proceeds deeper, preserving top-down containment.
func (rt *RTree) widen(e cpu.Env, p Params, node memory.Addr, val uint64) {
	lo := cpu.Load64(e, node+offRLo)
	hi := cpu.Load64(e, node+offRHi)
	changed := false
	if lo > hi { // empty
		cpu.Store64(e, node+offRLo, val)
		cpu.Store64(e, node+offRHi, val)
		changed = true
	} else {
		if val < lo {
			cpu.Store64(e, node+offRLo, val)
			changed = true
		}
		if val > hi {
			cpu.Store64(e, node+offRHi, val)
			changed = true
		}
	}
	if changed {
		barrier(e, p, node)
	}
}

// insert adds val to thread t's tree.
func (rt *RTree) insert(e cpu.Env, p Params, t int, val uint64) {
	ptrCell := rt.root(t)
	node := memory.Addr(cpu.Load64(e, ptrCell))
	for {
		rt.widen(e, p, node, val)
		if cpu.Load64(e, node+offRLeaf) == 1 {
			break
		}
		// Internal: descend into the child whose interval needs the least
		// enlargement (ties to the first).
		count := cpu.Load64(e, node+offRCount)
		best := memory.Addr(0)
		bestCell := memory.Addr(0)
		bestCost := ^uint64(0)
		for i := uint64(0); i < count; i++ {
			cell := node + offREntry + memory.Addr(i*8)
			child := memory.Addr(cpu.Load64(e, cell))
			lo := cpu.Load64(e, child+offRLo)
			hi := cpu.Load64(e, child+offRHi)
			cost := uint64(0)
			switch {
			case lo > hi:
				cost = 0 // empty child: free
			case val < lo:
				cost = lo - val
			case val > hi:
				cost = val - hi
			}
			if cost < bestCost {
				bestCost, best, bestCell = cost, child, cell
			}
		}
		ptrCell = bestCell
		node = best
	}

	count := cpu.Load64(e, node+offRCount)
	if count < rFanout {
		// Append: item slot first, count after — the crash-safe order.
		cpu.Store64(e, node+offREntry+memory.Addr(count*8), val)
		barrier(e, p, node+offREntry+memory.Addr(count*8))
		cpu.Store64(e, node+offRCount, count+1)
		barrier(e, p, node)
		return
	}

	// Leaf full: median split. Read the items, distribute low/high halves
	// (plus val) into two fresh leaves, build a fresh internal node over
	// them — all fully initialized off to the side — then commit with the
	// single parent-pointer swing. The old leaf becomes garbage, which the
	// paper's scope explicitly tolerates (§II-A: leaks are out of scope).
	items := make([]uint64, 0, rFanout+1)
	for i := uint64(0); i < count; i++ {
		items = append(items, cpu.Load64(e, node+offREntry+memory.Addr(i*8)))
	}
	items = append(items, val)
	sortU64(items)
	mid := len(items) / 2
	arena := rt.arenas[t]
	leafA := rt.newLeafWith(e, t, arena, items[:mid])
	leafB := rt.newLeafWith(e, t, arena, items[mid:])

	inode := arena.Alloc(rNodeSize)
	cpu.Store64(e, inode+offRLeaf, 0)
	cpu.Store64(e, inode+offRCount, 2)
	cpu.Store64(e, inode+offRLo, items[0])
	cpu.Store64(e, inode+offRHi, items[len(items)-1])
	cpu.Store64(e, inode+offREntry, uint64(leafA))
	cpu.Store64(e, inode+offREntry+8, uint64(leafB))
	cpu.Store64(e, inode+offRMagic, magicRNode)
	barrier(e, p, leafA, leafA+memory.LineSize, leafB, leafB+memory.LineSize, inode, inode+memory.LineSize)

	cpu.Store64(e, ptrCell, uint64(inode)) //bbbvet:commit-store leafA leafB inode
	barrier(e, p, memory.LineAddr(ptrCell))
}

// newLeafWith writes a fully initialized leaf holding the sorted items.
func (rt *RTree) newLeafWith(e cpu.Env, t int, arena *palloc.Arena, items []uint64) memory.Addr {
	leaf := arena.Alloc(rNodeSize)
	cpu.Store64(e, leaf+offRLeaf, 1)
	cpu.Store64(e, leaf+offRCount, uint64(len(items)))
	cpu.Store64(e, leaf+offRLo, items[0])
	cpu.Store64(e, leaf+offRHi, items[len(items)-1])
	for i, v := range items {
		cpu.Store64(e, leaf+offREntry+memory.Addr(i*8), v)
	}
	cpu.Store64(e, leaf+offRMagic, magicRNode)
	return leaf
}

func sortU64(xs []uint64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Check implements Workload: every reachable node is fully initialized,
// counts are in range, and every child interval (and leaf item) lies within
// its parent's interval — the containment invariant the widen-first
// ordering maintains at every instant.
func (rt *RTree) Check(mem *memory.Memory) error {
	for t := 0; t < rt.threads; t++ {
		rootPtr := peek64(mem, rt.root(t))
		if rootPtr == 0 {
			return fmt.Errorf("rtree[%d]: nil root", t)
		}
		if err := rt.checkNode(mem, t, memory.Addr(rootPtr), 0, ^uint64(0), 0); err != nil {
			return err
		}
	}
	return nil
}

func (rt *RTree) checkNode(mem *memory.Memory, t int, node memory.Addr, pLo, pHi uint64, depth int) error {
	if depth > 64 {
		return fmt.Errorf("rtree[%d]: depth limit exceeded (corrupt links)", t)
	}
	if magic := peek64(mem, node+offRMagic); magic != magicRNode {
		return fmt.Errorf("rtree[%d]: reachable node %#x has magic %#x (unpersisted node published)", t, node, magic)
	}
	leaf := peek64(mem, node+offRLeaf)
	count := peek64(mem, node+offRCount)
	lo := peek64(mem, node+offRLo)
	hi := peek64(mem, node+offRHi)
	if count > rFanout {
		return fmt.Errorf("rtree[%d]: node %#x count %d exceeds fanout", t, node, count)
	}
	if lo <= hi { // non-empty: must be inside the parent's interval
		if lo < pLo || hi > pHi {
			return fmt.Errorf("rtree[%d]: node %#x interval [%d,%d] escapes parent [%d,%d] (bounds persisted after child)", t, node, lo, hi, pLo, pHi)
		}
	}
	for i := uint64(0); i < count; i++ {
		entry := peek64(mem, node+offREntry+memory.Addr(i*8))
		if leaf == 1 {
			if entry < lo || entry > hi {
				return fmt.Errorf("rtree[%d]: leaf %#x item %d outside [%d,%d]", t, node, entry, lo, hi)
			}
			continue
		}
		if entry == 0 {
			return fmt.Errorf("rtree[%d]: internal %#x has nil child (partial publish)", t, node)
		}
		if err := rt.checkNode(mem, t, memory.Addr(entry), lo, hi, depth+1); err != nil {
			return err
		}
	}
	return nil
}

var _ Workload = (*RTree)(nil)
