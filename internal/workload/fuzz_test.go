package workload

import (
	"testing"

	"bbb/internal/persistency"
)

// FuzzCrashPoints crashes a BBB run at fuzz-chosen cycles and requires the
// recovery invariants to hold at every one of them — the paper's central
// claim, under adversarially chosen timing. The seed corpus runs as a
// normal test; `go test -fuzz FuzzCrashPoints` explores further.
func FuzzCrashPoints(f *testing.F) {
	f.Add(uint32(1_000), uint8(0))
	f.Add(uint32(33_333), uint8(1))
	f.Add(uint32(77_777), uint8(2))
	f.Add(uint32(250_000), uint8(3))
	f.Fuzz(func(t *testing.T, crashAt uint32, pick uint8) {
		ws := []Workload{NewLinkedList(), NewHashmap(), NewWAL(), NewBTree()}
		w := ws[int(pick)%len(ws)]
		p := testParams(120)
		p.NoBarriers = true
		cycle := uint64(crashAt)%300_000 + 100
		sys, _, _ := RunToCrash(w, persistency.BBB, testConfig(), p, cycle)
		if err := w.Check(sys.Mem); err != nil {
			t.Fatalf("%s crash@%d: %v", w.Name(), cycle, err)
		}
	})
}
