package workload

import (
	"bbb/internal/ir"
	"bbb/internal/memory"
	"bbb/internal/system"
)

const (
	hmI     ir.Reg = iota // op index
	hmOps                 // OpsPerThread
	hmKey                 // random key
	hmHash                // hashKey accumulator
	hmTmp                 // hash scratch
	hmBkt                 // bucket byte offset
	hmHead                // old bucket head
	hmNode                // arena bump: next node address
	hmMagic               // magicHashNode
)

// CompiledPrograms implements CompiledWorkload.
func (h *Hashmap) CompiledPrograms(p Params) []system.CompiledProgram {
	progs := make([]system.CompiledProgram, p.Threads)
	for t := 0; t < p.Threads; t++ {
		progs[t] = h.compile(p, t)
	}
	return progs
}

func (h *Hashmap) compile(p Params, t int) *ir.Prog {
	mustPow2(h.buckets, "hashmap buckets")
	em := newEmitter(p, t)
	table := uint64(h.tableBases[t])
	em.Const(hmMagic, magicHashNode)
	em.Const(hmNode, uint64(h.arenas[t].Mark()))
	return em.opLoop(hmI, hmOps, func() {
		em.Rand64(hmKey)
		// hashKey: the 64-bit finalizer, term by term.
		em.ShrImm(hmTmp, hmKey, 33)
		em.Xor(hmHash, hmKey, hmTmp)
		em.MulImm(hmHash, hmHash, 0xff51afd7ed558ccd)
		em.ShrImm(hmTmp, hmHash, 33)
		em.Xor(hmHash, hmHash, hmTmp)
		em.MulImm(hmHash, hmHash, 0xc4ceb9fe1a85ec53)
		em.ShrImm(hmTmp, hmHash, 33)
		em.Xor(hmHash, hmHash, hmTmp)
		em.AndImm(hmHash, hmHash, uint64(h.buckets-1))
		em.ShlImm(hmBkt, hmHash, 3)
		em.Load64(hmHead, hmBkt, table)
		em.Store64(hmKey, hmNode, offHashKey)
		em.Store64(hmI, hmNode, offHashVal)
		em.Store64(hmHead, hmNode, offHashNext)
		em.Store64(hmMagic, hmNode, offHashMagic)
		em.barrier(bAddr{hmNode, 0})
		em.Store64(hmNode, hmBkt, table)
		em.barrier(bAddr{hmBkt, table})
		em.volatileWork(h.volWork(p))
		em.AddImm(hmNode, hmNode, memory.LineSize)
	})
}

var _ CompiledWorkload = (*Hashmap)(nil)
