package workload

import (
	"fmt"

	"bbb/internal/cpu"
	"bbb/internal/memory"
	"bbb/internal/palloc"
	"bbb/internal/system"
)

// LinkedList is the motivating example of the paper's Figures 2 and 3: each
// thread prepends nodes to its own persistent list. The ordering-critical
// pair is (persist the node) before (persist the head pointer); with
// NoBarriers under the PMEM baseline the head can persist first and a crash
// strands it pointing at an uninitialized node — exactly the bug the paper
// opens with. Under BBB the barrier-free code is always recoverable.
//
// Node layout (one line): [magic, val, next].
type LinkedList struct {
	headsBase memory.Addr
	arenas    []*palloc.Arena
	threads   int
}

// NewLinkedList builds the Figures 2/3 workload.
func NewLinkedList() *LinkedList { return &LinkedList{} }

// Name implements Workload.
func (l *LinkedList) Name() string { return "linkedlist" }

// Description implements Workload.
func (l *LinkedList) Description() string {
	return "per-thread persistent linked-list prepends (Figures 2/3)"
}

// PaperPStores implements Workload; the list is not a Table IV row.
func (l *LinkedList) PaperPStores() float64 { return 0 }

const (
	offListMagic = 0
	offListVal   = 8
	offListNext  = 16
	listNodeSize = 24
)

// Setup implements Workload: one head pointer per thread, initialized nil.
func (l *LinkedList) Setup(mem *memory.Memory, arena *palloc.Arena, p Params) {
	l.threads = p.Threads
	l.headsBase = arena.Alloc(uint64(p.Threads) * memory.LineSize)
	l.arenas = nil
	for i := 0; i < p.Threads; i++ {
		poke64(mem, l.head(i), 0)
		need := uint64(p.OpsPerThread+1) * memory.LineSize
		l.arenas = append(l.arenas, arena.Sub(need))
	}
}

// head returns thread i's head-pointer address (one line each, no false
// sharing).
func (l *LinkedList) head(i int) memory.Addr {
	return l.headsBase + memory.Addr(i)*memory.LineSize
}

// Programs implements Workload.
func (l *LinkedList) Programs(p Params) []system.Program {
	progs := make([]system.Program, p.Threads)
	for t := 0; t < p.Threads; t++ {
		t := t
		progs[t] = func(e cpu.Env) {
			r := rng(p, t)
			head := l.head(t)
			cur := cpu.Load64(e, head)
			for i := 0; i < p.OpsPerThread; i++ {
				node := l.arenas[t].Alloc(listNodeSize)
				// Initialize the node: value, next, then magic last so a
				// valid magic implies a fully written node.
				cpu.Store64(e, node+offListVal, uint64(i)+1)
				cpu.Store64(e, node+offListNext, cur)
				cpu.Store64(e, node+offListMagic, magicListNode)
				barrier(e, p, node) // Figure 3 line 7-8
				// Publish: swing the head pointer.
				cpu.Store64(e, head, node) //bbbvet:commit-store node
				barrier(e, p, head)        // Figure 3 line 12-13
				cur = node
				volatileWork(e, t, l.volWork(p), r)
			}
		}
	}
	return progs
}

func (l *LinkedList) volWork(p Params) int {
	if p.VolatileWork > 0 {
		return p.VolatileWork
	}
	return 2
}

// Check implements Workload: walk every thread's list in the durable image.
// A head (or next pointer) must reference a fully initialized node, and the
// values along the chain must strictly descend — prepends of i+1 mean a
// node's value is exactly one more than its successor's.
func (l *LinkedList) Check(mem *memory.Memory) error {
	for t := 0; t < l.threads; t++ {
		ptr := peek64(mem, l.head(t))
		steps := 0
		prev := uint64(0)
		for ptr != 0 {
			if magic := peek64(mem, memory.Addr(ptr)+offListMagic); magic != magicListNode {
				return fmt.Errorf("linkedlist[%d]: reachable node %#x has magic %#x (dangling publish — the Figure 2 bug)", t, ptr, magic)
			}
			val := peek64(mem, memory.Addr(ptr)+offListVal)
			if val == 0 {
				return fmt.Errorf("linkedlist[%d]: node %#x has zero value", t, ptr)
			}
			if prev != 0 && val != prev-1 {
				return fmt.Errorf("linkedlist[%d]: chain values %d -> %d not consecutive", t, prev, val)
			}
			prev = val
			ptr = peek64(mem, memory.Addr(ptr)+offListNext)
			if steps++; steps > 1<<22 {
				return fmt.Errorf("linkedlist[%d]: cycle detected", t)
			}
		}
	}
	return nil
}

var _ Workload = (*LinkedList)(nil)
