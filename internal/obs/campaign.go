package obs

import (
	"bytes"
	"encoding/json"
	"fmt"

	"bbb/internal/sweep"
)

// Campaign is a checkpointed, resumable sweep: a fixed, ordered list of
// independent points, each with a stable key, executed by a bounded worker
// pool (internal/sweep) with every completion appended to the run ledger.
// A campaign killed mid-sweep resumes by re-reading its ledger file:
// completed points are restored from their recorded results instead of
// re-running, one restored point is re-executed and deep-compared against
// its recording (the overlap verification — nondeterminism or code drift
// between sessions fails loudly instead of corrupting the sweep), and the
// final results and summary come out byte-identical to an uninterrupted
// run at any worker count.
//
// The determinism contract a point function must meet is sweep's: build
// everything locally from the point's inputs, share nothing mutable. On
// top of that, R must round-trip through encoding/json — every result,
// fresh or restored, is canonicalized through its JSON encoding, which is
// what makes resumed and uninterrupted campaigns comparable byte for byte.
type Campaign[P, R any] struct {
	// Name labels the campaign; it seeds the run ID together with Spec
	// and the point keys.
	Name string
	// Spec is the caller's configuration, recorded verbatim in the run
	// header and folded into the run ID — change the spec, get a fresh
	// checkpoint file.
	Spec any
	// Points is the ordered sweep.
	Points []P
	// Key returns point i's stable identity (unique within the campaign).
	Key func(i int, p P) string
	// Run executes point i. It must be deterministic in (i, p).
	Run func(i int, p P) R
	// Workers bounds the sweep fan-out (<=1 is serial).
	Workers int
	// MaxPoints, when positive, stops the campaign after completing that
	// many fresh points this session — the controlled form of a kill, and
	// what `bbbsim -campaign -max-points` exposes. The outcome reports
	// Complete=false; re-executing resumes where it stopped.
	MaxPoints int
	// Ledger receives the checkpoint stream. Required.
	Ledger *Ledger
	// Host, when non-nil, stamps appended lines (never compared).
	Host *HostInfo
	// Clock, when non-nil, supplies wall-clock nanoseconds for per-point
	// Host stamps. obs never reads the wall clock itself (detlint);
	// cmd-side callers pass time.Now-based closures.
	Clock func() int64
}

// Outcome is a campaign execution's deterministic result.
type Outcome[R any] struct {
	RunID string
	// Results holds every point's canonicalized result, in point order —
	// only meaningful when Complete.
	Results []R
	// Restored counts points skipped because the ledger already held
	// their results; Fresh counts points executed this session.
	Restored int
	Fresh    int
	// VerifiedIndex is the restored point re-executed for the overlap
	// check (-1 when nothing was restored).
	VerifiedIndex int
	// Complete reports whether every point is done (false under
	// MaxPoints).
	Complete bool
	// SummarySHA is the campaign digest from the summary line (set when
	// Complete).
	SummarySHA string
}

// Execute runs (or resumes) the campaign.
func (c *Campaign[P, R]) Execute() (Outcome[R], error) {
	var out Outcome[R]
	out.VerifiedIndex = -1
	if c.Ledger == nil {
		return out, fmt.Errorf("obs: campaign %q needs a ledger", c.Name)
	}
	if c.Name == "" {
		return out, fmt.Errorf("obs: campaign must be named")
	}
	n := len(c.Points)
	keys := make([]string, n)
	seen := make(map[string]int, n)
	for i, p := range c.Points {
		keys[i] = c.Key(i, p)
		if prev, dup := seen[keys[i]]; dup {
			return out, fmt.Errorf("obs: campaign %q: points %d and %d share key %q", c.Name, prev, i, keys[i])
		}
		seen[keys[i]] = i
	}

	// Run identity: name + caller spec + the full key list.
	specBlob, err := json.Marshal(c.Spec)
	if err != nil {
		return out, fmt.Errorf("obs: campaign %q: encoding spec: %w", c.Name, err)
	}
	runID, err := RunID(c.Name, struct {
		Spec json.RawMessage `json:"spec"`
		Keys []string        `json:"keys"`
	}{specBlob, keys})
	if err != nil {
		return out, err
	}
	out.RunID = runID

	// Resume: restore completed points from the checkpoint file.
	prior, err := c.Ledger.ReadIfExists(runID)
	if err != nil {
		return out, err
	}
	restored := make(map[int]json.RawMessage, n)
	var priorSummary *Summary
	seqBase := 0
	if prior != nil {
		if err := c.Ledger.Repair(prior); err != nil {
			return out, err
		}
		seqBase = len(prior.Lines)
		if h, ok := prior.Header(); ok && h.Name != c.Name {
			return out, fmt.Errorf("obs: run %s belongs to campaign %q, not %q", runID, h.Name, c.Name)
		}
		pts, err := prior.Points()
		if err != nil {
			return out, err
		}
		for _, p := range pts {
			if p.Index < 0 || p.Index >= n || keys[p.Index] != p.Key {
				return out, fmt.Errorf("obs: run %s records point %d key %q, campaign has %d points (shape drift under an unchanged run ID)",
					runID, p.Index, p.Key, n)
			}
			restored[p.Index] = p.Result
		}
		if s, ok := prior.Summary(); ok {
			priorSummary = s
		}
	}

	// Overlap verification: re-run one restored point and require its
	// fresh result to reproduce the recorded bytes.
	if len(restored) > 0 {
		idxs := make([]int, 0, len(restored))
		for i := 0; i < n; i++ {
			if _, done := restored[i]; done {
				idxs = append(idxs, i)
			}
		}
		probe := idxs[len(idxs)/2]
		fresh, err := json.Marshal(c.Run(probe, c.Points[probe]))
		if err != nil {
			return out, fmt.Errorf("obs: campaign %q: encoding verification result: %w", c.Name, err)
		}
		if !bytes.Equal(fresh, restored[probe]) {
			return out, fmt.Errorf("obs: campaign %q point %d (%s) no longer reproduces its ledger recording — the point function or its inputs drifted:\nrecorded %s\nfresh    %s",
				c.Name, probe, keys[probe], restored[probe], fresh)
		}
		out.VerifiedIndex = probe
	}
	out.Restored = len(restored)

	pending := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if _, done := restored[i]; !done {
			pending = append(pending, i)
		}
	}
	if c.MaxPoints > 0 && c.MaxPoints < len(pending) {
		pending = pending[:c.MaxPoints]
	}

	w, err := c.Ledger.Append(runID, seqBase)
	if err != nil {
		return out, err
	}
	defer w.Close()
	if prior == nil || len(prior.Lines) == 0 {
		if err := w.Write(KindHeader, Header{Name: c.Name, Points: n, Spec: specBlob}, c.Host); err != nil {
			return out, err
		}
	}

	// Execute the pending points; every completion checkpoints before the
	// campaign moves on, so a kill loses at most in-flight points.
	resultJSON := make([]json.RawMessage, n)
	for i := 0; i < n; i++ {
		if blob, done := restored[i]; done {
			resultJSON[i] = blob
		}
	}
	errs := make([]error, n)
	sweep.RunIndices(c.Workers, pending, func(i int) {
		var t0 int64
		if c.Clock != nil {
			t0 = c.Clock()
		}
		blob, err := json.Marshal(c.Run(i, c.Points[i]))
		if err != nil {
			errs[i] = fmt.Errorf("obs: campaign %q: encoding point %d result: %w", c.Name, i, err)
			return
		}
		resultJSON[i] = blob
		host := c.Host
		if c.Clock != nil {
			stamped := HostInfo{}
			if host != nil {
				stamped = *host
			}
			now := c.Clock()
			stamped.UnixNS = now
			stamped.WallNS = now - t0
			host = &stamped
		}
		errs[i] = w.Write(KindPoint, Point{Index: i, Key: keys[i], Result: blob}, host)
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	out.Fresh = len(pending)
	out.Complete = out.Restored+out.Fresh == n
	if !out.Complete {
		return out, nil
	}

	// Summary: index-ordered digests, identical for any completion order.
	sum := Summary{Points: n, Digests: make([]PointDigest, n)}
	var all bytes.Buffer
	for i := 0; i < n; i++ {
		d := PointDigest{Index: i, Key: keys[i], SHA256: digestBytes(resultJSON[i])}
		sum.Digests[i] = d
		fmt.Fprintf(&all, "%d %s %s\n", d.Index, d.Key, d.SHA256)
	}
	sum.SHA256 = digestBytes(all.Bytes())
	out.SummarySHA = sum.SHA256
	if priorSummary != nil {
		if priorSummary.SHA256 != sum.SHA256 {
			return out, fmt.Errorf("obs: run %s summary digest %s does not match the recorded %s",
				runID, sum.SHA256, priorSummary.SHA256)
		}
	} else if err := w.Write(KindSummary, sum, c.Host); err != nil {
		return out, err
	}

	// Canonicalize every result through its JSON encoding, restored and
	// fresh alike, so resumed campaigns deep-equal uninterrupted ones.
	out.Results = make([]R, n)
	for i := 0; i < n; i++ {
		if err := json.Unmarshal(resultJSON[i], &out.Results[i]); err != nil {
			return out, fmt.Errorf("obs: campaign %q: decoding point %d result: %w", c.Name, i, err)
		}
	}
	return out, nil
}
