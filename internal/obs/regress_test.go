package obs

import (
	"strings"
	"testing"
)

// fixtureHistory builds a synthetic BENCH trajectory: a throughput metric
// with ±1-2% session noise and a deterministic allocs/op metric, mirroring
// the shapes in the real BENCH_*.json files.
func fixtureHistory() []BenchRun {
	mk := func(label string, stores, allocs float64) BenchRun {
		return BenchRun{
			Label: label,
			Benches: []BenchPoint{{
				Name: "BenchmarkEndToEnd/bbp",
				Metrics: []BenchMetric{
					{Name: "sim_stores/s", Value: stores},
					{Name: "allocs/op", Value: allocs},
					{Name: "flushes_total", Value: 4096},
				},
			}},
		}
	}
	return []BenchRun{
		mk("BENCH_0", 100_000, 210),
		mk("BENCH_1", 101_500, 210),
		mk("BENCH_2", 99_200, 210),
		mk("BENCH_3", 100_800, 210),
		mk("BENCH_4", 98_900, 210),
	}
}

func candidate(stores, allocs float64) BenchRun {
	return BenchRun{
		Label: "BENCH_5",
		Benches: []BenchPoint{{
			Name: "BenchmarkEndToEnd/bbp",
			Metrics: []BenchMetric{
				{Name: "sim_stores/s", Value: stores},
				{Name: "allocs/op", Value: allocs},
				{Name: "flushes_total", Value: 4096},
			},
		}},
	}
}

func verdictOf(t *testing.T, rep *RegressReport, metric string) MetricVerdict {
	t.Helper()
	for _, v := range rep.Verdicts {
		if v.Metric == metric {
			return v
		}
	}
	t.Fatalf("metric %q not judged: %+v", metric, rep.Verdicts)
	return MetricVerdict{}
}

// TestRegressDetectsTenPercentDrop is the acceptance fixture: a 10%
// throughput regression against a ±2%-noise history must be confirmed and
// fail the gate.
func TestRegressDetectsTenPercentDrop(t *testing.T) {
	rep, err := Compare(fixtureHistory(), candidate(90_000, 210), RegressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v := verdictOf(t, rep, "sim_stores/s")
	if v.Verdict != VerdictRegressed {
		t.Fatalf("10%% drop judged %q (stable=%v threshold=%.1f): %+v", v.Verdict, v.Stable, v.Threshold, v)
	}
	if !rep.Failed() || rep.Regressions != 1 {
		t.Errorf("gate did not fail: %+v", rep)
	}
	if v.DeltaPct > -9 || v.DeltaPct < -11 {
		t.Errorf("delta%% = %.2f, want ~-10", v.DeltaPct)
	}
}

// TestRegressQuietOnNoise: a candidate inside the history's MAD band must
// pass everywhere.
func TestRegressQuietOnNoise(t *testing.T) {
	for _, stores := range []float64{99_000, 100_000, 101_900} {
		rep, err := Compare(fixtureHistory(), candidate(stores, 210), RegressOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed() {
			t.Errorf("stores=%v failed the gate: %s", stores, rep.Render(true))
		}
		if v := verdictOf(t, rep, "sim_stores/s"); v.Verdict != VerdictOK {
			t.Errorf("stores=%v judged %q", stores, v.Verdict)
		}
	}
}

// TestRegressNoisyHistoryNeverGates: when the history itself swings (like
// the real cross-session sim_stores/s trajectory), a bad-direction outlier
// is reported as suspect, not failed.
func TestRegressNoisyHistoryNeverGates(t *testing.T) {
	noisy := []BenchRun{
		{Label: "H0", Benches: []BenchPoint{{Name: "B", Metrics: []BenchMetric{{Name: "sim_stores/s", Value: 299_000}}}}},
		{Label: "H1", Benches: []BenchPoint{{Name: "B", Metrics: []BenchMetric{{Name: "sim_stores/s", Value: 449_000}}}}},
		{Label: "H2", Benches: []BenchPoint{{Name: "B", Metrics: []BenchMetric{{Name: "sim_stores/s", Value: 428_000}}}}},
	}
	cand := BenchRun{Label: "C", Benches: []BenchPoint{{Name: "B", Metrics: []BenchMetric{{Name: "sim_stores/s", Value: 250_000}}}}}
	rep, err := Compare(noisy, cand, RegressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v := verdictOf(t, rep, "sim_stores/s")
	if v.Stable {
		t.Errorf("swinging history judged stable: %+v", v)
	}
	if v.Verdict != VerdictSuspect {
		t.Errorf("noisy-history outlier judged %q, want suspect", v.Verdict)
	}
	if rep.Failed() {
		t.Error("noisy metric failed the gate")
	}
}

// TestRegressAllocsGateDeterministically: allocs/op has zero history
// spread, so even a small confirmed increase regresses (the Floor sets the
// tolerance) and a decrease improves.
func TestRegressAllocsGateDeterministically(t *testing.T) {
	rep, err := Compare(fixtureHistory(), candidate(100_000, 230), RegressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v := verdictOf(t, rep, "allocs/op"); v.Verdict != VerdictRegressed {
		t.Errorf("+9.5%% allocs judged %q", v.Verdict)
	}
	rep, err = Compare(fixtureHistory(), candidate(100_000, 212), RegressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v := verdictOf(t, rep, "allocs/op"); v.Verdict != VerdictOK {
		t.Errorf("+1%% allocs (inside the 2%% floor) judged %q", v.Verdict)
	}
	rep, err = Compare(fixtureHistory(), candidate(100_000, 180), RegressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v := verdictOf(t, rep, "allocs/op"); v.Verdict != VerdictImproved {
		t.Errorf("-14%% allocs judged %q", v.Verdict)
	}
}

func TestRegressNewGoneAndThinMetrics(t *testing.T) {
	hist := fixtureHistory()[:1] // one run: below MinHistory
	rep, err := Compare(hist, candidate(100_000, 210), RegressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v := verdictOf(t, rep, "sim_stores/s"); v.Verdict != VerdictNoHistory {
		t.Errorf("single-run history judged %q", v.Verdict)
	}

	cand := candidate(100_000, 210)
	cand.Benches[0].Metrics = append(cand.Benches[0].Metrics, BenchMetric{Name: "new_metric/s", Value: 1})
	cand.Benches[0].Metrics = cand.Benches[0].Metrics[1:] // drop sim_stores/s
	rep, err = Compare(fixtureHistory(), cand, RegressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v := verdictOf(t, rep, "new_metric/s"); v.Verdict != VerdictNewMetric {
		t.Errorf("candidate-only metric judged %q", v.Verdict)
	}
	if v := verdictOf(t, rep, "sim_stores/s"); v.Verdict != VerdictGoneMetric {
		t.Errorf("history-only metric judged %q", v.Verdict)
	}
	if rep.Failed() {
		t.Error("new/gone metrics failed the gate")
	}

	if _, err := Compare(nil, candidate(1, 1), RegressOptions{}); err == nil {
		t.Error("empty history accepted")
	}
}

func TestRegressDirections(t *testing.T) {
	cases := map[string]Direction{
		"sim_stores/s":  HigherBetter,
		"kv.commits/s":  HigherBetter,
		"ns/op":         LowerBetter,
		"B/op":          LowerBetter,
		"allocs/op":     LowerBetter,
		"stall_pct":     LowerBetter,
		"flushes_total": Informational,
	}
	for name, want := range cases {
		if got := MetricDirection(name); got != want {
			t.Errorf("MetricDirection(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestRegressRenderDeterministic(t *testing.T) {
	a, err := Compare(fixtureHistory(), candidate(90_000, 230), RegressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compare(fixtureHistory(), candidate(90_000, 230), RegressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Render(true), b.Render(true)
	if ra != rb {
		t.Error("report rendering is nondeterministic")
	}
	if !strings.Contains(ra, "regressed") {
		t.Errorf("report does not mention the regressions:\n%s", ra)
	}
	// Sorted by (bench, metric): allocs/op precedes sim_stores/s.
	if ai, si := strings.Index(ra, "allocs/op"), strings.Index(ra, "sim_stores/s"); ai > si {
		t.Error("verdicts not sorted by metric name")
	}
}
