package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Noise-aware benchmark regression comparison. The BENCH_*.json trajectory
// gives each (benchmark, metric) pair a history of values from different
// sessions on different hosts; the comparison asks whether the candidate
// run sits outside the noise band of that history, not whether it moved at
// all. The band is median ± K·MADσ, where MADσ = 1.4826 × the median
// absolute deviation — a robust spread estimate a single outlier session
// cannot inflate — floored at a relative fraction of the median so a
// history of identical values (MAD 0, common for allocs/op) still tolerates
// rounding jitter.
//
// Metrics whose history is itself noisy (any point further than StableCoV
// from the median) never gate: wall-clock throughput varies ~2x across the recorded
// sessions, and failing a PR for losing a coin toss would train everyone to
// ignore the gate. Those metrics still appear in the report as
// informational deltas; deterministic metrics (allocs/op, simulated
// counters) pass the stability test and gate hard.

// Direction classifies how a metric ought to move.
type Direction int

const (
	// HigherBetter: throughput-like ("/s" suffixed) metrics.
	HigherBetter Direction = iota
	// LowerBetter: cost-like metrics (ns/op, B/op, allocs/op, *_pct).
	LowerBetter
	// Informational: unknown direction; reported, never gated.
	Informational
)

func (d Direction) String() string {
	switch d {
	case HigherBetter:
		return "higher-better"
	case LowerBetter:
		return "lower-better"
	default:
		return "informational"
	}
}

// MetricDirection infers a metric's direction from its name, following the
// repo's naming discipline: rates end in "/s", costs are the Go bench
// suffixes or a _pct share.
func MetricDirection(name string) Direction {
	switch {
	case strings.HasSuffix(name, "/s"):
		return HigherBetter
	case name == "ns/op" || name == "B/op" || name == "allocs/op",
		strings.HasSuffix(name, "_pct"):
		return LowerBetter
	default:
		return Informational
	}
}

// RegressOptions tunes the comparison.
type RegressOptions struct {
	// K scales the MADσ band (default 4).
	K float64
	// Floor is the minimum relative threshold as a fraction of |median|
	// (default 0.02): histories with zero spread still tolerate 2%.
	Floor float64
	// StableCoV is the maximum relative history deviation for a metric to
	// gate (default 0.10): every history point must sit within this
	// fraction of the median. Max-deviation, not MADσ, because short
	// histories with one wild session can still show a small MAD.
	// Noisier metrics are reported, never failed.
	StableCoV float64
	// MinHistory is the number of history points required before a metric
	// is judged at all (default 2).
	MinHistory int
}

func (o *RegressOptions) fill() {
	if o.K == 0 {
		o.K = 4
	}
	if o.Floor == 0 {
		o.Floor = 0.02
	}
	if o.StableCoV == 0 {
		o.StableCoV = 0.10
	}
	if o.MinHistory == 0 {
		o.MinHistory = 2
	}
}

// Verdicts.
const (
	VerdictOK         = "ok"         // inside the noise band
	VerdictImproved   = "improved"   // outside the band, in the good direction
	VerdictRegressed  = "regressed"  // outside the band, in the bad direction, stable history
	VerdictSuspect    = "suspect"    // outside the band, bad direction, but history too noisy to gate
	VerdictShifted    = "shifted"    // outside the band, direction unknown (informational metric)
	VerdictNoHistory  = "no-history" // fewer than MinHistory points
	VerdictNewMetric  = "new"        // candidate-only metric
	VerdictGoneMetric = "gone"       // history-only metric
)

// MetricVerdict is one (benchmark, metric) judgement.
type MetricVerdict struct {
	Bench  string  `json:"bench"`
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
	// Median and MADSigma describe the history band; Threshold is the
	// absolute deviation that counts as a real move.
	Median    float64 `json:"median"`
	MADSigma  float64 `json:"mad_sigma"`
	Threshold float64 `json:"threshold"`
	// DeltaPct is (value-median)/|median| in percent (0 when median is 0).
	DeltaPct  float64 `json:"delta_pct"`
	History   int     `json:"history"`
	Direction string  `json:"direction"`
	// Stable reports that every history point sits within StableCoV of
	// the median: only stable metrics gate.
	Stable  bool   `json:"stable"`
	Verdict string `json:"verdict"`
}

// RegressReport is the full comparison outcome: one verdict per
// (benchmark, metric), sorted, plus the gate decision.
type RegressReport struct {
	Candidate string          `json:"candidate"`
	History   []string        `json:"history"`
	Options   RegressOptions  `json:"options"`
	Verdicts  []MetricVerdict `json:"verdicts"`
	// Regressions counts VerdictRegressed entries; the gate fails iff > 0.
	Regressions int `json:"regressions"`
	Suspects    int `json:"suspects"`
	Improved    int `json:"improved"`
}

// Failed reports whether the gate should fail.
func (r *RegressReport) Failed() bool { return r.Regressions > 0 }

// BenchRun is one recorded benchmark session in ordered form. Callers
// (cmd/bbbregress) flatten the BENCH_*.json "benchmarks" maps into sorted
// slices before handing them over, so this package never iterates a map.
type BenchRun struct {
	Label   string
	Benches []BenchPoint
}

// BenchPoint is one benchmark's recorded metrics.
type BenchPoint struct {
	Name    string
	Metrics []BenchMetric
}

// BenchMetric is one named value.
type BenchMetric struct {
	Name  string
	Value float64
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// madSigma is the MAD-derived robust σ estimate: 1.4826 × median(|x−med|).
func madSigma(xs []float64, med float64) float64 {
	devs := make([]float64, len(xs))
	for i, x := range xs {
		d := x - med
		if d < 0 {
			d = -d
		}
		devs[i] = d
	}
	return 1.4826 * median(devs)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Compare judges candidate against history. Runs and metrics are matched by
// name; the report is sorted by (bench, metric) so it is deterministic in
// the inputs.
func Compare(history []BenchRun, candidate BenchRun, opts RegressOptions) (*RegressReport, error) {
	if len(history) == 0 {
		return nil, fmt.Errorf("obs: regression comparison needs at least one history run")
	}
	opts.fill()
	rep := &RegressReport{Candidate: candidate.Label, Options: opts}
	for _, h := range history {
		rep.History = append(rep.History, h.Label)
	}

	// The judged key space is the union of (bench, metric) pairs across
	// every run, in input order, deduplicated with a set, then sorted —
	// deterministic without ever ranging a map.
	type key struct{ bench, metric string }
	keySet := make(map[key]bool)
	var keys []key
	index := func(run BenchRun) map[key]float64 {
		vals := make(map[key]float64)
		for _, b := range run.Benches {
			for _, m := range b.Metrics {
				k := key{b.Name, m.Name}
				vals[k] = m.Value
				if !keySet[k] {
					keySet[k] = true
					keys = append(keys, k)
				}
			}
		}
		return vals
	}
	histVals := make([]map[key]float64, len(history))
	for i, h := range history {
		histVals[i] = index(h)
	}
	candVals := index(candidate)
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].bench != keys[j].bench {
			return keys[i].bench < keys[j].bench
		}
		return keys[i].metric < keys[j].metric
	})

	for _, k := range keys {
		var hist []float64
		for _, hv := range histVals {
			if v, ok := hv[k]; ok {
				hist = append(hist, v)
			}
		}
		cand, inCand := candVals[k]
		v := MetricVerdict{
			Bench:     k.bench,
			Metric:    k.metric,
			Value:     cand,
			History:   len(hist),
			Direction: MetricDirection(k.metric).String(),
		}
		switch {
		case !inCand:
			v.Verdict = VerdictGoneMetric
		case len(hist) == 0:
			v.Verdict = VerdictNewMetric
		case len(hist) < opts.MinHistory:
			v.Verdict = VerdictNoHistory
			v.Median = median(hist)
		default:
			med := median(hist)
			sigma := madSigma(hist, med)
			threshold := opts.K * sigma
			if floor := opts.Floor * abs(med); threshold < floor {
				threshold = floor
			}
			v.Median = med
			v.MADSigma = sigma
			v.Threshold = threshold
			if med != 0 {
				v.DeltaPct = 100 * (cand - med) / abs(med)
			}
			maxDev := 0.0
			for _, x := range hist {
				if d := abs(x - med); d > maxDev {
					maxDev = d
				}
			}
			v.Stable = med != 0 && maxDev/abs(med) <= opts.StableCoV
			delta := cand - med
			dir := MetricDirection(k.metric)
			switch {
			case abs(delta) <= threshold:
				v.Verdict = VerdictOK
			case dir == Informational:
				v.Verdict = VerdictShifted
			case (dir == HigherBetter && delta > 0) || (dir == LowerBetter && delta < 0):
				v.Verdict = VerdictImproved
			case v.Stable:
				v.Verdict = VerdictRegressed
			default:
				v.Verdict = VerdictSuspect
			}
		}
		switch v.Verdict {
		case VerdictRegressed:
			rep.Regressions++
		case VerdictSuspect:
			rep.Suspects++
		case VerdictImproved:
			rep.Improved++
		}
		rep.Verdicts = append(rep.Verdicts, v)
	}
	return rep, nil
}

// Render formats the report as the aligned table bbbregress prints.
func (r *RegressReport) Render(all bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "bbbregress: %s vs %d history runs (K=%.3g floor=%.3g stable-cov=%.3g)\n",
		r.Candidate, len(r.History), r.Options.K, r.Options.Floor, r.Options.StableCoV)
	fmt.Fprintf(&b, "%-44s %-14s %14s %14s %9s %-13s %s\n",
		"benchmark", "metric", "value", "median", "delta%", "direction", "verdict")
	for _, v := range r.Verdicts {
		if !all && v.Verdict == VerdictOK {
			continue
		}
		mark := ""
		if !v.Stable && (v.Verdict == VerdictSuspect || v.Verdict == VerdictOK) {
			mark = " (noisy)"
		}
		fmt.Fprintf(&b, "%-44s %-14s %14.6g %14.6g %+8.2f%% %-13s %s%s\n",
			v.Bench, v.Metric, v.Value, v.Median, v.DeltaPct, v.Direction, v.Verdict, mark)
	}
	fmt.Fprintf(&b, "summary: %d regressed, %d suspect (noisy), %d improved, %d metrics judged\n",
		r.Regressions, r.Suspects, r.Improved, len(r.Verdicts))
	return b.String()
}
