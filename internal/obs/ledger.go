// Package obs is the campaign observability plane: the run ledger every
// experiment appends its provenance to, the checkpointed resumable
// campaign driver over internal/sweep, and the noise-aware benchmark
// regression comparison behind cmd/bbbregress.
//
// The ledger is a directory of JSON-lines files, one per run, named by a
// deterministic run ID (a content hash of the run's identity — name, spec
// and point keys — so a resumed campaign finds its own checkpoint file and
// two different campaigns can never collide). Every line carries the
// schema version and splits into a deterministic payload ("det") and an
// optional host section ("host": wall-clock, hostname, CPU count) that is
// never part of run identity, deep-equal verification or summary digests —
// the same discipline BENCH_*.json follows by keeping goos/cpu out of the
// result metrics.
//
// This package is detlint-clean like the simulator tiers: it never reads
// the wall clock or the host environment itself — callers in cmd/ capture
// a HostInfo and a clock function and pass them in, so everything obs
// computes from its inputs is byte-reproducible.
package obs

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// SchemaVersion is the wire format of ledger lines. Bump it whenever a
// field changes meaning; readers reject versions they do not understand
// instead of misreading them (mirroring crashmc.WitnessSchemaVersion).
const SchemaVersion = 1

// Line kinds.
const (
	KindHeader  = "header"  // first line of a run: name + spec
	KindPoint   = "point"   // one completed campaign point
	KindSummary = "summary" // end of a complete campaign: sorted digests
	KindBench   = "bench"   // a benchmark recording (cmd/benchjson -ledger)
	KindRegress = "regress" // a regression comparison (cmd/bbbregress)
)

// HostInfo is the non-deterministic section of a ledger line: where and
// when the run physically happened. It is recorded for provenance and
// excluded from run identity, digests and deep-equal comparisons.
type HostInfo struct {
	Hostname string `json:"hostname,omitempty"`
	GOOS     string `json:"goos,omitempty"`
	GOARCH   string `json:"goarch,omitempty"`
	CPUs     int    `json:"cpus,omitempty"`
	// UnixNS is the wall-clock stamp in nanoseconds since the epoch.
	UnixNS int64 `json:"unix_ns,omitempty"`
	// WallNS is the measured wall-clock duration of the unit the line
	// records (a point's execution, a whole bench run).
	WallNS int64 `json:"wall_ns,omitempty"`
}

// Line is one ledger record.
type Line struct {
	SchemaVersion int    `json:"schema_version"`
	Run           string `json:"run"`
	Seq           int    `json:"seq"`
	Kind          string `json:"kind"`
	// Det is the deterministic payload: a Header, Point or Summary for
	// campaigns, or a tool-defined document for bench/regress lines.
	Det json.RawMessage `json:"det,omitempty"`
	// Host is the provenance stamp; never compared.
	Host *HostInfo `json:"host,omitempty"`
}

// Header is the det payload of a run's first line.
type Header struct {
	Name string `json:"name"`
	// Points is the campaign's point count (0 for bench/regress runs).
	Points int `json:"points,omitempty"`
	// Spec is the caller's run specification, verbatim.
	Spec json.RawMessage `json:"spec,omitempty"`
}

// Point is the det payload of one completed campaign point.
type Point struct {
	Index int `json:"index"`
	// Key is the point's stable identity within the campaign.
	Key string `json:"key"`
	// Result is the point's JSON-encoded outcome; resume decodes it back
	// instead of re-running the point.
	Result json.RawMessage `json:"result"`
}

// PointDigest names one point inside a Summary.
type PointDigest struct {
	Index int    `json:"index"`
	Key   string `json:"key"`
	// SHA256 digests the point's Result bytes.
	SHA256 string `json:"sha256"`
}

// Summary is the det payload of a completed campaign's final line. It is
// assembled in index order whatever order points completed in, so
// interrupted-and-resumed campaigns write byte-identical summaries at any
// sweep worker count.
type Summary struct {
	Points  int           `json:"points"`
	Digests []PointDigest `json:"digests"`
	// SHA256 digests the concatenated per-point digests: one line to
	// compare two whole campaigns.
	SHA256 string `json:"sha256"`
}

// RunID derives the deterministic run identity: a hex-truncated SHA-256
// over the schema version, the run name and the canonical JSON of spec.
// Campaign drivers fold the point keys into spec, so any change to the
// sweep's shape yields a fresh run (and a fresh checkpoint file).
func RunID(name string, spec any) (string, error) {
	blob, err := json.Marshal(struct {
		SchemaVersion int    `json:"schema_version"`
		Name          string `json:"name"`
		Spec          any    `json:"spec"`
	}{SchemaVersion, name, spec})
	if err != nil {
		return "", fmt.Errorf("obs: hashing run identity: %w", err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])[:16], nil
}

// Ledger is a directory of run files.
type Ledger struct {
	dir string
}

// Open creates (if needed) and opens a ledger directory.
func Open(dir string) (*Ledger, error) {
	if dir == "" {
		return nil, fmt.Errorf("obs: ledger directory must be named")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: opening ledger: %w", err)
	}
	return &Ledger{dir: dir}, nil
}

// Dir returns the ledger directory.
func (l *Ledger) Dir() string { return l.dir }

// Path returns the run file backing runID.
func (l *Ledger) Path(runID string) string {
	return filepath.Join(l.dir, runID+".jsonl")
}

// Runs lists the ledger's run IDs, sorted.
func (l *Ledger) Runs() ([]string, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("obs: listing ledger: %w", err)
	}
	var runs []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".jsonl") {
			continue
		}
		runs = append(runs, strings.TrimSuffix(name, ".jsonl"))
	}
	sort.Strings(runs)
	return runs, nil
}

// Run is one read-back run file.
type Run struct {
	ID    string
	Lines []Line
	// Truncated reports that the file ended in a partial line — the run
	// was killed mid-append. The partial line is dropped; everything
	// before it is intact (appends are single atomic writes).
	Truncated bool
	// CleanLen is the byte length of the intact prefix (the whole file
	// unless Truncated). Repair truncates to it before further appends, so
	// new lines never concatenate onto a torn tail.
	CleanLen int64
}

// Read loads run runID. A missing file is an error; use ReadIfExists for
// resume probes.
func (l *Ledger) Read(runID string) (*Run, error) {
	return readRunFile(l.Path(runID), runID)
}

// ReadIfExists loads run runID, or returns (nil, nil) when the run has no
// file yet.
func (l *Ledger) ReadIfExists(runID string) (*Run, error) {
	r, err := readRunFile(l.Path(runID), runID)
	if err != nil && os.IsNotExist(err) {
		return nil, nil
	}
	return r, err
}

func readRunFile(path, runID string) (*Run, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	run := &Run{ID: runID}
	rest := data
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		var raw []byte
		if nl < 0 {
			// No trailing newline: the writer died mid-append. Tolerate
			// the torn tail so the run stays resumable.
			run.Truncated = true
			break
		}
		raw, rest = rest[:nl], rest[nl+1:]
		if len(bytes.TrimSpace(raw)) == 0 {
			run.CleanLen = int64(len(data) - len(rest))
			continue
		}
		var line Line
		if err := json.Unmarshal(raw, &line); err != nil {
			if len(rest) == 0 {
				// A torn final line that happens to end in '\n' worth of
				// garbage; drop it like the no-newline case.
				run.Truncated = true
				break
			}
			return nil, fmt.Errorf("obs: %s line %d: %w", path, len(run.Lines)+1, err)
		}
		if line.SchemaVersion != SchemaVersion {
			return nil, fmt.Errorf("obs: %s line %d: schema version %d, this reader understands %d",
				path, len(run.Lines)+1, line.SchemaVersion, SchemaVersion)
		}
		run.Lines = append(run.Lines, line)
		run.CleanLen = int64(len(data) - len(rest))
	}
	return run, nil
}

// Repair truncates a torn run file back to its intact prefix so further
// appends start on a fresh line instead of concatenating onto the torn
// tail. A no-op for clean runs.
func (l *Ledger) Repair(r *Run) error {
	if r == nil || !r.Truncated {
		return nil
	}
	if err := os.Truncate(l.Path(r.ID), r.CleanLen); err != nil {
		return fmt.Errorf("obs: repairing torn run %s: %w", r.ID, err)
	}
	r.Truncated = false
	return nil
}

// Header decodes the run's header line, if present.
func (r *Run) Header() (*Header, bool) {
	for _, l := range r.Lines {
		if l.Kind == KindHeader {
			var h Header
			if json.Unmarshal(l.Det, &h) == nil {
				return &h, true
			}
			return nil, false
		}
	}
	return nil, false
}

// Points decodes every point line, in file (completion) order.
func (r *Run) Points() ([]Point, error) {
	var pts []Point
	for i, l := range r.Lines {
		if l.Kind != KindPoint {
			continue
		}
		var p Point
		if err := json.Unmarshal(l.Det, &p); err != nil {
			return nil, fmt.Errorf("obs: run %s line %d: decoding point: %w", r.ID, i+1, err)
		}
		pts = append(pts, p)
	}
	return pts, nil
}

// Summary decodes the run's summary line, if present.
func (r *Run) Summary() (*Summary, bool) {
	for _, l := range r.Lines {
		if l.Kind == KindSummary {
			var s Summary
			if json.Unmarshal(l.Det, &s) == nil {
				return &s, true
			}
			return nil, false
		}
	}
	return nil, false
}

// Writer appends lines to one run file. It is safe for concurrent use by
// sweep workers: each Append is one locked, newline-terminated write.
type Writer struct {
	runID string

	mu  sync.Mutex
	f   *os.File
	seq int
}

// Append opens run runID's file for appending, creating it if needed.
// seqBase seeds the line sequence (pass the number of lines already read
// back when resuming).
func (l *Ledger) Append(runID string, seqBase int) (*Writer, error) {
	f, err := os.OpenFile(l.Path(runID), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: opening run %s for append: %w", runID, err)
	}
	return &Writer{runID: runID, f: f, seq: seqBase}, nil
}

// Write appends one line of the given kind. det is marshalled as the
// deterministic payload; host (may be nil) is the provenance stamp.
func (w *Writer) Write(kind string, det any, host *HostInfo) error {
	blob, err := json.Marshal(det)
	if err != nil {
		return fmt.Errorf("obs: encoding %s det payload: %w", kind, err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	line := Line{
		SchemaVersion: SchemaVersion,
		Run:           w.runID,
		Seq:           w.seq,
		Kind:          kind,
		Det:           blob,
		Host:          host,
	}
	out, err := json.Marshal(line)
	if err != nil {
		return fmt.Errorf("obs: encoding %s line: %w", kind, err)
	}
	out = append(out, '\n')
	if _, err := w.f.Write(out); err != nil {
		return fmt.Errorf("obs: appending to run %s: %w", w.runID, err)
	}
	w.seq++
	return nil
}

// Close flushes and closes the run file.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// digestBytes is the one digest formula the plane uses everywhere.
func digestBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
