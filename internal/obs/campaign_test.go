package obs

import (
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"
)

func readFileT(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func writeFileT(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func mustOpen(t *testing.T) *Ledger {
	t.Helper()
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// pointResult is a stand-in for a sweep point's outcome: enough structure
// (nested slice, counters) to catch canonicalization bugs.
type pointResult struct {
	Key    string   `json:"key"`
	Sum    uint64   `json:"sum"`
	Series []uint64 `json:"series"`
}

// testCampaign builds a deterministic 12-point campaign over the given
// ledger. The point function is pure arithmetic on the index, so every
// execution anywhere reproduces the same results.
func testCampaign(l *Ledger, workers, maxPoints int) *Campaign[int, pointResult] {
	points := make([]int, 12)
	for i := range points {
		points[i] = (i + 1) * 7
	}
	return &Campaign[int, pointResult]{
		Name:   "obs-test",
		Spec:   map[string]int{"scale": 7},
		Points: points,
		Key:    func(i int, p int) string { return fmt.Sprintf("pt-%03d", p) },
		Run: func(i int, p int) pointResult {
			series := make([]uint64, 4)
			var sum uint64
			for j := range series {
				series[j] = uint64(p)*uint64(j+1) + uint64(i)
				sum += series[j]
			}
			return pointResult{Key: fmt.Sprintf("pt-%03d", p), Sum: sum, Series: series}
		},
		Workers:   workers,
		MaxPoints: maxPoints,
		Ledger:    l,
	}
}

func TestCampaignUninterrupted(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	out, err := testCampaign(l, 1, 0).Execute()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete || out.Fresh != 12 || out.Restored != 0 || out.VerifiedIndex != -1 {
		t.Fatalf("outcome = %+v", out)
	}
	if len(out.Results) != 12 || out.Results[3].Sum == 0 {
		t.Fatalf("results = %+v", out.Results)
	}
	if out.SummarySHA == "" {
		t.Fatal("no summary digest")
	}
	r, err := l.Read(out.RunID)
	if err != nil {
		t.Fatal(err)
	}
	// header + 12 points + summary
	if len(r.Lines) != 14 {
		t.Fatalf("ledger has %d lines, want 14", len(r.Lines))
	}
	s, ok := r.Summary()
	if !ok || s.SHA256 != out.SummarySHA || s.Points != 12 {
		t.Fatalf("summary = %+v, %v", s, ok)
	}
}

// TestCampaignKillAndResume is the headline property: a campaign stopped
// halfway (MaxPoints is the deterministic stand-in for a kill; the torn
// tail case is covered separately) and then resumed produces results and a
// summary digest byte-identical to an uninterrupted run, at every worker
// count, with the overlap point re-verified.
func TestCampaignKillAndResume(t *testing.T) {
	// Reference: uninterrupted serial run.
	refLedger, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := testCampaign(refLedger, 1, 0).Execute()
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 7} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			l, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			// Phase 1: killed at 50%.
			half, err := testCampaign(l, workers, 6).Execute()
			if err != nil {
				t.Fatal(err)
			}
			if half.Complete || half.Fresh != 6 || half.Results != nil {
				t.Fatalf("interrupted outcome = %+v", half)
			}
			// Phase 2: resume to completion.
			out, err := testCampaign(l, workers, 0).Execute()
			if err != nil {
				t.Fatal(err)
			}
			if !out.Complete || out.Restored != 6 || out.Fresh != 6 {
				t.Fatalf("resumed outcome = %+v", out)
			}
			if out.VerifiedIndex < 0 {
				t.Error("resume skipped the overlap verification")
			}
			if out.RunID != ref.RunID {
				t.Errorf("resumed run ID %s != reference %s", out.RunID, ref.RunID)
			}
			if out.SummarySHA != ref.SummarySHA {
				t.Errorf("summary digest diverged: %s vs %s", out.SummarySHA, ref.SummarySHA)
			}
			if !reflect.DeepEqual(out.Results, ref.Results) {
				t.Errorf("results diverged from the uninterrupted run:\n%+v\n%+v", out.Results, ref.Results)
			}
			// Phase 3: a re-execution of the complete campaign restores
			// everything, verifies one point, runs nothing and does not
			// write a second summary.
			again, err := testCampaign(l, workers, 0).Execute()
			if err != nil {
				t.Fatal(err)
			}
			if !again.Complete || again.Restored != 12 || again.Fresh != 0 {
				t.Fatalf("re-execution outcome = %+v", again)
			}
			if !reflect.DeepEqual(again.Results, ref.Results) {
				t.Error("re-execution results diverged")
			}
			r, err := l.Read(out.RunID)
			if err != nil {
				t.Fatal(err)
			}
			summaries := 0
			for _, line := range r.Lines {
				if line.Kind == KindSummary {
					summaries++
				}
			}
			if summaries != 1 {
				t.Errorf("ledger holds %d summaries, want 1", summaries)
			}
		})
	}
}

// TestCampaignOverlapVerificationCatchesDrift: if the point function stops
// reproducing its recorded results (code drift, nondeterminism), resume
// must fail loudly instead of stitching incompatible halves together.
func TestCampaignOverlapVerificationCatchesDrift(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := testCampaign(l, 2, 6).Execute(); err != nil {
		t.Fatal(err)
	}
	drifted := testCampaign(l, 2, 0)
	inner := drifted.Run
	drifted.Run = func(i int, p int) pointResult {
		r := inner(i, p)
		r.Sum++ // the drift
		return r
	}
	_, err = drifted.Execute()
	if err == nil {
		t.Fatal("drifted point function resumed without error")
	}
	if !strings.Contains(err.Error(), "no longer reproduces") {
		t.Errorf("unhelpful drift error: %v", err)
	}
}

func TestCampaignDuplicateKeysRejected(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := testCampaign(l, 1, 0)
	c.Key = func(i int, p int) string { return "same" }
	if _, err := c.Execute(); err == nil {
		t.Error("duplicate point keys accepted")
	}
}

func TestCampaignSpecChangesRunID(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := testCampaign(l, 1, 0)
	b := testCampaign(l, 1, 0)
	b.Spec = map[string]int{"scale": 8}
	outA, err := a.Execute()
	if err != nil {
		t.Fatal(err)
	}
	outB, err := b.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if outA.RunID == outB.RunID {
		t.Error("different specs share a run ID (checkpoint collision)")
	}
	runs, err := l.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Errorf("ledger lists %d runs, want 2", len(runs))
	}
}

// TestCampaignResumeAfterTornTail: a genuinely torn checkpoint (killed
// mid-append) resumes cleanly — the torn point re-runs.
func TestCampaignResumeAfterTornTail(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	half, err := testCampaign(l, 1, 6).Execute()
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last recorded line in half.
	path := l.Path(half.RunID)
	data := readFileT(t, path)
	cut := len(data) - 20
	writeFileT(t, path, data[:cut])

	out, err := testCampaign(l, 1, 0).Execute()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete {
		t.Fatalf("outcome = %+v", out)
	}
	if out.Restored != 5 || out.Fresh != 7 {
		t.Errorf("restored=%d fresh=%d, want 5/7 (torn point re-run)", out.Restored, out.Fresh)
	}
	ref, err := testCampaign(mustOpen(t), 1, 0).Execute()
	if err != nil {
		t.Fatal(err)
	}
	if out.SummarySHA != ref.SummarySHA || !reflect.DeepEqual(out.Results, ref.Results) {
		t.Error("post-tear resume diverged from the uninterrupted run")
	}
}
