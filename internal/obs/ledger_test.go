package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLedgerRoundTrip(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	runID, err := RunID("round-trip", map[string]int{"points": 2})
	if err != nil {
		t.Fatal(err)
	}
	w, err := l.Append(runID, 0)
	if err != nil {
		t.Fatal(err)
	}
	host := &HostInfo{Hostname: "testhost", GOOS: "linux", CPUs: 8, UnixNS: 12345}
	if err := w.Write(KindHeader, Header{Name: "round-trip", Points: 2}, host); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		blob, _ := json.Marshal(map[string]int{"value": i * 10})
		if err := w.Write(KindPoint, Point{Index: i, Key: "p" + string(rune('a'+i)), Result: blob}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	runs, err := l.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0] != runID {
		t.Fatalf("Runs() = %v, want [%s]", runs, runID)
	}
	r, err := l.Read(runID)
	if err != nil {
		t.Fatal(err)
	}
	if r.Truncated {
		t.Error("clean file read back as truncated")
	}
	if len(r.Lines) != 3 {
		t.Fatalf("read %d lines, want 3", len(r.Lines))
	}
	for i, line := range r.Lines {
		if line.Seq != i {
			t.Errorf("line %d has seq %d", i, line.Seq)
		}
		if line.Run != runID {
			t.Errorf("line %d has run %q", i, line.Run)
		}
	}
	h, ok := r.Header()
	if !ok || h.Name != "round-trip" || h.Points != 2 {
		t.Fatalf("Header() = %+v, %v", h, ok)
	}
	if r.Lines[0].Host == nil || r.Lines[0].Host.Hostname != "testhost" {
		t.Errorf("host stamp lost: %+v", r.Lines[0].Host)
	}
	pts, err := r.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[1].Key != "pb" {
		t.Fatalf("Points() = %+v", pts)
	}
	var decoded map[string]int
	if err := json.Unmarshal(pts[1].Result, &decoded); err != nil || decoded["value"] != 10 {
		t.Errorf("point result lost: %v %v", decoded, err)
	}
}

// TestLedgerSchemaVersionReject mirrors the crashmc witness discipline: a
// ledger line from a future (or corrupted) schema version is an error, not
// a silently misread record.
func TestLedgerSchemaVersionReject(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	future := `{"schema_version":99,"run":"deadbeef","seq":0,"kind":"header"}` + "\n" +
		`{"schema_version":99,"run":"deadbeef","seq":1,"kind":"point"}` + "\n"
	if err := os.WriteFile(l.Path("deadbeef"), []byte(future), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = l.Read("deadbeef")
	if err == nil {
		t.Fatal("reader accepted schema version 99")
	}
	if !strings.Contains(err.Error(), "schema version 99") {
		t.Errorf("unhelpful schema error: %v", err)
	}
}

// TestLedgerTornTail covers the kill-mid-append case: a run file whose last
// line was cut off mid-write reads back Truncated with every complete line
// intact, so the campaign can resume from it.
func TestLedgerTornTail(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := l.Append("torn", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(KindHeader, Header{Name: "torn", Points: 3}, nil); err != nil {
		t.Fatal(err)
	}
	blob, _ := json.Marshal(map[string]int{"v": 1})
	if err := w.Write(KindPoint, Point{Index: 0, Key: "a", Result: blob}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: append half a line with no newline.
	f, err := os.OpenFile(l.Path("torn"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"schema_version":1,"run":"torn","seq":2,"ki`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := l.Read("torn")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Truncated {
		t.Error("torn tail not reported")
	}
	if len(r.Lines) != 2 {
		t.Fatalf("read %d lines, want the 2 intact ones", len(r.Lines))
	}

	// A torn tail that does end in a newline (garbage final line) is also
	// tolerated.
	if err := os.WriteFile(filepath.Join(l.Dir(), "torn2.jsonl"),
		[]byte(`{"schema_version":1,"run":"torn2","seq":0,"kind":"header","det":{"name":"x"}}`+"\n"+`{"schem`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r2, err := l.Read("torn2")
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Truncated || len(r2.Lines) != 1 {
		t.Fatalf("garbage final line: truncated=%v lines=%d", r2.Truncated, len(r2.Lines))
	}

	// Garbage in the middle is corruption, not a torn tail.
	if err := os.WriteFile(filepath.Join(l.Dir(), "bad.jsonl"),
		[]byte(`{"schem`+"\n"+`{"schema_version":1,"run":"bad","seq":1,"kind":"point"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Read("bad"); err == nil {
		t.Error("mid-file corruption read back without error")
	}
}

func TestLedgerReadIfExists(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r, err := l.ReadIfExists("nothere")
	if err != nil || r != nil {
		t.Fatalf("ReadIfExists on missing run = %v, %v", r, err)
	}
	if _, err := l.Read("nothere"); err == nil {
		t.Error("Read on missing run did not error")
	}
}

func TestRunIDDeterministic(t *testing.T) {
	a, err := RunID("camp", map[string]any{"grid": []int{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunID("camp", map[string]any{"grid": []int{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same identity hashed differently: %s vs %s", a, b)
	}
	c, _ := RunID("camp", map[string]any{"grid": []int{1, 2, 4}})
	if a == c {
		t.Error("different specs collided")
	}
	d, _ := RunID("camp2", map[string]any{"grid": []int{1, 2, 3}})
	if a == d {
		t.Error("different names collided")
	}
	if len(a) != 16 {
		t.Errorf("run ID %q is not 16 hex chars", a)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("Open(\"\") succeeded")
	}
}
