//go:build !invariant

package invariant

// Enabled is false without the `invariant` build tag; see enabled_on.go.
const Enabled = false
