package invariant

import (
	"fmt"

	"bbb/internal/bbpb"
)

// CheckOccupancyBound audits a statically certified per-core persist-buffer
// occupancy bound (a pressurelint SchemeBound.PerCoreLines) against live
// buffers: a single live entry above the bound is a soundness violation of
// the static analysis, not a tuning concern, so callers should treat an
// error as a hard failure. Like Check, call it only between engine events.
func CheckOccupancyBound(bufs []bbpb.PersistBuffer, perCore int) error {
	for core, b := range bufs {
		if b == nil {
			continue
		}
		if occ := b.Occupancy(); occ > perCore {
			return fmt.Errorf("bbPB[%d]: occupancy %d exceeds the certified per-core bound %d", core, occ, perCore)
		}
	}
	return nil
}
