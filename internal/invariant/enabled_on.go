//go:build invariant

package invariant

// Enabled reports whether the build carries the `invariant` tag: test
// harnesses gate their per-step Check calls on it so the default build
// pays nothing.
const Enabled = true
