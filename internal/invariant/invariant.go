// Package invariant is the runtime counterpart of cmd/bbbvet: it asserts,
// on a live simulated machine, the structural invariants the paper's
// correctness argument rests on, so a regression in the coherence protocol
// or the persist-buffer logic fails loudly at the step that broke the
// state instead of as a wrong number three figures later.
//
// Checked (between engine events, i.e. at event-loop quiescence):
//
//   - the coherence hierarchy's own invariants (L1 inclusion in L2,
//     directory sharer/owner consistency, single writer per line);
//   - every bbPB entry not currently draining has an LLC copy of its
//     block, marked persistent and dirty somewhere in the hierarchy — the
//     paper's dirty-inclusion property (§III-B, §III-E) that lets BBB skip
//     LLC writebacks of persistent lines. Entries whose block just left
//     the LLC are force-drained synchronously within the evicting event,
//     which is why the property holds whenever the event loop is idle;
//   - buffer bookkeeping: Occupancy agrees with the entry walk and never
//     exceeds capacity, allocation sequence numbers strictly increase in
//     list order, and an in-order (processor-side) buffer only ever has
//     its head entry draining;
//   - no block has live entries in two cores' buffers at once — remote
//     writes must migrate the entry (Fig. 6 a/b), not copy it — and a
//     coalescing (LLC-side) buffer never holds two live entries for one
//     block. An in-order processor-side buffer may: it only coalesces
//     with its youngest entry (§III-B), so a repeat of an older block
//     legitimately re-allocates.
//
// The checks are read-only and need no build tag themselves; the Enabled
// constant (set by the `invariant` build tag, see enabled_on.go) lets test
// harnesses and bbbsim gate per-step checking so the default build pays
// nothing. One caveat: a clwb-style instruction cleans cached copies
// without touching buffers, so the dirty-copy check assumes the BBB
// schemes' implicit-persist model (no clwb traffic), which is how every
// BBB configuration in this repository runs.
package invariant

import (
	"fmt"

	"bbb/internal/bbpb"
	"bbb/internal/coherence"
	"bbb/internal/engine"
	"bbb/internal/memory"
	"bbb/internal/system"
)

// View is the slice of a machine the checker audits. Hier may be nil
// (buffers checked alone) and Bufs may be empty (coherence checked alone),
// so partial rigs in unit tests work.
type View struct {
	Hier *coherence.Hierarchy
	Bufs []bbpb.PersistBuffer // indexed by core
}

// Check validates every invariant and returns the first violation.
// Call it only between engine events: mid-event state is legitimately
// transient (an eviction invalidates the LLC copy before the forced drain
// marks the buffer entry draining within the same event).
func Check(v View) error {
	if v.Hier != nil {
		if err := v.Hier.CheckInvariants(); err != nil {
			return fmt.Errorf("coherence: %w", err)
		}
	}
	type holder struct {
		core int
	}
	live := make(map[memory.Addr]holder)
	for core, b := range v.Bufs {
		if b == nil {
			continue
		}
		var err error
		n := 0
		lastSeq := uint64(0)
		inOrder := b.InOrder()
		b.ForEachEntry(func(addr memory.Addr, seq uint64, draining bool) {
			idx := n
			n++
			if err != nil {
				return
			}
			if idx > 0 && seq <= lastSeq {
				err = fmt.Errorf("bbPB[%d]: entry %#x seq %d <= predecessor seq %d; allocation order broken", core, addr, seq, lastSeq)
				return
			}
			lastSeq = seq
			if inOrder && draining && idx != 0 {
				err = fmt.Errorf("bbPB[%d]: in-order buffer has non-head entry %#x draining", core, addr)
				return
			}
			if draining {
				return // its durability is the in-flight NVMM write's job
			}
			if prev, dup := live[addr]; dup {
				switch {
				case prev.core != core:
					err = fmt.Errorf("block %#x buffered by both bbPB[%d] and bbPB[%d]; migration must move entries, not copy them", addr, prev.core, core)
					return
				case !inOrder:
					err = fmt.Errorf("bbPB[%d]: block %#x has two live entries; a coalescing buffer must merge repeat stores", core, addr)
					return
				}
				// An in-order buffer legitimately holds one entry per store
				// to a block: it may only coalesce with its youngest entry
				// (§III-B), so repeats of an older block re-allocate.
			}
			live[addr] = holder{core}
			if v.Hier == nil {
				return
			}
			lv := v.Hier.ViewLine(addr)
			switch {
			case !lv.InL2:
				err = fmt.Errorf("bbPB[%d]: buffered block %#x has no LLC copy; dirty inclusion broken (paper §III-B)", core, addr)
			case !lv.L2Persistent:
				err = fmt.Errorf("bbPB[%d]: buffered block %#x cached without the Persistent mark", core, addr)
			case !lv.DirtyAnywhere:
				err = fmt.Errorf("bbPB[%d]: buffered block %#x has no dirty cached copy; its eviction would silently skip the drain (paper §III-E)", core, addr)
			}
		})
		if err != nil {
			return err
		}
		if occ := b.Occupancy(); occ != n {
			return fmt.Errorf("bbPB[%d]: Occupancy()=%d but the entry walk yields %d", core, occ, n)
		}
		if n > b.Cap() {
			return fmt.Errorf("bbPB[%d]: %d entries exceed capacity %d", core, n, b.Cap())
		}
	}
	return nil
}

// SystemView extracts the checkable slice of a wired machine.
func SystemView(s *system.System) View {
	return View{Hier: s.Hier, Bufs: s.Model.Buffers}
}

// CheckSystem audits a wired machine (the persist buffers exist only for
// the BBB schemes; other schemes get the coherence checks alone).
func CheckSystem(s *system.System) error {
	return Check(SystemView(s))
}

// Attach arms a periodic audit on the machine's engine: every period
// cycles, CheckSystem runs and its first violation is handed to report
// (which may panic, t.Fatal, or log). The ticker stops after a violation
// or once stop returns true. bbbsim's -check flag and the -tags invariant
// test harnesses use this to audit whole runs.
func Attach(s *system.System, period engine.Cycle, stop func() bool, report func(error)) {
	s.Eng.Ticker(period, func() bool {
		if err := CheckSystem(s); err != nil {
			report(err)
			return false
		}
		return !stop()
	})
}
