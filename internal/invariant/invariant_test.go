package invariant_test

import (
	"strings"
	"testing"

	"bbb/internal/bbpb"
	"bbb/internal/coherence"
	"bbb/internal/engine"
	"bbb/internal/invariant"
	"bbb/internal/memctrl"
	"bbb/internal/memory"
	"bbb/internal/persistency"
	"bbb/internal/system"
	"bbb/internal/workload"
)

// Line-aligned probe addresses: pLine persists (NVMM heap), vLine does not.
const (
	pLine = memory.Addr(8 << 30)
	vLine = memory.Addr(0x1000)
)

// rig is a hierarchy plus one hand-driven bbPB, deliberately NOT wired
// together (NullPolicy): tests stage exactly the cache and buffer state
// they want and then ask Check for a verdict.
type rig struct {
	t    *testing.T
	eng  *engine.Engine
	hier *coherence.Hierarchy
	buf  *bbpb.Buffer
}

func newRig(t *testing.T) *rig {
	t.Helper()
	layout := memory.DefaultLayout()
	eng := engine.New()
	mem := memory.New(layout)
	dram := memctrl.New(memctrl.DefaultDRAM(), eng, mem)
	nvmm := memctrl.New(memctrl.DefaultNVMM(), eng, mem)
	cfg := coherence.DefaultConfig()
	cfg.Cores = 2
	hier := coherence.New(cfg, eng, layout, dram, nvmm, coherence.NullPolicy{})
	return &rig{t: t, eng: eng, hier: hier, buf: bbpb.New(bbpb.DefaultConfig(), 0, eng, nvmm)}
}

func (r *rig) view() invariant.View {
	return invariant.View{Hier: r.hier, Bufs: []bbpb.PersistBuffer{r.buf}}
}

func (r *rig) load(core int, a memory.Addr) {
	r.t.Helper()
	done := false
	r.hier.Load(core, a, 8, func(uint64) { done = true })
	r.eng.Run()
	if !done {
		r.t.Fatalf("load of %#x never completed", a)
	}
}

func (r *rig) store(core int, a memory.Addr, v uint64) {
	r.t.Helper()
	done := false
	r.hier.Store(core, a, 8, v, func() { done = true })
	r.eng.Run()
	if !done {
		r.t.Fatalf("store to %#x never completed", a)
	}
}

func (r *rig) put(a memory.Addr) {
	r.t.Helper()
	var data [memory.LineSize]byte
	if !r.buf.Put(a, &data) {
		r.t.Fatalf("bbPB rejected %#x", a)
	}
}

// wantViolation asserts Check reports an error mentioning every fragment.
func wantViolation(t *testing.T, v invariant.View, fragments ...string) {
	t.Helper()
	err := invariant.Check(v)
	if err == nil {
		t.Fatalf("Check passed; want violation mentioning %q", fragments)
	}
	for _, f := range fragments {
		if !strings.Contains(err.Error(), f) {
			t.Fatalf("violation %q does not mention %q", err, f)
		}
	}
}

func TestCleanStateChecksOut(t *testing.T) {
	r := newRig(t)
	r.store(0, pLine, 7) // dirty persistent line, cached
	r.put(pLine)         // buffered with a dirty LLC copy: the §III-B shape
	r.load(1, pLine)     // share it across cores
	r.store(1, vLine, 1) // unrelated volatile traffic
	if err := invariant.Check(r.view()); err != nil {
		t.Fatalf("clean state reported: %v", err)
	}
}

func TestBufferedBlockWithoutLLCCopy(t *testing.T) {
	r := newRig(t)
	r.put(pLine) // nothing cached anywhere: dirty inclusion broken
	wantViolation(t, r.view(), "bbPB[0]", "no LLC copy", "§III-B")
}

func TestBufferedBlockWithoutPersistentMark(t *testing.T) {
	r := newRig(t)
	r.store(0, vLine, 3) // DRAM line: cached dirty, but not persistent
	r.put(vLine)
	wantViolation(t, r.view(), "bbPB[0]", "without the Persistent mark")
}

func TestBufferedBlockWithoutDirtyCopy(t *testing.T) {
	r := newRig(t)
	r.load(0, pLine) // clean fill of the persistent line
	r.put(pLine)
	wantViolation(t, r.view(), "bbPB[0]", "no dirty cached copy", "§III-E")
}

func TestCoherenceCorruptionIsDelegated(t *testing.T) {
	r := newRig(t)
	r.store(0, vLine, 9)
	// Desync the directory: the L1 copy vanishes while the directory still
	// names core 0 a sharer.
	if _, ok := r.hier.L1Cache(0).Invalidate(vLine); !ok {
		t.Fatal("expected an L1 line to corrupt")
	}
	wantViolation(t, r.view(), "coherence:", "lacks line")
}

// fakeBuf stages arbitrary bookkeeping answers; unimplemented interface
// methods panic via the embedded nil, which Check must never call.
type fakeEntry struct {
	addr     memory.Addr
	seq      uint64
	draining bool
}

type fakeBuf struct {
	bbpb.PersistBuffer
	entries []fakeEntry
	occ     int
	cap     int
	inOrder bool
}

func (f *fakeBuf) Occupancy() int { return f.occ }
func (f *fakeBuf) Cap() int       { return f.cap }
func (f *fakeBuf) InOrder() bool  { return f.inOrder }
func (f *fakeBuf) ForEachEntry(fn func(memory.Addr, uint64, bool)) {
	for _, e := range f.entries {
		fn(e.addr, e.seq, e.draining)
	}
}

func bufsOnly(bufs ...bbpb.PersistBuffer) invariant.View {
	return invariant.View{Bufs: bufs}
}

func TestOccupancyMismatch(t *testing.T) {
	f := &fakeBuf{entries: []fakeEntry{{pLine, 1, false}}, occ: 2, cap: 8}
	wantViolation(t, bufsOnly(f), "Occupancy()=2", "yields 1")
}

func TestOverCapacity(t *testing.T) {
	f := &fakeBuf{
		entries: []fakeEntry{{pLine, 1, false}, {pLine + 64, 2, false}},
		occ:     2, cap: 1,
	}
	wantViolation(t, bufsOnly(f), "2 entries exceed capacity 1")
}

func TestSequenceRegression(t *testing.T) {
	f := &fakeBuf{
		entries: []fakeEntry{{pLine, 5, false}, {pLine + 64, 3, false}},
		occ:     2, cap: 8,
	}
	wantViolation(t, bufsOnly(f), "seq 3 <= predecessor seq 5", "allocation order broken")
}

func TestInOrderBufferDrainingMidList(t *testing.T) {
	f := &fakeBuf{
		entries: []fakeEntry{{pLine, 1, false}, {pLine + 64, 2, true}},
		occ:     2, cap: 8, inOrder: true,
	}
	wantViolation(t, bufsOnly(f), "in-order buffer has non-head entry", "draining")
}

func TestHeadDrainInOrderIsLegal(t *testing.T) {
	f := &fakeBuf{
		entries: []fakeEntry{{pLine, 1, true}, {pLine + 64, 2, false}},
		occ:     2, cap: 8, inOrder: true,
	}
	if err := invariant.Check(bufsOnly(f)); err != nil {
		t.Fatalf("head drain flagged: %v", err)
	}
}

func TestDuplicateBlockAcrossBuffers(t *testing.T) {
	a := &fakeBuf{entries: []fakeEntry{{pLine, 1, false}}, occ: 1, cap: 8}
	b := &fakeBuf{entries: []fakeEntry{{pLine, 4, false}}, occ: 1, cap: 8}
	wantViolation(t, bufsOnly(a, b), "buffered by both bbPB[0] and bbPB[1]", "migration must move")
}

func TestDuplicateInCoalescingBufferFlagged(t *testing.T) {
	f := &fakeBuf{
		entries: []fakeEntry{{pLine, 1, false}, {pLine, 2, false}},
		occ:     2, cap: 8,
	}
	wantViolation(t, bufsOnly(f), "two live entries", "must merge repeat stores")
}

func TestDuplicateInInOrderBufferIsLegal(t *testing.T) {
	// Proc-side buffers only coalesce with the youngest entry, so a repeat
	// store to an older block re-allocates (§III-B).
	f := &fakeBuf{
		entries: []fakeEntry{{pLine, 1, false}, {pLine + 64, 2, false}, {pLine, 3, false}},
		occ:     3, cap: 8, inOrder: true,
	}
	if err := invariant.Check(bufsOnly(f)); err != nil {
		t.Fatalf("in-order repeat flagged: %v", err)
	}
}

func TestDrainingDuplicateIsLegal(t *testing.T) {
	// A drain still in flight on the old owner's buffer may coexist with
	// the migrated live entry (Buffer counts it as drain_after_migration).
	a := &fakeBuf{entries: []fakeEntry{{pLine, 1, true}}, occ: 1, cap: 8}
	b := &fakeBuf{entries: []fakeEntry{{pLine, 4, false}}, occ: 1, cap: 8}
	if err := invariant.Check(bufsOnly(a, b)); err != nil {
		t.Fatalf("draining duplicate flagged: %v", err)
	}
}

// TestAttachAuditsWholeRun runs a real workload under BBB with the
// periodic audit armed and requires a clean bill of health — the
// whole-machine integration the `-check` flag of bbbsim uses.
func TestAttachAuditsWholeRun(t *testing.T) {
	w, err := workload.ByName("hashmap")
	if err != nil {
		t.Fatal(err)
	}
	cfg := system.DefaultConfig(persistency.BBB)
	// Small caches force LLC evictions and forced drains, the paths most
	// likely to break dirty inclusion.
	cfg.Hierarchy.L1Size = 1024
	cfg.Hierarchy.L2Size = 4096
	p := workload.DefaultParams()
	p.Threads = 4
	p.OpsPerThread = 80
	sys, progs := workload.Build(w, persistency.BBB, cfg, p)
	defer sys.Shutdown()

	var violation error
	allDone := func() bool {
		for _, c := range sys.Cores {
			if !c.Done() {
				return false
			}
		}
		return true
	}
	invariant.Attach(sys, 250, allDone, func(err error) { violation = err })
	sys.Run(progs)
	if violation != nil {
		t.Fatalf("mid-run violation: %v", violation)
	}
	if err := invariant.CheckSystem(sys); err != nil {
		t.Fatalf("post-run violation: %v", err)
	}
}
