// Package sweep is the deterministic parallel fan-out used by the
// experiment drivers and crash campaigns: a fixed work list of independent
// simulation points is executed by a bounded worker pool, and every result
// is written into an index-addressed slot supplied by the caller.
//
// The determinism contract: each task must be self-contained — it builds
// its own engine.Engine and machine, shares nothing mutable with other
// tasks, and writes only to its own slot. Because a simulation's outcome
// depends only on its inputs (seed, config), not on when or on which
// goroutine it runs, the joined results are identical to a serial loop in
// index order, whatever the worker count. The callers' aggregation then
// runs serially over the slots, so figures, tables and reports come out
// byte-identical, parallel or not.
package sweep

import (
	"sync"
	"sync/atomic"
)

// Run executes task(0), ..., task(n-1), fanning out over at most workers
// goroutines. workers <= 1 (or n < 2) degenerates to a plain serial loop on
// the caller's goroutine. Tasks are claimed from a shared counter, so
// uneven point costs still load-balance.
//
// A panicking task does not tear down the process from a worker goroutine:
// Run waits for the remaining workers, then re-panics the panic value of
// the lowest-indexed failed task on the caller's goroutine — the same panic
// a serial loop would have surfaced first.
func Run(workers, n int, task func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		panicked bool
		panicIdx int
		panicVal any
	)
	claim := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						mu.Lock()
						if !panicked || i < panicIdx {
							panicked, panicIdx, panicVal = true, i, r
						}
						mu.Unlock()
					}
				}()
				task(i)
			}()
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go claim()
	}
	wg.Wait()
	if panicked {
		panic(panicVal)
	}
}

// Map runs task over 0..n-1 like Run and collects the return values in
// index order.
func Map[T any](workers, n int, task func(i int) T) []T {
	out := make([]T, n)
	Run(workers, n, func(i int) { out[i] = task(i) })
	return out
}

// RunIndices is Run over an explicit index list: task(idx[0]), ...,
// task(idx[len-1]) with the same claiming, panic-propagation and
// determinism contract (the lowest-positioned failed task's panic wins).
// The campaign driver uses it to execute only a checkpoint's pending
// points while keeping slots addressed by original point index.
func RunIndices(workers int, idx []int, task func(i int)) {
	Run(workers, len(idx), func(k int) { task(idx[k]) })
}
