package sweep

import (
	"sync/atomic"
	"testing"
)

func TestRunCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 100
		var hits [n]atomic.Int32
		Run(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestRunZeroTasks(t *testing.T) {
	Run(4, 0, func(int) { t.Fatal("task ran for n=0") })
	Run(4, -3, func(int) { t.Fatal("task ran for n<0") })
}

func TestMapIndexOrder(t *testing.T) {
	got := Map(8, 50, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}
}

// Parallel results must be identical to the serial loop's, slot by slot.
func TestParallelMatchesSerial(t *testing.T) {
	task := func(i int) uint64 {
		// A deterministic per-index computation with per-task state.
		v := uint64(i + 1)
		for k := 0; k < 1000; k++ {
			v = v*6364136223846793005 + 1442695040888963407
		}
		return v
	}
	serial := Map(1, 64, task)
	parallel := Map(16, 64, task)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("slot %d: serial %d != parallel %d", i, serial[i], parallel[i])
		}
	}
}

// The lowest-indexed panic wins, matching what a serial loop surfaces first.
func TestRunPanicPropagation(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		if r != "boom-3" {
			t.Fatalf("propagated %v, want boom-3 (lowest failing index)", r)
		}
	}()
	Run(4, 16, func(i int) {
		if i == 3 || i == 11 {
			panic("boom-" + string(rune('0'+i%10)))
		}
	})
}

func TestRunSerialPanicUnwrapped(t *testing.T) {
	defer func() {
		if r := recover(); r != "serial" {
			t.Fatalf("recover() = %v, want serial", r)
		}
	}()
	Run(1, 3, func(i int) {
		if i == 1 {
			panic("serial")
		}
	})
}
