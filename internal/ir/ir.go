// Package ir defines a compact micro-op instruction stream for workload
// programs, plus the builder that emits it and the interpreter that executes
// it. It exists for one reason: raw simulator speed.
//
// The original program interface (cpu.Env) runs each workload thread on its
// own goroutine and couples it to the event kernel with a two-channel
// rendezvous per simulated memory access — a goroutine park/unpark pair per
// Load/Store/Flush/Fence/CAS. That handoff dominates the simulator's hot
// path. A compiled program expresses the same thread body as a flat stream
// of register-machine micro-ops; the core then drives the interpreter
// *inline from the event kernel*: one callback per machine action, zero
// goroutines, zero channel operations.
//
// The op set has two layers:
//
//   - Machine ops (Load, Store, Flush, Fence, Barrier, Compute, CAS, Halt)
//     yield an Action to the core and advance simulated time, exactly one
//     Env call each.
//   - Inline ops (constants, register ALU, branches, PRNG draws, barrier
//     address accumulation) execute host-side between yields and cost zero
//     simulated cycles — mirroring the host-side Go control flow of the
//     goroutine twins.
//
// Equivalence with the Env twins is the package's contract: for the same
// seed, a compiled program must perform the identical sequence of machine
// actions its goroutine twin performs, so both paths produce byte-identical
// system.Results. The scheme-dependent expansion of persist barriers
// (epoch mark / clwb-per-line + sfence / nothing) is done by the
// interpreter at run time from the same core configuration bits cpu.env
// consults, so one compiled program serves every scheme.
package ir

import "fmt"

// Reg names one of the interpreter's general-purpose 64-bit registers.
type Reg uint8

// NumRegs is the register file size; rtree (the widest workload) uses ~30.
const NumRegs = 48

// MaxBarrierAddrs bounds the address list one Barrier can cover (rtree's
// split barrier names 6 lines; env.PersistBarrier has no limit, but every
// workload call site is statically bounded).
const MaxBarrierAddrs = 8

// OpCode selects a micro-op.
type OpCode uint8

// Machine ops (yield an Action) and inline ops (host-side only).
const (
	opInvalid OpCode = iota

	// --- machine ops: each yields exactly one Action ---

	// OpHalt ends the program (Env twin returning).
	OpHalt
	// OpLoad reads size-C bytes at reg[B]+Imm into reg[A].
	OpLoad
	// OpStore writes size-C bytes of reg[A] at reg[B]+Imm.
	OpStore
	// OpFlush writes back the line of reg[B]+Imm (Env.Flush): a clwb under
	// ExplicitPersist, skipped entirely otherwise.
	OpFlush
	// OpFence orders earlier flushes (Env.Fence): an sfence under
	// ExplicitPersist, an epoch mark under EpochMode, skipped otherwise.
	OpFence
	// OpBarrier issues Env.PersistBarrier over the addresses accumulated by
	// OpBarrierAddr since the last OpBarrier: one epoch mark under
	// EpochMode, clwb-per-address + sfence under ExplicitPersist, nothing
	// under the battery schemes. Always clears the accumulator.
	OpBarrier
	// OpCompute burns Imm core cycles (Imm > 0; the builder drops zeros,
	// mirroring Env.Compute's early return).
	OpCompute
	// OpCAS compare-and-swaps size-C bytes at reg[B]+Imm: expected old in
	// reg[C], new value in reg[A]; the previous memory value replaces
	// reg[A] (compare it to the old operand to learn whether the swap hit).
	OpCAS

	// --- inline ops: zero simulated cost ---

	// OpBarrierAddr appends reg[B]+Imm to the barrier address accumulator.
	OpBarrierAddr
	// OpConst sets reg[A] = Imm.
	OpConst
	// OpMov sets reg[A] = reg[B].
	OpMov
	// OpAdd sets reg[A] = reg[B] + reg[C] (wrapping).
	OpAdd
	// OpAddImm sets reg[A] = reg[B] + Imm (wrapping; subtraction is
	// addition of the two's complement).
	OpAddImm
	// OpSub sets reg[A] = reg[B] - reg[C] (wrapping).
	OpSub
	// OpMul sets reg[A] = reg[B] * reg[C] (wrapping).
	OpMul
	// OpMulImm sets reg[A] = reg[B] * Imm (wrapping).
	OpMulImm
	// OpXor sets reg[A] = reg[B] ^ reg[C].
	OpXor
	// OpXorImm sets reg[A] = reg[B] ^ Imm.
	OpXorImm
	// OpAnd sets reg[A] = reg[B] & reg[C].
	OpAnd
	// OpAndImm sets reg[A] = reg[B] & Imm.
	OpAndImm
	// OpOr sets reg[A] = reg[B] | reg[C].
	OpOr
	// OpOrImm sets reg[A] = reg[B] | Imm.
	OpOrImm
	// OpShl sets reg[A] = reg[B] << reg[C] (0 when the shift count is >= 64,
	// matching Go's uint64 shift semantics).
	OpShl
	// OpShlImm sets reg[A] = reg[B] << Imm.
	OpShlImm
	// OpShr sets reg[A] = reg[B] >> reg[C] (logical; 0 when >= 64).
	OpShr
	// OpShrImm sets reg[A] = reg[B] >> Imm.
	OpShrImm
	// OpMinU sets reg[A] = min(reg[B], reg[C]) unsigned — with OpMaxU the
	// compare-exchange cell of sorting networks.
	OpMinU
	// OpMaxU sets reg[A] = max(reg[B], reg[C]) unsigned.
	OpMaxU
	// OpJmp jumps to pc Imm.
	OpJmp
	// OpBeq jumps to Imm when reg[A] == reg[B].
	OpBeq
	// OpBne jumps to Imm when reg[A] != reg[B].
	OpBne
	// OpBltU jumps to Imm when reg[A] < reg[B] (unsigned).
	OpBltU
	// OpBgeU jumps to Imm when reg[A] >= reg[B] (unsigned).
	OpBgeU
	// OpRand64 sets reg[A] = rng.Uint64().
	OpRand64
	// OpRandIntn sets reg[A] = uint64(rng.Intn(int(Imm))).
	OpRandIntn
	// OpRandInt63n sets reg[A] = uint64(rng.Int63n(int64(Imm))).
	OpRandInt63n

	nOpcodes
)

var opNames = [nOpcodes]string{
	opInvalid:     "invalid",
	OpHalt:        "halt",
	OpLoad:        "load",
	OpStore:       "store",
	OpFlush:       "flush",
	OpFence:       "fence",
	OpBarrier:     "barrier",
	OpCompute:     "compute",
	OpCAS:         "cas",
	OpBarrierAddr: "barrier.addr",
	OpConst:       "const",
	OpMov:         "mov",
	OpAdd:         "add",
	OpAddImm:      "addi",
	OpSub:         "sub",
	OpMul:         "mul",
	OpMulImm:      "muli",
	OpXor:         "xor",
	OpXorImm:      "xori",
	OpAnd:         "and",
	OpAndImm:      "andi",
	OpOr:          "or",
	OpOrImm:       "ori",
	OpShl:         "shl",
	OpShlImm:      "shli",
	OpShr:         "shr",
	OpShrImm:      "shri",
	OpMinU:        "minu",
	OpMaxU:        "maxu",
	OpJmp:         "jmp",
	OpBeq:         "beq",
	OpBne:         "bne",
	OpBltU:        "bltu",
	OpBgeU:        "bgeu",
	OpRand64:      "rand64",
	OpRandIntn:    "randintn",
	OpRandInt63n:  "randint63n",
}

// String names the opcode for disassembly and diagnostics.
func (c OpCode) String() string {
	if int(c) < len(opNames) && opNames[c] != "" {
		return opNames[c]
	}
	return fmt.Sprintf("op(%d)", int(c))
}

// Op is one 16-byte micro-op. Field roles depend on Code; see the opcode
// comments. Imm doubles as the address offset of memory ops and the target
// pc of branches.
type Op struct {
	Code    OpCode
	A, B, C Reg
	Imm     uint64
}

// String disassembles one op.
func (o Op) String() string {
	return fmt.Sprintf("%s r%d, r%d, r%d, %#x", o.Code, o.A, o.B, o.C, o.Imm)
}

// Prog is one thread's compiled program: a validated op stream plus the
// PRNG seed its random ops draw from (the workload's per-thread seed, so
// the draw stream matches the goroutine twin's rand.Rand exactly).
type Prog struct {
	Ops  []Op
	Seed int64
}

// Disasm renders the program, one op per line, for debugging.
func (p *Prog) Disasm() string {
	out := ""
	for i, op := range p.Ops {
		out += fmt.Sprintf("%4d: %s\n", i, op)
	}
	return out
}
