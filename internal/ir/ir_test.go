package ir

import (
	"math/rand"
	"strings"
	"testing"
)

// run drives a program with no machine behind it: loads and CASes resume
// with the values from resumes (consumed in order), everything else resumes
// with zero. It returns the sequence of machine actions the interpreter
// yielded, excluding the final ActionDone.
func run(t *testing.T, p *Prog, cfg Config, resumes ...uint64) []Action {
	t.Helper()
	var it Interp
	it.Reset(p, cfg)
	var acts []Action
	var resume uint64
	for i := 0; ; i++ {
		if i > 1_000_000 {
			t.Fatal("program did not halt")
		}
		var act Action
		it.Next(resume, &act)
		resume = 0
		if act.Kind == ActionDone {
			if !it.Halted() {
				t.Fatal("ActionDone without Halted()")
			}
			return acts
		}
		acts = append(acts, act)
		if act.Kind == ActionLoad || act.Kind == ActionCAS {
			if len(resumes) == 0 {
				t.Fatalf("action %d (%v) needs a resume value", i, act.Kind)
			}
			resume = resumes[0]
			resumes = resumes[1:]
		}
	}
}

// regAfter executes a straight-line program and returns reg r's final value,
// observed by storing it (the interpreter's registers are private).
func regAfter(t *testing.T, build func(b *Builder), r Reg) uint64 {
	t.Helper()
	b := NewBuilder(1)
	build(b)
	b.Store64(r, 0, 0x1000)
	b.Halt()
	acts := run(t, b.Build(), Config{})
	return acts[len(acts)-1].Val
}

func TestALUOps(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder)
		want  uint64
	}{
		{"const", func(b *Builder) { b.Const(0, 42) }, 42},
		{"mov", func(b *Builder) { b.Const(1, 7); b.Mov(0, 1) }, 7},
		{"add", func(b *Builder) { b.Const(1, 3); b.Const(2, 4); b.Add(0, 1, 2) }, 7},
		{"addi_wrap", func(b *Builder) { b.Const(1, ^uint64(0)); b.AddImm(0, 1, 2) }, 1},
		{"sub", func(b *Builder) { b.Const(1, 3); b.Const(2, 5); b.Sub(0, 1, 2) }, ^uint64(0) - 1},
		{"subi", func(b *Builder) { b.Const(1, 10); b.SubImm(0, 1, 4) }, 6},
		{"mul", func(b *Builder) { b.Const(1, 6); b.Const(2, 7); b.Mul(0, 1, 2) }, 42},
		{"muli", func(b *Builder) { b.Const(1, 9); b.MulImm(0, 1, 9) }, 81},
		{"xor", func(b *Builder) { b.Const(1, 0xF0); b.Const(2, 0xFF); b.Xor(0, 1, 2) }, 0x0F},
		{"xori", func(b *Builder) { b.Const(1, 0xF0); b.XorImm(0, 1, 0x0F) }, 0xFF},
		{"and", func(b *Builder) { b.Const(1, 0xF0); b.Const(2, 0x3C); b.And(0, 1, 2) }, 0x30},
		{"andi", func(b *Builder) { b.Const(1, 0xF0); b.AndImm(0, 1, 0x18) }, 0x10},
		{"or", func(b *Builder) { b.Const(1, 0xF0); b.Const(2, 0x0C); b.Or(0, 1, 2) }, 0xFC},
		{"ori", func(b *Builder) { b.Const(1, 0xF0); b.OrImm(0, 1, 0x03) }, 0xF3},
		{"shli", func(b *Builder) { b.Const(1, 3); b.ShlImm(0, 1, 4) }, 48},
		{"shri", func(b *Builder) { b.Const(1, 48); b.ShrImm(0, 1, 4) }, 3},
		{"minu", func(b *Builder) { b.Const(1, 5); b.Const(2, 3); b.MinU(0, 1, 2) }, 3},
		{"maxu", func(b *Builder) { b.Const(1, 5); b.Const(2, 3); b.MaxU(0, 1, 2) }, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := regAfter(t, tc.build, 0); got != tc.want {
				t.Fatalf("got %#x, want %#x", got, tc.want)
			}
		})
	}
}

// Variable shifts must match Go's uint64 semantics: a count >= 64 yields 0,
// not the x86 count-mod-64 behaviour — the Env twins shift in Go.
func TestShiftSemanticsAtWidth(t *testing.T) {
	for _, count := range []uint64{63, 64, 65, 1 << 40} {
		shl := regAfter(t, func(b *Builder) {
			b.Const(1, 1)
			b.Const(2, count)
			b.Shl(0, 1, 2)
		}, 0)
		shr := regAfter(t, func(b *Builder) {
			b.Const(1, ^uint64(0))
			b.Const(2, count)
			b.Shr(0, 1, 2)
		}, 0)
		wantShl, wantShr := uint64(0), uint64(0)
		if count < 64 {
			wantShl = 1 << count
			wantShr = ^uint64(0) >> count
		}
		if shl != wantShl || shr != wantShr {
			t.Fatalf("count %d: shl=%#x shr=%#x, want %#x %#x", count, shl, shr, wantShl, wantShr)
		}
	}
}

func TestBranchesAndLoop(t *testing.T) {
	// Sum 1..10 with a backward BltU loop, then branch over a poison store
	// with each conditional form.
	b := NewBuilder(1)
	b.Const(0, 0) // sum
	b.Const(1, 1) // i
	b.Const(2, 11)
	top := b.NewLabel()
	b.Bind(top)
	b.Add(0, 0, 1)
	b.AddImm(1, 1, 1)
	b.BltU(1, 2, top)
	b.Store64(0, 0, 0x1000)
	b.Halt()
	acts := run(t, b.Build(), Config{})
	if got := acts[len(acts)-1].Val; got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
}

func TestBranchForms(t *testing.T) {
	// Each branch form jumps over a store of 0xBAD when taken.
	type form struct {
		name  string
		x, y  uint64
		emit  func(b *Builder, l Label)
		taken bool
	}
	forms := []form{
		{"beq_taken", 4, 4, func(b *Builder, l Label) { b.Beq(1, 2, l) }, true},
		{"beq_not", 4, 5, func(b *Builder, l Label) { b.Beq(1, 2, l) }, false},
		{"bne_taken", 4, 5, func(b *Builder, l Label) { b.Bne(1, 2, l) }, true},
		{"bne_not", 4, 4, func(b *Builder, l Label) { b.Bne(1, 2, l) }, false},
		{"bltu_taken", 4, 5, func(b *Builder, l Label) { b.BltU(1, 2, l) }, true},
		{"bltu_not", 5, 4, func(b *Builder, l Label) { b.BltU(1, 2, l) }, false},
		{"bgeu_taken", 5, 4, func(b *Builder, l Label) { b.BgeU(1, 2, l) }, true},
		{"bgeu_not", 4, 5, func(b *Builder, l Label) { b.BgeU(1, 2, l) }, false},
	}
	for _, f := range forms {
		t.Run(f.name, func(t *testing.T) {
			b := NewBuilder(1)
			b.Const(1, f.x)
			b.Const(2, f.y)
			skip := b.NewLabel()
			f.emit(b, skip)
			b.Const(3, 0xBAD)
			b.Store64(3, 0, 0x1000)
			b.Bind(skip)
			b.Halt()
			acts := run(t, b.Build(), Config{})
			if stored := len(acts) == 1; stored == f.taken {
				t.Fatalf("taken = %v, but poison store emitted = %v", f.taken, stored)
			}
		})
	}
}

func TestJmpForward(t *testing.T) {
	b := NewBuilder(1)
	skip := b.NewLabel()
	b.Jmp(skip)
	b.Const(0, 0xBAD)
	b.Store64(0, 0, 0x1000)
	b.Bind(skip)
	b.Halt()
	if acts := run(t, b.Build(), Config{}); len(acts) != 0 {
		t.Fatalf("Jmp did not skip the poison store: %v", acts)
	}
}

// The PRNG ops must reproduce math/rand's stream for the program seed —
// that is the whole equivalence contract with the goroutine twins' per-
// thread rand.Rand.
func TestRandOpsMatchMathRand(t *testing.T) {
	const seed = 99
	b := NewBuilder(seed)
	b.Rand64(0)
	b.Store64(0, 0, 0x1000)
	b.RandIntn(0, 1000)
	b.Store64(0, 0, 0x1000)
	b.RandInt63n(0, 1<<40)
	b.Store64(0, 0, 0x1000)
	b.Halt()
	acts := run(t, b.Build(), Config{})
	rng := rand.New(rand.NewSource(seed))
	want := []uint64{rng.Uint64(), uint64(rng.Intn(1000)), uint64(rng.Int63n(1 << 40))}
	for i, w := range want {
		if acts[i].Val != w {
			t.Fatalf("draw %d = %d, want %d", i, acts[i].Val, w)
		}
	}
}

func TestLoadStoreCAS(t *testing.T) {
	b := NewBuilder(1)
	b.Const(1, 0x2000)
	b.Load(0, 1, 8, 4) // 4-byte load at 0x2008
	b.Store(0, 1, 16, 2)
	b.Const(2, 7)  // expected old
	b.Const(3, 11) // new
	b.CAS(3, 1, 24, 2)
	b.Store64(3, 1, 32) // stores the CAS's previous value
	b.Halt()
	acts := run(t, b.Build(), Config{}, 0xABCD /* load */, 7 /* CAS prev */)
	if a := acts[0]; a.Kind != ActionLoad || a.Addr != 0x2008 || a.Size != 4 {
		t.Fatalf("load action = %+v", a)
	}
	if a := acts[1]; a.Kind != ActionStore || a.Addr != 0x2010 || a.Size != 2 || a.Val != 0xABCD {
		t.Fatalf("store action = %+v", a)
	}
	if a := acts[2]; a.Kind != ActionCAS || a.Addr != 0x2018 || a.Old != 7 || a.Val != 11 {
		t.Fatalf("cas action = %+v", a)
	}
	if a := acts[3]; a.Val != 7 {
		t.Fatalf("CAS resume value not written back: %+v", a)
	}
}

// Barrier expansion is the interpreter's scheme-dependent decision: nothing
// under the battery schemes, one epoch mark under BEP, clwb-per-address +
// sfence under the PMEM model — exactly env.PersistBarrier.
func TestBarrierExpansion(t *testing.T) {
	prog := func() *Prog {
		b := NewBuilder(1)
		b.Const(1, 0x3000)
		b.BarrierAddr(1, 0)
		b.BarrierAddr(1, 64)
		b.Barrier()
		b.Halt()
		return b.Build()
	}
	t.Run("battery", func(t *testing.T) {
		if acts := run(t, prog(), Config{}); len(acts) != 0 {
			t.Fatalf("battery barrier yielded %v, want nothing", acts)
		}
	})
	t.Run("epoch", func(t *testing.T) {
		acts := run(t, prog(), Config{EpochMode: true})
		if len(acts) != 1 || acts[0].Kind != ActionEpoch {
			t.Fatalf("epoch barrier yielded %v, want one epoch mark", acts)
		}
	})
	t.Run("explicit", func(t *testing.T) {
		acts := run(t, prog(), Config{ExplicitPersist: true})
		if len(acts) != 3 {
			t.Fatalf("explicit barrier yielded %d actions, want 3", len(acts))
		}
		if acts[0].Kind != ActionFlush || acts[0].Addr != 0x3000 {
			t.Fatalf("first leg = %+v", acts[0])
		}
		if acts[1].Kind != ActionFlush || acts[1].Addr != 0x3040 {
			t.Fatalf("second leg = %+v", acts[1])
		}
		if acts[2].Kind != ActionFence {
			t.Fatalf("closing leg = %+v", acts[2])
		}
	})
	// The accumulator must clear across barriers in every mode: a second
	// barrier over one new address expands to exactly one flush.
	t.Run("accumulator_clears", func(t *testing.T) {
		b := NewBuilder(1)
		b.Const(1, 0x3000)
		b.BarrierAddr(1, 0)
		b.BarrierAddr(1, 64)
		b.Barrier()
		b.BarrierAddr(1, 128)
		b.Barrier()
		b.Halt()
		acts := run(t, b.Build(), Config{ExplicitPersist: true})
		if len(acts) != 5 || acts[3].Kind != ActionFlush || acts[3].Addr != 0x3080 {
			t.Fatalf("second barrier legs wrong: %v", acts)
		}
	})
}

func TestFlushFenceGating(t *testing.T) {
	prog := func() *Prog {
		b := NewBuilder(1)
		b.Const(1, 0x4000)
		b.Flush(1, 0)
		b.Fence()
		b.Halt()
		return b.Build()
	}
	t.Run("battery", func(t *testing.T) {
		if acts := run(t, prog(), Config{}); len(acts) != 0 {
			t.Fatalf("battery flush+fence yielded %v", acts)
		}
	})
	t.Run("epoch", func(t *testing.T) {
		// BEP: Flush is a no-op, Fence marks an epoch.
		acts := run(t, prog(), Config{EpochMode: true})
		if len(acts) != 1 || acts[0].Kind != ActionEpoch {
			t.Fatalf("epoch flush+fence yielded %v", acts)
		}
	})
	t.Run("explicit", func(t *testing.T) {
		acts := run(t, prog(), Config{ExplicitPersist: true})
		if len(acts) != 2 || acts[0].Kind != ActionFlush || acts[1].Kind != ActionFence {
			t.Fatalf("explicit flush+fence yielded %v", acts)
		}
	})
}

func TestComputeDropsZero(t *testing.T) {
	b := NewBuilder(1)
	b.Compute(0)
	b.Compute(5)
	b.Halt()
	acts := run(t, b.Build(), Config{})
	if len(acts) != 1 || acts[0].Kind != ActionCompute || acts[0].Cycles != 5 {
		t.Fatalf("Compute(0)+Compute(5) yielded %v, want one 5-cycle burn", acts)
	}
}

func TestSortNetwork(t *testing.T) {
	regs := []Reg{1, 2, 3, 4, 5}
	vals := []uint64{9, 2, ^uint64(0), 0, 7}
	b := NewBuilder(1)
	for i, r := range regs {
		b.Const(r, vals[i])
	}
	b.SortNetwork(regs, 6)
	for _, r := range regs {
		b.Store64(r, 0, 0x1000)
	}
	b.Halt()
	acts := run(t, b.Build(), Config{})
	want := []uint64{0, 2, 7, 9, ^uint64(0)}
	for i, w := range want {
		if acts[i].Val != w {
			t.Fatalf("sorted[%d] = %d, want %d", i, acts[i].Val, w)
		}
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestBuildValidation(t *testing.T) {
	mustPanic(t, "unbound label", func() {
		b := NewBuilder(1)
		l := b.NewLabel()
		b.Jmp(l)
		b.Halt()
		b.Build()
	})
	mustPanic(t, "double bind", func() {
		b := NewBuilder(1)
		l := b.NewLabel()
		b.Bind(l)
		b.Bind(l)
	})
	mustPanic(t, "register out of range", func() {
		b := NewBuilder(1)
		b.Const(NumRegs, 1)
		b.Halt()
		b.Build()
	})
	mustPanic(t, "barrier accumulator overflow", func() {
		b := NewBuilder(1)
		b.Const(1, 0x1000)
		for i := 0; i <= MaxBarrierAddrs; i++ {
			b.BarrierAddr(1, uint64(i)*64)
		}
		b.Barrier()
		b.Halt()
		b.Build()
	})
	mustPanic(t, "bad access size", func() {
		b := NewBuilder(1)
		b.Load(0, 1, 0, 3)
	})
	mustPanic(t, "RandIntn(0)", func() {
		b := NewBuilder(1)
		b.RandIntn(0, 0)
	})
}

func TestDisasm(t *testing.T) {
	b := NewBuilder(1)
	b.Const(1, 0x40)
	top := b.NewLabel()
	b.Bind(top)
	b.Load64(0, 1, 8)
	b.Bne(0, 1, top)
	b.Halt()
	d := b.Build().Disasm()
	for _, want := range []string{"const", "load", "bne", "halt", "0x40"} {
		if !strings.Contains(d, want) {
			t.Fatalf("Disasm missing %q:\n%s", want, d)
		}
	}
	// Branch targets must be patched to concrete pcs, not left zero.
	if !strings.Contains(d, "bne r0, r1, r0, 0x1") {
		t.Fatalf("branch target not patched to pc 1:\n%s", d)
	}
}

func TestOpCodeStringTotal(t *testing.T) {
	for c := OpCode(0); c < nOpcodes; c++ {
		if s := c.String(); s == "" || strings.HasPrefix(s, "op(") {
			t.Fatalf("opcode %d has no name", c)
		}
	}
	if s := nOpcodes.String(); !strings.HasPrefix(s, "op(") {
		t.Fatalf("out-of-range opcode stringified as %q", s)
	}
}

// BenchmarkIRInterpreter measures the interpreter alone — the per-op cost
// the compiled path adds on top of the machine model, with no engine or
// cache hierarchy behind it. bench-json tracks it as the ceiling on what
// compiled-path throughput could reach if the machine model were free.
func BenchmarkIRInterpreter(b *testing.B) {
	// The inner loop of a store-heavy workload: PRNG offset, one store, a
	// little ALU — roughly the mutateNC per-op mix.
	bld := NewBuilder(1)
	bld.Const(0, 0)             // counter
	bld.Const(1, 1_000_000_000) // effectively infinite limit
	bld.Const(2, 0x10000)       // base
	top := bld.NewLabel()
	bld.Bind(top)
	bld.RandIntn(3, 4096)
	bld.ShlImm(3, 3, 3)
	bld.Add(3, 3, 2)
	bld.Store64(0, 3, 0)
	bld.AddImm(0, 0, 1)
	bld.BltU(0, 1, top)
	bld.Halt()
	p := bld.Build()

	var it Interp
	it.Reset(p, Config{})
	var act Action
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.Next(0, &act)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "machine_ops/s")
}
