package ir

import (
	"fmt"
	"math/rand"

	"bbb/internal/engine"
	"bbb/internal/memory"
)

// Config carries the two core-configuration bits that decide how persist
// instructions expand — the same bits cpu.env consults, so the interpreter
// and the goroutine path make identical scheme-dependent decisions.
type Config struct {
	// ExplicitPersist: the PMEM programming model (clwb + sfence barriers).
	ExplicitPersist bool
	// EpochMode: buffered epoch persistency (one epoch mark per barrier).
	EpochMode bool
}

// ActionKind classifies a machine action yielded by the interpreter.
type ActionKind uint8

// The machine actions, mirroring cpu's request kinds one-to-one.
const (
	// ActionDone: the program finished.
	ActionDone ActionKind = iota
	// ActionLoad: read Size bytes at Addr; the loaded value arrives as the
	// next Next resume argument.
	ActionLoad
	// ActionStore: write Size bytes of Val at Addr.
	ActionStore
	// ActionFlush: clwb the line of Addr.
	ActionFlush
	// ActionFence: sfence (wait for outstanding clwbs).
	ActionFence
	// ActionEpoch: epoch boundary (buffered epoch persistency).
	ActionEpoch
	// ActionCompute: burn Cycles core cycles.
	ActionCompute
	// ActionCAS: compare-and-swap at Addr (Old expected, Val new); the
	// previous value arrives as the next resume argument.
	ActionCAS
)

// Action is one machine-facing operation; the core converts it to the same
// internal request the goroutine path sends over its channel.
type Action struct {
	Kind   ActionKind
	Addr   memory.Addr
	Size   int
	Val    uint64 // store value / CAS new value
	Old    uint64 // CAS expected value
	Cycles engine.Cycle
}

// Interp executes one compiled program, yielding machine actions one at a
// time. It is driven inline from the event kernel: the core calls Next with
// the previous action's result, the interpreter runs inline ops until the
// next machine op, fills act, and returns — no goroutine, no channels, no
// allocation.
type Interp struct {
	ops  []Op
	pc   int
	regs [NumRegs]uint64
	rng  *rand.Rand
	cfg  Config

	// barrier accumulator plus expansion state: under ExplicitPersist a
	// Barrier over n addresses expands to n flush yields and a fence yield,
	// resumed across calls.
	baddrs   [MaxBarrierAddrs]memory.Addr
	nb       int
	flushing bool
	flushIdx int

	// pending is the register awaiting the next resume value (-1 none).
	pending int16
	halted  bool
}

// Reset arms the interpreter for one run of p under cfg.
func (it *Interp) Reset(p *Prog, cfg Config) {
	it.ops = p.Ops
	it.pc = 0
	it.regs = [NumRegs]uint64{}
	it.rng = rand.New(rand.NewSource(p.Seed))
	it.cfg = cfg
	it.nb = 0
	it.flushing = false
	it.flushIdx = 0
	it.pending = -1
	it.halted = false
}

// Halted reports whether the program has executed its Halt.
func (it *Interp) Halted() bool { return it.halted }

// Next resumes execution with the previous action's result (ignored unless
// that action produced a value) and fills act with the next machine action.
// After act.Kind == ActionDone, Next must not be called again.
func (it *Interp) Next(resume uint64, act *Action) {
	if it.pending >= 0 {
		it.regs[it.pending] = resume
		it.pending = -1
	}
	if it.flushing {
		it.flushStep(act)
		return
	}
	for {
		op := &it.ops[it.pc]
		it.pc++
		switch op.Code {
		// --- inline ops ---
		case OpConst:
			it.regs[op.A] = op.Imm
		case OpMov:
			it.regs[op.A] = it.regs[op.B]
		case OpAdd:
			it.regs[op.A] = it.regs[op.B] + it.regs[op.C]
		case OpAddImm:
			it.regs[op.A] = it.regs[op.B] + op.Imm
		case OpSub:
			it.regs[op.A] = it.regs[op.B] - it.regs[op.C]
		case OpMul:
			it.regs[op.A] = it.regs[op.B] * it.regs[op.C]
		case OpMulImm:
			it.regs[op.A] = it.regs[op.B] * op.Imm
		case OpXor:
			it.regs[op.A] = it.regs[op.B] ^ it.regs[op.C]
		case OpXorImm:
			it.regs[op.A] = it.regs[op.B] ^ op.Imm
		case OpAnd:
			it.regs[op.A] = it.regs[op.B] & it.regs[op.C]
		case OpAndImm:
			it.regs[op.A] = it.regs[op.B] & op.Imm
		case OpOr:
			it.regs[op.A] = it.regs[op.B] | it.regs[op.C]
		case OpOrImm:
			it.regs[op.A] = it.regs[op.B] | op.Imm
		case OpShl:
			if s := it.regs[op.C]; s < 64 {
				it.regs[op.A] = it.regs[op.B] << s
			} else {
				it.regs[op.A] = 0
			}
		case OpShlImm:
			it.regs[op.A] = it.regs[op.B] << (op.Imm & 63)
		case OpShr:
			if s := it.regs[op.C]; s < 64 {
				it.regs[op.A] = it.regs[op.B] >> s
			} else {
				it.regs[op.A] = 0
			}
		case OpShrImm:
			it.regs[op.A] = it.regs[op.B] >> (op.Imm & 63)
		case OpMinU:
			x, y := it.regs[op.B], it.regs[op.C]
			if y < x {
				x = y
			}
			it.regs[op.A] = x
		case OpMaxU:
			x, y := it.regs[op.B], it.regs[op.C]
			if y > x {
				x = y
			}
			it.regs[op.A] = x
		case OpJmp:
			it.pc = int(op.Imm)
		case OpBeq:
			if it.regs[op.A] == it.regs[op.B] {
				it.pc = int(op.Imm)
			}
		case OpBne:
			if it.regs[op.A] != it.regs[op.B] {
				it.pc = int(op.Imm)
			}
		case OpBltU:
			if it.regs[op.A] < it.regs[op.B] {
				it.pc = int(op.Imm)
			}
		case OpBgeU:
			if it.regs[op.A] >= it.regs[op.B] {
				it.pc = int(op.Imm)
			}
		case OpRand64:
			it.regs[op.A] = it.rng.Uint64()
		case OpRandIntn:
			it.regs[op.A] = uint64(it.rng.Intn(int(op.Imm)))
		case OpRandInt63n:
			it.regs[op.A] = uint64(it.rng.Int63n(int64(op.Imm)))
		case OpBarrierAddr:
			it.baddrs[it.nb] = memory.Addr(it.regs[op.B] + op.Imm)
			it.nb++

		// --- machine ops ---
		case OpLoad:
			act.Kind = ActionLoad
			act.Addr = memory.Addr(it.regs[op.B] + op.Imm)
			act.Size = int(op.C)
			it.pending = int16(op.A)
			return
		case OpStore:
			act.Kind = ActionStore
			act.Addr = memory.Addr(it.regs[op.B] + op.Imm)
			act.Size = int(op.C)
			act.Val = it.regs[op.A]
			return
		case OpFlush:
			// Env.Flush: only the PMEM model issues anything.
			if it.cfg.ExplicitPersist {
				act.Kind = ActionFlush
				act.Addr = memory.Addr(it.regs[op.B] + op.Imm)
				return
			}
		case OpFence:
			// Env.Fence: epoch mark / sfence / nothing.
			if it.cfg.EpochMode {
				act.Kind = ActionEpoch
				return
			}
			if it.cfg.ExplicitPersist {
				act.Kind = ActionFence
				return
			}
		case OpBarrier:
			// Env.PersistBarrier over the accumulated addresses.
			if it.cfg.EpochMode {
				it.nb = 0
				act.Kind = ActionEpoch
				return
			}
			if !it.cfg.ExplicitPersist {
				it.nb = 0 // free under the battery schemes
				continue
			}
			it.flushing = true
			it.flushIdx = 0
			it.flushStep(act)
			return
		case OpCompute:
			act.Kind = ActionCompute
			act.Cycles = engine.Cycle(op.Imm)
			return
		case OpCAS:
			act.Kind = ActionCAS
			act.Addr = memory.Addr(it.regs[op.B] + op.Imm)
			act.Size = 8
			act.Old = it.regs[op.C]
			act.Val = it.regs[op.A]
			it.pending = int16(op.A)
			return
		case OpHalt:
			act.Kind = ActionDone
			it.halted = true
			return
		default:
			panic(fmt.Sprintf("ir: invalid opcode %s at pc %d", op.Code, it.pc-1))
		}
	}
}

// flushStep emits the next leg of an in-progress barrier expansion: one
// clwb per accumulated address, then the closing sfence — exactly
// env.PersistBarrier's loop under ExplicitPersist.
func (it *Interp) flushStep(act *Action) {
	if it.flushIdx < it.nb {
		act.Kind = ActionFlush
		act.Addr = it.baddrs[it.flushIdx]
		it.flushIdx++
		return
	}
	it.flushing = false
	it.nb = 0
	act.Kind = ActionFence
}
