package ir

import "fmt"

// Label names a branch target while a program is under construction; the
// builder patches the concrete pc into every referring branch at Build.
type Label int

type patch struct {
	op    int
	label Label
}

// Builder assembles a Prog. Emission methods append ops; NewLabel/Bind
// handle forward and backward branches. Build validates and seals the
// program. The zero Builder is not usable — construct with NewBuilder.
type Builder struct {
	ops     []Op
	labels  []int // label -> bound pc, -1 while unbound
	patches []patch
	seed    int64
}

// NewBuilder starts a program whose random ops draw from seed (the
// workload's per-thread seed).
func NewBuilder(seed int64) *Builder {
	return &Builder{seed: seed}
}

// NewLabel allocates an unbound label.
func (b *Builder) NewLabel() Label {
	b.labels = append(b.labels, -1)
	return Label(len(b.labels) - 1)
}

// Bind attaches l to the next emitted op.
func (b *Builder) Bind(l Label) {
	if b.labels[l] != -1 {
		panic(fmt.Sprintf("ir: label %d bound twice", l))
	}
	b.labels[l] = len(b.ops)
}

func (b *Builder) emit(op Op) { b.ops = append(b.ops, op) }

func (b *Builder) branch(code OpCode, x, y Reg, l Label) {
	b.patches = append(b.patches, patch{op: len(b.ops), label: l})
	b.emit(Op{Code: code, A: x, B: y})
}

func checkSize(size int) Reg {
	switch size {
	case 1, 2, 4, 8:
		return Reg(size)
	}
	panic(fmt.Sprintf("ir: bad access size %d", size))
}

// --- machine ops ---

// Halt ends the program.
func (b *Builder) Halt() { b.emit(Op{Code: OpHalt}) }

// Load reads size bytes at reg[base]+off into d.
func (b *Builder) Load(d, base Reg, off uint64, size int) {
	b.emit(Op{Code: OpLoad, A: d, B: base, C: checkSize(size), Imm: off})
}

// Load64 is Load at pointer width.
func (b *Builder) Load64(d, base Reg, off uint64) { b.Load(d, base, off, 8) }

// Store writes size bytes of reg[v] at reg[base]+off.
func (b *Builder) Store(v, base Reg, off uint64, size int) {
	b.emit(Op{Code: OpStore, A: v, B: base, C: checkSize(size), Imm: off})
}

// Store64 is Store at pointer width.
func (b *Builder) Store64(v, base Reg, off uint64) { b.Store(v, base, off, 8) }

// Flush emits Env.Flush of reg[base]+off.
func (b *Builder) Flush(base Reg, off uint64) {
	b.emit(Op{Code: OpFlush, B: base, Imm: off})
}

// Fence emits Env.Fence.
func (b *Builder) Fence() { b.emit(Op{Code: OpFence}) }

// BarrierAddr appends reg[base]+off to the pending barrier's address list.
func (b *Builder) BarrierAddr(base Reg, off uint64) {
	b.emit(Op{Code: OpBarrierAddr, B: base, Imm: off})
}

// Barrier emits Env.PersistBarrier over the accumulated addresses.
func (b *Builder) Barrier() { b.emit(Op{Code: OpBarrier}) }

// Compute burns n core cycles; n == 0 emits nothing (Env.Compute's early
// return).
func (b *Builder) Compute(n uint64) {
	if n == 0 {
		return
	}
	b.emit(Op{Code: OpCompute, Imm: n})
}

// CAS compare-and-swaps 8 bytes at reg[base]+off: expected reg[old], new
// reg[newv]; the previous value replaces reg[newv]. Pointer width only —
// the encoding spends C on the old-value register, and no workload CASes
// narrower.
func (b *Builder) CAS(newv, base Reg, off uint64, old Reg) {
	b.emit(Op{Code: OpCAS, A: newv, B: base, C: old, Imm: off})
}

// --- inline ops ---

// Const sets d = v.
func (b *Builder) Const(d Reg, v uint64) { b.emit(Op{Code: OpConst, A: d, Imm: v}) }

// Mov sets d = s.
func (b *Builder) Mov(d, s Reg) { b.emit(Op{Code: OpMov, A: d, B: s}) }

// Add sets d = x + y.
func (b *Builder) Add(d, x, y Reg) { b.emit(Op{Code: OpAdd, A: d, B: x, C: y}) }

// AddImm sets d = x + v.
func (b *Builder) AddImm(d, x Reg, v uint64) { b.emit(Op{Code: OpAddImm, A: d, B: x, Imm: v}) }

// Sub sets d = x - y.
func (b *Builder) Sub(d, x, y Reg) { b.emit(Op{Code: OpSub, A: d, B: x, C: y}) }

// SubImm sets d = x - v (encoded as wrapping addition).
func (b *Builder) SubImm(d, x Reg, v uint64) { b.AddImm(d, x, -v) }

// Mul sets d = x * y.
func (b *Builder) Mul(d, x, y Reg) { b.emit(Op{Code: OpMul, A: d, B: x, C: y}) }

// MulImm sets d = x * v.
func (b *Builder) MulImm(d, x Reg, v uint64) { b.emit(Op{Code: OpMulImm, A: d, B: x, Imm: v}) }

// Xor sets d = x ^ y.
func (b *Builder) Xor(d, x, y Reg) { b.emit(Op{Code: OpXor, A: d, B: x, C: y}) }

// XorImm sets d = x ^ v.
func (b *Builder) XorImm(d, x Reg, v uint64) { b.emit(Op{Code: OpXorImm, A: d, B: x, Imm: v}) }

// And sets d = x & y.
func (b *Builder) And(d, x, y Reg) { b.emit(Op{Code: OpAnd, A: d, B: x, C: y}) }

// AndImm sets d = x & v.
func (b *Builder) AndImm(d, x Reg, v uint64) { b.emit(Op{Code: OpAndImm, A: d, B: x, Imm: v}) }

// Or sets d = x | y.
func (b *Builder) Or(d, x, y Reg) { b.emit(Op{Code: OpOr, A: d, B: x, C: y}) }

// OrImm sets d = x | v.
func (b *Builder) OrImm(d, x Reg, v uint64) { b.emit(Op{Code: OpOrImm, A: d, B: x, Imm: v}) }

// Shl sets d = x << y (0 when y >= 64).
func (b *Builder) Shl(d, x, y Reg) { b.emit(Op{Code: OpShl, A: d, B: x, C: y}) }

// ShlImm sets d = x << v.
func (b *Builder) ShlImm(d, x Reg, v uint64) { b.emit(Op{Code: OpShlImm, A: d, B: x, Imm: v}) }

// Shr sets d = x >> y (logical; 0 when y >= 64).
func (b *Builder) Shr(d, x, y Reg) { b.emit(Op{Code: OpShr, A: d, B: x, C: y}) }

// ShrImm sets d = x >> v.
func (b *Builder) ShrImm(d, x Reg, v uint64) { b.emit(Op{Code: OpShrImm, A: d, B: x, Imm: v}) }

// MinU sets d = min(x, y) unsigned.
func (b *Builder) MinU(d, x, y Reg) { b.emit(Op{Code: OpMinU, A: d, B: x, C: y}) }

// MaxU sets d = max(x, y) unsigned.
func (b *Builder) MaxU(d, x, y Reg) { b.emit(Op{Code: OpMaxU, A: d, B: x, C: y}) }

// Jmp branches unconditionally to l.
func (b *Builder) Jmp(l Label) {
	b.patches = append(b.patches, patch{op: len(b.ops), label: l})
	b.emit(Op{Code: OpJmp})
}

// Beq branches to l when x == y.
func (b *Builder) Beq(x, y Reg, l Label) { b.branch(OpBeq, x, y, l) }

// Bne branches to l when x != y.
func (b *Builder) Bne(x, y Reg, l Label) { b.branch(OpBne, x, y, l) }

// BltU branches to l when x < y (unsigned).
func (b *Builder) BltU(x, y Reg, l Label) { b.branch(OpBltU, x, y, l) }

// BgeU branches to l when x >= y (unsigned).
func (b *Builder) BgeU(x, y Reg, l Label) { b.branch(OpBgeU, x, y, l) }

// Rand64 sets d = rng.Uint64().
func (b *Builder) Rand64(d Reg) { b.emit(Op{Code: OpRand64, A: d}) }

// RandIntn sets d = uint64(rng.Intn(n)); n must be positive.
func (b *Builder) RandIntn(d Reg, n int) {
	if n <= 0 {
		panic("ir: RandIntn needs n > 0")
	}
	b.emit(Op{Code: OpRandIntn, A: d, Imm: uint64(n)})
}

// RandInt63n sets d = uint64(rng.Int63n(n)); n must be positive.
func (b *Builder) RandInt63n(d Reg, n int64) {
	if n <= 0 {
		panic("ir: RandInt63n needs n > 0")
	}
	b.emit(Op{Code: OpRandInt63n, A: d, Imm: uint64(n)})
}

// SortNetwork emits an in-register unsigned ascending sort of regs (bubble
// network: correct for any input, zero simulated cost — mirroring the
// host-side sort the goroutine twins perform between machine ops). tmp must
// not alias any sorted register.
func (b *Builder) SortNetwork(regs []Reg, tmp Reg) {
	n := len(regs)
	for i := 0; i < n-1; i++ {
		for j := 0; j < n-1-i; j++ {
			x, y := regs[j], regs[j+1]
			b.MinU(tmp, x, y)
			b.MaxU(y, x, y)
			b.Mov(x, tmp)
		}
	}
}

// Build validates and seals the program: every referenced label bound, all
// branch targets patched, registers in range, barrier accumulation bounded.
func (b *Builder) Build() *Prog {
	ops := b.ops
	for _, p := range b.patches {
		pc := b.labels[p.label]
		if pc < 0 {
			panic(fmt.Sprintf("ir: label %d referenced but never bound", p.label))
		}
		ops[p.op].Imm = uint64(pc)
	}
	// A straight-line scan bounds the barrier accumulator: every workload
	// emission keeps its BarrierAddr run and the closing Barrier in one
	// basic block, so the linear maximum is exact.
	run := 0
	for i, op := range ops {
		// C doubles as the size field (1..8) of memory ops, which always
		// passes the register-range check.
		if op.A >= NumRegs || op.B >= NumRegs || op.C >= NumRegs {
			panic(fmt.Sprintf("ir: op %d (%s) names register out of range", i, op))
		}
		switch op.Code {
		case OpBarrierAddr:
			run++
			if run > MaxBarrierAddrs {
				panic(fmt.Sprintf("ir: op %d exceeds %d barrier addresses", i, MaxBarrierAddrs))
			}
		case OpBarrier:
			run = 0
		}
	}
	return &Prog{Ops: ops, Seed: b.seed}
}
