package cpu

import (
	"testing"

	"bbb/internal/memory"
)

func TestMultipleClwbsOneFence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ExplicitPersist = true
	r := newRig(t, 1, cfg)
	addrs := []memory.Addr{r.nv(20), r.nv(21), r.nv(22)}
	r.cores[0].Start(func(e Env) {
		for _, a := range addrs {
			Store64(e, a, 1)
		}
		e.PersistBarrier(addrs...) // three clwbs, one fence
	})
	r.eng.Run()
	c := r.cores[0]
	if c.Stats.Get("core.clwbs") != 3 || c.Stats.Get("core.fences") != 1 {
		t.Fatalf("clwbs=%d fences=%d", c.Stats.Get("core.clwbs"), c.Stats.Get("core.fences"))
	}
	// All three lines durable after the fence.
	r.nvmm.CrashDrain()
	for _, a := range addrs {
		var buf [memory.LineSize]byte
		r.mem.PeekLine(a, &buf)
		if buf[0] != 1 {
			t.Fatalf("line %#x not durable after fence", a)
		}
	}
}

func TestFenceWithNothingOutstanding(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ExplicitPersist = true
	r := newRig(t, 1, cfg)
	done := false
	r.cores[0].Start(func(e Env) {
		e.PersistBarrier() // zero clwbs, pure fence
		done = true
	})
	r.eng.Run()
	if !done {
		t.Fatal("empty fence never completed")
	}
}

func TestClwbWaitsForBufferedStoreToLine(t *testing.T) {
	// A clwb racing its own store in the SB must flush the store's value,
	// not the stale line.
	cfg := DefaultConfig()
	cfg.ExplicitPersist = true
	r := newRig(t, 1, cfg)
	a := r.nv(23)
	r.cores[0].Start(func(e Env) {
		Store64(e, a, 99) // still in SB when PersistBarrier issues
		e.PersistBarrier(a)
	})
	r.eng.Run()
	r.nvmm.CrashDrain()
	var buf [memory.LineSize]byte
	r.mem.PeekLine(a, &buf)
	if buf[0] != 99 {
		t.Fatalf("durable = %d, want 99 (clwb ordered before SB drain)", buf[0])
	}
}

func TestEpochBarrierCountsOnce(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EpochMode = true
	r := newRig(t, 1, cfg)
	r.cores[0].Start(func(e Env) {
		Store64(e, r.nv(24), 1)
		e.PersistBarrier(r.nv(24), r.nv(25), r.nv(26)) // one marker regardless
	})
	r.eng.Run()
	if got := r.cores[0].Stats.Get("core.epoch_barriers"); got != 1 {
		t.Fatalf("epoch barriers = %d, want 1", got)
	}
	if r.cores[0].Stats.Get("core.clwbs") != 0 {
		t.Fatal("epoch mode must not issue clwb")
	}
}

func TestLoadSizesAndSignExtension(t *testing.T) {
	r := newRig(t, 1, DefaultConfig())
	a := r.nv(25)
	var v1, v2, v4 uint64
	r.cores[0].Start(func(e Env) {
		e.Store(a, 8, 0x8899AABBCCDDEEFF)
		v1 = e.Load(a, 1)
		v2 = e.Load(a, 2)
		v4 = e.Load(a, 4)
	})
	r.eng.Run()
	if v1 != 0xFF || v2 != 0xEEFF || v4 != 0xCCDDEEFF {
		t.Fatalf("v1=%#x v2=%#x v4=%#x", v1, v2, v4)
	}
}

func TestComputeZeroIsFree(t *testing.T) {
	r := newRig(t, 1, DefaultConfig())
	r.cores[0].Start(func(e Env) {
		e.Compute(0)
	})
	r.eng.Run()
	if r.cores[0].Stats.Get("core.compute_cycles") != 0 {
		t.Fatal("Compute(0) charged cycles")
	}
	if !r.cores[0].Done() {
		t.Fatal("program not done")
	}
}

func TestStoresToSameLineCoalesceInSB(t *testing.T) {
	r := newRig(t, 1, DefaultConfig())
	a := r.nv(26)
	r.cores[0].Start(func(e Env) {
		// Bytes within one line: each is its own SB entry (no SB merging
		// modeled) but all drain correctly in order.
		for i := 0; i < 8; i++ {
			e.Store(a+memory.Addr(i), 1, uint64(0xF0+i))
		}
		if got := e.Load(a, 8); got != 0xF7F6F5F4F3F2F1F0 {
			t.Errorf("composed = %#x", got)
		}
	})
	r.eng.Run()
}

func TestDoubleStartPanics(t *testing.T) {
	// Starting a core twice would corrupt the channel protocol; the
	// program panics through the goroutine. We assert Done stays sane with
	// a single Start and a second core unstarted.
	r := newRig(t, 2, DefaultConfig())
	r.cores[0].Start(func(e Env) { Store64(e, r.nv(27), 1) })
	r.eng.Run()
	if !r.cores[0].Done() {
		t.Fatal("core 0 should be done")
	}
	if r.cores[1].Done() {
		t.Fatal("unstarted core cannot be done")
	}
}

func TestStorePrefetchOverlapsMisses(t *testing.T) {
	// A stream of stores to fresh lines: with prefetching, the
	// write-allocate fetches overlap queued drains, so the run is faster
	// and the functional outcome identical.
	run := func(prefetch bool) (uint64, uint64) {
		cfg := DefaultConfig()
		cfg.StorePrefetch = prefetch
		r := newRig(t, 1, cfg)
		const n = 200
		r.cores[0].Start(func(e Env) {
			for i := uint64(0); i < n; i++ {
				Store64(e, r.nv(100+i), i)
			}
		})
		r.eng.Run()
		var last uint64
		r.h.Load(0, r.nv(100+n-1), 8, func(v uint64) { last = v })
		r.eng.Run()
		return r.cores[0].FinishedAt(), last
	}
	base, v1 := run(false)
	pf, v2 := run(true)
	if v1 != v2 || v1 != 199 {
		t.Fatalf("functional mismatch: %d vs %d", v1, v2)
	}
	if float64(pf) > 0.8*float64(base) {
		t.Fatalf("prefetching barely helped: %d vs %d cycles", pf, base)
	}
	t.Logf("store stream: %d cycles without prefetch, %d with (%.1fx)", base, pf, float64(base)/float64(pf))
}

func TestRelaxedSBDrainFunctionallyCorrect(t *testing.T) {
	// Relaxed drain reorders across lines but never within one, so a
	// single-threaded program's loads always see its own stores correctly.
	cfg := DefaultConfig()
	cfg.RelaxedSBDrain = true
	r := newRig(t, 1, cfg)
	r.cores[0].Start(func(e Env) {
		for i := uint64(0); i < 200; i++ {
			a := r.nv(200 + i%10)
			Store64(e, a, i)
			if v := Load64(e, a); v != i {
				t.Errorf("i=%d: read %d", i, v)
				return
			}
		}
	})
	r.eng.Run()
	if !r.cores[0].Done() {
		t.Fatal("program did not finish")
	}
	// Final values: last write per line wins.
	for k := uint64(0); k < 10; k++ {
		want := uint64(190 + k)
		var got uint64
		r.h.Load(0, r.nv(200+k), 8, func(v uint64) { got = v })
		r.eng.Run()
		if got != want {
			t.Fatalf("line %d = %d, want %d", k, got, want)
		}
	}
}

func TestRelaxedSBDrainReordersAcrossLines(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RelaxedSBDrain = true
	r := newRig(t, 1, cfg)
	r.cores[0].Start(func(e Env) {
		// Prime a line so it is locally writable, then alternate a missing
		// line (slow) with the primed one (fast): the fast ones can drain
		// ahead of the slow head.
		Store64(e, r.nv(300), 1)
		e.Compute(5_000) // let the prime drain and settle
		for i := uint64(0); i < 30; i++ {
			Store64(e, r.nv(400+i), i) // misses
			Store64(e, r.nv(300), i)   // hits the writable line
		}
	})
	r.eng.Run()
	if r.cores[0].Stats.Get("core.sb_reordered_drains") == 0 {
		t.Fatal("relaxed drain never reordered")
	}
}
