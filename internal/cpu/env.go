package cpu

import (
	"errors"

	"bbb/internal/engine"
	"bbb/internal/memory"
)

// errAbandoned aborts a workload goroutine when the simulation is torn down
// (crash injection or end of run); it never escapes the package.
var errAbandoned = errors.New("cpu: simulation abandoned")

// Env is the interface a workload uses to execute against the simulated
// machine. All methods advance simulated time; the goroutine blocks until
// the machine completes the operation.
//
// PersistBarrier is the only persistency-aware call: under the PMEM
// baseline it costs a clwb per named line plus an sfence, while under BBB
// and eADR it is free — which is exactly the programmability argument of
// the paper's Figures 2 and 3.
type Env interface {
	// CoreID returns the executing core's number.
	CoreID() int
	// Load reads size bytes (1, 2, 4 or 8) at addr.
	Load(addr memory.Addr, size int) uint64
	// Store writes size bytes of val at addr.
	Store(addr memory.Addr, size int, val uint64)
	// PersistBarrier orders earlier persisting stores to the named lines
	// before any later store, using whatever the active scheme requires.
	PersistBarrier(addrs ...memory.Addr)
	// Flush writes the line holding addr back toward the persistence
	// domain without ordering anything: a clwb under the PMEM baseline,
	// a no-op everywhere else (BEP orders through epoch marks, and the
	// battery schemes persist at commit). Flush alone guarantees nothing —
	// only a following Fence does, exactly as clwb/sfence on real x86.
	Flush(addr memory.Addr)
	// Fence orders earlier flushed lines before any later store: an sfence
	// under the PMEM baseline, an epoch boundary under BEP, and a no-op
	// under the battery schemes. Flush+Fence is PersistBarrier split into
	// its two x86 halves, which the litmus harness (internal/litmus) needs
	// to express the Px86-TSO shapes that clwb-without-sfence allows.
	Fence()
	// Compute burns n core cycles of non-memory work.
	Compute(n engine.Cycle)
	// CompareAndSwap atomically replaces the size-byte value at addr with
	// new if it currently equals old, returning the previous value and
	// whether the swap happened. A successful swap on a persistent line is
	// a persisting store — on BBB it is durable the moment it commits.
	CompareAndSwap(addr memory.Addr, size int, old, new uint64) (prev uint64, swapped bool)
	// Now reads the core's cycle clock (rdtsc). It costs no simulated
	// time: service-level workloads use it to timestamp request arrival
	// and completion without perturbing the schedule they measure.
	Now() engine.Cycle
}

type env struct {
	core *Core
}

var _ Env = (*env)(nil)

func (e *env) do(r request) uint64 {
	select {
	case e.core.prog <- r:
	case <-e.core.quit:
		panic(errAbandoned)
	}
	if r.kind == reqDone {
		return 0 // the core never resumes after Done
	}
	select {
	case v := <-e.core.resume:
		return v
	case <-e.core.quit:
		panic(errAbandoned)
	}
}

func (e *env) CoreID() int { return e.core.id }

func (e *env) Load(addr memory.Addr, size int) uint64 {
	return e.do(request{kind: reqLoad, addr: addr, size: size})
}

func (e *env) Store(addr memory.Addr, size int, val uint64) {
	e.do(request{kind: reqStore, addr: addr, size: size, val: val})
}

func (e *env) PersistBarrier(addrs ...memory.Addr) {
	e.persistBarrier(addrs)
}

func (e *env) persistBarrier(addrs []memory.Addr) {
	if e.core.cfg.EpochMode {
		// One epoch-marker instruction, regardless of how many lines the
		// operation touched.
		e.do(request{kind: reqEpoch})
		return
	}
	if !e.core.cfg.ExplicitPersist {
		return
	}
	for _, a := range addrs {
		e.do(request{kind: reqPersist, addr: a})
	}
	e.do(request{kind: reqFence})
}

func (e *env) Flush(addr memory.Addr) {
	if !e.core.cfg.ExplicitPersist {
		return
	}
	e.do(request{kind: reqPersist, addr: addr})
}

func (e *env) Fence() {
	if e.core.cfg.EpochMode {
		e.do(request{kind: reqEpoch})
		return
	}
	if !e.core.cfg.ExplicitPersist {
		return
	}
	e.do(request{kind: reqFence})
}

func (e *env) Compute(n engine.Cycle) {
	if n == 0 {
		return
	}
	e.do(request{kind: reqCompute, cycles: n})
}

func (e *env) CompareAndSwap(addr memory.Addr, size int, old, new uint64) (uint64, bool) {
	prev := e.do(request{kind: reqCAS, addr: addr, size: size, old: old, val: new})
	return prev, prev == old
}

// Now reads the engine clock without a machine round-trip. This is safe and
// deterministic under the rendezvous discipline: a program goroutine only
// runs between its resume and its next request (Core.Start holds it at the
// initial resume too, so this covers the first instruction), and during
// that window the engine is blocked in this core's same-timestamp fetch
// event, so the clock cannot advance (and the resume/request channel pair
// orders the accesses).
func (e *env) Now() engine.Cycle { return e.core.eng.Now() }

// Load64 is a convenience for pointer-sized loads.
func Load64(e Env, addr memory.Addr) uint64 { return e.Load(addr, 8) }

// Store64 is a convenience for pointer-sized stores.
func Store64(e Env, addr memory.Addr, val uint64) { e.Store(addr, 8, val) }

// PersistBarrier issues e.PersistBarrier(addrs...) without the heap
// allocation a variadic call through the interface forces: a variadic slice
// passed to an interface method always escapes, so on the barrier-per-
// operation hot path every Env.PersistBarrier call allocates. Calling
// through the concrete type instead lets the addrs backing array stay on the
// caller's stack. Non-package Env implementations (test recorders) take the
// interface path, where the slice is copied so the caller's array still
// does not escape.
func PersistBarrier(e Env, addrs ...memory.Addr) {
	if ev, ok := e.(*env); ok {
		ev.persistBarrier(addrs)
		return
	}
	heap := make([]memory.Addr, len(addrs))
	copy(heap, addrs)
	e.PersistBarrier(heap...)
}
