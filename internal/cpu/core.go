// Package cpu models the cores driving the memory hierarchy: a 2 GHz core
// with a FIFO store buffer in front of the L1D, and the program interface
// that couples a workload goroutine to the discrete-event simulation.
//
// The store buffer drains to the L1D strictly in order, one store at a
// time. That is what gives BBB program-order entry into the persistence
// domain (§III-D invariant 1): each persisting store allocates its bbPB
// entry, via the coherence layer, at the moment its L1D write commits, and
// those commits happen in program order. Under the paper's relaxed-
// consistency extension (§III-C) the store buffer itself is battery backed,
// which CrashDrain models.
package cpu

import (
	"fmt"

	"bbb/internal/coherence"
	"bbb/internal/engine"
	"bbb/internal/ir"
	"bbb/internal/memory"
	"bbb/internal/stats"
	"bbb/internal/trace"
)

// Config sizes one core.
type Config struct {
	// SBEntries is the store-buffer capacity (Table III: LSQ 32).
	SBEntries int
	// ExplicitPersist selects the PMEM programming model: Env.PersistBarrier
	// issues clwb+fence. When false (BBB, eADR) PersistBarrier is free.
	ExplicitPersist bool
	// EpochMode selects buffered epoch persistency: Env.PersistBarrier
	// marks an epoch boundary (one cheap instruction, no synchronous wait).
	EpochMode bool
	// BatteryBackedSB marks the store buffer as part of the persistence
	// domain (both BBB and eADR battery-back it; the PMEM baseline does not).
	BatteryBackedSB bool
	// StorePrefetch issues a request-for-ownership for a store's line the
	// moment the store enters the buffer, overlapping write-allocate
	// misses with earlier drains — a dash of the memory-level parallelism
	// an out-of-order core would extract. Off by default.
	StorePrefetch bool
	// RelaxedSBDrain models the §III-C relaxed consistency case: buffered
	// stores may write the L1D out of program order (same-line order is
	// always kept — single-address ordering is never relaxed). Program-
	// order *persistency* then rests entirely on the battery-backed store
	// buffer: stores enter the persistence domain at SB insertion, and the
	// crash drain replays the SB in program order. With a volatile SB
	// (PMEM) this mode widens the reordering the paper warns about.
	RelaxedSBDrain bool
}

// DefaultConfig returns the Table III core front-end.
func DefaultConfig() Config {
	return Config{SBEntries: 32}
}

type reqKind int

const (
	reqLoad reqKind = iota
	reqStore
	reqPersist // clwb
	reqFence   // sfence: wait for outstanding clwbs
	reqEpoch   // epoch barrier (buffered epoch persistency)
	reqCAS     // atomic compare-and-swap
	reqCompute
	reqDone
)

type request struct {
	kind   reqKind
	addr   memory.Addr
	size   int
	val    uint64
	old    uint64 // CAS expected value
	cycles engine.Cycle
}

type sbEntry struct {
	addr memory.Addr
	size int
	val  uint64
	enq  engine.Cycle // cycle the store entered the SB, for residency stats
}

// Core is one simulated core.
type Core struct {
	id  int
	cfg Config
	eng *engine.Engine
	h   *coherence.Hierarchy

	prog   chan request
	resume chan uint64
	quit   chan struct{}

	sb          []sbEntry
	sbDraining  bool
	sbInFlight  sbEntry    // the entry being drained, valid while sbDraining
	sbDrainDone func()     // preallocated completion for the in-flight drain
	sbWaiters   []sbWaiter // program stalled on an SB occupancy condition

	outstandingClwb int
	fenceWaiter     func()

	// Preallocated callbacks for the per-instruction schedule sites, so the
	// hot path (stores, loads, fences) schedules without allocating a fresh
	// closure per event: replyVal resumes the program with the event's
	// argument, reply0 with zero, fetchFn blocks for the next instruction,
	// and fenceReply is the one-cycle fence resume.
	replyVal   func(uint64)
	reply0     func()
	fetchFn    func()
	fenceReply func()

	// The program is synchronous, so at most one of each request kind can
	// be stalled/in flight at a time; these preallocated retry closures and
	// their pending-request slots replace the per-call closures the stall
	// and completion paths used to allocate.
	pendingStore      request
	pendingStoreStart engine.Cycle
	retryStoreFn      func()
	pendingLoad       request
	retryLoadFn       func()
	pendingPersist    request
	retryPersistFn    func()
	pendingCAS        request
	casFn             func()
	epochFn           func()
	clwbDone          func()

	// interp drives a compiled program (StartCompiled) inline from the
	// event kernel; nil for the goroutine path.
	interp    *ir.Interp
	interpAct ir.Action

	done     bool
	finished engine.Cycle

	// Stats carries per-core counters.
	Stats *stats.Counters
	// StallCycles accumulates cycles the program spent blocked on a full
	// store buffer.
	StallCycles engine.Cycle
}

// New builds a core. Call Start with the workload before running the engine.
func New(id int, cfg Config, eng *engine.Engine, h *coherence.Hierarchy) *Core {
	if cfg.SBEntries <= 0 {
		panic("cpu: SBEntries must be positive")
	}
	c := &Core{
		id:     id,
		cfg:    cfg,
		eng:    eng,
		h:      h,
		prog:   make(chan request),
		resume: make(chan uint64),
		quit:   make(chan struct{}),
		Stats:  stats.NewCounters(),
	}
	c.replyVal = c.reply
	c.reply0 = func() { c.reply(0) }
	c.fetchFn = c.fetch
	c.fenceReply = func() { c.eng.Schedule(1, c.reply0) }
	c.retryStoreFn = func() { c.acceptStore(c.pendingStore, c.pendingStoreStart) }
	c.retryLoadFn = func() { c.issueLoad(c.pendingLoad) }
	c.retryPersistFn = func() { c.issuePersist(c.pendingPersist) }
	c.casFn = func() {
		c.h.AtomicCAS(c.id, c.pendingCAS.addr, c.pendingCAS.size, c.pendingCAS.old, c.pendingCAS.val, c.replyVal)
	}
	c.epochFn = func() {
		c.eng.EmitTrace(trace.KindEpochMark, c.id, 0, 0)
		c.h.EpochBarrier(c.id)
		c.reply(0)
	}
	c.clwbDone = func() {
		c.outstandingClwb--
		if c.outstandingClwb == 0 && c.fenceWaiter != nil {
			fn := c.fenceWaiter
			c.fenceWaiter = nil
			fn()
		}
	}
	// At most one SB drain is in flight (sbDraining), so a single
	// preallocated completion closure serves every drain.
	c.sbDrainDone = func() {
		for i := range c.sb {
			if c.sb[i] == c.sbInFlight {
				c.eng.Metrics.Observe("cpu.sb_residency", uint64(c.eng.Now()-c.sb[i].enq))
				c.sb = append(c.sb[:i], c.sb[i+1:]...)
				break
			}
		}
		c.sbDraining = false
		c.wakeSBWaiters()
		c.pumpSB()
	}
	return c
}

// ID returns the core number.
func (c *Core) ID() int { return c.id }

// Done reports whether the program has finished.
func (c *Core) Done() bool { return c.done }

// FinishedAt returns the cycle the program finished (valid once Done).
func (c *Core) FinishedAt() engine.Cycle { return c.finished }

// Start launches the workload goroutine and schedules the core's first
// instruction fetch. run is executed on its own goroutine against the
// core's Env and must use only that Env to touch simulated memory.
//
// The goroutine does not run immediately: it blocks until the core's
// cycle-0 fetch event sends the initial resume, entering the same
// resume→request rendezvous every later instruction follows. Releasing it
// eagerly would let the program race the event loop (and read a torn
// Env.Now) in the window before its first request reaches the engine.
func (c *Core) Start(run func(Env)) {
	e := &env{core: c}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if r == errAbandoned {
					return // simulation torn down mid-run (crash injection)
				}
				panic(r)
			}
		}()
		select {
		case <-c.resume:
		case <-c.quit:
			return // torn down before the engine ever ran this core
		}
		run(e)
		e.do(request{kind: reqDone})
	}()
	c.eng.Schedule(0, c.reply0)
}

// StartCompiled schedules a compiled program on the core. The interpreter
// runs inline from the event kernel — no goroutine, no channel rendezvous —
// feeding the same handle() dispatch the goroutine path uses, so both paths
// schedule identical events and produce byte-identical results.
func (c *Core) StartCompiled(p *ir.Prog) {
	c.interp = new(ir.Interp)
	c.interp.Reset(p, ir.Config{
		ExplicitPersist: c.cfg.ExplicitPersist,
		EpochMode:       c.cfg.EpochMode,
	})
	c.eng.Schedule(0, c.fetchFn)
}

// stepCompiled advances the interpreter to its next machine action and
// dispatches it; val resumes a pending load/CAS result, mirroring the
// resume channel of the goroutine path.
func (c *Core) stepCompiled(val uint64) {
	a := &c.interpAct
	c.interp.Next(val, a)
	switch a.Kind {
	case ir.ActionDone:
		c.handle(request{kind: reqDone})
	case ir.ActionLoad:
		c.handle(request{kind: reqLoad, addr: a.Addr, size: a.Size})
	case ir.ActionStore:
		c.handle(request{kind: reqStore, addr: a.Addr, size: a.Size, val: a.Val})
	case ir.ActionFlush:
		c.handle(request{kind: reqPersist, addr: a.Addr})
	case ir.ActionFence:
		c.handle(request{kind: reqFence})
	case ir.ActionEpoch:
		c.handle(request{kind: reqEpoch})
	case ir.ActionCompute:
		c.handle(request{kind: reqCompute, cycles: a.Cycles})
	case ir.ActionCAS:
		c.handle(request{kind: reqCAS, addr: a.Addr, size: a.Size, old: a.Old, val: a.Val})
	default:
		panic(fmt.Sprintf("cpu: unknown compiled action %d", a.Kind))
	}
}

// Stop abandons the workload goroutine; used at crash points and teardown.
func (c *Core) Stop() {
	select {
	case <-c.quit:
	default:
		close(c.quit)
	}
}

// fetch obtains the program's next request: compiled programs step the
// inline interpreter; goroutine programs block the event loop until the
// request arrives on the channel. The program goroutine is always either
// about to send a request or finished, so this cannot deadlock.
func (c *Core) fetch() {
	if c.interp != nil {
		// Only the initial scheduled fetch lands here; the interpreter has
		// no pending value to resume, so the argument is ignored.
		c.stepCompiled(0)
		return
	}
	req := <-c.prog
	c.handle(req)
}

func (c *Core) handle(req request) {
	switch req.kind {
	case reqDone:
		c.done = true
		c.finished = c.eng.Now()
		// No resume: the program goroutine has exited.

	case reqCompute:
		c.Stats.Add("core.compute_cycles", uint64(req.cycles))
		c.eng.Schedule(req.cycles, c.reply0)

	case reqLoad:
		c.Stats.Inc("core.loads")
		c.issueLoad(req)

	case reqStore:
		c.Stats.Inc("core.stores")
		c.acceptStore(req, c.eng.Now())

	case reqPersist:
		c.Stats.Inc("core.clwbs")
		c.eng.EmitTrace(trace.KindClwb, c.id, uint64(memory.LineAddr(req.addr)), 0)
		c.issuePersist(req)

	case reqFence:
		c.Stats.Inc("core.fences")
		c.eng.EmitTrace(trace.KindFence, c.id, 0, 0)
		c.issueFence()

	case reqCAS:
		c.Stats.Inc("core.atomics")
		// Atomics act as a local fence: the store buffer drains first so
		// the RMW observes and extends program order.
		c.pendingCAS = req
		c.waitSBBelow(0, c.casFn)

	case reqEpoch:
		c.Stats.Inc("core.epoch_barriers")
		// The boundary must order stores still in the SB into the earlier
		// epoch, so it takes effect once the SB has drained past them.
		c.waitSBBelow(0, c.epochFn)

	default:
		panic(fmt.Sprintf("cpu: unknown request kind %d", req.kind))
	}
}

// reply resumes the program with val and advances to its next request:
// inline interpreter step for compiled programs, channel round trip plus
// fetch for goroutine programs.
func (c *Core) reply(val uint64) {
	if c.interp != nil {
		c.stepCompiled(val)
		return
	}
	c.resume <- val
	c.fetch()
}

// --- store buffer ---

// acceptStore places the store into the SB, stalling the program while the
// SB is full. start is when the program first attempted the store, for
// stall accounting.
func (c *Core) acceptStore(req request, start engine.Cycle) {
	if len(c.sb) >= c.cfg.SBEntries {
		c.Stats.Inc("core.sb_full_stalls")
		c.pendingStore, c.pendingStoreStart = req, start
		c.sbWaiters = append(c.sbWaiters, sbWaiter{n: -1, fn: c.retryStoreFn})
		return
	}
	c.StallCycles += c.eng.Now() - start
	c.sb = append(c.sb, sbEntry{addr: req.addr, size: req.size, val: req.val, enq: c.eng.Now()})
	// With drains queued ahead of this store, warming its line overlaps
	// the write-allocate miss with the queue.
	if c.cfg.StorePrefetch && len(c.sb) > 1 {
		c.h.PrefetchExclusive(c.id, req.addr, nil)
	}
	c.pumpSB()
	// A store retires into the SB immediately; charge one issue cycle.
	c.eng.Schedule(1, c.reply0)
}

// pumpSB drains one buffered store to the L1D at a time: the head in
// program order (TSO-style), or — under RelaxedSBDrain — the oldest entry
// whose line is already writable in the L1, provided no older entry
// targets the same line (single-address order is never relaxed).
func (c *Core) pumpSB() {
	if c.sbDraining || len(c.sb) == 0 {
		return
	}
	idx := 0
	if c.cfg.RelaxedSBDrain {
		idx = c.pickRelaxedDrain()
	}
	c.sbDraining = true
	e := c.sb[idx]
	if idx != 0 {
		c.Stats.Inc("core.sb_reordered_drains")
	}
	c.sbInFlight = e
	c.h.Store(c.id, e.addr, e.size, e.val, c.sbDrainDone)
}

// pickRelaxedDrain returns the index of the first entry with a locally
// writable line and no older same-line entry, or 0 (the head).
func (c *Core) pickRelaxedDrain() int {
	for i := range c.sb {
		la := memory.LineAddr(c.sb[i].addr)
		older := false
		for j := 0; j < i; j++ {
			if memory.LineAddr(c.sb[j].addr) == la {
				older = true
				break
			}
		}
		if older {
			continue
		}
		if c.h.LineWritable(c.id, la) {
			return i
		}
	}
	return 0
}

// sbWaiter is one parked continuation: fn runs once the SB has at most n
// entries, or immediately on wake when n < 0 (the full-SB store retry,
// which re-checks fullness itself). Storing (n, fn) instead of a wrapper
// closure keeps the park/re-park cycle allocation-free — the fns are the
// core's preallocated retry closures.
type sbWaiter struct {
	n  int
	fn func()
}

func (c *Core) wakeSBWaiters() {
	// Snapshot: a still-blocked waiter re-appends itself, so iterating the
	// live slice would spin.
	waiters := c.sbWaiters
	c.sbWaiters = c.sbWaiters[len(c.sbWaiters):]
	for _, w := range waiters {
		if w.n < 0 {
			w.fn()
			continue
		}
		c.waitSBBelow(w.n, w.fn)
	}
}

// --- loads ---

// issueLoad forwards from the SB when possible; an exact-match entry
// supplies the value directly, a partial overlap waits for the SB to drain
// past it (conservative but correct).
func (c *Core) issueLoad(req request) {
	for i := len(c.sb) - 1; i >= 0; i-- {
		e := c.sb[i]
		if e.addr == req.addr && e.size == req.size {
			c.Stats.Inc("core.sb_forwards")
			c.eng.ScheduleArg(1, c.replyVal, e.val)
			return
		}
		if overlaps(e, req) {
			c.Stats.Inc("core.sb_overlap_stalls")
			c.pendingLoad = req
			c.waitSBBelow(i, c.retryLoadFn)
			return
		}
	}
	c.h.Load(c.id, req.addr, req.size, c.replyVal)
}

// waitSBBelow runs fn once the SB has drained to at most n entries.
func (c *Core) waitSBBelow(n int, fn func()) {
	if len(c.sb) <= n {
		c.eng.Schedule(0, fn)
		return
	}
	c.sbWaiters = append(c.sbWaiters, sbWaiter{n: n, fn: fn})
}

func overlaps(e sbEntry, req request) bool {
	aLo, aHi := e.addr, e.addr+memory.Addr(e.size)
	bLo, bHi := req.addr, req.addr+memory.Addr(req.size)
	return aLo < bHi && bLo < aHi
}

// --- persistence instructions (PMEM baseline) ---

// issuePersist waits for SB entries to the target line to drain, then
// issues a clwb; the program resumes immediately (clwb is asynchronous,
// sfence provides the wait).
func (c *Core) issuePersist(req request) {
	la := memory.LineAddr(req.addr)
	for i := len(c.sb) - 1; i >= 0; i-- {
		if memory.LineAddr(c.sb[i].addr) == la {
			c.pendingPersist = req
			c.waitSBBelow(i, c.retryPersistFn)
			return
		}
	}
	c.outstandingClwb++
	c.h.Clwb(c.id, la, c.clwbDone)
	c.eng.Schedule(1, c.reply0)
}

// issueFence blocks the program until every outstanding clwb has reached
// the persistence domain.
func (c *Core) issueFence() {
	if c.outstandingClwb == 0 {
		c.eng.Schedule(1, c.reply0)
		return
	}
	if c.fenceWaiter != nil {
		panic("cpu: concurrent fences on one core")
	}
	c.fenceWaiter = c.fenceReply
}

// --- crash support ---

// SBOccupancy reports the number of buffered stores.
func (c *Core) SBOccupancy() int { return len(c.sb) }

// BatteryBackedSB reports whether this core's store buffer is inside the
// persistence domain (§III-C).
func (c *Core) BatteryBackedSB() bool { return c.cfg.BatteryBackedSB }

// CrashDrainSB flushes buffered stores for persistent addresses straight to
// the durable image via write (a read-modify-write at line granularity),
// preserving program order. Only meaningful when the store buffer is
// battery backed (§III-C); callers decide based on the scheme.
func (c *Core) CrashDrainSB(read func(memory.Addr, *[memory.LineSize]byte), write func(memory.Addr, *[memory.LineSize]byte), persistent func(memory.Addr) bool) int {
	n := 0
	for _, e := range c.sb {
		if !persistent(e.addr) {
			continue
		}
		la := memory.LineAddr(e.addr)
		var line [memory.LineSize]byte
		read(la, &line)
		writeValueAt(&line, memory.LineOffset(e.addr), e.size, e.val)
		write(la, &line)
		c.eng.EmitTrace(trace.KindCrashDrain, c.id, uint64(la), 0)
		n++
	}
	c.sb = c.sb[:0]
	return n
}

func writeValueAt(data *[memory.LineSize]byte, off, size int, val uint64) {
	for i := 0; i < size; i++ {
		data[off+i] = byte(val >> (8 * uint(i)))
	}
}
