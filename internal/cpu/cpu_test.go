package cpu

import (
	"testing"

	"bbb/internal/coherence"
	"bbb/internal/engine"
	"bbb/internal/memctrl"
	"bbb/internal/memory"
)

type rig struct {
	eng   *engine.Engine
	mem   *memory.Memory
	nvmm  *memctrl.Controller
	h     *coherence.Hierarchy
	cores []*Core
}

func newRig(t *testing.T, n int, ccfg Config) *rig {
	t.Helper()
	eng := engine.New()
	mem := memory.New(memory.DefaultLayout())
	dram := memctrl.New(memctrl.DefaultDRAM(), eng, mem)
	nvmm := memctrl.New(memctrl.DefaultNVMM(), eng, mem)
	hcfg := coherence.DefaultConfig()
	hcfg.Cores = n
	hcfg.L1Size = 4096
	hcfg.L2Size = 32 * 1024
	h := coherence.New(hcfg, eng, mem.Layout(), dram, nvmm, coherence.NullPolicy{})
	r := &rig{eng: eng, mem: mem, nvmm: nvmm, h: h}
	for i := 0; i < n; i++ {
		r.cores = append(r.cores, New(i, ccfg, eng, h))
	}
	t.Cleanup(func() {
		for _, c := range r.cores {
			c.Stop()
		}
	})
	return r
}

func (r *rig) nv(n uint64) memory.Addr {
	return r.mem.Layout().PersistentBase + memory.Addr(n)*memory.LineSize
}

func TestSingleCoreProgram(t *testing.T) {
	r := newRig(t, 1, DefaultConfig())
	a := r.nv(0)
	var loaded uint64
	r.cores[0].Start(func(e Env) {
		Store64(e, a, 12345)
		loaded = Load64(e, a)
		e.Compute(100)
	})
	r.eng.Run()
	if !r.cores[0].Done() {
		t.Fatal("program did not finish")
	}
	if loaded != 12345 {
		t.Fatalf("loaded = %d (store-to-load forwarding broken?)", loaded)
	}
	if r.cores[0].FinishedAt() < 100 {
		t.Fatalf("finished at %d, Compute(100) not charged", r.cores[0].FinishedAt())
	}
	if r.cores[0].Stats.Get("core.loads") != 1 || r.cores[0].Stats.Get("core.stores") != 1 {
		t.Fatal("op counts wrong")
	}
}

func TestStoreBufferForwarding(t *testing.T) {
	r := newRig(t, 1, DefaultConfig())
	a := r.nv(1)
	r.cores[0].Start(func(e Env) {
		Store64(e, a, 7)
		if v := Load64(e, a); v != 7 {
			t.Errorf("forwarded value = %d", v)
		}
	})
	r.eng.Run()
	if r.cores[0].Stats.Get("core.sb_forwards") == 0 {
		t.Fatal("load did not forward from SB")
	}
}

func TestOverlapStallDrainsSB(t *testing.T) {
	r := newRig(t, 1, DefaultConfig())
	a := r.nv(2)
	var got uint64
	r.cores[0].Start(func(e Env) {
		e.Store(a, 8, 0x1111111122222222)
		got = e.Load(a+2, 2) // partial overlap: must see the store's bytes
	})
	r.eng.Run()
	if got != 0x2222 { // little-endian bytes 2-3 of the stored value
		t.Fatalf("overlapping load = %#x, want 0x2222", got)
	}
	if r.cores[0].Stats.Get("core.sb_overlap_stalls") == 0 {
		t.Fatal("overlap stall not taken")
	}
}

func TestSBFullBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SBEntries = 2
	r := newRig(t, 1, cfg)
	r.cores[0].Start(func(e Env) {
		for i := uint64(0); i < 40; i++ {
			Store64(e, r.nv(i), i)
		}
	})
	r.eng.Run()
	if !r.cores[0].Done() {
		t.Fatal("program did not finish")
	}
	if r.cores[0].Stats.Get("core.sb_full_stalls") == 0 {
		t.Fatal("expected SB-full stalls with a 2-entry SB")
	}
	if r.cores[0].StallCycles == 0 {
		t.Fatal("stall cycles not accounted")
	}
}

func TestProgramOrderStores(t *testing.T) {
	r := newRig(t, 1, DefaultConfig())
	a, b := r.nv(3), r.nv(4)
	r.cores[0].Start(func(e Env) {
		for i := uint64(1); i <= 50; i++ {
			Store64(e, a, i)
			Store64(e, b, i)
		}
	})
	r.eng.Run()
	// After the run both lines carry the final value in the hierarchy.
	var v uint64
	done := false
	r.h.Load(0, a, 8, func(x uint64) { v = x; done = true })
	r.eng.Run()
	if !done || v != 50 {
		t.Fatalf("a = %d, want 50", v)
	}
}

func TestTwoCoresCommunicate(t *testing.T) {
	r := newRig(t, 2, DefaultConfig())
	flag, data := r.nv(5), r.nv(6)
	var observed uint64
	r.cores[0].Start(func(e Env) {
		Store64(e, data, 999)
		Store64(e, flag, 1)
	})
	r.cores[1].Start(func(e Env) {
		for Load64(e, flag) != 1 {
			e.Compute(50)
		}
		observed = Load64(e, data)
	})
	r.eng.Run()
	if observed != 999 {
		t.Fatalf("consumer read %d, want 999 (store visibility order)", observed)
	}
}

func TestPersistBarrierFreeWithoutExplicitPersist(t *testing.T) {
	r := newRig(t, 1, DefaultConfig()) // ExplicitPersist=false (BBB/eADR)
	a := r.nv(7)
	r.cores[0].Start(func(e Env) {
		Store64(e, a, 1)
		e.PersistBarrier(a)
	})
	r.eng.Run()
	if r.cores[0].Stats.Get("core.clwbs") != 0 || r.cores[0].Stats.Get("core.fences") != 0 {
		t.Fatal("PersistBarrier should be free when ExplicitPersist is off")
	}
}

func TestPersistBarrierPMEM(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ExplicitPersist = true
	r := newRig(t, 1, cfg)
	a := r.nv(8)
	r.cores[0].Start(func(e Env) {
		Store64(e, a, 321)
		e.PersistBarrier(a)
	})
	r.eng.Run()
	c := r.cores[0]
	if c.Stats.Get("core.clwbs") != 1 || c.Stats.Get("core.fences") != 1 {
		t.Fatalf("clwbs=%d fences=%d, want 1/1", c.Stats.Get("core.clwbs"), c.Stats.Get("core.fences"))
	}
	// The store is durable without any cache/bbPB crash drain: WPQ has it.
	r.nvmm.CrashDrain()
	var buf [memory.LineSize]byte
	r.mem.PeekLine(a, &buf)
	if got := uint64(buf[0]) | uint64(buf[1])<<8; got != 321 {
		t.Fatalf("durable value = %d, want 321", got)
	}
}

func TestPersistBarrierOrdersAcrossStores(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ExplicitPersist = true
	r := newRig(t, 1, cfg)
	a, b := r.nv(9), r.nv(10)
	r.cores[0].Start(func(e Env) {
		Store64(e, a, 1)
		e.PersistBarrier(a)
		Store64(e, b, 2) // must not persist before a
	})
	r.eng.Run()
	// By the time the fence completed, a was durable. Verify a reached the
	// persistence domain (WPQ insert happened => nvmm writes counted).
	if r.nvmm.Stats.Get("nvmm.writes") == 0 {
		t.Fatal("fence completed without any NVMM write")
	}
}

func TestCrashDrainSB(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatteryBackedSB = true
	r := newRig(t, 1, cfg)
	a := r.nv(11)
	started := false
	r.cores[0].Start(func(e Env) {
		started = true
		for i := uint64(0); i < 100; i++ {
			Store64(e, a+memory.Addr((i%8)*8), i)
		}
	})
	// Run briefly then crash with stores still buffered.
	r.eng.RunUntil(40)
	if !started {
		t.Fatal("program never started")
	}
	c := r.cores[0]
	if c.SBOccupancy() == 0 {
		t.Skip("no buffered stores at the crash point")
	}
	img := map[memory.Addr][memory.LineSize]byte{}
	n := c.CrashDrainSB(
		func(la memory.Addr, buf *[memory.LineSize]byte) { *buf = img[la] },
		func(la memory.Addr, buf *[memory.LineSize]byte) { img[la] = *buf },
		func(memory.Addr) bool { return true },
	)
	if n == 0 {
		t.Fatal("CrashDrainSB drained nothing")
	}
	if c.SBOccupancy() != 0 {
		t.Fatal("SB not empty after crash drain")
	}
}

func TestStopAbandonsProgram(t *testing.T) {
	r := newRig(t, 1, DefaultConfig())
	r.cores[0].Start(func(e Env) {
		for i := uint64(0); ; i++ {
			Store64(e, r.nv(i%4), i)
		}
	})
	r.eng.RunUntil(200)
	r.cores[0].Stop() // must release the goroutine without hanging the test
	if r.cores[0].Done() {
		t.Fatal("infinite program cannot be Done")
	}
}

func TestManyCoresFinishDeterministically(t *testing.T) {
	run := func() []engine.Cycle {
		r := newRig(t, 4, DefaultConfig())
		for i := 0; i < 4; i++ {
			i := i
			r.cores[i].Start(func(e Env) {
				for j := uint64(0); j < 50; j++ {
					Store64(e, r.nv(uint64(i)*64+j%16), j)
					if j%5 == 0 {
						Load64(e, r.nv(uint64((i+1)%4)*64))
					}
				}
			})
		}
		r.eng.Run()
		var out []engine.Cycle
		for _, c := range r.cores {
			if !c.Done() {
				t.Fatal("core not done")
			}
			out = append(out, c.FinishedAt())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic finish times: %v vs %v", a, b)
		}
	}
}
