package cpu

import (
	"testing"

	"bbb/internal/memory"
)

// TestPersistBarrierZeroAlloc pins the variadic fast path: under the
// battery schemes PersistBarrier is free, and the cpu.PersistBarrier helper
// must keep it allocation-free too — a plain Env.PersistBarrier(addrs...)
// call through the interface forces the variadic backing array to escape,
// which at one barrier per workload operation was a measurable slice of the
// simulator's allocation pressure. The helper's concrete-type dispatch keeps
// the array on the caller's stack; this test fails if that path ever decays
// back to the escaping interface call.
func TestPersistBarrierZeroAlloc(t *testing.T) {
	r := newRig(t, 1, DefaultConfig()) // battery scheme: no ExplicitPersist, no EpochMode
	e := &env{core: r.cores[0]}
	a := r.nv(0)
	avg := testing.AllocsPerRun(1000, func() {
		PersistBarrier(e, a, a+memory.LineSize, a+2*memory.LineSize)
	})
	if avg != 0 {
		t.Fatalf("PersistBarrier allocates %.1f objects per call on the battery fast path, want 0", avg)
	}
}
