package cpu

import (
	"testing"

	"bbb/internal/memory"
)

func TestCASBasics(t *testing.T) {
	r := newRig(t, 1, DefaultConfig())
	a := r.nv(0)
	var prev1, prev2 uint64
	var ok1, ok2 bool
	r.cores[0].Start(func(e Env) {
		Store64(e, a, 5)
		prev1, ok1 = e.CompareAndSwap(a, 8, 5, 9) // matches
		prev2, ok2 = e.CompareAndSwap(a, 8, 5, 7) // stale expectation
	})
	r.eng.Run()
	if !ok1 || prev1 != 5 {
		t.Fatalf("first CAS = (%d,%v), want (5,true)", prev1, ok1)
	}
	if ok2 || prev2 != 9 {
		t.Fatalf("second CAS = (%d,%v), want (9,false)", prev2, ok2)
	}
	var final uint64
	done := false
	r.h.Load(0, a, 8, func(v uint64) { final = v; done = true })
	r.eng.Run()
	if !done || final != 9 {
		t.Fatalf("final = %d, want 9", final)
	}
}

func TestCASOrdersAfterBufferedStores(t *testing.T) {
	r := newRig(t, 1, DefaultConfig())
	a := r.nv(1)
	var ok bool
	r.cores[0].Start(func(e Env) {
		Store64(e, a, 3) // sits in the SB
		// The CAS must observe the buffered store (it drains the SB first).
		_, ok = e.CompareAndSwap(a, 8, 3, 4)
	})
	r.eng.Run()
	if !ok {
		t.Fatal("CAS did not observe the program's own buffered store")
	}
	if r.cores[0].Stats.Get("core.atomics") != 1 {
		t.Fatal("atomic not counted")
	}
}

// Four cores increment one shared counter with CAS loops; no increment may
// be lost — the atomicity test.
func TestCASSharedCounterExact(t *testing.T) {
	const cores, perCore = 4, 200
	r := newRig(t, cores, DefaultConfig())
	ctr := r.nv(2)
	for i := 0; i < cores; i++ {
		r.cores[i].Start(func(e Env) {
			for n := 0; n < perCore; n++ {
				for {
					cur := Load64(e, ctr)
					if _, ok := e.CompareAndSwap(ctr, 8, cur, cur+1); ok {
						break
					}
				}
			}
		})
	}
	r.eng.Run()
	var final uint64
	r.h.Load(0, ctr, 8, func(v uint64) { final = v })
	r.eng.Run()
	if final != cores*perCore {
		t.Fatalf("counter = %d, want %d (lost updates)", final, cores*perCore)
	}
	if err := r.h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// A Treiber-stack push loop across cores: every node CAS-published must be
// reachable exactly once (no lost or duplicated publishes).
func TestCASTreiberStack(t *testing.T) {
	const cores, perCore = 4, 100
	r := newRig(t, cores, DefaultConfig())
	head := r.nv(3)
	// Node n for (core c, i) at a fixed slot; [val, next] layout.
	nodeAddr := func(c, i int) memory.Addr { return r.nv(uint64(16 + c*perCore + i)) }
	for c := 0; c < cores; c++ {
		c := c
		r.cores[c].Start(func(e Env) {
			for i := 0; i < perCore; i++ {
				n := nodeAddr(c, i)
				Store64(e, n, uint64(c*1000+i)) // val
				for {
					cur := Load64(e, head)
					Store64(e, n+8, cur) // next
					if _, ok := e.CompareAndSwap(head, 8, cur, uint64(n)); ok {
						break
					}
				}
			}
		})
	}
	r.eng.Run()
	// Walk the stack architecturally.
	seen := map[uint64]bool{}
	var cur uint64
	doneLoad := func(a memory.Addr) uint64 {
		var v uint64
		r.h.Load(0, a, 8, func(x uint64) { v = x })
		r.eng.Run()
		return v
	}
	cur = doneLoad(head)
	count := 0
	for cur != 0 {
		val := doneLoad(memory.Addr(cur))
		if seen[val] {
			t.Fatalf("value %d pushed twice", val)
		}
		seen[val] = true
		cur = doneLoad(memory.Addr(cur) + 8)
		count++
	}
	if count != cores*perCore {
		t.Fatalf("stack has %d nodes, want %d", count, cores*perCore)
	}
}
