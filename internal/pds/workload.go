package pds

import (
	"fmt"
	"math/rand"
	"sort"

	"bbb/internal/cpu"
	"bbb/internal/memory"
	"bbb/internal/palloc"
	"bbb/internal/system"
	"bbb/internal/workload"
)

// The pds crash workloads drive each structure hard enough that the
// crash-image model checker can cut mid-operation (a half-linked enqueue,
// a resize migration in flight, a partially built tower) and verify the
// recovery invariants on every legal surviving image. They register under
// pds/* so witness replay and the recovery campaigns resolve them by
// name, but stay out of the Table IV matrices.
func init() {
	workload.Register(func() workload.Workload { return &queueWorkload{} })
	workload.Register(func() workload.Workload { return &mapWorkload{} })
	workload.Register(func() workload.Workload { return &resizeWorkload{} })
	workload.Register(func() workload.Workload { return &listWorkload{} })
}

// wrng is the drivers' per-thread seed formula (workload.rng's twin).
func wrng(p workload.Params, thread int) *rand.Rand {
	return rand.New(rand.NewSource(p.Seed*1000003 + int64(thread)))
}

// qVal packs an enqueue's provenance: producer thread in the high half,
// 1-based sequence number in the low half.
func qVal(tid, seq int) uint64 { return uint64(tid+1)<<32 | uint64(seq) }

// --- pds/queue ---

// queueWorkload: every thread enqueues tagged values into one shared MSQ
// and occasionally dequeues. The checker demands that each producer's
// surviving values are a contiguous ascending run — a hole would mean a
// node became durably reachable before its predecessor's link, i.e. a
// broken publish discipline.
type queueWorkload struct {
	q *Queue
}

func (w *queueWorkload) Name() string { return "pds/queue" }
func (w *queueWorkload) Description() string {
	return "pds MSQ persistent queue: concurrent tagged enqueues/dequeues, per-producer contiguity checked"
}
func (w *queueWorkload) PaperPStores() float64 { return 0 }

func (w *queueWorkload) Setup(mem *memory.Memory, arena *palloc.Arena, p workload.Params) {
	w.q = NewQueue(mem, arena, p.Threads, p.OpsPerThread+1)
}

func (w *queueWorkload) Programs(p workload.Params) []system.Program {
	progs := make([]system.Program, p.Threads)
	for t := 0; t < p.Threads; t++ {
		t := t
		progs[t] = func(e cpu.Env) {
			r := wrng(p, t)
			for i := 1; i <= p.OpsPerThread; i++ {
				w.q.Enqueue(e, t, qVal(t, i))
				if r.Intn(4) == 0 {
					w.q.Dequeue(e)
				}
			}
		}
	}
	return progs
}

func (w *queueWorkload) Check(mem *memory.Memory) error {
	img, err := RecoverQueue(mem, w.q.Base())
	if err != nil {
		return err
	}
	last := map[int]int{}
	for _, v := range img.Vals {
		tid := int(v>>32) - 1
		seq := int(v & 0xFFFF_FFFF)
		if tid < 0 || seq < 1 {
			return fmt.Errorf("pds/queue: malformed value %#x in durable image", v)
		}
		if prev, ok := last[tid]; ok && seq != prev+1 {
			return fmt.Errorf("pds/queue: producer %d jumps from seq %d to %d (lost middle enqueue)", tid, prev, seq)
		}
		last[tid] = seq
	}
	return nil
}

// --- pds/hashmap ---

// mapWorkload: all threads share one pre-sized map (no resize — that is
// resizeWorkload's job, under its quiescence contract). Each thread
// inserts its tagged keys in order and tombstones a sample of its earlier
// keys. The checker demands per-thread prefix contiguity: thread t's keys
// present in the image must be exactly 0..m for some m, since Put k+1
// only starts after Put k returned durable.
type mapWorkload struct {
	m *Map
}

// mwKey spreads thread-tagged keys across the table.
func mwKey(tid, i int) uint64 { return uint64(tid)<<20 | uint64(i) }

// mwVal is the value formula the checker verifies.
func mwVal(key uint64) uint64 { return key*31 + 7 }

func (w *mapWorkload) Name() string { return "pds/hashmap" }
func (w *mapWorkload) Description() string {
	return "pds persistent hash map: concurrent CAS inserts + tombstone deletes, per-thread prefix contiguity checked"
}
func (w *mapWorkload) PaperPStores() float64 { return 0 }

func (w *mapWorkload) Setup(mem *memory.Memory, arena *palloc.Arena, p workload.Params) {
	buckets := uint64(1)
	for buckets < uint64(p.Threads*p.OpsPerThread/2+1) {
		buckets *= 2
	}
	w.m = NewMap(mem, arena, p.Threads, p.OpsPerThread+1, buckets)
}

func (w *mapWorkload) Programs(p workload.Params) []system.Program {
	progs := make([]system.Program, p.Threads)
	for t := 0; t < p.Threads; t++ {
		t := t
		progs[t] = func(e cpu.Env) {
			r := wrng(p, t)
			for i := 0; i < p.OpsPerThread; i++ {
				key := mwKey(t, i)
				w.m.Put(e, t, key, mwVal(key))
				if i > 0 && r.Intn(5) == 0 {
					w.m.Delete(e, mwKey(t, r.Intn(i)))
				}
			}
		}
	}
	return progs
}

func (w *mapWorkload) Check(mem *memory.Memory) error {
	img, err := RecoverMap(mem, w.m.Base())
	if err != nil {
		return err
	}
	maxSeq := map[int]int{}
	count := map[int]int{}
	note := func(key uint64) {
		tid := int(key >> 20)
		seq := int(key & 0xF_FFFF)
		if seq > maxSeq[tid] {
			maxSeq[tid] = seq
		}
		count[tid]++
	}
	for _, key := range sortedKeys(img.Live) {
		if val := img.Live[key]; val != mwVal(key) {
			return fmt.Errorf("pds/hashmap: key %d has value %d, want %d", key, val, mwVal(key))
		}
		note(key)
	}
	for _, key := range sortedKeys(img.Dead) {
		note(key)
	}
	return checkContiguous("pds/hashmap", count, maxSeq)
}

// sortedKeys returns m's keys in ascending order, for deterministic checker
// walks (detlint bans raw map ranges in simulator packages).
func sortedKeys[V any](m map[uint64]V) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m { //bbbvet:ignore detlint keys sorted immediately below
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// checkContiguous demands each thread's surviving sequence numbers form the
// exact prefix 0..max — a hole means a durably-lost middle operation.
func checkContiguous(name string, count, maxSeq map[int]int) error {
	tids := make([]int, 0, len(count))
	for t := range count { //bbbvet:ignore detlint tids sorted immediately below
		tids = append(tids, t)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		if count[tid] != maxSeq[tid]+1 {
			return fmt.Errorf("%s: thread %d has %d surviving keys but max seq %d (lost middle insert)", name, tid, count[tid], maxSeq[tid])
		}
	}
	return nil
}

// --- pds/hashresize ---

// resizeWorkload: each thread owns a private map seeded with deliberately
// few buckets, so steady inserts force repeated out-of-place resizes —
// the crash checker then cuts mid-migration and recovery must land on a
// whole table (old until the root switch persists, new after).
type resizeWorkload struct {
	maps []*Map
}

func (w *resizeWorkload) Name() string { return "pds/hashresize" }
func (w *resizeWorkload) Description() string {
	return "pds hash map resize: single-writer tables resized out of place under load, whole-table recovery checked"
}
func (w *resizeWorkload) PaperPStores() float64 { return 0 }

func (w *resizeWorkload) Setup(mem *memory.Memory, arena *palloc.Arena, p workload.Params) {
	w.maps = nil
	for t := 0; t < p.Threads; t++ {
		// Heap sizing: ops nodes, plus a copy of every live node per
		// resize (log2(ops) resizes of at most ops nodes), plus the
		// tables themselves.
		w.maps = append(w.maps, NewMap(mem, arena, 1, p.OpsPerThread*8+64, 2))
	}
}

func (w *resizeWorkload) Programs(p workload.Params) []system.Program {
	progs := make([]system.Program, p.Threads)
	for t := 0; t < p.Threads; t++ {
		t := t
		progs[t] = func(e cpu.Env) {
			m := w.maps[t]
			for i := 0; i < p.OpsPerThread; i++ {
				key := uint64(i)
				m.Put(e, 0, key, mwVal(key))
				if m.LoadFactor(e) > 3 {
					m.Resize(e, 0)
				}
			}
		}
	}
	return progs
}

func (w *resizeWorkload) Check(mem *memory.Memory) error {
	for t, m := range w.maps {
		img, err := RecoverMap(mem, m.Base())
		if err != nil {
			return fmt.Errorf("thread %d: %w", t, err)
		}
		for i := 0; i < len(img.Live); i++ {
			val, ok := img.Live[uint64(i)]
			if !ok {
				return fmt.Errorf("pds/hashresize: thread %d lost key %d but kept %d keys (hole after resize)", t, i, len(img.Live))
			}
			if val != mwVal(uint64(i)) {
				return fmt.Errorf("pds/hashresize: thread %d key %d has value %d, want %d", t, i, val, mwVal(uint64(i)))
			}
		}
	}
	return nil
}

// --- pds/skiplist ---

// listWorkload: all threads insert interleaved keys into one shared
// skiplist. The checker layers per-thread prefix contiguity on top of
// RecoverList's structural walk, so a partially built tower is fine but a
// lost middle insert is not.
type listWorkload struct {
	l *List
}

func (w *listWorkload) Name() string { return "pds/skiplist" }
func (w *listWorkload) Description() string {
	return "pds persistent skiplist: concurrent tower inserts, sorted-chain recovery + per-thread contiguity checked"
}
func (w *listWorkload) PaperPStores() float64 { return 0 }

func (w *listWorkload) Setup(mem *memory.Memory, arena *palloc.Arena, p workload.Params) {
	w.l = NewList(mem, arena, p.Threads, p.OpsPerThread+1)
}

func (w *listWorkload) Programs(p workload.Params) []system.Program {
	progs := make([]system.Program, p.Threads)
	for t := 0; t < p.Threads; t++ {
		t := t
		progs[t] = func(e cpu.Env) {
			for i := 0; i < p.OpsPerThread; i++ {
				// Interleave the key space across threads: neighbors in
				// the list are usually other threads' nodes, maximizing
				// cross-thread pred/succ races.
				key := uint64(i*p.Threads + t + 1)
				w.l.Insert(e, t, key, mwVal(key))
			}
		}
	}
	return progs
}

func (w *listWorkload) Check(mem *memory.Memory) error {
	img, err := RecoverList(mem, w.l.Base())
	if err != nil {
		return err
	}
	// Keys are sorted (RecoverList checked); verify values and per-thread
	// contiguous prefixes. Key k belongs to thread (k-1) mod Threads with
	// sequence (k-1) / Threads.
	threads := len(w.l.heaps)
	maxSeq := map[int]int{}
	count := map[int]int{}
	for i, key := range img.Keys {
		if img.Vals[i] != mwVal(key) {
			return fmt.Errorf("pds/skiplist: key %d has value %d, want %d", key, img.Vals[i], mwVal(key))
		}
		tid := int((key - 1)) % threads
		seq := int(key-1) / threads
		if seq > maxSeq[tid] {
			maxSeq[tid] = seq
		}
		count[tid]++
	}
	return checkContiguous("pds/skiplist", count, maxSeq)
}
