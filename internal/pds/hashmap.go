package pds

import (
	"fmt"

	"bbb/internal/cpu"
	"bbb/internal/memory"
	"bbb/internal/palloc"
)

// Map is the durably-linearizable persistent hash map: chained buckets
// with lock-free CAS insertion at bucket heads, in-place value updates,
// tombstone deletes, and CCEH-style out-of-place resize — the new table is
// built and persisted completely, then one durable root-pointer store
// switches to it, so a crash at any point recovers to a whole table (the
// old one until the switch persists, the new one after).
//
// Concurrency contract: Put/Delete/Get are safe from any number of
// threads. Resize requires writer quiescence (a single-writer instance,
// as in the kvservice shards): it copies nodes out of place precisely so
// that a crash mid-migration leaves the old table untouched, but it does
// not defend against racing writers.
//
// Root line: [magic, tablePtr]. Table: [magic, nbuckets, bucket0...].
// Node (one line): [magic, key, val, next, dead].
type Map struct {
	root  memory.Addr
	heaps []*palloc.Arena
	// puts counts successful inserts per thread (tombstones not
	// subtracted), host-side bookkeeping for resize decisions. Each
	// thread touches only its own slot.
	puts []int
}

const (
	hmOffTable = 8

	hmOffBuckets = 8
	hmOffBucket0 = 16

	hmOffKey  = 8
	hmOffVal  = 16
	hmOffNext = 24
	hmOffDead = 32
	hmNodeLen = 40
)

func hmTableLen(buckets uint64) uint64 { return hmOffBucket0 + 8*buckets }

// NewMap writes the initial durable image (root plus an empty table of
// buckets bucket-head cells) at Setup time. Each of threads gets a private
// node heap sized for nodesPerThread inserts plus that thread's share of
// resize copies.
func NewMap(mem *memory.Memory, arena *palloc.Arena, threads, nodesPerThread int, buckets uint64) *Map {
	m := &Map{root: arena.Alloc(16), puts: make([]int, threads)}
	table := arena.Alloc(hmTableLen(buckets))
	mem.Poke64(table, magicMapTable)
	mem.Poke64(table+hmOffBuckets, buckets)
	for i := uint64(0); i < buckets; i++ {
		mem.Poke64(table+hmOffBucket0+memory.Addr(8*i), 0)
	}
	mem.Poke64(m.root, magicMapRoot)
	mem.Poke64(m.root+hmOffTable, uint64(table))
	for t := 0; t < threads; t++ {
		m.heaps = append(m.heaps, arena.Sub(uint64(nodesPerThread)*memory.LineSize))
	}
	return m
}

// Base returns the root address, where a recovery walk starts.
func (m *Map) Base() memory.Addr { return m.root }

// bucketCell returns the head cell of key's bucket in the table at ta.
func bucketCell(e cpu.Env, ta memory.Addr, key uint64) memory.Addr {
	nb := cpu.Load64(e, ta+hmOffBuckets)
	return ta + hmOffBucket0 + memory.Addr(8*(hashKey(key)%nb))
}

// lookup walks key's chain in the table at ta, returning the node address
// (0 if absent, tombstoned nodes included when dead is true).
func lookup(e cpu.Env, ta memory.Addr, key uint64) (node memory.Addr, dead bool) {
	cur := memory.Addr(cpu.Load64(e, bucketCell(e, ta, key)))
	for cur != 0 {
		if cpu.Load64(e, cur+hmOffKey) == key {
			return cur, cpu.Load64(e, cur+hmOffDead) != 0
		}
		cur = memory.Addr(cpu.Load64(e, cur+hmOffNext))
	}
	return 0, false
}

// Get returns key's value if present and live.
func (m *Map) Get(e cpu.Env, key uint64) (uint64, bool) {
	ta := memory.Addr(LoadP(e, m.root+hmOffTable))
	n, dead := lookup(e, ta, key)
	if n == 0 || dead {
		return 0, false
	}
	return cpu.Load64(e, n+hmOffVal), true
}

// Put inserts or updates key. An update is one durable in-place cell
// store; an insert seals and fences a fresh node, then publishes it at the
// bucket head with a durable CAS.
func (m *Map) Put(e cpu.Env, tid int, key, val uint64) {
	ta := memory.Addr(LoadP(e, m.root+hmOffTable))
	if n, dead := lookup(e, ta, key); n != 0 && !dead {
		StoreP(e, n+hmOffVal, val)
		DrainP(e)
		return
	}
	n := m.heaps[tid].Alloc(hmNodeLen)
	cpu.Store64(e, n+hmOffKey, key)
	cpu.Store64(e, n+hmOffVal, val)
	cpu.Store64(e, n+hmOffDead, 0)
	cell := bucketCell(e, ta, key)
	for {
		head := cpu.Load64(e, cell)
		cpu.Store64(e, n+hmOffNext, head)
		StoreP(e, n, magicMapNode) // seal: the node is one line
		DrainP(e)                  // node durable before it becomes reachable
		//bbbvet:commit-store n
		if _, ok := CASP(e, cell, head, uint64(n)); ok {
			m.puts[tid]++
			return
		}
	}
}

// Delete tombstones key (one durable cell store), returning whether it was
// present and live.
func (m *Map) Delete(e cpu.Env, key uint64) bool {
	ta := memory.Addr(LoadP(e, m.root+hmOffTable))
	n, dead := lookup(e, ta, key)
	if n == 0 || dead {
		return false
	}
	StoreP(e, n+hmOffDead, 1)
	DrainP(e)
	return true
}

// LoadFactor returns inserts-per-bucket for the current table, from the
// host-side insert counts.
func (m *Map) LoadFactor(e cpu.Env) float64 {
	ta := memory.Addr(cpu.Load64(e, m.root+hmOffTable))
	nb := cpu.Load64(e, ta+hmOffBuckets)
	total := 0
	for _, n := range m.puts {
		total += n
	}
	return float64(total) / float64(nb)
}

// Resize doubles the table out of place: build the new table, copy every
// live node into it (the old table is never touched, so a crash
// mid-migration recovers to it intact), persist every written line with
// one barrier, then publish the new table with a single durable root
// store. Requires writer quiescence — see the type comment.
func (m *Map) Resize(e cpu.Env, tid int) {
	ta := memory.Addr(cpu.Load64(e, m.root+hmOffTable))
	nb := cpu.Load64(e, ta+hmOffBuckets)
	newNB := nb * 2
	nt := m.heaps[tid].Alloc(hmTableLen(newNB))
	var lines []memory.Addr
	for a := nt; a < nt+memory.Addr(hmTableLen(newNB)); a += memory.LineSize {
		lines = append(lines, a)
	}
	cpu.Store64(e, nt+hmOffBuckets, newNB)
	for i := uint64(0); i < newNB; i++ {
		cpu.Store64(e, nt+hmOffBucket0+memory.Addr(8*i), 0)
	}
	for i := uint64(0); i < nb; i++ {
		cur := memory.Addr(cpu.Load64(e, ta+hmOffBucket0+memory.Addr(8*i)))
		for cur != 0 {
			if cpu.Load64(e, cur+hmOffDead) == 0 {
				key := cpu.Load64(e, cur+hmOffKey)
				cp := m.heaps[tid].Alloc(hmNodeLen)
				ncell := nt + hmOffBucket0 + memory.Addr(8*(hashKey(key)%newNB))
				cpu.Store64(e, cp+hmOffKey, key)
				cpu.Store64(e, cp+hmOffVal, cpu.Load64(e, cur+hmOffVal))
				cpu.Store64(e, cp+hmOffDead, 0)
				cpu.Store64(e, cp+hmOffNext, cpu.Load64(e, ncell))
				cpu.Store64(e, cp, magicMapNode)
				cpu.Store64(e, ncell, uint64(cp))
				lines = append(lines, cp)
			}
			cur = memory.Addr(cpu.Load64(e, cur+hmOffNext))
		}
	}
	cpu.Store64(e, nt, magicMapTable) // seal the table header
	// One barrier persists the whole new table: N clwbs + one sfence
	// under PMEM, one epoch mark under BEP, nothing under the batteries.
	cpu.PersistBarrier(e, lines...)
	//bbbvet:commit-store lines
	StoreP(e, m.root+hmOffTable, uint64(nt))
	DrainP(e) // the switch is durable before Resize returns
}

// MapImage is RecoverMap's view of a crash image.
type MapImage struct {
	// Live maps surviving live keys to values; Dead holds tombstoned keys.
	Live map[uint64]uint64
	Dead map[uint64]bool
	// Buckets is the recovered table's bucket count.
	Buckets uint64
}

// RecoverMap validates the durable image: the root must point at a sealed
// table, and every node reachable from it must be sealed, in the bucket
// its key hashes to, with an intact chain. A crash during Resize must
// leave the old table fully intact (out-of-place migration), so recovery
// never sees a half-migrated table.
func RecoverMap(mem *memory.Memory, root memory.Addr) (MapImage, error) {
	img := MapImage{Live: map[uint64]uint64{}, Dead: map[uint64]bool{}}
	if m := peek(mem, root); m != magicMapRoot {
		return img, fmt.Errorf("pds/map: root %#x not sealed (magic %#x)", root, m)
	}
	ta := memory.Addr(peek(mem, root+hmOffTable))
	if m := peek(mem, ta); m != magicMapTable {
		return img, fmt.Errorf("pds/map: root points at unsealed table %#x (magic %#x)", ta, m)
	}
	nb := peek(mem, ta+hmOffBuckets)
	if nb == 0 || nb > 1<<20 {
		return img, fmt.Errorf("pds/map: implausible bucket count %d", nb)
	}
	img.Buckets = nb
	seen := map[memory.Addr]bool{}
	for i := uint64(0); i < nb; i++ {
		cur := memory.Addr(peek(mem, ta+hmOffBucket0+memory.Addr(8*i)))
		for cur != 0 {
			if seen[cur] {
				return img, fmt.Errorf("pds/map: node %#x reachable twice", cur)
			}
			seen[cur] = true
			if m := peek(mem, cur); m != magicMapNode {
				return img, fmt.Errorf("pds/map: node %#x reachable but not sealed (magic %#x)", cur, m)
			}
			key := peek(mem, cur+hmOffKey)
			if hashKey(key)%nb != i {
				return img, fmt.Errorf("pds/map: key %d found in bucket %d, hashes to %d", key, i, hashKey(key)%nb)
			}
			if _, dup := img.Live[key]; !dup && !img.Dead[key] {
				if peek(mem, cur+hmOffDead) != 0 {
					img.Dead[key] = true
				} else {
					img.Live[key] = peek(mem, cur+hmOffVal)
				}
			}
			cur = memory.Addr(peek(mem, cur+hmOffNext))
		}
	}
	return img, nil
}
