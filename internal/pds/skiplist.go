package pds

import (
	"fmt"
	"math/bits"

	"bbb/internal/cpu"
	"bbb/internal/memory"
	"bbb/internal/palloc"
)

// slMaxHeight keeps a node (magic, key, val, height, next[4]) in one cache
// line, so sealing a node is a single write-back.
const slMaxHeight = 4

// List is the durably-linearizable persistent skiplist: a lock-free
// insert-only skiplist (values update in place) whose level-0 chain is the
// durable truth and whose upper levels are index state. A node is sealed
// and fenced before the level-0 CAS publishes it; upper-level links attach
// afterwards, each with its own durable CAS, so a crash mid-tower leaves a
// node reachable at the levels already linked — the recovery walk only
// demands that every level's chain is sorted, sealed and consistent with
// level 0.
//
// Tower heights are deterministic (derived from the key's hash), so runs
// replay identically.
//
// Head line: [magic, next[0..3]]. Node line: [magic, key, val, height,
// next[0..height-1]].
type List struct {
	head  memory.Addr
	heaps []*palloc.Arena
}

const (
	slOffNext0 = 8 // head: next cells start at +8

	slOffKey    = 8
	slOffVal    = 16
	slOffHeight = 24
	slOffLink0  = 32
	slNodeLen   = 32 + 8*slMaxHeight
)

// Height returns key's deterministic tower height: a geometric(1/2)
// distribution read off the key's hash bits.
func Height(key uint64) int {
	h := 1 + bits.TrailingZeros64(hashKey(key)|1<<(slMaxHeight-1))
	if h > slMaxHeight {
		h = slMaxHeight
	}
	return h
}

// NewList writes the initial durable image (the head tower, all levels
// empty) at Setup time, with a private node heap per thread.
func NewList(mem *memory.Memory, arena *palloc.Arena, threads, nodesPerThread int) *List {
	l := &List{head: arena.Alloc(8 + 8*slMaxHeight)}
	mem.Poke64(l.head, magicListHead)
	for i := 0; i < slMaxHeight; i++ {
		mem.Poke64(l.head+slOffNext0+memory.Addr(8*i), 0)
	}
	for t := 0; t < threads; t++ {
		l.heaps = append(l.heaps, arena.Sub(uint64(nodesPerThread)*memory.LineSize))
	}
	return l
}

// Base returns the head address, where a recovery walk starts.
func (l *List) Base() memory.Addr { return l.head }

// linkCell returns the level-i next cell of node n (or of the head).
func (l *List) linkCell(n memory.Addr, i int) memory.Addr {
	if n == l.head {
		return l.head + slOffNext0 + memory.Addr(8*i)
	}
	return n + slOffLink0 + memory.Addr(8*i)
}

// search returns, per level, the last node with key < target (preds) and
// its successor (succs). Loads only.
func (l *List) search(e cpu.Env, key uint64) (preds, succs [slMaxHeight]memory.Addr) {
	cur := l.head
	for i := slMaxHeight - 1; i >= 0; i-- {
		for {
			next := memory.Addr(cpu.Load64(e, l.linkCell(cur, i)))
			if next != 0 && cpu.Load64(e, next+slOffKey) < key {
				cur = next
				continue
			}
			preds[i], succs[i] = cur, next
			break
		}
	}
	return preds, succs
}

// Get returns key's value if present.
func (l *List) Get(e cpu.Env, key uint64) (uint64, bool) {
	_, succs := l.search(e, key)
	if succs[0] != 0 && cpu.Load64(e, succs[0]+slOffKey) == key {
		return cpu.Load64(e, succs[0]+slOffVal), true
	}
	return 0, false
}

// Scan walks level 0 from the first key >= from, returning up to max
// (key, value) pairs — the service tier's range query.
func (l *List) Scan(e cpu.Env, from uint64, max int) (keys, vals []uint64) {
	_, succs := l.search(e, from)
	cur := succs[0]
	for cur != 0 && len(keys) < max {
		keys = append(keys, cpu.Load64(e, cur+slOffKey))
		vals = append(vals, cpu.Load64(e, cur+slOffVal))
		cur = memory.Addr(cpu.Load64(e, l.linkCell(cur, 0)))
	}
	return keys, vals
}

// Insert adds key (or updates its value in place). The node is sealed and
// fenced before the level-0 CAS makes it reachable; each upper level is a
// separate durable link, so a crash leaves a valid partial tower.
func (l *List) Insert(e cpu.Env, tid int, key, val uint64) {
	ht := Height(key)
	var n memory.Addr
	var preds, succs [slMaxHeight]memory.Addr
	for {
		preds, succs = l.search(e, key)
		if succs[0] != 0 && cpu.Load64(e, succs[0]+slOffKey) == key {
			StoreP(e, succs[0]+slOffVal, val)
			DrainP(e)
			return
		}
		if n == 0 {
			n = l.heaps[tid].Alloc(slNodeLen)
		}
		cpu.Store64(e, n+slOffKey, key)
		cpu.Store64(e, n+slOffVal, val)
		cpu.Store64(e, n+slOffHeight, uint64(ht))
		for i := 0; i < ht; i++ {
			cpu.Store64(e, n+slOffLink0+memory.Addr(8*i), uint64(succs[i]))
		}
		StoreP(e, n, magicListNode) // seal: the node is one line
		DrainP(e)                   // node durable before it becomes reachable
		//bbbvet:commit-store n
		if _, ok := CASP(e, l.linkCell(preds[0], 0), uint64(succs[0]), uint64(n)); ok {
			break
		}
	}
	for i := 1; i < ht; i++ {
		for {
			//bbbvet:commit-store n
			if _, ok := CASP(e, l.linkCell(preds[i], i), uint64(succs[i]), uint64(n)); ok {
				break
			}
			// Lost the race at this level: re-find the neighborhood and
			// re-point the node's level-i link durably before retrying.
			preds, succs = l.search(e, key)
			if succs[i] == n {
				break // a helper already linked us here
			}
			StoreP(e, n+slOffLink0+memory.Addr(8*i), uint64(succs[i]))
			DrainP(e)
		}
	}
}

// ListImage is RecoverList's view of a crash image.
type ListImage struct {
	// Keys/Vals hold the level-0 chain in order.
	Keys, Vals []uint64
}

// RecoverList validates the durable image: every level's chain must be
// sorted, strictly increasing and sealed; upper levels must be
// subsequences of level 0 linking only nodes tall enough to appear there.
func RecoverList(mem *memory.Memory, head memory.Addr) (ListImage, error) {
	var img ListImage
	if m := peek(mem, head); m != magicListHead {
		return img, fmt.Errorf("pds/list: head %#x not sealed (magic %#x)", head, m)
	}
	onLevel0 := map[memory.Addr]bool{}
	for i := 0; i < slMaxHeight; i++ {
		var last uint64
		first := true
		seen := map[memory.Addr]bool{}
		cur := memory.Addr(peek(mem, head+slOffNext0+memory.Addr(8*i)))
		for cur != 0 {
			if seen[cur] {
				return img, fmt.Errorf("pds/list: level %d cycles through %#x", i, cur)
			}
			seen[cur] = true
			if m := peek(mem, cur); m != magicListNode {
				return img, fmt.Errorf("pds/list: node %#x reachable at level %d but not sealed (magic %#x)", cur, i, m)
			}
			key := peek(mem, cur+slOffKey)
			ht := peek(mem, cur+slOffHeight)
			if ht == 0 || ht > slMaxHeight {
				return img, fmt.Errorf("pds/list: node %#x has height %d", cur, ht)
			}
			if uint64(i) >= ht {
				return img, fmt.Errorf("pds/list: node %#x (height %d) linked at level %d", cur, ht, i)
			}
			if ht != uint64(Height(key)) {
				return img, fmt.Errorf("pds/list: node %#x height %d, key %d derives %d", cur, ht, key, Height(key))
			}
			if !first && key <= last {
				return img, fmt.Errorf("pds/list: level %d not strictly increasing at key %d", i, key)
			}
			if i == 0 {
				onLevel0[cur] = true
				img.Keys = append(img.Keys, key)
				img.Vals = append(img.Vals, peek(mem, cur+slOffVal))
			} else if !onLevel0[cur] {
				return img, fmt.Errorf("pds/list: node %#x on level %d but not on level 0", cur, i)
			}
			last, first = key, false
			cur = memory.Addr(peek(mem, cur+slOffLink0+memory.Addr(8*(uint64(i)))))
		}
	}
	return img, nil
}
