package pds_test

import (
	"testing"

	"bbb/internal/persistency"
	"bbb/internal/workload"
)

// BenchmarkPDSQueue measures the persistence-tagged MSQ's simulated
// operation rate under BBB — the library's hot structure (the kv oplog
// commits through it), so bench-json keeps its trajectory visible.
func BenchmarkPDSQueue(b *testing.B) {
	var ops uint64
	for i := 0; i < b.N; i++ {
		w, err := workload.ByName("pds/queue")
		if err != nil {
			b.Fatal(err)
		}
		p := testParams(4, 200)
		workload.Run(w, persistency.BBB, testConfig(persistency.BBB), p)
		ops += uint64(p.Threads * p.OpsPerThread)
	}
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "sim_ops/s")
}
