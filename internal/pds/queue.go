package pds

import (
	"fmt"

	"bbb/internal/cpu"
	"bbb/internal/memory"
	"bbb/internal/palloc"
)

// Queue is the MSQ-style durably-linearizable persistent queue: a
// Michael-Scott queue whose enqueue seals and fences each node before the
// link CAS publishes it, so every durably-reachable node is durably valid.
// The tail cell is index state — recovery rebuilds it by walking from the
// head (RecoverQueue) — so tail swings are plain CASes with no persist
// cost, after FliT.
//
// Node layout (one cache line): [magic, val, next]. Header line:
// [head, tail].
type Queue struct {
	hdr   memory.Addr // header line: head cell at +0, tail cell at +8
	heaps []*palloc.Arena
}

const (
	qOffVal  = 8
	qOffNext = 16
	qNodeLen = 24

	qOffHead = 0
	qOffTail = 8
)

// NewQueue carves the queue out of arena and writes its initial durable
// image (header plus an empty sentinel node) directly — constructors run
// at Setup time, before the machine starts. Each of threads gets a private
// node heap sized for nodesPerThread enqueues, so concurrent allocation
// stays deterministic.
func NewQueue(mem *memory.Memory, arena *palloc.Arena, threads, nodesPerThread int) *Queue {
	q := &Queue{hdr: arena.Alloc(16)}
	sentinel := arena.Alloc(qNodeLen)
	mem.Poke64(sentinel, magicQueueNode)
	mem.Poke64(sentinel+qOffVal, 0)
	mem.Poke64(sentinel+qOffNext, 0)
	mem.Poke64(q.hdr+qOffHead, uint64(sentinel))
	mem.Poke64(q.hdr+qOffTail, uint64(sentinel))
	for t := 0; t < threads; t++ {
		q.heaps = append(q.heaps, arena.Sub(uint64(nodesPerThread)*memory.LineSize))
	}
	return q
}

// Base returns the header address, the root a recovery walk starts from.
func (q *Queue) Base() memory.Addr { return q.hdr }

// Enqueue appends val. tid selects the caller's node heap.
func (q *Queue) Enqueue(e cpu.Env, tid int, val uint64) {
	n := q.heaps[tid].Alloc(qNodeLen)
	cpu.Store64(e, n+qOffVal, val)
	cpu.Store64(e, n+qOffNext, 0)
	StoreP(e, n, magicQueueNode) // seal: one write-back covers the node's line
	DrainP(e)                    // node durable before any link can reach it
	for {
		t := memory.Addr(cpu.Load64(e, q.hdr+qOffTail))
		next := cpu.Load64(e, t+qOffNext)
		if next != 0 {
			// Tail lags; help it along. Plain CAS: the tail is rebuilt by
			// recovery, persisting it would buy nothing.
			e.CompareAndSwap(q.hdr+qOffTail, 8, uint64(t), next)
			continue
		}
		//bbbvet:commit-store n
		if _, ok := CASP(e, t+qOffNext, 0, uint64(n)); ok {
			e.CompareAndSwap(q.hdr+qOffTail, 8, uint64(t), uint64(n))
			return
		}
	}
}

// Dequeue removes and returns the oldest value, or false on empty. The
// head swing publishes an already-durable node (its enqueuer fenced it
// before linking), so the swing's own CASP is the only persist cost.
func (q *Queue) Dequeue(e cpu.Env) (uint64, bool) {
	for {
		h := memory.Addr(cpu.Load64(e, q.hdr+qOffHead))
		next := cpu.Load64(e, h+qOffNext)
		if next == 0 {
			return 0, false
		}
		val := cpu.Load64(e, memory.Addr(next)+qOffVal)
		if _, ok := CASP(e, q.hdr+qOffHead, uint64(h), next); ok {
			return val, true
		}
	}
}

// QueueImage is RecoverQueue's view of a crash image.
type QueueImage struct {
	// Vals holds the surviving values in queue order, head first.
	Vals []uint64
	// Tail is the rebuilt tail: the last reachable node.
	Tail memory.Addr
}

// RecoverQueue walks the durable image as post-crash recovery would: from
// the head cell along next links, demanding a valid magic on every
// reachable node — the durable-reachable-implies-durable-valid contract
// the enqueue discipline maintains. The stored tail cell is validated only
// as "points at a sealed node", never trusted for position.
func RecoverQueue(mem *memory.Memory, hdr memory.Addr) (QueueImage, error) {
	var img QueueImage
	head := memory.Addr(peek(mem, hdr+qOffHead))
	if head == 0 {
		return img, fmt.Errorf("pds/queue: head cell empty")
	}
	seen := map[memory.Addr]bool{}
	cur := head
	for {
		if seen[cur] {
			return img, fmt.Errorf("pds/queue: cycle through node %#x", cur)
		}
		seen[cur] = true
		if m := peek(mem, cur); m != magicQueueNode {
			return img, fmt.Errorf("pds/queue: node %#x reachable but not sealed (magic %#x)", cur, m)
		}
		if cur != head {
			img.Vals = append(img.Vals, peek(mem, cur+qOffVal))
		}
		next := memory.Addr(peek(mem, cur+qOffNext))
		if next == 0 {
			img.Tail = cur
			break
		}
		cur = next
	}
	if t := memory.Addr(peek(mem, hdr+qOffTail)); t != 0 {
		if m := peek(mem, t); m != magicQueueNode {
			return img, fmt.Errorf("pds/queue: tail cell %#x points at unsealed line (magic %#x)", t, m)
		}
	}
	return img, nil
}

// peek reads a little-endian uint64 from the durable image.
func peek(mem *memory.Memory, a memory.Addr) uint64 {
	b := mem.Peek(a, 8)
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}
