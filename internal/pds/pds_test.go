package pds_test

import (
	"reflect"
	"testing"

	"bbb/internal/cpu"
	"bbb/internal/memory"
	"bbb/internal/palloc"
	"bbb/internal/pds"
	"bbb/internal/persistency"
	"bbb/internal/system"
	"bbb/internal/workload"
)

func testConfig(s persistency.Scheme) system.Config {
	cfg := system.DefaultConfig(s)
	cfg.Hierarchy.L1Size = 8 * 1024
	cfg.Hierarchy.L2Size = 64 * 1024
	return cfg
}

func testParams(threads, ops int) workload.Params {
	p := workload.DefaultParams()
	p.Threads = threads
	p.OpsPerThread = ops
	return p
}

var pdsWorkloads = []string{"pds/queue", "pds/hashmap", "pds/hashresize", "pds/skiplist"}

// TestWorkloadsCompleteAndRecover runs each pds workload to completion
// under a persist-everything scheme, a battery scheme and the epoch
// scheme, then applies its own recovery checker to the final image — the
// clean-exit half of the durable-linearizability contract (the crash half
// is crash_test.go).
func TestWorkloadsCompleteAndRecover(t *testing.T) {
	for _, name := range pdsWorkloads {
		for _, s := range []persistency.Scheme{persistency.PMEM, persistency.BBB, persistency.BEP} {
			t.Run(name+"/"+s.String(), func(t *testing.T) {
				w, err := workload.ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				sys, progs := workload.Build(w, s, testConfig(s), testParams(3, 40))
				defer sys.Shutdown()
				sys.Run(progs)
				sys.Crash() // flush-on-fail: settle the durable image
				if err := w.Check(sys.Mem); err != nil {
					t.Fatalf("recovery check after clean run: %v", err)
				}
			})
		}
	}
}

// TestRunDeterministic pins that a pds workload run is a pure function of
// its parameters: two fresh machines produce identical Results.
func TestRunDeterministic(t *testing.T) {
	run := func() system.Result {
		w, err := workload.ByName("pds/skiplist")
		if err != nil {
			t.Fatal(err)
		}
		sys, progs := workload.Build(w, persistency.PMEM, testConfig(persistency.PMEM), testParams(3, 30))
		defer sys.Shutdown()
		return sys.Run(progs)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs diverge:\n%+v\n%+v", a, b)
	}
}

// newHarness builds a one-core machine plus an arena for direct structure
// tests.
func newHarness(t *testing.T, s persistency.Scheme, threads int) (*system.System, *palloc.Arena) {
	t.Helper()
	cfg := testConfig(s)
	cfg.Scheme = s
	cfg.Cores = threads
	cfg.Hierarchy.Cores = threads
	sys := system.New(cfg)
	return sys, palloc.FromLayout(cfg.Layout)
}

// TestQueueSemantics drives Enqueue/Dequeue directly and validates FIFO
// order plus the recovered image.
func TestQueueSemantics(t *testing.T) {
	sys, arena := newHarness(t, persistency.PMEM, 1)
	defer sys.Shutdown()
	q := pds.NewQueue(sys.Mem, arena, 1, 64)
	var got []uint64
	var emptyAtStart, emptyAtEnd bool
	sys.Run([]system.Program{func(e cpu.Env) {
		_, ok := q.Dequeue(e)
		emptyAtStart = !ok
		for i := uint64(1); i <= 10; i++ {
			q.Enqueue(e, 0, i*i)
		}
		for {
			v, ok := q.Dequeue(e)
			if !ok {
				break
			}
			got = append(got, v)
		}
		_, ok = q.Dequeue(e)
		emptyAtEnd = !ok
	}})
	sys.Crash()
	if !emptyAtStart || !emptyAtEnd {
		t.Fatalf("empty-queue dequeues: start=%v end=%v, want true,true", emptyAtStart, emptyAtEnd)
	}
	if len(got) != 10 {
		t.Fatalf("dequeued %d values, want 10", len(got))
	}
	for i, v := range got {
		if want := uint64(i+1) * uint64(i+1); v != want {
			t.Fatalf("got[%d] = %d, want %d (FIFO order broken)", i, v, want)
		}
	}
	img, err := pds.RecoverQueue(sys.Mem, q.Base())
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Vals) != 0 {
		t.Fatalf("drained queue recovers %d values, want 0", len(img.Vals))
	}
}

// TestRecoverQueueRejectsUnsealedNode pins the checker's teeth: corrupt a
// reachable node's seal and recovery must fail.
func TestRecoverQueueRejectsUnsealedNode(t *testing.T) {
	sys, arena := newHarness(t, persistency.PMEM, 1)
	defer sys.Shutdown()
	q := pds.NewQueue(sys.Mem, arena, 1, 8)
	var node memory.Addr
	sys.Run([]system.Program{func(e cpu.Env) {
		q.Enqueue(e, 0, 7)
	}})
	sys.Crash()
	img, err := pds.RecoverQueue(sys.Mem, q.Base())
	if err != nil || len(img.Vals) != 1 {
		t.Fatalf("pre-corruption recovery: img=%v err=%v", img, err)
	}
	node = img.Tail
	sys.Mem.Poke64(node, 0xDEAD)
	if _, err := pds.RecoverQueue(sys.Mem, q.Base()); err == nil {
		t.Fatal("recovery accepted an unsealed reachable node")
	}
}

// TestMapSemantics drives Put/Get/Delete/Resize directly.
func TestMapSemantics(t *testing.T) {
	sys, arena := newHarness(t, persistency.PMEM, 1)
	defer sys.Shutdown()
	m := pds.NewMap(sys.Mem, arena, 1, 512, 2)
	const n = 24
	var missing, wrongVal, deletedVisible int
	sys.Run([]system.Program{func(e cpu.Env) {
		for i := uint64(0); i < n; i++ {
			m.Put(e, 0, i, i+100)
			if m.LoadFactor(e) > 3 {
				m.Resize(e, 0)
			}
		}
		m.Put(e, 0, 3, 42) // in-place update
		m.Delete(e, 5)
		for i := uint64(0); i < n; i++ {
			v, ok := m.Get(e, i)
			switch {
			case i == 5:
				if ok {
					deletedVisible++
				}
			case !ok:
				missing++
			case i == 3 && v != 42, i != 3 && v != i+100:
				wrongVal++
			}
		}
	}})
	sys.Crash()
	if missing != 0 || wrongVal != 0 || deletedVisible != 0 {
		t.Fatalf("missing=%d wrongVal=%d deletedVisible=%d, want all 0", missing, wrongVal, deletedVisible)
	}
	img, err := pds.RecoverMap(sys.Mem, m.Base())
	if err != nil {
		t.Fatal(err)
	}
	if img.Buckets < 4 {
		t.Fatalf("resize never happened: table has %d buckets", img.Buckets)
	}
	if len(img.Live) != n-1 || !img.Dead[5] {
		t.Fatalf("recovered %d live keys (dead[5]=%v), want %d live + key 5 dead", len(img.Live), img.Dead[5], n-1)
	}
	if img.Live[3] != 42 {
		t.Fatalf("recovered key 3 = %d, want updated value 42", img.Live[3])
	}
}

// TestListSemantics drives Insert/Get/Scan directly.
func TestListSemantics(t *testing.T) {
	sys, arena := newHarness(t, persistency.PMEM, 1)
	defer sys.Shutdown()
	l := pds.NewList(sys.Mem, arena, 1, 64)
	keys := []uint64{13, 2, 40, 7, 28, 19, 1, 33}
	var scanKeys, scanVals []uint64
	var updated uint64
	sys.Run([]system.Program{func(e cpu.Env) {
		for _, k := range keys {
			l.Insert(e, 0, k, k*2)
		}
		l.Insert(e, 0, 7, 777) // in-place update
		updated, _ = l.Get(e, 7)
		scanKeys, scanVals = l.Scan(e, 10, 4)
	}})
	sys.Crash()
	if updated != 777 {
		t.Fatalf("Get(7) after update = %d, want 777", updated)
	}
	wantScan := []uint64{13, 19, 28, 33}
	if len(scanKeys) != len(wantScan) {
		t.Fatalf("Scan returned %v, want %v", scanKeys, wantScan)
	}
	for i, k := range wantScan {
		if scanKeys[i] != k || scanVals[i] != k*2 {
			t.Fatalf("Scan[%d] = (%d,%d), want (%d,%d)", i, scanKeys[i], scanVals[i], k, k*2)
		}
	}
	img, err := pds.RecoverList(sys.Mem, l.Base())
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Keys) != len(keys) {
		t.Fatalf("recovered %d keys, want %d", len(img.Keys), len(keys))
	}
	for i := 1; i < len(img.Keys); i++ {
		if img.Keys[i] <= img.Keys[i-1] {
			t.Fatalf("recovered chain not sorted at %d: %v", i, img.Keys)
		}
	}
}

// TestHeightDeterministic pins the tower-height function: bounded, full
// range used, and stable (recovery depends on re-deriving it).
func TestHeightDeterministic(t *testing.T) {
	seen := map[int]bool{}
	for k := uint64(0); k < 4096; k++ {
		h := pds.Height(k)
		if h < 1 || h > 4 {
			t.Fatalf("Height(%d) = %d out of [1,4]", k, h)
		}
		if h != pds.Height(k) {
			t.Fatalf("Height(%d) unstable", k)
		}
		seen[h] = true
	}
	for h := 1; h <= 4; h++ {
		if !seen[h] {
			t.Fatalf("height %d never produced over 4096 keys", h)
		}
	}
}
