package pds_test

import (
	"testing"

	"bbb/internal/crashmc"
	"bbb/internal/persistency"
	"bbb/internal/system"
	"bbb/internal/workload"
)

// TestCrashImagesRecoverable model-checks the pds structures: at several
// crash points, every reachable durable image — all legal subsets of the
// in-flight writes surviving — must pass the structure's recovery checker.
// This is the claim the persistence-tag discipline exists for: whatever a
// crash leaves behind, recovery sees sealed nodes and per-producer
// contiguous prefixes. One scheme per persistency model class (relaxed /
// strict / epoch) keeps the campaign short; the litmus conformance gate
// covers the scheme × model matrix itself.
func TestCrashImagesRecoverable(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-image enumeration is minutes-scale; run without -short")
	}
	for _, name := range []string{"pds/queue", "pds/hashmap", "pds/hashresize", "pds/skiplist"} {
		for _, s := range []persistency.Scheme{persistency.PMEM, persistency.BBB, persistency.BEP} {
			t.Run(name+"/"+s.String(), func(t *testing.T) {
				t.Parallel()
				w, err := workload.ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				p := workload.DefaultParams()
				p.Threads = 2
				p.OpsPerThread = 8
				rep := crashmc.Config{
					Workload:   w,
					Scheme:     s,
					System:     system.DefaultConfig(s),
					Params:     p,
					FirstCrash: 2000,
					Step:       6000,
					Points:     4,
					Parallel:   2,
				}.Run()
				if rep.TotalViolating != 0 {
					msg := "no witness"
					if wit := rep.FirstWitness(); wit != nil {
						msg = wit.Err
					}
					t.Fatalf("%d of %d reachable images violate recovery (%d sets explored): %s",
						rep.TotalViolating, rep.TotalDistinct, rep.TotalSets, msg)
				}
				if rep.TotalSets == 0 {
					t.Fatal("campaign explored nothing")
				}
			})
		}
	}
}
