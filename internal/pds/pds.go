// Package pds is the persistent data-structure library tier: a FliT-style
// persistence-tagged memory API plus durably-linearizable structures built
// on it (an MSQ persistent queue, a persistent hash map and a persistent
// skiplist).
//
// The paper's pitch is that battery-backed buffers make persistent
// programming simple because ordinary stores are durable; FliT's pitch is
// that the flush/fence choreography other schemes need belongs in a
// *library*, not in every structure. pds combines the two: structure code
// is written once against the tagged primitives below, and the active
// scheme's cpu.Env lowers each tag to the minimal instruction set it
// needs:
//
//	primitive   PMEM                BEP            BBB / eADR / NVCache
//	---------   -----------------   ------------   --------------------
//	StoreP      store; clwb         store          store
//	LoadP       load                load           load
//	CASP        cas; clwb; sfence   cas; epoch     cas
//	FlushP      clwb                nothing        nothing
//	DrainP      sfence              epoch mark     nothing
//
// (The lowering is Env's: Flush no-ops unless the scheme has
// ExplicitPersist, Fence no-ops unless ExplicitPersist or EpochMode — so
// one body serves every scheme, and under the battery schemes the entire
// discipline evaporates, which is the paper's Figure 2/3 argument made
// reusable.)
//
// The structures follow one ordering discipline, which cmd/bbbvet's
// persistlint pass verifies automatically (the primitives are persistency
// intrinsics to it, like Store64 — no suppressions anywhere in this
// package):
//
//  1. Initialize a node with plain stores, seal it with StoreP of its
//     magic word (one write-back covers the node's single line), and
//     DrainP before any pointer can reach it.
//  2. Publish with CASP carrying a `//bbbvet:commit-store` annotation:
//     the CAS is the linearization point, and its trailing flush+fence
//     make the operation durable before it returns (durable
//     linearizability).
//  3. Index state a recovery walk can rebuild (the queue's tail) is
//     written with plain CAS — FliT persists no index state, and neither
//     do we.
//
// Because every publish is fence-preceded, observing a pointer implies its
// target's *content* is already durable (an sfence retires only after its
// clwbs complete, and the publishing store issues after the sfence), so
// LoadP needs no flush-on-read: durable-reachable implies durable-valid,
// by induction over publishes. That is why the recovery checkers in
// recover.go can demand valid magic on everything they can reach.
package pds

import (
	"bbb/internal/cpu"
	"bbb/internal/memory"
)

// Magic words sealing each pds object kind. A recovery walk treats a
// missing or foreign magic as "this line never persisted".
const (
	magicQueueNode = 0xB1B0_0011
	magicMapRoot   = 0xB1B0_0012
	magicMapTable  = 0xB1B0_0013
	magicMapNode   = 0xB1B0_0014
	magicListHead  = 0xB1B0_0015
	magicListNode  = 0xB1B0_0016
)

// Ref names a cell in the persistent heap.
type Ref = memory.Addr

// Cell is one 8-byte persistence-tagged cell: the user-facing unit of the
// tagged API for singleton state (roots, flags). Structure code uses the
// free-function forms on computed addresses.
type Cell struct{ Addr Ref }

// StoreP writes v and tags it persistent (write-back emitted, fence left
// to the caller's DrainP).
func (c Cell) StoreP(e cpu.Env, v uint64) { StoreP(e, c.Addr, v) }

// LoadP reads the cell through the tagged-load path.
func (c Cell) LoadP(e cpu.Env) uint64 { return LoadP(e, c.Addr) }

// CASP atomically publishes new if the cell holds old, durably: the swap
// is flushed and fenced before CASP returns.
func (c Cell) CASP(e cpu.Env, old, new uint64) (uint64, bool) {
	return CASP(e, c.Addr, old, new)
}

// StoreP is the persistence-tagged store: the store plus the write-back of
// its line. It leaves the line flushed-but-unfenced; the operation's
// DrainP (or a following CASP) makes it durable. Under battery schemes the
// write-back lowers to nothing.
func StoreP(e cpu.Env, addr Ref, v uint64) {
	cpu.Store64(e, addr, v)
	e.Flush(addr)
}

// LoadP is the persistence-tagged load. It lowers to a plain load under
// every scheme: pds publishes only behind fences, so a loaded pointer's
// target content is already durable (see the package comment). The tag
// keeps reads of persistent cells on one auditable path.
func LoadP(e cpu.Env, addr Ref) uint64 {
	return cpu.Load64(e, addr)
}

// CASP is the persistence-tagged compare-and-swap: the linearization point
// of every pds publish. A successful swap is written back and fenced
// before CASP returns, so the operation it completes is durable by return
// time — durable linearizability under PMEM at the cost of one clwb and
// one sfence, and for free under the battery schemes.
func CASP(e cpu.Env, addr Ref, old, new uint64) (uint64, bool) {
	prev, ok := e.CompareAndSwap(addr, 8, old, new)
	e.Flush(addr)
	e.Fence()
	return prev, ok
}

// FlushP writes addr's line back toward the persistence domain (clwb under
// PMEM, nothing elsewhere). Pair with DrainP.
func FlushP(e cpu.Env, addr Ref) { e.Flush(addr) }

// DrainP completes every outstanding write-back: sfence under PMEM, an
// epoch mark under BEP, nothing under the battery schemes. One DrainP can
// commit a whole batch of StoreP'd lines — the service tier's batching
// lever.
func DrainP(e cpu.Env) { e.Fence() }

// hashKey is the multiplicative hash shared by the map and the skiplist's
// deterministic tower heights (Fibonacci hashing constant).
func hashKey(key uint64) uint64 {
	return key * 0x9E3779B97F4A7C15
}
