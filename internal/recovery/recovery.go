// Package recovery runs crash-injection campaigns: a workload is executed
// repeatedly, crashed at a sweep of cycles, flush-on-fail is applied for the
// scheme under test, and the workload's recovery checker walks the durable
// image exactly as post-crash recovery code would.
//
// This mechanizes the paper's §II-A argument: the Figure 2 code (no
// barriers) is unrecoverable under the PMEM baseline at some crash points,
// the Figure 3 code (barriers) is always recoverable, and under BBB the
// barrier-free code is always recoverable — persist order and program order
// coincide because the bbPB is the point of persistency.
package recovery

import (
	"fmt"

	"bbb/internal/engine"
	"bbb/internal/persistency"
	"bbb/internal/sweep"
	"bbb/internal/system"
	"bbb/internal/workload"
)

// CampaignConfig describes one crash-injection sweep.
type CampaignConfig struct {
	Workload workload.Workload
	Scheme   persistency.Scheme
	System   system.Config
	Params   workload.Params
	// Crash points: FirstCrash, then every Step cycles, Points times.
	FirstCrash engine.Cycle
	Step       engine.Cycle
	Points     int
	// Parallel bounds how many crash points run concurrently (each on a
	// fresh machine and workload instance). <= 1 is serial; the report is
	// identical either way. Workloads not in the registry (no ByName
	// lookup) always run serially, since points would otherwise share one
	// instance.
	Parallel int
}

// Outcome is one crash point's result.
type Outcome struct {
	CrashCycle engine.Cycle
	Finished   bool // the workload completed before the crash point
	Drain      persistency.DrainReport
	Err        error // nil if the image was consistent
}

// Report aggregates a campaign.
type Report struct {
	Scheme       persistency.Scheme
	Workload     string
	Barriers     bool
	Outcomes     []Outcome
	Inconsistent int
	// DrainedLinesMax is the largest flush-on-fail payload observed, the
	// quantity the battery must be provisioned for.
	DrainedLinesMax int
}

// Run executes the campaign. Every crash point is an independent run from a
// fresh image, so failures cannot mask each other.
func (c CampaignConfig) Run() Report {
	if c.Points <= 0 {
		panic("recovery: Points must be positive")
	}
	rep := Report{
		Scheme:   c.Scheme,
		Workload: c.Workload.Name(),
		Barriers: !c.Params.NoBarriers,
	}
	// Setup and Programs mutate workload-instance state, so concurrent
	// points each resolve a private instance by name. A workload outside
	// the registry cannot be re-resolved and forces a serial sweep.
	workers := c.Parallel
	if workers > 1 {
		if _, err := workload.ByName(c.Workload.Name()); err != nil {
			workers = 1
		}
	}
	rep.Outcomes = sweep.Map(workers, c.Points, func(i int) Outcome {
		w := c.Workload
		if workers > 1 {
			w, _ = workload.ByName(c.Workload.Name())
		}
		crashAt := c.FirstCrash + engine.Cycle(i)*c.Step
		sys, drain, finished := workload.RunToCrash(w, c.Scheme, c.System, c.Params, crashAt)
		out := Outcome{CrashCycle: crashAt, Finished: finished, Drain: drain}
		if err := w.Check(sys.Mem); err != nil {
			out.Err = err
		}
		return out
	})
	for _, out := range rep.Outcomes {
		if out.Err != nil {
			rep.Inconsistent++
		}
		if n := out.Drain.Lines(); n > rep.DrainedLinesMax {
			rep.DrainedLinesMax = n
		}
	}
	return rep
}

// GuaranteesConsistency reports whether a scheme promises a consistent
// durable image for the given program variant: the battery-complete
// schemes (eADR, BBB, BBBProc, NVCache — the store buffer already sits
// inside the persistence domain) need no barriers at all, while PMEM and
// BEP only guarantee recovery when the program's barriers are present.
// An inconsistent campaign under a guaranteeing combination is a
// simulator bug, not an expected Figure 2 outcome.
func GuaranteesConsistency(s persistency.Scheme, barriers bool) bool {
	return persistency.TraitsOf(s).BatteryBackedSB || barriers
}

// String summarizes the report for CLIs.
func (r Report) String() string {
	mode := "with barriers"
	if !r.Barriers {
		mode = "NO barriers"
	}
	return fmt.Sprintf("%-10s %-9s %-13s crash points: %3d  inconsistent: %3d  max drained lines: %d",
		r.Workload, r.Scheme, mode, len(r.Outcomes), r.Inconsistent, r.DrainedLinesMax)
}

// FirstFailure returns the first inconsistent outcome, if any.
func (r Report) FirstFailure() (Outcome, bool) {
	for _, o := range r.Outcomes {
		if o.Err != nil {
			return o, true
		}
	}
	return Outcome{}, false
}
