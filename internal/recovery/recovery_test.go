package recovery

import (
	"testing"

	"bbb/internal/persistency"
	"bbb/internal/system"
	"bbb/internal/workload"
)

func campaignConfig(w workload.Workload, s persistency.Scheme, noBarriers bool) CampaignConfig {
	cfg := system.DefaultConfig(s)
	cfg.Hierarchy.L1Size = 1024
	cfg.Hierarchy.L2Size = 4096 // tiny caches reorder persists aggressively
	p := workload.DefaultParams()
	p.Threads = 4
	p.OpsPerThread = 300
	p.NoBarriers = noBarriers
	return CampaignConfig{
		Workload:   w,
		Scheme:     s,
		System:     cfg,
		Params:     p,
		FirstCrash: 5_000,
		Step:       7_000,
		Points:     12,
	}
}

func TestBBBNoBarriersAlwaysConsistent(t *testing.T) {
	rep := campaignConfig(workload.NewLinkedList(), persistency.BBB, true).Run()
	if rep.Inconsistent != 0 {
		o, _ := rep.FirstFailure()
		t.Fatalf("BBB without barriers inconsistent at cycle %d: %v", o.CrashCycle, o.Err)
	}
}

func TestEADRNoBarriersAlwaysConsistent(t *testing.T) {
	rep := campaignConfig(workload.NewLinkedList(), persistency.EADR, true).Run()
	if rep.Inconsistent != 0 {
		o, _ := rep.FirstFailure()
		t.Fatalf("eADR without barriers inconsistent at cycle %d: %v", o.CrashCycle, o.Err)
	}
}

func TestPMEMWithBarriersAlwaysConsistent(t *testing.T) {
	rep := campaignConfig(workload.NewLinkedList(), persistency.PMEM, false).Run()
	if rep.Inconsistent != 0 {
		o, _ := rep.FirstFailure()
		t.Fatalf("PMEM with barriers (Figure 3) inconsistent at cycle %d: %v", o.CrashCycle, o.Err)
	}
}

func TestPMEMNoBarriersInconsistent(t *testing.T) {
	rep := campaignConfig(workload.NewLinkedList(), persistency.PMEM, true).Run()
	if rep.Inconsistent == 0 {
		t.Fatal("PMEM without barriers (Figure 2) survived all crash points; the bug should reproduce")
	}
	t.Log(rep.String())
}

func TestBEPWithEpochBarriersConsistent(t *testing.T) {
	// Buffered epoch persistency with the Figure 3 barriers (as epoch
	// markers): every crash leaves an epoch prefix, which keeps the list
	// walkable.
	rep := campaignConfig(workload.NewLinkedList(), persistency.BEP, false).Run()
	if rep.Inconsistent != 0 {
		o, _ := rep.FirstFailure()
		t.Fatalf("BEP with barriers inconsistent at cycle %d: %v", o.CrashCycle, o.Err)
	}
}

func TestBEPNoBarriersEventuallyInconsistent(t *testing.T) {
	// Without epoch markers everything shares one epoch, so same-epoch
	// coalescing lets a later head update persist with an earlier drain
	// slot — the same reordering hazard as Figure 2.
	cc := campaignConfig(workload.NewLinkedList(), persistency.BEP, true)
	cc.Points = 20
	rep := cc.Run()
	if rep.Inconsistent == 0 {
		t.Log("note: BEP without barriers survived this sweep; coalescing reordering is probabilistic")
	} else {
		t.Log(rep.String())
	}
}

func TestNVCacheNoBarriersConsistent(t *testing.T) {
	// NVCache closes the PoV/PoP gap with NVM cells, so barrier-free code
	// recovers, like BBB/eADR.
	rep := campaignConfig(workload.NewLinkedList(), persistency.NVCache, true).Run()
	if rep.Inconsistent != 0 {
		o, _ := rep.FirstFailure()
		t.Fatalf("NVCache inconsistent at cycle %d: %v", o.CrashCycle, o.Err)
	}
}

func TestBBBProcSideAlsoConsistent(t *testing.T) {
	rep := campaignConfig(workload.NewHashmap(), persistency.BBBProc, true).Run()
	if rep.Inconsistent != 0 {
		o, _ := rep.FirstFailure()
		t.Fatalf("BBB proc-side inconsistent at cycle %d: %v", o.CrashCycle, o.Err)
	}
}

func TestDrainBudgetBBBBounded(t *testing.T) {
	// The battery budget: bbPB entries + WPQ + store buffers. With 4 cores,
	// 32-entry bbPBs, a 32-entry WPQ and 32-entry SBs the drain can never
	// exceed 4*32 + 32 + 32 + 4*32 lines (WPQ waiters included).
	cc := campaignConfig(workload.NewHashmap(), persistency.BBB, true)
	rep := cc.Run()
	limit := 4*32 + 32 + 32 + 4*32
	if rep.DrainedLinesMax > limit {
		t.Fatalf("BBB drained %d lines, exceeding the battery budget %d", rep.DrainedLinesMax, limit)
	}
	if rep.DrainedLinesMax == 0 {
		t.Fatal("no crash point drained anything")
	}
}

func TestCrashAtCycleZero(t *testing.T) {
	// A power failure before the first event: the durable image is exactly
	// what Setup wrote, which every checker must accept, and flush-on-fail
	// has nothing to drain.
	for _, s := range []persistency.Scheme{persistency.PMEM, persistency.BBB, persistency.BEP} {
		cc := campaignConfig(workload.NewLinkedList(), s, true)
		cc.FirstCrash = 0
		cc.Points = 1
		rep := cc.Run()
		if rep.Inconsistent != 0 {
			o, _ := rep.FirstFailure()
			t.Errorf("%v: pristine setup image inconsistent: %v", s, o.Err)
		}
		if rep.Outcomes[0].Finished {
			t.Errorf("%v: nothing ran, yet the workload reports finished", s)
		}
		if rep.DrainedLinesMax != 0 {
			t.Errorf("%v: drained %d lines before any event executed", s, rep.DrainedLinesMax)
		}
	}
}

func TestCrashAfterWorkloadFinished(t *testing.T) {
	// The crash point lands after completion: the run finishes, every
	// store has long reached its domain, and the final image checks out.
	for _, s := range []persistency.Scheme{persistency.PMEM, persistency.BBB} {
		cc := campaignConfig(workload.NewLinkedList(), s, s != persistency.PMEM)
		cc.Params.OpsPerThread = 40
		cc.FirstCrash = 50_000_000
		cc.Points = 1
		rep := cc.Run()
		out := rep.Outcomes[0]
		if !out.Finished {
			t.Fatalf("%v: workload did not finish before cycle %d", s, cc.FirstCrash)
		}
		if out.Err != nil {
			t.Errorf("%v: completed run's image inconsistent: %v", s, out.Err)
		}
	}
}

func TestCrashMidForcedDrain(t *testing.T) {
	// Caches far smaller than the working set force LLC evictions of
	// bbPB-owned lines, so crashes land mid-forced-drain. Recovery must
	// still hold, and the flush-on-fail payload must stay within the
	// battery budget (per-core bbPBs + WPQ + waiters + store buffers)
	// while actually exercising the drain path.
	cc := campaignConfig(workload.NewLinkedList(), persistency.BBB, true)
	cc.System.Hierarchy.L1Size = 512
	cc.System.Hierarchy.L2Size = 1024
	cc.Points = 16
	cc.Step = 3_000
	rep := cc.Run()
	if rep.Inconsistent != 0 {
		o, _ := rep.FirstFailure()
		t.Fatalf("BBB inconsistent mid-forced-drain at cycle %d: %v", o.CrashCycle, o.Err)
	}
	budget := 4*32 + 32 + 32 + 4*32
	if rep.DrainedLinesMax > budget {
		t.Fatalf("drained %d lines, exceeding the battery budget %d", rep.DrainedLinesMax, budget)
	}
	if rep.DrainedLinesMax == 0 {
		t.Fatal("no crash point caught in-flight lines; the sweep missed every forced drain")
	}
}

func TestGuaranteesConsistency(t *testing.T) {
	cases := []struct {
		scheme   persistency.Scheme
		barriers bool
		want     bool
	}{
		{persistency.PMEM, true, true},
		{persistency.PMEM, false, false}, // Figure 2
		{persistency.BEP, true, true},
		{persistency.BEP, false, false},
		{persistency.EADR, false, true},
		{persistency.BBB, false, true},
		{persistency.BBBProc, false, true},
		{persistency.NVCache, false, true},
	}
	for _, tc := range cases {
		if got := GuaranteesConsistency(tc.scheme, tc.barriers); got != tc.want {
			t.Errorf("GuaranteesConsistency(%v, barriers=%v) = %v, want %v",
				tc.scheme, tc.barriers, got, tc.want)
		}
	}
}

func TestReportString(t *testing.T) {
	rep := campaignConfig(workload.NewLinkedList(), persistency.BBB, true).Run()
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
	if _, failed := rep.FirstFailure(); failed {
		t.Fatal("unexpected failure present")
	}
}
