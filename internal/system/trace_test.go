package system

import (
	"strings"
	"testing"

	"bbb/internal/persistency"
	"bbb/internal/trace"
)

func TestTracingCapturesBBBLifecycle(t *testing.T) {
	cfg := smallConfig(persistency.BBB)
	cfg.TraceCapacity = 1 << 16
	sys := New(cfg)
	sys.Run(mixedPrograms(sys, 150, 80)) // 4x82 lines > the 256-line L2
	rec := sys.Trace()
	if rec == nil {
		t.Fatal("tracing not enabled")
	}
	evs := rec.Events()
	for _, k := range []trace.Kind{
		trace.KindStoreCommit, trace.KindBufAlloc, trace.KindBufCoalesce,
		trace.KindBufDrain, trace.KindWPQInsert, trace.KindLLCEvict,
	} {
		if len(trace.EventsByKind(evs, k)) == 0 {
			t.Errorf("no %v events traced", k)
		}
	}
	// Sanity: traced drains agree with the drain counter.
	if rec.Emitted == 0 {
		t.Fatal("nothing emitted")
	}
	// Every per-core event must carry a core in range; the filter helpers
	// partition the stream without losing machine-wide (core -1) events.
	total := 0
	for core := -1; core < cfg.Cores; core++ {
		total += len(trace.EventsByCore(evs, core))
	}
	if total != len(evs) {
		t.Errorf("per-core partition covers %d of %d events", total, len(evs))
	}
	var b strings.Builder
	rec.Dump(&b)
	if !strings.Contains(b.String(), "pb-drain") {
		t.Fatal("dump missing drain events")
	}
}

func TestTracingOffByDefault(t *testing.T) {
	sys := New(smallConfig(persistency.BBB))
	sys.Run(counterPrograms(sys, 50))
	if sys.Trace() != nil {
		t.Fatal("tracing should be off by default")
	}
}

func TestTracingPMEMShowsClwbFence(t *testing.T) {
	cfg := smallConfig(persistency.PMEM)
	cfg.TraceCapacity = 1 << 14
	sys := New(cfg)
	sys.Run(mixedPrograms(sys, 50, 30))
	counts := trace.CountKinds(sys.Trace().Events())
	if counts[trace.KindClwb] == 0 || counts[trace.KindFence] == 0 {
		t.Fatalf("PMEM trace missing persist instructions: %v", counts)
	}
	if counts[trace.KindBufAlloc] != 0 {
		t.Fatal("PMEM traced persist-buffer events")
	}
}

func TestTracingBEPShowsEpochs(t *testing.T) {
	cfg := smallConfig(persistency.BEP)
	cfg.TraceCapacity = 1 << 14
	sys := New(cfg)
	sys.Run(mixedPrograms(sys, 50, 30))
	counts := trace.CountKinds(sys.Trace().Events())
	if counts[trace.KindEpochMark] == 0 {
		t.Fatalf("BEP trace missing epoch marks: %v", counts)
	}
}
