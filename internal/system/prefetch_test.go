package system

import (
	"testing"

	"bbb/internal/persistency"
)

// Store prefetching must never weaken the durability guarantee: the
// PoP=PoV property holds with it on, for every gap-closing scheme.
func TestPrefetchPreservesDurability(t *testing.T) {
	for _, s := range []persistency.Scheme{persistency.BBB, persistency.EADR} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			for _, crashAt := range []uint64{4_000, 25_000, 90_000} {
				cfg := smallConfig(s)
				cfg.Core.StorePrefetch = true
				sys := New(cfg)
				logs := make([]*storeLog, cfg.Cores)
				progs := durabilityPrograms(sys, logs, 31)
				sys.RunUntil(crashAt, progs)
				sys.Crash()
				for i, lg := range logs {
					for a, want := range lg.last {
						b := sys.Mem.Peek(a, 8)
						var got uint64
						for j := 7; j >= 0; j-- {
							got = got<<8 | uint64(b[j])
						}
						if got>>8 < want>>8 {
							t.Fatalf("crash@%d core %d line %#x: durable seq %d < observed %d",
								crashAt, i, a, got>>8, want>>8)
						}
					}
				}
			}
		})
	}
}

// Prefetching changes timing, never results: the same workload must leave
// identical architectural state and identical NVMM-write-count ordering
// relationships intact.
func TestPrefetchFunctionallyTransparent(t *testing.T) {
	run := func(prefetch bool) Result {
		cfg := smallConfig(persistency.BBB)
		cfg.Core.StorePrefetch = prefetch
		sys := New(cfg)
		res := sys.Run(mixedPrograms(sys, 150, 60))
		if err := sys.Hier.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return res
	}
	off := run(false)
	on := run(true)
	if off.PersistingStores != on.PersistingStores || off.Stores != on.Stores {
		t.Fatalf("prefetching changed the executed store mix: %d/%d vs %d/%d",
			off.PersistingStores, off.Stores, on.PersistingStores, on.Stores)
	}
	if on.Cycles > off.Cycles {
		t.Logf("note: prefetching slower here (%d vs %d) — contention-bound workload", on.Cycles, off.Cycles)
	}
}
