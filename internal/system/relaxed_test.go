package system

import (
	"testing"

	"bbb/internal/persistency"
)

// The §III-C claim, end to end: under relaxed consistency (out-of-order
// L1D commit) BBB still provides program-order persistency, because the
// battery-backed store buffer is the point of persistency. The same
// durability harness as TestPoPEqualsPoVDurability, with reordering on.
func TestRelaxedConsistencyBBBStillDurable(t *testing.T) {
	for _, s := range []persistency.Scheme{persistency.BBB, persistency.EADR} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			for _, crashAt := range []uint64{3_000, 20_000, 70_000} {
				cfg := smallConfig(s)
				cfg.Core.RelaxedSBDrain = true
				cfg.Core.StorePrefetch = true // maximize reordering pressure
				sys := New(cfg)
				logs := make([]*storeLog, cfg.Cores)
				progs := durabilityPrograms(sys, logs, 77)
				sys.RunUntil(crashAt, progs)
				sys.Crash()
				for i, lg := range logs {
					for a, want := range lg.last {
						b := sys.Mem.Peek(a, 8)
						var got uint64
						for j := 7; j >= 0; j-- {
							got = got<<8 | uint64(b[j])
						}
						if got>>8 < want>>8 {
							t.Fatalf("crash@%d core %d line %#x: durable seq %d < observed %d",
								crashAt, i, a, got>>8, want>>8)
						}
					}
				}
			}
		})
	}
}

// With relaxed commit and an ABLATED SB battery, even BBB loses committed
// stores — the §III-C requirement is load-bearing, not belt-and-braces.
func TestRelaxedConsistencyNeedsSBBattery(t *testing.T) {
	losses := 0
	for _, crashAt := range []uint64{2_000, 6_000, 12_000, 25_000} {
		cfg := smallConfig(persistency.BBB)
		cfg.Core.RelaxedSBDrain = true
		cfg.AblateSBBattery = true
		sys := New(cfg)
		logs := make([]*storeLog, cfg.Cores)
		progs := durabilityPrograms(sys, logs, 77)
		sys.RunUntil(crashAt, progs)
		sys.Crash()
		for _, lg := range logs {
			for a, want := range lg.last {
				b := sys.Mem.Peek(a, 8)
				var got uint64
				for j := 7; j >= 0; j-- {
					got = got<<8 | uint64(b[j])
				}
				if got>>8 < want>>8 {
					losses++
				}
			}
		}
	}
	if losses == 0 {
		t.Fatal("relaxed commit with no SB battery lost nothing; the ablation should bite")
	}
}

// Relaxed commit must stay functionally coherent across cores and keep the
// hierarchy invariants.
func TestRelaxedConsistencyCoherent(t *testing.T) {
	cfg := smallConfig(persistency.BBB)
	cfg.Core.RelaxedSBDrain = true
	sys := New(cfg)
	res := sys.Run(mixedPrograms(sys, 200, 60))
	if res.PersistingStores == 0 {
		t.Fatal("no persisting stores")
	}
	if err := sys.Hier.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
