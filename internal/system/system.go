// Package system wires the full simulated machine of Table III — cores,
// store buffers, L1Ds, shared L2, DRAM and NVMM controllers, and the
// selected persistency scheme — and runs workloads on it.
package system

import (
	"fmt"

	"bbb/internal/bbpb"
	"bbb/internal/coherence"
	"bbb/internal/cpu"
	"bbb/internal/engine"
	"bbb/internal/memctrl"
	"bbb/internal/memory"
	"bbb/internal/persistency"
	"bbb/internal/stats"
	"bbb/internal/trace"
)

// Config describes one simulation.
type Config struct {
	Scheme    persistency.Scheme
	Cores     int
	Hierarchy coherence.Config
	Core      cpu.Config
	BBPB      bbpb.Config
	DRAM      memctrl.Config
	NVMM      memctrl.Config
	Layout    memory.Layout
	// TrackWear enables per-line NVMM write accounting (endurance
	// distributions, not just the Fig. 7b totals).
	TrackWear bool
	// TraceCapacity, when positive, retains the last N microarchitectural
	// events for post-run inspection (System.Trace).
	TraceCapacity int
	// TraceFull retains the entire event stream (unbounded memory; meant
	// for export and offline analysis). Overrides TraceCapacity.
	TraceFull bool
	// TraceSink, when non-nil, additionally streams every event into the
	// given sink (e.g. a JSON-lines file) as the run executes.
	TraceSink trace.Sink
	// AblateSBBattery removes the store buffer from the persistence domain
	// even for schemes that battery-back it — the §III-C ablation showing
	// why BBB (and eADR) must cover the SB to guarantee program-order
	// persistency for committed stores.
	AblateSBBattery bool
}

// DefaultConfig is the paper's Table III machine running the given scheme.
func DefaultConfig(s persistency.Scheme) Config {
	h := coherence.DefaultConfig()
	return Config{
		Scheme:    s,
		Cores:     h.Cores,
		Hierarchy: h,
		Core:      cpu.DefaultConfig(),
		BBPB:      bbpb.DefaultConfig(),
		DRAM:      memctrl.DefaultDRAM(),
		NVMM:      memctrl.DefaultNVMM(),
		Layout:    memory.DefaultLayout(),
	}
}

// System is a fully wired machine.
type System struct {
	Cfg   Config
	Eng   *engine.Engine
	Mem   *memory.Memory
	DRAM  *memctrl.Controller
	NVMM  *memctrl.Controller
	Hier  *coherence.Hierarchy
	Model *persistency.Model
	Cores []*cpu.Core
	// Prov tracks durability provenance when tracing is enabled.
	Prov *trace.Provenance
}

// New builds a machine from cfg.
func New(cfg Config) *System {
	return NewOnImage(cfg, nil)
}

// NewOnImage builds a machine over an existing durable image — a reboot
// after a crash: caches, buffers, WPQ and store buffers start empty, and
// the NVMM holds whatever the previous machine's flush-on-fail left. A nil
// image starts from zeroed memory.
func NewOnImage(cfg Config, img *memory.Memory) *System {
	if cfg.Cores <= 0 {
		panic("system: Cores must be positive")
	}
	cfg.Hierarchy.Cores = cfg.Cores
	eng := engine.New()
	var prov *trace.Provenance
	if cfg.TraceFull {
		eng.Trace = trace.NewFull()
	} else if cfg.TraceCapacity > 0 {
		eng.Trace = trace.New(cfg.TraceCapacity)
	}
	if eng.Trace != nil {
		// Tracing brings the rest of the observability stack with it:
		// histogram/gauge metrics and the durability-provenance tracker.
		eng.Metrics = stats.NewMetrics()
		prov = trace.NewProvenance(DurabilityPointFor(cfg.Scheme), eng.Metrics)
		eng.Trace.Attach(prov)
		if cfg.TraceSink != nil {
			eng.Trace.Attach(cfg.TraceSink)
		}
	}
	mem := img
	if mem == nil {
		mem = memory.New(cfg.Layout)
	}
	if cfg.TrackWear {
		mem.EnableWearTracking()
	}
	dram := memctrl.New(cfg.DRAM, eng, mem)
	nvmm := memctrl.New(cfg.NVMM, eng, mem)
	model := persistency.NewModel(cfg.Scheme, cfg.Cores, cfg.BBPB, eng, nvmm)
	cfg.Hierarchy = model.AdjustHierarchy(cfg.Hierarchy)
	hier := coherence.New(cfg.Hierarchy, eng, cfg.Layout, dram, nvmm, model.Policy())
	s := &System{
		Cfg:   cfg,
		Eng:   eng,
		Mem:   mem,
		DRAM:  dram,
		NVMM:  nvmm,
		Hier:  hier,
		Model: model,
		Prov:  prov,
	}
	ccfg := model.CoreConfig(cfg.Core)
	if cfg.AblateSBBattery {
		ccfg.BatteryBackedSB = false
	}
	for i := 0; i < cfg.Cores; i++ {
		s.Cores = append(s.Cores, cpu.New(i, ccfg, eng, hier))
	}
	return s
}

// DurabilityPointFor maps a scheme to the trace event that marks a
// committed store durable (Table I's PoP location, in provenance terms).
func DurabilityPointFor(s persistency.Scheme) trace.DurabilityPoint {
	switch s {
	case persistency.BBB, persistency.BBBProc:
		return trace.DurableAtBufAlloc
	case persistency.EADR, persistency.NVCache:
		return trace.DurableAtCommit
	default: // PMEM, BEP: the ADR WPQ is the persist point.
		return trace.DurableAtWPQ
	}
}

// Program is one thread's workload body, executed on its own goroutine
// against the core's Env.
type Program func(cpu.Env)

// Result summarizes one completed run.
type Result struct {
	Scheme persistency.Scheme
	// Cycles is the makespan: the cycle the last core finished.
	Cycles engine.Cycle
	// NVMMWrites counts line writes that reached the NVMM medium,
	// including the final WPQ flush (the endurance metric of Fig. 7b).
	NVMMWrites uint64
	// Rejections and Drains are the bbPB counters of Fig. 8 (zero for
	// schemes without persist buffers).
	Rejections uint64
	Drains     uint64
	// ForcedDrains counts LLC-inclusion forced drains.
	ForcedDrains uint64
	// SkippedWritebacks counts dirty persistent LLC victims dropped
	// without a memory write (§III-E's endurance optimization).
	SkippedWritebacks uint64
	// Stores and PersistingStores give the Table IV store mix.
	Stores           uint64
	PersistingStores uint64
	// Loads counts executed loads.
	Loads uint64
	// StallCycles sums program stall time on full store buffers.
	StallCycles engine.Cycle
	// DirtyFraction is the fraction of valid cache lines dirty at the end
	// of the run (the paper's §V-A eADR estimate uses 44.9%).
	DirtyFraction float64
	// Wear is the per-line NVMM write distribution (zero unless
	// Config.TrackWear was set).
	Wear memory.WearStats
	// Counters aggregates every component's raw counters.
	Counters *stats.Counters
	// Metrics holds the run's histograms and gauge timelines (nil unless
	// tracing was enabled).
	Metrics *stats.Metrics
}

// DurabilitySummary renders the visibility-to-durability gap histogram
// (persist.vis_to_dur_gap) as a one-line summary, or "(tracing off)".
func (r Result) DurabilitySummary() string {
	if r.Metrics == nil {
		return "(tracing off)"
	}
	h := r.Metrics.Hist("persist.vis_to_dur_gap")
	if h == nil {
		return "(no persisting stores observed)"
	}
	return fmt.Sprintf("%s vis->dur gap: %s", r.Scheme, h.Summary())
}

// Run starts one program per core and runs the machine until every program
// completes, then finalizes the WPQ so NVMM write counts are comparable
// across schemes. programs must have exactly one entry per core.
func (s *System) Run(programs []Program) Result {
	if len(programs) != s.Cfg.Cores {
		panic(fmt.Sprintf("system: %d programs for %d cores", len(programs), s.Cfg.Cores))
	}
	for i, p := range programs {
		s.Cores[i].Start(p)
	}
	s.Eng.Run()
	for i, c := range s.Cores {
		if !c.Done() {
			panic(fmt.Sprintf("system: core %d never finished (deadlock?)", i))
		}
	}
	s.Shutdown()
	// Flush the WPQ so every scheme's durable write count is measured at
	// the same architectural point.
	s.NVMM.CrashDrain()
	return s.result()
}

// RunUntil runs the machine until the given cycle (or completion) and
// reports whether every program finished. Used by crash injection.
func (s *System) RunUntil(limit engine.Cycle, programs []Program) bool {
	if len(programs) != s.Cfg.Cores {
		panic(fmt.Sprintf("system: %d programs for %d cores", len(programs), s.Cfg.Cores))
	}
	for i, p := range programs {
		s.Cores[i].Start(p)
	}
	s.Eng.RunUntil(limit)
	done := true
	for _, c := range s.Cores {
		if !c.Done() {
			done = false
		}
	}
	return done
}

// Crash stops the machine and performs the scheme's flush-on-fail drain,
// leaving the NVMM image exactly as post-crash recovery code would find it.
func (s *System) Crash() persistency.DrainReport {
	s.Shutdown()
	return s.Model.CrashDrain(s.Cores, s.Hier, s.NVMM, s.Mem)
}

// Shutdown abandons all workload goroutines; safe to call more than once.
func (s *System) Shutdown() {
	for _, c := range s.Cores {
		c.Stop()
	}
}

func (s *System) result() Result {
	r := Result{Scheme: s.Cfg.Scheme, Counters: stats.NewCounters()}
	for _, c := range s.Cores {
		if c.Done() && c.FinishedAt() > r.Cycles {
			r.Cycles = c.FinishedAt()
		}
		r.StallCycles += c.StallCycles
		r.Stores += c.Stats.Get("core.stores")
		r.Loads += c.Stats.Get("core.loads")
		r.Counters.Merge(c.Stats)
	}
	r.NVMMWrites = s.Mem.Writes[memory.RegionNVMM]
	r.PersistingStores = s.Hier.Stats.Get("store.persisting")
	r.Rejections = s.Hier.Stats.Get("store.persist_rejected")
	r.Drains = s.Model.Drains()
	r.SkippedWritebacks = s.Hier.Stats.Get("l2.writebacks_skipped")
	for _, c := range s.Model.BufferCounters() {
		r.ForcedDrains += c.Get("bbpb.forced_drains")
		r.Counters.Merge(c)
	}
	r.Counters.Merge(s.Hier.Stats)
	r.Counters.Merge(s.DRAM.Stats)
	r.Counters.Merge(s.NVMM.Stats)
	valid, dirty := s.Hier.DirtyStats()
	if valid > 0 {
		r.DirtyFraction = float64(dirty) / float64(valid)
	}
	r.Wear = s.Mem.Wear()
	r.Metrics = s.Eng.Metrics
	if s.Prov != nil {
		r.Counters.Add("persist.resolved_stores", s.Prov.Resolved())
		r.Counters.Add("persist.unresolved_stores", s.Prov.Unresolved())
	}
	return r
}

// ResultAfterCrash collects counters without requiring completion.
func (s *System) ResultAfterCrash() Result { return s.result() }

// Trace returns the event recorder, or nil when tracing is off.
func (s *System) Trace() *trace.Recorder { return s.Eng.Trace }

// Metrics returns the histogram/gauge registry, or nil when tracing is off.
func (s *System) Metrics() *stats.Metrics { return s.Eng.Metrics }
