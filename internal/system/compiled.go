package system

import (
	"fmt"

	"bbb/internal/engine"
	"bbb/internal/ir"
)

// CompiledProgram is one thread's workload body in compiled form: an ir.Prog
// the core interprets inline from the event kernel instead of running a
// goroutine. RunCompiled produces byte-identical Results to Run over the
// goroutine twins — that equivalence is gated by `make ir-equiv`.
type CompiledProgram = *ir.Prog

// RunCompiled is Run over compiled programs: one per core, run to
// completion, WPQ finalized.
func (s *System) RunCompiled(programs []CompiledProgram) Result {
	if len(programs) != s.Cfg.Cores {
		panic(fmt.Sprintf("system: %d compiled programs for %d cores", len(programs), s.Cfg.Cores))
	}
	for i, p := range programs {
		s.Cores[i].StartCompiled(p)
	}
	s.Eng.Run()
	for i, c := range s.Cores {
		if !c.Done() {
			panic(fmt.Sprintf("system: core %d never finished (deadlock?)", i))
		}
	}
	s.Shutdown()
	// Flush the WPQ so every scheme's durable write count is measured at
	// the same architectural point.
	s.NVMM.CrashDrain()
	return s.result()
}

// RunUntilCompiled is RunUntil over compiled programs; used by crash
// injection on the compiled path.
func (s *System) RunUntilCompiled(limit engine.Cycle, programs []CompiledProgram) bool {
	if len(programs) != s.Cfg.Cores {
		panic(fmt.Sprintf("system: %d compiled programs for %d cores", len(programs), s.Cfg.Cores))
	}
	for i, p := range programs {
		s.Cores[i].StartCompiled(p)
	}
	s.Eng.RunUntil(limit)
	done := true
	for _, c := range s.Cores {
		if !c.Done() {
			done = false
		}
	}
	return done
}
