package system

import (
	"math/rand"
	"testing"

	"bbb/internal/cpu"
	"bbb/internal/memory"
	"bbb/internal/persistency"
)

// The defining property of closing the PoV/PoP gap (§I): the moment a store
// completes from the program's perspective it is durable. So at ANY crash
// point, for every line a core wrote, the durable image must hold the last
// value whose Store call returned (or a newer one already committed).
//
// This must hold for BBB (both organizations), eADR and NVCache — their
// persistence domains cover the store buffer and everything below — and is
// expected to fail for the PMEM baseline without barriers.

type storeLog struct {
	last map[memory.Addr]uint64 // last store that returned, per address
}

func durabilityPrograms(sys *System, logs []*storeLog, rngSeed int64) []Program {
	base := sys.Cfg.Layout.PersistentBase
	progs := make([]Program, sys.Cfg.Cores)
	for i := range progs {
		i := i
		logs[i] = &storeLog{last: map[memory.Addr]uint64{}}
		progs[i] = func(e cpu.Env) {
			r := rand.New(rand.NewSource(rngSeed + int64(i)))
			// Private line set per core: replay order is unambiguous.
			for step := uint64(1); step <= 4000; step++ {
				line := uint64(r.Intn(24))
				a := base + memory.Addr(uint64(i)*64+line)*memory.LineSize
				v := step<<8 | uint64(i)
				cpu.Store64(e, a, v)
				// Only a returned store is guaranteed durable.
				logs[i].last[a] = v
				if step%7 == 0 {
					cpu.Load64(e, a)
				}
			}
		}
	}
	return progs
}

func checkDurability(t *testing.T, s persistency.Scheme, crashAt uint64) (violations int) {
	t.Helper()
	cfg := smallConfig(s)
	sys := New(cfg)
	logs := make([]*storeLog, cfg.Cores)
	progs := durabilityPrograms(sys, logs, 99)
	sys.RunUntil(crashAt, progs)
	sys.Crash()
	for i, lg := range logs {
		for a, want := range lg.last {
			b := sys.Mem.Peek(a, 8)
			var got uint64
			for j := 7; j >= 0; j-- {
				got = got<<8 | uint64(b[j])
			}
			// A newer committed value (store accepted but its return lost
			// to the goroutine teardown) is fine: compare sequence parts.
			if got>>8 < want>>8 {
				violations++
				if s == persistency.BBB || s == persistency.EADR ||
					s == persistency.BBBProc || s == persistency.NVCache {
					t.Errorf("%v crash@%d core %d line %#x: durable seq %d < observed-complete seq %d",
						s, crashAt, i, a, got>>8, want>>8)
				}
			}
		}
	}
	return violations
}

func TestPoPEqualsPoVDurability(t *testing.T) {
	for _, s := range []persistency.Scheme{
		persistency.BBB, persistency.BBBProc, persistency.EADR, persistency.NVCache,
	} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			for _, crashAt := range []uint64{3_000, 17_000, 60_000, 150_000} {
				if n := checkDurability(t, s, crashAt); n != 0 {
					t.Fatalf("%d durability violations at crash@%d", n, crashAt)
				}
			}
		})
	}
}

func TestPMEMWithoutBarriersViolatesDurability(t *testing.T) {
	// The gap the paper opens with: completed stores are NOT durable under
	// the baseline. If this never trips, the baseline is mismodeled.
	total := 0
	for _, crashAt := range []uint64{3_000, 17_000, 60_000} {
		total += checkDurability(t, persistency.PMEM, crashAt)
	}
	if total == 0 {
		t.Fatal("PMEM lost nothing across crash points; PoV/PoP gap missing")
	}
}

func TestBEPLosesOnlyBufferedTail(t *testing.T) {
	// BEP without epoch barriers still persists a prefix: violations are
	// allowed, but the image must never hold a value the program never
	// wrote (no fabrication), and drained values must be real.
	cfg := smallConfig(persistency.BEP)
	sys := New(cfg)
	logs := make([]*storeLog, cfg.Cores)
	progs := durabilityPrograms(sys, logs, 7)
	sys.RunUntil(30_000, progs)
	sys.Crash()
	base := cfg.Layout.PersistentBase
	for i := 0; i < cfg.Cores; i++ {
		for line := uint64(0); line < 24; line++ {
			a := base + memory.Addr(uint64(i)*64+line)*memory.LineSize
			b := sys.Mem.Peek(a, 8)
			var got uint64
			for j := 7; j >= 0; j-- {
				got = got<<8 | uint64(b[j])
			}
			if got == 0 {
				continue // never persisted: acceptable for BEP
			}
			if got&0xFF != uint64(i) {
				t.Fatalf("line %#x holds value from core %d, expected core %d or zero", a, got&0xFF, i)
			}
		}
	}
}
