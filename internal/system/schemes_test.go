package system

import (
	"testing"

	"bbb/internal/persistency"
)

// The two extension schemes (BEP with volatile persist buffers, NVCache
// with NVM cache cells) run the same programs with the expected cost and
// durability trade-offs.

func TestBEPRunsAndDrainsInEpochs(t *testing.T) {
	cfg := smallConfig(persistency.BEP)
	cfg.BBPB.Entries = 32
	sys := New(cfg)
	res := sys.Run(mixedPrograms(sys, 200, 60))
	if res.Counters.Get("core.epoch_barriers") == 0 {
		t.Fatal("PersistBarrier did not become epoch barriers under BEP")
	}
	if res.Counters.Get("vpb.drains") == 0 {
		t.Fatal("no volatile-buffer drains")
	}
	if res.Counters.Get("core.clwbs") != 0 {
		t.Fatal("BEP must not issue clwb")
	}
	if err := sys.Hier.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBEPCrashLosesBufferedEpochs(t *testing.T) {
	cfg := smallConfig(persistency.BEP)
	cfg.BBPB.DrainThreshold = 1.0 // hold everything buffered
	sys := New(cfg)
	progs := mixedPrograms(sys, 400, 60)
	sys.RunUntil(30_000, progs)
	rep := sys.Crash()
	if rep.LostLines == 0 {
		t.Fatal("volatile persist buffers lost nothing at the crash")
	}
	if rep.BufLines != 0 || rep.CacheLines != 0 {
		t.Fatalf("BEP drained battery-backed state: %+v", rep)
	}
}

func TestNVCacheKeepsDataWithoutBattery(t *testing.T) {
	cfg := smallConfig(persistency.NVCache)
	sys := New(cfg)
	progs := mixedPrograms(sys, 300, 60)
	sys.RunUntil(50_000, progs)
	rep := sys.Crash()
	// The cells retain dirty lines with no battery; the report groups them
	// with cache lines.
	if rep.CacheLines == 0 {
		t.Fatal("NVCache retained no cache lines")
	}
	if rep.BufLines != 0 || rep.LostLines != 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
}

func TestNVCacheSlowerThanEADR(t *testing.T) {
	// Same machine, same programs: the NVM write latencies must cost time.
	var eadr, nvc uint64
	for _, s := range []persistency.Scheme{persistency.EADR, persistency.NVCache} {
		cfg := smallConfig(s)
		sys := New(cfg)
		res := sys.Run(mixedPrograms(sys, 200, 60))
		if s == persistency.EADR {
			eadr = res.Cycles
		} else {
			nvc = res.Cycles
		}
	}
	if nvc <= eadr {
		t.Fatalf("NVCache (%d cycles) not slower than eADR (%d)", nvc, eadr)
	}
}

func TestBEPMoreNVMMWritesThanBBB(t *testing.T) {
	// Cross-epoch coalescing is forbidden for BEP, so with per-operation
	// barriers it must write NVMM at least as much as BBB.
	var bbb, bep uint64
	for _, s := range []persistency.Scheme{persistency.BBB, persistency.BEP} {
		cfg := smallConfig(s)
		cfg.BBPB.Entries = 32
		sys := New(cfg)
		res := sys.Run(mixedPrograms(sys, 300, 60))
		if s == persistency.BBB {
			bbb = res.NVMMWrites
		} else {
			bep = res.NVMMWrites
		}
	}
	if bep < bbb {
		t.Fatalf("BEP wrote less (%d) than BBB (%d) despite epoch-limited coalescing", bep, bbb)
	}
}
