package system

import (
	"testing"

	"bbb/internal/cpu"
	"bbb/internal/memory"
	"bbb/internal/persistency"
)

// smallConfig shrinks the machine so tests exercise evictions and buffer
// pressure quickly.
func smallConfig(s persistency.Scheme) Config {
	cfg := DefaultConfig(s)
	cfg.Cores = 4
	cfg.Hierarchy.Cores = 4
	cfg.Hierarchy.L1Size = 2048
	cfg.Hierarchy.L2Size = 16 * 1024
	cfg.BBPB.Entries = 8
	return cfg
}

// counterProgram makes each core hammer its own persistent region plus a
// shared line, generating coalescing, migration and eviction traffic.
func counterPrograms(sys *System, opsPerCore int) []Program {
	base := sys.Cfg.Layout.PersistentBase
	shared := base // line 0 shared by everyone
	progs := make([]Program, sys.Cfg.Cores)
	for i := range progs {
		i := i
		region := base + memory.Addr(1+i*64)*memory.LineSize
		progs[i] = func(e cpu.Env) {
			for j := 0; j < opsPerCore; j++ {
				a := region + memory.Addr(j%48)*memory.LineSize
				cpu.Store64(e, a, uint64(j))
				e.PersistBarrier(a)
				if j%7 == 0 {
					cpu.Store64(e, shared, uint64(i*1000+j))
					e.PersistBarrier(shared)
				}
				if j%3 == 0 {
					cpu.Load64(e, a)
				}
			}
		}
	}
	return progs
}

func TestRunAllSchemesFunctionallyEqual(t *testing.T) {
	// The same program must leave the same architectural values behind
	// under every scheme; only timing and write counts differ.
	final := map[persistency.Scheme]uint64{}
	for _, s := range persistency.Schemes() {
		sys := New(smallConfig(s))
		res := sys.Run(counterPrograms(sys, 200))
		if res.Cycles == 0 {
			t.Fatalf("%v: zero makespan", s)
		}
		if err := sys.Hier.CheckInvariants(); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		// Read back a per-core line architecturally (through the caches).
		a := sys.Cfg.Layout.PersistentBase + memory.Addr(1+2*64+47)*memory.LineSize
		data, ok := sys.Hier.MergedLine(a)
		var v uint64
		if ok {
			for i := 7; i >= 0; i-- {
				v = v<<8 | uint64(data[i])
			}
		} else {
			b := sys.Mem.Peek(a, 8)
			for i := 7; i >= 0; i-- {
				v = v<<8 | uint64(b[i])
			}
		}
		final[s] = v
	}
	want := final[persistency.EADR]
	for s, v := range final {
		if v != want {
			t.Fatalf("scheme %v final value %d != eADR %d", s, v, want)
		}
	}
}

// mixedPrograms model the paper's insertion workloads at miniature scale:
// each operation initializes a fresh "node" line (several consecutive field
// stores, which coalesce under every organization), then updates two hot
// "root" lines in alternation — which a memory-side bbPB coalesces but a
// processor-side one cannot (§V-C) — with pointer-chasing loads mixed in.
func mixedPrograms(sys *System, opsPerCore, linesPerCore int) []Program {
	base := sys.Cfg.Layout.PersistentBase
	progs := make([]Program, sys.Cfg.Cores)
	for i := range progs {
		i := i
		region := base + memory.Addr(1+i*(linesPerCore+2))*memory.LineSize
		hotA := region + memory.Addr(linesPerCore)*memory.LineSize
		hotB := hotA + memory.LineSize
		progs[i] = func(e cpu.Env) {
			for j := 0; j < opsPerCore; j++ {
				// "Allocate" and initialize a node (write-once pattern).
				a := region + memory.Addr(j%linesPerCore)*memory.LineSize
				for f := 0; f < 4; f++ {
					cpu.Store64(e, a+memory.Addr(f*8), uint64(j*10+f))
				}
				e.PersistBarrier(a)
				// Link it into the structure: alternating root updates.
				cpu.Store64(e, hotA, a)
				cpu.Store64(e, hotB, uint64(j))
				e.PersistBarrier(hotA, hotB)
				// Traversal work between insertions.
				cpu.Load64(e, region+memory.Addr((j*13)%linesPerCore)*memory.LineSize)
				e.Compute(20)
			}
		}
	}
	return progs
}

func TestBBBPerformanceCloseToEADRAndPMEMSlow(t *testing.T) {
	cycles := map[persistency.Scheme]uint64{}
	for _, s := range []persistency.Scheme{persistency.EADR, persistency.BBB, persistency.PMEM} {
		cfg := smallConfig(s)
		cfg.BBPB.Entries = 32 // the paper's default size
		sys := New(cfg)
		res := sys.Run(mixedPrograms(sys, 300, 80))
		cycles[s] = res.Cycles
	}
	// The paper's headline ordering: eADR fastest (no persist overhead),
	// BBB close behind, PMEM far slower due to per-store clwb+sfence.
	eadr, bbb, pmem := float64(cycles[persistency.EADR]), float64(cycles[persistency.BBB]), float64(cycles[persistency.PMEM])
	if bbb > eadr*1.5 {
		t.Fatalf("BBB %0.f cycles vs eADR %0.f: more than 50%% slower", bbb, eadr)
	}
	if pmem < bbb*1.5 {
		t.Fatalf("PMEM %0.f cycles vs BBB %0.f: strict persistency should be much slower", pmem, bbb)
	}
}

func TestBBBWritesCloseToEADRProcSideWorse(t *testing.T) {
	writes := map[persistency.Scheme]uint64{}
	for _, s := range []persistency.Scheme{persistency.EADR, persistency.BBB, persistency.BBBProc} {
		cfg := smallConfig(s)
		cfg.BBPB.Entries = 32
		sys := New(cfg)
		res := sys.Run(mixedPrograms(sys, 300, 80))
		writes[s] = res.NVMMWrites
	}
	eadr, bbb, proc := float64(writes[persistency.EADR]), float64(writes[persistency.BBB]), float64(writes[persistency.BBBProc])
	if eadr == 0 {
		t.Fatal("eADR produced no NVMM writes: working set fits the caches")
	}
	if bbb > eadr*2.0 {
		t.Fatalf("BBB writes %0.f vs eADR %0.f: memory-side coalescing not working", bbb, eadr)
	}
	if proc <= bbb {
		t.Fatalf("proc-side writes %0.f <= memory-side %0.f: expected more", proc, bbb)
	}
}

func TestBBBForcedDrainsAndSkippedWritebacks(t *testing.T) {
	cfg := smallConfig(persistency.BBB)
	cfg.BBPB.Entries = 32
	sys := New(cfg)
	res := sys.Run(mixedPrograms(sys, 300, 80)) // 4x82 lines >> 256-line L2
	// Evictions of dirty persistent lines must skip the writeback (§III-E).
	if res.Counters.Get("l2.evictions") == 0 {
		t.Fatal("workload did not trigger L2 evictions")
	}
	if res.SkippedWritebacks == 0 {
		t.Fatal("no skipped writebacks despite persistent evictions")
	}
}

func TestCrashDurabilityBBBWithoutBarriers(t *testing.T) {
	// Under BBB a store is durable the moment it commits, with NO barriers.
	// Crash mid-run and verify: for each core's region, the image holds a
	// prefix-consistent value (program order: if store j is present, so is
	// every older store to the same location sequence).
	cfg := smallConfig(persistency.BBB)
	sys := New(cfg)
	base := cfg.Layout.PersistentBase
	progs := make([]Program, cfg.Cores)
	for i := range progs {
		region := base + memory.Addr(1000+i*8)*memory.LineSize
		progs[i] = func(e cpu.Env) {
			// Monotonic counter: value k is written only after k-1.
			for k := uint64(1); k <= 5000; k++ {
				cpu.Store64(e, region, k)
			}
		}
	}
	done := sys.RunUntil(20000, progs)
	rep := sys.Crash()
	if rep.Scheme != persistency.BBB {
		t.Fatal("wrong scheme in report")
	}
	for i := 0; i < cfg.Cores; i++ {
		region := base + memory.Addr(1000+i*8)*memory.LineSize
		b := sys.Mem.Peek(region, 8)
		var v uint64
		for j := 7; j >= 0; j-- {
			v = v<<8 | uint64(b[j])
		}
		if v > 5000 {
			t.Fatalf("core %d counter %d out of range", i, v)
		}
		if !done && v == 0 && sys.Eng.Now() > 10000 {
			t.Fatalf("core %d: nothing durable after %d cycles under BBB", i, sys.Eng.Now())
		}
	}
}

func TestCrashPMEMWithoutBarriersLosesData(t *testing.T) {
	// The PMEM baseline without barriers: buffered/cached stores are lost.
	cfg := smallConfig(persistency.PMEM)
	sys := New(cfg)
	base := cfg.Layout.PersistentBase
	progs := make([]Program, cfg.Cores)
	for i := range progs {
		region := base + memory.Addr(2000+i*8)*memory.LineSize
		progs[i] = func(e cpu.Env) {
			for k := uint64(1); k <= 100; k++ {
				cpu.Store64(e, region, k) // no PersistBarrier
			}
		}
	}
	sys.RunUntil(3000, progs)
	rep := sys.Crash()
	if rep.CacheLines != 0 || rep.BufLines != 0 || rep.SBStores != 0 {
		t.Fatalf("PMEM drained cache/buffer state: %+v", rep)
	}
	// With a cold WPQ and everything in caches, the image stays stale.
	lost := 0
	for i := 0; i < cfg.Cores; i++ {
		region := base + memory.Addr(2000+i*8)*memory.LineSize
		b := sys.Mem.Peek(region, 8)
		var v uint64
		for j := 7; j >= 0; j-- {
			v = v<<8 | uint64(b[j])
		}
		if v != 100 {
			lost++
		}
	}
	if lost == 0 {
		t.Fatal("PMEM without barriers lost nothing: persistence domain too large?")
	}
}

func TestCrashEADRDrainsWholeHierarchy(t *testing.T) {
	cfg := smallConfig(persistency.EADR)
	sys := New(cfg)
	base := cfg.Layout.PersistentBase
	progs := make([]Program, cfg.Cores)
	for i := range progs {
		region := base + memory.Addr(3000+i*8)*memory.LineSize
		progs[i] = func(e cpu.Env) {
			for k := uint64(1); k <= 50; k++ {
				cpu.Store64(e, region+memory.Addr(k%4)*memory.LineSize, k)
			}
		}
	}
	sys.RunUntil(500000, progs)
	rep := sys.Crash()
	if rep.CacheLines == 0 {
		t.Fatal("eADR crash drained no cache lines")
	}
	// Every final value is durable: eADR loses nothing once committed.
	for i := 0; i < cfg.Cores; i++ {
		region := base + memory.Addr(3000+i*8)*memory.LineSize
		b := sys.Mem.Peek(region+memory.Addr(50%4)*memory.LineSize, 8)
		var v uint64
		for j := 7; j >= 0; j-- {
			v = v<<8 | uint64(b[j])
		}
		if v == 0 {
			t.Fatalf("core %d: committed store missing after eADR drain", i)
		}
	}
}

func TestDrainReportScalesWithScheme(t *testing.T) {
	// eADR's drain is much larger than BBB's — the paper's core cost claim.
	// Use the full Table III cache sizes so dirty state accumulates in the
	// hierarchy the way it would on the real machine.
	sizes := map[persistency.Scheme]int{}
	for _, s := range []persistency.Scheme{persistency.EADR, persistency.BBB} {
		cfg := DefaultConfig(s)
		cfg.Cores = 4
		cfg.Hierarchy.Cores = 4
		sys := New(cfg)
		sys.RunUntil(2_000_000, mixedPrograms(sys, 400, 200))
		rep := sys.Crash()
		sizes[s] = rep.Lines()
	}
	if sizes[persistency.EADR] <= 2*sizes[persistency.BBB] {
		t.Fatalf("eADR drained %d lines, not much larger than BBB's %d",
			sizes[persistency.EADR], sizes[persistency.BBB])
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() Result {
		sys := New(smallConfig(persistency.BBB))
		return sys.Run(counterPrograms(sys, 150))
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.NVMMWrites != b.NVMMWrites || a.Drains != b.Drains {
		t.Fatalf("nondeterminism: %+v vs %+v", a, b)
	}
}

func TestTableIVStoreMix(t *testing.T) {
	sys := New(smallConfig(persistency.BBB))
	res := sys.Run(counterPrograms(sys, 200))
	if res.PersistingStores == 0 || res.Stores == 0 {
		t.Fatal("store mix not measured")
	}
	if res.PersistingStores > res.Stores {
		t.Fatal("more persisting stores than stores")
	}
}
