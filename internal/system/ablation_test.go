package system

import (
	"testing"

	"bbb/internal/cpu"
	"bbb/internal/memory"
	"bbb/internal/persistency"
)

// The §III-C ablation: without a battery-backed store buffer, a store the
// program observed complete can still be lost at a crash, because "while
// stores are committed in program order, they do not go to the L1D in
// program order" — the SB is the only thing holding the youngest ones.
func TestAblateSBBatteryLosesCommittedStores(t *testing.T) {
	losses := 0
	for _, crashAt := range []uint64{2_000, 5_000, 9_000, 14_000, 20_000, 30_000} {
		cfg := smallConfig(persistency.BBB)
		cfg.AblateSBBattery = true
		sys := New(cfg)
		logs := make([]*storeLog, cfg.Cores)
		progs := durabilityPrograms(sys, logs, 5)
		sys.RunUntil(crashAt, progs)
		rep := sys.Crash()
		if rep.SBStores != 0 {
			t.Fatal("ablated SB still drained at the crash")
		}
		for _, lg := range logs {
			for a, want := range lg.last {
				b := sys.Mem.Peek(a, 8)
				var got uint64
				for j := 7; j >= 0; j-- {
					got = got<<8 | uint64(b[j])
				}
				if got>>8 < want>>8 {
					losses++
				}
			}
		}
	}
	if losses == 0 {
		t.Fatal("ablated SB lost nothing across six crash points; the §III-C argument would be vacuous")
	}
	t.Logf("ablated SB battery: %d committed stores lost across crash points", losses)
}

// With the battery restored, the identical harness loses nothing.
func TestSBBatteryRestoresDurability(t *testing.T) {
	for _, crashAt := range []uint64{2_000, 9_000, 20_000} {
		cfg := smallConfig(persistency.BBB)
		sys := New(cfg)
		logs := make([]*storeLog, cfg.Cores)
		progs := durabilityPrograms(sys, logs, 5)
		sys.RunUntil(crashAt, progs)
		sys.Crash()
		for i, lg := range logs {
			for a, want := range lg.last {
				b := sys.Mem.Peek(a, 8)
				var got uint64
				for j := 7; j >= 0; j-- {
					got = got<<8 | uint64(b[j])
				}
				if got>>8 < want>>8 {
					t.Fatalf("crash@%d core %d line %#x lost seq %d (have %d)",
						crashAt, i, a, want>>8, got>>8)
				}
			}
		}
	}
}

// Analytical validation: a single core streaming stores to fresh
// persistent lines pays, per line, roughly one write-allocate NVMM read
// (the store misses the whole hierarchy) — the in-order store-buffer drain
// permits no memory-level parallelism — and can never beat the NVMM write
// bandwidth either. The measured cycle count must sit between those
// analytic bounds.
func TestThroughputBoundedByNVMMLatency(t *testing.T) {
	cfg := smallConfig(persistency.BBB)
	cfg.Cores = 1
	cfg.Hierarchy.Cores = 1
	sys := New(cfg)
	const lines = 3000
	base := cfg.Layout.PersistentBase
	progs := []Program{func(e cpu.Env) {
		for i := uint64(0); i < lines; i++ {
			cpu.Store64(e, base+memory.Addr(i)*memory.LineSize, i)
		}
	}}
	res := sys.Run(progs)
	perLine := float64(res.Cycles) / float64(lines)
	// Lower bound: the write-allocate fetch (NVMM read) per line, since
	// every line misses; upper bound: that plus cache/queueing overheads.
	readLat := float64(cfg.NVMM.ReadLat)
	if perLine < readLat {
		t.Fatalf("%.0f cycles/line beats the NVMM read latency %d — impossible without MLP", perLine, cfg.NVMM.ReadLat)
	}
	if perLine > 3*readLat {
		t.Fatalf("%.0f cycles/line, far above the ~%d write-allocate bound: stray serialization", perLine, cfg.NVMM.ReadLat)
	}
	// Bandwidth sanity: drains cannot exceed channel capacity.
	occ := cfg.NVMM.WriteOcc
	minCycles := uint64(lines) * uint64(occ) / uint64(cfg.NVMM.Channels)
	if res.Cycles < minCycles {
		t.Fatalf("run finished in %d cycles, below the bandwidth bound %d", res.Cycles, minCycles)
	}
}

// Analytical validation: an L1-resident loop costs ~L1 latency per load.
func TestL1ResidentLatency(t *testing.T) {
	cfg := smallConfig(persistency.EADR)
	cfg.Cores = 1
	cfg.Hierarchy.Cores = 1
	sys := New(cfg)
	a := cfg.Layout.PersistentBase
	const n = 2000
	progs := []Program{func(e cpu.Env) {
		cpu.Load64(e, a) // warm
		for i := 0; i < n; i++ {
			cpu.Load64(e, a)
		}
	}}
	res := sys.Run(progs)
	perLoad := float64(res.Cycles) / float64(n)
	if perLoad < float64(cfg.Hierarchy.L1Lat) || perLoad > float64(cfg.Hierarchy.L1Lat)+2 {
		t.Fatalf("L1-resident load costs %.2f cycles, want ~%d", perLoad, cfg.Hierarchy.L1Lat)
	}
}
