package system

import (
	"math/rand"
	"testing"

	"bbb/internal/cpu"
	"bbb/internal/memory"
	"bbb/internal/persistency"
)

// Whole-system randomized property: under EVERY scheme, a random mix of
// loads, stores and CAS across cores (a) matches a sequential reference
// model for values each core observes on its private lines, (b) leaves the
// coherence invariants intact, and (c) for the PoP=PoV schemes leaves the
// durable image equal to the last observed value of every private line
// after a crash drain.
func TestRandomizedAllSchemes(t *testing.T) {
	for _, s := range persistency.Schemes() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			cfg := smallConfig(s)
			cfg.BBPB.Entries = 8
			sys := New(cfg)
			base := cfg.Layout.PersistentBase
			type obs struct{ last map[memory.Addr]uint64 }
			observed := make([]obs, cfg.Cores)
			progs := make([]Program, cfg.Cores)
			for i := range progs {
				i := i
				observed[i] = obs{last: map[memory.Addr]uint64{}}
				progs[i] = func(e cpu.Env) {
					r := rand.New(rand.NewSource(int64(1000 + i)))
					// Private lines per core plus one shared line.
					shared := base
					for op := 0; op < 800; op++ {
						priv := base + memory.Addr(uint64(1+i*20+(r.Intn(16))))*memory.LineSize
						switch r.Intn(4) {
						case 0:
							got := cpu.Load64(e, priv)
							want := observed[i].last[priv]
							if got != want {
								t.Errorf("core %d read %d from %#x, expected %d", i, got, priv, want)
								return
							}
						case 1:
							v := r.Uint64() >> 8 // leave tag space
							cpu.Store64(e, priv, v)
							observed[i].last[priv] = v
						case 2:
							cur := cpu.Load64(e, priv)
							if _, ok := e.CompareAndSwap(priv, 8, cur, cur+1); ok {
								observed[i].last[priv] = cur + 1
							}
						case 3:
							cpu.Store64(e, shared, r.Uint64()) // cross-core churn
						}
					}
				}
			}
			sys.RunUntil(3_000_000, progs)
			for i, c := range sys.Cores {
				if !c.Done() {
					t.Fatalf("core %d did not finish", i)
				}
			}
			if err := sys.Hier.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			rep := sys.Crash()
			_ = rep
			popEqualsPov := s == persistency.BBB || s == persistency.BBBProc ||
				s == persistency.EADR || s == persistency.NVCache
			if !popEqualsPov {
				return
			}
			for i := range observed {
				for a, want := range observed[i].last {
					b := sys.Mem.Peek(a, 8)
					var got uint64
					for j := 7; j >= 0; j-- {
						got = got<<8 | uint64(b[j])
					}
					if got != want {
						t.Fatalf("%v: core %d line %#x durable %d != observed %d", s, i, a, got, want)
					}
				}
			}
		})
	}
}
