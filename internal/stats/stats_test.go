package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Inc("a")
	c.Add("b", 5)
	c.Inc("a")
	if c.Get("a") != 2 || c.Get("b") != 5 {
		t.Fatalf("a=%d b=%d", c.Get("a"), c.Get("b"))
	}
	if c.Get("missing") != 0 {
		t.Fatal("missing counter should read zero")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
}

func TestCountersMerge(t *testing.T) {
	a, b := NewCounters(), NewCounters()
	a.Add("x", 1)
	b.Add("x", 2)
	b.Add("y", 3)
	a.Merge(b)
	if a.Get("x") != 3 || a.Get("y") != 3 {
		t.Fatalf("merged x=%d y=%d", a.Get("x"), a.Get("y"))
	}
}

func TestCountersString(t *testing.T) {
	c := NewCounters()
	c.Add("zeta", 9)
	s := c.String()
	if !strings.Contains(s, "zeta") || !strings.Contains(s, "9") {
		t.Fatalf("String() = %q", s)
	}
}

func TestGeomean(t *testing.T) {
	got := Geomean([]float64{1, 4, 16})
	if math.Abs(got-4) > 1e-12 {
		t.Fatalf("Geomean = %g, want 4", got)
	}
}

func TestGeomeanPanics(t *testing.T) {
	for name, xs := range map[string][]float64{"empty": {}, "zero": {1, 0}} {
		xs := xs
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			Geomean(xs)
		})
	}
}

func TestMeanMaxRatio(t *testing.T) {
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean")
	}
	if Max([]float64{2, 9, 4}) != 9 {
		t.Fatal("Max")
	}
	if Ratio(6, 3) != 2 {
		t.Fatal("Ratio")
	}
	if Ratio(0, 0) != 0 {
		t.Fatal("Ratio(0,0)")
	}
	if !math.IsInf(Ratio(1, 0), 1) {
		t.Fatal("Ratio(1,0)")
	}
}

func TestDistribution(t *testing.T) {
	var d Distribution
	for _, x := range []float64{1, 2, 3, 4} {
		d.Observe(x)
	}
	if d.Count() != 4 || d.Mean() != 2.5 || d.Min() != 1 || d.Max() != 4 {
		t.Fatalf("n=%d mean=%g min=%g max=%g", d.Count(), d.Mean(), d.Min(), d.Max())
	}
	want := math.Sqrt(1.25)
	if math.Abs(d.StdDev()-want) > 1e-12 {
		t.Fatalf("StdDev = %g, want %g", d.StdDev(), want)
	}
}

// Property: geomean lies between min and max of positive inputs.
func TestPropertyGeomeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), 0.0
		for i, r := range raw {
			xs[i] = float64(r%1000) + 1
			if xs[i] < lo {
				lo = xs[i]
			}
			if xs[i] > hi {
				hi = xs[i]
			}
		}
		g := Geomean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
