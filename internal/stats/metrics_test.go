package stats

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zero")
	}
	if h.Mean() != 0 || h.P50() != 0 || h.P99() != 0 {
		t.Fatal("empty histogram stats not zero")
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(42)
	if h.Count() != 1 || h.Min() != 42 || h.Max() != 42 || h.Mean() != 42 {
		t.Fatalf("n=%d min=%d max=%d mean=%g", h.Count(), h.Min(), h.Max(), h.Mean())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 42 {
			t.Fatalf("Quantile(%g) = %g, want 42", q, got)
		}
	}
}

func TestHistogramZeros(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(0)
	}
	if h.P50() != 0 || h.P99() != 0 || h.Max() != 0 {
		t.Fatalf("all-zero histogram: p50=%g p99=%g max=%d", h.P50(), h.P99(), h.Max())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	// 90 zeros and 10 large values: p50 must be 0, p99 must not be — the
	// exact shape of a BBB (zero gap) vs PMEM (WPQ-bound tail) comparison.
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(0)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	if h.P50() != 0 {
		t.Fatalf("p50 = %g, want 0", h.P50())
	}
	if h.P99() < 500 {
		t.Fatalf("p99 = %g, want near 1000", h.P99())
	}
	if h.Quantile(1) != 1000 {
		t.Fatalf("Quantile(1) = %g", h.Quantile(1))
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v * 7 % 1009)
	}
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.01 {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile not monotone: Q(%g)=%g < %g", q, got, prev)
		}
		if got < float64(h.Min()) || got > float64(h.Max()) {
			t.Fatalf("Quantile(%g)=%g outside [%d,%d]", q, got, h.Min(), h.Max())
		}
		prev = got
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, whole Histogram
	for v := uint64(0); v < 50; v++ {
		a.Observe(v)
		whole.Observe(v)
	}
	for v := uint64(50); v < 100; v++ {
		b.Observe(v * v)
		whole.Observe(v * v)
	}
	a.Merge(&b)
	if a != whole {
		t.Fatal("merged histogram differs from whole")
	}
	a.Merge(nil) // must be a no-op
	var empty Histogram
	a.Merge(&empty)
	if a != whole {
		t.Fatal("merging nil/empty changed the histogram")
	}
}

func TestHistogramSummaryStable(t *testing.T) {
	var a, b Histogram
	for v := uint64(0); v < 1000; v++ {
		a.Observe(v % 37)
		b.Observe(v % 37)
	}
	if a.Summary() != b.Summary() {
		t.Fatalf("identical inputs, different summaries:\n%s\n%s", a.Summary(), b.Summary())
	}
	if !strings.Contains(a.Summary(), "p99=") {
		t.Fatalf("Summary missing p99: %s", a.Summary())
	}
}

func TestBucketBounds(t *testing.T) {
	cases := []struct {
		i      int
		lo, hi uint64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{2, 2, 3},
		{3, 4, 7},
		{10, 512, 1023},
		{64, 1 << 63, ^uint64(0)},
	}
	for _, c := range cases {
		lo, hi := bucketBounds(c.i)
		if lo != c.lo || hi != c.hi {
			t.Fatalf("bucketBounds(%d) = [%d,%d], want [%d,%d]", c.i, lo, hi, c.lo, c.hi)
		}
	}
}

func TestGaugeSeriesBasic(t *testing.T) {
	var g GaugeSeries
	g.Record(10, 0, 3)
	g.Record(20, 1, 7)
	g.Record(30, -1, 5)
	if g.Count() != 3 || g.Max() != 7 {
		t.Fatalf("n=%d max=%d", g.Count(), g.Max())
	}
	pts := g.Points()
	want := []GaugePoint{{10, 0, 3}, {20, 1, 7}, {30, -1, 5}}
	if !reflect.DeepEqual(pts, want) {
		t.Fatalf("Points = %v", pts)
	}
	if g.Last() != (GaugePoint{30, -1, 5}) {
		t.Fatalf("Last = %v", g.Last())
	}
}

func TestGaugeSeriesDecimation(t *testing.T) {
	var g GaugeSeries
	const n = gaugeCap * 5
	for i := uint64(0); i < n; i++ {
		g.Record(i, 0, i)
	}
	if g.Count() != n || g.Max() != n-1 {
		t.Fatalf("n=%d max=%d", g.Count(), g.Max())
	}
	pts := g.Points()
	if len(pts) > gaugeCap {
		t.Fatalf("retained %d points, cap is %d", len(pts), gaugeCap)
	}
	if len(pts) < gaugeCap/4 {
		t.Fatalf("decimated too aggressively: %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Cycle <= pts[i-1].Cycle {
			t.Fatalf("points out of order at %d: %v then %v", i, pts[i-1], pts[i])
		}
	}
	// Determinism: the same offered stream retains the same points.
	var g2 GaugeSeries
	for i := uint64(0); i < n; i++ {
		g2.Record(i, 0, i)
	}
	if !reflect.DeepEqual(g.Points(), g2.Points()) {
		t.Fatal("decimation is not deterministic")
	}
}

func TestMetricsNilSafe(t *testing.T) {
	var m *Metrics
	m.Observe("x", 1)
	m.Sample("y", 10, 0, 2)
	m.Merge(NewMetrics())
	if m.Hist("x") != nil || m.Gauge("y") != nil {
		t.Fatal("nil Metrics returned a metric")
	}
	if m.HistNames() != nil || m.GaugeNames() != nil || m.String() != "" {
		t.Fatal("nil Metrics not empty")
	}
}

// The disabled-metrics path must cost nothing: components call
// Observe/Sample unconditionally on a possibly-nil registry, the same
// contract the nil trace recorder pins.
func TestMetricsDisabledPathZeroAlloc(t *testing.T) {
	var m *Metrics
	allocs := testing.AllocsPerRun(1000, func() {
		m.Observe("system.durability_gap", 17)
		m.Sample("bbpb.occupancy", 12345, 2, 6)
	})
	if allocs != 0 {
		t.Fatalf("nil Metrics path allocates %g allocs/op, want 0", allocs)
	}
}

func TestMetricsObserveAndNames(t *testing.T) {
	m := NewMetrics()
	m.Observe("b", 2)
	m.Observe("a", 1)
	m.Observe("b", 4)
	m.Sample("g", 5, -1, 9)
	if got := m.HistNames(); !reflect.DeepEqual(got, []string{"b", "a"}) {
		t.Fatalf("HistNames = %v", got)
	}
	if got := m.GaugeNames(); !reflect.DeepEqual(got, []string{"g"}) {
		t.Fatalf("GaugeNames = %v", got)
	}
	if m.Hist("b").Count() != 2 || m.Hist("a").Count() != 1 {
		t.Fatal("histogram counts wrong")
	}
	if m.Gauge("g").Max() != 9 {
		t.Fatal("gauge max wrong")
	}
	if m.Hist("missing") != nil || m.Gauge("missing") != nil {
		t.Fatal("missing metric not nil")
	}
}

func TestMetricsMerge(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	a.Observe("x", 1)
	b.Observe("x", 3)
	b.Observe("y", 5)
	b.Sample("g", 1, 0, 1) // gauges must NOT merge
	a.Merge(b)
	if a.Hist("x").Count() != 2 || a.Hist("x").Sum() != 4 {
		t.Fatal("x not merged")
	}
	if a.Hist("y").Count() != 1 {
		t.Fatal("y not created by merge")
	}
	if a.Gauge("g") != nil {
		t.Fatal("gauge leaked through Merge")
	}
}

func TestMetricsStringSortedAndStable(t *testing.T) {
	m := NewMetrics()
	m.Observe("zz", 1)
	m.Observe("aa", 2)
	m.Sample("mm", 1, 0, 3)
	s := m.String()
	if strings.Index(s, "aa") > strings.Index(s, "zz") {
		t.Fatalf("String not sorted:\n%s", s)
	}
	if s != m.String() {
		t.Fatal("String not stable")
	}
	annotated := m.StringWith(map[string]string{"aa": "doc line"})
	if !strings.Contains(annotated, "# doc line") {
		t.Fatalf("StringWith missing annotation:\n%s", annotated)
	}
}

// Satellite: Distribution edge cases.
func TestDistributionEmpty(t *testing.T) {
	var d Distribution
	if d.Count() != 0 || d.Mean() != 0 || d.StdDev() != 0 || d.Min() != 0 || d.Max() != 0 {
		t.Fatal("empty Distribution not zero")
	}
}

func TestDistributionSingleSample(t *testing.T) {
	var d Distribution
	d.Observe(-7.5)
	if d.Count() != 1 || d.Mean() != -7.5 || d.Min() != -7.5 || d.Max() != -7.5 {
		t.Fatalf("n=%d mean=%g min=%g max=%g", d.Count(), d.Mean(), d.Min(), d.Max())
	}
	if d.StdDev() != 0 {
		t.Fatalf("single-sample StdDev = %g, want 0", d.StdDev())
	}
}

func TestDistributionNegativeSamples(t *testing.T) {
	var d Distribution
	for _, x := range []float64{-3, -1, 1, 3} {
		d.Observe(x)
	}
	if d.Mean() != 0 || d.Min() != -3 || d.Max() != 3 {
		t.Fatalf("mean=%g min=%g max=%g", d.Mean(), d.Min(), d.Max())
	}
	want := math.Sqrt(5) // population variance of {-3,-1,1,3} is 5
	if math.Abs(d.StdDev()-want) > 1e-12 {
		t.Fatalf("StdDev = %g, want %g", d.StdDev(), want)
	}
}

func TestDistributionConstantSamplesStdDevNonNegative(t *testing.T) {
	// Large equal samples stress the sumSq - mean² cancellation; the
	// clamp must keep the result at exactly 0, never NaN.
	var d Distribution
	for i := 0; i < 1000; i++ {
		d.Observe(1e9)
	}
	if s := d.StdDev(); s != 0 || math.IsNaN(s) {
		t.Fatalf("constant-sample StdDev = %g, want 0", s)
	}
}

// Satellite: Merge must be deterministic — same merge sequence, same
// Names() order and same rendered output, run after run.
func TestCountersMergeOrderingDeterminism(t *testing.T) {
	build := func() *Counters {
		total := NewCounters()
		for shard := 0; shard < 8; shard++ {
			c := NewCounters()
			c.Add("zeta", uint64(shard))
			c.Inc("alpha")
			c.Add("mid", 2)
			total.Merge(c)
		}
		return total
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a.Names(), b.Names()) {
		t.Fatalf("Names differ across identical merges: %v vs %v", a.Names(), b.Names())
	}
	if a.String() != b.String() {
		t.Fatal("String differs across identical merges")
	}
	// First-touch order must follow the merge sequence, not map order.
	if want := []string{"zeta", "alpha", "mid"}; !reflect.DeepEqual(a.Names(), want) {
		t.Fatalf("Names = %v, want %v", a.Names(), want)
	}
}
