package stats

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestWindowedBasic(t *testing.T) {
	w := NewWindowed(100, 50)
	// Window [0,100): 10, 60 (one over SLO). Window [200,300): 70, 80.
	w.Observe(5, 10)
	w.Observe(99, 60)
	w.Observe(250, 70)
	w.Observe(299, 80)
	snaps := w.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("got %d windows, want 2: %+v", len(snaps), snaps)
	}
	if snaps[0].Start != 0 || snaps[0].Count != 2 || snaps[0].Over != 1 {
		t.Errorf("window 0: %+v, want start=0 count=2 over=1", snaps[0])
	}
	if snaps[1].Start != 200 || snaps[1].Count != 2 || snaps[1].Over != 2 {
		t.Errorf("window 1: %+v, want start=200 count=2 over=2", snaps[1])
	}
	if w.Total().Count() != 4 || w.OverSLO() != 3 {
		t.Errorf("total count=%d over=%d, want 4 and 3", w.Total().Count(), w.OverSLO())
	}
	if snaps[1].Max != 80 {
		t.Errorf("window 1 max=%d, want 80", snaps[1].Max)
	}
}

func TestWindowedCoalesce(t *testing.T) {
	w := NewWindowed(10, 0)
	// One sample per 10-cycle window: 3x the cap forces two doublings.
	n := 3 * windowedCap
	for i := 0; i < n; i++ {
		w.Observe(uint64(i)*10, uint64(i))
	}
	if w.Windows() > windowedCap {
		t.Fatalf("retained %d windows, cap is %d", w.Windows(), windowedCap)
	}
	if w.Width() == w.BaseWidth() {
		t.Fatalf("width never doubled at %d windows offered", n)
	}
	if w.Width()%w.BaseWidth() != 0 {
		t.Fatalf("width %d is not a multiple of base %d", w.Width(), w.BaseWidth())
	}
	// No sample is lost to coalescing and alignment is preserved.
	var count uint64
	for _, s := range w.Snapshots() {
		count += s.Count
		if s.Start%w.Width() != 0 {
			t.Fatalf("window start %d not aligned to width %d", s.Start, w.Width())
		}
	}
	if count != uint64(n) {
		t.Fatalf("windows hold %d samples, want %d", count, n)
	}
}

// TestWindowedMergeOrderInvariant checks the fold used by service
// workloads: merging per-client windowed histograms in any order produces
// byte-identical state, including when clients coalesced to different
// widths.
func TestWindowedMergeOrderInvariant(t *testing.T) {
	build := func(seed int64, n int, stride uint64) *Windowed {
		w := NewWindowed(64, 100)
		r := rand.New(rand.NewSource(seed))
		cycle := uint64(0)
		for i := 0; i < n; i++ {
			cycle += uint64(r.Intn(int(stride)))
			w.Observe(cycle, uint64(r.Intn(300)))
		}
		return w
	}
	// Client 2 spans far more windows, forcing a width mismatch at merge.
	clients := []*Windowed{
		build(1, 500, 16),
		build(2, 500, 64),
		build(3, 2*windowedCap, 512),
	}
	fold := func(order []int) *Windowed {
		m := NewWindowed(64, 100)
		for _, i := range order {
			m.Merge(clients[i])
		}
		return m
	}
	a := fold([]int{0, 1, 2})
	b := fold([]int{2, 0, 1})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("merge order changed the merged windowed state:\n%+v\nvs\n%+v", a.Snapshots(), b.Snapshots())
	}
	want := clients[0].Total().Count() + clients[1].Total().Count() + clients[2].Total().Count()
	if a.Total().Count() != want {
		t.Fatalf("merged total %d, want %d", a.Total().Count(), want)
	}
}

func TestWindowedMergeShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging windowed histograms with different widths did not panic")
		}
	}()
	a, b := NewWindowed(100, 0), NewWindowed(200, 0)
	b.Observe(1, 1)
	a.Merge(b)
}

func TestMetricsMergeWindowed(t *testing.T) {
	m := NewMetrics()
	a := NewWindowed(100, 10)
	a.Observe(50, 5)
	a.Observe(150, 20)
	b := NewWindowed(100, 10)
	b.Observe(60, 30)
	m.MergeWindowed("svc.lat.win", a)
	m.MergeWindowed("svc.lat.win", b)
	w := m.Windowed("svc.lat.win")
	if w == nil {
		t.Fatal("windowed metric not registered")
	}
	if w.Total().Count() != 3 || w.OverSLO() != 2 {
		t.Fatalf("merged total=%d over=%d, want 3 and 2", w.Total().Count(), w.OverSLO())
	}
	if got := m.WindowedNames(); len(got) != 1 || got[0] != "svc.lat.win" {
		t.Fatalf("WindowedNames = %v", got)
	}
	// Nil registry and nil donor are no-ops.
	var nilm *Metrics
	nilm.MergeWindowed("svc.lat.win", a)
	if nilm.Windowed("svc.lat.win") != nil || nilm.WindowedNames() != nil {
		t.Fatal("nil registry is not inert")
	}
	m.MergeWindowed("svc.lat.win", nil)
}

// TestGaugeSeriesDecimationCampaignScale drives a gauge timeline with far
// more points than the decimation budget (>=10x gaugeCap, the shape of a
// campaign-scale run) and checks the decimation invariants: the retained
// set is bounded, stride-sampled deterministically, identical across
// identical runs, and still spans the full timeline.
func TestGaugeSeriesDecimationCampaignScale(t *testing.T) {
	const offers = 12 * gaugeCap // 98304 >= 10x the decimation budget
	build := func() *GaugeSeries {
		g := &GaugeSeries{}
		for i := 0; i < offers; i++ {
			g.Record(uint64(i)*7, 0, uint64(i%257))
		}
		return g
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical offer streams produced different decimated series")
	}
	pts := a.Points()
	if len(pts) == 0 || len(pts) > gaugeCap {
		t.Fatalf("retained %d points, want (0, %d]", len(pts), gaugeCap)
	}
	if a.Count() != offers {
		t.Fatalf("offer count %d, want %d", a.Count(), offers)
	}
	// Retained points are exactly the offers at stride boundaries: cycles
	// strictly increase and neighbours sit a fixed offer stride apart.
	stride := pts[1].Cycle - pts[0].Cycle
	for i := 1; i < len(pts); i++ {
		if d := pts[i].Cycle - pts[i-1].Cycle; d != stride {
			t.Fatalf("point %d: stride %d, want %d (decimation must resample uniformly)", i, d, stride)
		}
	}
	// Full-timeline coverage at reduced resolution: the last retained
	// point sits within one stride of the final offer.
	last := pts[len(pts)-1].Cycle
	if final := uint64(offers-1) * 7; last+stride <= final {
		t.Fatalf("timeline coverage ends at %d, final offer at %d (stride %d)", last, final, stride)
	}
	if a.Last().Value != uint64((offers-1)%257) {
		t.Fatalf("Last() = %+v, want final offered value", a.Last())
	}
}
