package stats

import "fmt"

// Windowed is a histogram sliced into fixed-width, cycle-aligned windows:
// every sample lands both in a whole-run total and in the histogram of the
// window containing its cycle, so a run reports not just end-of-run
// percentiles but a latency-over-time series (per-window p50/p99) and SLO
// burn (how many samples in each window exceeded a bound). Service
// workloads keep one Windowed per client (single goroutine, no locking)
// and fold them into the run's Metrics registry afterwards; windows are
// aligned to absolute cycle multiples of the width, so per-client windows
// merge exactly.
//
// Memory stays bounded the same way GaugeSeries' does: past windowedCap
// retained windows, adjacent window pairs coalesce and the width doubles —
// deterministically, so two runs of the same seed (at any merge order of
// identically-shaped clients) produce byte-identical window sets.
type Windowed struct {
	width uint64 // current window width (base x 2^k after coalescing)
	base  uint64 // construction-time width
	slo   uint64 // samples above this bound count as SLO violations (0 = off)
	wins  []window
	total Histogram
}

// window is one aligned slice of the timeline.
type window struct {
	start uint64 // first cycle covered (a multiple of width)
	over  uint64 // samples above the SLO bound
	hist  Histogram
}

// windowedCap bounds retained windows; on overflow adjacent windows
// coalesce and the width doubles, keeping full timeline coverage at
// reduced resolution.
const windowedCap = 4096

// NewWindowed returns a windowed histogram with the given window width in
// cycles and SLO bound (samples strictly above slo count toward the
// window's Over tally; slo 0 disables the accounting).
func NewWindowed(width, slo uint64) *Windowed {
	if width == 0 {
		panic("stats: Windowed width must be positive")
	}
	return &Windowed{width: width, base: width, slo: slo}
}

// Width returns the current window width (it grows by doubling when the
// retained-window cap is hit).
func (w *Windowed) Width() uint64 { return w.width }

// BaseWidth returns the construction-time window width.
func (w *Windowed) BaseWidth() uint64 { return w.base }

// SLO returns the configured SLO bound (0 = disabled).
func (w *Windowed) SLO() uint64 { return w.slo }

// Observe adds one sample stamped with the cycle it was measured at.
// Cycles must arrive in non-decreasing order (event-driven measurement
// guarantees this); a stamp older than the open window folds into it.
func (w *Windowed) Observe(cycle, v uint64) {
	start := cycle - cycle%w.width
	n := len(w.wins)
	if n == 0 || start > w.wins[n-1].start {
		w.wins = append(w.wins, window{start: start})
		if len(w.wins) > windowedCap {
			w.coalesce(w.width * 2)
		}
		n = len(w.wins)
	}
	win := &w.wins[n-1]
	win.hist.Observe(v)
	if w.slo > 0 && v > w.slo {
		win.over++
	}
	w.total.Observe(v)
}

// coalesce re-aligns every retained window to toWidth, merging windows
// that now share a start. toWidth must be a power-of-two multiple of the
// current width, so alignment is preserved.
func (w *Windowed) coalesce(toWidth uint64) {
	if toWidth <= w.width {
		return
	}
	kept := w.wins[:0]
	for i := range w.wins {
		win := &w.wins[i]
		start := win.start - win.start%toWidth
		if n := len(kept); n > 0 && kept[n-1].start == start {
			kept[n-1].hist.Merge(&win.hist)
			kept[n-1].over += win.over
		} else {
			kept = append(kept, window{start: start, over: win.over, hist: win.hist})
		}
	}
	w.wins = kept
	w.width = toWidth
}

// Total returns the whole-run histogram across every window.
func (w *Windowed) Total() *Histogram { return &w.total }

// Windows returns the number of retained windows.
func (w *Windowed) Windows() int { return len(w.wins) }

// WindowSnapshot is one window's digest: the per-window quantiles that
// feed latency-over-time tables and GaugeSeries counter tracks, plus the
// SLO violation count behind burn-rate reporting.
type WindowSnapshot struct {
	// Start is the first cycle the window covers; it spans
	// [Start, Start+Width).
	Start uint64
	// Count and Over are the window's sample count and how many of those
	// exceeded the SLO bound.
	Count uint64
	Over  uint64
	// P50, P99 and Max digest the window's latency distribution.
	P50 float64
	P99 float64
	Max uint64
}

// Snapshots digests every retained window, ascending by start cycle.
func (w *Windowed) Snapshots() []WindowSnapshot {
	snaps := make([]WindowSnapshot, len(w.wins))
	for i := range w.wins {
		win := &w.wins[i]
		snaps[i] = WindowSnapshot{
			Start: win.start,
			Count: win.hist.Count(),
			Over:  win.over,
			P50:   win.hist.P50(),
			P99:   win.hist.P99(),
			Max:   win.hist.Max(),
		}
	}
	return snaps
}

// Merge folds every window of other into w. Both sides must share the
// same base width and SLO bound (they come from the same metric measured
// by different clients); the merged width is the wider of the two, and
// merging identically-shaped inputs in any order yields identical state.
func (w *Windowed) Merge(other *Windowed) {
	if other == nil || (other.total.Count() == 0 && len(other.wins) == 0) {
		return
	}
	if w.base != other.base || w.slo != other.slo {
		panic(fmt.Sprintf("stats: merging windowed histograms with different shapes (width %d/slo %d vs %d/%d)",
			w.base, w.slo, other.base, other.slo))
	}
	// Work on a copy of other's windows so the donor is untouched.
	ows := append([]window(nil), other.wins...)
	width := w.width
	if other.width > width {
		width = other.width
	}
	w.coalesce(width)
	ows = coalesceTo(ows, other.width, width)
	// Merge the two sorted-by-start window lists.
	merged := make([]window, 0, len(w.wins)+len(ows))
	i, j := 0, 0
	for i < len(w.wins) || j < len(ows) {
		switch {
		case j >= len(ows) || (i < len(w.wins) && w.wins[i].start < ows[j].start):
			merged = append(merged, w.wins[i])
			i++
		case i >= len(w.wins) || ows[j].start < w.wins[i].start:
			merged = append(merged, ows[j])
			j++
		default:
			win := w.wins[i]
			win.hist.Merge(&ows[j].hist)
			win.over += ows[j].over
			merged = append(merged, win)
			i, j = i+1, j+1
		}
	}
	w.wins = merged
	for len(w.wins) > windowedCap {
		w.coalesce(w.width * 2)
	}
	w.total.Merge(&other.total)
}

// coalesceTo is coalesce over a detached window list.
func coalesceTo(wins []window, from, to uint64) []window {
	if to <= from {
		return wins
	}
	var kept []window
	for i := range wins {
		start := wins[i].start - wins[i].start%to
		if n := len(kept); n > 0 && kept[n-1].start == start {
			kept[n-1].hist.Merge(&wins[i].hist)
			kept[n-1].over += wins[i].over
		} else {
			kept = append(kept, window{start: start, over: wins[i].over, hist: wins[i].hist})
		}
	}
	return kept
}

// Summary renders the one-line digest used by CLIs and golden tests.
func (w *Windowed) Summary() string {
	return fmt.Sprintf("windows=%d width=%d over_slo=%d total: %s",
		len(w.wins), w.width, w.OverSLO(), w.total.Summary())
}

// OverSLO returns the total SLO violations across every window.
func (w *Windowed) OverSLO() uint64 {
	var over uint64
	for i := range w.wins {
		over += w.wins[i].over
	}
	return over
}
