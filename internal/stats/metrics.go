package stats

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// This file holds the observability-layer metric types: log-bucketed
// latency histograms, cycle-stamped gauge timelines, and the Metrics
// registry that names them — the structured telemetry the flat Counters
// cannot express (latency *distributions* per scheme, occupancy *over
// time* per component). Everything is cycle-stamped and append-ordered, so
// two runs of the same seed produce byte-identical metric dumps; no wall
// clock, no map-order iteration (detlint enforces both).

// Histogram accumulates uint64 samples into logarithmic (power-of-two)
// buckets: bucket 0 holds zeros, bucket i holds samples in
// [2^(i-1), 2^i - 1]. It keeps exact count/sum/min/max and answers
// quantile queries by linear interpolation inside the owning bucket —
// the same shape gem5 and production telemetry stacks use, because it is
// fixed-size, allocation-free to observe, and merges losslessly.
type Histogram struct {
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
	buckets [65]uint64 // indexed by bits.Len64(sample)
}

// Observe adds one sample. Allocation-free.
func (h *Histogram) Observe(v uint64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bits.Len64(v)]++
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Min returns the smallest sample (0 with no samples).
func (h *Histogram) Min() uint64 { return h.min }

// Max returns the largest sample (0 with no samples).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the arithmetic mean (0 with no samples).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// bucketBounds returns the inclusive sample range of bucket i.
func bucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 0
	}
	lo = 1 << uint(i-1)
	if i == 64 {
		return lo, ^uint64(0)
	}
	return lo, 1<<uint(i) - 1
}

// Quantile estimates the q-quantile (q in [0,1]) by locating the bucket
// containing the rank and interpolating linearly within its bounds,
// clamped to the observed min/max so small histograms stay exact-ish.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return float64(h.min)
	}
	if q >= 1 {
		return float64(h.max)
	}
	rank := q * float64(h.count-1)
	var cum uint64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		if float64(cum+c) > rank {
			lo, hi := bucketBounds(i)
			if lo < h.min {
				lo = h.min
			}
			if hi > h.max {
				hi = h.max
			}
			if hi <= lo {
				return float64(lo)
			}
			pos := (rank - float64(cum)) / float64(c)
			return float64(lo) + pos*float64(hi-lo)
		}
		cum += c
	}
	return float64(h.max)
}

// P50, P95 and P99 are the quantiles every latency report leads with.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }
func (h *Histogram) P95() float64 { return h.Quantile(0.95) }
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// Merge adds every sample of other into h (bucket-exact).
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.count == 0 || other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
}

// Summary renders the one-line digest used by CLIs and golden tests.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%.0f p95=%.0f p99=%.0f max=%d",
		h.count, h.Mean(), h.P50(), h.P95(), h.P99(), h.max)
}

// GaugePoint is one cycle-stamped gauge sample. Core is -1 for gauges
// that are not per-core.
type GaugePoint struct {
	Cycle uint64
	Core  int16
	Value uint64
}

// gaugeCap bounds a series' retained points; on overflow the series
// decimates deterministically (every second retained point is dropped and
// the sampling stride doubles), so memory stays bounded while the
// timeline keeps full cycle coverage at reduced resolution.
const gaugeCap = 8192

// GaugeSeries is an append-only, cycle-ordered timeline of gauge samples
// (component occupancies, queue depths).
type GaugeSeries struct {
	points []GaugePoint
	stride uint64 // record every stride-th offered sample
	offers uint64
	max    uint64
	last   GaugePoint
}

// Record offers one sample; samples must arrive in non-decreasing cycle
// order (event-driven components guarantee this).
func (g *GaugeSeries) Record(cycle uint64, core int, v uint64) {
	if v > g.max {
		g.max = v
	}
	g.last = GaugePoint{Cycle: cycle, Core: int16(core), Value: v}
	if g.stride == 0 {
		g.stride = 1
	}
	g.offers++
	if (g.offers-1)%g.stride != 0 {
		return
	}
	if len(g.points) >= gaugeCap {
		kept := g.points[:0]
		for i := 0; i < len(g.points); i += 2 {
			kept = append(kept, g.points[i])
		}
		g.points = kept
		g.stride *= 2
		if (g.offers-1)%g.stride != 0 {
			return
		}
	}
	g.points = append(g.points, g.last)
}

// Points returns the retained timeline, oldest first.
func (g *GaugeSeries) Points() []GaugePoint { return append([]GaugePoint(nil), g.points...) }

// Count returns how many samples were offered (including decimated ones).
func (g *GaugeSeries) Count() uint64 { return g.offers }

// Max returns the largest value ever offered.
func (g *GaugeSeries) Max() uint64 { return g.max }

// Last returns the most recent sample (zero value with no samples).
func (g *GaugeSeries) Last() GaugePoint { return g.last }

// Summary renders the one-line digest used by CLIs.
func (g *GaugeSeries) Summary() string {
	return fmt.Sprintf("n=%d max=%d last=%d", g.offers, g.max, g.last.Value)
}

// Metrics is the named registry of histograms and gauge series, the
// structured sibling of Counters. A nil *Metrics is a valid, disabled
// registry: Observe and Sample on nil are allocation-free no-ops, so
// components hold one unconditionally (the same pattern as the nil trace
// recorder). Names live in the same namespace as counters and must be
// registered in Glossary — statlint cross-checks Observe/Sample sites
// against it exactly as it does Inc/Add.
type Metrics struct {
	hists  map[string]*Histogram
	horder []string
	gauges map[string]*GaugeSeries
	gorder []string
	wins   map[string]*Windowed
	worder []string
}

// NewMetrics returns an empty, enabled registry.
func NewMetrics() *Metrics {
	return &Metrics{
		hists:  make(map[string]*Histogram),
		gauges: make(map[string]*GaugeSeries),
		wins:   make(map[string]*Windowed),
	}
}

// Observe adds one sample to histogram name, creating it if needed. Safe
// (and free) on a nil registry.
func (m *Metrics) Observe(name string, v uint64) {
	if m == nil {
		return
	}
	h := m.hists[name]
	if h == nil {
		h = &Histogram{}
		m.hists[name] = h
		m.horder = append(m.horder, name)
	}
	h.Observe(v)
}

// Sample appends one cycle-stamped point to gauge series name, creating it
// if needed. core is -1 for non-core gauges. Safe (and free) on nil.
func (m *Metrics) Sample(name string, cycle uint64, core int, v uint64) {
	if m == nil {
		return
	}
	g := m.gauges[name]
	if g == nil {
		g = &GaugeSeries{}
		m.gauges[name] = g
		m.gorder = append(m.gorder, name)
	}
	g.Record(cycle, core, v)
}

// Hist returns histogram name, or nil if absent (or m is nil).
func (m *Metrics) Hist(name string) *Histogram {
	if m == nil {
		return nil
	}
	return m.hists[name]
}

// Gauge returns gauge series name, or nil if absent (or m is nil).
func (m *Metrics) Gauge(name string) *GaugeSeries {
	if m == nil {
		return nil
	}
	return m.gauges[name]
}

// HistNames returns histogram names in first-touch order.
func (m *Metrics) HistNames() []string {
	if m == nil {
		return nil
	}
	return append([]string(nil), m.horder...)
}

// GaugeNames returns gauge names in first-touch order.
func (m *Metrics) GaugeNames() []string {
	if m == nil {
		return nil
	}
	return append([]string(nil), m.gorder...)
}

// MergeHist folds a standalone histogram into histogram name, creating it
// if needed. Service workloads accumulate per-client histograms outside
// any registry (one goroutine each, no locking) and fold them in here
// after the run; the name must be documented in Glossary like any
// Observe site. Safe (and a no-op) on a nil registry or nil h.
func (m *Metrics) MergeHist(name string, h *Histogram) {
	if m == nil || h == nil {
		return
	}
	dst := m.hists[name]
	if dst == nil {
		dst = &Histogram{}
		m.hists[name] = dst
		m.horder = append(m.horder, name)
	}
	dst.Merge(h)
}

// MergeWindowed folds a standalone windowed histogram into windowed metric
// name, creating it if needed (adopting w's width and SLO bound). Like
// MergeHist, this is the post-run fold for per-client measurements; the
// name must be documented in Glossary — statlint audits MergeWindowed
// sites as writes and Windowed calls as reads. Safe (and a no-op) on a nil
// registry or nil w.
func (m *Metrics) MergeWindowed(name string, w *Windowed) {
	if m == nil || w == nil {
		return
	}
	dst := m.wins[name]
	if dst == nil {
		dst = NewWindowed(w.BaseWidth(), w.SLO())
		if m.wins == nil {
			m.wins = make(map[string]*Windowed)
		}
		m.wins[name] = dst
		m.worder = append(m.worder, name)
	}
	dst.Merge(w)
}

// Windowed returns windowed metric name, or nil if absent (or m is nil).
func (m *Metrics) Windowed(name string) *Windowed {
	if m == nil {
		return nil
	}
	return m.wins[name]
}

// WindowedNames returns windowed metric names in first-touch order.
func (m *Metrics) WindowedNames() []string {
	if m == nil {
		return nil
	}
	return append([]string(nil), m.worder...)
}

// Merge folds every histogram of other into m (gauge timelines are not
// merged: interleaving two machines' timelines has no meaning).
func (m *Metrics) Merge(other *Metrics) {
	if m == nil || other == nil {
		return
	}
	for _, name := range other.horder {
		h := m.hists[name]
		if h == nil {
			h = &Histogram{}
			m.hists[name] = h
			m.horder = append(m.horder, name)
		}
		h.Merge(other.hists[name])
	}
}

// String renders every metric, one per line, sorted by name — the
// deterministic dump behind bbbsim -verbose and the golden tests.
func (m *Metrics) String() string {
	if m == nil {
		return ""
	}
	var b strings.Builder
	hnames := m.HistNames()
	sort.Strings(hnames)
	for _, n := range hnames {
		fmt.Fprintf(&b, "%-32s %s\n", n, m.hists[n].Summary())
	}
	gnames := m.GaugeNames()
	sort.Strings(gnames)
	for _, n := range gnames {
		fmt.Fprintf(&b, "%-32s %s\n", n, m.gauges[n].Summary())
	}
	wnames := m.WindowedNames()
	sort.Strings(wnames)
	for _, n := range wnames {
		fmt.Fprintf(&b, "%-32s %s\n", n, m.wins[n].Summary())
	}
	return b.String()
}

// StringWith renders the metrics like String but annotates each line with
// its meaning from doc (normally the package Glossary).
func (m *Metrics) StringWith(doc map[string]string) string {
	if m == nil {
		return ""
	}
	var b strings.Builder
	render := func(n, summary string) {
		if d := doc[n]; d != "" {
			fmt.Fprintf(&b, "%-32s %s  # %s\n", n, summary, d)
		} else {
			fmt.Fprintf(&b, "%-32s %s\n", n, summary)
		}
	}
	hnames := m.HistNames()
	sort.Strings(hnames)
	for _, n := range hnames {
		render(n, m.hists[n].Summary())
	}
	gnames := m.GaugeNames()
	sort.Strings(gnames)
	for _, n := range gnames {
		render(n, m.gauges[n].Summary())
	}
	wnames := m.WindowedNames()
	sort.Strings(wnames)
	for _, n := range wnames {
		render(n, m.wins[n].Summary())
	}
	return b.String()
}
