package stats

// Glossary is the registry of every counter the simulator increments: name
// -> one-line meaning. It serves two purposes:
//
//   - cmd/bbbvet's statlint pass cross-checks it against the code, both
//     ways: an incremented counter that is neither read with Get nor
//     documented here is reported as dead, and an entry here that nothing
//     increments is reported as stale. The stringly-typed counter
//     namespace thus behaves as if it were declared.
//   - Reporting tools annotate raw counter dumps with it (see
//     Counters.StringWith and bbbsim -verbose).
//
// Keep entries sorted and keep the one-liners in the paper's vocabulary
// (§ references where the event is a paper mechanism).
var Glossary = map[string]string{
	// Per-core battery-backed persist buffers (§III-B, §III-F).
	"bbpb.allocations":           "bbPB entries allocated for persisting stores",
	"bbpb.coalesced":             "persisting stores coalesced into a live bbPB entry",
	"bbpb.crash_drained":         "bbPB entries flushed by the battery on a crash (flush-on-fail)",
	"bbpb.drain_after_migration": "drains that completed after their entry migrated away",
	"bbpb.drains":                "bbPB entries drained to the NVMM write queue",
	"bbpb.forced_drains":         "drains forced by LLC eviction to keep dirty inclusion (§III-B)",
	"bbpb.migrated_out":          "bbPB entries migrated to a remote writer's buffer (Fig. 6 a/b)",
	"bbpb.rejections":            "persisting stores rejected by a full bbPB (Fig. 8a)",

	// clwb instruction (PMEM baseline's explicit persist path).
	"clwb.clean":      "clwb hits on clean or absent lines (lookup cost only)",
	"clwb.writebacks": "clwb writebacks of dirty lines to the memory controller",

	// Core / store-buffer events.
	"core.atomics":             "atomic read-modify-writes executed",
	"core.clwbs":               "clwb instructions executed",
	"core.compute_cycles":      "cycles spent in modelled computation between accesses",
	"core.epoch_barriers":      "epoch barriers issued (BEP programming model)",
	"core.fences":              "store fences executed (PMEM programming model)",
	"core.loads":               "loads executed",
	"core.sb_forwards":         "loads forwarded from the store buffer",
	"core.sb_full_stalls":      "stalls on a full store buffer",
	"core.sb_overlap_stalls":   "store-buffer drains stalled on an overlapping older store",
	"core.sb_reordered_drains": "store-buffer drains issued out of program order (relaxed mode)",
	"core.stores":              "stores executed",

	// Private L1D caches.
	"l1.atomics":            "atomics applied at the L1 mutation point",
	"l1.back_invalidations": "L1 copies invalidated by inclusive-L2 evictions",
	"l1.evictions":          "L1 victims evicted for fills",
	"l1.interventions":      "dirty-sharer interventions through the directory",
	"l1.invalidations":      "L1 copies invalidated by remote writers",
	"l1.load_hits":          "loads hitting the local L1D",
	"l1.load_misses":        "loads missing the local L1D",
	"l1.store_hits":         "stores hitting the local L1D in M/E",
	"l1.store_misses":       "stores missing the local L1D",
	"l1.store_prefetches":   "exclusive (store-intent) prefetches issued",
	"l1.store_upgrades":     "stores upgrading a Shared line to Modified",

	// Shared inclusive L2 (the LLC of Table III).
	"l2.evictions":          "L2 victims evicted for fills",
	"l2.hits":               "L1-miss requests hitting the L2",
	"l2.misses":             "requests missing the whole SRAM hierarchy",
	"l2.writebacks":         "dirty L2 victims written back to memory",
	"l2.writebacks_skipped": "dirty persistent victims dropped, bbPB drain covers them (§III-E)",

	// Histogram / gauge metrics (tracing only; see Metrics). statlint
	// audits Observe/Sample sites against these entries exactly like
	// counter increments.
	"bbpb.occupancy":         "gauge: live bbPB entries per core over time",
	"bbpb.residency":         "histogram: cycles a bbPB entry lived from allocation to drain",
	"cpu.sb_residency":       "histogram: cycles a store sat in the store buffer before its L1 commit",
	"l2.miss_latency":        "histogram: cycles to fill an L2 miss from memory",
	"persist.vis_to_dur_gap": "histogram: cycles from store visibility (L1 commit) to durability (§III PoV/PoP gap)",
	"vpb.occupancy":          "gauge: live volatile persist-buffer entries per core over time",
	"wpq.depth":              "gauge: NVMM write-pending-queue depth over time",
	"wpq.residency":          "histogram: cycles a write waited in the NVMM WPQ before reaching the medium",

	// KV service tier (internal/kvservice): request-level latency measured
	// against the deterministic arrival schedule, folded into Result.Metrics
	// after the run (MergeHist), so `Result` carries p50/p95/p99 per scheme.
	"kv.batch_size":  "histogram: requests per committed service batch",
	"kv.lat":         "histogram: cycles from request arrival to durable batch commit",
	"kv.lat.delete":  "histogram: delete-request latency in cycles",
	"kv.lat.get":     "histogram: get-request latency in cycles",
	"kv.lat.put":     "histogram: put-request latency in cycles",
	"kv.lat.scan":    "histogram: scan-request latency in cycles",
	"kv.lat.win":     "windowed: per-time-window latency percentiles and SLO over-counts (bbbkv -timeline)",
	"kv.lat.win.p50": "gauge: per-window median latency over time, projected from kv.lat.win",
	"kv.lat.win.p99": "gauge: per-window p99 latency over time, projected from kv.lat.win",
	"kv.queue_delay": "histogram: cycles a request waited before its batch opened",

	// Durability provenance (tracing only): commit-to-durable matching.
	"persist.resolved_stores":   "committed persisting stores matched to a durability event",
	"persist.unresolved_stores": "committed persisting stores never observed durable (would need flush-on-fail)",

	// Persisting-store admission (§III-D ordering invariants).
	"store.persist_commit_waits": "commits re-stalled when the reserved bbPB slot vanished",
	"store.persist_rejected":     "stores stalled at issue because the bbPB could not accept",
	"store.persisting":           "stores that entered the persistence domain at L1-commit",

	// Volatile epoch persist buffers (BEP comparison design, §III-A).
	"vpb.allocations":   "volatile persist-buffer entries allocated",
	"vpb.coalesced":     "stores coalesced into same-epoch volatile entries",
	"vpb.crash_lost":    "buffered lines lost at a crash (no battery, the BEP hazard)",
	"vpb.drains":        "volatile persist-buffer entries drained in epoch order",
	"vpb.epochs":        "epoch boundaries recorded",
	"vpb.forced_drains": "epoch-ordered drains forced by LLC evictions",
	"vpb.rejections":    "stores rejected by a full volatile persist buffer",

	// Memory controllers (per-controller prefix: dram. / nvmm.).
	"dram.crash_drained":   "DRAM WPQ entries flushed at the crash point",
	"dram.reads":           "line reads served by the DRAM controller",
	"dram.wpq_coalesced":   "writes coalesced into a pending DRAM WPQ entry",
	"dram.wpq_drains":      "DRAM WPQ entries drained to the medium",
	"dram.wpq_full_stalls": "writes stalled on a full DRAM WPQ",
	"dram.wpq_read_hits":   "reads served from the DRAM WPQ",
	"dram.writes":          "line writes accepted by the DRAM controller",
	"nvmm.crash_drained":   "NVMM WPQ entries flushed at the crash point (ADR domain)",
	"nvmm.reads":           "line reads served by the NVMM controller",
	"nvmm.wpq_coalesced":   "writes coalesced into a pending NVMM WPQ entry",
	"nvmm.wpq_drains":      "NVMM WPQ entries drained to the persistent medium",
	"nvmm.wpq_full_stalls": "writes stalled on a full NVMM WPQ",
	"nvmm.wpq_read_hits":   "reads served from the NVMM WPQ",
	"nvmm.writes":          "line writes accepted by the NVMM controller (Fig. 7b metric)",
}
