// Package stats provides the lightweight counters and summary helpers used
// by the simulator and by the benchmark harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counters is a named set of monotonically increasing counters.
type Counters struct {
	m     map[string]*uint64
	order []string
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]*uint64)}
}

// Cell returns a pointer to name's counter cell, registering the counter
// (at its first-touch position in Names) if needed. The pointer stays valid
// for the Counters' lifetime, so hot paths can increment through it without
// repeating the string-map lookup.
func (c *Counters) Cell(name string) *uint64 {
	p := c.m[name]
	if p == nil {
		p = new(uint64)
		c.m[name] = p
		c.order = append(c.order, name)
	}
	return p
}

// Add increments counter name by n, creating it if needed.
func (c *Counters) Add(name string, n uint64) { *c.Cell(name) += n }

// Inc increments counter name by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the value of counter name (zero if never touched).
func (c *Counters) Get(name string) uint64 {
	if p := c.m[name]; p != nil {
		return *p
	}
	return 0
}

// Lazy is a cached handle to one counter for per-event hot paths. The
// counter registers at the first Inc/Add — not at handle creation — so a
// never-touched counter stays out of Names and rendered listings, exactly
// as if the call sites still used Counters.Inc directly.
type Lazy struct {
	c    *Counters
	name string
	p    *uint64
}

// Lazy returns a handle for name bound to c.
func (c *Counters) Lazy(name string) Lazy { return Lazy{c: c, name: name} }

// Add increments the counter by n.
func (l *Lazy) Add(n uint64) {
	if l.p == nil {
		l.p = l.c.Cell(l.name)
	}
	*l.p += n
}

// Inc increments the counter by one.
func (l *Lazy) Inc() { l.Add(1) }

// Names returns counter names in first-touch order.
func (c *Counters) Names() []string { return append([]string(nil), c.order...) }

// Merge adds every counter from other into c.
func (c *Counters) Merge(other *Counters) {
	for _, n := range other.order {
		c.Add(n, *other.m[n])
	}
}

// String renders the counters, one per line, for logs and CLIs.
func (c *Counters) String() string {
	var b strings.Builder
	names := c.Names()
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-32s %12d\n", n, *c.m[n])
	}
	return b.String()
}

// StringWith renders the counters like String but annotates each line with
// its meaning from doc (normally the package Glossary).
func (c *Counters) StringWith(doc map[string]string) string {
	var b strings.Builder
	names := c.Names()
	sort.Strings(names)
	for _, n := range names {
		if d := doc[n]; d != "" {
			fmt.Fprintf(&b, "%-32s %12d  # %s\n", n, *c.m[n], d)
		} else {
			fmt.Fprintf(&b, "%-32s %12d\n", n, *c.m[n])
		}
	}
	return b.String()
}

// Geomean returns the geometric mean of xs. It panics on an empty slice and
// on non-positive values, which would indicate a broken normalization.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Geomean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: Geomean of non-positive value %g", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum of xs (0 for an empty slice).
func Max(xs []float64) float64 {
	m := 0.0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Ratio returns a/b, guarding against divide-by-zero: if b is 0 it returns
// 0 when a is also 0 and +Inf otherwise.
func Ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return a / b
}

// Distribution accumulates scalar samples and reports simple summary
// statistics. It keeps running moments, not the samples themselves.
type Distribution struct {
	n        uint64
	sum      float64
	sumSq    float64
	min, max float64
}

// Observe adds one sample.
func (d *Distribution) Observe(x float64) {
	if d.n == 0 || x < d.min {
		d.min = x
	}
	if d.n == 0 || x > d.max {
		d.max = x
	}
	d.n++
	d.sum += x
	d.sumSq += x * x
}

// Count returns the number of samples.
func (d *Distribution) Count() uint64 { return d.n }

// Mean returns the sample mean (0 with no samples).
func (d *Distribution) Mean() float64 {
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n)
}

// Min returns the smallest sample (0 with no samples).
func (d *Distribution) Min() float64 { return d.min }

// Max returns the largest sample (0 with no samples).
func (d *Distribution) Max() float64 { return d.max }

// StdDev returns the population standard deviation.
func (d *Distribution) StdDev() float64 {
	if d.n == 0 {
		return 0
	}
	m := d.Mean()
	v := d.sumSq/float64(d.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}
