//go:build invariant

// Step-wise bookkeeping audit of both persist-buffer organizations:
// standalone buffers (no hierarchy) are driven through fill, coalesce,
// threshold drain, forced drain, and migration-style removal, with
// invariant.Check after every engine event verifying occupancy, capacity,
// allocation-sequence order, and the in-order head-only-drain rule.
package bbpb_test

import (
	"testing"

	"bbb/internal/bbpb"
	"bbb/internal/engine"
	"bbb/internal/invariant"
	"bbb/internal/memctrl"
	"bbb/internal/memory"
)

type bufRig struct {
	t   *testing.T
	eng *engine.Engine
	mem *memory.Memory
	buf bbpb.PersistBuffer
}

func newBufRig(t *testing.T, entries int, proc bool) *bufRig {
	t.Helper()
	eng := engine.New()
	mem := memory.New(memory.DefaultLayout())
	nvmm := memctrl.New(memctrl.DefaultNVMM(), eng, mem)
	cfg := bbpb.Config{Entries: entries, DrainThreshold: 0.75}
	r := &bufRig{t: t, eng: eng, mem: mem}
	if proc {
		r.buf = bbpb.NewProcSide(cfg, 0, eng, nvmm)
	} else {
		r.buf = bbpb.New(cfg, 0, eng, nvmm)
	}
	return r
}

func (r *bufRig) addr(n uint64) memory.Addr {
	return r.mem.Layout().PersistentBase + memory.Addr(n)*memory.LineSize
}

func (r *bufRig) check() {
	r.t.Helper()
	if err := invariant.Check(invariant.View{Bufs: []bbpb.PersistBuffer{r.buf}}); err != nil {
		r.t.Fatalf("cycle %d: %v", r.eng.Now(), err)
	}
}

// step drains the event queue one event at a time, auditing between events.
func (r *bufRig) step() {
	r.t.Helper()
	for r.eng.Step() {
		r.check()
	}
}

func (r *bufRig) put(n uint64, v byte) {
	r.t.Helper()
	var d [memory.LineSize]byte
	d[0] = v
	if !r.buf.Put(r.addr(n), &d) {
		r.t.Fatalf("Put of line %d rejected", n)
	}
	r.check()
}

func runOrganizations(t *testing.T, fn func(t *testing.T, proc bool)) {
	t.Run("llc-side", func(t *testing.T) { fn(t, false) })
	t.Run("proc-side", func(t *testing.T) { fn(t, true) })
}

func TestStepwiseFillAndThresholdDrain(t *testing.T) {
	runOrganizations(t, func(t *testing.T, proc bool) {
		r := newBufRig(t, 8, proc)
		// Fill past the 75% threshold so background drains start, then keep
		// inserting while they complete; every event in between is audited.
		for i := uint64(0); i < 20; i++ {
			if r.buf.CanAccept(r.addr(i)) {
				r.put(i, byte(i))
			}
			r.step()
		}
		r.step()
		r.check()
	})
}

func TestStepwiseCoalesceKeepsSequenceOrder(t *testing.T) {
	runOrganizations(t, func(t *testing.T, proc bool) {
		r := newBufRig(t, 8, proc)
		// Re-writing a buffered line coalesces in place; the audit confirms
		// the allocation order stays strictly increasing throughout.
		for round := byte(0); round < 3; round++ {
			for i := uint64(0); i < 4; i++ {
				r.put(i, round)
				r.step()
			}
		}
		r.step()
		r.check()
	})
}

func TestStepwiseForceDrain(t *testing.T) {
	runOrganizations(t, func(t *testing.T, proc bool) {
		r := newBufRig(t, 8, proc)
		for i := uint64(0); i < 4; i++ {
			r.put(i, byte(i))
		}
		// Force the SECOND entry out (an LLC eviction of its block). The
		// proc-side buffer drains everything up to it in order; the
		// LLC-side buffer drains just that entry. Both must keep the
		// bookkeeping invariants at every event.
		done := false
		r.buf.ForceDrain(r.addr(1), func() { done = true })
		r.check()
		r.step()
		if !done {
			t.Fatal("forced drain never completed")
		}
		r.check()
	})
}

func TestStepwiseMigrationRemove(t *testing.T) {
	// Migration (Fig. 6) removes the entry from the old owner's buffer and
	// re-Puts it in the new owner's; audit both buffers across the handoff.
	r0 := newBufRig(t, 8, false)
	eng, mem := r0.eng, r0.mem
	nvmm := memctrl.New(memctrl.DefaultNVMM(), eng, mem)
	b1 := bbpb.New(bbpb.Config{Entries: 8, DrainThreshold: 0.75}, 1, eng, nvmm)
	bufs := []bbpb.PersistBuffer{r0.buf, b1}
	check := func() {
		t.Helper()
		if err := invariant.Check(invariant.View{Bufs: bufs}); err != nil {
			t.Fatalf("cycle %d: %v", eng.Now(), err)
		}
	}
	for i := uint64(0); i < 4; i++ {
		r0.put(i, byte(i))
		check()
	}
	for i := uint64(0); i < 4; i++ {
		data, ok := r0.buf.(*bbpb.Buffer).Remove(r0.addr(i))
		if !ok {
			t.Fatalf("line %d not found for migration", i)
		}
		check()
		if !b1.Put(r0.addr(i), &data) {
			t.Fatalf("destination rejected migrated line %d", i)
		}
		check()
		for eng.Step() {
			check()
		}
	}
	if occ := b1.Occupancy(); occ != 4 {
		t.Fatalf("destination occupancy = %d, want 4", occ)
	}
	check()
}
