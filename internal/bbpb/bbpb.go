// Package bbpb implements the paper's central contribution: the per-core
// battery-backed persist buffer (bbPB) that sits next to the L1D and serves
// as the point of persistency, closing the PoV/PoP gap.
//
// Two organizations are provided (§III-B):
//
//   - Buffer: the memory-side organization the paper adopts. Entries are
//     cache blocks already inside the persistence domain, so stores coalesce
//     freely, entries drain out of order (FCFS here, per §III-F), and drains
//     happen lazily above an occupancy threshold.
//
//   - ProcSide: the processor-side alternative used as a comparison point in
//     §V-C. Entries are per-store, must drain in program order, and may only
//     coalesce when consecutive stores hit the same block — which is why it
//     writes NVMM ~2.8x more.
//
// Both are battery backed: CrashDrain flushes every entry (including ones
// mid-flight) to the durable image, modelling flush-on-fail.
package bbpb

import (
	"fmt"

	"bbb/internal/engine"
	"bbb/internal/memctrl"
	"bbb/internal/memory"
	"bbb/internal/stats"
	"bbb/internal/trace"
)

// Config sizes a persist buffer.
type Config struct {
	Entries        int
	DrainThreshold float64 // start draining when occupancy exceeds this fraction
}

// DefaultConfig is the paper's default: 32 entries, 75% drain threshold.
func DefaultConfig() Config { return Config{Entries: 32, DrainThreshold: 0.75} }

// PersistBuffer is the behaviour the rest of the system depends on, so the
// memory-side and processor-side organizations are interchangeable.
type PersistBuffer interface {
	// Put records a persisting store of the full (already updated) line
	// data. It reports false when the buffer is full and cannot accept the
	// store, in which case the core must stall and retry; use WaitSpace to
	// learn when to retry.
	Put(addr memory.Addr, data *[memory.LineSize]byte) bool
	// CanAccept reports whether a Put for addr would succeed right now,
	// letting a store reserve its slot before entering the coherence
	// transaction.
	CanAccept(addr memory.Addr) bool
	// Has reports whether addr currently has an entry.
	Has(addr memory.Addr) bool
	// Remove deletes addr's entry without draining it, returning its data.
	// Used when a block migrates to another core's bbPB on a remote write
	// (Fig. 6 a/b): the requester becomes responsible for draining.
	Remove(addr memory.Addr) ([memory.LineSize]byte, bool)
	// ForceDrain immediately drains addr's entry (bypassing the threshold)
	// and calls done once the line is durable; used to maintain LLC dirty
	// inclusion when the LLC evicts the block. done fires immediately if
	// the entry is absent.
	ForceDrain(addr memory.Addr, done func())
	// WaitSpace registers fn to run once after the next entry frees up.
	WaitSpace(fn func())
	// Occupancy reports the number of live entries.
	Occupancy() int
	// CrashDrain flushes every entry to the durable image via write,
	// returning the number of lines drained. Entries drain in the
	// organization's required order.
	CrashDrain(write func(memory.Addr, *[memory.LineSize]byte)) int
	// Counters exposes the buffer's statistics.
	Counters() *stats.Counters

	// Cap reports the buffer's entry capacity (Config.Entries).
	Cap() int
	// InOrder reports whether the organization must drain in program order
	// (processor-side) rather than freely (memory-side).
	InOrder() bool
	// ForEachEntry calls fn for every live entry in allocation order with
	// its block address, allocation sequence number (strictly increasing
	// over the buffer's lifetime) and whether a drain is in flight.
	// Read-only; the runtime invariant checker audits buffer state with it.
	ForEachEntry(fn func(addr memory.Addr, seq uint64, draining bool))
}

type entry struct {
	addr     memory.Addr
	seq      uint64
	alloc    engine.Cycle // cycle the entry was allocated, for residency stats
	data     [memory.LineSize]byte
	draining bool
}

// Buffer is the memory-side bbPB.
type Buffer struct {
	cfg     Config
	coreID  int
	eng     *engine.Engine
	nvmm    *memctrl.Controller
	entries []entry // FIFO allocation order for FCFS draining
	// addrs mirrors entries' block addresses index-for-index. find is the
	// hottest query in the persist path (every store probes the buffer), and
	// scanning an 8-byte-stride address slice is far cheaper than striding
	// the ~100-byte entry structs.
	addrs   []memory.Addr
	seq     uint64 // last allocation sequence number handed out
	waiters []func()
	stats   *stats.Counters

	// Cached handles for the per-event counters; registration still happens
	// at first increment, so counter listings are unchanged.
	nCoalesced, nRejections, nAllocations, nMigratedOut stats.Lazy
	nDrains, nDrainAfterMigration, nForcedDrains        stats.Lazy

	drainFree *drainOp // pooled drain completions
}

// drainOp is a pooled WPQ-write completion for one in-flight drain,
// replacing the per-drain capturing closure.
type drainOp struct {
	b     *Buffer
	next  *drainOp
	addr  memory.Addr
	done  func()
	runFn func()
}

func (b *Buffer) getDrainOp() *drainOp {
	op := b.drainFree
	if op == nil {
		op = &drainOp{b: b}
		op.runFn = func() {
			buf := op.b
			addr, done := op.addr, op.done
			op.done = nil
			op.next = buf.drainFree
			buf.drainFree = op
			buf.finishDrain(addr)
			if done != nil {
				done()
			}
		}
		return op
	}
	b.drainFree = op.next
	op.next = nil
	return op
}

var _ PersistBuffer = (*Buffer)(nil)

// New builds a memory-side bbPB for one core, draining into the NVMM
// controller's WPQ.
func New(cfg Config, coreID int, eng *engine.Engine, nvmm *memctrl.Controller) *Buffer {
	if cfg.Entries <= 0 {
		panic("bbpb: Entries must be positive")
	}
	b := &Buffer{cfg: cfg, coreID: coreID, eng: eng, nvmm: nvmm, stats: stats.NewCounters()}
	b.nCoalesced = b.stats.Lazy("bbpb.coalesced")
	b.nRejections = b.stats.Lazy("bbpb.rejections")
	b.nAllocations = b.stats.Lazy("bbpb.allocations")
	b.nMigratedOut = b.stats.Lazy("bbpb.migrated_out")
	b.nDrains = b.stats.Lazy("bbpb.drains")
	b.nDrainAfterMigration = b.stats.Lazy("bbpb.drain_after_migration")
	b.nForcedDrains = b.stats.Lazy("bbpb.forced_drains")
	return b
}

// Counters returns the buffer's statistics counters.
func (b *Buffer) Counters() *stats.Counters { return b.stats }

func (b *Buffer) find(addr memory.Addr) int {
	for i, a := range b.addrs {
		if a == addr {
			return i
		}
	}
	return -1
}

// Put implements PersistBuffer. Coalescing onto an existing entry always
// succeeds, even when the buffer is full — that is the memory-side
// organization's key advantage.
func (b *Buffer) Put(addr memory.Addr, data *[memory.LineSize]byte) bool {
	if i := b.find(addr); i >= 0 && !b.entries[i].draining {
		b.entries[i].data = *data
		b.nCoalesced.Inc()
		b.eng.EmitTrace(trace.KindBufCoalesce, b.coreID, addr, uint64(len(b.entries)))
		return true
	}
	if len(b.entries) >= b.cfg.Entries {
		b.nRejections.Inc()
		b.eng.EmitTrace(trace.KindBufReject, b.coreID, addr, uint64(len(b.entries)))
		return false
	}
	b.seq++
	b.entries = append(b.entries, entry{addr: addr, seq: b.seq, alloc: b.eng.Now(), data: *data})
	b.addrs = append(b.addrs, addr)
	b.nAllocations.Inc()
	b.eng.EmitTrace(trace.KindBufAlloc, b.coreID, addr, uint64(len(b.entries)))
	b.eng.Metrics.Sample("bbpb.occupancy", uint64(b.eng.Now()), b.coreID, uint64(len(b.entries)))
	b.maybeDrain()
	return true
}

// Has implements PersistBuffer.
func (b *Buffer) Has(addr memory.Addr) bool { return b.find(addr) >= 0 }

// CanAccept implements PersistBuffer: a resident block coalesces even when
// the buffer is full; otherwise a free entry is required.
func (b *Buffer) CanAccept(addr memory.Addr) bool {
	if i := b.find(addr); i >= 0 && !b.entries[i].draining {
		return true
	}
	return len(b.entries) < b.cfg.Entries
}

// Remove implements PersistBuffer.
func (b *Buffer) Remove(addr memory.Addr) ([memory.LineSize]byte, bool) {
	i := b.find(addr)
	if i < 0 {
		return [memory.LineSize]byte{}, false
	}
	data := b.entries[i].data
	b.deleteAt(i)
	b.nMigratedOut.Inc()
	b.eng.EmitTrace(trace.KindBufMigrate, b.coreID, addr, 0)
	return data, true
}

func (b *Buffer) deleteAt(i int) {
	b.entries = append(b.entries[:i], b.entries[i+1:]...)
	b.addrs = append(b.addrs[:i], b.addrs[i+1:]...)
	b.eng.Metrics.Sample("bbpb.occupancy", uint64(b.eng.Now()), b.coreID, uint64(len(b.entries)))
	b.wakeOne()
}

func (b *Buffer) wakeOne() {
	if len(b.waiters) > 0 && len(b.entries) < b.cfg.Entries {
		fn := b.waiters[0]
		b.waiters = b.waiters[1:]
		b.eng.Schedule(0, fn)
	}
}

// WaitSpace implements PersistBuffer.
func (b *Buffer) WaitSpace(fn func()) {
	if len(b.entries) < b.cfg.Entries {
		b.eng.Schedule(0, fn)
		return
	}
	b.waiters = append(b.waiters, fn)
}

// Occupancy implements PersistBuffer.
func (b *Buffer) Occupancy() int { return len(b.entries) }

// Cap implements PersistBuffer.
func (b *Buffer) Cap() int { return b.cfg.Entries }

// InOrder implements PersistBuffer: memory-side entries drain freely.
func (b *Buffer) InOrder() bool { return false }

// ForEachEntry implements PersistBuffer.
func (b *Buffer) ForEachEntry(fn func(addr memory.Addr, seq uint64, draining bool)) {
	for i := range b.entries {
		fn(b.entries[i].addr, b.entries[i].seq, b.entries[i].draining)
	}
}

func (b *Buffer) threshold() int {
	return int(float64(b.cfg.Entries) * b.cfg.DrainThreshold)
}

func (b *Buffer) numDraining() int {
	n := 0
	for i := range b.entries {
		if b.entries[i].draining {
			n++
		}
	}
	return n
}

// maybeDrain starts FCFS drains while the occupancy projected after
// in-flight drains still exceeds the threshold (§III-F).
func (b *Buffer) maybeDrain() {
	for len(b.entries)-b.numDraining() > b.threshold() {
		i := b.oldestNotDraining()
		if i < 0 {
			return
		}
		b.startDrain(i, nil)
	}
}

func (b *Buffer) oldestNotDraining() int {
	for i := range b.entries {
		if !b.entries[i].draining {
			return i
		}
	}
	return -1
}

// startDrain writes entry i to the NVMM WPQ; done (optional) fires when the
// line is durable.
func (b *Buffer) startDrain(i int, done func()) {
	b.entries[i].draining = true
	addr, data := b.entries[i].addr, b.entries[i].data
	b.nDrains.Inc()
	b.eng.EmitTrace(trace.KindBufDrain, b.coreID, addr, uint64(len(b.entries)))
	op := b.getDrainOp()
	op.addr, op.done = addr, done
	b.nvmm.Write(addr, data, op.runFn)
}

func (b *Buffer) finishDrain(addr memory.Addr) {
	for i := range b.entries {
		if b.entries[i].addr == addr && b.entries[i].draining {
			b.eng.Metrics.Observe("bbpb.residency", uint64(b.eng.Now()-b.entries[i].alloc))
			b.deleteAt(i)
			b.maybeDrain()
			return
		}
	}
	// Entry migrated out while the drain was in flight; nothing to delete.
	b.nDrainAfterMigration.Inc()
}

// ForceDrain implements PersistBuffer.
func (b *Buffer) ForceDrain(addr memory.Addr, done func()) {
	i := b.find(addr)
	if i < 0 {
		b.eng.Schedule(0, done)
		return
	}
	if b.entries[i].draining {
		// Already on its way to the WPQ; by the time the in-flight write is
		// accepted the line is durable, so piggyback on a zero-cost event
		// scheduled behind the WPQ accept latency.
		b.eng.Schedule(b.nvmm.Config().WPQAcceptLat, done)
		return
	}
	b.nForcedDrains.Inc()
	b.eng.EmitTrace(trace.KindBufForcedDrain, b.coreID, addr, uint64(len(b.entries)))
	b.startDrain(i, done)
}

// CrashDrain implements PersistBuffer. Memory-side entries may drain in any
// order; allocation order is used.
func (b *Buffer) CrashDrain(write func(memory.Addr, *[memory.LineSize]byte)) int {
	n := len(b.entries)
	for i := range b.entries {
		write(b.entries[i].addr, &b.entries[i].data)
		b.eng.EmitTrace(trace.KindCrashDrain, b.coreID, b.entries[i].addr, 0)
	}
	b.entries = b.entries[:0]
	b.addrs = b.addrs[:0]
	b.stats.Add("bbpb.crash_drained", uint64(n))
	return n
}

func (b *Buffer) String() string {
	return fmt.Sprintf("bbPB[core %d: %d/%d entries]", b.coreID, len(b.entries), b.cfg.Entries)
}
