package bbpb

import (
	"bbb/internal/engine"
	"bbb/internal/memctrl"
	"bbb/internal/memory"
	"bbb/internal/stats"
	"bbb/internal/trace"
)

// ProcSide is the processor-side persist-buffer organization (§III-B, §V-C):
// entries track individual persisting stores, must drain in program order,
// and coalesce only when the incoming store hits the same block as the most
// recently allocated entry. Because entries are not yet in the persistence
// domain in the traditional design, reordering/coalescing beyond that would
// violate persist ordering — this is what costs it ~2.8x more NVMM writes.
//
// Like the paper's BBB-side comparison we still battery-back it (so crash
// draining works and strict persistency holds); the organization is what
// differs, not the battery.
type ProcSide struct {
	cfg      Config
	coreID   int
	eng      *engine.Engine
	nvmm     *memctrl.Controller
	entries  []entry // strict program order
	seq      uint64  // last allocation sequence number handed out
	draining bool    // head drain in flight (in-order: one at a time)
	waiters  []func()
	stats    *stats.Counters
}

var _ PersistBuffer = (*ProcSide)(nil)

// NewProcSide builds a processor-side persist buffer for one core.
func NewProcSide(cfg Config, coreID int, eng *engine.Engine, nvmm *memctrl.Controller) *ProcSide {
	if cfg.Entries <= 0 {
		panic("bbpb: Entries must be positive")
	}
	return &ProcSide{cfg: cfg, coreID: coreID, eng: eng, nvmm: nvmm, stats: stats.NewCounters()}
}

// Counters returns the buffer's statistics counters.
func (p *ProcSide) Counters() *stats.Counters { return p.stats }

// Put implements PersistBuffer. Only a store to the same block as the
// youngest entry may coalesce (two subsequent stores to one block, §III-B).
func (p *ProcSide) Put(addr memory.Addr, data *[memory.LineSize]byte) bool {
	if n := len(p.entries); n > 0 && p.entries[n-1].addr == addr && !p.entries[n-1].draining {
		p.entries[n-1].data = *data
		p.stats.Inc("bbpb.coalesced")
		p.eng.EmitTrace(trace.KindBufCoalesce, p.coreID, addr, uint64(len(p.entries)))
		return true
	}
	if len(p.entries) >= p.cfg.Entries {
		p.stats.Inc("bbpb.rejections")
		p.eng.EmitTrace(trace.KindBufReject, p.coreID, addr, uint64(len(p.entries)))
		return false
	}
	p.seq++
	p.entries = append(p.entries, entry{addr: addr, seq: p.seq, alloc: p.eng.Now(), data: *data})
	p.stats.Inc("bbpb.allocations")
	p.eng.EmitTrace(trace.KindBufAlloc, p.coreID, addr, uint64(len(p.entries)))
	p.eng.Metrics.Sample("bbpb.occupancy", uint64(p.eng.Now()), p.coreID, uint64(len(p.entries)))
	p.maybeDrain()
	return true
}

// CanAccept implements PersistBuffer: only a store hitting the youngest
// entry's block may coalesce; otherwise a free entry is required.
func (p *ProcSide) CanAccept(addr memory.Addr) bool {
	if n := len(p.entries); n > 0 && p.entries[n-1].addr == addr && !p.entries[n-1].draining {
		return true
	}
	return len(p.entries) < p.cfg.Entries
}

// Has implements PersistBuffer.
func (p *ProcSide) Has(addr memory.Addr) bool {
	for i := range p.entries {
		if p.entries[i].addr == addr {
			return true
		}
	}
	return false
}

// Remove implements PersistBuffer. In-order draining means removing an
// interior entry would reorder persists; instead the youngest matching entry
// is surrendered and any older entries for the block drain normally (they
// hold older, still order-consistent data).
func (p *ProcSide) Remove(addr memory.Addr) ([memory.LineSize]byte, bool) {
	for i := len(p.entries) - 1; i >= 0; i-- {
		if p.entries[i].addr == addr && !p.entries[i].draining {
			data := p.entries[i].data
			p.entries = append(p.entries[:i], p.entries[i+1:]...)
			p.stats.Inc("bbpb.migrated_out")
			p.eng.EmitTrace(trace.KindBufMigrate, p.coreID, addr, 0)
			p.wakeOne()
			return data, true
		}
	}
	return [memory.LineSize]byte{}, false
}

func (p *ProcSide) wakeOne() {
	if len(p.waiters) > 0 && len(p.entries) < p.cfg.Entries {
		fn := p.waiters[0]
		p.waiters = p.waiters[1:]
		p.eng.Schedule(0, fn)
	}
}

// WaitSpace implements PersistBuffer.
func (p *ProcSide) WaitSpace(fn func()) {
	if len(p.entries) < p.cfg.Entries {
		p.eng.Schedule(0, fn)
		return
	}
	p.waiters = append(p.waiters, fn)
}

// Occupancy implements PersistBuffer.
func (p *ProcSide) Occupancy() int { return len(p.entries) }

// Cap implements PersistBuffer.
func (p *ProcSide) Cap() int { return p.cfg.Entries }

// InOrder implements PersistBuffer: processor-side entries drain strictly
// in program order, one at a time.
func (p *ProcSide) InOrder() bool { return true }

// ForEachEntry implements PersistBuffer.
func (p *ProcSide) ForEachEntry(fn func(addr memory.Addr, seq uint64, draining bool)) {
	for i := range p.entries {
		fn(p.entries[i].addr, p.entries[i].seq, p.entries[i].draining)
	}
}

func (p *ProcSide) threshold() int {
	return int(float64(p.cfg.Entries) * p.cfg.DrainThreshold)
}

// maybeDrain drains the head entry whenever occupancy exceeds the threshold.
// Ordering requires one in-flight drain at a time.
func (p *ProcSide) maybeDrain() {
	if p.draining || len(p.entries) <= p.threshold() {
		return
	}
	p.drainHead(nil)
}

func (p *ProcSide) drainHead(done func()) {
	p.draining = true
	p.entries[0].draining = true
	addr, data := p.entries[0].addr, p.entries[0].data
	allocCycle := p.entries[0].alloc
	p.stats.Inc("bbpb.drains")
	p.eng.EmitTrace(trace.KindBufDrain, p.coreID, addr, uint64(len(p.entries)))
	p.nvmm.Write(addr, data, func() {
		p.draining = false
		if len(p.entries) > 0 && p.entries[0].addr == addr && p.entries[0].draining {
			p.entries = p.entries[1:]
			p.eng.Metrics.Observe("bbpb.residency", uint64(p.eng.Now()-allocCycle))
			p.eng.Metrics.Sample("bbpb.occupancy", uint64(p.eng.Now()), p.coreID, uint64(len(p.entries)))
			p.wakeOne()
		}
		p.maybeDrain()
		if done != nil {
			done()
		}
	})
}

// ForceDrain implements PersistBuffer. In-order draining means everything up
// to and including the youngest entry for addr must drain first, so the head
// is drained repeatedly until no entry for addr remains.
func (p *ProcSide) ForceDrain(addr memory.Addr, done func()) {
	if !p.Has(addr) {
		p.eng.Schedule(0, done)
		return
	}
	p.stats.Inc("bbpb.forced_drains")
	p.eng.EmitTrace(trace.KindBufForcedDrain, p.coreID, addr, uint64(len(p.entries)))
	var step func()
	step = func() {
		if !p.Has(addr) {
			done()
			return
		}
		if p.draining {
			// An in-flight head drain must land first; check again after
			// the WPQ accept latency.
			p.eng.Schedule(p.nvmm.Config().WPQAcceptLat, step)
			return
		}
		p.drainHead(step)
	}
	step()
}

// CrashDrain implements PersistBuffer; entries flush in program order.
func (p *ProcSide) CrashDrain(write func(memory.Addr, *[memory.LineSize]byte)) int {
	n := len(p.entries)
	for i := range p.entries {
		write(p.entries[i].addr, &p.entries[i].data)
		p.eng.EmitTrace(trace.KindCrashDrain, p.coreID, p.entries[i].addr, 0)
	}
	p.entries = p.entries[:0]
	p.stats.Add("bbpb.crash_drained", uint64(n))
	return n
}
