package bbpb

import (
	"testing"
	"testing/quick"

	"bbb/internal/engine"
	"bbb/internal/memctrl"
	"bbb/internal/memory"
)

func setup(t *testing.T, entries int) (*engine.Engine, *memory.Memory, *memctrl.Controller, Config) {
	t.Helper()
	eng := engine.New()
	mem := memory.New(memory.DefaultLayout())
	nvmm := memctrl.New(memctrl.DefaultNVMM(), eng, mem)
	return eng, mem, nvmm, Config{Entries: entries, DrainThreshold: 0.75}
}

func addrOf(mem *memory.Memory, n uint64) memory.Addr {
	return mem.Layout().PersistentBase + memory.Addr(n)*memory.LineSize
}

func lineOf(v byte) [memory.LineSize]byte {
	var d [memory.LineSize]byte
	for i := range d {
		d[i] = v
	}
	return d
}

func TestPutAndCoalesce(t *testing.T) {
	eng, mem, nvmm, cfg := setup(t, 8)
	b := New(cfg, 0, eng, nvmm)
	a := addrOf(mem, 1)
	d1, d2 := lineOf(1), lineOf(2)
	if !b.Put(a, &d1) {
		t.Fatal("first Put rejected")
	}
	if !b.Put(a, &d2) {
		t.Fatal("coalescing Put rejected")
	}
	if b.Occupancy() != 1 {
		t.Fatalf("occupancy = %d, want 1", b.Occupancy())
	}
	if b.Counters().Get("bbpb.coalesced") != 1 {
		t.Fatal("coalesce not counted")
	}
	data, ok := b.Remove(a)
	if !ok || data[0] != 2 {
		t.Fatalf("Remove = %v %v, want latest data 2", data[0], ok)
	}
}

func TestRejectionWhenFull(t *testing.T) {
	eng, mem, nvmm, cfg := setup(t, 2)
	cfg.DrainThreshold = 1.0 // never drain, to force fullness
	b := New(cfg, 0, eng, nvmm)
	d := lineOf(9)
	for i := uint64(0); i < 2; i++ {
		if !b.Put(addrOf(mem, i), &d) {
			t.Fatalf("Put %d rejected early", i)
		}
	}
	if b.Put(addrOf(mem, 99), &d) {
		t.Fatal("Put should be rejected when full")
	}
	if b.Counters().Get("bbpb.rejections") != 1 {
		t.Fatal("rejection not counted")
	}
	// Coalescing to a resident block still succeeds while full (§III-B).
	if !b.Put(addrOf(mem, 1), &d) {
		t.Fatal("coalescing Put must succeed even when full")
	}
	_ = eng
}

func TestThresholdDrainToNVMM(t *testing.T) {
	eng, mem, nvmm, cfg := setup(t, 8) // threshold 6
	b := New(cfg, 0, eng, nvmm)
	for i := uint64(0); i < 8; i++ {
		d := lineOf(byte(i))
		b.Put(addrOf(mem, i), &d)
	}
	eng.Run()
	if b.Occupancy() > 6 {
		t.Fatalf("occupancy = %d after draining, want <= 6", b.Occupancy())
	}
	if b.Counters().Get("bbpb.drains") == 0 {
		t.Fatal("no drains despite exceeding threshold")
	}
	// Drained lines are durable (in WPQ or medium).
	nvmm.CrashDrain()
	var got [memory.LineSize]byte
	mem.PeekLine(addrOf(mem, 0), &got)
	if got[0] != 0 && got[1] != 0 { // line 0 holds zeros; check line 1 instead
		t.Fatal("unexpected data")
	}
	mem.PeekLine(addrOf(mem, 1), &got)
	if got[0] != 1 {
		t.Fatalf("drained line = %d, want 1", got[0])
	}
}

func TestForceDrain(t *testing.T) {
	eng, mem, nvmm, cfg := setup(t, 8)
	b := New(cfg, 0, eng, nvmm)
	a := addrOf(mem, 3)
	d := lineOf(7)
	b.Put(a, &d)
	drained := false
	b.ForceDrain(a, func() { drained = true })
	eng.Run()
	if !drained {
		t.Fatal("ForceDrain done never fired")
	}
	if b.Has(a) {
		t.Fatal("entry still present after forced drain")
	}
	nvmm.CrashDrain()
	var got [memory.LineSize]byte
	mem.PeekLine(a, &got)
	if got[0] != 7 {
		t.Fatal("forced drain did not reach durability")
	}
	if b.Counters().Get("bbpb.forced_drains") != 1 {
		t.Fatal("forced drain not counted")
	}
}

func TestForceDrainAbsent(t *testing.T) {
	eng, mem, nvmm, cfg := setup(t, 8)
	b := New(cfg, 0, eng, nvmm)
	fired := false
	b.ForceDrain(addrOf(mem, 5), func() { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("ForceDrain on absent entry must still call done")
	}
}

func TestWaitSpace(t *testing.T) {
	eng, mem, nvmm, cfg := setup(t, 2)
	cfg.DrainThreshold = 1.0
	b := New(cfg, 0, eng, nvmm)
	d := lineOf(1)
	b.Put(addrOf(mem, 0), &d)
	b.Put(addrOf(mem, 1), &d)
	woken := false
	b.WaitSpace(func() { woken = true })
	eng.Run()
	if woken {
		t.Fatal("waiter woke without space freeing")
	}
	b.Remove(addrOf(mem, 0))
	eng.Run()
	if !woken {
		t.Fatal("waiter not woken after Remove freed space")
	}
}

func TestCrashDrain(t *testing.T) {
	eng, mem, nvmm, cfg := setup(t, 8)
	b := New(cfg, 0, eng, nvmm)
	for i := uint64(0); i < 3; i++ {
		d := lineOf(byte(10 + i))
		b.Put(addrOf(mem, i), &d)
	}
	_ = eng
	n := b.CrashDrain(func(a memory.Addr, d *[memory.LineSize]byte) {
		mem.WriteLine(a, d)
	})
	if n != 3 {
		t.Fatalf("CrashDrain = %d, want 3", n)
	}
	if b.Occupancy() != 0 {
		t.Fatal("entries remain after crash drain")
	}
	var got [memory.LineSize]byte
	mem.PeekLine(addrOf(mem, 2), &got)
	if got[0] != 12 {
		t.Fatal("crash drain lost data")
	}
	_ = nvmm
}

func TestProcSideNoCrossBlockCoalesce(t *testing.T) {
	eng, mem, nvmm, _ := setup(t, 8)
	p := NewProcSide(Config{Entries: 8, DrainThreshold: 1.0}, 0, eng, nvmm)
	a, b2 := addrOf(mem, 0), addrOf(mem, 1)
	d := lineOf(1)
	p.Put(a, &d)  // entry 1
	p.Put(b2, &d) // entry 2
	p.Put(a, &d)  // NOT consecutive with the first a: new entry
	if p.Occupancy() != 3 {
		t.Fatalf("occupancy = %d, want 3 (no cross-block coalescing)", p.Occupancy())
	}
	p.Put(a, &d) // consecutive same block: coalesces
	if p.Occupancy() != 3 {
		t.Fatalf("occupancy = %d, want 3 (consecutive coalesce)", p.Occupancy())
	}
}

func TestProcSideInOrderDrain(t *testing.T) {
	eng, mem, nvmm, _ := setup(t, 4)
	p := NewProcSide(Config{Entries: 4, DrainThreshold: 0.0}, 0, eng, nvmm)
	var order []memory.Addr
	// Track medium write order via a tiny threshold so everything drains.
	for i := uint64(0); i < 4; i++ {
		d := lineOf(byte(i))
		p.Put(addrOf(mem, 3-i), &d) // reverse addresses, program order 3,2,1,0
	}
	eng.Run()
	// All entries drained to WPQ in program order; verify via allocations.
	if p.Occupancy() != 0 {
		t.Fatalf("occupancy = %d, want 0", p.Occupancy())
	}
	if p.Counters().Get("bbpb.drains") != 4 {
		t.Fatalf("drains = %d, want 4", p.Counters().Get("bbpb.drains"))
	}
	_ = order
}

func TestProcSideForceDrain(t *testing.T) {
	eng, mem, nvmm, _ := setup(t, 8)
	p := NewProcSide(Config{Entries: 8, DrainThreshold: 1.0}, 0, eng, nvmm)
	for i := uint64(0); i < 4; i++ {
		d := lineOf(byte(i))
		p.Put(addrOf(mem, i), &d)
	}
	done := false
	p.ForceDrain(addrOf(mem, 2), func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("ForceDrain never completed")
	}
	// Entries 0,1,2 drained in order; entry 3 remains.
	if p.Occupancy() != 1 {
		t.Fatalf("occupancy = %d, want 1", p.Occupancy())
	}
	if p.Has(addrOf(mem, 2)) {
		t.Fatal("target entry still present")
	}
	if !p.Has(addrOf(mem, 3)) {
		t.Fatal("younger unrelated entry should remain")
	}
}

// Property: a memory-side buffer never exceeds capacity, and Put only fails
// when at capacity with a non-resident block.
func TestPropertyCapacityInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		eng := engine.New()
		mem := memory.New(memory.DefaultLayout())
		nvmm := memctrl.New(memctrl.DefaultNVMM(), eng, mem)
		b := New(Config{Entries: 4, DrainThreshold: 1.0}, 0, eng, nvmm)
		for _, op := range ops {
			a := addrOf(mem, uint64(op%16))
			d := lineOf(op)
			ok := b.Put(a, &d)
			if b.Occupancy() > 4 {
				return false
			}
			if !ok && b.Occupancy() < 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
