package bbpb

import (
	"testing"

	"bbb/internal/engine"
	"bbb/internal/memctrl"
	"bbb/internal/memory"
)

func TestMigrationDuringDrainInFlight(t *testing.T) {
	// An entry whose drain is in flight can still migrate out; the landing
	// drain must not corrupt the buffer (the drain_after_migration path).
	eng := engine.New()
	mem := memory.New(memory.DefaultLayout())
	nvmm := memctrl.New(memctrl.DefaultNVMM(), eng, mem)
	b := New(Config{Entries: 4, DrainThreshold: 1.0}, 0, eng, nvmm)
	a := mem.Layout().PersistentBase
	d := lineOf(5)
	b.Put(a, &d)
	b.ForceDrain(a, func() {}) // drain starts; Write called synchronously
	// Migrate before the ack lands.
	if _, ok := b.Remove(a); !ok {
		t.Fatal("Remove failed mid-drain")
	}
	eng.Run() // drain ack fires; entry already gone
	if b.Counters().Get("bbpb.drain_after_migration") != 1 {
		t.Fatal("drain-after-migration not handled")
	}
	if b.Occupancy() != 0 {
		t.Fatalf("occupancy = %d", b.Occupancy())
	}
}

func TestCoalesceRejectedWhileDraining(t *testing.T) {
	// Once an entry's drain snapshot is taken, a new store to the block
	// must get a fresh entry (or stall), never mutate the in-flight data.
	eng := engine.New()
	mem := memory.New(memory.DefaultLayout())
	nvmm := memctrl.New(memctrl.DefaultNVMM(), eng, mem)
	b := New(Config{Entries: 4, DrainThreshold: 1.0}, 0, eng, nvmm)
	a := mem.Layout().PersistentBase
	d1, d2 := lineOf(1), lineOf(2)
	b.Put(a, &d1)
	b.ForceDrain(a, func() {})
	if !b.Put(a, &d2) {
		t.Fatal("fresh Put after drain start rejected despite space")
	}
	if b.Occupancy() != 2 {
		t.Fatalf("occupancy = %d, want 2 (old draining + fresh)", b.Occupancy())
	}
	eng.Run()
	// The fresh entry remains; the drained one is gone.
	if b.Occupancy() != 1 || !b.Has(a) {
		t.Fatalf("after drain: occupancy=%d has=%v", b.Occupancy(), b.Has(a))
	}
	data, _ := b.Remove(a)
	if data[0] != 2 {
		t.Fatalf("surviving data = %d, want the fresh 2", data[0])
	}
}

func TestProcSideRemoveTakesYoungest(t *testing.T) {
	eng := engine.New()
	mem := memory.New(memory.DefaultLayout())
	nvmm := memctrl.New(memctrl.DefaultNVMM(), eng, mem)
	p := NewProcSide(Config{Entries: 8, DrainThreshold: 1.0}, 0, eng, nvmm)
	a := mem.Layout().PersistentBase
	b := a + memory.LineSize
	d1, d2, d3 := lineOf(1), lineOf(2), lineOf(3)
	p.Put(a, &d1)
	p.Put(b, &d2)
	p.Put(a, &d3) // second entry for a (non-consecutive)
	data, ok := p.Remove(a)
	if !ok || data[0] != 3 {
		t.Fatalf("Remove = %d,%v; want the youngest (3)", data[0], ok)
	}
	// The older entry for a remains and drains in order.
	if !p.Has(a) {
		t.Fatal("older entry for a vanished")
	}
}

func TestProcSideCrashDrainOrder(t *testing.T) {
	eng := engine.New()
	mem := memory.New(memory.DefaultLayout())
	nvmm := memctrl.New(memctrl.DefaultNVMM(), eng, mem)
	p := NewProcSide(Config{Entries: 8, DrainThreshold: 1.0}, 0, eng, nvmm)
	base := mem.Layout().PersistentBase
	var order []memory.Addr
	for i := uint64(0); i < 4; i++ {
		d := lineOf(byte(i))
		p.Put(base+memory.Addr(i)*memory.LineSize, &d)
	}
	p.CrashDrain(func(a memory.Addr, _ *[memory.LineSize]byte) {
		order = append(order, a)
	})
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("crash drain out of program order: %v", order)
		}
	}
}

func TestWaitSpaceWithSpaceRunsImmediately(t *testing.T) {
	eng := engine.New()
	mem := memory.New(memory.DefaultLayout())
	nvmm := memctrl.New(memctrl.DefaultNVMM(), eng, mem)
	b := New(Config{Entries: 2, DrainThreshold: 1.0}, 0, eng, nvmm)
	ran := false
	b.WaitSpace(func() { ran = true })
	eng.Run()
	if !ran {
		t.Fatal("waiter on non-full buffer never ran")
	}
}

func TestZeroEntriesPanics(t *testing.T) {
	eng := engine.New()
	mem := memory.New(memory.DefaultLayout())
	nvmm := memctrl.New(memctrl.DefaultNVMM(), eng, mem)
	for _, build := range []func(){
		func() { New(Config{}, 0, eng, nvmm) },
		func() { NewProcSide(Config{}, 0, eng, nvmm) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("zero-entry config did not panic")
				}
			}()
			build()
		}()
	}
}
