// Package memctrl models the DRAM and NVMM memory controllers.
//
// The NVMM controller implements ADR (asynchronous DRAM refresh) semantics
// from the paper's baseline: a write becomes durable the moment it is
// accepted into the controller's write-pending queue (WPQ), which is inside
// the persistence domain and is drained to the NVMM medium by battery on a
// power failure. Reads snoop the WPQ. WPQ entries coalesce by line and drain
// lazily above an occupancy threshold, mirroring the DRAM-controller
// optimizations the paper cites (§III-F).
//
// Timing is a latency + per-channel occupancy model: each 64-byte transfer
// occupies one channel for a bandwidth-derived number of cycles and
// completes after the medium latency.
package memctrl

import (
	"fmt"

	"bbb/internal/engine"
	"bbb/internal/memory"
	"bbb/internal/stats"
	"bbb/internal/trace"
)

// Config describes one controller.
type Config struct {
	Name     string
	Region   memory.Region
	ReadLat  engine.Cycle // medium read latency, cycles
	WriteLat engine.Cycle // medium write latency, cycles
	Channels int
	// ReadOcc/WriteOcc are per-transfer channel occupancies in cycles,
	// i.e. 64 B divided by per-channel bandwidth.
	ReadOcc  engine.Cycle
	WriteOcc engine.Cycle

	// WPQ configuration; WPQEntries == 0 disables the WPQ (DRAM).
	WPQEntries        int
	WPQDrainThreshold float64 // drain when occupancy/capacity exceeds this
	WPQAcceptLat      engine.Cycle
}

// DefaultDRAM returns the Table III DRAM controller at a 2 GHz core clock
// (1 cycle = 0.5 ns): 55 ns read/write.
func DefaultDRAM() Config {
	return Config{
		Name:     "dram",
		Region:   memory.RegionDRAM,
		ReadLat:  110,
		WriteLat: 110,
		Channels: 2,
		ReadOcc:  10,
		WriteOcc: 10,
	}
}

// DefaultNVMM returns the Table III NVMM controller: 150 ns read, 500 ns
// write, ADR WPQ. Occupancies follow the Optane measurements the paper
// cites (~2.3 GB/s write, ~6.6 GB/s read per channel).
func DefaultNVMM() Config {
	return Config{
		Name:              "nvmm",
		Region:            memory.RegionNVMM,
		ReadLat:           300,
		WriteLat:          1000,
		Channels:          2,
		ReadOcc:           20,
		WriteOcc:          56,
		WPQEntries:        32,
		WPQDrainThreshold: 0.75,
		WPQAcceptLat:      8,
	}
}

type wpqEntry struct {
	addr     memory.Addr
	enq      engine.Cycle // cycle the entry was accepted, for residency stats
	data     [memory.LineSize]byte
	draining bool
}

type pendingWrite struct {
	addr memory.Addr
	data [memory.LineSize]byte
	done func()
}

// Controller is one memory controller bound to an engine and the shared
// functional memory.
type Controller struct {
	cfg Config
	eng *engine.Engine
	mem *memory.Memory

	chanFree []engine.Cycle // absolute cycle each channel becomes free

	wpq     []wpqEntry
	waiters []pendingWrite // writes stalled on a full WPQ

	// drainDone is the preallocated medium-write completion (stat only;
	// the trace event fires earlier, when the WPQ slot frees) shared by
	// every WPQ drain; the drained address rides in the event.
	drainDone func(addr uint64)

	readFree  *readOp  // pooled medium-read completions
	drainFree *drainOp // pooled WPQ drain transfers

	// Cached handles for the per-request counters (the names concatenate
	// the controller name, so building them per call would allocate).
	nReads, nWrites, nWPQReadHits, nWPQCoalesced, nWPQFullStalls, nWPQDrains stats.Lazy

	// Stats collects controller counters, prefixed with the config name.
	Stats *stats.Counters
}

// New builds a controller.
func New(cfg Config, eng *engine.Engine, mem *memory.Memory) *Controller {
	if cfg.Channels <= 0 {
		panic("memctrl: Channels must be positive")
	}
	c := &Controller{
		cfg:      cfg,
		eng:      eng,
		mem:      mem,
		chanFree: make([]engine.Cycle, cfg.Channels),
		Stats:    stats.NewCounters(),
	}
	c.nReads = c.Stats.Lazy(c.counter("reads"))
	c.nWrites = c.Stats.Lazy(c.counter("writes"))
	c.nWPQReadHits = c.Stats.Lazy(c.counter("wpq_read_hits"))
	c.nWPQCoalesced = c.Stats.Lazy(c.counter("wpq_coalesced"))
	c.nWPQFullStalls = c.Stats.Lazy(c.counter("wpq_full_stalls"))
	c.nWPQDrains = c.Stats.Lazy(c.counter("wpq_drains"))
	c.drainDone = func(addr uint64) {
		c.nWPQDrains.Inc()
	}
	return c
}

// readOp is a pooled medium-read completion: it fills the caller's buffer
// inside the completion event, replacing the per-read capturing closure.
type readOp struct {
	c     *Controller
	next  *readOp
	addr  memory.Addr
	buf   *[memory.LineSize]byte
	done  func()
	runFn func()
}

func (c *Controller) getReadOp() *readOp {
	op := c.readFree
	if op == nil {
		op = &readOp{c: c}
		op.runFn = func() {
			op.c.mem.ReadLine(op.addr, op.buf)
			done := op.done
			op.buf, op.done = nil, nil
			op.next = op.c.readFree
			op.c.readFree = op
			done()
		}
		return op
	}
	c.readFree = op.next
	op.next = nil
	return op
}

// drainOp is a pooled WPQ drain transfer, replacing the per-drain closure.
type drainOp struct {
	c     *Controller
	next  *drainOp
	addr  memory.Addr
	enq   engine.Cycle
	data  [memory.LineSize]byte
	runFn func()
}

func (c *Controller) getDrainOp() *drainOp {
	op := c.drainFree
	if op == nil {
		op = &drainOp{c: c}
		op.runFn = func() {
			ctl := op.c
			addr, enq := op.addr, op.enq
			ctl.mem.WriteLine(addr, &op.data)
			op.next = ctl.drainFree
			ctl.drainFree = op
			ctl.wpqRemove(addr)
			ctl.eng.EmitTrace(trace.KindWPQDrain, -1, addr, uint64(len(ctl.wpq)))
			ctl.eng.Metrics.Observe("wpq.residency", uint64(ctl.eng.Now()-enq))
			ctl.eng.Metrics.Sample("wpq.depth", uint64(ctl.eng.Now()), -1, uint64(len(ctl.wpq)))
			ctl.admitWaiters()
			ctl.maybeDrain()
		}
		return op
	}
	c.drainFree = op.next
	op.next = nil
	return op
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

func (c *Controller) counter(suffix string) string { return c.cfg.Name + "." + suffix }

// claimChannel reserves the earliest-free channel for occ cycles and returns
// the cycle at which the transfer starts.
func (c *Controller) claimChannel(occ engine.Cycle) engine.Cycle {
	best := 0
	for i, f := range c.chanFree {
		if f < c.chanFree[best] {
			best = i
		}
	}
	start := c.eng.Now()
	if c.chanFree[best] > start {
		start = c.chanFree[best]
	}
	c.chanFree[best] = start + occ
	return start
}

// Read fetches the line at addr, invoking done with its data when the read
// completes. The WPQ (if any) and writes still stalled behind a full WPQ
// are snooped first: a hit returns the queued data at the accept latency
// without touching the medium.
func (c *Controller) Read(addr memory.Addr, done func(data [memory.LineSize]byte)) {
	c.nReads.Inc()
	if data, ok := c.snoop(addr); ok {
		c.nWPQReadHits.Inc()
		c.eng.Schedule(c.cfg.WPQAcceptLat, func() { done(data) })
		return
	}
	start := c.claimChannel(c.cfg.ReadOcc)
	finish := start + c.cfg.ReadLat
	c.eng.At(finish, func() {
		var data [memory.LineSize]byte
		c.mem.ReadLine(addr, &data)
		done(data)
	})
}

// ReadInto fetches the line at addr into *buf, invoking done when the read
// completes. It is the allocation-free counterpart of Read for pooled
// callers: a WPQ snoop hit copies synchronously and schedules done as-is; a
// medium read fills buf inside a pooled completion event. Timing and stats
// match Read exactly.
func (c *Controller) ReadInto(addr memory.Addr, buf *[memory.LineSize]byte, done func()) {
	c.nReads.Inc()
	if data, ok := c.snoop(addr); ok {
		c.nWPQReadHits.Inc()
		*buf = data
		c.eng.Schedule(c.cfg.WPQAcceptLat, done)
		return
	}
	start := c.claimChannel(c.cfg.ReadOcc)
	op := c.getReadOp()
	op.addr, op.buf, op.done = addr, buf, done
	c.eng.At(start+c.cfg.ReadLat, op.runFn)
}

// Write makes the line at addr durable (NVMM) or written (DRAM), invoking
// done at the controller's persist point: WPQ acceptance for a controller
// with a WPQ, medium completion otherwise.
//
// The write is functionally visible to snooping reads from the moment Write
// is called — only the done callback carries timing — so an eviction
// followed immediately by a refetch can never observe stale data.
func (c *Controller) Write(addr memory.Addr, data [memory.LineSize]byte, done func()) {
	c.nWrites.Inc()
	if c.cfg.WPQEntries == 0 {
		c.mem.WriteLine(addr, &data)
		start := c.claimChannel(c.cfg.WriteOcc)
		finish := start + c.cfg.WriteLat
		if done != nil {
			c.eng.At(finish, done)
		}
		return
	}
	c.wpqWrite(pendingWrite{addr: addr, data: data, done: done})
}

// snoop returns the newest queued data for addr, searching stalled writers
// (newest) before the WPQ.
func (c *Controller) snoop(addr memory.Addr) ([memory.LineSize]byte, bool) {
	for i := len(c.waiters) - 1; i >= 0; i-- {
		if c.waiters[i].addr == addr {
			return c.waiters[i].data, true
		}
	}
	if i := c.wpqFind(addr); i >= 0 {
		return c.wpq[i].data, true
	}
	return [memory.LineSize]byte{}, false
}

func (c *Controller) wpqWrite(w pendingWrite) {
	// Coalesce onto an existing entry for the same line, even one already
	// draining (the drain snapshot was taken; a fresh entry is made then).
	if i := c.wpqFind(w.addr); i >= 0 && !c.wpq[i].draining {
		c.wpq[i].data = w.data
		c.nWPQCoalesced.Inc()
		c.ack(w.done)
		return
	}
	if len(c.wpq) >= c.cfg.WPQEntries {
		c.nWPQFullStalls.Inc()
		c.waiters = append(c.waiters, w)
		return
	}
	c.wpq = append(c.wpq, wpqEntry{addr: w.addr, enq: c.eng.Now(), data: w.data})
	c.eng.EmitTrace(trace.KindWPQInsert, -1, w.addr, uint64(len(c.wpq)))
	c.eng.Metrics.Sample("wpq.depth", uint64(c.eng.Now()), -1, uint64(len(c.wpq)))
	c.ack(w.done)
	c.maybeDrain()
}

func (c *Controller) ack(done func()) {
	if done == nil {
		return
	}
	c.eng.Schedule(c.cfg.WPQAcceptLat, done)
}

// wpqFind returns the index of the newest entry for addr (a draining entry
// may coexist with a fresher one written after its drain snapshot), or -1.
func (c *Controller) wpqFind(addr memory.Addr) int {
	for i := len(c.wpq) - 1; i >= 0; i-- {
		if c.wpq[i].addr == addr {
			return i
		}
	}
	return -1
}

// maybeDrain starts medium writes while the occupancy projected after all
// in-flight drains complete still exceeds the threshold.
func (c *Controller) maybeDrain() {
	limit := int(float64(c.cfg.WPQEntries) * c.cfg.WPQDrainThreshold)
	for len(c.wpq)-c.numDraining() > limit {
		i := c.oldestNotDraining()
		if i < 0 {
			return
		}
		c.drainEntry(i)
	}
}

func (c *Controller) numDraining() int {
	n := 0
	for i := range c.wpq {
		if c.wpq[i].draining {
			n++
		}
	}
	return n
}

// oldestNotDraining returns the index of the FCFS drain candidate.
func (c *Controller) oldestNotDraining() int {
	for i := range c.wpq {
		if !c.wpq[i].draining {
			return i
		}
	}
	return -1
}

// drainEntry hands entry i to the medium write pipeline. The WPQ slot frees
// when the transfer starts on its channel (so sustained drain throughput is
// bounded by channel bandwidth, not by the per-write medium latency), and
// the data becomes functionally visible in the image at that same point —
// any later read either snoops a fresher WPQ entry or sees the image.
func (c *Controller) drainEntry(i int) {
	c.wpq[i].draining = true
	op := c.getDrainOp()
	op.addr, op.data, op.enq = c.wpq[i].addr, c.wpq[i].data, c.wpq[i].enq
	start := c.claimChannel(c.cfg.WriteOcc)
	c.eng.At(start, op.runFn)
	c.eng.ScheduleArg(start+c.cfg.WriteLat-c.eng.Now(), c.drainDone, op.addr)
}

func (c *Controller) wpqRemove(addr memory.Addr) {
	for i := range c.wpq {
		if c.wpq[i].addr == addr && c.wpq[i].draining {
			c.wpq = append(c.wpq[:i], c.wpq[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("memctrl %s: draining entry %#x vanished", c.cfg.Name, addr))
}

func (c *Controller) admitWaiters() {
	for len(c.waiters) > 0 && len(c.wpq) < c.cfg.WPQEntries {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		c.wpqWrite(w)
	}
}

// WPQOccupancy reports the current number of WPQ entries.
func (c *Controller) WPQOccupancy() int { return len(c.wpq) }

// PendingLines returns the addresses of every line currently queued in the
// WPQ plus writes stalled behind a full WPQ, in queue order (oldest first,
// stalled writers last). These lines are inside the ADR persistence domain:
// every one of them survives every crash. The crash-image model checker's
// recorder uses this to report the domain-resident pending set.
func (c *Controller) PendingLines() []memory.Addr {
	out := make([]memory.Addr, 0, len(c.wpq)+len(c.waiters))
	for i := range c.wpq {
		out = append(out, c.wpq[i].addr)
	}
	for i := range c.waiters {
		out = append(out, c.waiters[i].addr)
	}
	return out
}

// CrashDrain flushes every WPQ entry (and any stalled writers) straight to
// the memory image, as the ADR battery would on power failure. It returns
// the number of lines drained. Timing-free: used only at crash points and at
// end-of-run finalization.
func (c *Controller) CrashDrain() int {
	n := 0
	for i := range c.wpq {
		c.mem.WriteLine(c.wpq[i].addr, &c.wpq[i].data)
		c.eng.EmitTrace(trace.KindCrashDrain, -1, c.wpq[i].addr, 0)
		n++
	}
	c.wpq = c.wpq[:0]
	for _, w := range c.waiters {
		c.mem.WriteLine(w.addr, &w.data)
		c.eng.EmitTrace(trace.KindCrashDrain, -1, w.addr, 0)
		n++
	}
	c.waiters = nil
	c.Stats.Add(c.counter("crash_drained"), uint64(n))
	return n
}

// MediumWrites reports how many line writes reached the medium, the
// endurance-relevant count used by Fig. 7b.
func (c *Controller) MediumWrites() uint64 {
	return c.mem.Writes[c.cfg.Region]
}
