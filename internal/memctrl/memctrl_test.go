package memctrl

import (
	"testing"

	"bbb/internal/engine"
	"bbb/internal/memory"
)

func newNVMM(t *testing.T) (*engine.Engine, *memory.Memory, *Controller) {
	t.Helper()
	eng := engine.New()
	mem := memory.New(memory.DefaultLayout())
	return eng, mem, New(DefaultNVMM(), eng, mem)
}

func nline(mem *memory.Memory, n uint64) memory.Addr {
	return mem.Layout().NVMMBase + memory.Addr(n)*memory.LineSize
}

func fill(v byte) [memory.LineSize]byte {
	var d [memory.LineSize]byte
	for i := range d {
		d[i] = v
	}
	return d
}

func TestWriteAcceptedAtWPQ(t *testing.T) {
	eng, mem, c := newNVMM(t)
	a := nline(mem, 1)
	var ackAt engine.Cycle
	c.Write(a, fill(7), func() { ackAt = eng.Now() })
	eng.Run()
	if ackAt != c.Config().WPQAcceptLat {
		t.Fatalf("persist ack at %d, want WPQ accept latency %d", ackAt, c.Config().WPQAcceptLat)
	}
	// Below threshold: the line stays in the WPQ, not yet on the medium.
	if c.MediumWrites() != 0 {
		t.Fatalf("medium writes = %d, want 0 (below drain threshold)", c.MediumWrites())
	}
	if c.WPQOccupancy() != 1 {
		t.Fatalf("WPQ occupancy = %d, want 1", c.WPQOccupancy())
	}
}

func TestReadSnoopsWPQ(t *testing.T) {
	eng, mem, c := newNVMM(t)
	a := nline(mem, 2)
	c.Write(a, fill(9), nil)
	var got [memory.LineSize]byte
	c.Read(a, func(d [memory.LineSize]byte) { got = d })
	eng.Run()
	if got[0] != 9 {
		t.Fatalf("read returned %d, want WPQ data 9", got[0])
	}
	if c.Stats.Get("nvmm.wpq_read_hits") != 1 {
		t.Fatal("expected a WPQ read hit")
	}
}

func TestReadFromMedium(t *testing.T) {
	eng, mem, c := newNVMM(t)
	a := nline(mem, 3)
	d := fill(5)
	mem.Poke(a, d[:])
	var doneAt engine.Cycle
	var got [memory.LineSize]byte
	c.Read(a, func(d [memory.LineSize]byte) { got, doneAt = d, eng.Now() })
	eng.Run()
	if got != d {
		t.Fatal("medium read data mismatch")
	}
	if doneAt != c.Config().ReadLat {
		t.Fatalf("read completed at %d, want %d", doneAt, c.Config().ReadLat)
	}
}

func TestWPQCoalescing(t *testing.T) {
	eng, mem, c := newNVMM(t)
	a := nline(mem, 4)
	c.Write(a, fill(1), nil)
	c.Write(a, fill(2), nil)
	eng.Run()
	if c.WPQOccupancy() != 1 {
		t.Fatalf("occupancy = %d, want 1 (coalesced)", c.WPQOccupancy())
	}
	if c.Stats.Get("nvmm.wpq_coalesced") != 1 {
		t.Fatal("coalesce not counted")
	}
	var got [memory.LineSize]byte
	c.Read(a, func(d [memory.LineSize]byte) { got = d })
	eng.Run()
	if got[0] != 2 {
		t.Fatalf("read %d, want last write 2", got[0])
	}
}

func TestThresholdDraining(t *testing.T) {
	eng, mem, c := newNVMM(t)
	// Fill past the 75% threshold of 32 entries.
	for i := uint64(0); i < 30; i++ {
		c.Write(nline(mem, i), fill(byte(i)), nil)
	}
	eng.Run()
	if c.WPQOccupancy() > 24 {
		t.Fatalf("occupancy = %d, want drained to <= threshold 24", c.WPQOccupancy())
	}
	if c.MediumWrites() == 0 {
		t.Fatal("no medium writes despite exceeding threshold")
	}
}

func TestWPQFullStallsAndRecovers(t *testing.T) {
	eng, mem, c := newNVMM(t)
	acked := 0
	n := uint64(64) // 2x capacity
	for i := uint64(0); i < n; i++ {
		c.Write(nline(mem, i), fill(byte(i)), func() { acked++ })
	}
	eng.Run()
	if acked != int(n) {
		t.Fatalf("acked = %d, want %d (stalled writes must complete)", acked, n)
	}
	if c.Stats.Get("nvmm.wpq_full_stalls") == 0 {
		t.Fatal("expected full-WPQ stalls")
	}
	// Everything is durable: WPQ + medium covers all lines.
	c.CrashDrain()
	for i := uint64(0); i < n; i++ {
		var d [memory.LineSize]byte
		mem.PeekLine(nline(mem, i), &d)
		if d[0] != byte(i) {
			t.Fatalf("line %d lost: got %d", i, d[0])
		}
	}
}

func TestCrashDrain(t *testing.T) {
	eng, mem, c := newNVMM(t)
	a := nline(mem, 7)
	c.Write(a, fill(42), nil)
	eng.Run()
	n := c.CrashDrain()
	if n != 1 {
		t.Fatalf("CrashDrain = %d, want 1", n)
	}
	var d [memory.LineSize]byte
	mem.PeekLine(a, &d)
	if d[0] != 42 {
		t.Fatal("crash drain did not persist WPQ contents")
	}
	if c.WPQOccupancy() != 0 {
		t.Fatal("WPQ not empty after crash drain")
	}
}

func TestDRAMWriteNoWPQ(t *testing.T) {
	eng := engine.New()
	mem := memory.New(memory.DefaultLayout())
	c := New(DefaultDRAM(), eng, mem)
	a := memory.Addr(0x1000)
	var doneAt engine.Cycle
	c.Write(a, fill(3), func() { doneAt = eng.Now() })
	eng.Run()
	if doneAt != c.Config().WriteLat {
		t.Fatalf("DRAM write done at %d, want %d", doneAt, c.Config().WriteLat)
	}
	if mem.Writes[memory.RegionDRAM] != 1 {
		t.Fatal("DRAM medium write not recorded")
	}
}

func TestChannelContention(t *testing.T) {
	eng, mem, c := newNVMM(t)
	// Issue 6 reads; with 2 channels and ReadOcc=20, the last should start
	// at cycle 40 and finish at 40+ReadLat.
	var last engine.Cycle
	for i := uint64(0); i < 6; i++ {
		c.Read(nline(mem, 100+i), func([memory.LineSize]byte) { last = eng.Now() })
	}
	eng.Run()
	want := 2*c.Config().ReadOcc + c.Config().ReadLat
	if last != want {
		t.Fatalf("last read at %d, want %d (channel queueing)", last, want)
	}
}
