package coherence

import (
	"testing"

	"bbb/internal/cache"
	"bbb/internal/memory"
)

func TestEStateInterventionNoMerge(t *testing.T) {
	r := newRig(t, smallCfg(), nil)
	a := r.nv(60)
	r.load(t, 0, a, 8) // core 0 gets E (sole reader)
	l0 := r.h.l1s[0].Probe(a)
	if l0 == nil || l0.State != cache.Exclusive {
		t.Fatalf("state = %v, want E", l0)
	}
	// Remote read downgrades E->S without dirtying the L2.
	r.load(t, 1, a, 8)
	if l0.State != cache.Shared {
		t.Fatalf("state after remote read = %v, want S", l0.State)
	}
	l2 := r.h.l2.Probe(a)
	if l2 == nil || l2.Dirty {
		t.Fatal("clean E downgrade dirtied the L2")
	}
}

func TestSilentEToMUpgrade(t *testing.T) {
	r := newRig(t, smallCfg(), nil)
	a := r.nv(61)
	r.load(t, 0, a, 8) // E
	invs := r.h.Stats.Get("l1.invalidations")
	r.store(t, 0, a, 8, 5) // silent E->M: no invalidations, no L2 trip
	if r.h.Stats.Get("l1.invalidations") != invs {
		t.Fatal("E->M upgrade sent invalidations")
	}
	l0 := r.h.l1s[0].Probe(a)
	if l0.State != cache.Modified || !l0.Dirty {
		t.Fatalf("state = %v dirty=%v, want M dirty", l0.State, l0.Dirty)
	}
}

func TestPersistentBitPropagation(t *testing.T) {
	r := newRig(t, smallCfg(), nil)
	a := r.nv(62)
	r.store(t, 0, a, 8, 1)
	if l := r.h.l1s[0].Probe(a); l == nil || !l.Persistent {
		t.Fatal("L1 line missing persistent bit")
	}
	if l2 := r.h.l2.Probe(a); l2 == nil || !l2.Persistent {
		t.Fatal("L2 line missing persistent bit at install")
	}
	// DRAM lines never carry it.
	d := r.dr(62)
	r.store(t, 0, d, 8, 1)
	if l := r.h.l1s[0].Probe(d); l == nil || l.Persistent {
		t.Fatal("DRAM line wrongly marked persistent")
	}
}

func TestDirectoryCleanedOnL2Eviction(t *testing.T) {
	r := newRig(t, smallCfg(), nil) // 8 sets x 8 ways L2
	// Fill one L2 set beyond capacity to force evictions, then verify every
	// L1-resident line is tracked by its (resident) L2 line's directory —
	// back-invalidation must not leave orphaned L1 copies behind.
	for i := uint64(0); i < 12; i++ {
		r.store(t, int(i%4), r.nv(60+i*8), 8, i)
	}
	for c, l1 := range r.h.l1s {
		l1.ForEach(func(l *cache.Line) {
			d := r.h.l2.Probe(l.Addr)
			if d == nil || !d.IsSharer(c) {
				t.Fatalf("L1[%d] line %#x not tracked by a resident L2 directory entry", c, l.Addr)
			}
		})
	}
	r.check(t)
}

func TestLoadAfterRemoteWriteSeesLatest(t *testing.T) {
	// The full ping-pong: write, remote write (migrating ownership), local
	// re-read must intervene and see the latest value.
	r := newRig(t, smallCfg(), nil)
	a := r.nv(63)
	r.store(t, 0, a, 8, 10)
	r.store(t, 1, a, 8, 20)
	if v := r.load(t, 0, a, 8); v != 20 {
		t.Fatalf("re-read = %d, want 20", v)
	}
	r.check(t)
}

func TestLockSerializesSameLine(t *testing.T) {
	// Two stores from different cores to the same line issued back-to-back
	// in one cycle must serialize: the final value is the second store's,
	// and both complete.
	r := newRig(t, smallCfg(), nil)
	a := r.nv(64)
	done := 0
	r.h.Store(0, a, 8, 1, func() { done++ })
	r.h.Store(1, a, 8, 2, func() { done++ })
	r.eng.Run()
	if done != 2 {
		t.Fatalf("done = %d", done)
	}
	if v := r.load(t, 2, a, 8); v != 2 {
		t.Fatalf("final = %d, want the later store's 2", v)
	}
	r.check(t)
}

func TestL1HitRateReporting(t *testing.T) {
	r := newRig(t, smallCfg(), nil)
	a := r.nv(65)
	r.load(t, 0, a, 8)
	for i := 0; i < 9; i++ {
		r.load(t, 0, a, 8)
	}
	if hr := r.h.L1HitRate(); hr < 0.85 {
		t.Fatalf("hit rate = %.2f after 9 repeat hits", hr)
	}
}

func TestMergedLineReflectsOwner(t *testing.T) {
	r := newRig(t, smallCfg(), nil)
	a := r.nv(66)
	r.store(t, 0, a, 8, 0xAB)
	data, ok := r.h.MergedLine(a)
	if !ok || data[0] != 0xAB {
		t.Fatalf("MergedLine = %v %v", data[0], ok)
	}
	if _, ok := r.h.MergedLine(r.nv(999)); ok {
		t.Fatal("MergedLine found an uncached line")
	}
}

func TestForEachDirtyLineMergesFreshest(t *testing.T) {
	r := newRig(t, smallCfg(), nil)
	a := r.nv(67)
	r.store(t, 0, a, 8, 0x11) // M in core 0's L1; L2 copy stale
	found := false
	r.h.ForEachDirtyLine(func(la memory.Addr, persistent bool, data *[memory.LineSize]byte) {
		if la == a {
			found = true
			if data[0] != 0x11 {
				t.Fatalf("dirty walk returned stale data %#x", data[0])
			}
			if !persistent {
				t.Fatal("persistent flag lost")
			}
		}
	})
	if !found {
		t.Fatal("dirty line not visited")
	}
}
