// Package coherence implements the simulated cache hierarchy: per-core
// private L1D caches and a shared, inclusive L2 (the LLC of the paper's
// Table III machine) kept coherent with a directory-based MESI protocol.
//
// Persistency schemes plug into the hierarchy through the PersistPolicy
// hooks, which carry exactly the interactions the paper describes in
// §III-B/§III-E: persisting stores entering the bbPB alongside the L1D
// write, entry migration on remote invalidations, forced drains to keep the
// LLC dirty-inclusive of the bbPBs, and the skipped LLC writeback of dirty
// persistent victims.
package coherence

import "bbb/internal/memory"

// PersistPolicy is the persistency scheme's view of hierarchy events. All
// methods run inside the event loop; implementations must not block.
type PersistPolicy interface {
	// CanAcceptStore reports whether a persisting store by core to addr may
	// proceed. A false return stalls the store; the hierarchy retries after
	// OnSpace fires.
	CanAcceptStore(core int, addr memory.Addr) bool
	// OnSpace registers fn to be called once core's persist buffer frees
	// capacity (only invoked after CanAcceptStore returned false).
	OnSpace(core int, fn func())
	// CommitStore notifies that core committed a persisting store to addr;
	// data is the full updated line. Called exactly when the L1D is
	// written, closing the PoV/PoP gap.
	CommitStore(core int, addr memory.Addr, data *[memory.LineSize]byte)
	// OnRemoteInvalidate notifies that victim core's copy of addr was
	// invalidated because another core is writing it; a bbPB entry migrates
	// to the writer (whose CommitStore follows in the same transaction).
	OnRemoteInvalidate(victim int, addr memory.Addr)
	// OnLLCEvict decides the fate of an LLC victim after L1 copies are
	// merged. done must be called exactly once with whether the line should
	// be written back to memory; policies may first force-drain a bbPB
	// entry (the call may thus complete asynchronously).
	OnLLCEvict(addr memory.Addr, persistent, dirty bool, done func(writeBack bool))
}

// EpochPolicy is an optional extension for epoch-based schemes (buffered
// epoch persistency): the hierarchy forwards epoch barriers to it.
type EpochPolicy interface {
	// OnEpochBarrier marks an epoch boundary on core: later persisting
	// stores must not persist before earlier ones.
	OnEpochBarrier(core int)
}

// EpochBarrier forwards an epoch boundary to the policy, if it cares.
func (h *Hierarchy) EpochBarrier(core int) {
	if ep, ok := h.policy.(EpochPolicy); ok {
		ep.OnEpochBarrier(core)
	}
}

// NullPolicy is the policy for schemes with no persist buffers (eADR and
// the PMEM baseline): stores never stall and dirty victims write back.
type NullPolicy struct{}

// CanAcceptStore implements PersistPolicy.
func (NullPolicy) CanAcceptStore(int, memory.Addr) bool { return true }

// OnSpace implements PersistPolicy; unreachable for NullPolicy.
func (NullPolicy) OnSpace(int, func()) { panic("coherence: NullPolicy.OnSpace called") }

// CommitStore implements PersistPolicy.
func (NullPolicy) CommitStore(int, memory.Addr, *[memory.LineSize]byte) {}

// OnRemoteInvalidate implements PersistPolicy.
func (NullPolicy) OnRemoteInvalidate(int, memory.Addr) {}

// OnLLCEvict implements PersistPolicy.
func (NullPolicy) OnLLCEvict(_ memory.Addr, _, dirty bool, done func(bool)) { done(dirty) }
