package coherence

import (
	"math/rand"
	"testing"

	"bbb/internal/cache"
	"bbb/internal/engine"
	"bbb/internal/memctrl"
	"bbb/internal/memory"
)

type rig struct {
	eng  *engine.Engine
	mem  *memory.Memory
	dram *memctrl.Controller
	nvmm *memctrl.Controller
	h    *Hierarchy
}

func newRig(t *testing.T, cfg Config, policy PersistPolicy) *rig {
	t.Helper()
	eng := engine.New()
	mem := memory.New(memory.DefaultLayout())
	dram := memctrl.New(memctrl.DefaultDRAM(), eng, mem)
	nvmm := memctrl.New(memctrl.DefaultNVMM(), eng, mem)
	if policy == nil {
		policy = NullPolicy{}
	}
	return &rig{eng: eng, mem: mem, dram: dram, nvmm: nvmm,
		h: New(cfg, eng, mem.Layout(), dram, nvmm, policy)}
}

func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.L1Size = 1024 // 16 lines: 2 sets x 8 ways
	cfg.L2Size = 4096 // 64 lines: 8 sets x 8 ways
	return cfg
}

// load runs a synchronous load to completion.
func (r *rig) load(t *testing.T, core int, addr memory.Addr, size int) uint64 {
	t.Helper()
	var val uint64
	doneCount := 0
	r.h.Load(core, addr, size, func(v uint64) { val = v; doneCount++ })
	r.eng.Run()
	if doneCount != 1 {
		t.Fatalf("load done fired %d times", doneCount)
	}
	return val
}

func (r *rig) store(t *testing.T, core int, addr memory.Addr, size int, val uint64) {
	t.Helper()
	doneCount := 0
	r.h.Store(core, addr, size, val, func() { doneCount++ })
	r.eng.Run()
	if doneCount != 1 {
		t.Fatalf("store done fired %d times", doneCount)
	}
}

func (r *rig) check(t *testing.T) {
	t.Helper()
	if err := r.h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func (r *rig) nv(n uint64) memory.Addr {
	return r.mem.Layout().PersistentBase + memory.Addr(n)*memory.LineSize
}

func (r *rig) dr(n uint64) memory.Addr {
	return memory.Addr(n) * memory.LineSize
}

func TestLoadFromMemory(t *testing.T) {
	r := newRig(t, smallCfg(), nil)
	a := r.dr(10)
	r.mem.Poke(a, []byte{0xEF, 0xBE, 0xAD, 0xDE})
	if v := r.load(t, 0, a, 4); v != 0xDEADBEEF {
		t.Fatalf("load = %#x", v)
	}
	// Second load hits L1.
	hits := r.h.Stats.Get("l1.load_hits")
	r.load(t, 0, a, 4)
	if r.h.Stats.Get("l1.load_hits") != hits+1 {
		t.Fatal("second load should hit L1")
	}
	r.check(t)
}

func TestStoreLoadRoundTrip(t *testing.T) {
	r := newRig(t, smallCfg(), nil)
	a := r.nv(3)
	r.store(t, 1, a+8, 8, 0x1122334455667788)
	if v := r.load(t, 1, a+8, 8); v != 0x1122334455667788 {
		t.Fatalf("load = %#x", v)
	}
	// Other core sees it too (via intervention).
	if v := r.load(t, 2, a+8, 8); v != 0x1122334455667788 {
		t.Fatalf("remote load = %#x", v)
	}
	r.check(t)
}

func TestExclusiveThenSharedGrant(t *testing.T) {
	r := newRig(t, smallCfg(), nil)
	a := r.dr(5)
	r.load(t, 0, a, 8)
	l := r.h.l1s[0].Probe(a)
	if l == nil || l.State != cache.Exclusive {
		t.Fatalf("first reader state = %v, want E", l)
	}
	r.load(t, 1, a, 8)
	l0, l1 := r.h.l1s[0].Probe(a), r.h.l1s[1].Probe(a)
	if l0.State != cache.Shared || l1.State != cache.Shared {
		t.Fatalf("states after second read = %v, %v; want S, S", l0.State, l1.State)
	}
	r.check(t)
}

func TestInterventionOnModified(t *testing.T) {
	r := newRig(t, smallCfg(), nil)
	a := r.nv(7)
	r.store(t, 0, a, 8, 99)
	l0 := r.h.l1s[0].Probe(a)
	if l0.State != cache.Modified {
		t.Fatalf("writer state = %v, want M", l0.State)
	}
	if v := r.load(t, 1, a, 8); v != 99 {
		t.Fatalf("reader got %d, want 99", v)
	}
	if l0.State != cache.Shared {
		t.Fatalf("writer state after intervention = %v, want S", l0.State)
	}
	// The merged data landed dirty in L2, but no memory writeback happened.
	l2 := r.h.l2.Probe(a)
	if l2 == nil || !l2.Dirty {
		t.Fatal("L2 should hold the merged line dirty")
	}
	if r.mem.Writes[memory.RegionNVMM] != 0 {
		t.Fatal("intervention must not write memory")
	}
	if r.h.Stats.Get("l1.interventions") != 1 {
		t.Fatal("intervention not counted")
	}
	r.check(t)
}

func TestUpgradeInvalidatesSharers(t *testing.T) {
	r := newRig(t, smallCfg(), nil)
	a := r.dr(9)
	r.load(t, 0, a, 8)
	r.load(t, 1, a, 8)
	r.load(t, 2, a, 8)
	r.store(t, 1, a, 8, 42) // upgrade from S
	if r.h.l1s[0].Probe(a) != nil || r.h.l1s[2].Probe(a) != nil {
		t.Fatal("sharers not invalidated on upgrade")
	}
	l1 := r.h.l1s[1].Probe(a)
	if l1 == nil || l1.State != cache.Modified {
		t.Fatalf("writer state = %v, want M", l1)
	}
	if got := r.h.Stats.Get("l1.invalidations"); got != 2 {
		t.Fatalf("invalidations = %d, want 2", got)
	}
	r.check(t)
}

func TestWriteMissInvalidatesOwner(t *testing.T) {
	r := newRig(t, smallCfg(), nil)
	a := r.nv(11)
	r.store(t, 0, a, 8, 1)
	r.store(t, 1, a, 8, 2) // RdX: owner's M copy merges then invalidates
	if r.h.l1s[0].Probe(a) != nil {
		t.Fatal("old owner still holds the line")
	}
	if v := r.load(t, 2, a, 8); v != 2 {
		t.Fatalf("value = %d, want 2", v)
	}
	r.check(t)
}

func TestPingPongManyCores(t *testing.T) {
	r := newRig(t, smallCfg(), nil)
	a := r.nv(0)
	for i := 0; i < 20; i++ {
		r.store(t, i%4, a, 8, uint64(i))
	}
	if v := r.load(t, 3, a, 8); v != 19 {
		t.Fatalf("final value = %d, want 19", v)
	}
	r.check(t)
}

func TestL1EvictionWritesBackToL2(t *testing.T) {
	r := newRig(t, smallCfg(), nil)
	// L1 has 2 sets x 8 ways; fill one set beyond capacity with dirty lines.
	// Lines with the same (lineNum % 2) land in one L1 set.
	for i := uint64(0); i < 10; i++ {
		r.store(t, 0, r.nv(i*2), 8, 100+i)
	}
	if got := r.h.Stats.Get("l1.evictions"); got == 0 {
		t.Fatal("expected L1 evictions")
	}
	// Everything is still correct through the L2.
	for i := uint64(0); i < 10; i++ {
		if v := r.load(t, 0, r.nv(i*2), 8); v != 100+i {
			t.Fatalf("line %d = %d, want %d", i, v, 100+i)
		}
	}
	r.check(t)
}

func TestL2EvictionBackInvalidatesAndWritesBack(t *testing.T) {
	r := newRig(t, smallCfg(), nil) // L2: 8 sets x 8 ways
	// Fill one L2 set (lines with same lineNum%8) beyond capacity.
	base := uint64(0)
	for i := uint64(0); i < 12; i++ {
		r.store(t, 0, r.nv(base+i*8), 8, 200+i)
	}
	if got := r.h.Stats.Get("l2.evictions"); got == 0 {
		t.Fatal("expected L2 evictions")
	}
	// NullPolicy writes dirty victims back to NVMM (this is eADR behaviour).
	if r.h.Stats.Get("l2.writebacks") == 0 {
		t.Fatal("dirty victims should write back under NullPolicy")
	}
	// All data still correct (some from memory now).
	for i := uint64(0); i < 12; i++ {
		if v := r.load(t, 0, r.nv(base+i*8), 8); v != 200+i {
			t.Fatalf("line %d = %d, want %d", i, v, 200+i)
		}
	}
	r.check(t)
}

func TestSubWordAccess(t *testing.T) {
	r := newRig(t, smallCfg(), nil)
	a := r.nv(20)
	r.store(t, 0, a, 1, 0xAA)
	r.store(t, 0, a+1, 1, 0xBB)
	r.store(t, 0, a+2, 2, 0xCCDD)
	if v := r.load(t, 0, a, 4); v != 0xCCDDBBAA {
		t.Fatalf("composed word = %#x", v)
	}
}

func TestCrossLinePanics(t *testing.T) {
	r := newRig(t, smallCfg(), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("line-crossing access did not panic")
		}
	}()
	r.h.Load(0, r.nv(0)+60, 8, func(uint64) {})
}

func TestClwbPersistsDirtyLine(t *testing.T) {
	r := newRig(t, smallCfg(), nil)
	a := r.nv(30)
	r.store(t, 0, a, 8, 777)
	done := false
	r.h.Clwb(0, a, func() { done = true })
	r.eng.Run()
	if !done {
		t.Fatal("clwb never completed")
	}
	// Line still cached and writable, but clean.
	l := r.h.l1s[0].Probe(a)
	if l == nil || l.Dirty {
		t.Fatalf("after clwb line = %+v, want present and clean", l)
	}
	// Data is durable: WPQ snoop or medium.
	r.nvmm.CrashDrain()
	var buf [memory.LineSize]byte
	r.mem.PeekLine(a, &buf)
	if got := uint64(buf[0]) | uint64(buf[1])<<8 | uint64(buf[2])<<16; got != 777 {
		t.Fatalf("durable value = %d, want 777", got)
	}
	r.check(t)
}

func TestClwbCleanLineIsCheap(t *testing.T) {
	r := newRig(t, smallCfg(), nil)
	a := r.nv(31)
	r.load(t, 0, a, 8)
	done := false
	r.h.Clwb(0, a, func() { done = true })
	r.eng.Run()
	if !done {
		t.Fatal("clwb on clean line never completed")
	}
	if r.h.Stats.Get("clwb.clean") != 1 {
		t.Fatal("clean clwb not counted")
	}
	if r.nvmm.Stats.Get("nvmm.writes") != 0 {
		t.Fatal("clean clwb should not write")
	}
}

// recordingPolicy verifies hook invocation order and arguments.
type recordingPolicy struct {
	NullPolicy
	commits     []memory.Addr
	invalidates []int
	evicts      []memory.Addr
	dropDirty   bool
}

func (p *recordingPolicy) CommitStore(core int, addr memory.Addr, data *[memory.LineSize]byte) {
	p.commits = append(p.commits, addr)
}
func (p *recordingPolicy) OnRemoteInvalidate(victim int, addr memory.Addr) {
	p.invalidates = append(p.invalidates, victim)
}
func (p *recordingPolicy) OnLLCEvict(addr memory.Addr, persistent, dirty bool, done func(bool)) {
	p.evicts = append(p.evicts, addr)
	done(dirty && !p.dropDirty)
}

func TestPolicyHooksFire(t *testing.T) {
	p := &recordingPolicy{}
	r := newRig(t, smallCfg(), p)
	a := r.nv(1)
	r.store(t, 0, a, 8, 5) // persisting store -> CommitStore
	if len(p.commits) != 1 || p.commits[0] != a {
		t.Fatalf("commits = %v", p.commits)
	}
	r.store(t, 0, r.dr(1), 8, 5) // DRAM store: no CommitStore
	if len(p.commits) != 1 {
		t.Fatal("non-persistent store fired CommitStore")
	}
	r.store(t, 1, a, 8, 6) // remote write -> OnRemoteInvalidate(0)
	if len(p.invalidates) != 1 || p.invalidates[0] != 0 {
		t.Fatalf("invalidates = %v", p.invalidates)
	}
	if len(p.commits) != 2 {
		t.Fatal("second persisting store missing CommitStore")
	}
}

func TestPolicyCanSkipWriteback(t *testing.T) {
	p := &recordingPolicy{dropDirty: true}
	r := newRig(t, smallCfg(), p)
	for i := uint64(0); i < 12; i++ {
		r.store(t, 0, r.nv(i*8), 8, i)
	}
	if r.h.Stats.Get("l2.evictions") == 0 {
		t.Fatal("expected evictions")
	}
	if r.h.Stats.Get("l2.writebacks") != 0 {
		t.Fatal("policy drop was ignored")
	}
	if r.h.Stats.Get("l2.writebacks_skipped") == 0 {
		t.Fatal("skipped writebacks not counted")
	}
}

// stallPolicy rejects the first persisting store once, then admits.
type stallPolicy struct {
	NullPolicy
	rejections int
	waiter     func()
}

func (p *stallPolicy) CanAcceptStore(core int, addr memory.Addr) bool {
	return p.rejections > 0
}
func (p *stallPolicy) OnSpace(core int, fn func()) {
	p.rejections++
	p.waiter = fn
}

func TestStoreStallsUntilSpace(t *testing.T) {
	p := &stallPolicy{}
	r := newRig(t, smallCfg(), p)
	done := false
	r.h.Store(0, r.nv(2), 8, 9, func() { done = true })
	r.eng.Run()
	if done {
		t.Fatal("store completed despite rejection")
	}
	if r.h.Stats.Get("store.persist_rejected") != 1 {
		t.Fatal("rejection not counted")
	}
	p.waiter() // space frees
	r.eng.Run()
	if !done {
		t.Fatal("store never completed after space freed")
	}
}

// Random multi-core workload: functional correctness against a reference
// model, plus invariants at the end.
func TestRandomizedCoherenceAgainstReference(t *testing.T) {
	r := newRig(t, smallCfg(), nil)
	rng := rand.New(rand.NewSource(42))
	ref := map[memory.Addr]uint64{}
	const lines = 48
	for i := 0; i < 3000; i++ {
		core := rng.Intn(4)
		var a memory.Addr
		if rng.Intn(2) == 0 {
			a = r.nv(uint64(rng.Intn(lines)))
		} else {
			a = r.dr(uint64(rng.Intn(lines)))
		}
		if rng.Intn(3) == 0 {
			want := ref[a]
			if got := r.load(t, core, a, 8); got != want {
				t.Fatalf("op %d: load core %d %#x = %d, want %d", i, core, a, got, want)
			}
		} else {
			v := rng.Uint64()
			r.store(t, core, a, 8, v)
			ref[a] = v
		}
	}
	r.check(t)
}
