package coherence

import (
	"testing"

	"bbb/internal/cache"
	"bbb/internal/memory"
)

func (r *rig) cas(t *testing.T, core int, addr memory.Addr, old, new uint64) (uint64, bool) {
	t.Helper()
	var prev uint64
	done := 0
	r.h.AtomicCAS(core, addr, 8, old, new, func(p uint64) { prev = p; done++ })
	r.eng.Run()
	if done != 1 {
		t.Fatalf("CAS done fired %d times", done)
	}
	return prev, prev == old
}

func TestCASSuccessAndFailure(t *testing.T) {
	r := newRig(t, smallCfg(), nil)
	a := r.nv(40)
	r.store(t, 0, a, 8, 10)
	if prev, ok := r.cas(t, 1, a, 10, 20); !ok || prev != 10 {
		t.Fatalf("cas = (%d,%v)", prev, ok)
	}
	if prev, ok := r.cas(t, 2, a, 10, 30); ok || prev != 20 {
		t.Fatalf("stale cas = (%d,%v)", prev, ok)
	}
	if v := r.load(t, 3, a, 8); v != 20 {
		t.Fatalf("final = %d, want 20", v)
	}
	r.check(t)
}

func TestCASGrantsMState(t *testing.T) {
	r := newRig(t, smallCfg(), nil)
	a := r.nv(41)
	r.load(t, 0, a, 8)
	r.load(t, 1, a, 8) // both S
	r.cas(t, 0, a, 0, 1)
	l0 := r.h.l1s[0].Probe(a)
	if l0 == nil || l0.State != cache.Modified {
		t.Fatalf("CAS owner state = %v, want M", l0)
	}
	if r.h.l1s[1].Probe(a) != nil {
		t.Fatal("other sharer not invalidated by CAS")
	}
	r.check(t)
}

func TestCASFiresPersistHooks(t *testing.T) {
	p := &recordingPolicy{}
	r := newRig(t, smallCfg(), p)
	a := r.nv(42)
	r.cas(t, 0, a, 0, 7) // success: persisting store
	if len(p.commits) != 1 {
		t.Fatalf("commits = %v, want the successful CAS", p.commits)
	}
	// Failure: no store commits, but the line is still handed to the
	// policy — the RFO migrated any persist-buffer entry away from the
	// previous owner, and the failed CAS must keep the line in the
	// persistence domain (unchanged data).
	r.cas(t, 0, a, 0, 9)
	if len(p.commits) != 2 {
		t.Fatalf("commits = %v, want the failed CAS to re-commit the line", p.commits)
	}
	// DRAM CAS never commits to the persist domain.
	r.cas(t, 0, r.dr(42), 0, 1)
	if len(p.commits) != 2 {
		t.Fatal("DRAM CAS fired CommitStore")
	}
}

func TestCASStallsOnFullPersistBuffer(t *testing.T) {
	p := &stallPolicy{}
	r := newRig(t, smallCfg(), p)
	done := false
	r.h.AtomicCAS(0, r.nv(43), 8, 0, 1, func(uint64) { done = true })
	r.eng.Run()
	if done {
		t.Fatal("CAS completed despite persist-buffer rejection")
	}
	p.waiter()
	r.eng.Run()
	if !done {
		t.Fatal("CAS never completed after space freed")
	}
}

func TestClwbWithRemoteOwner(t *testing.T) {
	r := newRig(t, smallCfg(), nil)
	a := r.nv(44)
	r.store(t, 1, a, 8, 55) // core 1 owns M
	done := false
	r.h.Clwb(0, a, func() { done = true }) // clwb from another core
	r.eng.Run()
	if !done {
		t.Fatal("clwb never completed")
	}
	// The owner's dirty data was pushed to the controller, line retained.
	l1 := r.h.l1s[1].Probe(a)
	if l1 == nil || l1.Dirty {
		t.Fatalf("owner line after clwb = %+v, want present and clean", l1)
	}
	r.nvmm.CrashDrain()
	var buf [memory.LineSize]byte
	r.mem.PeekLine(a, &buf)
	if buf[0] != 55 {
		t.Fatal("remote owner's data not persisted by clwb")
	}
	r.check(t)
}

func TestClwbAbsentLine(t *testing.T) {
	r := newRig(t, smallCfg(), nil)
	done := false
	r.h.Clwb(0, r.nv(45), func() { done = true })
	r.eng.Run()
	if !done {
		t.Fatal("clwb on absent line must still complete")
	}
	if r.nvmm.Stats.Get("nvmm.writes") != 0 {
		t.Fatal("clwb on absent line wrote memory")
	}
}

func TestEvictionUnderLoadKeepsValues(t *testing.T) {
	// Hammer two L2 sets from all cores with loads+stores interleaved so
	// fills, evictions and re-fetches race; values must stay coherent.
	r := newRig(t, smallCfg(), nil)
	ref := map[memory.Addr]uint64{}
	for i := 0; i < 400; i++ {
		core := i % 4
		a := r.nv(uint64((i * 8) % 96)) // same L2 sets repeatedly
		if i%3 == 0 {
			want := ref[a]
			if got := r.load(t, core, a, 8); got != want {
				t.Fatalf("i=%d a=%#x got %d want %d", i, a, got, want)
			}
		} else {
			r.store(t, core, a, 8, uint64(i))
			ref[a] = uint64(i)
		}
	}
	r.check(t)
}

func TestMixedDRAMNVMMIndependence(t *testing.T) {
	r := newRig(t, smallCfg(), nil)
	// Same line index in both regions: distinct lines, distinct MCs.
	dn, nv := r.dr(50), r.nv(50)
	r.store(t, 0, dn, 8, 1)
	r.store(t, 0, nv, 8, 2)
	if v := r.load(t, 1, dn, 8); v != 1 {
		t.Fatalf("dram = %d", v)
	}
	if v := r.load(t, 1, nv, 8); v != 2 {
		t.Fatalf("nvmm = %d", v)
	}
	if r.h.Stats.Get("store.persisting") != 1 {
		t.Fatal("exactly one store should be persisting")
	}
}
