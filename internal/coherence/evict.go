package coherence

import "bbb/internal/memory"

// Clwb writes back (without invalidating) the freshest copy of addr's line
// to its memory controller, calling done when the write reaches the
// controller's persist point (WPQ acceptance under ADR). This is the
// cache-line writeback instruction the PMEM baseline pairs with a fence;
// a clean or absent line completes after the lookup latency alone.
func (h *Hierarchy) Clwb(core int, addr memory.Addr, done func()) {
	t := h.getTxn()
	t.kind, t.core, t.la = txnClwb, core, memory.LineAddr(addr)
	t.done = done
	h.lockTxn(t)
}
