package coherence

import (
	"fmt"

	"bbb/internal/cache"
	"bbb/internal/memory"
	"bbb/internal/trace"
)

// evictL2VictimFor frees a way in la's L2 set, then runs cont. Freeing may
// be asynchronous: the persistency policy can force-drain a bbPB entry
// before the line may be dropped (§III-B dirty inclusion). Another in-flight
// fill can consume a freed way meanwhile, so the victim is re-checked.
func (h *Hierarchy) evictL2VictimFor(la memory.Addr, cont func()) {
	victim := h.l2.Victim(la)
	if victim.State == cache.Invalid {
		cont()
		return
	}
	h.evictL2Line(victim, func() { h.evictL2VictimFor(la, cont) })
}

// evictL2Line removes one valid L2 line: back-invalidate L1 copies (merging
// dirty data), delete the directory entry, then let the persistency policy
// decide between writeback and silent drop. cont runs once the way is free.
// The caller's fill transaction serializes evictions; the victim itself has
// no transaction in flight (it is resident, not being fetched).
//
//bbbvet:locked lineLock
func (h *Hierarchy) evictL2Line(victim *cache.Line, cont func()) {
	la := victim.Addr
	h.Stats.Inc("l2.evictions")

	// Back-invalidation (inclusion): pull in any fresher L1 data.
	if d := h.dir[la]; d != nil {
		for c := 0; c < h.cfg.Cores; c++ {
			if !d.isSharer(c) {
				continue
			}
			old, ok := h.l1s[c].Invalidate(la)
			if !ok {
				panic(fmt.Sprintf("coherence: sharer %d lacks line %#x on back-invalidation", c, la))
			}
			if old.State == cache.Modified && old.Dirty {
				victim.Data = old.Data
				victim.Dirty = true
				victim.Persistent = victim.Persistent || old.Persistent
			}
			h.Stats.Inc("l1.back_invalidations")
		}
		delete(h.dir, la)
	}

	data := victim.Data
	persistent := victim.Persistent
	dirty := victim.Dirty
	victim.State = cache.Invalid

	h.policy.OnLLCEvict(la, persistent, dirty, func(writeBack bool) {
		wb := uint64(0)
		if writeBack {
			wb = 1
		}
		h.eng.EmitTrace(trace.KindLLCEvict, -1, la, wb)
		if writeBack {
			h.Stats.Inc("l2.writebacks")
			h.controllerFor(la).Write(la, data, nil)
		} else if dirty {
			h.Stats.Inc("l2.writebacks_skipped")
		}
		cont()
	})
}

// Clwb writes back (without invalidating) the freshest copy of addr's line
// to its memory controller, calling done when the write reaches the
// controller's persist point (WPQ acceptance under ADR). This is the
// cache-line writeback instruction the PMEM baseline pairs with a fence;
// a clean or absent line completes after the lookup latency alone.
//
//bbbvet:locked lineLock
func (h *Hierarchy) Clwb(core int, addr memory.Addr, done func()) {
	la := memory.LineAddr(addr)
	h.acquire(la, func(release func()) {
		lat := h.cfg.L1Lat + h.cfg.L2Lat
		var freshest *cache.Line
		if d := h.dir[la]; d != nil && d.owner >= 0 {
			freshest = h.l1s[d.owner].Probe(la)
		}
		l2line := h.l2.Probe(la)
		if freshest == nil || !freshest.Dirty {
			freshest = l2line
		}
		if freshest == nil || !freshest.Dirty {
			h.Stats.Inc("clwb.clean")
			h.eng.Schedule(lat, func() {
				release()
				done()
			})
			return
		}
		h.Stats.Inc("clwb.writebacks")
		data := freshest.Data
		// clwb retains the copy but leaves it clean everywhere.
		if l2line != nil {
			l2line.Dirty = false
		}
		for c := range h.l1s {
			if l := h.l1s[c].Probe(la); l != nil {
				l.Dirty = false
				if l.State == cache.Modified && l2line != nil {
					l2line.Data = data
				}
			}
		}
		h.eng.Schedule(lat, func() {
			h.controllerFor(la).Write(la, data, func() {
				release()
				done()
			})
		})
	})
}
