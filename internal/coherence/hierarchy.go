package coherence

import (
	"fmt"

	"bbb/internal/cache"
	"bbb/internal/engine"
	"bbb/internal/memctrl"
	"bbb/internal/memory"
	"bbb/internal/stats"
)

// Config sizes the hierarchy; defaults follow Table III.
type Config struct {
	Cores  int
	L1Size int
	L1Ways int
	L1Lat  engine.Cycle
	L2Size int
	L2Ways int
	L2Lat  engine.Cycle
	// RemoteLat is the extra cost of an L1-to-L1 intervention or
	// invalidation hop through the L2 directory.
	RemoteLat engine.Cycle
}

// DefaultConfig is the paper's simulated machine: 8 cores, 128 KiB 8-way
// L1D (2 cycles), 1 MiB 8-way shared L2 (11 cycles).
func DefaultConfig() Config {
	return Config{
		Cores:     8,
		L1Size:    128 * 1024,
		L1Ways:    8,
		L1Lat:     2,
		L2Size:    1024 * 1024,
		L2Ways:    8,
		L2Lat:     11,
		RemoteLat: 13,
	}
}

// dirEntry is the directory state for a line resident in the inclusive L2:
// which L1s share it, and which single L1 (if any) may hold it E/M.
type dirEntry struct {
	sharers uint64 // bitmask over cores; bbbvet:guarded lineLock
	owner   int    // core holding E/M, or -1; bbbvet:guarded lineLock
}

//bbbvet:locked lineLock
func (d *dirEntry) addSharer(c int) { d.sharers |= 1 << uint(c) }

//bbbvet:locked lineLock
func (d *dirEntry) dropSharer(c int) { d.sharers &^= 1 << uint(c) }

// isSharer is read-only and also safe from quiescent walkers.
//
//bbbvet:locked lineLock
func (d *dirEntry) isSharer(c int) bool { return d.sharers&(1<<uint(c)) != 0 }

// none is read-only and also safe from quiescent walkers.
//
//bbbvet:locked lineLock
func (d *dirEntry) none() bool { return d.sharers == 0 }

// lineLock serializes transactions per cache line. Transactions hold the
// lock from issue to completion, so state bound at the atomic mutation
// points cannot be disturbed by a racing transaction on the same line.
type lineLock struct {
	held    bool
	waiters []func()
}

// Hierarchy is the coherent two-level cache system in front of the memory
// controllers.
type Hierarchy struct {
	cfg    Config
	eng    *engine.Engine
	layout memory.Layout
	l1s    []*cache.Cache
	l2     *cache.Cache
	dir    map[memory.Addr]*dirEntry // bbbvet:guarded lineLock
	locks  map[memory.Addr]*lineLock
	dram   *memctrl.Controller
	nvmm   *memctrl.Controller
	policy PersistPolicy

	// Stats holds hierarchy counters (hits, misses, invalidations, ...).
	Stats *stats.Counters
}

// New wires a hierarchy. policy must not be nil; use NullPolicy for schemes
// without persist buffers.
//
//bbbvet:quiescent construction, before any transaction exists
func New(cfg Config, eng *engine.Engine, layout memory.Layout, dram, nvmm *memctrl.Controller, policy PersistPolicy) *Hierarchy {
	if policy == nil {
		panic("coherence: nil PersistPolicy")
	}
	h := &Hierarchy{
		cfg:    cfg,
		eng:    eng,
		layout: layout,
		l2:     cache.New("L2", cfg.L2Size, cfg.L2Ways),
		dir:    make(map[memory.Addr]*dirEntry),
		locks:  make(map[memory.Addr]*lineLock),
		dram:   dram,
		nvmm:   nvmm,
		policy: policy,
		Stats:  stats.NewCounters(),
	}
	for i := 0; i < cfg.Cores; i++ {
		h.l1s = append(h.l1s, cache.New(fmt.Sprintf("L1D%d", i), cfg.L1Size, cfg.L1Ways))
	}
	return h
}

// Cores returns the core count.
func (h *Hierarchy) Cores() int { return h.cfg.Cores }

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Layout returns the physical memory layout.
func (h *Hierarchy) Layout() memory.Layout { return h.layout }

// controllerFor returns the memory controller owning addr.
func (h *Hierarchy) controllerFor(addr memory.Addr) *memctrl.Controller {
	if h.layout.RegionOf(addr) == memory.RegionNVMM {
		return h.nvmm
	}
	return h.dram
}

// acquire runs fn with addr's line lock held; fn receives a release
// callback it must invoke exactly once (possibly asynchronously).
func (h *Hierarchy) acquire(addr memory.Addr, fn func(release func())) {
	lk := h.locks[addr]
	if lk == nil {
		lk = &lineLock{}
		h.locks[addr] = lk
	}
	run := func() {
		released := false
		fn(func() {
			if released {
				panic("coherence: double release of line lock")
			}
			released = true
			h.release(addr)
		})
	}
	if lk.held {
		lk.waiters = append(lk.waiters, run)
		return
	}
	lk.held = true
	run()
}

func (h *Hierarchy) release(addr memory.Addr) {
	lk := h.locks[addr]
	if lk == nil || !lk.held {
		panic("coherence: release of unheld line lock")
	}
	if len(lk.waiters) == 0 {
		delete(h.locks, addr)
		return
	}
	next := lk.waiters[0]
	lk.waiters = lk.waiters[1:]
	// Run the next transaction in a fresh event so releases never recurse.
	h.eng.Schedule(0, next)
}

// dirOf returns the directory entry for a line resident in L2, creating it
// on first use. Lines absent from L2 must not have directory entries.
//
//bbbvet:locked lineLock
func (h *Hierarchy) dirOf(addr memory.Addr) *dirEntry {
	d := h.dir[addr]
	if d == nil {
		d = &dirEntry{owner: -1}
		h.dir[addr] = d
	}
	return d
}
