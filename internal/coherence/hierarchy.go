package coherence

import (
	"fmt"

	"bbb/internal/cache"
	"bbb/internal/engine"
	"bbb/internal/memctrl"
	"bbb/internal/memory"
	"bbb/internal/stats"
)

// Config sizes the hierarchy; defaults follow Table III.
type Config struct {
	Cores  int
	L1Size int
	L1Ways int
	L1Lat  engine.Cycle
	L2Size int
	L2Ways int
	L2Lat  engine.Cycle
	// RemoteLat is the extra cost of an L1-to-L1 intervention or
	// invalidation hop through the L2 directory.
	RemoteLat engine.Cycle
}

// DefaultConfig is the paper's simulated machine: 8 cores, 128 KiB 8-way
// L1D (2 cycles), 1 MiB 8-way shared L2 (11 cycles).
func DefaultConfig() Config {
	return Config{
		Cores:     8,
		L1Size:    128 * 1024,
		L1Ways:    8,
		L1Lat:     2,
		L2Size:    1024 * 1024,
		L2Ways:    8,
		L2Lat:     11,
		RemoteLat: 13,
	}
}

// The coherence directory — which L1s share a line, and which single L1 (if
// any) may hold it E/M — lives directly in the inclusive L2's cache.Line
// (Sharers/Owner fields), as in a real inclusive-LLC design: an entry exists
// exactly while the line is resident, Fill resets it, and eviction discards
// it with the line. Directory fields are mutated only under the line's
// lineLock; quiescent walkers (snapshots, invariant checks) read them
// between engine events.

// Line locks serialize transactions per cache line. Transactions hold the
// lock from issue to completion, so state bound at the atomic mutation
// points cannot be disturbed by a racing transaction on the same line.
//
// The locks of one page's 64 lines are two bitmaps in a lockPage: held
// marks lines with a transaction in flight, waiting marks held lines with
// queued transactions behind them. Keeping pages pointer-free and the map
// page-granular (one entry per touched page, not per touched line) makes
// the per-access lookup cheap and invisible to the garbage collector; the
// waiter queues themselves live in a side map touched only on contention.
type lockPage struct {
	held    uint64
	waiting uint64
}

// Hierarchy is the coherent two-level cache system in front of the memory
// controllers.
type Hierarchy struct {
	cfg    Config
	eng    *engine.Engine
	layout memory.Layout
	l1s    []*cache.Cache
	l2     *cache.Cache
	locks  map[memory.Addr]*lockPage
	// lockWaiters holds the FIFO queue of transactions blocked behind a
	// held line lock, keyed by line address; an entry exists exactly while
	// the line's waiting bit is set.
	lockWaiters map[memory.Addr][]func()
	// Last-page memo for lockPageFor; pages are never removed, so the memo
	// cannot dangle.
	lockLast     *lockPage
	lockLastBase memory.Addr
	dram         *memctrl.Controller
	nvmm         *memctrl.Controller
	policy       PersistPolicy

	// txnFree is the freelist of pooled access transactions (txn.go).
	txnFree *accessTxn

	// Cached handles for the per-access counters; registration still
	// happens at first increment, so counter listings are unchanged.
	nLoadHits, nLoadMisses, nStoreHits, nStoreUpgrades, nStoreMisses stats.Lazy
	nL2Hits, nL2Misses, nPersisting                                  stats.Lazy
	nL1Evictions, nL2Evictions, nBackInvals, nInvals                 stats.Lazy

	// Stats holds hierarchy counters (hits, misses, invalidations, ...).
	Stats *stats.Counters
}

// New wires a hierarchy. policy must not be nil; use NullPolicy for schemes
// without persist buffers.
//
//bbbvet:quiescent construction, before any transaction exists
func New(cfg Config, eng *engine.Engine, layout memory.Layout, dram, nvmm *memctrl.Controller, policy PersistPolicy) *Hierarchy {
	if policy == nil {
		panic("coherence: nil PersistPolicy")
	}
	h := &Hierarchy{
		cfg:         cfg,
		eng:         eng,
		layout:      layout,
		l2:          cache.New("L2", cfg.L2Size, cfg.L2Ways),
		locks:       make(map[memory.Addr]*lockPage),
		lockWaiters: make(map[memory.Addr][]func()),
		dram:        dram,
		nvmm:        nvmm,
		policy:      policy,
		Stats:       stats.NewCounters(),
	}
	for i := 0; i < cfg.Cores; i++ {
		h.l1s = append(h.l1s, cache.New(fmt.Sprintf("L1D%d", i), cfg.L1Size, cfg.L1Ways))
	}
	h.nLoadHits = h.Stats.Lazy("l1.load_hits")
	h.nLoadMisses = h.Stats.Lazy("l1.load_misses")
	h.nStoreHits = h.Stats.Lazy("l1.store_hits")
	h.nStoreUpgrades = h.Stats.Lazy("l1.store_upgrades")
	h.nStoreMisses = h.Stats.Lazy("l1.store_misses")
	h.nL2Hits = h.Stats.Lazy("l2.hits")
	h.nL2Misses = h.Stats.Lazy("l2.misses")
	h.nPersisting = h.Stats.Lazy("store.persisting")
	h.nL1Evictions = h.Stats.Lazy("l1.evictions")
	h.nL2Evictions = h.Stats.Lazy("l2.evictions")
	h.nBackInvals = h.Stats.Lazy("l1.back_invalidations")
	h.nInvals = h.Stats.Lazy("l1.invalidations")
	return h
}

// Cores returns the core count.
func (h *Hierarchy) Cores() int { return h.cfg.Cores }

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Layout returns the physical memory layout.
func (h *Hierarchy) Layout() memory.Layout { return h.layout }

// controllerFor returns the memory controller owning addr.
func (h *Hierarchy) controllerFor(addr memory.Addr) *memctrl.Controller {
	if h.layout.RegionOf(addr) == memory.RegionNVMM {
		return h.nvmm
	}
	return h.dram
}

// lockPageFor returns la's lock page and its line's bit position, creating
// the page on first touch.
func (h *Hierarchy) lockPageFor(la memory.Addr) (*lockPage, uint) {
	base := la &^ (memory.PageSize - 1)
	pg := h.lockLast
	if pg == nil || base != h.lockLastBase {
		pg = h.locks[base]
		if pg == nil {
			pg = new(lockPage)
			h.locks[base] = pg
		}
		h.lockLast, h.lockLastBase = pg, base
	}
	return pg, uint(la/memory.LineSize) % 64
}

// lockTxn runs t's locked dispatch with its line lock held, queueing it
// behind any transaction already in flight on the line; finish releases the
// lock exactly once when the transaction completes.
func (h *Hierarchy) lockTxn(t *accessTxn) {
	pg, bit := h.lockPageFor(t.la)
	if pg.held&(1<<bit) != 0 {
		pg.waiting |= 1 << bit
		h.lockWaiters[t.la] = append(h.lockWaiters[t.la], t.lockedFn)
		return
	}
	pg.held |= 1 << bit
	h.locked(t)
}

// unlock releases la's line lock, handing it to the next queued transaction
// if one is waiting (the held bit stays set across the handoff).
func (h *Hierarchy) unlock(la memory.Addr) {
	pg, bit := h.lockPageFor(la)
	if pg.held&(1<<bit) == 0 {
		panic("coherence: release of unheld line lock")
	}
	if pg.waiting&(1<<bit) == 0 {
		pg.held &^= 1 << bit
		return
	}
	ws := h.lockWaiters[la]
	next := ws[0]
	if len(ws) == 1 {
		delete(h.lockWaiters, la)
		pg.waiting &^= 1 << bit
	} else {
		ws[0] = nil
		h.lockWaiters[la] = ws[1:]
	}
	// Run the next transaction in a fresh event so releases never recurse.
	h.eng.Schedule(0, next)
}

// l2Line returns the L2 line holding addr, which carries the directory state
// for the line. The caller must know the line is resident (inclusion).
//
//bbbvet:locked lineLock
func (h *Hierarchy) l2Line(addr memory.Addr) *cache.Line {
	l := h.l2.Probe(addr)
	if l == nil {
		panic(fmt.Sprintf("coherence: L2 line %#x expected resident", addr))
	}
	return l
}
