package coherence

import (
	"fmt"
	"sort"

	"bbb/internal/cache"
	"bbb/internal/memory"
)

// MergedLine returns the architecturally freshest data for la held anywhere
// in the hierarchy, and whether la is cached at all. The owner L1's copy
// wins over the L2's.
//
//bbbvet:quiescent crash drains and recovery inspection run with no transaction in flight
func (h *Hierarchy) MergedLine(la memory.Addr) ([memory.LineSize]byte, bool) {
	l2line := h.l2.Probe(la)
	if l2line == nil {
		return [memory.LineSize]byte{}, false
	}
	if l2line.Owner >= 0 {
		if l := h.l1s[l2line.Owner].Probe(la); l != nil && l.State == cache.Modified {
			return l.Data, true
		}
	}
	return l2line.Data, true
}

// ForEachDirtyLine calls fn for every line whose cached (merged) data is
// dirty with respect to memory, passing the freshest data. Used by the eADR
// crash drain (flush-on-fail over the whole hierarchy) and by recovery
// tests.
//
//bbbvet:quiescent crash drains run with no transaction in flight
func (h *Hierarchy) ForEachDirtyLine(fn func(la memory.Addr, persistent bool, data *[memory.LineSize]byte)) {
	h.l2.ForEach(func(l2line *cache.Line) {
		la := l2line.Addr
		data := l2line.Data
		dirty := l2line.Dirty
		persistent := l2line.Persistent
		if l2line.Owner >= 0 {
			if l := h.l1s[l2line.Owner].Probe(la); l != nil && l.State == cache.Modified && l.Dirty {
				data = l.Data
				dirty = true
				persistent = persistent || l.Persistent
			}
		}
		if dirty {
			fn(la, persistent, &data)
		}
	})
}

// LineView is a read-only snapshot of one line's state across the
// hierarchy, taken at quiescence for the runtime invariant checker
// (internal/invariant).
type LineView struct {
	InL2          bool // resident in the inclusive L2 (the LLC)
	L2Dirty       bool // the L2 copy itself is dirty
	L2Persistent  bool // the L2 copy maps to NVMM
	Owner         int  // core holding the line E/M, or -1
	DirtyAnywhere bool // dirty in the L2 or in the owner's L1
}

// ViewLine snapshots la's hierarchy state. The zero LineView (with Owner
// normalized to -1) means the line is uncached.
//
//bbbvet:quiescent invariant walks run between engine events
func (h *Hierarchy) ViewLine(la memory.Addr) LineView {
	v := LineView{Owner: -1}
	l2line := h.l2.Probe(la)
	if l2line == nil {
		return v
	}
	v.InL2 = true
	v.L2Dirty = l2line.Dirty
	v.L2Persistent = l2line.Persistent
	v.DirtyAnywhere = l2line.Dirty
	v.Owner = l2line.Owner
	if v.Owner >= 0 {
		if l := h.l1s[v.Owner].Probe(la); l != nil && l.Dirty {
			v.DirtyAnywhere = true
		}
	}
	return v
}

// L2Cache exposes the shared L2 for the invariant checker and for tests
// that need to corrupt hierarchy state deliberately.
func (h *Hierarchy) L2Cache() *cache.Cache { return h.l2 }

// L1Cache exposes core's private L1D, likewise for checking and tests.
func (h *Hierarchy) L1Cache(core int) *cache.Cache { return h.l1s[core] }

// DirtyStats reports the valid/dirty line counts of the whole hierarchy
// (paper §V-A assumes 44.9% of blocks dirty for eADR's drain estimate; this
// lets experiments report the measured value).
func (h *Hierarchy) DirtyStats() (valid, dirty int) {
	v, d := h.l2.CountValid()
	valid, dirty = v, d
	for _, l1 := range h.l1s {
		v, d := l1.CountValid()
		valid += v
		dirty += d
	}
	return valid, dirty
}

// CheckInvariants validates the coherence invariants the protocol relies
// on; tests call it between and after runs. It returns an error describing
// the first violation found.
//
//bbbvet:quiescent invariant walks run between engine events
func (h *Hierarchy) CheckInvariants() error {
	// L1 inclusion in L2, and directory consistency. The directory lives in
	// the L2 lines, so inclusion and entry existence are one check.
	for c, l1 := range h.l1s {
		var err error
		l1.ForEach(func(l *cache.Line) {
			if err != nil {
				return
			}
			d := h.l2.Probe(l.Addr)
			if d == nil {
				err = fmt.Errorf("L1[%d] line %#x not in inclusive L2", c, l.Addr)
				return
			}
			if !d.IsSharer(c) {
				err = fmt.Errorf("L1[%d] line %#x missing from directory sharers", c, l.Addr)
				return
			}
			switch l.State {
			case cache.Modified, cache.Exclusive:
				if d.Owner != c {
					err = fmt.Errorf("L1[%d] line %#x is %v but directory owner is %d", c, l.Addr, l.State, d.Owner)
				}
			case cache.Shared:
				if d.Owner == c {
					err = fmt.Errorf("L1[%d] line %#x is S but directory names it owner", c, l.Addr)
				}
			}
		})
		if err != nil {
			return err
		}
	}
	// Directory entries point at real L1 lines; single-writer holds.
	// Iterate in address order so the first violation reported for a given
	// corrupted state is always the same one.
	las := make([]memory.Addr, 0, 64)
	h.l2.ForEach(func(l *cache.Line) { las = append(las, l.Addr) })
	sort.Slice(las, func(i, j int) bool { return las[i] < las[j] })
	for _, la := range las {
		d := h.l2.Probe(la)
		if d.Owner >= 0 {
			l := h.l1s[d.Owner].Probe(la)
			if l == nil {
				return fmt.Errorf("directory owner %d lacks line %#x", d.Owner, la)
			}
			if l.State != cache.Modified && l.State != cache.Exclusive {
				return fmt.Errorf("directory owner %d holds %#x in %v", d.Owner, la, l.State)
			}
		}
		writers := 0
		for c := 0; c < h.cfg.Cores; c++ {
			l := h.l1s[c].Probe(la)
			if d.IsSharer(c) && l == nil {
				return fmt.Errorf("directory sharer %d lacks line %#x", c, la)
			}
			if !d.IsSharer(c) && l != nil {
				return fmt.Errorf("core %d holds line %#x unknown to directory", c, la)
			}
			if l != nil && l.State == cache.Modified {
				writers++
			}
		}
		if writers > 1 {
			return fmt.Errorf("line %#x has %d writers", la, writers)
		}
	}
	return nil
}

// L1HitRate reports aggregate L1 load/store hit rate for diagnostics.
func (h *Hierarchy) L1HitRate() float64 {
	var acc, miss uint64
	for _, l1 := range h.l1s {
		acc += l1.Accesses
		miss += l1.Misses
	}
	if acc == 0 {
		return 0
	}
	return 1 - float64(miss)/float64(acc)
}
