package coherence

import (
	"encoding/binary"
	"fmt"

	"bbb/internal/trace"

	"bbb/internal/cache"
	"bbb/internal/engine"
	"bbb/internal/memory"
)

// Load reads size bytes (1, 2, 4 or 8; not crossing a line) at addr on
// behalf of core, invoking done with the little-endian value when the load
// completes.
func (h *Hierarchy) Load(core int, addr memory.Addr, size int, done func(val uint64)) {
	checkAccess(addr, size)
	la := memory.LineAddr(addr)
	h.acquire(la, func(release func()) {
		h.loadLocked(core, la, func(line *cache.Line, lat engine.Cycle) {
			val := readValue(&line.Data, memory.LineOffset(addr), size)
			h.eng.Schedule(lat, func() {
				release()
				done(val)
			})
		})
	})
}

// Store writes size bytes of val at addr on behalf of core, invoking done
// when the store has committed to the L1D (and, for persisting stores, to
// the persist policy — the two happen together, which is the point of BBB).
func (h *Hierarchy) Store(core int, addr memory.Addr, size int, val uint64, done func()) {
	checkAccess(addr, size)
	la := memory.LineAddr(addr)
	persistent := h.layout.Persistent(la)

	var attempt func(rejected bool)
	attempt = func(rejected bool) {
		// Reserve persist-buffer capacity before entering the coherence
		// transaction so CommitStore cannot fail mid-protocol (§III-D
		// invariant 1: stores enter the persistence domain in order).
		if persistent && !h.policy.CanAcceptStore(core, la) {
			if !rejected {
				h.Stats.Inc("store.persist_rejected")
			}
			h.policy.OnSpace(core, func() { attempt(true) })
			return
		}
		h.acquire(la, func(release func()) {
			h.storeLocked(core, la, func(line *cache.Line, lat engine.Cycle) {
				// The early reservation can be invalidated while the miss
				// was outstanding (an LLC eviction may have force-drained
				// the entry we meant to coalesce into), so re-check at the
				// commit point, holding the line lock: the store stays
				// invisible until it can also persist (§III-D invariant 3).
				var commit func()
				commit = func() {
					if persistent && !h.policy.CanAcceptStore(core, la) {
						h.Stats.Inc("store.persist_commit_waits")
						h.policy.OnSpace(core, commit)
						return
					}
					writeValue(&line.Data, memory.LineOffset(addr), size, val)
					line.Dirty = true
					line.Persistent = persistent
					if persistent {
						h.Stats.Inc("store.persisting")
						h.eng.EmitTrace(trace.KindStoreCommit, core, la, val)
						h.policy.CommitStore(core, la, &line.Data)
					}
					h.eng.Schedule(lat, func() {
						release()
						done()
					})
				}
				commit()
			})
		})
	}
	attempt(false)
}

// AtomicCAS performs a compare-and-swap of size bytes at addr on behalf of
// core: the line is obtained in M state, the current value is compared with
// old, and new is written only on a match. done receives the previous
// value. The per-line lock makes the read-modify-write atomic with respect
// to every other access; a successful swap on a persistent line enters the
// persistence domain exactly like a store (so persistent lock-free
// structures work under BBB with no barriers, cf. §VI's lock-free
// discussion).
func (h *Hierarchy) AtomicCAS(core int, addr memory.Addr, size int, old, new uint64, done func(prev uint64)) {
	checkAccess(addr, size)
	la := memory.LineAddr(addr)
	persistent := h.layout.Persistent(la)

	var attempt func(rejected bool)
	attempt = func(rejected bool) {
		if persistent && !h.policy.CanAcceptStore(core, la) {
			if !rejected {
				h.Stats.Inc("store.persist_rejected")
			}
			h.policy.OnSpace(core, func() { attempt(true) })
			return
		}
		h.acquire(la, func(release func()) {
			h.storeLocked(core, la, func(line *cache.Line, lat engine.Cycle) {
				// Same commit-time re-check as Store: the reservation can
				// go stale during an outstanding miss.
				var commit func()
				commit = func() {
					if persistent && !h.policy.CanAcceptStore(core, la) {
						h.Stats.Inc("store.persist_commit_waits")
						h.policy.OnSpace(core, commit)
						return
					}
					h.Stats.Inc("l1.atomics")
					h.eng.EmitTrace(trace.KindAtomic, core, la, old)
					prev := readValue(&line.Data, memory.LineOffset(addr), size)
					if prev == old {
						writeValue(&line.Data, memory.LineOffset(addr), size, new)
						line.Dirty = true
						line.Persistent = persistent
						if persistent {
							h.Stats.Inc("store.persisting")
							// A successful persistent CAS is a persisting
							// store commit; emit the commit event so
							// durability provenance tracks it like any store.
							h.eng.EmitTrace(trace.KindStoreCommit, core, la, new)
							h.policy.CommitStore(core, la, &line.Data)
						}
					}
					h.eng.Schedule(lat+2, func() {
						release()
						done(prev)
					})
				}
				commit()
			})
		})
	}
	attempt(false)
}

// LineWritable reports whether core already holds addr's line in a state
// that lets a store commit locally (M or E, and no transaction in flight
// on the line). A cheap peek used by relaxed store-buffer scheduling.
func (h *Hierarchy) LineWritable(core int, addr memory.Addr) bool {
	la := memory.LineAddr(addr)
	if lk := h.locks[la]; lk != nil && lk.held {
		return false
	}
	l := h.l1s[core].Probe(la)
	return l != nil && (l.State == cache.Modified || l.State == cache.Exclusive)
}

// PrefetchExclusive warms addr's line into core's L1 with store intent (a
// request-for-ownership), so a later committed store hits locally. It never
// writes data and never touches the persist policy — visibility and
// persistency are unaffected; only the miss latency moves off the commit
// path. done is optional.
func (h *Hierarchy) PrefetchExclusive(core int, addr memory.Addr, done func()) {
	la := memory.LineAddr(addr)
	h.acquire(la, func(release func()) {
		h.Stats.Inc("l1.store_prefetches")
		h.storeLocked(core, la, func(_ *cache.Line, lat engine.Cycle) {
			h.eng.Schedule(lat, func() {
				release()
				if done != nil {
					done()
				}
			})
		})
	})
}

// loadLocked implements the read path with la's lock held. ready is invoked
// at the atomic mutation point with the L1 line and the latency to charge.
//
//bbbvet:locked lineLock
func (h *Hierarchy) loadLocked(core int, la memory.Addr, ready func(*cache.Line, engine.Cycle)) {
	l1 := h.l1s[core]
	if line := l1.Lookup(la); line != nil {
		h.Stats.Inc("l1.load_hits")
		ready(line, h.cfg.L1Lat)
		return
	}
	h.Stats.Inc("l1.load_misses")
	h.l2Fetch(core, la, func(data *[memory.LineSize]byte, shared bool, extra engine.Cycle) {
		st := cache.Exclusive
		if shared {
			st = cache.Shared
		}
		line := h.l1Install(core, la, st, data)
		d := h.dirOf(la)
		d.addSharer(core)
		if st == cache.Exclusive {
			d.owner = core
		}
		ready(line, h.cfg.L1Lat+extra)
	})
}

// storeLocked implements the write path with la's lock held: obtain the line
// in M state in core's L1, then hand it to ready.
//
//bbbvet:locked lineLock
func (h *Hierarchy) storeLocked(core int, la memory.Addr, ready func(*cache.Line, engine.Cycle)) {
	l1 := h.l1s[core]
	line := l1.Lookup(la)
	switch {
	case line != nil && (line.State == cache.Modified || line.State == cache.Exclusive):
		h.Stats.Inc("l1.store_hits")
		line.State = cache.Modified
		h.dirOf(la).owner = core
		ready(line, h.cfg.L1Lat)

	case line != nil && line.State == cache.Shared:
		// Upgrade: invalidate the other sharers through the directory.
		h.Stats.Inc("l1.store_upgrades")
		n := h.invalidateOthers(core, la)
		d := h.dirOf(la)
		d.owner = core
		line.State = cache.Modified
		lat := h.cfg.L1Lat + h.cfg.L2Lat
		if n > 0 {
			lat += h.cfg.RemoteLat
		}
		ready(line, lat)

	default:
		h.Stats.Inc("l1.store_misses")
		h.l2FetchExclusive(core, la, func(data *[memory.LineSize]byte, extra engine.Cycle) {
			line := h.l1Install(core, la, cache.Modified, data)
			d := h.dirOf(la)
			d.addSharer(core)
			d.owner = core
			ready(line, h.cfg.L1Lat+extra)
		})
	}
}

// l2Fetch obtains la's data for a read by core. shared reports whether other
// L1s retain copies (S grant) or none do (E grant). The L2 line is installed
// if missing. Runs ready at the mutation point.
//
//bbbvet:locked lineLock
func (h *Hierarchy) l2Fetch(core int, la memory.Addr, ready func(data *[memory.LineSize]byte, shared bool, extra engine.Cycle)) {
	if l2line := h.l2.Lookup(la); l2line != nil {
		h.Stats.Inc("l2.hits")
		d := h.dirOf(la)
		extra := h.cfg.L2Lat
		if d.owner >= 0 && d.owner != core {
			// Intervention: the owner may hold newer data (M). Downgrade
			// M->S, merge the data into L2 and mark it dirty; per Fig. 6(c)
			// no memory writeback happens here in any scheme — under BBB
			// the bbPB entry simply stays where it is.
			h.Stats.Inc("l1.interventions")
			h.eng.EmitTrace(trace.KindIntervene, d.owner, la, uint64(core))
			oline := h.l1s[d.owner].Probe(la)
			if oline == nil {
				panic(fmt.Sprintf("coherence: directory owner %d lacks line %#x", d.owner, la))
			}
			if oline.State == cache.Modified {
				l2line.Data = oline.Data
				l2line.Dirty = true
				l2line.Persistent = l2line.Persistent || oline.Persistent
			}
			oline.State = cache.Shared
			oline.Dirty = false
			d.owner = -1
			extra += h.cfg.RemoteLat
		}
		if d.owner == core {
			d.owner = -1 // self re-fetch after L1 eviction
		}
		ready(&l2line.Data, !d.none(), extra)
		return
	}
	h.Stats.Inc("l2.misses")
	h.memFill(core, la, func(l2line *cache.Line, extra engine.Cycle) {
		ready(&l2line.Data, false, extra)
	})
}

// l2FetchExclusive obtains la with all other copies invalidated, for a
// write by core.
func (h *Hierarchy) l2FetchExclusive(core int, la memory.Addr, ready func(data *[memory.LineSize]byte, extra engine.Cycle)) {
	if l2line := h.l2.Lookup(la); l2line != nil {
		h.Stats.Inc("l2.hits")
		n := h.invalidateOthers(core, la)
		extra := h.cfg.L2Lat
		if n > 0 {
			extra += h.cfg.RemoteLat
		}
		ready(&l2line.Data, extra)
		return
	}
	h.Stats.Inc("l2.misses")
	h.memFill(core, la, func(l2line *cache.Line, extra engine.Cycle) {
		ready(&l2line.Data, extra)
	})
}

// invalidateOthers removes every L1 copy of la except core's, merging dirty
// data into the L2 and firing the persistency migration hook. It returns
// the number of copies invalidated.
//
//bbbvet:locked lineLock
func (h *Hierarchy) invalidateOthers(core int, la memory.Addr) int {
	d := h.dirOf(la)
	l2line := h.l2.Probe(la)
	if l2line == nil {
		panic(fmt.Sprintf("coherence: directory entry without L2 line %#x", la))
	}
	n := 0
	for c := 0; c < h.cfg.Cores; c++ {
		if c == core || !d.isSharer(c) {
			continue
		}
		old, ok := h.l1s[c].Invalidate(la)
		if !ok {
			panic(fmt.Sprintf("coherence: directory sharer %d lacks line %#x", c, la))
		}
		if old.State == cache.Modified {
			l2line.Data = old.Data
			l2line.Dirty = true
			l2line.Persistent = l2line.Persistent || old.Persistent
		}
		h.policy.OnRemoteInvalidate(c, la)
		h.Stats.Inc("l1.invalidations")
		h.eng.EmitTrace(trace.KindInvalidate, c, la, uint64(core))
		d.dropSharer(c)
		n++
	}
	if d.owner >= 0 && d.owner != core {
		d.owner = -1
	}
	return n
}

// memFill brings la from memory into the L2 (evicting a victim as needed)
// and runs ready with the installed line. The extra latency covers the L2
// lookup and the memory access. A concurrent fill to the same set can
// consume the way freed before the read was issued, so eviction re-runs
// until a way is actually free at install time.
func (h *Hierarchy) memFill(core int, la memory.Addr, ready func(*cache.Line, engine.Cycle)) {
	start := h.eng.Now()
	h.evictL2VictimFor(la, func() {
		h.controllerFor(la).Read(la, func(data [memory.LineSize]byte) {
			h.evictL2VictimFor(la, func() {
				victim := h.l2.Victim(la)
				if victim.State != cache.Invalid {
					panic(fmt.Sprintf("coherence: L2 victim for %#x not freed", la))
				}
				h.l2.Fill(victim, la, cache.Exclusive, &data)
				victim.Persistent = h.layout.Persistent(la)
				extra := h.cfg.L2Lat + (h.eng.Now() - start)
				h.eng.Metrics.Observe("l2.miss_latency", uint64(extra))
				ready(victim, extra)
			})
		})
	})
}

// l1Install places la into core's L1, evicting a victim if needed (dirty L1
// victims write back into the inclusive L2).
func (h *Hierarchy) l1Install(core int, la memory.Addr, st cache.State, data *[memory.LineSize]byte) *cache.Line {
	l1 := h.l1s[core]
	victim := l1.Victim(la)
	if victim.State != cache.Invalid {
		h.evictL1Line(core, victim)
	}
	l1.Fill(victim, la, st, data)
	victim.Persistent = h.layout.Persistent(la)
	return victim
}

// evictL1Line removes a (valid) L1 line, merging dirty data into the L2 and
// maintaining the directory. bbPB entries are untouched: inclusion is with
// the LLC, not the L1 (§III-B).
//
//bbbvet:locked lineLock
func (h *Hierarchy) evictL1Line(core int, victim *cache.Line) {
	la := victim.Addr
	h.Stats.Inc("l1.evictions")
	d := h.dirOf(la)
	l2line := h.l2.Probe(la)
	if l2line == nil {
		panic(fmt.Sprintf("coherence: L1 line %#x missing from inclusive L2", la))
	}
	if victim.Dirty {
		l2line.Data = victim.Data
		l2line.Dirty = true
		l2line.Persistent = l2line.Persistent || victim.Persistent
	}
	d.dropSharer(core)
	if d.owner == core {
		d.owner = -1
	}
	victim.State = cache.Invalid
}

func checkAccess(addr memory.Addr, size int) {
	switch size {
	case 1, 2, 4, 8:
	default:
		panic(fmt.Sprintf("coherence: unsupported access size %d", size))
	}
	if memory.LineOffset(addr)+size > memory.LineSize {
		panic(fmt.Sprintf("coherence: access at %#x size %d crosses a line", addr, size))
	}
}

func readValue(data *[memory.LineSize]byte, off, size int) uint64 {
	switch size {
	case 1:
		return uint64(data[off])
	case 2:
		return uint64(binary.LittleEndian.Uint16(data[off:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(data[off:]))
	default:
		return binary.LittleEndian.Uint64(data[off:])
	}
}

func writeValue(data *[memory.LineSize]byte, off, size int, val uint64) {
	switch size {
	case 1:
		data[off] = byte(val)
	case 2:
		binary.LittleEndian.PutUint16(data[off:], uint16(val))
	case 4:
		binary.LittleEndian.PutUint32(data[off:], uint32(val))
	default:
		binary.LittleEndian.PutUint64(data[off:], val)
	}
}
