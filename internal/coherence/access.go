package coherence

import (
	"encoding/binary"
	"fmt"

	"bbb/internal/cache"
	"bbb/internal/memory"
	"bbb/internal/trace"
)

// Load reads size bytes (1, 2, 4 or 8; not crossing a line) at addr on
// behalf of core, invoking done with the little-endian value when the load
// completes.
func (h *Hierarchy) Load(core int, addr memory.Addr, size int, done func(val uint64)) {
	checkAccess(addr, size)
	t := h.getTxn()
	t.kind, t.core, t.addr, t.la, t.size = txnLoad, core, addr, memory.LineAddr(addr), size
	t.doneVal = done
	h.lockTxn(t)
}

// Store writes size bytes of val at addr on behalf of core, invoking done
// when the store has committed to the L1D (and, for persisting stores, to
// the persist policy — the two happen together, which is the point of BBB).
func (h *Hierarchy) Store(core int, addr memory.Addr, size int, val uint64, done func()) {
	checkAccess(addr, size)
	t := h.getTxn()
	t.kind, t.core, t.addr, t.la, t.size, t.val = txnStore, core, addr, memory.LineAddr(addr), size, val
	t.done = done
	t.persistent = h.layout.Persistent(t.la)
	h.admitStore(t)
}

// AtomicCAS performs a compare-and-swap of size bytes at addr on behalf of
// core: the line is obtained in M state, the current value is compared with
// old, and new is written only on a match. done receives the previous
// value. The per-line lock makes the read-modify-write atomic with respect
// to every other access; a successful swap on a persistent line enters the
// persistence domain exactly like a store (so persistent lock-free
// structures work under BBB with no barriers, cf. §VI's lock-free
// discussion).
func (h *Hierarchy) AtomicCAS(core int, addr memory.Addr, size int, old, new uint64, done func(prev uint64)) {
	checkAccess(addr, size)
	t := h.getTxn()
	t.kind, t.core, t.addr, t.la, t.size = txnCAS, core, addr, memory.LineAddr(addr), size
	t.old, t.val = old, new
	t.doneVal = done
	t.persistent = h.layout.Persistent(t.la)
	h.admitStore(t)
}

// LineWritable reports whether core already holds addr's line in a state
// that lets a store commit locally (M or E, and no transaction in flight
// on the line). A cheap peek used by relaxed store-buffer scheduling.
func (h *Hierarchy) LineWritable(core int, addr memory.Addr) bool {
	la := memory.LineAddr(addr)
	if pg, bit := h.lockPageFor(la); pg.held&(1<<bit) != 0 {
		return false
	}
	l := h.l1s[core].Probe(la)
	return l != nil && (l.State == cache.Modified || l.State == cache.Exclusive)
}

// PrefetchExclusive warms addr's line into core's L1 with store intent (a
// request-for-ownership), so a later committed store hits locally. It never
// writes data and never touches the persist policy — visibility and
// persistency are unaffected; only the miss latency moves off the commit
// path. done is optional.
func (h *Hierarchy) PrefetchExclusive(core int, addr memory.Addr, done func()) {
	t := h.getTxn()
	t.kind, t.core, t.addr, t.la = txnPrefetch, core, addr, memory.LineAddr(addr)
	t.done = done
	h.lockTxn(t)
}

// invalidateOthers removes every L1 copy of la except core's, merging dirty
// data into the L2 and firing the persistency migration hook. It returns
// the number of copies invalidated.
//
//bbbvet:locked lineLock
func (h *Hierarchy) invalidateOthers(core int, la memory.Addr, l2line *cache.Line) int {
	n := 0
	for c := 0; c < h.cfg.Cores; c++ {
		if c == core || !l2line.IsSharer(c) {
			continue
		}
		old, ok := h.l1s[c].Invalidate(la)
		if !ok {
			panic(fmt.Sprintf("coherence: directory sharer %d lacks line %#x", c, la))
		}
		if old.State == cache.Modified {
			l2line.Data = old.Data
			l2line.Dirty = true
			l2line.Persistent = l2line.Persistent || old.Persistent
		}
		h.policy.OnRemoteInvalidate(c, la)
		h.nInvals.Inc()
		h.eng.EmitTrace(trace.KindInvalidate, c, la, uint64(core))
		l2line.DropSharer(c)
		n++
	}
	if l2line.Owner >= 0 && l2line.Owner != core {
		l2line.Owner = -1
	}
	return n
}

// l1Install places la into core's L1, evicting a victim if needed (dirty L1
// victims write back into the inclusive L2).
func (h *Hierarchy) l1Install(core int, la memory.Addr, st cache.State, data *[memory.LineSize]byte) *cache.Line {
	l1 := h.l1s[core]
	victim := l1.Victim(la)
	if victim.State != cache.Invalid {
		h.evictL1Line(core, victim)
	}
	l1.Fill(victim, la, st, data)
	victim.Persistent = h.layout.Persistent(la)
	return victim
}

// evictL1Line removes a (valid) L1 line, merging dirty data into the L2 and
// maintaining the directory. bbPB entries are untouched: inclusion is with
// the LLC, not the L1 (§III-B).
//
//bbbvet:locked lineLock
func (h *Hierarchy) evictL1Line(core int, victim *cache.Line) {
	la := victim.Addr
	h.nL1Evictions.Inc()
	l2line := h.l2.Probe(la)
	if l2line == nil {
		panic(fmt.Sprintf("coherence: L1 line %#x missing from inclusive L2", la))
	}
	if victim.Dirty {
		l2line.Data = victim.Data
		l2line.Dirty = true
		l2line.Persistent = l2line.Persistent || victim.Persistent
	}
	l2line.DropSharer(core)
	if l2line.Owner == core {
		l2line.Owner = -1
	}
	victim.State = cache.Invalid
}

func checkAccess(addr memory.Addr, size int) {
	switch size {
	case 1, 2, 4, 8:
	default:
		panic(fmt.Sprintf("coherence: unsupported access size %d", size))
	}
	if memory.LineOffset(addr)+size > memory.LineSize {
		panic(fmt.Sprintf("coherence: access at %#x size %d crosses a line", addr, size))
	}
}

func readValue(data *[memory.LineSize]byte, off, size int) uint64 {
	switch size {
	case 1:
		return uint64(data[off])
	case 2:
		return uint64(binary.LittleEndian.Uint16(data[off:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(data[off:]))
	default:
		return binary.LittleEndian.Uint64(data[off:])
	}
}

func writeValue(data *[memory.LineSize]byte, off, size int, val uint64) {
	switch size {
	case 1:
		data[off] = byte(val)
	case 2:
		binary.LittleEndian.PutUint16(data[off:], uint16(val))
	case 4:
		binary.LittleEndian.PutUint32(data[off:], uint32(val))
	default:
		binary.LittleEndian.PutUint64(data[off:], val)
	}
}
