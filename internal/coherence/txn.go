package coherence

import (
	"fmt"

	"bbb/internal/cache"
	"bbb/internal/engine"
	"bbb/internal/memory"
	"bbb/internal/trace"
)

type txnKind uint8

const (
	txnLoad txnKind = iota
	txnStore
	txnCAS
	txnPrefetch
	txnClwb
)

// accessTxn is one in-flight hierarchy access. The access paths used to
// chain five-plus capturing closures per operation (admission retry → lock
// acquire → miss fill → commit re-check → scheduled completion); the txn
// carries that state in plain fields plus a fixed set of callbacks bound
// once at allocation, and a freelist recycles completed transactions, so a
// steady-state access allocates nothing. The callback sequence — and with
// it the engine's event order — is unchanged from the closure form.
type accessTxn struct {
	h    *Hierarchy
	next *accessTxn // freelist link

	kind       txnKind
	core       int
	addr       memory.Addr
	la         memory.Addr
	size       int
	val        uint64 // store value / CAS new value
	old        uint64 // CAS expected value
	res        uint64 // load result / CAS previous value
	persistent bool
	rejected   bool // persist admission already counted one rejection

	done    func()       // store / prefetch / clwb completion
	doneVal func(uint64) // load / CAS completion

	line *cache.Line
	lat  engine.Cycle

	// L2 miss fill state.
	fillFrom engine.Cycle
	fillRead bool
	fillBuf  [memory.LineSize]byte

	// In-flight L2 eviction state; a txn evicts at most one victim at a
	// time, looping through fillStep between victims.
	evLA    memory.Addr
	evDirty bool
	evData  [memory.LineSize]byte

	clwbData [memory.LineSize]byte

	// Callbacks bound to this txn at allocation and reused for its
	// lifetime in the pool.
	admitFn     func()
	lockedFn    func()
	commitFn    func()
	finishFn    func()
	fillStepFn  func()
	evictDoneFn func(writeBack bool)
	clwbWriteFn func()
}

// getTxn takes a transaction from the freelist, allocating (and binding its
// callbacks) only when the pool is empty.
func (h *Hierarchy) getTxn() *accessTxn {
	t := h.txnFree
	if t == nil {
		t = &accessTxn{h: h}
		t.admitFn = func() { t.h.admitStore(t) }
		t.lockedFn = func() { t.h.locked(t) }
		t.commitFn = func() { t.h.commit(t) }
		t.finishFn = func() { t.h.finish(t) }
		t.fillStepFn = func() { t.h.fillStep(t) }
		t.evictDoneFn = func(writeBack bool) { t.h.evictDone(t, writeBack) }
		t.clwbWriteFn = func() {
			t.h.controllerFor(t.la).Write(t.la, t.clwbData, t.finishFn)
		}
		return t
	}
	h.txnFree = t.next
	t.next = nil
	return t
}

func (h *Hierarchy) putTxn(t *accessTxn) {
	t.done, t.doneVal, t.line = nil, nil, nil
	t.rejected, t.fillRead = false, false
	t.next = h.txnFree
	h.txnFree = t
}

// admitStore reserves persist-buffer capacity before entering the coherence
// transaction so CommitStore cannot fail mid-protocol (§III-D invariant 1:
// stores enter the persistence domain in order).
func (h *Hierarchy) admitStore(t *accessTxn) {
	if t.persistent && !h.policy.CanAcceptStore(t.core, t.la) {
		if !t.rejected {
			t.rejected = true
			h.Stats.Inc("store.persist_rejected")
		}
		h.policy.OnSpace(t.core, t.admitFn)
		return
	}
	h.lockTxn(t)
}

// locked dispatches a transaction that has just obtained its line lock.
//
//bbbvet:locked lineLock
func (h *Hierarchy) locked(t *accessTxn) {
	switch t.kind {
	case txnLoad:
		h.lockedLoad(t)
	case txnClwb:
		h.lockedClwb(t)
	case txnPrefetch:
		h.Stats.Inc("l1.store_prefetches")
		h.lockedStore(t)
	default:
		h.lockedStore(t)
	}
}

// lockedLoad implements the read path with the line lock held: L1 hit, or
// L2 fetch (with owner intervention), or memory fill.
//
//bbbvet:locked lineLock
func (h *Hierarchy) lockedLoad(t *accessTxn) {
	if line := h.l1s[t.core].Lookup(t.la); line != nil {
		h.nLoadHits.Inc()
		t.line, t.lat = line, h.cfg.L1Lat
		h.commit(t)
		return
	}
	h.nLoadMisses.Inc()
	if l2line := h.l2.Lookup(t.la); l2line != nil {
		h.nL2Hits.Inc()
		extra := h.cfg.L2Lat
		if l2line.Owner >= 0 && l2line.Owner != t.core {
			// Intervention: the owner may hold newer data (M). Downgrade
			// M->S, merge the data into L2 and mark it dirty; per Fig. 6(c)
			// no memory writeback happens here in any scheme — under BBB
			// the bbPB entry simply stays where it is.
			h.Stats.Inc("l1.interventions")
			h.eng.EmitTrace(trace.KindIntervene, l2line.Owner, t.la, uint64(t.core))
			oline := h.l1s[l2line.Owner].Probe(t.la)
			if oline == nil {
				panic(fmt.Sprintf("coherence: directory owner %d lacks line %#x", l2line.Owner, t.la))
			}
			if oline.State == cache.Modified {
				l2line.Data = oline.Data
				l2line.Dirty = true
				l2line.Persistent = l2line.Persistent || oline.Persistent
			}
			oline.State = cache.Shared
			oline.Dirty = false
			l2line.Owner = -1
			extra += h.cfg.RemoteLat
		}
		if l2line.Owner == t.core {
			l2line.Owner = -1 // self re-fetch after L1 eviction
		}
		h.installLoad(t, l2line, !l2line.NoSharers(), extra)
		return
	}
	h.nL2Misses.Inc()
	t.fillFrom = h.eng.Now()
	t.fillRead = false
	h.fillStep(t)
}

// lockedStore implements the write path (stores, CAS, prefetches) with the
// line lock held: obtain the line in M state in the core's L1, then commit.
//
//bbbvet:locked lineLock
func (h *Hierarchy) lockedStore(t *accessTxn) {
	l1 := h.l1s[t.core]
	line := l1.Lookup(t.la)
	switch {
	case line != nil && (line.State == cache.Modified || line.State == cache.Exclusive):
		// The directory already names t.core owner: an L1 line is only ever
		// E or M while its L2 line's Owner is that core (CheckInvariants
		// pins this), so the E->M upgrade is L1-local.
		h.nStoreHits.Inc()
		line.State = cache.Modified
		t.line, t.lat = line, h.cfg.L1Lat
		h.commit(t)

	case line != nil && line.State == cache.Shared:
		// Upgrade: invalidate the other sharers through the directory.
		h.nStoreUpgrades.Inc()
		l2line := h.l2Line(t.la)
		n := h.invalidateOthers(t.core, t.la, l2line)
		l2line.Owner = t.core
		line.State = cache.Modified
		lat := h.cfg.L1Lat + h.cfg.L2Lat
		if n > 0 {
			lat += h.cfg.RemoteLat
		}
		t.line, t.lat = line, lat
		h.commit(t)

	default:
		h.nStoreMisses.Inc()
		if l2line := h.l2.Lookup(t.la); l2line != nil {
			h.nL2Hits.Inc()
			n := h.invalidateOthers(t.core, t.la, l2line)
			extra := h.cfg.L2Lat
			if n > 0 {
				extra += h.cfg.RemoteLat
			}
			h.installStore(t, l2line, extra)
			return
		}
		h.nL2Misses.Inc()
		t.fillFrom = h.eng.Now()
		t.fillRead = false
		h.fillStep(t)
	}
}

// installLoad places the fetched line into the core's L1 with read intent
// and commits.
//
//bbbvet:locked lineLock
func (h *Hierarchy) installLoad(t *accessTxn, l2line *cache.Line, shared bool, extra engine.Cycle) {
	st := cache.Exclusive
	if shared {
		st = cache.Shared
	}
	line := h.l1Install(t.core, t.la, st, &l2line.Data)
	l2line.AddSharer(t.core)
	if st == cache.Exclusive {
		l2line.Owner = t.core
	}
	t.line, t.lat = line, h.cfg.L1Lat+extra
	h.commit(t)
}

// installStore places the fetched line into the core's L1 in M state and
// commits.
//
//bbbvet:locked lineLock
func (h *Hierarchy) installStore(t *accessTxn, l2line *cache.Line, extra engine.Cycle) {
	line := h.l1Install(t.core, t.la, cache.Modified, &l2line.Data)
	l2line.AddSharer(t.core)
	l2line.Owner = t.core
	t.line, t.lat = line, h.cfg.L1Lat+extra
	h.commit(t)
}

// fillStep advances an L2 miss fill: free a victim way (evicting, possibly
// asynchronously, one line at a time), read the line from memory, then
// re-check the way — a concurrent fill to the same set can consume the way
// freed before the read was issued — and install.
//
//bbbvet:locked lineLock
func (h *Hierarchy) fillStep(t *accessTxn) {
	victim := h.l2.Victim(t.la)
	if victim.State != cache.Invalid {
		h.evictL2LineTxn(t, victim)
		return
	}
	if !t.fillRead {
		t.fillRead = true
		h.controllerFor(t.la).ReadInto(t.la, &t.fillBuf, t.fillStepFn)
		return
	}
	h.l2.Fill(victim, t.la, cache.Exclusive, &t.fillBuf)
	victim.Persistent = h.layout.Persistent(t.la)
	extra := h.cfg.L2Lat + (h.eng.Now() - t.fillFrom)
	h.eng.Metrics.Observe("l2.miss_latency", uint64(extra))
	if t.kind == txnLoad {
		h.installLoad(t, victim, false, extra)
	} else {
		h.installStore(t, victim, extra)
	}
}

// evictL2LineTxn removes one valid L2 line on behalf of t's fill:
// back-invalidate L1 copies (merging dirty data) — the directory dies with
// the line — then let the persistency policy decide between writeback and
// silent drop. The fill resumes via evictDone once the way is free. The
// filling transaction serializes evictions; the victim itself has no
// transaction in flight (it is resident, not being fetched).
//
//bbbvet:locked lineLock
func (h *Hierarchy) evictL2LineTxn(t *accessTxn, victim *cache.Line) {
	la := victim.Addr
	h.nL2Evictions.Inc()

	// Back-invalidation (inclusion): pull in any fresher L1 data.
	for c := 0; victim.Sharers != 0 && c < h.cfg.Cores; c++ {
		if !victim.IsSharer(c) {
			continue
		}
		old, ok := h.l1s[c].Invalidate(la)
		if !ok {
			panic(fmt.Sprintf("coherence: sharer %d lacks line %#x on back-invalidation", c, la))
		}
		if old.State == cache.Modified && old.Dirty {
			victim.Data = old.Data
			victim.Dirty = true
			victim.Persistent = victim.Persistent || old.Persistent
		}
		victim.DropSharer(c)
		h.nBackInvals.Inc()
	}
	victim.Owner = -1

	t.evLA = la
	t.evData = victim.Data
	t.evDirty = victim.Dirty
	persistent := victim.Persistent
	victim.State = cache.Invalid

	h.policy.OnLLCEvict(la, persistent, t.evDirty, t.evictDoneFn)
}

// evictDone applies the policy's writeback decision for t's in-flight
// eviction and loops back into the fill.
func (h *Hierarchy) evictDone(t *accessTxn, writeBack bool) {
	wb := uint64(0)
	if writeBack {
		wb = 1
	}
	h.eng.EmitTrace(trace.KindLLCEvict, -1, t.evLA, wb)
	if writeBack {
		h.Stats.Inc("l2.writebacks")
		h.controllerFor(t.evLA).Write(t.evLA, t.evData, nil)
	} else if t.evDirty {
		h.Stats.Inc("l2.writebacks_skipped")
	}
	h.fillStep(t)
}

// lockedClwb implements Clwb with the line lock held.
//
//bbbvet:locked lineLock
func (h *Hierarchy) lockedClwb(t *accessTxn) {
	la := t.la
	lat := h.cfg.L1Lat + h.cfg.L2Lat
	l2line := h.l2.Probe(la)
	var freshest *cache.Line
	if l2line != nil && l2line.Owner >= 0 {
		freshest = h.l1s[l2line.Owner].Probe(la)
	}
	if freshest == nil || !freshest.Dirty {
		freshest = l2line
	}
	if freshest == nil || !freshest.Dirty {
		h.Stats.Inc("clwb.clean")
		h.eng.Schedule(lat, t.finishFn)
		return
	}
	h.Stats.Inc("clwb.writebacks")
	t.clwbData = freshest.Data
	// clwb retains the copy but leaves it clean everywhere.
	if l2line != nil {
		l2line.Dirty = false
	}
	for c := range h.l1s {
		if l := h.l1s[c].Probe(la); l != nil {
			l.Dirty = false
			if l.State == cache.Modified && l2line != nil {
				l2line.Data = t.clwbData
			}
		}
	}
	h.eng.Schedule(lat, t.clwbWriteFn)
}

// commit is the atomic mutation point: the line is resident (in M state for
// writes) and the latency is known. Persisting stores re-check persist
// capacity here, holding the line lock: the early admission reservation can
// be invalidated while a miss was outstanding (an LLC eviction may have
// force-drained the entry we meant to coalesce into), and the store stays
// invisible until it can also persist (§III-D invariant 3).
//
//bbbvet:locked lineLock
func (h *Hierarchy) commit(t *accessTxn) {
	switch t.kind {
	case txnLoad:
		t.res = readValue(&t.line.Data, memory.LineOffset(t.addr), t.size)
		h.eng.Schedule(t.lat, t.finishFn)

	case txnPrefetch:
		h.eng.Schedule(t.lat, t.finishFn)

	case txnStore:
		if t.persistent && !h.policy.CanAcceptStore(t.core, t.la) {
			h.Stats.Inc("store.persist_commit_waits")
			h.policy.OnSpace(t.core, t.commitFn)
			return
		}
		writeValue(&t.line.Data, memory.LineOffset(t.addr), t.size, t.val)
		t.line.Dirty = true
		t.line.Persistent = t.persistent
		if t.persistent {
			h.nPersisting.Inc()
			h.eng.EmitTrace(trace.KindStoreCommit, t.core, t.la, t.val)
			h.policy.CommitStore(t.core, t.la, &t.line.Data)
		}
		h.eng.Schedule(t.lat, t.finishFn)

	case txnCAS:
		if t.persistent && !h.policy.CanAcceptStore(t.core, t.la) {
			h.Stats.Inc("store.persist_commit_waits")
			h.policy.OnSpace(t.core, t.commitFn)
			return
		}
		h.Stats.Inc("l1.atomics")
		h.eng.EmitTrace(trace.KindAtomic, t.core, t.la, t.old)
		prev := readValue(&t.line.Data, memory.LineOffset(t.addr), t.size)
		t.res = prev
		if prev == t.old {
			writeValue(&t.line.Data, memory.LineOffset(t.addr), t.size, t.val)
			t.line.Dirty = true
			t.line.Persistent = t.persistent
			if t.persistent {
				h.nPersisting.Inc()
				// A successful persistent CAS is a persisting store commit;
				// emit the commit event so durability provenance tracks it
				// like any store.
				h.eng.EmitTrace(trace.KindStoreCommit, t.core, t.la, t.val)
				h.policy.CommitStore(t.core, t.la, &t.line.Data)
			}
		} else if t.persistent {
			// The RFO already fired OnRemoteInvalidate, which migrates the
			// line's persist-buffer entry away from the previous owner on
			// the promise that this core's CommitStore re-inserts the
			// merged data. A failed CAS commits no store, but the promise
			// must still be kept: hand the unchanged line back to the
			// policy, or a visible-but-undrained store would silently
			// leave the persistence domain (fatal under the battery
			// schemes, whose caches are volatile). The CanAcceptStore
			// check above reserved the slot either way.
			h.policy.CommitStore(t.core, t.la, &t.line.Data)
		}
		h.eng.Schedule(t.lat+2, t.finishFn)

	default:
		panic(fmt.Sprintf("coherence: commit of unknown txn kind %d", t.kind))
	}
}

// finish releases the line lock, recycles the transaction, and delivers the
// completion. Recycling before the callback lets a completion that issues a
// new access (the common pattern: a core's store drain completion pumps the
// next store) reuse the same transaction immediately.
func (h *Hierarchy) finish(t *accessTxn) {
	h.unlock(t.la)
	kind, res := t.kind, t.res
	done, doneVal := t.done, t.doneVal
	h.putTxn(t)
	switch kind {
	case txnLoad, txnCAS:
		doneVal(res)
	case txnPrefetch:
		if done != nil {
			done()
		}
	default: // txnStore, txnClwb
		done()
	}
}
