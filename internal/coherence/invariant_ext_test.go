//go:build invariant

// Step-wise invariant auditing: a BBB machine is driven one memory
// operation at a time and invariant.CheckSystem runs after every engine
// event, so the exact step that corrupts coherence or dirty inclusion is
// the step that fails. Build-tagged because checking after every event is
// orders of magnitude slower than the Attach ticker.
package coherence_test

import (
	"testing"

	"bbb/internal/invariant"
	"bbb/internal/memory"
	"bbb/internal/persistency"
	"bbb/internal/system"
)

func newAuditedSystem(t *testing.T, scheme persistency.Scheme) *system.System {
	t.Helper()
	cfg := system.DefaultConfig(scheme)
	cfg.Cores = 2
	// Tiny caches so modest address streams overflow the LLC and take the
	// eviction + forced-drain paths.
	cfg.Hierarchy.L1Size = 1024
	cfg.Hierarchy.L2Size = 2048
	return system.New(cfg)
}

// stepAudited drains the event queue one event at a time, checking the
// whole machine between events.
func stepAudited(t *testing.T, sys *system.System) {
	t.Helper()
	for sys.Eng.Step() {
		if err := invariant.CheckSystem(sys); err != nil {
			t.Fatalf("cycle %d: %v", sys.Eng.Now(), err)
		}
	}
}

func persistentLine(sys *system.System, n uint64) memory.Addr {
	return sys.Cfg.Layout.PersistentBase + memory.Addr(n)*memory.LineSize
}

func TestStepwiseEvictionsKeepDirtyInclusion(t *testing.T) {
	sys := newAuditedSystem(t, persistency.BBB)
	// 3x the 32-line LLC of persistent stores: every line past the first
	// 32 evicts an earlier one, which must force-drain its bbPB entry in
	// the same event.
	for i := uint64(0); i < 96; i++ {
		done := false
		sys.Hier.Store(0, persistentLine(sys, i), 8, i, func() { done = true })
		stepAudited(t, sys)
		if !done {
			t.Fatalf("store %d never completed", i)
		}
	}
	if err := invariant.CheckSystem(sys); err != nil {
		t.Fatalf("final state: %v", err)
	}
}

func TestStepwiseMigrationMovesEntries(t *testing.T) {
	sys := newAuditedSystem(t, persistency.BBB)
	// Write the same persistent lines from both cores alternately: each
	// remote write must migrate the bbPB entry (never duplicate it).
	for round := 0; round < 4; round++ {
		for i := uint64(0); i < 8; i++ {
			core := (round + int(i)) % 2
			done := false
			sys.Hier.Store(core, persistentLine(sys, i), 8, uint64(round), func() { done = true })
			stepAudited(t, sys)
			if !done {
				t.Fatalf("round %d store %d never completed", round, i)
			}
		}
	}
	if err := invariant.CheckSystem(sys); err != nil {
		t.Fatalf("final state: %v", err)
	}
}

func TestStepwiseConcurrentMixedTraffic(t *testing.T) {
	for _, scheme := range []persistency.Scheme{persistency.BBB, persistency.BBBProc} {
		t.Run(scheme.String(), func(t *testing.T) {
			sys := newAuditedSystem(t, scheme)
			vBase := memory.Addr(0x4000)
			// Launch overlapping transactions from both cores — persistent
			// stores, volatile stores, and cross-core loads of buffered
			// lines — then audit every event of the combined drain.
			pending := 0
			dec := func() { pending-- }
			for i := uint64(0); i < 24; i++ {
				pending += 3
				sys.Hier.Store(0, persistentLine(sys, i%12), 8, i, dec)
				sys.Hier.Store(1, vBase+memory.Addr(i)*memory.LineSize, 8, i, dec)
				sys.Hier.Load(1, persistentLine(sys, i%12), 8, func(uint64) { dec() })
				stepAudited(t, sys)
			}
			if pending != 0 {
				t.Fatalf("%d operations never completed", pending)
			}
			if err := invariant.CheckSystem(sys); err != nil {
				t.Fatalf("final state: %v", err)
			}
		})
	}
}
