package axiomatic

import (
	"reflect"
	"testing"

	"bbb/internal/litmus"
)

func mustTest(t *testing.T, name string) *litmus.Test {
	t.Helper()
	tst, err := litmus.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return tst
}

// TestGoldenOutcomeCounts pins hand-derived allowed-set sizes for the
// corpus shapes whose sets are small enough to enumerate on paper.
func TestGoldenOutcomeCounts(t *testing.T) {
	cases := []struct {
		name                   string
		relaxed, epoch, strict int
	}{
		// Two independent single-store threads: both-or-either-or-neither
		// under every model.
		{"sb", 4, 4, 4},
		{"sb+flush", 4, 4, 4},
		{"sb+fence", 4, 4, 4},
		{"lb", 4, 4, 4},
		{"lb+flush", 4, 4, 4},
		// Unfenced publish: relaxed allows flag-without-payload (y=1,x=0);
		// strict forces the program-order prefix.
		{"mp", 4, 4, 3},
		{"mp+flush", 4, 4, 3},
		// clwb x; sfence before the flag: all models agree on the three
		// prefix outcomes.
		{"mp+fence", 3, 3, 3},
		// Three unfenced stores: 2^3 subsets vs 4 prefixes.
		{"mp3", 8, 8, 4},
		{"mp3+fence", 4, 4, 4},
		// x=1, y=1, x=2, z=1 unfenced: x∈{0,1,2} × y∈{0,1} × z∈{0,1}
		// minus nothing = 12; strict: the 5 prefixes.
		{"wb", 12, 12, 5},
		// clwb x; clwb y; sfence before z: z pulls in y and final x, so
		// relaxed = 6 z-free outcomes + 1; strict unchanged at 5.
		{"wb+fence", 7, 7, 5},
		// Fence chain on one line: all models collapse to the 4 prefixes.
		{"2epoch-line", 4, 4, 4},
		// 2+2W bare: every model sees 3×3 value pairs except strict,
		// which cannot persist a thread's second store alone (drops
		// (x=2,y=0) and (x=0,y=2)).
		{"2+2w", 9, 9, 7},
		// CAS flag publish, unfenced: the CAS always succeeds (y starts
		// 0), so the counts match bare mp — a CAS is not a persist fence.
		{"cas-mp", 4, 4, 3},
		// clwb x; sfence; CAS flag: the three prefix outcomes under every
		// model, like mp+fence.
		{"cas-mp+fence", 3, 3, 3},
		// x=1; CAS x 5→7 (always fails); y=1: the failed CAS writes
		// nothing, so x∈{0,1} × y∈{0,1} = 4 relaxed (7 never appears)
		// and the three prefixes {}, {x}, {x,y} under strict.
		{"cas-fail", 4, 4, 3},
		// CAS x 0→1 ∥ CAS x 1→2: x=2 needs the memory order where
		// thread 0 lands first; x ∈ {0,1,2} under every model.
		{"cas-chain", 3, 3, 3},
		// CAS x 0→1; y=1 ∥ CAS x 0→2; z=1: exactly one CAS succeeds per
		// order, so relaxed sees x∈{0,1,2} × y∈{0,1} × z∈{0,1} = 12;
		// strict demands the winning CAS precede either flag (x=0 forces
		// y=z=0), leaving the zero outcome plus 4 each for x=1 and x=2.
		{"cas-race", 12, 12, 9},
	}
	for _, c := range cases {
		tst := mustTest(t, c.name)
		for _, mc := range []struct {
			m    Model
			want int
		}{{Relaxed, c.relaxed}, {Epoch, c.epoch}, {Strict, c.strict}} {
			got := Enumerate(tst, mc.m)
			if len(got.Outcomes) != mc.want {
				t.Errorf("%s/%s: %d outcomes, want %d: %v", c.name, mc.m, len(got.Outcomes), mc.want, got.Outcomes)
			}
			if got.Executions <= 0 {
				t.Errorf("%s/%s: Executions = %d", c.name, mc.m, got.Executions)
			}
		}
	}
}

// TestModelSeparation pins the witnesses that separate the models: the
// outcomes a weaker model allows and a stronger one forbids.
func TestModelSeparation(t *testing.T) {
	mp := mustTest(t, "mp")
	flagOnly := Outcome{0, 1} // y durable without x
	if !Enumerate(mp, Relaxed).Contains(flagOnly) {
		t.Error("mp/relaxed must allow the flag-without-payload outcome")
	}
	if Enumerate(mp, Strict).Contains(flagOnly) {
		t.Error("mp/strict must forbid the flag-without-payload outcome")
	}

	mpf := mustTest(t, "mp+fence")
	if Enumerate(mpf, Relaxed).Contains(flagOnly) {
		t.Error("mp+fence/relaxed must forbid flag-without-payload (clwb;sfence orders it)")
	}

	w22 := mustTest(t, "2+2w")
	secondAlone := Outcome{2, 0} // T1's x=2 without its earlier y=1
	if !Enumerate(w22, Relaxed).Contains(secondAlone) {
		t.Error("2+2w/relaxed must allow a second store to persist alone")
	}
	if Enumerate(w22, Strict).Contains(secondAlone) {
		t.Error("2+2w/strict must forbid a second store persisting before its predecessor")
	}
}

// TestCASConditionalStore pins the CAS semantics the enumerator must
// model: a failed CAS writes nothing under any model, and a CAS chain's
// final value is reachable only through the order that satisfies its
// expectation.
func TestCASConditionalStore(t *testing.T) {
	fail := mustTest(t, "cas-fail")
	for _, m := range Models() {
		r := Enumerate(fail, m)
		for _, o := range r.Outcomes {
			if o[0] == 7 {
				t.Errorf("cas-fail/%s: allowed x=7, but the CAS's expectation (5) never matches", m)
			}
		}
	}

	chain := mustTest(t, "cas-chain")
	for _, m := range Models() {
		r := Enumerate(chain, m)
		for _, want := range []Outcome{{0}, {1}, {2}} {
			if !r.Contains(want) {
				t.Errorf("cas-chain/%s: missing outcome x=%d", m, want[0])
			}
		}
	}

	race := mustTest(t, "cas-race")
	orphanFlag := Outcome{0, 1, 0} // y durable while x still 0
	if !Enumerate(race, Relaxed).Contains(orphanFlag) {
		t.Error("cas-race/relaxed must allow a flag without the winning CAS")
	}
	if Enumerate(race, Strict).Contains(orphanFlag) {
		t.Error("cas-race/strict must forbid a flag persisting before the CAS that precedes it")
	}
	for _, o := range Enumerate(race, Relaxed).Outcomes {
		if o[1] == 1 && o[2] == 1 && o[0] == 0 {
			// Both flags may be durable with x lost — fine under relaxed;
			// just assert x never holds a value no execution wrote.
			continue
		}
		if o[0] > 2 {
			t.Errorf("cas-race/relaxed: fabricated x=%d", o[0])
		}
	}
}

// TestEpochWithoutFlushStillOrders pins the Epoch model's defining
// feature: a bare fence (epoch boundary) orders persists even with no
// flush, where relaxed Px86 does not.
func TestEpochWithoutFlushStillOrders(t *testing.T) {
	tst := &litmus.Test{
		Name: "mp+fence-noflush",
		Doc:  "fence with no flush: orders under epoch, not under relaxed",
		Vars: []string{"x", "y"},
		Threads: [][]litmus.Op{
			{litmus.St(0, 1), litmus.Fn(), litmus.St(1, 1)},
		},
	}
	if err := tst.Validate(); err != nil {
		t.Fatal(err)
	}
	flagOnly := Outcome{0, 1}
	if !Enumerate(tst, Relaxed).Contains(flagOnly) {
		t.Error("relaxed must allow y without x: a fence with no clwb persists nothing")
	}
	if Enumerate(tst, Epoch).Contains(flagOnly) {
		t.Error("epoch must forbid y without x: the stores are in different epochs")
	}
	if Enumerate(tst, Strict).Contains(flagOnly) {
		t.Error("strict must forbid y without x")
	}
}

// TestSubsetChain pins strict ⊆ epoch ⊆ relaxed for the whole corpus —
// the containment the conformance gate's scheme→model mapping relies on.
// (It holds because the generator always flushes an epoch's dirty vars
// before fencing; TestEpochWithoutFlushStillOrders shows the DSL can
// express programs where epoch and relaxed diverge.)
func TestSubsetChain(t *testing.T) {
	for _, tst := range litmus.Corpus() {
		strict := Enumerate(tst, Strict)
		epoch := Enumerate(tst, Epoch)
		relaxed := Enumerate(tst, Relaxed)
		if !strict.SubsetOf(epoch) {
			t.Errorf("%s: strict ⊄ epoch", tst.Name)
		}
		if !epoch.SubsetOf(relaxed) {
			t.Errorf("%s: epoch ⊄ relaxed", tst.Name)
		}
		if len(strict.Outcomes) == 0 {
			t.Errorf("%s: empty strict set (the all-zero init outcome is always allowed)", tst.Name)
		}
		zero := make(Outcome, len(tst.Vars))
		if !strict.Contains(zero) {
			t.Errorf("%s: strict must allow the crash-before-anything outcome", tst.Name)
		}
	}
}

// TestEnumerateDeterministic pins that enumerating the same test twice
// yields deep-equal results — the satellite determinism requirement.
func TestEnumerateDeterministic(t *testing.T) {
	for _, tst := range litmus.Corpus() {
		for _, m := range Models() {
			a := Enumerate(tst, m)
			b := Enumerate(tst, m)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s/%s: two enumerations differ", tst.Name, m)
			}
		}
	}
}

// TestOutcomesSortedDeduped pins the Result invariants Contains depends
// on: strictly increasing lexicographic order.
func TestOutcomesSortedDeduped(t *testing.T) {
	for _, tst := range litmus.Corpus() {
		for _, m := range Models() {
			r := Enumerate(tst, m)
			for i := 1; i < len(r.Outcomes); i++ {
				if !r.Outcomes[i-1].Less(r.Outcomes[i]) {
					t.Errorf("%s/%s: outcomes not strictly sorted at %d: %v", tst.Name, m, i, r.Outcomes)
				}
			}
			for _, o := range r.Outcomes {
				if !r.Contains(o) {
					t.Errorf("%s/%s: Contains misses own outcome %v", tst.Name, m, o)
				}
			}
		}
	}
}
