package axiomatic

import (
	"testing"

	"bbb/internal/litmus"
)

// BenchmarkAxiomaticEnumerate measures abstract-execution throughput over
// the full corpus × model matrix. `make bench-json` records executions/s
// in the BENCH_<n>.json trail, covering the declarative pass alongside
// the operational BenchmarkCrashMCEnumerate.
func BenchmarkAxiomaticEnumerate(b *testing.B) {
	corpus := litmus.Corpus()
	execs := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range corpus {
			for _, m := range Models() {
				r := Enumerate(t, m)
				execs += r.Executions
			}
		}
	}
	b.ReportMetric(float64(execs)/b.Elapsed().Seconds(), "executions/s")
}
