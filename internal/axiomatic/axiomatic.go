// Package axiomatic enumerates the post-crash outcomes a Px86-TSO
// persistency model *allows* for a litmus test, with no simulation: it is
// the declarative twin of the operational crash-image model checker
// (internal/crashmc), following the axiomatic presentation of "Taming
// x86-TSO Persistency" (PAPERS.md).
//
// An abstract execution is a pair (M, P):
//
//   - M is a memory order — an interleaving of each thread's stores that
//     preserves program order, which is exactly the TSO guarantee for the
//     store-to-store case (no store-store reordering per thread); and
//   - P is a persist set — the stores that reached the persistence domain
//     before the crash — constrained by the model's nvo (non-volatile
//     order) axioms over M.
//
// The models, weakest to strongest:
//
//   - Relaxed (Px86, the PMEM baseline): P must be closed under the
//     durably-ordered-before relation — b ∈ P forces a ∈ P only when a
//     flush of a's line and then a fence separate a from b in program
//     order (clwb; sfence). Anything else persists in any order.
//   - Epoch (BEP): per thread, persistence proceeds in fence-delimited
//     epochs — a store in a later epoch durable forces every same-thread
//     store of strictly earlier epochs durable. Within an epoch and
//     across threads, any subset may survive.
//   - Strict (BBB / BBBProc / eADR / NVCache): persist order equals the
//     visibility order, so P must be a prefix of M — the paper's
//     battery-backed claim that durability tracks TSO visibility.
//
// The crash outcome of (M, P) assigns each variable the value of the
// M-latest persisted store to it, or the zero init. CAS events are
// conditional stores: whether a CAS writes depends on the variable's value
// at its point in M, so the enumerator replays values along each memory
// order and drops failed CASes from the persist set — a failed CAS writes
// nothing, under every model. Enumerate returns the deduplicated outcome
// set, sorted, so operational ⊆ allowed becomes a subset check
// (internal/litmus/conform).
package axiomatic

import (
	"fmt"
	"sort"
	"strings"

	"bbb/internal/litmus"
)

// Model is a Px86-TSO persistency model.
type Model int

const (
	// Relaxed is Px86 as PMEM exposes it: only clwb;sfence induces
	// persist ordering.
	Relaxed Model = iota
	// Epoch is BEP's model: fence-delimited epochs persist in order per
	// thread.
	Epoch
	// Strict is the battery-complete model: persist order = TSO
	// visibility order.
	Strict
)

func (m Model) String() string {
	switch m {
	case Relaxed:
		return "relaxed"
	case Epoch:
		return "epoch"
	case Strict:
		return "strict"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Models returns every model, weakest first.
func Models() []Model { return []Model{Relaxed, Epoch, Strict} }

// Outcome is one allowed post-crash state: the durable value of each test
// variable, in Test.Vars order (0 = the init value).
type Outcome []uint64

// Less orders outcomes lexicographically.
func (o Outcome) Less(p Outcome) bool {
	for i := range o {
		if o[i] != p[i] {
			return o[i] < p[i]
		}
	}
	return false
}

// Equal reports elementwise equality.
func (o Outcome) Equal(p Outcome) bool {
	if len(o) != len(p) {
		return false
	}
	for i := range o {
		if o[i] != p[i] {
			return false
		}
	}
	return true
}

// Result is the allowed outcome set of one test under one model.
type Result struct {
	Test  string
	Model Model
	// Outcomes is sorted lexicographically and deduplicated.
	Outcomes []Outcome
	// Executions counts the abstract (memory order, persist set) pairs
	// examined — the enumeration work, before outcome dedup.
	Executions int
}

// Contains reports whether o is an allowed outcome (binary search).
func (r Result) Contains(o Outcome) bool {
	i := sort.Search(len(r.Outcomes), func(i int) bool { return !r.Outcomes[i].Less(o) })
	return i < len(r.Outcomes) && r.Outcomes[i].Equal(o)
}

// SubsetOf reports whether every outcome of r is allowed by s.
func (r Result) SubsetOf(s Result) bool {
	for _, o := range r.Outcomes {
		if !s.Contains(o) {
			return false
		}
	}
	return true
}

// maxStores bounds the enumeration: persist sets are enumerated as
// bitmasks and interleavings grow multinomially, so the corpus keeps
// tests tiny — as the litmus literature does.
const maxStores = 16

// Enumerate computes the allowed outcome set of t under m.
func Enumerate(t *litmus.Test, m Model) Result {
	stores := t.Stores()
	if len(stores) > maxStores {
		panic(fmt.Sprintf("axiomatic: %s has %d stores, limit %d", t.Name, len(stores), maxStores))
	}

	// nvo implication edges: need[b] is the bitmask of stores that must be
	// in P whenever store b is. Strict does not use masks at all (prefix
	// rule); Relaxed and Epoch are memory-order independent, so their
	// legal persist sets can be precomputed once.
	var legal []uint32
	if m != Strict {
		need := make([]uint32, len(stores))
		for _, b := range stores {
			for _, a := range stores {
				if a.ID == b.ID || a.Thread != b.Thread {
					continue
				}
				switch m {
				case Relaxed:
					if t.OrderedBefore(a, b) {
						need[b.ID] |= 1 << uint(a.ID)
					}
				case Epoch:
					if a.Epoch < b.Epoch {
						need[b.ID] |= 1 << uint(a.ID)
					}
				}
			}
		}
		for mask := uint32(0); mask < 1<<uint(len(stores)); mask++ {
			ok := true
			for id := range stores {
				if mask&(1<<uint(id)) != 0 && mask&need[id] != need[id] {
					ok = false
					break
				}
			}
			if ok {
				legal = append(legal, mask)
			}
		}
	}

	// Per-thread store sequences, for interleaving.
	perThread := make([][]litmus.Store, len(t.Threads))
	for _, s := range stores {
		perThread[s.Thread] = append(perThread[s.Thread], s)
	}

	res := Result{Test: t.Name, Model: m}
	var outcomes []Outcome
	order := make([]litmus.Store, 0, len(stores))
	cur := make([]uint64, len(t.Vars))

	// emit records the outcome of persist set mask under memory order M.
	// active masks out the CAS events that failed in this M — a failed
	// CAS writes nothing, so "persisting" it is a no-op. Masking at emit
	// time is exact: the durably-ordered-before and epoch relations are
	// positional, so any mask the precompute rejects for omitting a
	// failed CAS has a twin that includes the (vacuous) event and yields
	// the same outcome.
	emit := func(order []litmus.Store, mask, active uint32) {
		res.Executions++
		o := make(Outcome, len(t.Vars))
		for _, s := range order {
			if mask&active&(1<<uint(s.ID)) != 0 {
				o[s.Var] = s.Val
			}
		}
		outcomes = append(outcomes, o)
	}

	cursors := make([]int, len(perThread))
	var walk func()
	walk = func() {
		done := true
		for th, seq := range perThread {
			if cursors[th] < len(seq) {
				done = false
				order = append(order, seq[cursors[th]])
				cursors[th]++
				walk()
				cursors[th]--
				order = order[:len(order)-1]
			}
		}
		if !done {
			return
		}
		// One complete memory order M. Replay values along M to decide
		// which CAS events succeed (a CAS writes iff its var holds its
		// expected value at its point in M), then apply the model's
		// persist rule to the stores that actually wrote.
		var active uint32
		for i := range cur {
			cur[i] = 0
		}
		for _, s := range order {
			if s.CAS && cur[s.Var] != s.Old {
				continue
			}
			active |= 1 << uint(s.ID)
			cur[s.Var] = s.Val
		}
		if m == Strict {
			// P ranges over prefixes of M.
			var mask uint32
			emit(order, 0, active)
			for _, s := range order {
				mask |= 1 << uint(s.ID)
				emit(order, mask, active)
			}
			return
		}
		for _, mask := range legal {
			emit(order, mask, active)
		}
	}
	walk()

	sort.Slice(outcomes, func(i, j int) bool { return outcomes[i].Less(outcomes[j]) })
	for i, o := range outcomes {
		if i == 0 || !o.Equal(outcomes[i-1]) {
			res.Outcomes = append(res.Outcomes, o)
		}
	}
	return res
}

// FormatOutcome renders o as "x=1 y=0" using t's variable names.
func FormatOutcome(t *litmus.Test, o Outcome) string {
	parts := make([]string, len(o))
	for i, v := range o {
		parts[i] = fmt.Sprintf("%s=%d", t.Vars[i], v)
	}
	return strings.Join(parts, " ")
}
