package pressurelint

import (
	"go/ast"
	"testing"

	"bbb/internal/vet"
)

func TestPressureFixture(t *testing.T) {
	vet.RunFixture(t, Analyzer, "testdata/pressure")
}

func loadFixtureCerts(t testing.TB) map[string]Certificate {
	t.Helper()
	pkg, fset, err := vet.LoadDir("testdata/pressure")
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]Certificate{}
	for _, c := range Certificates([]*vet.Package{pkg}, fset) {
		out[c.Unit] = c
	}
	return out
}

// TestFixtureCertificates pins the exact bounds of every fixture unit: the
// lattice arithmetic, trip multiplication, widening and footprint rules.
func TestFixtureCertificates(t *testing.T) {
	certs := loadFixtureCerts(t)
	want := map[string][2]Bound{ // unit -> {strict, relaxed}
		"straightLine":      {Fin(2), Fin(2)},
		"boundedDrained":    {Fin(1), Fin(9)},
		"rangePerSlot":      {Fin(5), Fin(5)},
		"rangeInt":          {Fin(4), Fin(4)},
		"allocSpan":         {Fin(4), Fin(4)},
		"volatileExcluded":  {Fin(1), Fin(1)},
		"viaHelper":         {Fin(2), Fin(2)},
		"drainedUnbounded":  {Fin(1), Inf()},
		"unboundedLoop":     {Inf(), Inf()},
		"recursivePressure": {Inf(), Inf()},
		"W":                 {Fin(2), Fin(2)},
	}
	for unit, w := range want {
		c, ok := certs[unit]
		if !ok {
			t.Errorf("no certificate for %s", unit)
			continue
		}
		if c.StrictLines != w[0] || c.RelaxedLines != w[1] {
			t.Errorf("%s: got strict=%s relaxed=%s, want strict=%s relaxed=%s",
				unit, c.StrictLines, c.RelaxedLines, w[0], w[1])
		}
		unbounded := c.StrictLines.Unbounded || c.RelaxedLines.Unbounded
		if unbounded && len(c.Findings) == 0 {
			t.Errorf("%s: unbounded bound with no finding explaining it", unit)
		}
		if !unbounded && c.Witness == "" {
			t.Errorf("%s: finite bound with no witness position", unit)
		}
	}
	for unit := range certs {
		if _, ok := want[unit]; !ok {
			t.Errorf("unexpected certificate unit %s", unit)
		}
	}
}

// TestForScheme pins the projection of a certificate onto each scheme's
// persistence-domain organization, including the ⊤-with-coalescing-cap.
func TestForScheme(t *testing.T) {
	caps := DefaultCaps()
	c := Certificate{Unit: "x", StrictLines: Fin(2), RelaxedLines: Inf()}
	bbb := c.ForScheme("bbb", 4, caps, 64)
	if bbb.PerCoreLines != caps.BBPBEntries {
		t.Errorf("bbb PerCoreLines = %d, want capped %d", bbb.PerCoreLines, caps.BBPBEntries)
	}
	if want := caps.WPQEntries + 4*caps.BBPBEntries; bbb.MaxDirtyLines != want {
		t.Errorf("bbb MaxDirtyLines = %d, want %d", bbb.MaxDirtyLines, want)
	}
	if bbb.MaxDirtyBytes != uint64(bbb.MaxDirtyLines)*64 {
		t.Errorf("bbb MaxDirtyBytes = %d", bbb.MaxDirtyBytes)
	}

	fin := Certificate{Unit: "y", StrictLines: Fin(2), RelaxedLines: Fin(9)}
	if got := fin.ForScheme("bbb", 2, caps, 64).PerCoreLines; got != 9 {
		t.Errorf("finite relaxed bound should survive the cap: got %d, want 9", got)
	}

	pmem := c.ForScheme("pmem", 4, caps, 64)
	if pmem.PerCoreLines != 0 || pmem.MaxDirtyLines != caps.WPQEntries {
		t.Errorf("pmem projection = %+v", pmem)
	}
	if pmem.AtRiskLines != Fin(8) { // threads * strict
		t.Errorf("pmem AtRiskLines = %s, want 8", pmem.AtRiskLines)
	}

	bep := c.ForScheme("bep", 4, caps, 64)
	if bep.PerCoreLines != caps.VPBEntries || bep.AtRiskLines != Fin(4*caps.VPBEntries) {
		t.Errorf("bep projection = %+v", bep)
	}

	for _, s := range []string{"eadr", "nvcache"} {
		sb := c.ForScheme(s, 4, caps, 64)
		if sb.PerCoreLines != 0 || sb.MaxDirtyLines != caps.WPQEntries || !sb.AtRiskLines.IsZero() {
			t.Errorf("%s projection = %+v", s, sb)
		}
	}
}

func TestBoundArithmetic(t *testing.T) {
	if got := Fin(2).Add(Fin(3)); got != Fin(5) {
		t.Errorf("Add = %s", got)
	}
	if got := Fin(2).Add(Inf()); !got.Unbounded {
		t.Errorf("Add with top = %s", got)
	}
	if got := MulTrip(0, false, Fin(0)); !got.IsZero() {
		t.Errorf("unknown trip over zero carry = %s, want 0", got)
	}
	if got := MulTrip(0, false, Fin(1)); !got.Unbounded {
		t.Errorf("unknown trip over nonzero carry = %s, want inf", got)
	}
	if got := MulTrip(5, true, Fin(2)); got != Fin(10) {
		t.Errorf("5 trips of 2 = %s", got)
	}
	if Inf().Cap(32) != 32 || Fin(40).Cap(32) != 32 || Fin(3).Cap(32) != 3 {
		t.Error("Cap widening broken")
	}
}

// TestWorkloadCertificates asserts the repo-level contract: every
// registered workload program gets a certificate, every Table IV workload
// has a finite strict bound, and every unbounded component is explained
// by a finding.
func TestWorkloadCertificates(t *testing.T) {
	pkgs, fset, err := vet.Load("../../..", "./internal/workload")
	if err != nil {
		t.Fatal(err)
	}
	certs := map[string]Certificate{}
	for _, c := range Certificates(pkgs, fset) {
		certs[c.Unit] = c
	}
	// Table IV workloads (workload.Registry) must be strictly bounded.
	for _, unit := range []string{"RTree", "CTree", "Hashmap", "Array"} {
		c, ok := certs[unit]
		if !ok {
			t.Fatalf("no certificate for Table IV workload %s", unit)
		}
		if c.StrictLines.Unbounded {
			t.Errorf("%s: strict bound unexpectedly unbounded: %v", unit, c.Findings)
		}
	}
	for unit, c := range certs {
		if (c.StrictLines.Unbounded || c.RelaxedLines.Unbounded) && len(c.Findings) == 0 {
			t.Errorf("%s: unbounded bound with no finding", unit)
		}
	}
}

// TestRepoClean pins that the analyzer reports nothing on the repository
// itself (no file pins the pmem discipline), with zero suppressions.
func TestRepoClean(t *testing.T) {
	pkgs, fset, err := vet.Load("../../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := vet.Run(pkgs, fset, []*vet.Analyzer{Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

func BenchmarkPressureLint(b *testing.B) {
	pkgs, fset, err := vet.Load("../../..", "./internal/workload")
	if err != nil {
		b.Fatal(err)
	}
	funcs := 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					funcs++
				}
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := Certificates(pkgs, fset); len(got) == 0 {
			b.Fatal("no certificates")
		}
	}
	b.ReportMetric(float64(funcs*b.N)/b.Elapsed().Seconds(), "functions/s")
}
