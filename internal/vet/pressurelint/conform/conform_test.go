package conform

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"bbb/internal/vet/pressurelint"
)

var update = flag.Bool("update", false, "rewrite testdata/pressure_bounds.json")

// TestPressureConform is the soundness gate: every Table IV workload ×
// scheme pair's observed occupancy and crash-pending sets must fit the
// static certificates. Any exceedance fails with a minimized witness.
func TestPressureConform(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator replay matrix; run without -short (make pressure-short)")
	}
	rep, err := Run(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if want := 7 * 6; len(rep.Pairs) != want {
		t.Fatalf("got %d pairs, want %d (Table IV × schemes)", len(rep.Pairs), want)
	}
	for _, pr := range rep.Pairs {
		if pr.Bound.MaxDirtyLines <= 0 {
			t.Errorf("%s × %s: non-positive MaxDirtyLines %d", pr.Workload, pr.Scheme, pr.Bound.MaxDirtyLines)
		}
	}
}

// TestPressureBoundsGolden pins the static certificates (and their
// per-scheme projections at the default capacities) against the checked-in
// golden. Regenerate with `go test ./internal/vet/pressurelint/conform
// -run Golden -update`.
func TestPressureBoundsGolden(t *testing.T) {
	certs, err := Certificates("../../../..")
	if err != nil {
		t.Fatal(err)
	}
	type entry struct {
		Unit     string                    `json:"unit"`
		Strict   string                    `json:"strict"`
		Relaxed  string                    `json:"relaxed"`
		Witness  string                    `json:"witness"`
		Findings []string                  `json:"findings,omitempty"`
		Schemes  map[string]map[string]any `json:"schemes"`
	}
	var entries []entry
	for _, c := range certs {
		e := entry{
			Unit:     c.Unit,
			Strict:   c.StrictLines.String(),
			Relaxed:  c.RelaxedLines.String(),
			Witness:  c.Witness,
			Findings: c.Findings,
			Schemes:  map[string]map[string]any{},
		}
		for _, s := range []string{"pmem", "eadr", "bbb", "bbb-proc", "bep", "nvcache"} {
			sb := c.ForScheme(s, 2, pressurelint.DefaultCaps(), 64)
			e.Schemes[s] = map[string]any{
				"perCoreLines":  sb.PerCoreLines,
				"maxDirtyLines": sb.MaxDirtyLines,
				"maxDirtyBytes": sb.MaxDirtyBytes,
				"atRiskLines":   sb.AtRiskLines.String(),
			}
		}
		entries = append(entries, e)
	}
	got, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "pressure_bounds.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if string(got) != string(want) {
		t.Errorf("certified bounds drifted from %s (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}
