// Package conform is pressurelint's soundness gate: the static battery-
// bound certificates are not asserted correct, they are *checked* against
// the dynamic machinery, mirroring the litmus operational⊆axiomatic gate.
// For every Table IV workload × scheme pair it:
//
//   - replays the workload through a metrics-traced run and asserts the
//     observed peak persist-buffer occupancy (bbPB for BBB/BBBProc, VPB
//     for BEP) never exceeds the certified per-core bound, and the WPQ
//     never exceeds its configured depth;
//   - runs the live invariant auditor (invariant.Check plus the new
//     CheckOccupancyBound) on the stopped machine at every sampled crash
//     instant;
//   - captures crashmc's pending persistence-domain sets at those
//     instants and asserts every enumerated pending line fits the bound
//     (per-core for BEP epochs, thread-scaled strict for PMEM's at-risk
//     cache lines, empty for the battery-backed schemes).
//
// A dynamic exceedance is a hard failure carrying a minimized witness:
// the smallest set of pending lines (bound+1 of them) proving the static
// bound wrong. `make pressure-short` runs this gate in make check.
package conform

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"strings"

	"bbb/internal/crashmc"
	"bbb/internal/engine"
	"bbb/internal/invariant"
	"bbb/internal/memory"
	"bbb/internal/persistency"
	"bbb/internal/stats"
	"bbb/internal/system"
	"bbb/internal/vet"
	"bbb/internal/vet/pressurelint"
	"bbb/internal/workload"
)

// Options sizes the gate. The defaults keep `make pressure-short` under a
// couple of minutes while still exercising every pair.
type Options struct {
	// RepoRoot is the module root pressurelint loads ./internal/workload
	// from.
	RepoRoot string
	// Threads and Ops shape the workload runs.
	Threads int
	Ops     int
	Seed    int64
	// CrashPoints is how many crash instants are sampled per pair,
	// spread evenly across the run.
	CrashPoints int
}

// DefaultOptions is the pressure-short configuration.
func DefaultOptions() Options {
	return Options{RepoRoot: "../../../..", Threads: 2, Ops: 24, Seed: 1, CrashPoints: 3}
}

// Pair is one workload × scheme row of the conformance report.
type Pair struct {
	Workload string                   `json:"workload"`
	Unit     string                   `json:"unit"` // certificate unit (workload type)
	Scheme   string                   `json:"scheme"`
	Bound    pressurelint.SchemeBound `json:"bound"`
	// Observed dynamic maxima, all required ≤ the corresponding bound.
	ObservedPerCorePeak uint64 `json:"observedPerCorePeak"` // bbPB/VPB gauge max
	ObservedWPQPeak     uint64 `json:"observedWpqPeak"`
	ObservedDomainMax   int    `json:"observedDomainMax"`  // crashmc DomainLines max
	ObservedPendingMax  int    `json:"observedPendingMax"` // enumerable pending lines max
}

// Report is the full gate output.
type Report struct {
	Certificates []pressurelint.Certificate `json:"certificates"`
	Pairs        []Pair                     `json:"pairs"`
}

// Certificates loads the workload package and computes its certificates,
// with witness paths rewritten relative to the repo root so goldens are
// machine-independent.
func Certificates(repoRoot string) ([]pressurelint.Certificate, error) {
	pkgs, fset, err := vet.Load(repoRoot, "./internal/workload")
	if err != nil {
		return nil, fmt.Errorf("loading workload package: %w", err)
	}
	certs := pressurelint.Certificates(pkgs, fset)
	root := repoRoot
	if abs, err := filepath.Abs(repoRoot); err == nil {
		root = abs
	}
	for i := range certs {
		certs[i].Witness = relToRoot(certs[i].Witness, root)
		certs[i].Pos.Filename = relToRoot(certs[i].Pos.Filename, root)
		for j, f := range certs[i].Findings {
			certs[i].Findings[j] = relAll(f, root)
		}
	}
	return certs, nil
}

func relToRoot(p, root string) string {
	return strings.TrimPrefix(strings.TrimPrefix(p, root), "/")
}

func relAll(s, root string) string {
	return strings.ReplaceAll(s, root+"/", "")
}

// unitName maps a workload instance to its certificate unit: the concrete
// type name (all Array variants share the Array programs, hence the Array
// bound).
func unitName(w workload.Workload) string {
	t := reflect.TypeOf(w)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.Name()
}

// Run executes the gate and returns the report; any exceedance returns an
// error naming the pair and carrying the minimized witness.
func Run(opts Options) (*Report, error) {
	certs, err := Certificates(opts.RepoRoot)
	if err != nil {
		return nil, err
	}
	byUnit := map[string]pressurelint.Certificate{}
	for _, c := range certs {
		byUnit[c.Unit] = c
	}

	p := workload.Params{Threads: opts.Threads, OpsPerThread: opts.Ops, Seed: opts.Seed}
	rep := &Report{Certificates: certs}

	for _, w := range workload.Registry() {
		unit := unitName(w)
		cert, ok := byUnit[unit]
		if !ok {
			return nil, fmt.Errorf("no certificate for Table IV workload %s (unit %s)", w.Name(), unit)
		}
		for _, s := range persistency.Schemes() {
			pair, err := checkPair(w.Name(), cert, s, p, opts)
			if err != nil {
				return nil, err
			}
			rep.Pairs = append(rep.Pairs, *pair)
		}
	}
	return rep, nil
}

func checkPair(name string, cert pressurelint.Certificate, s persistency.Scheme, p workload.Params, opts Options) (*Pair, error) {
	cfg := system.DefaultConfig(s)
	caps := pressurelint.Caps{
		BBPBEntries: cfg.BBPB.Entries,
		VPBEntries:  cfg.BBPB.Entries,
		WPQEntries:  cfg.NVMM.WPQEntries,
	}
	sb := cert.ForScheme(s.String(), p.Threads, caps, memory.LineSize)
	pair := &Pair{Workload: name, Unit: cert.Unit, Scheme: s.String(), Bound: sb}
	fail := func(format string, args ...any) error {
		return fmt.Errorf("pressure gate: %s × %s: %s", name, s, fmt.Sprintf(format, args...))
	}

	// Dynamic occupancy via the metrics-traced full run.
	fresh, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	tcfg := cfg
	tcfg.TraceCapacity = 1
	res := workload.Run(fresh, s, tcfg, p)
	if res.Metrics == nil {
		return nil, fail("traced run produced no metrics")
	}
	switch s {
	case persistency.BBB, persistency.BBBProc:
		pair.ObservedPerCorePeak = gaugeMax(res.Metrics, "bbpb.occupancy")
	case persistency.BEP:
		pair.ObservedPerCorePeak = gaugeMax(res.Metrics, "vpb.occupancy")
	}
	pair.ObservedWPQPeak = gaugeMax(res.Metrics, "wpq.depth")
	if hasPerCoreBuffer(s) && pair.ObservedPerCorePeak > uint64(sb.PerCoreLines) {
		return nil, fail("observed per-core buffer peak %d exceeds certified bound %d (cert strict=%s relaxed=%s witness=%s)",
			pair.ObservedPerCorePeak, sb.PerCoreLines, cert.StrictLines, cert.RelaxedLines, cert.Witness)
	}
	if pair.ObservedWPQPeak > uint64(caps.WPQEntries) {
		return nil, fail("observed WPQ depth %d exceeds capacity %d", pair.ObservedWPQPeak, caps.WPQEntries)
	}

	// Crash instants: stop the machine, audit the live invariants and the
	// certified occupancy bound, then capture the pending sets.
	for i := 1; i <= opts.CrashPoints; i++ {
		cc := res.Cycles * engine.Cycle(i) / engine.Cycle(opts.CrashPoints+1)
		fresh, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		sys, finished := workload.BuildToCrash(fresh, s, cfg, p, cc)
		if err := invariant.Check(invariant.View{Hier: sys.Hier, Bufs: sys.Model.Buffers}); err != nil {
			sys.Shutdown()
			return nil, fail("invariant auditor at crash cycle %d: %v", cc, err)
		}
		if hasPerCoreBuffer(s) && len(sys.Model.Buffers) > 0 {
			if err := invariant.CheckOccupancyBound(sys.Model.Buffers, sb.PerCoreLines); err != nil {
				sys.Shutdown()
				return nil, fail("at crash cycle %d: %v (cert strict=%s relaxed=%s witness=%s)",
					cc, err, cert.StrictLines, cert.RelaxedLines, cert.Witness)
			}
		}
		rec := crashmc.Capture(sys, cc, finished)
		if rec.DomainLines > pair.ObservedDomainMax {
			pair.ObservedDomainMax = rec.DomainLines
		}
		if rec.DomainLines > sb.MaxDirtyLines {
			sys.Shutdown()
			return nil, fail("crash cycle %d: %d persistence-domain lines exceed certified MaxDirtyLines %d",
				cc, rec.DomainLines, sb.MaxDirtyLines)
		}
		if err := checkPending(rec, s, sb, p.Threads, pair, cc, fail); err != nil {
			sys.Shutdown()
			return nil, err
		}
		sys.Shutdown()
	}
	return pair, nil
}

// gaugeMax is Gauge(name).Max() tolerating runs that never sampled name
// (a workload that never queues a write records no wpq.depth points).
func gaugeMax(m *stats.Metrics, name string) uint64 {
	g := m.Gauge(name)
	if g == nil {
		return 0
	}
	return g.Max()
}

func hasPerCoreBuffer(s persistency.Scheme) bool {
	return s == persistency.BBB || s == persistency.BBBProc || s == persistency.BEP
}

// checkPending validates crashmc's enumerable pending set against the
// scheme bound and records the observed maximum.
func checkPending(rec *crashmc.Record, s persistency.Scheme, sb pressurelint.SchemeBound, threads int, pair *Pair, cc engine.Cycle, fail func(string, ...any) error) error {
	lines := map[memory.Addr]bool{}
	perCore := map[int]map[memory.Addr]bool{}
	for _, pw := range rec.Pending {
		la := memory.LineAddr(pw.Addr)
		lines[la] = true
		if pw.Core >= 0 {
			if perCore[pw.Core] == nil {
				perCore[pw.Core] = map[memory.Addr]bool{}
			}
			perCore[pw.Core][la] = true
		}
	}
	if len(lines) > pair.ObservedPendingMax {
		pair.ObservedPendingMax = len(lines)
	}

	switch s {
	case persistency.PMEM:
		if !sb.AtRiskLines.Unbounded && len(lines) > sb.AtRiskLines.Lines {
			return fail("crash cycle %d: %d at-risk cache lines exceed certified bound %d; minimized witness: %s",
				cc, len(lines), sb.AtRiskLines.Lines, witnessLines(lines, sb.AtRiskLines.Lines+1))
		}
	case persistency.BEP:
		for core, set := range perCore {
			if len(set) > sb.PerCoreLines {
				return fail("crash cycle %d: core %d holds %d buffered lines, certified per-core bound %d; minimized witness: %s",
					cc, core, len(set), sb.PerCoreLines, witnessLines(set, sb.PerCoreLines+1))
			}
		}
		if !sb.AtRiskLines.Unbounded && len(lines) > sb.AtRiskLines.Lines {
			return fail("crash cycle %d: %d buffered lines exceed certified at-risk bound %d; minimized witness: %s",
				cc, len(lines), sb.AtRiskLines.Lines, witnessLines(lines, sb.AtRiskLines.Lines+1))
		}
	default:
		// Battery-backed (and whole-cache) schemes: flush-on-fail drains
		// everything, so nothing is enumerable.
		if len(lines) > 0 {
			return fail("crash cycle %d: %d pending lines under a scheme whose persistence domain covers all committed stores; minimized witness: %s",
				cc, len(lines), witnessLines(lines, 1))
		}
	}
	return nil
}

// witnessLines renders the minimized exceedance witness: the smallest
// prefix (by address) of the pending set that already violates the bound.
func witnessLines(set map[memory.Addr]bool, n int) string {
	addrs := make([]memory.Addr, 0, len(set))
	for a := range set {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	if n > len(addrs) {
		n = len(addrs)
	}
	parts := make([]string, n)
	for i := 0; i < n; i++ {
		parts[i] = fmt.Sprintf("0x%x", uint64(addrs[i]))
	}
	return "[" + strings.Join(parts, " ") + "]"
}
