package pressurelint

// The per-function pressure unit: a forward dataflow over the dirty-set
// lattice (internal/vet/cfg + dataflow), run once per discipline, followed
// by the structural loop-carry pass that multiplies per-iteration carried
// lines by constant trip counts — or widens to ⊤ with a finding. Keeping
// the carry out of the transfer function keeps the lattice finite, so the
// fixpoint terminates unconditionally.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"

	"bbb/internal/vet/cfg"
	"bbb/internal/vet/dataflow"
)

// pstate is a non-durable line's drain progress under the strict
// discipline (relaxed mode never advances past pDirty).
type pstate uint8

const (
	pDirty   pstate = iota // in cache (or persist buffer), not written back
	pFlushed               // written back, not yet fenced durable
)

// ploc is one location class's abstract state.
type ploc struct {
	st    pstate
	lines Bound     // footprint of this class, in 64B lines
	pos   token.Pos // earliest store establishing the state
	vary  ast.Stmt  // innermost loop whose iteration renames the location
}

// pfact maps location classes to their states at a program point.
type pfact struct {
	reached bool
	locs    map[*class]ploc
}

// unitCtx is the mode-independent syntactic context of one body: which
// loops enclose each call, which objects each loop reassigns, and the
// call sites whose callees leave residual dirty lines behind.
type unitCtx struct {
	encLoops   map[*ast.CallExpr][]ast.Stmt
	assignedIn map[ast.Stmt]map[types.Object]bool
	ops        map[*ast.CallExpr]callOp
	resolved   map[*ast.CallExpr]bool
	resid      []residSite
	anyTraffic bool
}

type residSite struct {
	loops []ast.Stmt
	resid [nModes]Bound
}

// unitResult is one body's pressure profile.
type unitResult struct {
	peak     [nModes]Bound
	residual [nModes]Bound
	witness  token.Pos // strict-mode peak point
	notes    []string
}

func isLoopStmt(n ast.Node) (ast.Stmt, bool) {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n, true
	case *ast.RangeStmt:
		return n, true
	}
	return nil, false
}

// scanUnit builds the syntactic context in one walk, tracking the loop
// stack via the Inspect push/pop protocol.
func (a *analysis) scanUnit(body *ast.BlockStmt) *unitCtx {
	ctx := &unitCtx{
		encLoops:   map[*ast.CallExpr][]ast.Stmt{},
		assignedIn: map[ast.Stmt]map[types.Object]bool{},
		ops:        map[*ast.CallExpr]callOp{},
		resolved:   map[*ast.CallExpr]bool{},
	}
	assigned := func(id *ast.Ident, stack []ast.Stmt) {
		obj := a.info.Defs[id]
		if obj == nil {
			obj = a.info.Uses[id]
		}
		if obj == nil {
			return
		}
		for _, l := range stack {
			m := ctx.assignedIn[l]
			if m == nil {
				m = map[types.Object]bool{}
				ctx.assignedIn[l] = m
			}
			m[obj] = true
		}
	}

	var stack []ast.Stmt
	var path []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			top := path[len(path)-1]
			path = path[:len(path)-1]
			if _, ok := isLoopStmt(top); ok {
				stack = stack[:len(stack)-1]
			}
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // its own unit
		}
		path = append(path, n)
		if l, ok := isLoopStmt(n); ok {
			stack = append(stack, l)
			if r, ok := n.(*ast.RangeStmt); ok {
				if id, ok := r.Key.(*ast.Ident); ok {
					assigned(id, stack)
				}
				if id, ok := r.Value.(*ast.Ident); ok {
					assigned(id, stack)
				}
			}
			return true
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					assigned(id, stack)
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				assigned(id, stack)
			}
		case *ast.ValueSpec:
			for _, id := range n.Names {
				assigned(id, stack)
			}
		case *ast.CallExpr:
			loops := append([]ast.Stmt(nil), stack...)
			ctx.encLoops[n] = loops
			op, ok := a.resolveCall(n)
			ctx.ops[n], ctx.resolved[n] = op, ok
			if ok {
				if len(op.dirty) > 0 {
					ctx.anyTraffic = true
				}
				var rs residSite
				interesting := false
				for m := 0; m < nModes; m++ {
					rs.resid[m] = op.calleeResidual[m]
					if !rs.resid[m].IsZero() {
						interesting = true
					}
					if !op.calleePeak[m].IsZero() {
						ctx.anyTraffic = true
					}
				}
				if interesting {
					rs.loops = loops
					ctx.resid = append(ctx.resid, rs)
					ctx.anyTraffic = true
				}
			}
		}
		return true
	})
	return ctx
}

// analyzeBody computes the pressure profile of one function body.
func (a *analysis) analyzeBody(body *ast.BlockStmt, ftype *ast.FuncType, recv *ast.FieldList) *unitResult {
	ctx := a.scanUnit(body)
	ur := &unitResult{}
	hasDirtyResults := false
	walkSkippingFuncLits(body, func(n ast.Node) {
		if as, ok := n.(*ast.AssignStmt); ok {
			a.bindDirtyResults(as, func(ast.Expr, *ast.CallExpr, Bound) { hasDirtyResults = true })
		}
	})
	if !ctx.anyTraffic && !hasDirtyResults {
		return ur // no persistency traffic at all
	}

	// Classes excluded from the residual: caller-owned parameters and the
	// receiver (their dirt is conveyed by dirtyParams) and returned
	// locations (conveyed by dirtyResults).
	exclude := map[*class]bool{}
	collectField := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := a.info.Defs[name]; obj != nil {
					exclude[a.classOf(obj).find()] = true
				}
			}
		}
	}
	collectField(ftype.Params)
	collectField(recv)
	walkSkippingFuncLits(body, func(n ast.Node) {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			for _, r := range ret.Results {
				for _, c := range a.returnClasses(r) {
					exclude[c.find()] = true
				}
			}
		}
	})

	g := cfg.New(body)
	for mode := 0; mode < nModes; mode++ {
		u := &punit{a: a, mode: mode, ctx: ctx}
		in := dataflow.Forward[pfact](g, u)

		// Replay over the settled facts, measuring peaks and recording
		// each block's out-fact for the loop-carry pass.
		u.measuring = true
		out := make(map[*cfg.Block]pfact, len(g.Blocks))
		for _, b := range g.Blocks {
			f := u.Clone(in[b])
			if !f.reached {
				out[b] = f
				continue
			}
			for _, n := range b.Nodes {
				f = u.Transfer(n, f)
			}
			out[b] = f
		}
		u.measuring = false

		// Residual dirt accumulated from calls outside any loop.
		baseResid := Fin(0)
		for _, rs := range ctx.resid {
			if len(rs.loops) == 0 {
				baseResid = baseResid.Add(rs.resid[mode])
			}
		}
		carry := u.loopCarry(g, out)

		ur.peak[mode] = u.peak.Add(baseResid).Add(carry)
		exitLines := Fin(0)
		if exit := in[g.Exit]; exit.reached {
			for c, pl := range exit.locs {
				if !exclude[c.find()] {
					exitLines = exitLines.Add(pl.lines)
				}
			}
		}
		ur.residual[mode] = exitLines.Add(baseResid).Add(carry)
		if mode == modeStrict {
			ur.witness = u.peakPos
		}
		for _, n := range u.notes {
			ur.notes = appendNote(ur.notes, n)
		}
	}
	return ur
}

// punit implements dataflow.Problem[pfact] for one discipline.
type punit struct {
	a    *analysis
	mode int
	ctx  *unitCtx

	measuring bool
	peak      Bound
	peakPos   token.Pos
	notes     []string
}

func (u *punit) Entry() pfact  { return pfact{reached: true, locs: map[*class]ploc{}} }
func (u *punit) Bottom() pfact { return pfact{} }

func (u *punit) Clone(f pfact) pfact {
	locs := make(map[*class]ploc, len(f.locs))
	for c, pl := range f.locs {
		locs[c] = pl
	}
	return pfact{reached: f.reached, locs: locs}
}

func (u *punit) Equal(a, b pfact) bool {
	if a.reached != b.reached || len(a.locs) != len(b.locs) {
		return false
	}
	for c, pl := range a.locs {
		if b.locs[c] != pl {
			return false
		}
	}
	return true
}

// Join is pointwise: the less-drained state wins, footprints max, earliest
// position, and the innermost-by-position varying loop. Each component is
// an idempotent semilattice operation, so block-entry facts only ascend a
// finite lattice and the worklist terminates.
func (u *punit) Join(a, b pfact) pfact {
	if !a.reached {
		return u.Clone(b)
	}
	if !b.reached {
		return u.Clone(a)
	}
	out := u.Clone(a)
	for c, bi := range b.locs {
		ai, ok := out.locs[c]
		if !ok {
			out.locs[c] = bi
			continue
		}
		m := ai
		if bi.st < m.st {
			m.st = bi.st
		}
		m.lines = m.lines.Max(bi.lines)
		if bi.pos < m.pos {
			m.pos = bi.pos
		}
		switch {
		case m.vary == nil:
			m.vary = bi.vary
		case bi.vary != nil && bi.vary.Pos() < m.vary.Pos():
			m.vary = bi.vary
		}
		out.locs[c] = m
	}
	return out
}

func (u *punit) Transfer(n ast.Node, f pfact) pfact {
	if !f.reached {
		return f
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		u.walk(n, &f)
		u.a.bindDirtyResults(n, func(lhs ast.Expr, call *ast.CallExpr, lines Bound) {
			c := u.a.locOf(lhs)
			if u.a.isVolatile(c) {
				return
			}
			vary := innermost(u.ctx.encLoops[call])
			u.dirty(&f, c, lines, call.Pos(), vary)
			if u.measuring && lines.Unbounded {
				u.note(fmt.Sprintf("dirty result bound at %s is statically unbounded (recursive helper)", u.a.fset.Position(call.Pos())))
			}
		})
	case *ast.RangeStmt:
		u.walk(n.X, &f)
	default:
		u.walk(n, &f)
	}
	return f
}

func (u *punit) walk(n ast.Node, f *pfact) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			u.apply(call, f)
		}
		return true
	})
}

func (u *punit) apply(call *ast.CallExpr, f *pfact) {
	op, ok := u.ctx.ops[call]
	if !ok {
		// A call discovered outside the scan walk (defensive): resolve now.
		op, ok = u.a.resolveCall(call)
		if !ok {
			return
		}
	} else if !u.ctx.resolved[call] {
		return
	}
	for _, de := range op.dirty {
		c := u.a.locOf(de.addr)
		if u.a.isVolatile(c) {
			continue
		}
		lines := de.lines.Max(Fin(u.a.classLines(c)))
		u.dirty(f, c, lines, call.Pos(), u.varyFor(call, de.addr))
	}
	if u.mode == modeStrict {
		for _, e := range op.flush {
			c := u.a.locOf(e)
			if pl, ok := f.locs[c]; ok && pl.st == pDirty {
				pl.st = pFlushed
				f.locs[c] = pl
			}
		}
		if op.barrierAll || len(op.clear) > 0 {
			for _, e := range op.clear {
				delete(f.locs, u.a.locOf(e))
			}
			u.drain(f)
		} else if op.fences {
			u.drain(f)
		}
	}
	if u.measuring {
		u.bump(u.linesOf(f).Add(op.calleePeak[u.mode]), call.Pos())
		if op.calleePeak[u.mode].Unbounded || op.calleeResidual[u.mode].Unbounded {
			u.note(fmt.Sprintf("call to %s at %s: callee persist pressure statically unbounded (recursive helper)", op.calleeName, u.a.fset.Position(call.Pos())))
		}
	}
}

// drain completes written-back lines (the fence/barrier semantics: a
// drain waits out the WPQ; dirty unflushed lines are untouched).
func (u *punit) drain(f *pfact) {
	for c, pl := range f.locs {
		if pl.st == pFlushed {
			delete(f.locs, c)
		}
	}
}

func (u *punit) dirty(f *pfact, c *class, lines Bound, pos token.Pos, vary ast.Stmt) {
	if old, ok := f.locs[c]; ok {
		lines = lines.Max(old.lines)
		if old.pos < pos {
			pos = old.pos
		}
	}
	f.locs[c] = ploc{st: pDirty, lines: lines, pos: pos, vary: vary}
	if u.measuring {
		u.bump(u.linesOf(f), pos)
	}
}

func (u *punit) linesOf(f *pfact) Bound {
	total := Fin(0)
	for _, pl := range f.locs {
		total = total.Add(pl.lines)
	}
	return total
}

func (u *punit) bump(b Bound, pos token.Pos) {
	if u.peak.Less(b) {
		u.peak = b
		u.peakPos = pos
	}
}

func (u *punit) note(n string) {
	u.notes = appendNote(u.notes, n)
}

// varyFor decides whether the location a store addresses is renamed by an
// enclosing loop's iteration: a var-based address varies with the
// innermost loop reassigning its base variable (a fresh allocation per
// trip); a key-based address (no resolvable base) varies with the
// innermost loop reassigning any variable the address expression reads.
// Dynamic offsets within one object never vary — they are span-capped by
// the class footprint instead.
func (u *punit) varyFor(call *ast.CallExpr, addr ast.Expr) ast.Stmt {
	loops := u.ctx.encLoops[call]
	if len(loops) == 0 {
		return nil
	}
	base := u.a.baseObj(addr)
	for i := len(loops) - 1; i >= 0; i-- {
		asg := u.ctx.assignedIn[loops[i]]
		if len(asg) == 0 {
			continue
		}
		if base != nil {
			if asg[base] {
				return loops[i]
			}
			continue
		}
		if readsAssigned(u.a, addr, asg) {
			return loops[i]
		}
	}
	return nil
}

func readsAssigned(a *analysis, e ast.Expr, asg map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !found {
			obj := a.info.Uses[id]
			if obj == nil {
				obj = a.info.Defs[id]
			}
			if obj != nil && asg[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

func innermost(loops []ast.Stmt) ast.Stmt {
	if len(loops) == 0 {
		return nil
	}
	return loops[len(loops)-1]
}

func within(outer ast.Stmt, inner ast.Stmt) bool {
	return inner.Pos() >= outer.Pos() && inner.End() <= outer.End()
}

// loopCarry turns the settled back-edge facts into the total extra
// pressure loops accumulate: per loop, the per-iteration carried set
// (classes still non-durable at the back edge whose identity the loop
// renames) plus callee residuals of calls directly in the loop plus the
// totals of nested loops, multiplied by the trip count — ⊤ with a finding
// when the trip is not a compile-time constant.
func (u *punit) loopCarry(g *cfg.Graph, out map[*cfg.Block]pfact) Bound {
	if len(g.Loops) == 0 {
		return Fin(0)
	}
	// Build the loop forest by syntactic nesting.
	parent := make(map[*cfg.Loop]*cfg.Loop)
	children := make(map[*cfg.Loop][]*cfg.Loop)
	for _, m := range g.Loops {
		var best *cfg.Loop
		for _, l := range g.Loops {
			if l == m || !within(l.Stmt, m.Stmt) {
				continue
			}
			if best == nil || within(best.Stmt, l.Stmt) {
				best = l
			}
		}
		parent[m] = best
		if best != nil {
			children[best] = append(children[best], m)
		}
	}

	var total func(l *cfg.Loop) Bound
	total = func(l *cfg.Loop) Bound {
		extra := Fin(0)
		bf := u.backFact(l, out)
		if bf.reached {
			classes := make([]*class, 0, len(bf.locs))
			for c := range bf.locs {
				classes = append(classes, c)
			}
			sort.Slice(classes, func(i, j int) bool { return bf.locs[classes[i]].pos < bf.locs[classes[j]].pos })
			for _, c := range classes {
				pl := bf.locs[c]
				if pl.vary == nil || !within(l.Stmt, pl.vary) {
					continue
				}
				extra = extra.Add(pl.lines)
			}
		}
		for _, rs := range u.ctx.resid {
			if innermost(rs.loops) == l.Stmt {
				extra = extra.Add(rs.resid[u.mode])
			}
		}
		for _, ch := range children[l] {
			extra = extra.Add(total(ch))
		}
		trip, known := u.a.tripOf(l.Stmt)
		t := MulTrip(trip, known, extra)
		if t.Unbounded && !extra.Unbounded {
			u.note(fmt.Sprintf("loop at %s carries %s dirty line(s) per iteration with no constant trip count: pressure widened to unbounded", u.a.fset.Position(l.Stmt.Pos()), extra))
		}
		return t
	}

	carry := Fin(0)
	for _, l := range g.Loops {
		if parent[l] == nil {
			carry = carry.Add(total(l))
		}
	}
	return carry
}

// backFact joins the dataflow facts flowing around a loop's back edge.
func (u *punit) backFact(l *cfg.Loop, out map[*cfg.Block]pfact) pfact {
	if l.Target != l.Head {
		return out[l.Target] // the post-statement block's out-fact
	}
	f := u.Bottom()
	for _, b := range l.BackSources() {
		f = u.Join(f, out[b])
	}
	return f
}

// --- trip counts ---

func (a *analysis) constInt(e ast.Expr) (int64, bool) {
	if tv, ok := a.info.Types[e]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			return v, true
		}
	}
	return 0, false
}

// tripOf returns a loop's trip count when it is a compile-time constant:
// `for i := c0; i < c1; i += s` (and <=, ++) over constants with the
// induction variable untouched in the body, a range over an array (or
// pointer to array), or a range over a constant int.
func (a *analysis) tripOf(s ast.Stmt) (int, bool) {
	switch s := s.(type) {
	case *ast.RangeStmt:
		if t := a.typeOf(s.X); t != nil {
			u := t.Underlying()
			if p, ok := u.(*types.Pointer); ok {
				u = p.Elem().Underlying()
			}
			if arr, ok := u.(*types.Array); ok {
				return int(arr.Len()), true
			}
		}
		if v, ok := a.constInt(s.X); ok && v >= 0 {
			return int(v), true
		}
	case *ast.ForStmt:
		init, ok := s.Init.(*ast.AssignStmt)
		if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
			return 0, false
		}
		iv, ok := ast.Unparen(init.Lhs[0]).(*ast.Ident)
		if !ok {
			return 0, false
		}
		ivObj := a.info.Defs[iv]
		if ivObj == nil {
			return 0, false
		}
		c0, ok := a.constInt(init.Rhs[0])
		if !ok {
			return 0, false
		}
		cond, ok := s.Cond.(*ast.BinaryExpr)
		if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
			return 0, false
		}
		cid, ok := ast.Unparen(cond.X).(*ast.Ident)
		if !ok || a.info.Uses[cid] != ivObj {
			return 0, false
		}
		c1, ok := a.constInt(cond.Y)
		if !ok {
			return 0, false
		}
		step := int64(0)
		switch post := s.Post.(type) {
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(post.X).(*ast.Ident); ok && a.info.Uses[id] == ivObj && post.Tok == token.INC {
				step = 1
			}
		case *ast.AssignStmt:
			if post.Tok == token.ADD_ASSIGN && len(post.Lhs) == 1 && len(post.Rhs) == 1 {
				if id, ok := ast.Unparen(post.Lhs[0]).(*ast.Ident); ok && a.info.Uses[id] == ivObj {
					if v, ok := a.constInt(post.Rhs[0]); ok && v > 0 {
						step = v
					}
				}
			}
		}
		if step <= 0 {
			return 0, false
		}
		// The induction variable must not be reassigned in the body.
		touched := false
		ast.Inspect(s.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && a.info.Uses[id] == ivObj {
						touched = true
					}
				}
			case *ast.IncDecStmt:
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && a.info.Uses[id] == ivObj {
					touched = true
				}
			}
			return !touched
		})
		if touched {
			return 0, false
		}
		span := c1 - c0
		if cond.Op == token.LSS {
			span-- // last trip starts at the largest i with i < c1
		}
		if span < 0 {
			return 0, true
		}
		return int(span/step) + 1, true
	}
	return 0, false
}

// --- certificates and diagnostics ---

// collectCertificates extracts one Certificate per program unit: each
// program-shaped FuncLit inside a workload's Programs method (merged
// under the receiver type name — a workload's threads are instances of
// one bound) and each program-shaped top-level function.
func (a *analysis) collectCertificates() {
	merged := map[string]*Certificate{}
	var order []string

	add := func(name string, pos token.Pos, ur *unitResult) {
		c, ok := merged[name]
		if !ok {
			c = &Certificate{Unit: name, Pos: a.fset.Position(pos)}
			merged[name] = c
			order = append(order, name)
		}
		if c.StrictLines.Less(ur.peak[modeStrict]) || c.Witness == "" {
			if ur.witness != token.NoPos {
				c.Witness = a.fset.Position(ur.witness).String()
			}
		}
		c.StrictLines = c.StrictLines.Max(ur.peak[modeStrict])
		c.RelaxedLines = c.RelaxedLines.Max(ur.peak[modeRelaxed])
		for _, n := range ur.notes {
			c.Findings = appendNote(c.Findings, n)
		}
	}

	for _, fd := range a.decls {
		if fd.Recv == nil && a.programShaped(fd.Type) {
			s := a.summaries[a.fnOf[fd]]
			ur := &unitResult{peak: s.peak, residual: s.residual, witness: s.witness, notes: s.notes}
			add(fd.Name.Name, fd.Pos(), ur)
		}
		enclosing := fd
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			if a.programShaped(lit.Type) {
				ur := a.analyzeBody(lit.Body, lit.Type, nil)
				add(a.litUnitName(enclosing, lit), lit.Pos(), ur)
			}
			return false // nested FuncLits inside a program are opaque
		})
	}

	sort.Strings(order)
	for _, name := range order {
		c := merged[name]
		sort.Strings(c.Findings)
		a.certs = append(a.certs, *c)
	}

	// Diagnostics only where the author pinned the strict discipline: a
	// statically unbounded at-risk set defeats the point of pmem-style
	// flush/fence code.
	for _, c := range a.certs {
		if !c.StrictLines.Unbounded {
			continue
		}
		pos := a.posOf(c.Pos)
		f := a.fileAt(pos)
		if f == nil || a.schemes[f] != "pmem" {
			continue
		}
		why := "unbounded loop or recursive helper"
		if len(c.Findings) > 0 {
			why = c.Findings[0]
		}
		a.diags = append(a.diags, diag{
			pos: pos,
			msg: fmt.Sprintf("program %s: persist pressure is statically unbounded under the pmem discipline (%s)", c.Unit, why),
		})
	}
}

// litUnitName names a program FuncLit: the receiver type for the lits a
// workload's Programs method returns, else the enclosing function plus
// the line.
func (a *analysis) litUnitName(fd *ast.FuncDecl, lit *ast.FuncLit) string {
	if fd.Name.Name == "Programs" && fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := fd.Recv.List[0].Type
		for {
			if star, ok := t.(*ast.StarExpr); ok {
				t = star.X
				continue
			}
			break
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name
		}
	}
	return fmt.Sprintf("%s.func@%d", fd.Name.Name, a.fset.Position(lit.Pos()).Line)
}

// posOf maps a token.Position back to a token.Pos in the fileset.
func (a *analysis) posOf(p token.Position) token.Pos {
	for _, f := range a.pkg.Files {
		tf := a.fset.File(f.FileStart)
		if tf != nil && tf.Name() == p.Filename {
			return tf.Pos(p.Offset)
		}
	}
	return token.NoPos
}

func (a *analysis) fileAt(pos token.Pos) *ast.File {
	for _, f := range a.pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
