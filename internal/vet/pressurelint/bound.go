package pressurelint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"strconv"
)

// A Bound is an element of the pressure lattice: a line count, or ⊤
// (statically unbounded). Arithmetic saturates at ⊤.
type Bound struct {
	Lines     int
	Unbounded bool
}

// Inf is the ⊤ bound.
func Inf() Bound { return Bound{Unbounded: true} }

// Fin is a finite bound.
func Fin(n int) Bound { return Bound{Lines: n} }

// MarshalJSON renders the bound as its String form ("7" or "inf"), the
// shape the -pressure-report and golden consumers read.
func (b Bound) MarshalJSON() ([]byte, error) {
	return json.Marshal(b.String())
}

// UnmarshalJSON accepts the String form.
func (b *Bound) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	if s == "inf" {
		*b = Inf()
		return nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return fmt.Errorf("pressurelint: bad bound %q", s)
	}
	*b = Fin(n)
	return nil
}

func (b Bound) String() string {
	if b.Unbounded {
		return "inf"
	}
	return fmt.Sprintf("%d", b.Lines)
}

// Add saturates at ⊤.
func (b Bound) Add(o Bound) Bound {
	if b.Unbounded || o.Unbounded {
		return Inf()
	}
	return Fin(b.Lines + o.Lines)
}

// Max is the lattice join.
func (b Bound) Max(o Bound) Bound {
	if b.Unbounded || o.Unbounded {
		return Inf()
	}
	if o.Lines > b.Lines {
		return o
	}
	return b
}

// Less orders bounds with ⊤ greatest.
func (b Bound) Less(o Bound) bool {
	if b.Unbounded {
		return false
	}
	if o.Unbounded {
		return true
	}
	return b.Lines < o.Lines
}

// IsZero reports a vacuous bound.
func (b Bound) IsZero() bool { return !b.Unbounded && b.Lines == 0 }

// MulTrip multiplies a per-iteration carry by a loop trip count. An
// unknown trip over a zero carry is still zero (the loop accumulates
// nothing); an unknown trip over anything else is ⊤.
func MulTrip(trip int, known bool, per Bound) Bound {
	if per.IsZero() {
		return Fin(0)
	}
	if !known || per.Unbounded {
		return Inf()
	}
	return Fin(trip * per.Lines)
}

// Cap collapses a bound to a hardware capacity — the ⊤-with-coalescing-cap
// widening: a buffer organization can never hold more than its entry count,
// so even a statically unbounded demand is served by at most cap entries.
func (b Bound) Cap(cap int) int {
	if b.Unbounded || b.Lines > cap {
		return cap
	}
	return b.Lines
}

// A Certificate is one program unit's static persist-pressure bound, the
// scheme-independent half: per-thread peaks under the strict (barriers
// take effect) and relaxed (nothing the program does drains the buffers)
// disciplines. ForScheme projects it onto a scheme's buffer organization.
type Certificate struct {
	// Unit names the program: the workload receiver type for the FuncLits
	// inside a Programs method, else the function name.
	Unit string `json:"unit"`
	// Pos anchors the unit.
	Pos token.Position `json:"pos"`
	// StrictLines bounds the simultaneously non-durable lines one thread
	// holds when every flush/fence/barrier takes effect — the PMEM
	// baseline's at-risk set (dirty cache lines a crash loses).
	StrictLines Bound `json:"strictLines"`
	// RelaxedLines bounds one thread's demand on a draining persist
	// buffer when no program action clears lines (BBB/BEP): finite only
	// when the program touches finitely many distinct lines.
	RelaxedLines Bound `json:"relaxedLines"`
	// Witness is the file:line of the program point attaining the strict
	// peak.
	Witness string `json:"witness"`
	// Findings explains every ⊤ above: the unbounded loop or recursive
	// helper that widened the bound. A certificate with an unbounded
	// component and no finding is a bug in the analysis.
	Findings []string `json:"findings,omitempty"`
}

// Caps is the hardware capacity configuration certificates are projected
// against. Defaults mirror the paper's (and the simulator's) defaults.
type Caps struct {
	BBPBEntries int // per-core bbPB entries (bbpb.DefaultConfig)
	VPBEntries  int // per-core BEP volatile persist buffer entries
	WPQEntries  int // memory-controller write-pending queue depth
}

// DefaultCaps matches bbpb.DefaultConfig and memctrl.DefaultNVMM.
func DefaultCaps() Caps { return Caps{BBPBEntries: 32, VPBEntries: 32, WPQEntries: 32} }

// A SchemeBound is a certificate projected onto one scheme's persistence
// domain: what the battery (or ADR) must be sized to drain, and what a
// crash can still lose.
type SchemeBound struct {
	Scheme string `json:"scheme"`
	// PerCoreLines is the certified per-core persist-buffer occupancy
	// bound (0 for schemes without a program-visible buffer).
	PerCoreLines int `json:"perCoreLines"`
	// MaxDirtyLines is the whole-machine persistence-domain bound: the
	// lines flush-on-fail must drain in the worst case. Always finite —
	// hardware capacities cap it (the ⊤-with-coalescing-cap widening).
	MaxDirtyLines int    `json:"maxDirtyLines"`
	MaxDirtyBytes uint64 `json:"maxDirtyBytes"`
	// AtRiskLines bounds the lines visible to other cores but outside
	// the persistence domain at any instant — what a crash loses (PMEM
	// dirty cache lines, BEP volatile-buffer entries). May be ⊤ when the
	// program's strict discipline doesn't bound it.
	AtRiskLines Bound `json:"atRiskLines"`
}

// ForScheme projects the certificate onto one scheme for a thread count,
// following the paper's domain composition: bbPB entries for BBB/BBBProc,
// WPQ+VPB for BEP, WPQ alone for PMEM, and zero program-attributable lines
// for eADR/NVCache (their domain is the whole cache — a hardware constant,
// not a program property). lineBytes is the drained block size (64).
func (c Certificate) ForScheme(scheme string, threads int, caps Caps, lineBytes int) SchemeBound {
	sb := SchemeBound{Scheme: scheme}
	switch scheme {
	case "bbb", "bbb-proc":
		sb.PerCoreLines = c.RelaxedLines.Cap(caps.BBPBEntries)
		sb.MaxDirtyLines = caps.WPQEntries + threads*sb.PerCoreLines
	case "bep":
		sb.PerCoreLines = c.RelaxedLines.Cap(caps.VPBEntries)
		sb.MaxDirtyLines = caps.WPQEntries + threads*sb.PerCoreLines
		sb.AtRiskLines = Fin(threads * sb.PerCoreLines)
	case "pmem":
		sb.MaxDirtyLines = caps.WPQEntries
		sb.AtRiskLines = MulTrip(threads, true, c.StrictLines)
	default: // eadr, nvcache: commit is the durability point
		sb.MaxDirtyLines = caps.WPQEntries
	}
	sb.MaxDirtyBytes = uint64(sb.MaxDirtyLines) * uint64(lineBytes)
	return sb
}
