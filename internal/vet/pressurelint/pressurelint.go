// Package pressurelint is an interprocedural, loop-aware persist-pressure
// analysis for the programs that run on the simulator: it computes, at
// every program point of a cpu.Env program, an upper bound on the number
// of simultaneously dirty persistence-domain lines, and emits per-workload
// battery-bound certificates (Certificate) that internal/energy can size a
// battery against and the conform harness gates against the runtime
// checkers.
//
// The abstraction is a dirty-set lattice over the same union-find location
// classes persistlint uses: each class carries a persistency state (dirty
// or flushed; absent means durable), a line-count bound (the class's
// footprint: max constant line offset seen at a store, widened to the
// allocation size when offsets are dynamic), and the innermost loop whose
// iteration changes the class's identity (a fresh allocation per trip).
// The pressure at a point is the sum of line bounds of all non-durable
// classes.
//
// Two disciplines are evaluated per unit:
//
//   - strict: flushes, fences and barriers take effect (the PMEM
//     baseline). The peak bounds the at-risk set a crash loses.
//   - relaxed: nothing the program does clears a line (BBB/BEP persist
//     buffers drain on their own schedule, invisible to the program). The
//     peak bounds the program's demand on a persist buffer; Certificate
//     projection caps it at the buffer's entry count — the
//     ⊤-with-coalescing-cap widening.
//
// Loops: the per-iteration carried set is read off the back-edge fact of
// the settled fixpoint (internal/vet/cfg Loop metadata); classes whose
// identity varies with the loop multiply by the trip count when it is a
// compile-time constant (three-clause loops over constant bounds, ranges
// over arrays and constant ints) and widen to ⊤ with a reported finding
// otherwise. Because the carry is computed structurally after the
// fixpoint, the dataflow lattice stays finite and termination is
// unconditional.
//
// Helpers are handled by bottom-up context-insensitive summaries over the
// call graph (Tarjan SCCs): which parameters a callee dirties/flushes/
// clears and by how many lines, which results return dirty locations, the
// callee's own transient peak and leftover residual. Recursive SCCs that
// fail to converge within a few rounds widen their peaks to ⊤ — the
// shadow-paging btree's recursive path copy is correctly reported as
// unbounded. A `//bbbvet:volatile` directive on a function marks its
// returned addresses as DRAM-side scratch, excluded from persist pressure.
//
// The analyzer itself only reports diagnostics for program-shaped units in
// files pinned to the strict discipline with `//bbbvet:scheme pmem` whose
// strict peak is unbounded; everything else is surfaced as certificates
// (`bbbvet -pressure-report`) and gated dynamically by
// internal/vet/pressurelint/conform (`make pressure-short`).
package pressurelint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"bbb/internal/vet"
)

// Analyzer is the pressurelint pass.
var Analyzer = &vet.Analyzer{
	Name: "pressurelint",
	Doc: `	pressurelint: interprocedural persist-pressure bounds.
	Computes per-program upper bounds on simultaneously dirty
	persistence-domain lines (static battery-bound certificates); reports
	programs pinned to //bbbvet:scheme pmem whose pressure is statically
	unbounded.`,
	Run: run,
}

const (
	modeStrict  = iota // flush/fence/barrier take effect (PMEM discipline)
	modeRelaxed        // nothing the program does clears a line (BBB/BEP)
	nModes
)

const (
	schemePrefix   = "//bbbvet:scheme"
	volatilePrefix = "//bbbvet:volatile"
)

func run(pass *vet.Pass) error {
	// The vet tooling's own fixtures manipulate Env-shaped ASTs; skip.
	if strings.HasPrefix(pass.Pkg.ImportPath, "bbb/internal/vet") {
		return nil
	}
	a := newAnalysis(pass.Pkg, pass.Fset)
	a.run()
	for _, d := range a.diags {
		pass.Reportf(d.pos, "%s", d.msg)
	}
	return nil
}

// Certificates runs the analysis over pkgs and returns every program
// unit's battery-bound certificate, sorted by unit name then position.
// It is the entry point for `bbbvet -pressure-report` and the conform
// harness; no diagnostics are produced.
func Certificates(pkgs []*vet.Package, fset *token.FileSet) []Certificate {
	var out []Certificate
	for _, pkg := range pkgs {
		if strings.HasPrefix(pkg.ImportPath, "bbb/internal/vet") {
			continue
		}
		a := newAnalysis(pkg, fset)
		a.run()
		out = append(out, a.certs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Unit != out[j].Unit {
			return out[i].Unit < out[j].Unit
		}
		return out[i].Pos.Offset < out[j].Pos.Offset
	})
	return out
}

type diag struct {
	pos token.Pos
	msg string
}

// analysis is the per-package state.
type analysis struct {
	pkg  *vet.Package
	info *types.Info
	fset *token.FileSet

	byObj map[types.Object]*class
	byKey map[string]*class

	// Per-class footprint knowledge, keyed by union-find root.
	spans       map[*class]int  // 1 + max constant line index stored
	dynOff      map[*class]bool // a store used a non-constant offset
	allocLines  map[*class]int  // ceil(Alloc(const)/LineSize)
	volatileCls map[*class]bool // DRAM-side scratch: excluded from pressure

	volatileFns map[*types.Func]bool
	schemes     map[*ast.File]string

	summaries map[*types.Func]*summary
	declOf    map[*types.Func]*ast.FuncDecl
	decls     []*ast.FuncDecl
	fnOf      map[*ast.FuncDecl]*types.Func

	certs []Certificate
	diags []diag
}

func newAnalysis(pkg *vet.Package, fset *token.FileSet) *analysis {
	return &analysis{
		pkg:         pkg,
		info:        pkg.Info,
		fset:        fset,
		byObj:       make(map[types.Object]*class),
		byKey:       make(map[string]*class),
		spans:       make(map[*class]int),
		dynOff:      make(map[*class]bool),
		allocLines:  make(map[*class]int),
		volatileCls: make(map[*class]bool),
		volatileFns: make(map[*types.Func]bool),
		schemes:     make(map[*ast.File]string),
		summaries:   make(map[*types.Func]*summary),
		declOf:      make(map[*types.Func]*ast.FuncDecl),
		fnOf:        make(map[*ast.FuncDecl]*types.Func),
	}
}

func (a *analysis) run() {
	a.collectDirectives()
	a.aliasPass()
	a.footprintPass()
	a.computeSummaries()
	a.collectCertificates()
}

// --- abstract locations (union-find), shared shape with persistlint ---

type class struct {
	parent *class
	name   string
}

func (c *class) find() *class {
	for c.parent != nil {
		if c.parent.parent != nil {
			c.parent = c.parent.parent
		}
		c = c.parent
	}
	return c
}

func union(a, b *class) {
	ra, rb := a.find(), b.find()
	if ra != rb {
		rb.parent = ra
	}
}

func (a *analysis) classOf(obj types.Object) *class {
	if c, ok := a.byObj[obj]; ok {
		return c.find()
	}
	c := &class{name: obj.Name()}
	a.byObj[obj] = c
	return c
}

func (a *analysis) keyClass(e ast.Expr) *class {
	key := types.ExprString(e)
	if c, ok := a.byKey[key]; ok {
		return c.find()
	}
	c := &class{name: key}
	a.byKey[key] = c
	return c
}

// baseObj resolves an address expression to the variable object rooting
// it, mirroring persistlint's varBase but returning the object (the unit
// pass needs it to decide loop-variance at the store site).
func (a *analysis) baseObj(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := a.info.Uses[e]
		if obj == nil {
			obj = a.info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok {
			return v
		}
	case *ast.BinaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			if o := a.baseObj(e.X); o != nil {
				return o
			}
			return a.baseObj(e.Y)
		}
	case *ast.CallExpr:
		if len(e.Args) != 1 {
			return nil
		}
		if tv, ok := a.info.Types[e.Fun]; ok && tv.IsType() {
			return a.baseObj(e.Args[0])
		}
		argT, resT := a.typeOf(e.Args[0]), a.typeOf(e)
		if argT != nil && resT != nil && types.Identical(argT, resT) {
			return a.baseObj(e.Args[0])
		}
	}
	return nil
}

func (a *analysis) varBase(e ast.Expr) *class {
	if o := a.baseObj(e); o != nil {
		return a.classOf(o)
	}
	return nil
}

func (a *analysis) locOf(e ast.Expr) *class {
	if c := a.varBase(e); c != nil {
		return c.find()
	}
	return a.keyClass(e).find()
}

func (a *analysis) typeOf(e ast.Expr) types.Type {
	if tv, ok := a.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isEnvType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n.Obj().Name() == "Env"
	}
	return false
}

// --- directives ---

func (a *analysis) collectDirectives() {
	volatileLines := make(map[string]map[int]bool)
	for _, f := range a.pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSuffix(c.Text, "*/")
				if strings.HasPrefix(text, "/*") {
					text = "//" + strings.TrimSpace(text[2:])
				}
				switch {
				case strings.HasPrefix(text, schemePrefix):
					val := strings.TrimSpace(strings.TrimPrefix(text, schemePrefix))
					switch val {
					case "pmem", "bbb", "eadr":
						a.schemes[f] = val
						// Unknown values are persistlint's to report.
					}
				case strings.HasPrefix(text, volatilePrefix):
					pos := a.fset.Position(c.Pos())
					if volatileLines[pos.Filename] == nil {
						volatileLines[pos.Filename] = make(map[int]bool)
					}
					// Covers its own line and the next, the directive
					// family's convention.
					volatileLines[pos.Filename][pos.Line] = true
					volatileLines[pos.Filename][pos.Line+1] = true
				}
			}
		}
	}
	for _, f := range a.pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			pos := a.fset.Position(fd.Pos())
			if volatileLines[pos.Filename][pos.Line] {
				if fn, ok := a.info.Defs[fd.Name].(*types.Func); ok {
					a.volatileFns[fn] = true
				}
			}
		}
	}
}

// --- alias pre-pass (persistlint's, verbatim semantics) ---

func (a *analysis) aliasPass() {
	for _, f := range a.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						a.aliasAssign(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						a.aliasAssign(n.Names[i], n.Values[i])
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if dst := a.varBase(n.Value); dst != nil {
						if src := a.varBase(n.X); src != nil {
							union(dst, src)
						}
					}
				}
			}
			return true
		})
	}
}

func (a *analysis) aliasAssign(lhs, rhs ast.Expr) {
	dst := a.varBase(lhs)
	if dst == nil {
		return
	}
	switch r := ast.Unparen(rhs).(type) {
	case *ast.Ident:
		if src := a.varBase(r); src != nil {
			union(dst, src)
		}
	case *ast.CompositeLit:
		for _, elt := range r.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if src := a.varBase(elt); src != nil {
				union(dst, src)
			}
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(r.Fun).(*ast.Ident); ok && id.Name == "append" {
			for _, arg := range r.Args {
				if src := a.varBase(arg); src != nil {
					union(dst, src)
				}
			}
		}
	}
}

// --- class footprints: spans, allocation sizes, volatile roots ---

// footprintPass walks every body once (no summaries needed: only direct
// Env stores contribute spans) recording per-class line footprints,
// allocation sizes and DRAM-scratch roots.
func (a *analysis) footprintPass() {
	for _, f := range a.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				for _, addr := range a.directStoreAddrs(n) {
					a.recordStore(addr)
				}
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						a.recordAssign(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						a.recordAssign(n.Names[i], n.Values[i])
					}
				}
			}
			return true
		})
	}
}

// directStoreAddrs returns the address expressions a call stores through,
// resolving only direct Env methods and the Store64 convenience.
func (a *analysis) directStoreAddrs(call *ast.CallExpr) []ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isEnvType(a.typeOf(sel.X)) {
		switch sel.Sel.Name {
		case "Store", "CompareAndSwap":
			if len(call.Args) >= 1 {
				return call.Args[:1]
			}
		}
		return nil
	}
	fn := a.calleeFunc(call)
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	firstIsEnv := sig.Params().Len() > 0 && isEnvType(sig.Params().At(0).Type())
	if firstIsEnv && fn.Name() == "Store64" && len(call.Args) >= 2 {
		return call.Args[1:2]
	}
	return nil
}

// recordStore folds one store address into the class footprint maps.
func (a *analysis) recordStore(addr ast.Expr) {
	c := a.locOf(addr)
	off, dyn := a.addrOffset(addr)
	span := 1
	if !dyn && off >= 0 {
		span = int(off/lineSize) + 1
	}
	if dyn || off < 0 {
		a.dynOff[c] = true
	}
	if span > a.spans[c] {
		a.spans[c] = span
	}
	if a.spans[c] == 0 {
		a.spans[c] = 1
	}
}

const lineSize = 64

// addrOffset sums the constant byte-offset terms of an address expression
// and reports whether a non-constant non-base term remains.
func (a *analysis) addrOffset(e ast.Expr) (off int64, dyn bool) {
	e = ast.Unparen(e)
	if be, ok := e.(*ast.BinaryExpr); ok && (be.Op == token.ADD || be.Op == token.SUB) {
		lo, ld := a.addrOffset(be.X)
		ro, rd := a.addrOffset(be.Y)
		if be.Op == token.SUB {
			ro = -ro
		}
		return lo + ro, ld || rd
	}
	if tv, ok := a.info.Types[e]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			return v, false
		}
		return 0, true
	}
	if ce, ok := e.(*ast.CallExpr); ok && len(ce.Args) == 1 {
		if tv, ok := a.info.Types[ce.Fun]; ok && tv.IsType() {
			return a.addrOffset(ce.Args[0])
		}
	}
	// The base term itself (a variable, a shaping call, the key
	// expression) contributes no offset.
	if a.baseObj(e) != nil {
		return 0, false
	}
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.CallExpr, *ast.IndexExpr:
		return 0, false // base-like: its identity is the class
	}
	return 0, true
}

// recordAssign notes allocation sizes (`x := arena.Alloc(constSize)`) and
// DRAM-scratch roots (`x := volatileScratchBase(t)` with the callee
// marked //bbbvet:volatile).
func (a *analysis) recordAssign(lhs, rhs ast.Expr) {
	dst := a.varBase(lhs)
	if dst == nil {
		return
	}
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := a.calleeFunc(call)
	if fn == nil {
		return
	}
	if a.volatileFns[fn] {
		a.volatileCls[dst.find()] = true
		return
	}
	if fn.Name() == "Alloc" && len(call.Args) == 1 {
		if tv, ok := a.info.Types[call.Args[0]]; ok && tv.Value != nil {
			if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact && v > 0 {
				lines := int((v + lineSize - 1) / lineSize)
				if lines > a.allocLines[dst.find()] {
					a.allocLines[dst.find()] = lines
				}
			}
		}
	}
}

// classLines is the per-class line footprint: the constant-offset span,
// widened to the allocation size when dynamic offsets were seen (stores
// stay within the allocated object by construction).
func (a *analysis) classLines(c *class) int {
	c = c.find()
	n := a.spans[c]
	if n == 0 {
		n = 1
	}
	if a.dynOff[c] && a.allocLines[c] > n {
		n = a.allocLines[c]
	}
	return n
}

func (a *analysis) isVolatile(c *class) bool { return a.volatileCls[c.find()] }

// --- call resolution ---

// dirtyEff is one address a call dirties, with the callee-claimed line
// bound (for helper parameters; direct stores use the class footprint).
type dirtyEff struct {
	addr  ast.Expr
	lines Bound
}

// callOp is the normalized pressure effect of one call expression.
type callOp struct {
	dirty      []dirtyEff
	flush      []ast.Expr
	clear      []ast.Expr // barriered: durable after the call (strict mode)
	fences     bool
	barrierAll bool
	// Callee transients, per mode (zero for direct Env operations).
	calleePeak     [nModes]Bound
	calleeResidual [nModes]Bound
	calleeName     string
}

func (a *analysis) calleeFunc(call *ast.CallExpr) *types.Func {
	if tv, ok := a.info.Types[call.Fun]; ok && tv.IsType() {
		return nil
	}
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := a.info.Uses[id].(*types.Func)
	return fn
}

// resolveCall classifies one call: a direct Env method, the Store64/Load64
// conveniences, or a summarized same-package helper.
func (a *analysis) resolveCall(call *ast.CallExpr) (callOp, bool) {
	var op callOp
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isEnvType(a.typeOf(sel.X)) {
		switch sel.Sel.Name {
		case "Store", "CompareAndSwap":
			if len(call.Args) >= 1 {
				op.dirty = []dirtyEff{{addr: call.Args[0], lines: Fin(1)}}
			}
		case "WriteBack", "Clwb", "Flush", "Persist":
			if len(call.Args) >= 1 {
				op.flush = call.Args[:1]
			}
		case "PersistBarrier":
			op.clear = call.Args
			op.fences = true
			op.barrierAll = true
		case "Fence", "SFence", "Drain":
			op.fences = true
		default:
			return op, false
		}
		return op, true
	}

	fn := a.calleeFunc(call)
	if fn == nil {
		return op, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return op, false
	}
	firstIsEnv := sig.Params().Len() > 0 && isEnvType(sig.Params().At(0).Type())
	if firstIsEnv && fn.Name() == "Store64" && len(call.Args) >= 2 {
		op.dirty = []dirtyEff{{addr: call.Args[1], lines: Fin(1)}}
		return op, true
	}
	if firstIsEnv && fn.Name() == "Load64" {
		return op, true
	}
	// cpu.PersistBarrier is the non-allocating front door to
	// Env.PersistBarrier; the address list starts at argument 1.
	if firstIsEnv && fn.Name() == "PersistBarrier" {
		op.clear = call.Args[1:]
		op.fences = true
		op.barrierAll = true
		return op, true
	}
	s := a.summaries[fn]
	if s == nil || s.pure {
		return op, false
	}
	argsAt := func(i int) []ast.Expr {
		if s.variadic && i == s.nparams-1 {
			if i < len(call.Args) {
				return call.Args[i:]
			}
			return nil
		}
		if i < len(call.Args) {
			return []ast.Expr{call.Args[i]}
		}
		return nil
	}
	for i, lines := range s.dirtyParams {
		for _, e := range argsAt(i) {
			op.dirty = append(op.dirty, dirtyEff{addr: e, lines: lines})
		}
	}
	for i := range s.flushParams {
		op.flush = append(op.flush, argsAt(i)...)
	}
	for i := range s.clearParams {
		op.clear = append(op.clear, argsAt(i)...)
	}
	op.fences = s.fences || len(s.clearParams) > 0
	op.barrierAll = s.barrierAll
	op.calleePeak = s.peak
	op.calleeResidual = s.residual
	op.calleeName = fn.Name()
	interesting := len(op.dirty)+len(op.flush)+len(op.clear) > 0 || op.fences
	for m := 0; m < nModes; m++ {
		if !op.calleePeak[m].IsZero() || !op.calleeResidual[m].IsZero() {
			interesting = true
		}
	}
	return op, interesting
}

// returnClasses lists the location classes a returned expression carries.
func (a *analysis) returnClasses(e ast.Expr) []*class {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		var out []*class
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			out = append(out, a.returnClasses(elt)...)
		}
		return out
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" {
			var out []*class
			for _, arg := range e.Args {
				out = append(out, a.returnClasses(arg)...)
			}
			return out
		}
		if tv, ok := a.info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return a.returnClasses(e.Args[0])
		}
	default:
		if c := a.varBase(ast.Unparen(e)); c != nil {
			return []*class{c}
		}
	}
	return nil
}

// bindDirtyResults calls f for each left-hand side receiving a dirty
// result of a summarized helper, with the callee's claimed line bound.
func (a *analysis) bindDirtyResults(as *ast.AssignStmt, f func(lhs ast.Expr, call *ast.CallExpr, lines Bound)) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := a.calleeFunc(call)
	if fn == nil {
		return
	}
	s := a.summaries[fn]
	if s == nil || len(s.dirtyResults) == 0 || len(as.Lhs) != s.nresults {
		return
	}
	for i := range as.Lhs {
		if lines, ok := s.dirtyResults[i]; ok {
			f(as.Lhs[i], call, lines)
		}
	}
}

// --- summaries over the call graph ---

// summary is a helper's context-insensitive transfer over the dirty-set
// lattice: effects on parameters/results, plus its own transient peak and
// leftover residual per discipline.
type summary struct {
	nparams  int
	variadic bool
	nresults int

	dirtyParams  map[int]Bound
	flushParams  map[int]bool
	clearParams  map[int]bool
	dirtyResults map[int]Bound
	fences       bool
	barrierAll   bool
	pure         bool

	peak     [nModes]Bound
	residual [nModes]Bound
	witness  token.Pos // strict-mode peak point (not part of equality)
	notes    []string
}

func boundMapsEqual(a, b map[int]Bound) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func setsEqual(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func (s *summary) equal(o *summary) bool {
	return o != nil && s.fences == o.fences && s.barrierAll == o.barrierAll &&
		s.pure == o.pure && s.peak == o.peak && s.residual == o.residual &&
		boundMapsEqual(s.dirtyParams, o.dirtyParams) &&
		boundMapsEqual(s.dirtyResults, o.dirtyResults) &&
		setsEqual(s.flushParams, o.flushParams) &&
		setsEqual(s.clearParams, o.clearParams) &&
		len(s.notes) == len(o.notes)
}

// computeSummaries builds the package call graph, condenses it with
// Tarjan's algorithm and computes summaries bottom-up: singleton
// components in one scan, cyclic components iterated with widening —
// numeric fields still growing after a few rounds go to ⊤ (the sound
// answer for recursion whose pressure depends on input depth).
func (a *analysis) computeSummaries() {
	for _, f := range a.pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := a.info.Defs[fd.Name].(*types.Func); ok {
					a.decls = append(a.decls, fd)
					a.declOf[fn] = fd
					a.fnOf[fd] = fn
				}
			}
		}
	}
	callees := make(map[*ast.FuncDecl][]*ast.FuncDecl)
	for _, fd := range a.decls {
		seen := make(map[*ast.FuncDecl]bool)
		walkSkippingFuncLits(fd.Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if fn := a.calleeFunc(call); fn != nil {
				if cd, ok := a.declOf[fn]; ok && !seen[cd] {
					seen[cd] = true
					callees[fd] = append(callees[fd], cd)
				}
			}
		})
	}
	for _, scc := range tarjan(a.decls, callees) {
		cyclic := len(scc) > 1
		if !cyclic {
			for _, c := range callees[scc[0]] {
				if c == scc[0] {
					cyclic = true
				}
			}
		}
		if !cyclic {
			fd := scc[0]
			a.summaries[a.fnOf[fd]] = a.scanFunction(fd)
			continue
		}
		for _, fd := range scc {
			a.summaries[a.fnOf[fd]] = &summary{} // bottom
		}
		const widenAfter, maxRounds = 3, 8
		for round := 0; round < maxRounds; round++ {
			changed := false
			for _, fd := range scc {
				fn := a.fnOf[fd]
				s := a.scanFunction(fd)
				prev := a.summaries[fn]
				if round >= widenAfter {
					widenGrowing(s, prev, fn.Name())
				}
				if !s.equal(prev) {
					a.summaries[fn] = s
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
}

// widenGrowing sends still-growing numeric fields of a cyclic component's
// summary to ⊤, recording the recursion finding.
func widenGrowing(s, prev *summary, name string) {
	widened := false
	widen := func(b *Bound, p Bound) {
		if p.Less(*b) {
			*b = Inf()
			widened = true
		}
	}
	for m := 0; m < nModes; m++ {
		widen(&s.peak[m], prev.peak[m])
		widen(&s.residual[m], prev.residual[m])
	}
	for i, b := range s.dirtyResults {
		if p, ok := prev.dirtyResults[i]; !ok || p.Less(b) {
			s.dirtyResults[i] = Inf()
			widened = true
		}
	}
	if widened {
		s.notes = appendNote(s.notes, fmt.Sprintf("recursive helper %s: pressure depends on recursion depth, widened to unbounded", name))
	}
}

func appendNote(notes []string, n string) []string {
	for _, have := range notes {
		if have == n {
			return notes
		}
	}
	return append(notes, n)
}

// tarjan returns the strongly connected components of the call graph in
// callee-before-caller (reverse topological) order.
func tarjan(nodes []*ast.FuncDecl, succs map[*ast.FuncDecl][]*ast.FuncDecl) [][]*ast.FuncDecl {
	index := make(map[*ast.FuncDecl]int)
	low := make(map[*ast.FuncDecl]int)
	onStack := make(map[*ast.FuncDecl]bool)
	var stack []*ast.FuncDecl
	var out [][]*ast.FuncDecl
	next := 0

	var strongconnect func(v *ast.FuncDecl)
	strongconnect = func(v *ast.FuncDecl) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succs[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []*ast.FuncDecl
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			out = append(out, comp)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return out
}

// scanFunction computes one function's summary: a flow-insensitive effect
// walk for the parameter/result sets, plus the flow-sensitive unit
// analysis for peaks and residuals.
func (a *analysis) scanFunction(fd *ast.FuncDecl) *summary {
	fn := a.fnOf[fd]
	sig := fn.Type().(*types.Signature)
	s := &summary{
		nparams:      sig.Params().Len(),
		variadic:     sig.Variadic(),
		nresults:     sig.Results().Len(),
		dirtyParams:  map[int]Bound{},
		flushParams:  map[int]bool{},
		clearParams:  map[int]bool{},
		dirtyResults: map[int]Bound{},
	}
	if a.volatileFns[fn] {
		s.pure = true
		return s
	}

	dirty := map[*class]Bound{}
	flush := map[*class]bool{}
	clear := map[*class]bool{}
	walkSkippingFuncLits(fd.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			op, ok := a.resolveCall(n)
			if !ok {
				return
			}
			for _, de := range op.dirty {
				c := a.locOf(de.addr)
				if a.isVolatile(c) {
					continue
				}
				lines := de.lines.Max(Fin(a.classLines(c)))
				dirty[c] = dirty[c].Max(lines)
			}
			for _, e := range op.flush {
				flush[a.locOf(e)] = true
			}
			for _, e := range op.clear {
				clear[a.locOf(e)] = true
			}
			if op.fences {
				s.fences = true
			}
			if op.barrierAll {
				s.barrierAll = true
			}
		case *ast.AssignStmt:
			a.bindDirtyResults(n, func(lhs ast.Expr, call *ast.CallExpr, lines Bound) {
				c := a.locOf(lhs)
				dirty[c] = dirty[c].Max(lines)
			})
		}
	})
	for i := 0; i < sig.Params().Len(); i++ {
		c := a.classOf(sig.Params().At(i)).find()
		if lines, ok := dirty[c]; ok {
			s.dirtyParams[i] = lines
		}
		if flush[c] {
			s.flushParams[i] = true
		}
		if clear[c] {
			s.clearParams[i] = true
		}
	}
	walkSkippingFuncLits(fd.Body, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		for j, r := range ret.Results {
			if j >= s.nresults {
				break
			}
			for _, c := range a.returnClasses(r) {
				if lines, ok := dirty[c.find()]; ok {
					s.dirtyResults[j] = s.dirtyResults[j].Max(lines)
				}
			}
		}
	})

	ur := a.analyzeBody(fd.Body, fd.Type, fd.Recv)
	s.peak = ur.peak
	s.residual = ur.residual
	s.witness = ur.witness
	s.notes = ur.notes
	return s
}

// programShaped reports the system.Program shape: one Env param, no
// results.
func (a *analysis) programShaped(ftype *ast.FuncType) bool {
	if ftype.Results != nil && len(ftype.Results.List) > 0 {
		return false
	}
	if ftype.Params == nil || len(ftype.Params.List) != 1 {
		return false
	}
	p := ftype.Params.List[0]
	if len(p.Names) > 1 {
		return false
	}
	return isEnvType(a.typeOf(p.Type))
}

func walkSkippingFuncLits(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
