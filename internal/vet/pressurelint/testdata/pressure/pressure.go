// Package pressure is the pressurelint fixture: a self-contained model of
// the simulator's execution interface plus programs pinning every bound
// the analysis computes — straight-line sums, bounded-loop trip
// multiplication, unbounded-loop and recursion widening, allocation-span
// footprints, volatile scratch exclusion and dirty-returning helpers.
// The file is pinned to the strict discipline, so statically unbounded
// strict pressure is a diagnostic here.
//
//bbbvet:scheme pmem
package pressure

type Addr uint64

type Env interface {
	Load(addr Addr, size int) uint64
	Store(addr Addr, size int, val uint64)
	WriteBack(addr Addr)
	Fence()
	PersistBarrier(addrs ...Addr)
}

// Store64 mirrors cpu.Store64.
func Store64(e Env, addr Addr, val uint64) { e.Store(addr, 8, val) }

// heap hands out distinct line-aligned persistent addresses.
func heap(i int) Addr { return Addr(0x10000 + i*4096) }

// Arena mirrors palloc.Arena: the analysis learns object footprints from
// constant-size Alloc calls.
type Arena struct{ next Addr }

func (a *Arena) Alloc(size uint64) Addr {
	at := a.next
	a.next += Addr(size)
	return at
}

// scratch is DRAM-side: stores through its result carry no pressure.
//
//bbbvet:volatile
func scratch() Addr { return 0x1000 }

// newNode dirties an address and returns it: the dirty-result summary
// path.
func newNode(e Env, at Addr) Addr {
	Store64(e, at, 7)
	return at
}

// recurse dirties one line per level: pressure depends on depth, so the
// SCC widening must send its peak to ⊤.
func recurse(e Env, at Addr, depth int) {
	if depth == 0 {
		return
	}
	Store64(e, at, uint64(depth))
	recurse(e, at+64, depth-1)
}

var n = 100 // defeats constant trip detection

// straightLine: two one-line classes live at once. strict=2 relaxed=2.
func straightLine(e Env) {
	a := heap(0)
	b := heap(1)
	Store64(e, a, 1)
	Store64(e, b, 2)
	e.PersistBarrier(a, b)
}

// boundedDrained: the barrier empties the carried set every iteration, so
// the strict bound is the single in-flight line; relaxed carries one fresh
// line per trip. strict=1 relaxed=9 (peak 1 + 8 carried).
func boundedDrained(e Env) {
	for i := 0; i < 8; i++ {
		at := heap(i)
		Store64(e, at, 1)
		e.PersistBarrier(at)
	}
}

// rangePerSlot: a write-back keeps lines non-durable until the final
// fence, so all four trips carry. strict=5 relaxed=5 (peak 1 + 4 carried).
func rangePerSlot(e Env) {
	var slots [4]uint64
	_ = slots
	base := heap(10)
	for j := range slots {
		at := base + Addr(j)*64
		Store64(e, at, 1)
		e.WriteBack(at)
	}
	e.Fence()
}

// rangeInt: range-over-int trip detection; the barrier lists the wrong
// class, so the stores stay carried. strict=4 relaxed=4 (peak 1 + 3).
func rangeInt(e Env) {
	base := heap(20)
	for j := range 3 {
		at := base + Addr(j)*64
		Store64(e, at, 1)
	}
	e.PersistBarrier(base)
}

// allocSpan: dynamic offsets within one 256-byte object are capped by the
// allocation footprint, not trip-multiplied. strict=4 relaxed=4.
func allocSpan(e Env) {
	var ar Arena
	buf := ar.Alloc(256)
	for i := 0; i < 32; i++ {
		Store64(e, buf+Addr(i*8), 1)
	}
	e.PersistBarrier(buf)
}

// volatileExcluded: the scratch stores are DRAM-side. strict=1 relaxed=1.
func volatileExcluded(e Env) {
	s := scratch()
	for i := 0; i < 512; i++ {
		Store64(e, s+Addr(i*8), 1)
	}
	at := heap(30)
	Store64(e, at, 1)
	e.PersistBarrier(at)
}

// viaHelper: the helper's dirty result binds to node. The argument class
// and the returned handle are conservatively distinct locations (the
// analysis does not unify results with arguments), so the bound is 2 for
// one physical line — an over-approximation, never an undercount.
func viaHelper(e Env) {
	node := newNode(e, heap(40))
	e.PersistBarrier(node)
}

// drainedUnbounded drains every iteration: the strict bound stays finite
// even though the trip count is unknown; only the relaxed bound widens
// (with a finding), to be capped by the buffer organization.
func drainedUnbounded(e Env) {
	for i := 0; i < n; i++ {
		at := heap(i)
		Store64(e, at, 1)
		e.PersistBarrier(at)
	}
}

// An unknown trip count with nothing draining the carried set is
// statically unbounded even under the strict discipline.
func unboundedLoop(e Env) { // want "persist pressure is statically unbounded under the pmem discipline"
	for i := 0; i < n; i++ {
		at := heap(i)
		Store64(e, at, 1)
	}
	e.Fence()
}

// Recursion whose pressure grows with depth widens to ⊤.
func recursivePressure(e Env) { // want "persist pressure is statically unbounded under the pmem discipline"
	recurse(e, heap(50), 8)
	e.Fence()
}

type Program func(Env)

type Params struct{ Threads int }

// W pins unit naming: program literals returned by a Programs method merge
// under the receiver type, taking the worst bound. strict=2 (the second
// literal) relaxed=2.
type W struct{}

func (w *W) Programs(p Params) []Program {
	out := make([]Program, 2)
	out[0] = func(e Env) {
		at := heap(60)
		Store64(e, at, 1)
		e.PersistBarrier(at)
	}
	out[1] = func(e Env) {
		a := heap(61)
		b := heap(62)
		Store64(e, a, 1)
		Store64(e, b, 2)
		e.PersistBarrier(a, b)
	}
	return out
}
