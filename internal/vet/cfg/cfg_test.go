package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// build parses src as a file, finds function f, and builds its graph.
func build(t *testing.T, src string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return New(fd.Body)
		}
	}
	t.Fatal("no function f in source")
	return nil
}

// reachable returns the set of blocks reachable from g.Entry.
func reachable(g *Graph) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

func TestStraightLine(t *testing.T) {
	g := build(t, `func f() { x := 1; x++; _ = x }`)
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry has %d nodes, want 3", len(g.Entry.Nodes))
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("entry must flow straight to exit, got succs %v", g.Entry.Succs)
	}
}

func TestIfElseJoins(t *testing.T) {
	g := build(t, `func f(c bool) { if c { println(1) } else { println(2) }; println(3) }`)
	r := reachable(g)
	if !r[g.Exit] {
		t.Fatal("exit unreachable")
	}
	// The entry (holding the condition) must have exactly two successors.
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("condition block has %d successors, want 2", len(g.Entry.Succs))
	}
	// Both arms must rejoin: some block has two predecessors.
	joined := false
	for _, b := range g.Blocks {
		if len(b.Preds) == 2 {
			joined = true
		}
	}
	if !joined {
		t.Fatal("no join block after if/else")
	}
}

func TestIfWithoutElse(t *testing.T) {
	g := build(t, `func f(c bool) { if c { println(1) }; println(2) }`)
	// Condition block: one edge into the then-arm, one skipping it.
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("condition block has %d successors, want 2", len(g.Entry.Succs))
	}
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable")
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g := build(t, `func f() { for i := 0; i < 3; i++ { println(i) } }`)
	// Some block must have a successor with a smaller index (the back edge).
	back := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index && s != g.Exit {
				back = true
			}
		}
	}
	if !back {
		t.Fatal("no back edge in for loop")
	}
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable")
	}
}

func TestForeverLoopExitsOnlyViaBreak(t *testing.T) {
	g := build(t, `func f() { for { if done() { break }; println(1) } }`)
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable despite break")
	}
	g2 := build(t, `func f() { for { println(1) } }`)
	if reachable(g2)[g2.Exit] {
		t.Fatal("for{} without break must not reach exit")
	}
}

func TestRangeNodeIsAtomic(t *testing.T) {
	g := build(t, `func f(xs []int) { for _, x := range xs { println(x) } }`)
	// The RangeStmt itself must appear as a node exactly once, and its body
	// statements must live in a different block.
	var rangeBlock *Block
	count := 0
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				rangeBlock = b
				count++
			}
		}
	}
	if count != 1 {
		t.Fatalf("RangeStmt appears %d times, want 1", count)
	}
	for _, n := range rangeBlock.Nodes {
		if _, ok := n.(*ast.ExprStmt); ok {
			t.Fatal("range body statement leaked into the loop-head block")
		}
	}
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable")
	}
}

func TestReturnShortCircuits(t *testing.T) {
	g := build(t, `func f(c bool) { if c { return }; println(1) }`)
	// The then-arm's return must edge to exit and nothing may follow it.
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable")
	}
	for _, b := range g.Blocks {
		hasReturn := false
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				hasReturn = true
			}
		}
		if hasReturn {
			if len(b.Succs) != 1 || b.Succs[0] != g.Exit {
				t.Fatalf("return block succs = %v, want exit only", b.Succs)
			}
		}
	}
}

func TestSwitchFanoutAndDefault(t *testing.T) {
	// Without default: the head must also edge past every case.
	g := build(t, `func f(x int) { switch x { case 1: println(1); case 2: println(2) }; println(3) }`)
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable")
	}
	// With default and fallthrough.
	g2 := build(t, `func f(x int) {
		switch x {
		case 1:
			println(1)
			fallthrough
		case 2:
			println(2)
		default:
			println(3)
		}
	}`)
	if !reachable(g2)[g2.Exit] {
		t.Fatal("exit unreachable with default")
	}
}

func TestLabeledBreakAndContinue(t *testing.T) {
	g := build(t, `func f() {
	outer:
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if j == 1 {
					continue outer
				}
				if j == 2 {
					break outer
				}
			}
		}
		println(1)
	}`)
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable")
	}
}

func TestSelect(t *testing.T) {
	g := build(t, `func f(a, b chan int) { select { case <-a: println(1); case x := <-b: println(x) }; println(2) }`)
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable")
	}
}

func TestGoto(t *testing.T) {
	g := build(t, `func f() {
		i := 0
	again:
		i++
		if i < 3 {
			goto again
		}
	}`)
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable")
	}
	back := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index && s != g.Exit {
				back = true
			}
		}
	}
	if !back {
		t.Fatal("goto back edge missing")
	}
}

func TestFuncLitIsOpaque(t *testing.T) {
	g := build(t, `func f() { g := func() { if true { println(1) } }; g() }`)
	// The closure's if must not contribute blocks: only entry->exit here.
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("function literal body leaked into the outer graph: %v", g.Entry.Succs)
	}
}
