package cfg

import (
	"go/ast"
	"testing"
)

// These tests poke the graph builder with the control-flow shapes most
// likely to break a loop-aware client (pressurelint's carry computation):
// labeled jumps that cross loop boundaries, gotos in both directions,
// nested selects and range-over-int. Each pins both reachability and the
// Loop metadata (Head/Target/After/BackSources) the dataflow clients
// consume.

func TestLoopMetadataThreeClauseFor(t *testing.T) {
	g := build(t, `func f() { for i := 0; i < 3; i++ { println(i) }; println(9) }`)
	if len(g.Loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(g.Loops))
	}
	l := g.Loops[0]
	if _, ok := l.Stmt.(*ast.ForStmt); !ok {
		t.Fatalf("Stmt is %T, want *ast.ForStmt", l.Stmt)
	}
	if l.Head == nil || l.Target == nil || l.After == nil {
		t.Fatal("nil loop metadata")
	}
	// A three-clause for jumps back to the post statement, not the head.
	if l.Target == l.Head {
		t.Error("three-clause for should target its post block, not the head")
	}
	if srcs := l.BackSources(); len(srcs) == 0 {
		t.Error("no back sources: the carry computation would see no loop-carried facts")
	}
	if !reachable(g)[l.After] {
		t.Error("after block unreachable")
	}
}

func TestLoopMetadataNestedWithLabeledJumps(t *testing.T) {
	g := build(t, `func f() {
	outer:
		for i := 0; i < 3; i++ {
		inner:
			for j := 0; j < 3; j++ {
				switch {
				case j == 0:
					continue outer
				case j == 1:
					break inner
				case j == 2:
					break outer
				}
				println(j)
			}
			println(i)
		}
		println(9)
	}`)
	if len(g.Loops) != 2 {
		t.Fatalf("got %d loops, want 2 (outer and inner)", len(g.Loops))
	}
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable")
	}
	for i, l := range g.Loops {
		if len(l.BackSources()) == 0 {
			t.Errorf("loop %d: no back sources despite falling through its body", i)
		}
		if !reachable(g)[l.After] {
			t.Errorf("loop %d: after block unreachable", i)
		}
	}
	// continue outer must reach the outer loop's Target (its post block)
	// from a block created inside the inner loop: the outer Target has a
	// predecessor younger than the inner head.
	outer, inner := g.Loops[0], g.Loops[1]
	if outer.Head.Index > inner.Head.Index {
		outer, inner = inner, outer
	}
	crossing := false
	for _, p := range outer.Target.Preds {
		if p.Index >= inner.Head.Index {
			crossing = true
		}
	}
	if !crossing {
		t.Error("continue outer edge from inside the inner loop missing")
	}
}

func TestLabeledBreakSkipsOuterPost(t *testing.T) {
	// break outer must jump to the code after the outer loop without
	// passing through either loop's post statement.
	g := build(t, `func f() {
	outer:
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if j == 1 {
					break outer
				}
			}
		}
		println(9)
	}`)
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable")
	}
	var outer *Loop
	for _, l := range g.Loops {
		if fs, ok := l.Stmt.(*ast.ForStmt); ok {
			if init, ok := fs.Init.(*ast.AssignStmt); ok {
				if id, ok := init.Lhs[0].(*ast.Ident); ok && id.Name == "i" {
					outer = l
				}
			}
		}
	}
	if outer == nil {
		t.Fatal("outer loop not registered")
	}
	// The break edge lands on the outer After block directly: After has a
	// predecessor other than the outer head.
	direct := false
	for _, p := range outer.After.Preds {
		if p != outer.Head {
			direct = true
		}
	}
	if !direct {
		t.Error("break outer does not edge straight to the after block")
	}
}

func TestGotoForward(t *testing.T) {
	g := build(t, `func f(c bool) {
		if c {
			goto done
		}
		println(1)
	done:
		println(2)
	}`)
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable")
	}
	// Both the skipped println(1) and the label body must stay reachable
	// (the fallthrough path still exists).
	found := 0
	for _, b := range g.Blocks {
		if reachable(g)[b] {
			found += len(b.Nodes)
		}
	}
	if found < 3 { // condition, println(1), println(2); the goto is pure control flow
		t.Errorf("only %d nodes reachable; forward goto severed the fallthrough path", found)
	}
}

func TestGotoBackwardIntoLoopBody(t *testing.T) {
	// A backward goto from after the loop into its body: BackSources
	// documents this is over-approximated as a back edge — assert it is
	// at least not lost, and the fixpoint terminates (reachable exit).
	g := build(t, `func f(c bool) {
		i := 0
		for j := 0; j < 3; j++ {
		again:
			i++
		}
		if c && i < 10 {
			goto again
		}
	}`)
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable")
	}
	if len(g.Loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(g.Loops))
	}
	if len(g.Loops[0].BackSources()) == 0 {
		t.Error("loop lost its back edge")
	}
}

func TestNestedSelect(t *testing.T) {
	g := build(t, `func f(a, b, c chan int) {
		select {
		case <-a:
			select {
			case <-b:
				println(1)
			case x := <-c:
				println(x)
			default:
				println(2)
			}
		case <-b:
			println(3)
		}
		println(4)
	}`)
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable")
	}
	// Every println must sit in a reachable block: no case body may be
	// orphaned by the nested fanout.
	nodes := 0
	for _, b := range g.Blocks {
		if reachable(g)[b] {
			nodes += len(b.Nodes)
		}
	}
	if nodes < 5 {
		t.Errorf("only %d nodes reachable across the nested select", nodes)
	}
}

func TestRangeOverInt(t *testing.T) {
	g := build(t, `func f() { s := 0; for i := range 4 { s += i }; println(s) }`)
	if len(g.Loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(g.Loops))
	}
	l := g.Loops[0]
	if _, ok := l.Stmt.(*ast.RangeStmt); !ok {
		t.Fatalf("Stmt is %T, want *ast.RangeStmt", l.Stmt)
	}
	// Range loops target their own head.
	if l.Target != l.Head {
		t.Error("range loop must target its head")
	}
	if len(l.BackSources()) == 0 {
		t.Error("range-over-int body lost its back edge")
	}
	if !reachable(g)[g.Exit] || !reachable(g)[l.After] {
		t.Fatal("exit or after block unreachable")
	}
}
