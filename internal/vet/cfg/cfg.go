// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies, using only the standard library — the structural layer
// persistlint's flow-sensitive analysis runs on (see internal/vet for why
// x/tools cannot be used here).
//
// A Graph is a set of basic blocks. Each block carries the *atomic* nodes
// executed when control passes through it — simple statements plus the
// condition/tag expressions of the control statement that ends it — in
// source order. Bodies of nested control statements live in their own
// blocks; a *ast.RangeStmt appears as its own node in the loop-head block
// (clients must look only at its X/Key/Value, never its Body). Function
// literals are opaque: they are carried as ordinary nodes of the block
// that evaluates them, and their bodies are not traversed — a client
// analyzing closures builds a separate Graph per FuncLit.
//
// The builder is syntactic and over-approximate: infeasible paths (e.g. a
// condition that is constant-false) are kept, panics are ignored, and a
// `select` without default still gets an exit edge. That is the right
// trade-off for a may/must dataflow client — extra edges only ever make
// its verdicts more conservative.
package cfg

import (
	"go/ast"
	"go/token"
)

// A Block is one straight-line run of atomic nodes.
type Block struct {
	// Index is the block's position in Graph.Blocks (creation order, which
	// is also a stable source-ish order for deterministic iteration).
	Index int
	// Nodes are the atomic statements and control expressions executed in
	// this block, in source order.
	Nodes []ast.Node
	// Succs and Preds are the flow edges.
	Succs []*Block
	Preds []*Block
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	// Loops records every for/range statement's structure, in source
	// order, for clients that reason about back edges (pressurelint's
	// loop-carry widening). Nesting is recoverable from Stmt positions.
	Loops []*Loop
}

// A Loop is one for/range statement's skeleton in the graph.
type Loop struct {
	// Stmt is the *ast.ForStmt or *ast.RangeStmt.
	Stmt ast.Stmt
	// Head is the block holding the loop condition (or the RangeStmt
	// node); every iteration passes through it.
	Head *Block
	// Target is the block a completed iteration jumps back to: Head
	// itself, or the post-statement block of a three-clause for.
	Target *Block
	// After is the block control reaches when the loop exits normally.
	After *Block
}

// BackSources returns the blocks whose edge into Target closes the loop —
// the points where one iteration's dataflow fact is the next iteration's
// input. Identified by block index: body blocks are created after Head, so
// any predecessor of Target younger than Head reached it from inside the
// loop. A goto jumping into the loop from later code is misclassified as a
// back edge, which only over-approximates the carried set (the safe
// direction for a may analysis).
func (l *Loop) BackSources() []*Block {
	var out []*Block
	for _, p := range l.Target.Preds {
		if p.Index > l.Head.Index || l.Target != l.Head {
			out = append(out, p)
		}
	}
	return out
}

// New builds the control-flow graph of body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{graph: &Graph{}, labels: make(map[string]*Block)}
	b.graph.Entry = b.newBlock()
	b.graph.Exit = b.newBlock()
	b.cur = b.graph.Entry
	b.stmtList(body.List)
	b.edge(b.cur, b.graph.Exit)
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.edge(g.from, target)
		}
		// An unresolved goto (syntactically impossible in type-checked
		// code) just dead-ends, which is conservative for forward flow.
	}
	return b.graph
}

// frame tracks the jump targets a break/continue/fallthrough resolves to.
type frame struct {
	label      string // loop/switch label, "" if none
	breakTo    *Block
	continueTo *Block // nil for switch/select frames
	fallTo     *Block // next case block, switch frames only
}

type pendingGoto struct {
	label string
	from  *Block
}

type builder struct {
	graph        *Graph
	cur          *Block
	frames       []*frame
	labels       map[string]*Block
	gotos        []pendingGoto
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.graph.Blocks)}
	b.graph.Blocks = append(b.graph.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// takeLabel consumes the label of an enclosing LabeledStmt, if any.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// dead parks the builder on an unreachable block (after return/break/...).
func (b *builder) dead() {
	b.cur = b.newBlock()
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.newBlock()
		b.edge(b.cur, lb)
		b.cur = lb
		b.labels[s.Label.Name] = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		after := b.newBlock()
		if s.Cond != nil {
			b.edge(head, after) // condition false
		}
		backTo := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			backTo = post
		}
		body := b.newBlock()
		b.edge(head, body)
		b.graph.Loops = append(b.graph.Loops, &Loop{Stmt: s, Head: head, Target: backTo, After: after})
		b.frames = append(b.frames, &frame{label: label, breakTo: after, continueTo: backTo})
		b.cur = body
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(b.cur, backTo)
		if post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.edge(b.cur, head)
		}
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.edge(b.cur, head)
		head.Nodes = append(head.Nodes, s) // clients read X/Key/Value only
		after := b.newBlock()
		b.edge(head, after) // range exhausted (possibly immediately)
		body := b.newBlock()
		b.edge(head, body)
		b.graph.Loops = append(b.graph.Loops, &Loop{Stmt: s, Head: head, Target: head, After: after})
		b.frames = append(b.frames, &frame{label: label, breakTo: after, continueTo: head})
		b.cur = body
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt:
		b.caseSwitch(s, s.Init, s.Tag, s.Body)

	case *ast.TypeSwitchStmt:
		b.caseSwitch(s, s.Init, nil, s.Body)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		after := b.newBlock()
		b.frames = append(b.frames, &frame{label: label, breakTo: after})
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, after)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.graph.Exit)
		b.dead()

	case *ast.BranchStmt:
		b.branch(s)

	default:
		// Simple statements: assignments, expression statements, declarations,
		// inc/dec, send, go, defer, empty. Atomic nodes of the current block.
		if s != nil {
			if _, empty := s.(*ast.EmptyStmt); !empty {
				b.add(s)
			}
		}
	}
}

// caseSwitch builds both expression and type switches; assign is the
// TypeSwitchStmt's Assign statement carried as a head node via init.
func (b *builder) caseSwitch(s ast.Stmt, init ast.Stmt, tag ast.Expr, body *ast.BlockStmt) {
	label := b.takeLabel()
	if init != nil {
		b.stmt(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if ts, ok := s.(*ast.TypeSwitchStmt); ok {
		b.add(ts.Assign)
	}
	head := b.cur
	after := b.newBlock()
	clauses := body.List
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, clause := range clauses {
		cc := clause.(*ast.CaseClause)
		// Case expressions are evaluated while selecting a clause: they
		// belong to the head block.
		for _, e := range cc.List {
			head.Nodes = append(head.Nodes, e)
		}
		if cc.List == nil {
			hasDefault = true
		}
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
	}
	if !hasDefault {
		b.edge(head, after)
	}
	fr := &frame{label: label, breakTo: after}
	b.frames = append(b.frames, fr)
	for i, clause := range clauses {
		cc := clause.(*ast.CaseClause)
		if i+1 < len(blocks) {
			fr.fallTo = blocks[i+1]
		} else {
			fr.fallTo = after
		}
		b.cur = blocks[i]
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func (b *builder) branch(s *ast.BranchStmt) {
	name := ""
	if s.Label != nil {
		name = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if name == "" || f.label == name {
				b.edge(b.cur, f.breakTo)
				break
			}
		}
	case token.CONTINUE:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.continueTo != nil && (name == "" || f.label == name) {
				b.edge(b.cur, f.continueTo)
				break
			}
		}
	case token.GOTO:
		b.gotos = append(b.gotos, pendingGoto{label: name, from: b.cur})
	case token.FALLTHROUGH:
		for i := len(b.frames) - 1; i >= 0; i-- {
			if f := b.frames[i]; f.fallTo != nil {
				b.edge(b.cur, f.fallTo)
				break
			}
		}
	}
	b.dead()
}
