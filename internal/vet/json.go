package vet

import (
	"encoding/json"
	"io"
)

// jsonDiagnostic is the stable machine-readable form of one finding.
// Exactly these five keys, always all present (plus "also" only when
// several analyzers reported the identical finding), one object per line —
// the contract `bbbvet -json` consumers (CI annotations, dashboards)
// parse with a line-oriented reader.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Ignored  bool   `json:"ignored"`
	// Also lists other analyzers that reported the identical finding;
	// omitted when empty so existing line-oriented consumers are
	// unaffected.
	Also []string `json:"also,omitempty"`
}

// WriteJSON writes diags as JSON lines. Pass RunAll output to include
// suppressed findings (ignored:true); Run output contains none.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		jd := jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Ignored:  d.Ignored,
			Also:     d.Also,
		}
		if err := enc.Encode(jd); err != nil {
			return err
		}
	}
	return nil
}
