package vet

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"
)

// TestSARIFRoundTrip re-parses the emitted log with a generic decoder and
// checks the structural contract consumers rely on: schema/version, one
// run, a rule per analyzer, one result per diagnostic with the right
// rule binding, location and suppression status.
func TestSARIFRoundTrip(t *testing.T) {
	analyzers := []*Analyzer{
		{Name: "locklint", Doc: "finds unguarded state\n\nlong form"},
		{Name: "detlint", Doc: "finds nondeterminism"},
	}
	diags := []Diagnostic{
		{
			Analyzer: "locklint",
			Pos:      token.Position{Filename: "/src/repo/internal/cache/cache.go", Line: 42, Column: 7},
			Message:  "lineLock state touched outside scope",
		},
		{
			Analyzer: "detlint",
			Pos:      token.Position{Filename: "/src/repo/internal/engine/engine.go", Line: 9, Column: 2},
			Message:  "wall-clock read in simulator package",
			Ignored:  true,
		},
		{
			Analyzer: "locklint",
			Pos:      token.Position{Filename: "/src/repo/internal/cache/cache.go", Line: 50, Column: 1},
			Message:  "shared finding",
			Also:     []string{"detlint"},
		},
	}

	var buf bytes.Buffer
	if err := WriteSARIF(&buf, diags, analyzers, "/src/repo"); err != nil {
		t.Fatal(err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				Suppressions []struct {
					Kind string `json:"kind"`
				} `json:"suppressions"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("emitted SARIF does not re-parse: %v", err)
	}

	if log.Version != "2.1.0" || log.Schema == "" {
		t.Errorf("version=%q schema=%q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "bbbvet" {
		t.Errorf("driver name %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(analyzers) {
		t.Fatalf("got %d rules, want %d", len(run.Tool.Driver.Rules), len(analyzers))
	}
	if got := run.Tool.Driver.Rules[0].ShortDescription.Text; got != "finds unguarded state" {
		t.Errorf("rule doc not truncated to first line: %q", got)
	}
	if len(run.Results) != len(diags) {
		t.Fatalf("got %d results, want %d", len(run.Results), len(diags))
	}

	first := run.Results[0]
	if first.RuleID != "locklint" || first.Level != "warning" {
		t.Errorf("result 0: ruleId=%q level=%q", first.RuleID, first.Level)
	}
	loc := first.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/cache/cache.go" {
		t.Errorf("path not made root-relative: %q", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 42 {
		t.Errorf("startLine = %d", loc.Region.StartLine)
	}
	if len(first.Suppressions) != 0 {
		t.Error("unsuppressed finding carries suppressions")
	}

	second := run.Results[1]
	if len(second.Suppressions) != 1 || second.Suppressions[0].Kind != "inSource" {
		t.Errorf("ignored finding suppressions = %+v", second.Suppressions)
	}

	third := run.Results[2]
	if want := "shared finding (also reported by detlint)"; third.Message.Text != want {
		t.Errorf("deduped message = %q, want %q", third.Message.Text, want)
	}
}

// TestSARIFEmpty pins that a clean run still produces a valid log with
// empty (not null) results, which strict consumers require.
func TestSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, nil, []*Analyzer{{Name: "locklint", Doc: "d"}}, ""); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"results": null`)) {
		t.Error("results serialized as null, want []")
	}
	var generic map[string]any
	if err := json.Unmarshal(buf.Bytes(), &generic); err != nil {
		t.Fatal(err)
	}
}

// TestDedupe pins the RunAll duplicate-folding contract: identical
// file/line/message findings from different analyzers collapse into one
// with Also recording the rest, and the merge is Ignored only when every
// copy was suppressed.
func TestDedupe(t *testing.T) {
	pos := token.Position{Filename: "a.go", Line: 3}
	got := dedupe([]Diagnostic{
		{Analyzer: "locklint", Pos: pos, Message: "m"},
		{Analyzer: "detlint", Pos: pos, Message: "m", Ignored: true},
		{Analyzer: "detlint", Pos: pos, Message: "other"},
		{Analyzer: "statlint", Pos: pos, Message: "m", Ignored: true},
	})
	if len(got) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %+v", len(got), got)
	}
	m := got[0]
	if m.Analyzer != "locklint" || len(m.Also) != 2 || m.Also[0] != "detlint" || m.Also[1] != "statlint" {
		t.Errorf("merged = %+v", m)
	}
	if m.Ignored {
		t.Error("merge of one live + two ignored copies must stay live")
	}

	allIgnored := dedupe([]Diagnostic{
		{Analyzer: "locklint", Pos: pos, Message: "m", Ignored: true},
		{Analyzer: "detlint", Pos: pos, Message: "m", Ignored: true},
	})
	if len(allIgnored) != 1 || !allIgnored[0].Ignored {
		t.Errorf("all-suppressed merge = %+v", allIgnored)
	}
}
