package vet_test

import (
	"fmt"
	"go/ast"
	"strings"
	"testing"

	"bbb/internal/vet"
)

// callReporter builds an analyzer that flags every call of the named
// package-level function — just enough signal to probe suppression.
func callReporter(analyzer, fname string) *vet.Analyzer {
	return &vet.Analyzer{
		Name: analyzer,
		Run: func(p *vet.Pass) error {
			for _, f := range p.Files() {
				ast.Inspect(f, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == fname {
							p.Reportf(call.Pos(), "call to %s", fname)
						}
					}
					return true
				})
			}
			return nil
		},
	}
}

func TestIgnoreEdgeCases(t *testing.T) {
	pkg, fset, err := vet.LoadDir("testdata/ignoreedge")
	if err != nil {
		t.Fatal(err)
	}
	analyzers := []*vet.Analyzer{
		callReporter("testa", "bad"),
		callReporter("testb", "alsoBad"),
	}
	all, err := vet.RunAll([]*vet.Package{pkg}, fset, analyzers)
	if err != nil {
		t.Fatal(err)
	}

	var got []string
	for _, d := range all {
		if !strings.HasSuffix(d.Pos.Filename, "ignoreedge.go") {
			t.Fatalf("diagnostic in unexpected file: %s", d)
		}
		got = append(got, fmt.Sprintf("%d:%s:%v", d.Pos.Line, d.Analyzer, d.Ignored))
	}
	want := []string{
		"10:testa:true",   // trailing line-form directive
		"14:testa:true",   // trailing block-form directive
		"18:testa:true",   // two block directives on one line...
		"18:testb:true",   // ...suppress two analyzers
		"23:testb:true",   // directive above a multi-line statement
		"24:testa:true",   // trailing directive inside that statement
		"29:testa:false",  // no directive at all
		"33:bbbvet:false", // line-form directive missing its reason
		"33:testa:false",  // ...which therefore suppresses nothing
		"36:bbbvet:false", // block-form directive missing everything
		"38:testa:false",  // ...likewise suppresses nothing
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("RunAll diagnostics:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}

	// Run must be exactly the non-ignored subset.
	kept, err := vet.Run([]*vet.Package{pkg}, fset, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	var gotKept []string
	for _, d := range kept {
		gotKept = append(gotKept, fmt.Sprintf("%d:%s:%v", d.Pos.Line, d.Analyzer, d.Ignored))
	}
	var wantKept []string
	for _, w := range want {
		if strings.HasSuffix(w, ":false") {
			wantKept = append(wantKept, w)
		}
	}
	if strings.Join(gotKept, "\n") != strings.Join(wantKept, "\n") {
		t.Errorf("Run diagnostics:\n%s\nwant:\n%s", strings.Join(gotKept, "\n"), strings.Join(wantKept, "\n"))
	}
}
