package counterfix

import "bbb/internal/stats"

// The histogram/gauge registry shares the stringly-typed namespace with
// Counters; statlint audits Observe/Sample as writes and Hist/Gauge as
// reads with the same three diagnostics.

type meter struct {
	m *stats.Metrics
}

func (mt *meter) observe() {
	mt.m.Observe("hist.documented", 1)  // in the Glossary: fine
	mt.m.Observe("hist.dead", 2)        // want "counter .hist.dead. is incremented but never read and not documented"
	mt.m.Sample("gauge.read", 10, 0, 3) // Gauge below: fine
}

// fold is the post-run service fold: MergeHist and MergeWindowed are write
// sites exactly like Observe/Sample.
func (mt *meter) fold(h *stats.Histogram, w *stats.Windowed) {
	mt.m.MergeHist("hist.folded", h)    // Hist below: fine
	mt.m.MergeWindowed("win.read", w)   // Windowed below: fine
	mt.m.MergeWindowed("win.dead", w)   // want "counter .win.dead. is incremented but never read and not documented"
	mt.m.MergeWindowed("win.listed", w) // in the Glossary: fine
}

func (mt *meter) view() int {
	if mt.m.Gauge("gauge.read") != nil {
		return 1
	}
	if mt.m.Hist("hist.typo") != nil { // want "counter .hist.typo. is read but never incremented"
		return 2
	}
	if mt.m.Hist("hist.folded") != nil {
		return 3
	}
	if mt.m.Windowed("win.read") != nil {
		return 4
	}
	if mt.m.Windowed("win.typo") != nil { // want "counter .win.typo. is read but never incremented"
		return 5
	}
	return 0
}
