// Package counterfix is the statlint fixture: a self-contained counter
// namespace with its own Glossary registry, exercising all three
// diagnostics (dead counter, read-side typo, stale registration) plus the
// suffix matching for prefixed families.
package counterfix

import "bbb/internal/stats"

// Glossary registers this fixture's counters; statlint treats any
// package-level Glossary map literal as a registry.
var Glossary = map[string]string{
	"hist.documented": "documented and observed via stats.Metrics: fine",
	"ops.documented":  "documented and incremented: consumed via the registry",
	"ops.stale":       "nothing increments this name", // want "stats.Glossary documents .ops.stale. but nothing increments it"
	"win.listed":      "documented and folded via MergeWindowed: fine",
}

type engine struct {
	c *stats.Counters
}

func (e *engine) prefixed(suffix string) string { return "stage." + suffix }

func (e *engine) work() {
	e.c.Inc("ops.documented")   // in the Glossary: fine
	e.c.Inc("ops.read")         // Get below: fine
	e.c.Inc("ops.dead")         // want "counter .ops.dead. is incremented but never read and not documented"
	e.c.Add("ops.batch", 3)     // Get below: fine
	e.c.Inc(e.prefixed("done")) // nested literal: satisfies the stage.done read
}

// hot caches increment handles; the Lazy registration is the write site.
func (e *engine) hot() {
	lz := e.c.Lazy("ops.lazy") // Get below: fine
	lz.Inc()
	dead := e.c.Lazy("ops.lazydead") // want "counter .ops.lazydead. is incremented but never read and not documented"
	dead.Inc()
	pref := e.c.Lazy(e.prefixed("lazysuffix")) // nested literal: satisfies the stage.lazysuffix read
	pref.Inc()
}

func (e *engine) report() uint64 {
	total := e.c.Get("ops.read") + e.c.Get("ops.batch") + e.c.Get("stage.done")
	total += e.c.Get("ops.lazy") + e.c.Get("stage.lazysuffix")
	return total + e.c.Get("ops.typo") // want "counter .ops.typo. is read but never incremented"
}
