// Package statlint cross-checks the module's stats.Counters usage. The
// counter namespace is stringly typed — `Stats.Inc("l1.load_hits")` — so a
// typo in either an increment or a read silently produces a counter that
// is always zero, and results tables quietly report garbage. statlint
// makes the namespace behave as if it were declared:
//
//   - The registry is stats.Glossary, the package-level
//     `map[string]string` of counter name -> meaning. Every counter the
//     simulator increments must either be documented there or be read
//     back explicitly with Get; a counter that is neither is dead weight.
//   - A Get of a name that nothing increments is reported — that is the
//     classic read-side typo ("bbpb.forced_drain" vs "bbpb.forced_drains").
//   - A Glossary entry whose name nothing increments is reported — a stale
//     or misspelled registration.
//
// Hot paths increment through cached handles (`h := Stats.Lazy(name)`,
// then `h.Inc()`); the Lazy registration carries the name, so it counts as
// the increment site. Prefixed counter families built through helpers (the
// memory controllers emit "dram.writes"/"nvmm.writes" via
// c.counter("writes")) are matched by suffix: an increment of the literal
// "writes" nested inside the Inc/Add/Lazy argument satisfies reads and
// registrations of any "<prefix>.writes".
//
// The histogram/gauge/windowed registry (stats.Metrics) shares the
// namespace and the failure mode, so it is audited the same way:
// Observe/Sample/MergeHist/MergeWindowed are write sites (like Inc/Add)
// and Hist/Gauge/Windowed are read sites (like Get).
//
// Reads in _test.go files count (a counter asserted by a test is consumed);
// test sources are scanned syntactically for Get/Hist/Gauge calls.
package statlint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"

	"bbb/internal/vet"
)

// Analyzer is the statlint pass.
var Analyzer = &vet.Analyzer{
	Name: "statlint",
	Doc: `	statlint: dead / misspelled stats counters and metrics.
	Every incremented counter (Counters.Inc/Add/Lazy) and observed metric
	(Metrics.Observe/Sample/MergeHist/MergeWindowed) must be documented in
	stats.Glossary or read back (Get/Hist/Gauge/Windowed); every read and
	every Glossary entry must name one some code writes.`,
	Run:    run,
	Finish: finish,
}

const statsPkgPath = "bbb/internal/stats"

// site is one recorded counter-name occurrence.
type site struct {
	name string
	pos  token.Pos
	pass *vet.Pass
}

// facts is the per-package state handed from Run to Finish.
type facts struct {
	incs     []site // exact names passed to Inc/Add
	incSufs  []site // literal fragments inside computed Inc/Add arguments
	gets     []site // exact names passed to Get
	glossary []site // keys of a package-level Glossary map literal
	dynamic  bool   // an Inc/Add argument with no literal at all was seen
}

func run(pass *vet.Pass) error {
	if strings.HasPrefix(pass.Pkg.ImportPath, "bbb/internal/vet") {
		return nil
	}
	fx := &facts{}
	pass.Facts = fx
	ownStats := pass.Pkg.ImportPath == statsPkgPath
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if !ownStats { // the stats package's own plumbing is generic
					recordCall(info, n, fx, pass)
				}
			case *ast.ValueSpec:
				recordGlossary(n, fx, pass)
			}
			return true
		})
	}
	// Reads from this package's test files (syntactic scan).
	for _, s := range testFileGets(pass) {
		fx.gets = append(fx.gets, s)
	}
	return nil
}

func recordCall(info *types.Info, call *ast.CallExpr, fx *facts, pass *vet.Pass) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	var write, read bool
	switch {
	case isStatsMethod(fn, "Counters"):
		// Lazy is the hot-path increment form: the handle returned by
		// Counters.Lazy(name) is what Inc/Add fires on later, so the
		// registration site is where the name is written.
		write = fn.Name() == "Inc" || fn.Name() == "Add" || fn.Name() == "Lazy"
		read = fn.Name() == "Get"
	case isStatsMethod(fn, "Metrics"):
		// The histogram/gauge/windowed registry shares the stringly-typed
		// namespace: Observe/Sample/MergeHist/MergeWindowed write a metric,
		// Hist/Gauge/Windowed read it back.
		write = fn.Name() == "Observe" || fn.Name() == "Sample" ||
			fn.Name() == "MergeHist" || fn.Name() == "MergeWindowed"
		read = fn.Name() == "Hist" || fn.Name() == "Gauge" || fn.Name() == "Windowed"
	}
	arg := call.Args[0]
	switch {
	case write:
		if lit := stringLit(arg); lit != "" {
			fx.incs = append(fx.incs, site{lit, arg.Pos(), pass})
			return
		}
		sufs := literalsIn(arg)
		if len(sufs) == 0 {
			fx.dynamic = true
			return
		}
		for _, s := range sufs {
			fx.incSufs = append(fx.incSufs, site{s, arg.Pos(), pass})
		}
	case read:
		if lit := stringLit(arg); lit != "" {
			fx.gets = append(fx.gets, site{lit, arg.Pos(), pass})
		}
	}
}

// recordGlossary collects the keys of `var Glossary = map[string]string{...}`.
func recordGlossary(spec *ast.ValueSpec, fx *facts, pass *vet.Pass) {
	for i, name := range spec.Names {
		if name.Name != "Glossary" || i >= len(spec.Values) {
			continue
		}
		cl, ok := spec.Values[i].(*ast.CompositeLit)
		if !ok {
			continue
		}
		for _, elt := range cl.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if key := stringLit(kv.Key); key != "" {
				fx.glossary = append(fx.glossary, site{key, kv.Key.Pos(), pass})
			}
		}
	}
}

func isStatsMethod(fn *types.Func, typeName string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == statsPkgPath && named.Obj().Name() == typeName
}

func finish(all []*vet.Pass) []vet.Diagnostic {
	var merged facts
	dynamic := false
	for _, p := range all {
		fx, ok := p.Facts.(*facts)
		if !ok {
			continue
		}
		merged.incs = append(merged.incs, fx.incs...)
		merged.incSufs = append(merged.incSufs, fx.incSufs...)
		merged.gets = append(merged.gets, fx.gets...)
		merged.glossary = append(merged.glossary, fx.glossary...)
		dynamic = dynamic || fx.dynamic
	}

	incremented := func(name string) bool {
		for _, s := range merged.incs {
			if s.name == name {
				return true
			}
		}
		for _, s := range merged.incSufs {
			if s.name == name || strings.HasSuffix(name, "."+s.name) {
				return true
			}
		}
		return false
	}
	read := make(map[string]bool)
	for _, s := range merged.gets {
		read[s.name] = true
	}
	inGlossary := func(name string) bool {
		for _, g := range merged.glossary {
			if g.name == name {
				return true
			}
		}
		return false
	}

	var diags []vet.Diagnostic
	report := func(s site, format string, args ...any) {
		diags = append(diags, vet.Diagnostic{
			Analyzer: "statlint",
			Pos:      s.pass.Fset.Position(s.pos),
			Message:  fmt.Sprintf(format, args...),
		})
	}

	if !dynamic {
		seen := map[string]bool{}
		for _, s := range merged.gets {
			if s.pos == token.NoPos || seen[s.name] || incremented(s.name) {
				continue
			}
			seen[s.name] = true
			report(s, "counter %q is read but never incremented anywhere in the module (typo?)", s.name)
		}
	}
	seenInc := map[string]bool{}
	for _, s := range merged.incs {
		if seenInc[s.name] || read[s.name] || inGlossary(s.name) {
			continue
		}
		seenInc[s.name] = true
		report(s, "counter %q is incremented but never read and not documented in stats.Glossary (dead counter?)", s.name)
	}
	seenGl := map[string]bool{}
	for _, g := range merged.glossary {
		if seenGl[g.name] || incremented(g.name) {
			continue
		}
		seenGl[g.name] = true
		report(g, "stats.Glossary documents %q but nothing increments it (stale entry?)", g.name)
	}
	return diags
}

// testFileGets scans the package's _test.go files syntactically for
// `x.Get("name")`, `x.Hist("name")` and `x.Gauge("name")` calls. Counters
// and metrics asserted by tests count as consumed, but test reads are
// recorded with NoPos so they are never themselves flagged as read-side
// typos (tests legitimately Get never-touched names to assert zero values).
func testFileGets(pass *vet.Pass) []site {
	files, err := filepath.Glob(filepath.Join(pass.Pkg.Dir, "*_test.go"))
	if err != nil {
		return nil
	}
	var out []site
	fset := token.NewFileSet()
	for _, file := range files {
		f, err := parser.ParseFile(fset, file, nil, 0)
		if err != nil {
			continue // a broken test file is the compiler's problem
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Get" && sel.Sel.Name != "Hist" &&
				sel.Sel.Name != "Gauge" && sel.Sel.Name != "Windowed") {
				return true
			}
			if lit := stringLit(call.Args[0]); lit != "" {
				out = append(out, site{lit, token.NoPos, pass})
			}
			return true
		})
	}
	return out
}

// stringLit returns the value of a string literal expression, or "".
func stringLit(e ast.Expr) string {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return ""
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return ""
	}
	return s
}

// literalsIn collects every string literal nested in e (helper calls,
// concatenations), used as suffix patterns for prefixed counter families.
func literalsIn(e ast.Expr) []string {
	var out []string
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(ast.Expr); ok {
			if s := stringLit(lit); s != "" {
				out = append(out, s)
			}
		}
		return true
	})
	return out
}
