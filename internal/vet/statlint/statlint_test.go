package statlint_test

import (
	"testing"

	"bbb/internal/vet"
	"bbb/internal/vet/statlint"
)

func TestFixture(t *testing.T) {
	vet.RunFixture(t, statlint.Analyzer, "testdata/counterfix")
}
