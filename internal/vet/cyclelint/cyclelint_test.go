package cyclelint_test

import (
	"testing"

	"bbb/internal/vet"
	"bbb/internal/vet/cyclelint"
)

func TestFixture(t *testing.T) {
	vet.RunFixture(t, cyclelint.Analyzer, "testdata/cycles")
}
