// Package cyclelint flags arithmetic that mixes engine.Cycle values with
// raw typed integers outside internal/engine.
//
// engine.Cycle is an alias of uint64, so the compiler happily lets a cycle
// count flow into (or out of) any uint64 — which is exactly how latency
// bookkeeping bugs hide: a byte count added to a deadline, a cycle delta
// stored into a counter of events. The contract this pass enforces is the
// same one time.Duration gets from the type system: crossing between
// cycles and plain integers must be an explicit conversion at the boundary,
// not an implicit mix inside an expression.
//
// Reported:
//   - binary expressions (arithmetic or comparison) with a Cycle operand on
//     one side and a typed non-Cycle integer on the other;
//   - calls passing a Cycle value to a parameter declared as a plain
//     integer type, or a typed plain integer to a Cycle parameter.
//
// Untyped constants are always fine (`lat + 2` stays idiomatic), and
// explicit conversions (`uint64(lat)`) are the sanctioned crossing.
package cyclelint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"bbb/internal/vet"
)

// Analyzer is the cyclelint pass.
var Analyzer = &vet.Analyzer{
	Name: "cyclelint",
	Doc: `	cyclelint: engine.Cycle must not mix implicitly with raw integers.
	Cycle counts cross into plain integer types (and back) only through
	explicit conversions, outside internal/engine.`,
	Run: run,
}

const enginePath = "bbb/internal/engine"

func run(pass *vet.Pass) error {
	path := pass.Pkg.ImportPath
	if path == enginePath || strings.HasPrefix(path, "bbb/internal/vet") {
		return nil
	}
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkBinary(pass, info, n)
			case *ast.CallExpr:
				checkCall(pass, info, n)
			}
			return true
		})
	}
	return nil
}

func checkBinary(pass *vet.Pass, info *types.Info, n *ast.BinaryExpr) {
	switch n.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
	default:
		return
	}
	x, y := info.Types[n.X], info.Types[n.Y]
	switch {
	case isCycle(x.Type) && isRawInt(y):
		pass.Reportf(n.Y.Pos(), "engine.Cycle mixed with %s in %q expression; convert explicitly at the boundary", y.Type, n.Op)
	case isCycle(y.Type) && isRawInt(x):
		pass.Reportf(n.X.Pos(), "engine.Cycle mixed with %s in %q expression; convert explicitly at the boundary", x.Type, n.Op)
	}
}

func checkCall(pass *vet.Pass, info *types.Info, call *ast.CallExpr) {
	if info.Types[call.Fun].IsType() {
		return // a conversion, the sanctioned crossing
	}
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if i >= sig.Params().Len() {
			break // variadic tail; spread args are interface-ish in practice
		}
		param := sig.Params().At(i).Type()
		if sig.Variadic() && i == sig.Params().Len()-1 {
			break
		}
		at := info.Types[arg]
		switch {
		case isCycle(at.Type) && !isCycle(param) && isIntType(param) && !isUntyped(at):
			pass.Reportf(arg.Pos(), "engine.Cycle argument passed to %s parameter %q; convert explicitly", param, sig.Params().At(i).Name())
		case isCycle(param) && isRawInt(at):
			pass.Reportf(arg.Pos(), "%s argument passed to engine.Cycle parameter %q; convert explicitly", at.Type, sig.Params().At(i).Name())
		}
	}
}

// isCycle reports whether t is (an alias chain ending at) engine.Cycle.
func isCycle(t types.Type) bool {
	for {
		a, ok := t.(*types.Alias)
		if !ok {
			return false
		}
		obj := a.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == enginePath && obj.Name() == "Cycle" {
			return true
		}
		t = a.Rhs()
	}
}

// isRawInt reports whether tv is a typed integer that is not engine.Cycle —
// the kind of operand that must not meet a Cycle implicitly.
func isRawInt(tv types.TypeAndValue) bool {
	if tv.Type == nil || isUntyped(tv) || isCycle(tv.Type) {
		return false
	}
	return isIntType(tv.Type)
}

func isIntType(t types.Type) bool {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isUntyped(tv types.TypeAndValue) bool {
	b, ok := tv.Type.(*types.Basic)
	return ok && b.Info()&types.IsUntyped != 0 || tv.Value != nil
}
