// Package cycles is the cyclelint fixture: every mixing of engine.Cycle
// with raw typed integers below is either flagged (want) or sanctioned.
package cycles

import "bbb/internal/engine"

func deadline(now, lat engine.Cycle) engine.Cycle {
	return now + lat // both Cycle: fine
}

func arithmetic(now engine.Cycle, bytes uint64, n int) {
	_ = now + bytes // want "engine.Cycle mixed with uint64"
	_ = bytes < now // want "engine.Cycle mixed with uint64"
	_ = now * 2     // untyped constant: fine
	_ = now + engine.Cycle(bytes)
	_ = uint64(now) + bytes
	_ = n
}

func takesInt(n uint64) uint64           { return n }
func takesCycle(c engine.Cycle) uint64   { return uint64(c) }
func variadic(vs ...interface{}) int     { return len(vs) }
func takesNamed(label string, n int) int { return n + len(label) }

func calls(now engine.Cycle, bytes uint64) {
	takesInt(now)     // want "engine.Cycle argument passed to uint64 parameter"
	takesCycle(bytes) // want "uint64 argument passed to engine.Cycle parameter"
	takesInt(uint64(now))
	takesCycle(engine.Cycle(bytes))
	takesCycle(5) // untyped constant: fine
	variadic(now, bytes)
	takesNamed("x", 3)
}

func justified(now engine.Cycle, n uint64) {
	//bbbvet:ignore cyclelint fixture exercises suppression of a known mix
	_ = now + n
}
