package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"bbb/internal/vet/cfg"
)

// The test analysis tracks whether the variable "x" has been assigned:
// a three-point lattice unreached < {unset, set} < maybe, joined pointwise.
type defState uint8

const (
	unreached defState = iota
	unset
	set
	maybe // set on some paths only
)

type defFact struct{ x defState }

type defProblem struct{}

func (defProblem) Entry() defFact  { return defFact{x: unset} }
func (defProblem) Bottom() defFact { return defFact{} }
func (defProblem) Clone(f defFact) defFact {
	return f
}
func (defProblem) Equal(a, b defFact) bool { return a == b }
func (defProblem) Join(a, b defFact) defFact {
	switch {
	case a.x == unreached:
		return b
	case b.x == unreached:
		return a
	case a.x == b.x:
		return a
	default:
		return defFact{x: maybe}
	}
}
func (defProblem) Transfer(n ast.Node, f defFact) defFact {
	if f.x == unreached {
		return f
	}
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return f
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "x" {
			f.x = set
		}
	}
	return f
}

// analyze builds f's CFG from src and returns the fact at the exit block.
func analyze(t *testing.T, src string) defFact {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var g *cfg.Graph
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			g = cfg.New(fd.Body)
		}
	}
	if g == nil {
		t.Fatal("no function f")
	}
	in := Forward[defFact](g, defProblem{})
	return in[g.Exit]
}

func TestStraightLineSets(t *testing.T) {
	if got := analyze(t, `func f() { x := 1; _ = x }`); got.x != set {
		t.Fatalf("exit fact = %v, want set", got.x)
	}
}

func TestBranchJoinIsMaybe(t *testing.T) {
	// x assigned on one arm only (the var decl is a DeclStmt, which the
	// transfer ignores): the join must degrade to maybe.
	got := analyze(t, `func f(c bool) { var x int; if c { x = 1 }; _ = x }`)
	if got.x != maybe {
		t.Fatalf("exit fact = %v, want maybe", got.x)
	}
}

func TestBothArmsSet(t *testing.T) {
	got := analyze(t, `func f(c bool) { var x int; if c { x = 1 } else { x = 2 }; _ = x }`)
	if got.x != set {
		t.Fatalf("exit fact = %v, want set", got.x)
	}
}

func TestLoopFixpoint(t *testing.T) {
	// The loop body may run zero times: maybe at exit.
	got := analyze(t, `func f(n int) { var x int; for i := 0; i < n; i++ { x = i }; _ = x }`)
	if got.x != maybe {
		t.Fatalf("exit fact = %v, want maybe", got.x)
	}
}

func TestAssignBeforeLoopStaysSet(t *testing.T) {
	got := analyze(t, `func f(n int) { x := 0; for i := 0; i < n; i++ { x = i }; _ = x }`)
	if got.x != set {
		t.Fatalf("exit fact = %v, want set", got.x)
	}
}

func TestUnreachableCodeStaysBottom(t *testing.T) {
	// The assignment after return is dead; exit must still be `set` from
	// the reachable path, not polluted by the dead block.
	got := analyze(t, `func f() { x := 1; _ = x; return; x = 2; _ = x }`)
	if got.x != set {
		t.Fatalf("exit fact = %v, want set", got.x)
	}
}

func TestSwitchAllCasesSet(t *testing.T) {
	got := analyze(t, `func f(n int) {
		var x int
		switch n {
		case 1:
			x = 1
		default:
			x = 9
		}
		_ = x
	}`)
	if got.x != set {
		t.Fatalf("exit fact = %v, want set", got.x)
	}
}

func TestSwitchMissingDefaultIsMaybe(t *testing.T) {
	got := analyze(t, `func f(n int) {
		var x int
		switch n {
		case 1:
			x = 1
		}
		_ = x
	}`)
	if got.x != maybe {
		t.Fatalf("exit fact = %v, want maybe", got.x)
	}
}
