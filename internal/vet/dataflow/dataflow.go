// Package dataflow is a generic forward-dataflow fixpoint engine over the
// control-flow graphs of internal/vet/cfg. A client describes its analysis
// as a Problem — an entry fact, a join, and a per-node transfer function —
// and Forward iterates the classic worklist algorithm to the least
// fixpoint, returning the fact holding at the entry of every block.
//
// The engine is deliberately unopinionated about the fact type: persistlint
// uses a per-abstract-location persistency-state map, the package tests use
// a three-point definedness lattice. Termination is the client's contract:
// Join must be monotone over a lattice of finite height.
package dataflow

import (
	"go/ast"

	"bbb/internal/vet/cfg"
)

// A Problem defines one forward analysis.
//
// Facts flow from Entry through Transfer along CFG edges and meet at Join.
// Bottom is the identity of Join — the fact of an unreached program point;
// blocks that remain at Bottom after the fixpoint are unreachable and a
// client must not report diagnostics from them.
type Problem[F any] interface {
	// Entry is the fact at function entry.
	Entry() F
	// Bottom is the join identity (the unreached fact).
	Bottom() F
	// Transfer applies one atomic CFG node to a fact, returning the fact
	// after the node. It may mutate and return its argument.
	Transfer(n ast.Node, f F) F
	// Join combines the facts of two in-edges. It must not mutate either
	// argument.
	Join(a, b F) F
	// Equal reports whether two facts are the same point of the lattice.
	Equal(a, b F) bool
	// Clone deep-copies a fact (Transfer is allowed to mutate its input).
	Clone(f F) F
}

// Forward runs p to its least fixpoint over g and returns the fact at the
// entry of each block. To observe the fact at a specific node, replay
// Transfer over the block's Nodes starting from its entry fact.
func Forward[F any](g *cfg.Graph, p Problem[F]) map[*cfg.Block]F {
	in := make(map[*cfg.Block]F, len(g.Blocks))
	out := make(map[*cfg.Block]F, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b] = p.Bottom()
		out[b] = p.Bottom()
	}
	in[g.Entry] = p.Entry()

	// FIFO worklist seeded in block order; queued tracks membership so a
	// block appears at most once.
	queue := make([]*cfg.Block, 0, len(g.Blocks))
	queued := make([]bool, len(g.Blocks))
	push := func(b *cfg.Block) {
		if !queued[b.Index] {
			queued[b.Index] = true
			queue = append(queue, b)
		}
	}
	push(g.Entry)

	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		queued[b.Index] = false

		f := p.Clone(in[b])
		for _, n := range b.Nodes {
			f = p.Transfer(n, f)
		}
		if p.Equal(f, out[b]) {
			continue
		}
		out[b] = f
		for _, s := range b.Succs {
			joined := p.Join(in[s], f)
			if !p.Equal(joined, in[s]) {
				in[s] = joined
				push(s)
			}
		}
	}
	return in
}
