package dataflow

import "testing"

// Adversarial control flow through the x-assignment lattice: labeled
// jumps, gotos and nested selects must neither lose facts (an assignment
// on some path must surface as maybe/set at the exit) nor diverge (every
// Forward call here must reach its fixpoint).

func TestLabeledContinueSkipsAssignment(t *testing.T) {
	// continue outer jumps over the x assignment on the j==0 path, so the
	// exit fact must be maybe, not set.
	got := analyze(t, `func f(n int) {
		var x int
		_ = x
	outer:
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if j == 0 {
					continue outer
				}
				x = 1
			}
		}
	}`)
	if got.x != maybe {
		t.Errorf("exit fact = %v, want maybe (assignment skipped on the continue path)", got.x)
	}
}

func TestLabeledBreakAllPathsAssign(t *testing.T) {
	// Every path that leaves the loops passes the assignment before the
	// labeled break, but the loops may also run zero iterations: maybe.
	got := analyze(t, `func f(n int) {
		var x int
		_ = x
	outer:
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				x = 1
				break outer
			}
		}
	}`)
	if got.x != maybe {
		t.Errorf("exit fact = %v, want maybe (zero-iteration path exists)", got.x)
	}
}

func TestGotoBackwardConverges(t *testing.T) {
	// The backward goto forms a loop outside any for statement; the
	// fixpoint must still terminate and the assignment on the looped path
	// must survive the join.
	got := analyze(t, `func f(c bool) {
		var x int
		_ = x
	again:
		if c {
			x = 1
			goto again
		}
	}`)
	if got.x != maybe {
		t.Errorf("exit fact = %v, want maybe", got.x)
	}
}

func TestGotoForwardSkipsAssignment(t *testing.T) {
	got := analyze(t, `func f(c bool) {
		var x int
		_ = x
		if c {
			goto done
		}
		x = 1
	done:
		println(x)
	}`)
	if got.x != maybe {
		t.Errorf("exit fact = %v, want maybe (goto skips the assignment)", got.x)
	}
}

func TestNestedSelectJoin(t *testing.T) {
	// x is assigned in every arm of the nested select except the inner
	// default: the exit join must be maybe.
	got := analyze(t, `func f(a, b chan int) {
		var x int
		_ = x
		select {
		case <-a:
			select {
			case <-b:
				x = 1
			default:
			}
		case <-b:
			x = 2
		}
	}`)
	if got.x != maybe {
		t.Errorf("exit fact = %v, want maybe", got.x)
	}
}

func TestNestedSelectAllArmsAssign(t *testing.T) {
	got := analyze(t, `func f(a, b chan int) {
		var x int
		_ = x
		select {
		case <-a:
			select {
			case <-b:
				x = 1
			default:
				x = 2
			}
		case <-b:
			x = 3
		}
	}`)
	if got.x != set {
		t.Errorf("exit fact = %v, want set (every arm assigns)", got.x)
	}
}

func TestRangeOverIntLoop(t *testing.T) {
	// Range-over-int may run zero times only when the operand is 0; the
	// analysis is path-insensitive, so the loop body is optional: maybe.
	got := analyze(t, `func f() {
		var x int
		_ = x
		for range 4 {
			x = 1
		}
	}`)
	if got.x != maybe {
		t.Errorf("exit fact = %v, want maybe (loop body optional to the analysis)", got.x)
	}
}
