// Package vet is a small, dependency-free analysis framework modelled on
// golang.org/x/tools/go/analysis, built only on the standard library's
// go/ast, go/parser and go/types. It exists because this repository's
// correctness tooling (cmd/bbbvet) must run hermetically — no module
// downloads — and the x/tools module is not vendored.
//
// The API mirrors the shape of go/analysis so the custom passes
// (locklint, detlint, statlint, cyclelint) could be ported to the real
// framework verbatim if the dependency ever becomes available:
//
//   - An Analyzer bundles a name, doc string and a Run function.
//   - Run receives a Pass holding one fully type-checked package and
//     reports Diagnostics through Pass.Report.
//   - Analyzers needing a whole-module view (statlint's dead-counter
//     pairing) additionally implement Finish, which runs once after every
//     package pass with all passes visible.
//
// Suppression: a diagnostic is dropped when the offending line (or the
// line above it) carries a comment of the form
//
//	//bbbvet:ignore <analyzer> <reason>
//
// The block form /*bbbvet:ignore <analyzer> <reason>*/ is equivalent and
// lets several directives share one line. The reason is mandatory; an
// ignore directive without one is itself reported. This keeps every
// escape hatch self-documenting. Run drops suppressed diagnostics;
// RunAll keeps them with Ignored set, for machine consumers (-json).
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one analysis pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description shown by `bbbvet -help`.
	Doc string
	// Run performs the per-package analysis.
	Run func(*Pass) error
	// Finish, if non-nil, runs once after Run has been called for every
	// package, with every pass visible; it reports module-wide findings
	// (diagnostics anchored to positions recorded during Run).
	Finish func(all []*Pass) []Diagnostic
}

// A Pass presents one type-checked package to an Analyzer's Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	// Facts is scratch state Run can leave behind for Finish.
	Facts any

	diags *[]Diagnostic
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Ignored marks a finding suppressed by a //bbbvet:ignore directive.
	// Run drops these; RunAll returns them marked.
	Ignored bool
	// Also lists further analyzers that reported the identical finding
	// (same file, line and message); RunAll folds such duplicates into one
	// diagnostic so per-analyzer counts stay reconstructible without the
	// user seeing the same message twice.
	Also []string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypesInfo returns the package's type information.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.Info }

// Files returns the package's syntax trees.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// Run executes every analyzer over every package and returns the surviving
// (non-suppressed) diagnostics sorted by position, plus any ignore
// directives that lack a reason.
func Run(pkgs []*Package, fset *token.FileSet, analyzers []*Analyzer) ([]Diagnostic, error) {
	all, err := RunAll(pkgs, fset, analyzers)
	if err != nil {
		return nil, err
	}
	kept := all[:0]
	for _, d := range all {
		if !d.Ignored {
			kept = append(kept, d)
		}
	}
	return kept, nil
}

// RunAll is Run without the filtering: suppressed diagnostics are kept,
// marked Ignored, so machine consumers can see the full picture including
// every acknowledged finding.
func RunAll(pkgs []*Package, fset *token.FileSet, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	byAnalyzer := make(map[*Analyzer][]*Pass)
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			pass := &Pass{Analyzer: a, Fset: fset, Pkg: pkg, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
			byAnalyzer[a] = append(byAnalyzer[a], pass)
		}
	}
	for _, a := range analyzers {
		if a.Finish != nil {
			diags = append(diags, a.Finish(byAnalyzer[a])...)
		}
	}
	ig := newIgnoreIndex(pkgs, fset)
	for i := range diags {
		if ig.suppressed(diags[i]) {
			diags[i].Ignored = true
		}
	}
	diags = append(diags, ig.malformed...)
	diags = dedupe(diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// dedupe merges diagnostics several analyzers reported at the same file,
// line and message into one, keeping the first analyzer as the owner and
// recording the rest (sorted, unique) in Also. The merged diagnostic is
// Ignored only when every contributing analyzer's copy was suppressed: an
// ignore directive names one analyzer, so a duplicate from an unnamed
// analyzer must keep the finding alive.
func dedupe(diags []Diagnostic) []Diagnostic {
	type key struct {
		file string
		line int
		msg  string
	}
	at := make(map[key]int, len(diags))
	out := diags[:0]
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line, d.Message}
		i, seen := at[k]
		if !seen {
			at[k] = len(out)
			out = append(out, d)
			continue
		}
		m := &out[i]
		if d.Analyzer != m.Analyzer {
			dup := false
			for _, a := range m.Also {
				if a == d.Analyzer {
					dup = true
					break
				}
			}
			if !dup {
				m.Also = append(m.Also, d.Analyzer)
			}
		}
		m.Ignored = m.Ignored && d.Ignored
	}
	for i := range out {
		sort.Strings(out[i].Also)
	}
	return out
}

// ignoreIndex maps file → line → set of analyzer names suppressed there.
type ignoreIndex struct {
	lines     map[string]map[int]map[string]bool
	malformed []Diagnostic
}

const ignorePrefix = "//bbbvet:ignore"

func newIgnoreIndex(pkgs []*Package, fset *token.FileSet) *ignoreIndex {
	ig := &ignoreIndex{lines: make(map[string]map[int]map[string]bool)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					// Accept the block form too; it reduces to the line form.
					text := c.Text
					if strings.HasPrefix(text, "/*") {
						text = "//" + strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/"))
					}
					if !strings.HasPrefix(text, ignorePrefix) {
						continue
					}
					rest := strings.TrimPrefix(text, ignorePrefix)
					fields := strings.Fields(rest)
					pos := fset.Position(c.Pos())
					if len(fields) < 2 {
						ig.malformed = append(ig.malformed, Diagnostic{
							Analyzer: "bbbvet",
							Pos:      pos,
							Message:  "malformed ignore directive: want //bbbvet:ignore <analyzer> <reason>",
						})
						continue
					}
					name := fields[0]
					byLine := ig.lines[pos.Filename]
					if byLine == nil {
						byLine = make(map[int]map[string]bool)
						ig.lines[pos.Filename] = byLine
					}
					// The directive covers its own line and the next one, so
					// it works both as a trailing and a preceding comment.
					for _, ln := range []int{pos.Line, pos.Line + 1} {
						if byLine[ln] == nil {
							byLine[ln] = make(map[string]bool)
						}
						byLine[ln][name] = true
					}
				}
			}
		}
	}
	return ig
}

func (ig *ignoreIndex) suppressed(d Diagnostic) bool {
	byLine := ig.lines[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	set := byLine[d.Pos.Line]
	return set[d.Analyzer] || set["all"]
}
