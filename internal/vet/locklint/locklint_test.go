package locklint_test

import (
	"testing"

	"bbb/internal/vet"
	"bbb/internal/vet/locklint"
)

func TestFixture(t *testing.T) {
	vet.RunFixture(t, locklint.Analyzer, "testdata/locks")
}
