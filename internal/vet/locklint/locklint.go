// Package locklint enforces the repository's lock-annotation discipline
// for transaction-guarded simulator state, in the style of Clang's
// thread-safety annotations.
//
// The coherence hierarchy serializes all protocol work on a cache line
// behind a per-line transaction lock (lineLock): directory entries and
// their sharer/owner fields must only be touched between acquire and
// release, or at quiescence (no transaction in flight, e.g. crash drains
// and invariant walks). The persist buffers have the analogous contract
// for their entry lists. The compiler cannot see any of this — locklint
// makes it machine-checked:
//
//   - A struct field carrying a `bbbvet:guarded <lock>` marker in its doc
//     or trailing comment is guarded state.
//   - Every function whose body reads or writes a guarded field (including
//     through composite literals and closures) must declare the contract
//     in its doc comment: `//bbbvet:locked <lock>` for code running inside
//     the lock's scope, or `//bbbvet:quiescent <reason>` for code that
//     runs only while the system is quiescent.
//
// Function literals inherit the enclosing declaration's annotations, so
// transaction callbacks passed to acquire() are covered by annotating the
// method that creates them. Guarded fields are unexported, so the check is
// intra-package; the annotation's value is that any future access added
// without thinking about the locking contract fails `bbbvet` until its
// function declares (and its author confirms) the scope it runs in.
package locklint

import (
	"go/ast"
	"go/types"
	"strings"

	"bbb/internal/vet"
)

// Analyzer is the locklint pass.
var Analyzer = &vet.Analyzer{
	Name: "locklint",
	Doc: `	locklint: guarded-state annotation checking.
	Fields marked 'bbbvet:guarded <lock>' may only be accessed in
	functions annotated '//bbbvet:locked <lock>' or '//bbbvet:quiescent'.`,
	Run: run,
}

const (
	guardedMarker   = "bbbvet:guarded"
	lockedMarker    = "//bbbvet:locked"
	quiescentMarker = "//bbbvet:quiescent"
)

func run(pass *vet.Pass) error {
	info := pass.TypesInfo()

	// Collect guarded fields: types.Var -> lock name.
	guarded := make(map[*types.Var]string)
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				lock := guardMarkerIn(field.Doc)
				if lock == "" {
					lock = guardMarkerIn(field.Comment)
				}
				if lock == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						guarded[v] = lock
					}
				}
			}
			return true
		})
	}
	if len(guarded) == 0 {
		return nil
	}

	// Check every function body's guarded accesses against its annotations.
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			locks, quiescent := funcAnnotations(fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				v, ok := info.Uses[id].(*types.Var)
				if !ok {
					return true
				}
				lock, isGuarded := guarded[v]
				if !isGuarded || quiescent || locks[lock] {
					return true
				}
				pass.Reportf(id.Pos(), "%s accesses %q (guarded by %s) without a //bbbvet:locked %s or //bbbvet:quiescent annotation",
					funcLabel(fn), id.Name, lock, lock)
				return true
			})
		}
	}
	return nil
}

// guardMarkerIn extracts the lock name from a 'bbbvet:guarded <lock>'
// marker in a comment group, or "" if absent.
func guardMarkerIn(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		if i := strings.Index(c.Text, guardedMarker); i >= 0 {
			fields := strings.Fields(c.Text[i+len(guardedMarker):])
			if len(fields) > 0 {
				return fields[0]
			}
		}
	}
	return ""
}

// funcAnnotations parses the locked/quiescent directives from a function's
// doc comment.
func funcAnnotations(fn *ast.FuncDecl) (locks map[string]bool, quiescent bool) {
	locks = make(map[string]bool)
	if fn.Doc == nil {
		return locks, false
	}
	for _, c := range fn.Doc.List {
		switch {
		case strings.HasPrefix(c.Text, lockedMarker):
			for _, l := range strings.Fields(strings.TrimPrefix(c.Text, lockedMarker)) {
				locks[l] = true
			}
		case strings.HasPrefix(c.Text, quiescentMarker):
			quiescent = true
		}
	}
	return locks, quiescent
}

func funcLabel(fn *ast.FuncDecl) string {
	if fn.Recv != nil && len(fn.Recv.List) > 0 {
		return "method " + fn.Name.Name
	}
	return "function " + fn.Name.Name
}
