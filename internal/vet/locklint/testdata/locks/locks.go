// Package locks is the locklint fixture: accesses to the guarded field
// are flagged unless the enclosing declaration carries a locked or
// quiescent annotation (closures inherit the enclosing declaration's).
package locks

type table struct {
	entries map[int]int // bbbvet:guarded mu
	name    string
}

//bbbvet:locked mu
func (t *table) get(k int) int { return t.entries[k] }

//bbbvet:quiescent snapshot runs after shutdown, no lock exists anymore
func (t *table) snapshot() map[int]int { return t.entries }

func (t *table) label() string { return t.name } // unguarded field: fine

func (t *table) bad(k int) int {
	return t.entries[k] // want "method bad accesses .entries. \\(guarded by mu\\)"
}

func alsoBad(t *table) {
	t.entries = nil // want "function alsoBad accesses .entries."
}

//bbbvet:locked mu
func closures(t *table) func() int {
	return func() int { return t.entries[0] } // inherits the annotation: fine
}

func badClosure(t *table) func() int {
	return func() int { return t.entries[0] } // want "function badClosure accesses .entries."
}

//bbbvet:locked other
func wrongLock(t *table) int {
	return t.entries[0] // want "without a //bbbvet:locked mu"
}
