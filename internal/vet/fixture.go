package vet

import (
	"fmt"
	"regexp"
	"strconv"
	"testing"
)

// wantRe extracts the quoted patterns of a `// want "re" "re"` expectation.
var wantRe = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)`)

var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// expectation is one `// want "re"` waiting to be matched.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// RunFixture loads the testdata package in dir, runs a over it, and
// compares the diagnostics against `// want "regexp"` comments in the
// fixture sources — the same convention as x/tools' analysistest. A line
// may carry several quoted patterns; each must be matched by a distinct
// diagnostic on that line, every diagnostic must match some pattern, and
// every pattern must be used.
func RunFixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	pkg, fset, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range quotedRe.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}

	diags, err := Run([]*Package{pkg}, fset, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unhit expectation on d's line whose pattern
// matches, reporting whether one existed.
func claim(wants []*expectation, d Diagnostic) bool {
	for _, w := range wants {
		if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// FixtureDiagnostics runs a over the testdata package in dir and returns
// the raw diagnostics, for tests asserting on module-wide (Finish)
// output whose positions span files.
func FixtureDiagnostics(a *Analyzer, dir string) ([]Diagnostic, error) {
	pkg, fset, err := LoadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("loading fixture %s: %w", dir, err)
	}
	return Run([]*Package{pkg}, fset, []*Analyzer{a})
}
