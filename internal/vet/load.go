package vet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Standard   bool
}

// Load enumerates the packages matching patterns with the go command,
// parses their non-test sources (comments included, so directive comments
// are visible to analyzers), and type-checks each against a shared
// source-level importer. The importer resolves both standard-library and
// module-internal dependencies from source, so loading is fully hermetic:
// no network, no export data, no x/tools.
//
// dir is the directory to run `go list` in ("" for the current one).
func Load(dir string, patterns ...string) ([]*Package, *token.FileSet, error) {
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	// The source importer type-checks each dependency once and caches it;
	// sharing one instance (and one FileSet) across every analyzed package
	// keeps positions coherent and avoids re-checking shared deps.
	deps := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)

	var pkgs []*Package
	for _, m := range metas {
		if m.Standard || len(m.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, deps, m.Dir, m.ImportPath, m.GoFiles)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, fset, nil
}

// LoadDir parses and type-checks the .go files directly inside dir as a
// single package, with imports (including module-internal ones) resolved
// from source. Fixture tests use it to load testdata packages that are not
// part of the module proper.
func LoadDir(dir string) (*Package, *token.FileSet, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, nil, err
	}
	files, err := filepath.Glob(filepath.Join(abs, "*.go"))
	if err != nil {
		return nil, nil, err
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("vet: no .go files in %s", abs)
	}
	names := make([]string, len(files))
	for i, f := range files {
		names[i] = filepath.Base(f)
	}
	fset := token.NewFileSet()
	deps := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	pkg, err := checkPackage(fset, deps, abs, "fixture/"+filepath.Base(abs), names)
	if err != nil {
		return nil, nil, err
	}
	return pkg, fset, nil
}

func checkPackage(fset *token.FileSet, deps types.ImporterFrom, dir, importPath string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("vet: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importerFrom{deps, dir},
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("vet: type-check %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// importerFrom adapts an ImporterFrom into a plain Importer anchored at a
// directory, so relative (module-internal) import resolution works.
type importerFrom struct {
	from types.ImporterFrom
	dir  string
}

func (i importerFrom) Import(path string) (*types.Package, error) {
	return i.from.ImportFrom(path, i.dir, 0)
}

func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("vet: go list %v: %v\n%s", patterns, err, errb.String())
	}
	var metas []listedPackage
	dec := json.NewDecoder(&out)
	for dec.More() {
		var m listedPackage
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("vet: decode go list output: %w", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}
