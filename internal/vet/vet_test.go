package vet_test

import (
	"strings"
	"testing"

	"bbb/internal/vet"
)

// TestMalformedIgnoreReported checks the framework's own escape-hatch
// rule: an ignore directive without a reason is itself a finding.
func TestMalformedIgnoreReported(t *testing.T) {
	noop := &vet.Analyzer{Name: "noop", Run: func(*vet.Pass) error { return nil }}
	diags, err := vet.FixtureDiagnostics(noop, "testdata/ignoremalformed")
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if d := diags[0]; d.Analyzer != "bbbvet" || !strings.Contains(d.Message, "malformed ignore directive") {
		t.Fatalf("unexpected diagnostic: %s", d)
	}
}

// TestLoadModulePackages smoke-tests the hermetic loader against the real
// module: the engine package must load, type-check, and expose its types.
func TestLoadModulePackages(t *testing.T) {
	pkgs, _, err := vet.Load("", "bbb/internal/engine")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.ImportPath != "bbb/internal/engine" || p.Types == nil || p.Types.Scope().Lookup("Engine") == nil {
		t.Fatalf("engine package loaded incompletely: %+v", p.ImportPath)
	}
}
