package vet_test

import (
	"strings"
	"testing"

	"bbb/internal/vet"
	"bbb/internal/vet/cyclelint"
	"bbb/internal/vet/detlint"
	"bbb/internal/vet/locklint"
	"bbb/internal/vet/persistlint"
	"bbb/internal/vet/statlint"
)

// TestMalformedIgnoreReported checks the framework's own escape-hatch
// rule: an ignore directive without a reason is itself a finding.
func TestMalformedIgnoreReported(t *testing.T) {
	noop := &vet.Analyzer{Name: "noop", Run: func(*vet.Pass) error { return nil }}
	diags, err := vet.FixtureDiagnostics(noop, "testdata/ignoremalformed")
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if d := diags[0]; d.Analyzer != "bbbvet" || !strings.Contains(d.Message, "malformed ignore directive") {
		t.Fatalf("unexpected diagnostic: %s", d)
	}
}

// TestCrashMCZeroSuppressions pins the crash-image model checker to the
// strictest bar the suite offers: the full analyzer set over
// internal/crashmc must report nothing — not even suppressed findings.
// The enumerator's output feeds golden-count tests and byte-identical
// parallel-fan-out comparisons, so map-order or wall-clock leaks there
// are correctness bugs, and unlike internal/memory it has no excuse for
// an ignore directive.
func TestCrashMCZeroSuppressions(t *testing.T) {
	pkgs, fset, err := vet.Load("", "bbb/internal/crashmc")
	if err != nil {
		t.Fatal(err)
	}
	analyzers := []*vet.Analyzer{
		locklint.Analyzer, detlint.Analyzer, statlint.Analyzer,
		cyclelint.Analyzer, persistlint.Analyzer,
	}
	diags, err := vet.RunAll(pkgs, fset, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Ignored {
			t.Errorf("crashmc carries a suppression (the package must stay clean without them): %s", d)
		} else {
			t.Errorf("crashmc finding: %s", d)
		}
	}
}

// TestIRZeroSuppressions holds the compiled-workload IR package to the
// crashmc bar: the full analyzer set over internal/ir must report nothing,
// with zero //bbbvet:ignore directives. The interpreter sits inside the
// simulator's hottest loop and its equivalence contract with the cpu.Env
// twins is what keeps pressurelint's battery-bound certificates sound on
// the compiled path — a determinism or stat-registration leak there would
// silently undermine the byte-identical-Result gate.
func TestIRZeroSuppressions(t *testing.T) {
	pkgs, fset, err := vet.Load("", "bbb/internal/ir")
	if err != nil {
		t.Fatal(err)
	}
	analyzers := []*vet.Analyzer{
		locklint.Analyzer, detlint.Analyzer, statlint.Analyzer,
		cyclelint.Analyzer, persistlint.Analyzer,
	}
	diags, err := vet.RunAll(pkgs, fset, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Ignored {
			t.Errorf("internal/ir carries a suppression (the package must stay clean without them): %s", d)
		} else {
			t.Errorf("internal/ir finding: %s", d)
		}
	}
}

// TestLitmusZeroSuppressions holds the generated litmus corpus (and the
// axiomatic checker beside it) to the same bar as crashmc: the full
// analyzer set must report nothing, with zero //bbbvet:ignore directives.
// The corpus is machine-emitted, so a single finding means the generator
// regressed — its commit-store annotations come from the symbolic
// durably-ordered-before relation and must keep persistlint clean across
// regenerations.
func TestLitmusZeroSuppressions(t *testing.T) {
	for _, pkg := range []string{"bbb/internal/litmus", "bbb/internal/axiomatic"} {
		pkgs, fset, err := vet.Load("", pkg)
		if err != nil {
			t.Fatal(err)
		}
		analyzers := []*vet.Analyzer{
			locklint.Analyzer, detlint.Analyzer, statlint.Analyzer,
			cyclelint.Analyzer, persistlint.Analyzer,
		}
		diags, err := vet.RunAll(pkgs, fset, analyzers)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			if d.Ignored {
				t.Errorf("%s carries a suppression (the generated corpus must stay clean without them): %s", pkg, d)
			} else {
				t.Errorf("%s finding: %s", pkg, d)
			}
		}
	}
}

// TestObsZeroSuppressions holds the campaign observability plane to the
// crashmc bar: the full analyzer set over internal/obs must report
// nothing, with zero //bbbvet:ignore directives. The ledger's run IDs,
// point digests and campaign summaries are what kill-and-resume
// byte-identity is judged against, so a determinism leak there (map-order
// iteration, wall-clock reads) would quietly invalidate every resumed
// campaign — host provenance enters only through the HostInfo/Clock
// parameters cmd-side callers pass in.
func TestObsZeroSuppressions(t *testing.T) {
	pkgs, fset, err := vet.Load("", "bbb/internal/obs")
	if err != nil {
		t.Fatal(err)
	}
	analyzers := []*vet.Analyzer{
		locklint.Analyzer, detlint.Analyzer, statlint.Analyzer,
		cyclelint.Analyzer, persistlint.Analyzer,
	}
	diags, err := vet.RunAll(pkgs, fset, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Ignored {
			t.Errorf("internal/obs carries a suppression (the package must stay clean without them): %s", d)
		} else {
			t.Errorf("internal/obs finding: %s", d)
		}
	}
}

// TestLoadModulePackages smoke-tests the hermetic loader against the real
// module: the engine package must load, type-check, and expose its types.
func TestLoadModulePackages(t *testing.T) {
	pkgs, _, err := vet.Load("", "bbb/internal/engine")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.ImportPath != "bbb/internal/engine" || p.Types == nil || p.Types.Scope().Lookup("Engine") == nil {
		t.Fatalf("engine package loaded incompletely: %+v", p.ImportPath)
	}
}
