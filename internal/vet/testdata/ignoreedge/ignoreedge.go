// Package ignoreedge exercises the ignore-directive corner cases: the
// block-comment form, two analyzers suppressed on one line, a directive
// above a multi-line statement, and directives missing their reason.
package ignoreedge

func bad() int      { return 0 }
func alsoBad(_ int) {}

func lineForm() {
	_ = bad() //bbbvet:ignore testa expected noise
}

func blockForm() {
	_ = bad() /*bbbvet:ignore testa the block form works too*/
}

func twoOnOneLine() {
	alsoBad(bad()) /*bbbvet:ignore testa one line*/ /*bbbvet:ignore testb two analyzers*/
}

func multiLine() {
	//bbbvet:ignore testb the directive covers the statement's first line
	alsoBad(
		bad(), //bbbvet:ignore testa inner call suppressed separately
	)
}

func unsuppressed() {
	_ = bad()
}

func missingReason() {
	_ = bad() //bbbvet:ignore testa
}

/*bbbvet:ignore*/
func blockMissingEverything() {
	_ = bad()
}
