// Package ignoremalformed carries an ignore directive with no reason,
// which bbbvet must itself report.
package ignoremalformed

//bbbvet:ignore locklint
var x = 1

var _ = x
