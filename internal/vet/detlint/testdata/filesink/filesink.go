// Package filesink is a detlint fixture modelled on a trace file sink:
// the tempting nondeterminism bugs — wall-clock timestamps on records,
// map-ordered event emission, host-environment output paths — are all
// flagged, proving a sink that slipped them in could not land. The clean
// variants mirror what internal/trace actually does: cycle stamps carried
// in the event, slice-ordered emission, caller-supplied writers.
package filesink

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

type event struct {
	cycle uint64
	kind  string
}

type sink struct {
	w      io.Writer
	counts map[string]int
}

// write stamps records with simulated cycles carried in the event itself —
// the deterministic design.
func (s *sink) write(e event) {
	fmt.Fprintf(s.w, "%d %s\n", e.cycle, e.kind)
	s.counts[e.kind]++
}

// writeWallClock is the bug detlint exists to catch: a wall-clock stamp
// makes every trace byte-unique across runs.
func (s *sink) writeWallClock(e event) {
	fmt.Fprintf(s.w, "%v %s\n", time.Now(), e.kind) // want "call to time.Now is nondeterministic"
}

// summarize ranging the tally map directly would emit kinds in a different
// order every run.
func (s *sink) summarize() {
	for k, n := range s.counts { // want "range over map has nondeterministic order"
		fmt.Fprintf(s.w, "%s=%d\n", k, n)
	}
}

// summarizeSorted is the justified form: key extraction is order-blind
// once the keys are sorted before any output is produced.
func (s *sink) summarizeSorted() {
	keys := make([]string, 0, len(s.counts))
	//bbbvet:ignore detlint keys are sorted before any output; order cannot matter
	for k := range s.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(s.w, "%s=%d\n", k, s.counts[k])
	}
}

// envPath lets the host environment steer simulator output — flagged.
func envPath() string {
	return os.Getenv("TRACE_OUT") // want "call to os.Getenv is nondeterministic"
}

// flush timing must come from the engine clock, not the host's.
func (s *sink) flushEvery() {
	time.Sleep(10 * time.Millisecond) // want "call to time.Sleep is nondeterministic"
}
