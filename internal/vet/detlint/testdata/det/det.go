// Package det is the detlint fixture: wall-clock time, the global
// math/rand source, host-environment probes, and map-order iteration are
// flagged; seeded generators and justified loops are not.
package det

import (
	"math/rand"
	"os"
	"runtime"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want "call to time.Now is nondeterministic"
}

func sleepy() {
	time.Sleep(time.Second) // want "call to time.Sleep is nondeterministic"
}

func globalSource() int {
	return rand.Intn(10) // want "draws the global \\(unseeded\\) source"
}

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // constructors build seeded sources: fine
	return r.Intn(10)                   // methods on a seeded *rand.Rand: fine
}

func hostEnvironment() string {
	return os.Getenv("BBB_THREADS") // want "call to os.Getenv is nondeterministic in simulation: thread configuration through config.Config"
}

func hostCores() int {
	return runtime.NumCPU() // want "call to runtime.NumCPU is nondeterministic in simulation: take the core count from config.Config"
}

func hostFile() (*os.File, error) {
	return os.Open("trace.out") // os functions other than the env probes: fine
}

func mapRange(m map[int]int) int {
	s := 0
	for _, v := range m { // want "range over map has nondeterministic order"
		s += v
	}
	return s
}

func sliceRange(xs []int) int {
	s := 0
	for _, v := range xs { // slices have deterministic order: fine
		s += v
	}
	return s
}

func justified(m map[int]int) int {
	n := 0
	//bbbvet:ignore detlint pure count; iteration order cannot matter
	for range m {
		n++
	}
	return n
}

func allSuppressed(m map[int]int) {
	//bbbvet:ignore all fixture exercises the blanket suppression
	for range m {
	}
}
