// Package detlint bans sources of nondeterminism in the simulator
// packages. The discrete-event engine guarantees bit-identical runs for a
// given seed — that property is what makes crash-injection tests, the
// paper's figure reproductions, and cross-scheme comparisons meaningful —
// and it survives only if no simulator code consults the wall clock,
// unseeded randomness, or Go's randomized map iteration order in a way
// that feeds simulated state or reported results.
//
// Reported, in simulator packages (bbb/internal/... except the tooling
// under internal/vet):
//
//   - calls to time.Now, time.Since, time.Sleep, time.After, time.Tick,
//     time.NewTimer, time.NewTicker (wall-clock time);
//   - calls to math/rand (and math/rand/v2) package-level functions, which
//     draw from the global, unseeded source — deterministic code must use
//     a *rand.Rand built from a seeded rand.NewSource;
//   - calls to os.Getenv/os.LookupEnv and runtime.NumCPU/runtime.GOMAXPROCS,
//     which make behaviour depend on the host environment rather than the
//     experiment configuration;
//   - range statements over maps. Map iteration order is randomized per
//     run; loops whose effects are order-sensitive (draining, stats
//     selection, first-error reporting) must iterate sorted keys instead.
//     Loops that are genuinely order-insensitive (pure reductions like
//     sum/max-with-deterministic-tiebreak) are suppressed case by case
//     with //bbbvet:ignore detlint <why the order cannot matter>.
package detlint

import (
	"go/ast"
	"go/types"
	"strings"

	"bbb/internal/vet"
)

// Analyzer is the detlint pass.
var Analyzer = &vet.Analyzer{
	Name: "detlint",
	Doc: `	detlint: no nondeterminism in simulator packages.
	Bans wall-clock time, the global math/rand source, host environment
	probes (os.Getenv, runtime.NumCPU) and map-order iteration in
	bbb/internal/... so simulations stay bit-reproducible.`,
	Run: run,
}

// bannedFuncs maps package path -> function name -> replacement advice.
var bannedFuncs = map[string]map[string]string{
	"time": {
		"Now":       "use engine.Engine.Now (simulated cycles), not the wall clock",
		"Since":     "use engine cycle deltas, not the wall clock",
		"Sleep":     "schedule an engine event instead of sleeping",
		"After":     "schedule an engine event instead of timer channels",
		"Tick":      "use engine.Engine.Ticker",
		"NewTimer":  "use engine.Engine.Schedule",
		"NewTicker": "use engine.Engine.Ticker",
	},
	"math/rand":    nil, // package-level funcs draw the global source
	"math/rand/v2": nil,
	"os": {
		"Getenv":    "thread configuration through config.Config, not the host environment",
		"LookupEnv": "thread configuration through config.Config, not the host environment",
	},
	"runtime": {
		"NumCPU":     "take the core count from config.Config, not the host machine",
		"GOMAXPROCS": "simulated cores are config, not host scheduler state",
	},
}

// randConstructors are the math/rand package-level functions that build
// seeded generators rather than drawing from the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func run(pass *vet.Pass) error {
	if !simulatorPackage(pass.Pkg.ImportPath) {
		return nil
	}
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, info, n)
			case *ast.RangeStmt:
				checkRange(pass, info, n)
			}
			return true
		})
	}
	return nil
}

// simulatorPackage reports whether detlint's rules apply to path. The
// fixture/ prefix keeps the analyzer testable on testdata packages.
func simulatorPackage(path string) bool {
	if strings.HasPrefix(path, "bbb/internal/vet") {
		return false
	}
	return strings.HasPrefix(path, "bbb/internal/") || strings.HasPrefix(path, "fixture/")
}

func checkCall(pass *vet.Pass, info *types.Info, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand) are fine
	}
	pkgPath := fn.Pkg().Path()
	names, banned := bannedFuncs[pkgPath]
	if !banned {
		return
	}
	if names == nil { // whole package banned, minus seeded constructors
		if !randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(), "call to %s.%s draws the global (unseeded) source; use a *rand.Rand from rand.NewSource(seed)", pkgPath, fn.Name())
		}
		return
	}
	if advice, hit := names[fn.Name()]; hit {
		pass.Reportf(call.Pos(), "call to %s.%s is nondeterministic in simulation: %s", pkgPath, fn.Name(), advice)
	}
}

func checkRange(pass *vet.Pass, info *types.Info, n *ast.RangeStmt) {
	tv, ok := info.Types[n.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := types.Unalias(tv.Type).Underlying().(*types.Map); !isMap {
		return
	}
	pass.Reportf(n.Range, "range over map has nondeterministic order; iterate sorted keys (or justify with //bbbvet:ignore detlint <reason>)")
}
