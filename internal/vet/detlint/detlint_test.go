package detlint_test

import (
	"testing"

	"bbb/internal/vet"
	"bbb/internal/vet/detlint"
)

func TestFixture(t *testing.T) {
	vet.RunFixture(t, detlint.Analyzer, "testdata/det")
}
