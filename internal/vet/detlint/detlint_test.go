package detlint_test

import (
	"testing"

	"bbb/internal/vet"
	"bbb/internal/vet/detlint"
)

func TestFixture(t *testing.T) {
	vet.RunFixture(t, detlint.Analyzer, "testdata/det")
}

// The file-sink fixture proves a trace sink that smuggled in wall-clock
// stamps, map-ordered emission or env-var output paths could not land:
// every nondeterministic field source is rejected, while the cycle-stamped
// slice-ordered design internal/trace uses passes.
func TestFileSinkFixture(t *testing.T) {
	vet.RunFixture(t, detlint.Analyzer, "testdata/filesink")
}
