package vet

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// This file emits findings in SARIF 2.1.0, the interchange format GitHub
// code scanning and most analysis dashboards ingest. One run per
// invocation, one rule per analyzer, one result per diagnostic; findings
// suppressed by //bbbvet:ignore directives are kept as results carrying a
// suppression object ("inSource"), matching how SARIF models acknowledged
// findings. Paths are emitted relative to root (when given) with forward
// slashes, so the log is machine-independent and uploadable from CI.

const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifSuppression struct {
	Kind string `json:"kind"`
}

// WriteSARIF writes diags as a SARIF 2.1.0 log. analyzers become the
// driver's rule table (every analyzer, not just the ones that fired, so
// the rule metadata is stable across runs); root, when non-empty, is
// stripped from result paths. Pass RunAll output to include suppressed
// findings — they carry an inSource suppression rather than being
// dropped, which is how SARIF consumers distinguish "acknowledged" from
// "absent".
func WriteSARIF(w io.Writer, diags []Diagnostic, analyzers []*Analyzer, root string) error {
	driver := sarifDriver{Name: "bbbvet", Rules: []sarifRule{}}
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: doc},
		})
	}

	results := []sarifResult{}
	for _, d := range diags {
		msg := d.Message
		if len(d.Also) > 0 {
			msg += " (also reported by " + strings.Join(d.Also, ", ") + ")"
		}
		r := sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: sarifURI(d.Pos.Filename, root)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		}
		if d.Ignored {
			r.Suppressions = []sarifSuppression{{Kind: "inSource"}}
		}
		results = append(results, r)
	}

	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// sarifURI renders a diagnostic path relative to root with the forward
// slashes SARIF requires.
func sarifURI(path, root string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
			path = rel
		}
	}
	return filepath.ToSlash(path)
}
