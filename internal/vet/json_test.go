package vet

import (
	"bytes"
	"encoding/json"
	"go/token"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestWriteJSONSchema(t *testing.T) {
	diags := []Diagnostic{
		{
			Analyzer: "detlint",
			Pos:      token.Position{Filename: "a/b.go", Line: 12},
			Message: `call to time.Now in simulator code: "quoted" and multi
line`,
		},
		{
			Analyzer: "persistlint",
			Pos:      token.Position{Filename: "c.go", Line: 3},
			Message:  "redundant fence",
			Ignored:  true,
		},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(diags) {
		t.Fatalf("got %d JSON lines, want %d:\n%s", len(lines), len(diags), buf.String())
	}
	wantKeys := []string{"analyzer", "file", "ignored", "line", "message"}
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		var keys []string
		for k := range obj {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if !reflect.DeepEqual(keys, wantKeys) {
			t.Errorf("line %d keys = %v, want %v", i, keys, wantKeys)
		}
		if obj["file"] != diags[i].Pos.Filename {
			t.Errorf("line %d file = %v, want %v", i, obj["file"], diags[i].Pos.Filename)
		}
		if int(obj["line"].(float64)) != diags[i].Pos.Line {
			t.Errorf("line %d line = %v, want %v", i, obj["line"], diags[i].Pos.Line)
		}
		if obj["analyzer"] != diags[i].Analyzer {
			t.Errorf("line %d analyzer = %v, want %v", i, obj["analyzer"], diags[i].Analyzer)
		}
		if obj["message"] != diags[i].Message {
			t.Errorf("line %d message = %v, want %v", i, obj["message"], diags[i].Message)
		}
		if obj["ignored"] != diags[i].Ignored {
			t.Errorf("line %d ignored = %v, want %v", i, obj["ignored"], diags[i].Ignored)
		}
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatalf("WriteJSON(nil): %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("WriteJSON(nil) wrote %q, want nothing", buf.String())
	}
}
