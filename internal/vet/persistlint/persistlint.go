// Package persistlint is a flow-sensitive crash-consistency analysis for
// the programs that run *on* the simulator (internal/workload, examples/),
// closing the gap the other bbbvet passes leave: they check the simulator's
// internals, while persistlint checks that simulated programs follow the
// persist-ordering discipline the paper's Figure 2 shows going wrong.
//
// The analysis tracks, per abstract memory location, a three-point
// persistency lattice
//
//	dirty → flushed → durable
//
// through every path of a function's control-flow graph (internal/vet/cfg)
// using a forward fixpoint (internal/vet/dataflow). A store through the
// cpu.Env interface makes its location dirty; a write-back (WriteBack,
// Clwb, Flush, Persist) moves dirty to flushed; a fence (Fence, SFence,
// Drain) moves flushed to durable; PersistBarrier does both for the lines
// it names. Locations are union-find classes over variables and normalized
// address expressions, so `node+offNext` and `node` are the same location
// and `cur = node` aliases the two names.
//
// Three diagnostic classes:
//
//  1. Ordering (the Figure 2 bug): a commit/publish store — a store
//     annotated `//bbbvet:commit-store [dep ...]` on its own or the
//     preceding line — executed while a dependee location is not yet
//     durable on some path. Dependees are the named locations, or, with no
//     names, every ever-dirtied location mentioned by the stored value.
//  2. Redundancy (a performance lint): flushing a line that is not dirty,
//     fencing with no flush pending, or barriering lines already durable.
//  3. Vacuity: a program-shaped function (exactly one cpu.Env parameter,
//     no results) that can reach exit with a location still dirty or
//     flushed — under the PMEM discipline that store may never persist. If
//     the function issues no barriers at all, Options.NoBarriers is
//     vacuous for it, which the diagnostic says.
//
// The analysis is scheme aware. A file-level `//bbbvet:scheme <pmem|bbb|
// eadr>` directive — or, absent one, a heuristic (the enclosing top-level
// declaration mentions SchemeBBB/SchemeEADR and not SchemePMEM) — marks
// code as targeting battery-backed schemes, where stores persist in
// program order on their own: ordering and vacuity diagnostics are
// suppressed there and barriers/flushes/fences are reported as no-ops
// (class 2) instead.
//
// Helpers are handled by flow-insensitive call summaries computed per
// package to a fixpoint: `barrier(e, p, addrs...)` is known to barrier its
// variadic argument, `writeNode(e, ...) Addr` is known to return a dirty
// location, and so on, so the workload code's factored persist discipline
// analyzes the same as inlined code.
package persistlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"bbb/internal/vet"
	"bbb/internal/vet/cfg"
	"bbb/internal/vet/dataflow"
)

// Analyzer is the persistlint pass.
var Analyzer = &vet.Analyzer{
	Name: "persistlint",
	Doc: `	persistlint: flow-sensitive persist-ordering analysis.
	Tracks a dirty->flushed->durable lattice per location through cpu.Env
	programs; reports commit stores whose dependees may not be durable,
	redundant flushes/fences/barriers, and programs that never persist.`,
	Run: run,
}

// The per-location persistency states, ordered so join = max is the
// may-be-less-persisted direction. A location absent from a fact is
// durable (clean).
type state uint8

const (
	flushed state = iota + 1 // written back, fence still pending
	dirty                    // stored, not written back
)

func (s state) String() string {
	switch s {
	case flushed:
		return "flushed"
	case dirty:
		return "dirty"
	default:
		return "durable"
	}
}

// commitPrefix annotates publish stores; schemePrefix pins a file's target
// scheme. Both follow the //bbbvet: directive family of internal/vet.
const (
	commitPrefix = "//bbbvet:commit-store"
	schemePrefix = "//bbbvet:scheme"
)

func run(pass *vet.Pass) error {
	// The vet tooling itself manipulates Env-shaped ASTs in fixtures and
	// tests; analyzing it would be self-referential noise.
	if strings.HasPrefix(pass.Pkg.ImportPath, "bbb/internal/vet") {
		return nil
	}
	a := &analysis{
		pass:      pass,
		info:      pass.TypesInfo(),
		fset:      pass.Fset,
		byObj:     make(map[types.Object]*class),
		byKey:     make(map[string]*class),
		summaries: make(map[*types.Func]*summary),
		commits:   make(map[string]map[int][]string),
		schemes:   make(map[*ast.File]string),
	}
	a.collectDirectives()
	a.aliasPass()
	a.computeSummaries()
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			relaxed := a.relaxedContext(f, decl)
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				a.analyzeUnit(fd.Body, fd.Type, fd.Recv != nil, relaxed)
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					a.analyzeUnit(lit.Body, lit.Type, false, relaxed)
				}
				return true
			})
		}
	}
	return nil
}

// analysis is the per-package state shared by every analyzed function.
type analysis struct {
	pass      *vet.Pass
	info      *types.Info
	fset      *token.FileSet
	byObj     map[types.Object]*class
	byKey     map[string]*class
	summaries map[*types.Func]*summary
	// commits maps file -> line -> the directive's dependee names (empty
	// slice = infer from the stored value). A directive covers its own
	// line and the next, like //bbbvet:ignore.
	commits map[string]map[int][]string
	schemes map[*ast.File]string
}

// --- abstract locations (union-find) ---

// class is one abstract location: a union-find node whose root represents
// every variable and address expression known to name the same memory.
type class struct {
	parent *class
	name   string // display name (first name registered)
}

func (c *class) find() *class {
	for c.parent != nil {
		if c.parent.parent != nil {
			c.parent = c.parent.parent // path halving
		}
		c = c.parent
	}
	return c
}

func union(a, b *class) {
	ra, rb := a.find(), b.find()
	if ra != rb {
		rb.parent = ra
	}
}

// classOf interns the class of a variable object.
func (a *analysis) classOf(obj types.Object) *class {
	if c, ok := a.byObj[obj]; ok {
		return c.find()
	}
	c := &class{name: obj.Name()}
	a.byObj[obj] = c
	return c
}

// keyClass interns the class of a non-variable address expression by its
// normalized source text, so two occurrences of `a.elem(idx)` agree.
func (a *analysis) keyClass(e ast.Expr) *class {
	key := types.ExprString(e)
	if c, ok := a.byKey[key]; ok {
		return c.find()
	}
	c := &class{name: key}
	a.byKey[key] = c
	return c
}

// varBase resolves an address expression to the variable it is rooted in:
// `node+offNext` and `memory.LineAddr(ptrCell)` resolve to node/ptrCell.
// Returns nil when no variable root exists.
func (a *analysis) varBase(e ast.Expr) *class {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := a.info.Uses[e]
		if obj == nil {
			obj = a.info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok {
			return a.classOf(v)
		}
	case *ast.BinaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			if c := a.varBase(e.X); c != nil {
				return c
			}
			return a.varBase(e.Y)
		}
	case *ast.CallExpr:
		if len(e.Args) != 1 {
			return nil
		}
		if tv, ok := a.info.Types[e.Fun]; ok && tv.IsType() {
			return a.varBase(e.Args[0]) // conversion: memory.Addr(x)
		}
		// Address-shaping helpers like memory.LineAddr(ptrCell): one
		// argument, same type in and out.
		argT, resT := a.typeOf(e.Args[0]), a.typeOf(e)
		if argT != nil && resT != nil && types.Identical(argT, resT) {
			return a.varBase(e.Args[0])
		}
	}
	return nil
}

// locOf resolves an address expression to its abstract location, falling
// back to the normalized-text class when no variable roots it.
func (a *analysis) locOf(e ast.Expr) *class {
	if c := a.varBase(e); c != nil {
		return c.find()
	}
	return a.keyClass(e).find()
}

func (a *analysis) typeOf(e ast.Expr) types.Type {
	if tv, ok := a.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isEnvType reports whether t is the simulator execution interface — any
// named (or aliased) type called Env, so the analysis works identically
// on cpu.Env, the public bbb.Env alias, and self-contained fixtures.
func isEnvType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n.Obj().Name() == "Env"
	}
	return false
}

// --- directives ---

func (a *analysis) collectDirectives() {
	for _, f := range a.pass.Files() {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSuffix(c.Text, "*/")
				if i := strings.Index(text, "/*"); i == 0 {
					text = "//" + strings.TrimSpace(text[2:])
				}
				switch {
				case strings.HasPrefix(text, commitPrefix):
					deps := strings.Fields(strings.TrimPrefix(text, commitPrefix))
					pos := a.fset.Position(c.Pos())
					byLine := a.commits[pos.Filename]
					if byLine == nil {
						byLine = make(map[int][]string)
						a.commits[pos.Filename] = byLine
					}
					if deps == nil {
						deps = []string{}
					}
					byLine[pos.Line] = deps
					byLine[pos.Line+1] = deps
				case strings.HasPrefix(text, schemePrefix):
					val := strings.TrimSpace(strings.TrimPrefix(text, schemePrefix))
					switch val {
					case "pmem", "bbb", "eadr":
						a.schemes[f] = val
					default:
						a.pass.Reportf(c.Pos(), "unknown scheme %q in %s directive (want pmem, bbb or eadr)", val, schemePrefix)
					}
				}
			}
		}
	}
}

// commitDeps returns the commit-store directive covering pos, if any.
func (a *analysis) commitDeps(pos token.Pos) ([]string, bool) {
	p := a.fset.Position(pos)
	deps, ok := a.commits[p.Filename][p.Line]
	return deps, ok
}

// relaxedContext decides whether decl's code targets a battery-backed
// scheme (BBB/eADR), where the hardware persists stores in program order
// and barrier discipline is unnecessary.
func (a *analysis) relaxedContext(f *ast.File, decl ast.Decl) bool {
	if s, ok := a.schemes[f]; ok {
		return s != "pmem"
	}
	var bbb, pmem bool
	ast.Inspect(decl, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			switch id.Name {
			case "SchemeBBB", "SchemeEADR":
				bbb = true
			case "SchemePMEM":
				pmem = true
			}
		}
		return true
	})
	return bbb && !pmem
}

// --- alias pre-pass ---

// aliasPass unions abstract locations flow-insensitively across the whole
// package: plain copies (`cur = node`), tuple copies, slice building
// (`append(addrs, s)`, `[]Addr{leaf}`) and range-over-slice values all
// name the same underlying memory as their source. Running this to
// completion before any dataflow keeps union-find roots stable.
func (a *analysis) aliasPass() {
	for _, f := range a.pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						a.aliasAssign(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						a.aliasAssign(n.Names[i], n.Values[i])
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if dst := a.varBase(n.Value); dst != nil {
						if src := a.varBase(n.X); src != nil {
							union(dst, src)
						}
					}
				}
			}
			return true
		})
	}
}

func (a *analysis) aliasAssign(lhs, rhs ast.Expr) {
	dst := a.varBase(lhs)
	if dst == nil {
		return
	}
	switch r := ast.Unparen(rhs).(type) {
	case *ast.Ident:
		if src := a.varBase(r); src != nil {
			union(dst, src)
		}
	case *ast.CompositeLit:
		for _, elt := range r.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if src := a.varBase(elt); src != nil {
				union(dst, src)
			}
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(r.Fun).(*ast.Ident); ok && id.Name == "append" {
			for _, arg := range r.Args {
				if src := a.varBase(arg); src != nil {
					union(dst, src)
				}
			}
		}
	}
}

// --- call summaries ---

// summary is a helper function's flow-insensitive persistency effect,
// expressed over parameter and result indices so call sites can map it
// onto their arguments.
type summary struct {
	nparams      int
	variadic     bool
	nresults     int
	dirtyParams  map[int]bool
	flushParams  map[int]bool
	barrierParam map[int]bool
	dirtyResults map[int]bool
	fences       bool
}

func (s *summary) equal(o *summary) bool {
	return o != nil && s.fences == o.fences &&
		setsEqual(s.dirtyParams, o.dirtyParams) &&
		setsEqual(s.flushParams, o.flushParams) &&
		setsEqual(s.barrierParam, o.barrierParam) &&
		setsEqual(s.dirtyResults, o.dirtyResults)
}

func setsEqual(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// computeSummaries iterates scanSummary over every package function until
// the summaries stop changing, so recursive helpers (the btree's
// shadowInsert) converge.
func (a *analysis) computeSummaries() {
	var decls []*ast.FuncDecl
	for _, f := range a.pass.Files() {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	for iter := 0; iter < 10; iter++ {
		changed := false
		for _, fd := range decls {
			fn, ok := a.info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			s := a.scanSummary(fd, fn)
			if !s.equal(a.summaries[fn]) {
				a.summaries[fn] = s
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// scanSummary computes one function's effect sets by a flow-insensitive
// walk of its body (nested function literals excluded — they run later).
func (a *analysis) scanSummary(fd *ast.FuncDecl, fn *types.Func) *summary {
	eff := &effects{dirty: map[*class]bool{}, flush: map[*class]bool{}, barrier: map[*class]bool{}}
	walkSkippingFuncLits(fd.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			a.callEffects(n, eff)
		case *ast.AssignStmt:
			a.bindDirtyResults(n, func(lhs ast.Expr, pos token.Pos) {
				eff.dirty[a.locOf(lhs)] = true
			})
		}
	})

	sig := fn.Type().(*types.Signature)
	s := &summary{
		nparams:      sig.Params().Len(),
		variadic:     sig.Variadic(),
		nresults:     sig.Results().Len(),
		dirtyParams:  map[int]bool{},
		flushParams:  map[int]bool{},
		barrierParam: map[int]bool{},
		dirtyResults: map[int]bool{},
		fences:       eff.fences,
	}
	for i := 0; i < sig.Params().Len(); i++ {
		c := a.classOf(sig.Params().At(i)).find()
		if eff.dirty[c] {
			s.dirtyParams[i] = true
		}
		if eff.flush[c] {
			s.flushParams[i] = true
		}
		if eff.barrier[c] {
			s.barrierParam[i] = true
		}
	}
	walkSkippingFuncLits(fd.Body, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		for j, r := range ret.Results {
			if j >= s.nresults {
				break
			}
			for _, c := range a.returnClasses(r) {
				if eff.dirty[c.find()] {
					s.dirtyResults[j] = true
				}
			}
		}
	})
	return s
}

// effects accumulates a summary scan's class-level facts.
type effects struct {
	dirty, flush, barrier map[*class]bool
	fences                bool
}

// callEffects folds one call's persistency effect into eff, resolving Env
// methods, the cpu.Store64 convenience, and already-summarized helpers.
func (a *analysis) callEffects(call *ast.CallExpr, eff *effects) {
	op, ok := a.resolveCall(call)
	if !ok {
		return
	}
	for _, e := range op.dirtyAddrs {
		eff.dirty[a.locOf(e)] = true
	}
	for _, e := range op.flushAddrs {
		eff.flush[a.locOf(e)] = true
	}
	for _, e := range op.barrierAddrs {
		eff.barrier[a.locOf(e)] = true
	}
	if op.fences {
		eff.fences = true
	}
}

// returnClasses lists the location classes a returned expression carries:
// the variable root of an ident/arithmetic expression, every element of a
// composite literal, every argument of an append.
func (a *analysis) returnClasses(e ast.Expr) []*class {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		var out []*class
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			out = append(out, a.returnClasses(elt)...)
		}
		return out
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" {
			var out []*class
			for _, arg := range e.Args {
				out = append(out, a.returnClasses(arg)...)
			}
			return out
		}
		if tv, ok := a.info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return a.returnClasses(e.Args[0])
		}
	default:
		if c := a.varBase(ast.Unparen(e)); c != nil {
			return []*class{c}
		}
	}
	return nil
}

// bindDirtyResults calls f on each left-hand side that receives a dirty
// result of a summarized helper (`n := writeNode(e, ...)`).
func (a *analysis) bindDirtyResults(as *ast.AssignStmt, f func(lhs ast.Expr, pos token.Pos)) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := a.calleeFunc(call)
	if fn == nil {
		return
	}
	s := a.summaries[fn]
	if s == nil || len(s.dirtyResults) == 0 || len(as.Lhs) != s.nresults {
		return
	}
	for i := range as.Lhs {
		if s.dirtyResults[i] {
			f(as.Lhs[i], call.Pos())
		}
	}
}

// calleeFunc resolves a call's target *types.Func (nil for conversions,
// builtins, method values and indirect calls).
func (a *analysis) calleeFunc(call *ast.CallExpr) *types.Func {
	if tv, ok := a.info.Types[call.Fun]; ok && tv.IsType() {
		return nil
	}
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := a.info.Uses[id].(*types.Func)
	return fn
}

// --- call resolution ---

// callOp is the normalized persistency effect of one call expression.
type callOp struct {
	dirtyAddrs   []ast.Expr // locations stored to
	flushAddrs   []ast.Expr // locations written back
	barrierAddrs []ast.Expr // locations flushed+fenced together
	fences       bool       // completes pending flushes
	// publish is the address stored by a direct Store/CAS/Store64 — the
	// expression a commit-store directive applies to (nil otherwise).
	publish ast.Expr
	// value is the stored value expression, for dependee inference.
	value ast.Expr
}

// resolveCall classifies one call: a direct Env method, the Store64/Load64
// conveniences (any package), or a same-package summarized helper.
func (a *analysis) resolveCall(call *ast.CallExpr) (callOp, bool) {
	var op callOp
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isEnvType(a.typeOf(sel.X)) {
		switch sel.Sel.Name {
		case "Store":
			if len(call.Args) >= 1 {
				op.dirtyAddrs = []ast.Expr{call.Args[0]}
				op.publish = call.Args[0]
				if len(call.Args) >= 3 {
					op.value = call.Args[2]
				}
			}
		case "CompareAndSwap":
			if len(call.Args) >= 1 {
				op.dirtyAddrs = []ast.Expr{call.Args[0]}
				op.publish = call.Args[0]
				if len(call.Args) >= 4 {
					op.value = call.Args[3]
				}
			}
		case "WriteBack", "Clwb", "Flush", "Persist":
			if len(call.Args) >= 1 {
				op.flushAddrs = []ast.Expr{call.Args[0]}
			}
		case "PersistBarrier":
			op.barrierAddrs = call.Args
			op.fences = true
		case "Fence", "SFence", "Drain":
			op.fences = true
		default:
			return op, false
		}
		return op, true
	}

	fn := a.calleeFunc(call)
	if fn == nil {
		return op, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return op, false
	}
	firstIsEnv := sig.Params().Len() > 0 && isEnvType(sig.Params().At(0).Type())
	if firstIsEnv && fn.Name() == "Store64" && len(call.Args) >= 2 {
		op.dirtyAddrs = []ast.Expr{call.Args[1]}
		op.publish = call.Args[1]
		if len(call.Args) >= 3 {
			op.value = call.Args[2]
		}
		return op, true
	}
	if firstIsEnv && fn.Name() == "Load64" {
		return op, true // known pure read
	}
	// The pds persistence-tagged primitives (internal/pds) are intrinsics
	// like Store64: hardcoding them lets the commit-store contract attach
	// to CASP/StoreP publishes and keeps cross-package callers visible,
	// which is how persistlint verifies the library's emitted flush
	// discipline with zero suppressions.
	if firstIsEnv && fn.Name() == "StoreP" && len(call.Args) >= 3 {
		op.dirtyAddrs = []ast.Expr{call.Args[1]}
		op.flushAddrs = []ast.Expr{call.Args[1]}
		op.publish = call.Args[1]
		op.value = call.Args[2]
		return op, true
	}
	if firstIsEnv && fn.Name() == "LoadP" {
		return op, true // tagged load lowers to a plain load
	}
	if firstIsEnv && fn.Name() == "CASP" && len(call.Args) >= 4 {
		op.dirtyAddrs = []ast.Expr{call.Args[1]}
		op.flushAddrs = []ast.Expr{call.Args[1]}
		op.fences = true
		op.publish = call.Args[1]
		op.value = call.Args[3]
		return op, true
	}
	if firstIsEnv && fn.Name() == "FlushP" && len(call.Args) >= 2 {
		op.flushAddrs = []ast.Expr{call.Args[1]}
		return op, true
	}
	if firstIsEnv && fn.Name() == "DrainP" {
		op.fences = true
		return op, true
	}
	// cpu.PersistBarrier is the non-allocating front door to
	// Env.PersistBarrier; the address list starts at argument 1.
	if firstIsEnv && fn.Name() == "PersistBarrier" {
		op.barrierAddrs = call.Args[1:]
		op.fences = true
		return op, true
	}
	s := a.summaries[fn]
	if s == nil {
		return op, false
	}
	// Map the summary's parameter indices onto this call's arguments,
	// expanding the variadic tail (and a spread `xs...` argument).
	argsAt := func(i int) []ast.Expr {
		if s.variadic && i == s.nparams-1 {
			if i < len(call.Args) {
				return call.Args[i:]
			}
			return nil
		}
		if i < len(call.Args) {
			return []ast.Expr{call.Args[i]}
		}
		return nil
	}
	for i := range s.dirtyParams {
		op.dirtyAddrs = append(op.dirtyAddrs, argsAt(i)...)
	}
	for i := range s.flushParams {
		op.flushAddrs = append(op.flushAddrs, argsAt(i)...)
	}
	for i := range s.barrierParam {
		op.barrierAddrs = append(op.barrierAddrs, argsAt(i)...)
	}
	op.fences = s.fences || len(s.barrierParam) > 0
	return op, len(op.dirtyAddrs)+len(op.flushAddrs)+len(op.barrierAddrs) > 0 || op.fences
}

// --- per-function dataflow ---

// locInfo is one location's lattice point plus the store that put it there
// (for anchoring exit-state diagnostics).
type locInfo struct {
	st  state
	pos token.Pos
}

// fact maps abstract locations to their persistency state; absent means
// durable. reached distinguishes dead blocks from the empty fact.
type fact struct {
	reached bool
	locs    map[*class]locInfo
}

// unit analyzes one function body. It implements dataflow.Problem twice
// over: a silent fixpoint pass, then a reporting replay over the final
// block-entry facts.
type unit struct {
	a             *analysis
	relaxed       bool
	everDirty     map[*class]bool
	names         map[string]map[*class]bool
	hasBarrierOps bool
	scanning      bool // pre-scan mode: collect everDirty, no facts
	report        bool // replay mode: emit diagnostics
}

func (u *unit) Entry() fact  { return fact{reached: true, locs: map[*class]locInfo{}} }
func (u *unit) Bottom() fact { return fact{} }

func (u *unit) Clone(f fact) fact {
	locs := make(map[*class]locInfo, len(f.locs))
	for c, li := range f.locs {
		locs[c] = li
	}
	return fact{reached: f.reached, locs: locs}
}

func (u *unit) Equal(a, b fact) bool {
	if a.reached != b.reached || len(a.locs) != len(b.locs) {
		return false
	}
	for c, li := range a.locs {
		if b.locs[c] != li {
			return false
		}
	}
	return true
}

func (u *unit) Join(a, b fact) fact {
	if !a.reached {
		return u.Clone(b)
	}
	if !b.reached {
		return u.Clone(a)
	}
	out := u.Clone(a)
	for c, bi := range b.locs {
		ai, ok := out.locs[c]
		switch {
		case !ok || bi.st > ai.st:
			out.locs[c] = bi
		case bi.st == ai.st && bi.pos < ai.pos:
			out.locs[c] = bi
		}
	}
	return out
}

func (u *unit) Transfer(n ast.Node, f fact) fact {
	if !f.reached {
		return f
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		u.walk(n, &f)
		u.a.bindDirtyResults(n, func(lhs ast.Expr, pos token.Pos) {
			u.dirty(&f, u.a.locOf(lhs), pos)
		})
	case *ast.RangeStmt:
		u.walk(n.X, &f)
	default:
		u.walk(n, &f)
	}
	return f
}

// walk processes every call in n, in source order, against the fact.
func (u *unit) walk(n ast.Node, f *fact) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false // analyzed as its own unit
		}
		if call, ok := m.(*ast.CallExpr); ok {
			u.apply(call, f)
		}
		return true
	})
}

func (u *unit) apply(call *ast.CallExpr, f *fact) {
	op, ok := u.a.resolveCall(call)
	if !ok {
		return
	}
	if op.publish != nil {
		u.commitCheck(call, op, f)
	}
	for _, e := range op.dirtyAddrs {
		u.dirty(f, u.a.locOf(e), call.Pos())
	}
	for _, e := range op.flushAddrs {
		u.flush(f, u.a.locOf(e), call)
	}
	if len(op.barrierAddrs) > 0 || (op.fences && isBarrierCall(call)) {
		u.barrier(f, op.barrierAddrs, call)
	} else if op.fences {
		u.fence(f, call)
	}
}

// isBarrierCall distinguishes a direct PersistBarrier() with no addresses
// (still a barrier, fences everything) from a plain Fence method.
func isBarrierCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "PersistBarrier"
}

func (u *unit) dirty(f *fact, c *class, pos token.Pos) {
	if u.scanning {
		u.everDirty[c] = true
		return
	}
	f.locs[c] = locInfo{st: dirty, pos: pos}
}

func (u *unit) flush(f *fact, c *class, call *ast.CallExpr) {
	if u.scanning {
		u.hasBarrierOps = true
		return
	}
	if u.relaxed {
		if u.report {
			u.a.pass.Reportf(call.Pos(), "flush is a no-op under BBB/eADR (stores persist in program order)")
		}
		return
	}
	li, present := f.locs[c]
	if u.report && u.everDirty[c] && (!present || li.st != dirty) {
		u.a.pass.Reportf(call.Pos(), "redundant flush of %s: already %s on every path here", c.name, li.st)
	}
	if present && li.st == dirty {
		f.locs[c] = locInfo{st: flushed, pos: li.pos}
	}
}

func (u *unit) barrier(f *fact, addrs []ast.Expr, call *ast.CallExpr) {
	if u.scanning {
		u.hasBarrierOps = true
		return
	}
	if u.relaxed {
		if u.report {
			u.a.pass.Reportf(call.Pos(), "persist barrier is a no-op under BBB/eADR (stores persist in program order)")
		}
		return
	}
	classes := make([]*class, 0, len(addrs))
	for _, e := range addrs {
		classes = append(classes, u.a.locOf(e))
	}
	if u.report && len(classes) > 0 && isBarrierCall(call) {
		redundant := !anyFlushed(f)
		names := make([]string, 0, len(classes))
		for _, c := range classes {
			if !u.everDirty[c] {
				redundant = false
				break
			}
			if _, present := f.locs[c]; present {
				redundant = false
				break
			}
			names = append(names, c.name)
		}
		if redundant {
			u.a.pass.Reportf(call.Pos(), "redundant persist barrier: %s already durable on every path here and no flushed stores pending", strings.Join(names, ", "))
		}
	}
	for _, c := range classes {
		delete(f.locs, c)
	}
	// The barrier's fence completes every outstanding write-back too.
	completeFlushed(f)
}

func (u *unit) fence(f *fact, call *ast.CallExpr) {
	if u.scanning {
		u.hasBarrierOps = true
		return
	}
	if u.relaxed {
		if u.report {
			u.a.pass.Reportf(call.Pos(), "fence is a no-op under BBB/eADR (stores persist in program order)")
		}
		return
	}
	if u.report && !anyFlushed(f) && len(u.everDirty) > 0 {
		u.a.pass.Reportf(call.Pos(), "redundant fence: no flushed stores pending on any path here")
	}
	completeFlushed(f)
}

func anyFlushed(f *fact) bool {
	for _, li := range f.locs {
		if li.st == flushed {
			return true
		}
	}
	return false
}

func completeFlushed(f *fact) {
	for c, li := range f.locs {
		if li.st == flushed {
			delete(f.locs, c)
		}
	}
}

// commitCheck enforces the ordering contract at an annotated publish
// store: every dependee must be durable on every path reaching it.
func (u *unit) commitCheck(call *ast.CallExpr, op callOp, f *fact) {
	deps, ok := u.a.commitDeps(call.Pos())
	if !ok || u.scanning || !u.report || u.relaxed {
		return
	}
	checked := map[*class]bool{}
	check := func(c *class, name string) {
		if checked[c] {
			return
		}
		checked[c] = true
		li, present := f.locs[c]
		if !present {
			return // durable on every path: the contract holds
		}
		switch li.st {
		case dirty:
			u.a.pass.Reportf(call.Pos(), "commit store: dependee %s is dirty (not yet flushed) on some path to this publish", name)
		case flushed:
			u.a.pass.Reportf(call.Pos(), "commit store: dependee %s is flushed but not yet fenced on some path to this publish", name)
		}
	}
	if len(deps) > 0 {
		for _, name := range deps {
			classes := u.names[name]
			if len(classes) == 0 {
				u.a.pass.Reportf(call.Pos(), "commit-store dependee %q does not name a location in this function", name)
				continue
			}
			for c := range classes {
				check(c, name)
			}
		}
		return
	}
	// No explicit names: every ever-dirtied location the stored value
	// mentions is a dependee (publishing node makes node recoverable).
	if op.value == nil {
		return
	}
	ast.Inspect(op.value, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		if v, isVar := u.a.info.Uses[id].(*types.Var); isVar {
			if c := u.a.classOf(v).find(); u.everDirty[c] {
				check(c, id.Name)
			}
		}
		return true
	})
}

// --- driving one function ---

// analyzeUnit runs the lattice over one function body: a silent fixpoint,
// a reporting replay, and the program-exit durability check.
func (a *analysis) analyzeUnit(body *ast.BlockStmt, ftype *ast.FuncType, hasRecv, relaxed bool) {
	u := &unit{
		a:         a,
		relaxed:   relaxed,
		everDirty: map[*class]bool{},
		names:     map[string]map[*class]bool{},
	}
	// Pre-scan: which locations ever get dirtied here, does the function
	// barrier at all, and which names map to which classes.
	u.scanning = true
	var dummy fact
	walkSkippingFuncLits(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			u.apply(n, &dummy)
		case *ast.AssignStmt:
			a.bindDirtyResults(n, func(lhs ast.Expr, pos token.Pos) {
				u.everDirty[a.locOf(lhs)] = true
			})
		case *ast.Ident:
			obj := a.info.Uses[n]
			if obj == nil {
				obj = a.info.Defs[n]
			}
			if v, ok := obj.(*types.Var); ok {
				c := a.classOf(v).find()
				if u.names[n.Name] == nil {
					u.names[n.Name] = map[*class]bool{}
				}
				u.names[n.Name][c] = true
			}
		}
	})
	u.scanning = false
	if len(u.everDirty) == 0 && !u.hasBarrierOps {
		return // no persistency traffic at all
	}

	g := cfg.New(body)
	in := dataflow.Forward[fact](g, u)

	// Replay with reporting over the settled facts; dead blocks (still at
	// bottom) report nothing.
	u.report = true
	for _, b := range g.Blocks {
		f := u.Clone(in[b])
		if !f.reached {
			continue
		}
		for _, n := range b.Nodes {
			f = u.Transfer(n, f)
		}
	}
	u.report = false

	// Exit-state check for program-shaped functions under the strict
	// discipline: anything not durable at exit may never persist.
	if relaxed || hasRecv || !programShaped(a, ftype) {
		return
	}
	exit := in[g.Exit]
	if !exit.reached {
		return
	}
	type leak struct {
		c  *class
		li locInfo
	}
	var leaks []leak
	for c, li := range exit.locs {
		leaks = append(leaks, leak{c, li})
	}
	sort.Slice(leaks, func(i, j int) bool { return leaks[i].li.pos < leaks[j].li.pos })
	for _, l := range leaks {
		msg := fmt.Sprintf("store to %s is never made durable on some path to program exit (still %s)", l.c.name, l.li.st)
		if !u.hasBarrierOps {
			msg += " — this program issues no barriers at all, so Options.NoBarriers is vacuous for it"
		}
		a.pass.Reportf(l.li.pos, "%s", msg)
	}
}

// programShaped reports whether ftype is a simulator program: exactly one
// parameter, of Env type, and no results — the system.Program shape.
func programShaped(a *analysis, ftype *ast.FuncType) bool {
	if ftype.Results != nil && len(ftype.Results.List) > 0 {
		return false
	}
	if ftype.Params == nil || len(ftype.Params.List) != 1 {
		return false
	}
	p := ftype.Params.List[0]
	if len(p.Names) > 1 {
		return false
	}
	return isEnvType(a.typeOf(p.Type))
}

// walkSkippingFuncLits visits every node of body except nested function
// literal bodies, which execute on their own schedule and are analyzed as
// separate units.
func walkSkippingFuncLits(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
