package persist

// Without a file-level //bbbvet:scheme directive the analysis falls back
// to a per-declaration heuristic: code mentioning only the battery-backed
// scheme constants is relaxed, code mentioning PMEM is strict.

type Scheme int

const (
	SchemePMEM Scheme = iota
	SchemeBBB
	SchemeEADR
)

func buildBBB(e Env, a Addr) {
	_ = SchemeBBB
	Store64(e, a, 1)
	e.PersistBarrier(a) // want "no-op under BBB/eADR"
}

func buildPMEM(e Env, a Addr) {
	_, _ = SchemePMEM, SchemeBBB
	Store64(e, a, 1)
	e.PersistBarrier(a)
}
