//bbbvet:scheme bbb

package persist

// Under a battery-backed scheme the hardware persists stores in program
// order: persist operations are no-ops worth flagging, and the ordering
// and exit checks are suppressed entirely.

func relaxedProgram(e Env) {
	a := Addr(256)
	Store64(e, a, 1)
	e.PersistBarrier(a) // want "persist barrier is a no-op under BBB/eADR \\(stores persist in program order\\)"
}

func relaxedFlushFence(e Env, a Addr) {
	Store64(e, a, 1)
	e.WriteBack(a) // want "flush is a no-op under BBB/eADR"
	e.Fence()      // want "fence is a no-op under BBB/eADR"
}

// Publishing without any barrier is exactly what BBB makes legal: silent.
func relaxedPublish(e Env, head Addr) {
	node := head + 64
	Store64(e, node, 1)
	//bbbvet:commit-store node
	Store64(e, head, uint64(node))
}
