// Package persist is the persistlint fixture: a self-contained model of
// the simulator's execution interface, rich enough (separate write-back
// and fence operations) to exercise the full dirty → flushed → durable
// lattice rather than only the combined PersistBarrier step.
package persist

type Addr uint64

type Env interface {
	Load(addr Addr, size int) uint64
	Store(addr Addr, size int, val uint64)
	WriteBack(addr Addr)
	Fence()
	PersistBarrier(addrs ...Addr)
	CompareAndSwap(addr Addr, size int, old, new uint64) (uint64, bool)
}

type Params struct{ NoBarriers bool }

// Store64 mirrors the simulator's cpu.Store64 convenience.
func Store64(e Env, addr Addr, val uint64) { e.Store(addr, 8, val) }

// barrier mirrors the workload package's NoBarriers-aware helper; calls
// through it must analyze like direct PersistBarrier calls (summaries).
func barrier(e Env, p Params, addrs ...Addr) {
	if p.NoBarriers {
		return
	}
	e.PersistBarrier(addrs...)
}

// newNode dirties an address and returns it: a dirty-returning helper.
func newNode(e Env, at Addr, v uint64) Addr {
	Store64(e, at, v)
	return at
}

// The seeded WAL bug: the tail is published before the record is durable.
func walBroken(e Env, rec, tail Addr, p Params) {
	Store64(e, rec, 42)
	//bbbvet:commit-store rec
	Store64(e, tail, 1) // want "dependee rec is dirty \\(not yet flushed\\) on some path to this publish"
	barrier(e, p, tail)
}

func walFixed(e Env, rec, tail Addr, p Params) {
	Store64(e, rec, 42)
	barrier(e, p, rec)
	//bbbvet:commit-store rec
	Store64(e, tail, 1)
	barrier(e, p, tail)
}

// Flushed is not durable: the fence is still missing at the publish.
func publishFlushedNotFenced(e Env, rec, tail Addr) {
	Store64(e, rec, 7)
	e.WriteBack(rec)
	//bbbvet:commit-store rec
	Store64(e, tail, 1) // want "dependee rec is flushed but not yet fenced on some path to this publish"
	e.Fence()
}

func doubleFlush(e Env, a Addr) {
	Store64(e, a, 1)
	e.WriteBack(a)
	e.WriteBack(a) // want "redundant flush of a: already flushed on every path here"
	e.Fence()
}

func flushAfterBarrier(e Env, a Addr) {
	Store64(e, a, 1)
	e.PersistBarrier(a)
	e.WriteBack(a) // want "redundant flush of a: already durable on every path here"
}

func doubleBarrier(e Env, a Addr) {
	Store64(e, a, 1)
	e.PersistBarrier(a)
	e.PersistBarrier(a) // want "redundant persist barrier: a already durable on every path here and no flushed stores pending"
}

func doubleFence(e Env, a Addr) {
	Store64(e, a, 1)
	e.WriteBack(a)
	e.Fence()
	e.Fence() // want "redundant fence: no flushed stores pending on any path here"
}

// The barrier is only conditionally redundant — on the other path the
// store is still dirty — so a must-redundancy lint stays silent.
func conditionallyDurable(e Env, a Addr, c bool) {
	Store64(e, a, 1)
	if c {
		e.PersistBarrier(a)
	}
	e.PersistBarrier(a)
}

// Per-iteration store+barrier: the back edge joins in the durable state,
// so neither a redundancy nor an ordering diagnostic may fire.
func loopDiscipline(e Env, base Addr, n int) {
	for i := 0; i < n; i++ {
		slot := base + Addr(i)*8
		Store64(e, slot, uint64(i))
		e.PersistBarrier(slot)
	}
}

// The publish discipline factored through helpers: newNode's return value
// is dirty (summary), barrier makes it durable, then publishing is fine.
func publishViaHelper(e Env, slot, at Addr, p Params) {
	n := newNode(e, at, 7)
	barrier(e, p, n)
	//bbbvet:commit-store n
	Store64(e, slot, uint64(n))
	barrier(e, p, slot)
}

func publishViaHelperBroken(e Env, slot, at Addr, p Params) {
	n := newNode(e, at, 7)
	//bbbvet:commit-store n
	Store64(e, slot, uint64(n)) // want "dependee n is dirty"
	barrier(e, p, slot)
}

// With no names on the directive, dependees are inferred from the stored
// value: publishing uint64(node) makes node the dependee.
func inferredBroken(e Env, head Addr) {
	node := head + 64
	Store64(e, node, 1)
	//bbbvet:commit-store
	Store64(e, head, uint64(node)) // want "dependee node is dirty"
}

func inferredFixed(e Env, head Addr) {
	node := head + 64
	Store64(e, node, 1)
	e.PersistBarrier(node)
	//bbbvet:commit-store
	Store64(e, head, uint64(node))
	e.PersistBarrier(head)
}

func badDep(e Env, head Addr) {
	//bbbvet:commit-store missing
	Store64(e, head, 1) // want "commit-store dependee \"missing\" does not name a location in this function"
	e.PersistBarrier(head)
}

// A CAS is a publish too (the lock-free pattern).
func casPublish(e Env, head Addr, cur uint64) {
	node := head + 128
	Store64(e, node, 1)
	//bbbvet:commit-store node
	if _, ok := e.CompareAndSwap(head, 8, cur, uint64(node)); ok { // want "dependee node is dirty"
		_ = ok
	}
}

// Program-shaped (one Env parameter, no results): the exit check applies.
func programMissingBarriers(e Env) {
	a := Addr(64)
	Store64(e, a, 1) // want "never made durable on some path to program exit \\(still dirty\\) — this program issues no barriers at all, so Options.NoBarriers is vacuous for it"
}

func programDirtyOnOnePath(e Env) {
	a := Addr(128)
	Store64(e, a, 1) // want "never made durable on some path to program exit \\(still dirty\\)$"
	if a > 0 {
		e.PersistBarrier(a)
	}
}

func programDisciplined(e Env) {
	a := Addr(192)
	Store64(e, a, 2)
	e.PersistBarrier(a)
}

// The barrier after return is unreachable: no redundancy diagnostic may
// come from a dead block.
func deadCode(e Env, a Addr) {
	Store64(e, a, 1)
	e.PersistBarrier(a)
	return
	e.PersistBarrier(a)
}

// A finding suppressed the usual way stays suppressed.
func ignoredCase(e Env, a Addr) {
	Store64(e, a, 1)
	e.Fence() //bbbvet:ignore persistlint deliberate early fence for the test
}
