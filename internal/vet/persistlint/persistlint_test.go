package persistlint

import (
	"testing"

	"bbb/internal/vet"
)

func TestPersistFixture(t *testing.T) {
	vet.RunFixture(t, Analyzer, "testdata/persist")
}
