package memory

import "sort"

// Wear tracking: NVM cells have limited write endurance (the paper's
// motivation for counting NVMM writes in Fig. 7b and for skipping redundant
// LLC writebacks in §III-E). The memory records per-line write counts for
// the NVMM region so experiments can report not just totals but the
// *distribution* — a hot line wears out first, regardless of the average.

// WearStats summarizes the per-line write distribution of the NVMM region.
type WearStats struct {
	// LinesWritten is the number of distinct NVMM lines ever written.
	LinesWritten int
	// TotalWrites is the total number of NVMM line writes.
	TotalWrites uint64
	// MaxWrites is the hottest line's write count.
	MaxWrites uint64
	// MaxLine is the hottest line's address.
	MaxLine Addr
	// MeanWrites is TotalWrites / LinesWritten.
	MeanWrites float64
	// P99Writes is the 99th-percentile per-line write count.
	P99Writes uint64
}

// EnableWearTracking turns on per-line NVMM write accounting (off by
// default: the map costs memory on big runs).
func (m *Memory) EnableWearTracking() {
	if m.wear == nil {
		m.wear = make(map[Addr]uint64)
	}
}

// WearTrackingEnabled reports whether per-line accounting is on.
func (m *Memory) WearTrackingEnabled() bool { return m.wear != nil }

func (m *Memory) recordWear(a Addr) {
	if m.wear != nil && m.layout.RegionOf(a) == RegionNVMM {
		m.wear[a]++
	}
}

// Wear summarizes the per-line write distribution. Zero-valued stats are
// returned when tracking is off or nothing was written.
func (m *Memory) Wear() WearStats {
	var s WearStats
	if len(m.wear) == 0 {
		return s
	}
	// Iterate lines in address order: MaxLine must be deterministic when
	// several lines tie for the hottest count (map order is randomized).
	lines := make([]Addr, 0, len(m.wear))
	//bbbvet:ignore detlint key collection for sorting; order-insensitive
	for a := range m.wear {
		lines = append(lines, a)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	counts := make([]uint64, 0, len(lines))
	for _, a := range lines {
		n := m.wear[a]
		s.TotalWrites += n
		counts = append(counts, n)
		if n > s.MaxWrites {
			s.MaxWrites = n
			s.MaxLine = a
		}
	}
	s.LinesWritten = len(m.wear)
	s.MeanWrites = float64(s.TotalWrites) / float64(s.LinesWritten)
	sort.Slice(counts, func(i, j int) bool { return counts[i] < counts[j] })
	s.P99Writes = counts[(len(counts)-1)*99/100]
	return s
}
