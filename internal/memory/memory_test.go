package memory

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestLayoutRegions(t *testing.T) {
	l := DefaultLayout()
	if got := l.RegionOf(0); got != RegionDRAM {
		t.Fatalf("RegionOf(0) = %v", got)
	}
	if got := l.RegionOf(l.NVMMBase); got != RegionNVMM {
		t.Fatalf("RegionOf(NVMMBase) = %v", got)
	}
	if got := l.RegionOf(l.NVMMBase + l.NVMMSize - 1); got != RegionNVMM {
		t.Fatalf("RegionOf(last NVMM byte) = %v", got)
	}
	if !l.Persistent(l.PersistentBase) {
		t.Fatal("PersistentBase should be persistent")
	}
	if l.Persistent(l.DRAMBase) {
		t.Fatal("DRAM should not be persistent")
	}
}

func TestRegionOfOutsidePanics(t *testing.T) {
	l := DefaultLayout()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range address did not panic")
		}
	}()
	l.RegionOf(l.NVMMBase + l.NVMMSize)
}

func TestLineHelpers(t *testing.T) {
	if LineAddr(0x12345) != 0x12340 {
		t.Fatalf("LineAddr = %#x", LineAddr(0x12345))
	}
	if LineOffset(0x12345) != 5 {
		t.Fatalf("LineOffset = %d", LineOffset(0x12345))
	}
}

func TestReadWriteLine(t *testing.T) {
	m := New(DefaultLayout())
	var src, dst [LineSize]byte
	for i := range src {
		src[i] = byte(i)
	}
	a := m.Layout().NVMMBase + 128
	m.WriteLine(a, &src)
	m.ReadLine(a, &dst)
	if src != dst {
		t.Fatal("line round-trip mismatch")
	}
	if m.Writes[RegionNVMM] != 1 || m.Reads[RegionNVMM] != 1 {
		t.Fatalf("accounting = writes %d reads %d", m.Writes[RegionNVMM], m.Reads[RegionNVMM])
	}
	if m.Writes[RegionDRAM] != 0 {
		t.Fatal("DRAM accounting touched by NVMM access")
	}
}

func TestUnalignedPanics(t *testing.T) {
	m := New(DefaultLayout())
	var l [LineSize]byte
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned WriteLine did not panic")
		}
	}()
	m.WriteLine(3, &l)
}

func TestUntouchedReadsZero(t *testing.T) {
	m := New(DefaultLayout())
	var dst [LineSize]byte
	dst[0] = 0xFF
	m.PeekLine(64, &dst)
	for i, b := range dst {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
	if m.TouchedPages() != 0 {
		t.Fatal("peek should not materialize pages")
	}
}

func TestPokePeekCrossPage(t *testing.T) {
	m := New(DefaultLayout())
	data := make([]byte, 3*PageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	base := Addr(PageSize - 100)
	m.Poke(base, data)
	got := m.Peek(base, len(data))
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page Poke/Peek mismatch")
	}
	if m.TouchedPages() != 4 {
		t.Fatalf("TouchedPages = %d, want 4", m.TouchedPages())
	}
}

// Property: any sequence of line writes is readable back, last-write-wins.
func TestPropertyLastWriteWins(t *testing.T) {
	l := DefaultLayout()
	f := func(lines []uint16, vals []byte) bool {
		m := New(l)
		last := map[Addr]byte{}
		for i, ln := range lines {
			a := l.NVMMBase + Addr(ln)*LineSize
			var buf [LineSize]byte
			v := byte(i)
			if i < len(vals) {
				v = vals[i]
			}
			for j := range buf {
				buf[j] = v
			}
			m.WriteLine(a, &buf)
			last[a] = v
		}
		for a, v := range last {
			var buf [LineSize]byte
			m.PeekLine(a, &buf)
			for _, b := range buf {
				if b != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
