package memory

import "testing"

func TestWearTrackingOffByDefault(t *testing.T) {
	m := New(DefaultLayout())
	var l [LineSize]byte
	m.WriteLine(m.Layout().NVMMBase, &l)
	if m.WearTrackingEnabled() {
		t.Fatal("tracking should be off by default")
	}
	if s := m.Wear(); s.LinesWritten != 0 {
		t.Fatalf("stats without tracking: %+v", s)
	}
}

func TestWearDistribution(t *testing.T) {
	m := New(DefaultLayout())
	m.EnableWearTracking()
	var l [LineSize]byte
	hot := m.Layout().NVMMBase
	for i := 0; i < 10; i++ {
		m.WriteLine(hot, &l)
	}
	for i := uint64(1); i <= 5; i++ {
		m.WriteLine(hot+Addr(i)*LineSize, &l)
	}
	s := m.Wear()
	if s.LinesWritten != 6 {
		t.Fatalf("LinesWritten = %d, want 6", s.LinesWritten)
	}
	if s.TotalWrites != 15 {
		t.Fatalf("TotalWrites = %d, want 15", s.TotalWrites)
	}
	if s.MaxWrites != 10 || s.MaxLine != hot {
		t.Fatalf("hottest = %d @%#x, want 10 @%#x", s.MaxWrites, s.MaxLine, hot)
	}
	if s.MeanWrites != 2.5 {
		t.Fatalf("MeanWrites = %g, want 2.5", s.MeanWrites)
	}
}

func TestWearIgnoresDRAM(t *testing.T) {
	m := New(DefaultLayout())
	m.EnableWearTracking()
	var l [LineSize]byte
	m.WriteLine(0, &l) // DRAM
	if s := m.Wear(); s.LinesWritten != 0 {
		t.Fatalf("DRAM write tracked as NVMM wear: %+v", s)
	}
}
