// Package memory models the flat physical address space of the simulated
// machine: a DRAM region and an NVMM region, with a sparse page-granular
// backing store so multi-gigabyte address spaces cost only what is touched.
//
// The NVMM region doubles as the durable image used by crash-recovery
// checks: whatever bytes are in the NVMM image at (or drained to it after) a
// crash is exactly what post-crash recovery code would observe.
package memory

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Addr is a physical byte address.
type Addr = uint64

const (
	// PageSize is the backing-store granularity.
	PageSize = 4096
	// LineSize is the cache-line size used throughout the simulator (64 B,
	// per Table III of the paper).
	LineSize = 64
)

// LineAddr returns the line-aligned address containing a.
func LineAddr(a Addr) Addr { return a &^ (LineSize - 1) }

// LineOffset returns a's offset within its cache line.
func LineOffset(a Addr) int { return int(a & (LineSize - 1)) }

// Region identifies which physical memory an address maps to.
type Region int

const (
	// RegionDRAM is volatile main memory.
	RegionDRAM Region = iota
	// RegionNVMM is non-volatile main memory.
	RegionNVMM
)

func (r Region) String() string {
	switch r {
	case RegionDRAM:
		return "DRAM"
	case RegionNVMM:
		return "NVMM"
	default:
		return fmt.Sprintf("Region(%d)", int(r))
	}
}

// Layout describes the physical address map. The paper's machine has 8 GiB
// of DRAM and 8 GiB of NVMM behind separate controllers; a portion of the
// NVMM range holds persistent data (allocated with palloc).
type Layout struct {
	DRAMBase Addr
	DRAMSize uint64
	NVMMBase Addr
	NVMMSize uint64
	// PersistentBase..PersistentBase+PersistentSize is the persistent heap
	// inside the NVMM range. Stores to it are "persisting stores".
	PersistentBase Addr
	PersistentSize uint64
}

// DefaultLayout mirrors Table III: 8 GiB DRAM at 0, 8 GiB NVMM above it,
// with the entire NVMM range available as persistent heap.
func DefaultLayout() Layout {
	const gib = 1 << 30
	return Layout{
		DRAMBase:       0,
		DRAMSize:       8 * gib,
		NVMMBase:       8 * gib,
		NVMMSize:       8 * gib,
		PersistentBase: 8 * gib,
		PersistentSize: 8 * gib,
	}
}

// RegionOf reports which memory a falls into. Addresses outside both ranges
// panic: the simulator never fabricates them.
func (l Layout) RegionOf(a Addr) Region {
	switch {
	case a >= l.DRAMBase && a < l.DRAMBase+l.DRAMSize:
		return RegionDRAM
	case a >= l.NVMMBase && a < l.NVMMBase+l.NVMMSize:
		return RegionNVMM
	default:
		panic(fmt.Sprintf("memory: address %#x outside DRAM and NVMM ranges", a))
	}
}

// Persistent reports whether a lies in the persistent heap, i.e. whether a
// store to it is a persisting store.
func (l Layout) Persistent(a Addr) bool {
	return a >= l.PersistentBase && a < l.PersistentBase+l.PersistentSize
}

// Memory is the functional backing store for the whole physical address
// space. It is shared by the DRAM and NVMM controllers; Region bookkeeping
// is purely in Layout.
type Memory struct {
	layout Layout
	pages  map[Addr]*[PageSize]byte
	wear   map[Addr]uint64 // per-line NVMM write counts (optional)

	// Last-page memo: accesses cluster heavily within a page (sequential
	// setup pokes, line reads), and pages are never removed once
	// materialized, so the memo cannot go stale.
	lastBase Addr
	lastPage *[PageSize]byte

	// Writes counts line-sized writes per region (for endurance accounting).
	Writes [2]uint64
	// Reads counts line-sized reads per region.
	Reads [2]uint64
}

// New returns an empty memory with the given layout.
func New(l Layout) *Memory {
	return &Memory{layout: l, pages: make(map[Addr]*[PageSize]byte)}
}

// Layout returns the address map.
func (m *Memory) Layout() Layout { return m.layout }

func (m *Memory) page(a Addr, create bool) *[PageSize]byte {
	base := a &^ (PageSize - 1)
	if m.lastPage != nil && base == m.lastBase {
		return m.lastPage
	}
	p := m.pages[base]
	if p == nil && create {
		p = new([PageSize]byte)
		m.pages[base] = p
	}
	if p != nil {
		m.lastBase, m.lastPage = base, p
	}
	return p
}

// ReadLine copies the 64-byte line containing a into dst and bumps read
// accounting. a must be line-aligned.
func (m *Memory) ReadLine(a Addr, dst *[LineSize]byte) {
	m.mustAligned(a)
	m.Reads[m.layout.RegionOf(a)]++
	m.peekLine(a, dst)
}

// WriteLine stores the 64-byte line at a and bumps write accounting. a must
// be line-aligned.
func (m *Memory) WriteLine(a Addr, src *[LineSize]byte) {
	m.mustAligned(a)
	m.Writes[m.layout.RegionOf(a)]++
	m.recordWear(a)
	p := m.page(a, true)
	copy(p[a&(PageSize-1):], src[:])
}

// PeekLine reads line bytes without touching accounting (used by recovery
// checks and tests).
func (m *Memory) PeekLine(a Addr, dst *[LineSize]byte) {
	m.mustAligned(a)
	m.peekLine(a, dst)
}

func (m *Memory) peekLine(a Addr, dst *[LineSize]byte) {
	p := m.page(a, false)
	if p == nil {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	copy(dst[:], p[a&(PageSize-1):])
}

// Peek reads n bytes starting at a without accounting; it may cross lines
// and pages.
func (m *Memory) Peek(a Addr, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; {
		p := m.page(a+Addr(i), false)
		off := int((a + Addr(i)) & (PageSize - 1))
		chunk := PageSize - off
		if chunk > n-i {
			chunk = n - i
		}
		if p != nil {
			copy(out[i:i+chunk], p[off:off+chunk])
		}
		i += chunk
	}
	return out
}

// Poke writes raw bytes without accounting (test/initialization helper).
func (m *Memory) Poke(a Addr, b []byte) {
	for i := 0; i < len(b); {
		p := m.page(a+Addr(i), true)
		off := int((a + Addr(i)) & (PageSize - 1))
		chunk := PageSize - off
		if chunk > len(b)-i {
			chunk = len(b) - i
		}
		copy(p[off:off+chunk], b[i:i+chunk])
		i += chunk
	}
}

// Poke64 writes a little-endian uint64 at a without accounting — the
// word-sized fast path workload setup loops lean on.
func (m *Memory) Poke64(a Addr, v uint64) {
	off := a & (PageSize - 1)
	if off+8 <= PageSize {
		p := m.page(a, true)
		binary.LittleEndian.PutUint64(p[off:], v)
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	m.Poke(a, b[:])
}

// TouchedPages reports how many distinct pages have been materialized.
func (m *Memory) TouchedPages() int { return len(m.pages) }

// Clone returns a deep copy of the memory contents with fresh accounting
// (Writes/Reads/wear start at zero). The crash-image model checker clones
// the post-drain image once per crash point and mutates the copy.
func (m *Memory) Clone() *Memory {
	c := &Memory{layout: m.layout, pages: make(map[Addr]*[PageSize]byte, len(m.pages))}
	//bbbvet:ignore detlint independent per-page copies into a fresh map; order cannot matter
	for base, p := range m.pages {
		cp := *p
		c.pages[base] = &cp
	}
	return c
}

// PageBases returns the base addresses of every materialized page, sorted.
// Deterministic inspection order for image hashing and diffing.
func (m *Memory) PageBases() []Addr {
	bases := make([]Addr, 0, len(m.pages))
	//bbbvet:ignore detlint key collection for sorting; order-insensitive
	for base := range m.pages {
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	return bases
}

func (m *Memory) mustAligned(a Addr) {
	if a%LineSize != 0 {
		panic(fmt.Sprintf("memory: address %#x not line-aligned", a))
	}
}
