// Package cache implements the set-associative SRAM cache arrays used for
// the private L1D caches and the shared L2/LLC. It holds real line data so
// the simulator is functionally executing, and carries the per-line MESI
// state and the persistent-data bit that the BBB design adds (§III-B of the
// paper: dirty persistent LLC victims are not written back because the bbPB
// drain already covers them).
package cache

import (
	"fmt"

	"bbb/internal/memory"
)

// State is a MESI coherence state.
type State int

// MESI states. Invalid lines are simply absent from the array, but State
// Invalid is used in protocol messages.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Line is one cache block.
type Line struct {
	Addr  memory.Addr // line-aligned address
	State State
	Dirty bool
	// Persistent marks a block holding persistent data. Under BBB a dirty
	// persistent LLC victim is silently dropped instead of written back.
	Persistent bool
	Data       [memory.LineSize]byte

	// Directory state, meaningful only on L2/LLC lines: which cores' L1s
	// hold the line, and which single core (if any) holds it E/M. Embedding
	// the directory in the LLC line mirrors the usual inclusive-LLC design
	// and keeps the hot coherence path free of a side map. Maintained by the
	// coherence package under its per-line transaction lock; Fill resets it.
	Sharers uint64
	Owner   int // core holding E/M, or -1

	lru uint64
}

// AddSharer records core c's L1 as holding this (L2) line.
func (l *Line) AddSharer(c int) { l.Sharers |= 1 << uint(c) }

// DropSharer removes core c from this (L2) line's sharer set.
func (l *Line) DropSharer(c int) { l.Sharers &^= 1 << uint(c) }

// IsSharer reports whether core c's L1 holds this (L2) line.
func (l *Line) IsSharer(c int) bool { return l.Sharers&(1<<uint(c)) != 0 }

// NoSharers reports whether no L1 holds this (L2) line.
func (l *Line) NoSharers() bool { return l.Sharers == 0 }

// Cache is a set-associative array. It is a passive structure: all timing
// and protocol behaviour lives in the coherence package.
type Cache struct {
	name     string
	sets     int
	ways     int
	lines    []Line // sets*ways, invalid entries have State==Invalid
	lruClock uint64

	// Accesses and Misses count lookups for hit-rate reporting.
	Accesses uint64
	Misses   uint64
}

// New builds a cache of the given total size in bytes and associativity.
// Size must be a multiple of ways*LineSize and the set count must be a power
// of two.
func New(name string, sizeBytes, ways int) *Cache {
	if sizeBytes <= 0 || ways <= 0 {
		panic("cache: size and ways must be positive")
	}
	lines := sizeBytes / memory.LineSize
	if lines%ways != 0 {
		panic(fmt.Sprintf("cache %s: %d lines not divisible by %d ways", name, lines, ways))
	}
	sets := lines / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", name, sets))
	}
	return &Cache{
		name:  name,
		sets:  sets,
		ways:  ways,
		lines: make([]Line, lines),
	}
}

// Name returns the cache's label (for diagnostics).
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SizeBytes returns the total data capacity.
func (c *Cache) SizeBytes() int { return c.sets * c.ways * memory.LineSize }

func (c *Cache) setIndex(addr memory.Addr) int {
	return int(addr/memory.LineSize) & (c.sets - 1)
}

func (c *Cache) set(addr memory.Addr) []Line {
	i := c.setIndex(addr)
	return c.lines[i*c.ways : (i+1)*c.ways]
}

// Lookup returns the line holding addr, or nil. It counts an access and, on
// nil, a miss, and refreshes LRU on a hit. addr must be line-aligned.
func (c *Cache) Lookup(addr memory.Addr) *Line {
	mustAligned(addr)
	c.Accesses++
	l := c.Probe(addr)
	if l == nil {
		c.Misses++
		return nil
	}
	c.lruClock++
	l.lru = c.lruClock
	return l
}

// Probe returns the line holding addr without touching accounting or LRU.
func (c *Cache) Probe(addr memory.Addr) *Line {
	mustAligned(addr)
	set := c.set(addr)
	for i := range set {
		if set[i].Addr == addr && set[i].State != Invalid {
			return &set[i]
		}
	}
	return nil
}

// Victim returns the line that would be evicted to make room for addr:
// an invalid way if one exists, else the true-LRU line. The returned line
// may then be overwritten via Fill. It never returns nil.
func (c *Cache) Victim(addr memory.Addr) *Line {
	mustAligned(addr)
	set := c.set(addr)
	var lru *Line
	for i := range set {
		if set[i].State == Invalid {
			return &set[i]
		}
		if lru == nil || set[i].lru < lru.lru {
			lru = &set[i]
		}
	}
	return lru
}

// Fill installs addr into the given line (which must belong to addr's set)
// with the given state and data, marking it most recently used.
func (c *Cache) Fill(l *Line, addr memory.Addr, st State, data *[memory.LineSize]byte) {
	mustAligned(addr)
	if st == Invalid {
		panic("cache: Fill with Invalid state")
	}
	c.lruClock++
	*l = Line{Addr: addr, State: st, Owner: -1, lru: c.lruClock}
	if data != nil {
		l.Data = *data
	}
}

// Invalidate removes addr from the cache, returning the old line contents
// (by value) and whether it was present.
func (c *Cache) Invalidate(addr memory.Addr) (Line, bool) {
	mustAligned(addr)
	if l := c.Probe(addr); l != nil {
		old := *l
		l.State = Invalid
		return old, true
	}
	return Line{}, false
}

// ForEach calls fn for every valid line. fn may mutate the line but must not
// invalidate it.
func (c *Cache) ForEach(fn func(*Line)) {
	for i := range c.lines {
		if c.lines[i].State != Invalid {
			fn(&c.lines[i])
		}
	}
}

// CountValid returns the number of valid lines, and the number of those that
// are dirty.
func (c *Cache) CountValid() (valid, dirty int) {
	c.ForEach(func(l *Line) {
		valid++
		if l.Dirty {
			dirty++
		}
	})
	return valid, dirty
}

func mustAligned(a memory.Addr) {
	if a%memory.LineSize != 0 {
		panic(fmt.Sprintf("cache: address %#x not line-aligned", a))
	}
}
