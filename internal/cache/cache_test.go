package cache

import (
	"testing"
	"testing/quick"

	"bbb/internal/memory"
)

func line(n uint64) memory.Addr { return memory.Addr(n * memory.LineSize) }

func TestNewGeometry(t *testing.T) {
	c := New("L1", 128*1024, 8)
	if c.Sets() != 256 || c.Ways() != 8 || c.SizeBytes() != 128*1024 {
		t.Fatalf("sets=%d ways=%d size=%d", c.Sets(), c.Ways(), c.SizeBytes())
	}
}

func TestNewBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two sets did not panic")
		}
	}()
	New("bad", 3*64*2, 2) // 3 sets
}

func TestFillLookup(t *testing.T) {
	c := New("c", 1024, 2)
	var data [memory.LineSize]byte
	data[0] = 0xAB
	v := c.Victim(line(1))
	c.Fill(v, line(1), Exclusive, &data)
	l := c.Lookup(line(1))
	if l == nil || l.State != Exclusive || l.Data[0] != 0xAB {
		t.Fatalf("lookup after fill: %+v", l)
	}
	if c.Lookup(line(99)) != nil {
		t.Fatal("lookup of absent line should be nil")
	}
	if c.Accesses != 2 || c.Misses != 1 {
		t.Fatalf("accesses=%d misses=%d", c.Accesses, c.Misses)
	}
}

func TestLRUVictim(t *testing.T) {
	c := New("c", 2*64*2, 2) // 2 sets, 2 ways
	// Two lines mapping to set 0 (even line numbers with 2 sets).
	a, b, d := line(0), line(2), line(4)
	c.Fill(c.Victim(a), a, Shared, nil)
	c.Fill(c.Victim(b), b, Shared, nil)
	c.Lookup(a) // refresh a; b becomes LRU
	v := c.Victim(d)
	if v.Addr != b {
		t.Fatalf("victim = %#x, want %#x (LRU)", v.Addr, b)
	}
	// An invalid way is preferred over evicting.
	c.Invalidate(a)
	v = c.Victim(d)
	if v.State != Invalid {
		t.Fatalf("victim should be the invalid way, got %+v", v)
	}
}

func TestInvalidate(t *testing.T) {
	c := New("c", 1024, 2)
	c.Fill(c.Victim(line(1)), line(1), Modified, nil)
	old, ok := c.Invalidate(line(1))
	if !ok || old.State != Modified {
		t.Fatalf("invalidate = %+v, %v", old, ok)
	}
	if c.Probe(line(1)) != nil {
		t.Fatal("line still present after invalidate")
	}
	if _, ok := c.Invalidate(line(1)); ok {
		t.Fatal("second invalidate should report absent")
	}
}

func TestForEachAndCounts(t *testing.T) {
	c := New("c", 4096, 4)
	for i := uint64(0); i < 5; i++ {
		l := c.Victim(line(i))
		c.Fill(l, line(i), Modified, nil)
		l.Dirty = i%2 == 0
	}
	valid, dirty := c.CountValid()
	if valid != 5 || dirty != 3 {
		t.Fatalf("valid=%d dirty=%d", valid, dirty)
	}
	n := 0
	c.ForEach(func(*Line) { n++ })
	if n != 5 {
		t.Fatalf("ForEach visited %d", n)
	}
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Modified.String() != "M" ||
		Shared.String() != "S" || Exclusive.String() != "E" {
		t.Fatal("State strings wrong")
	}
}

// Property: after filling any sequence of lines into a cache, every line the
// cache claims to hold is found at its own set, and the cache never exceeds
// its capacity per set.
func TestPropertySetDiscipline(t *testing.T) {
	f := func(lineNums []uint16) bool {
		c := New("p", 64*64*4, 4) // 64 sets, 4 ways
		for _, n := range lineNums {
			a := line(uint64(n))
			if c.Probe(a) == nil {
				c.Fill(c.Victim(a), a, Shared, nil)
			}
		}
		counts := map[int]int{}
		ok := true
		c.ForEach(func(l *Line) {
			counts[c.setIndex(l.Addr)]++
			if c.Probe(l.Addr) != l {
				ok = false
			}
		})
		for _, n := range counts {
			if n > c.Ways() {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
