package cache

import (
	"testing"

	"bbb/internal/memory"
)

// FuzzCacheOps drives a small cache with an arbitrary operation tape and
// checks structural discipline after every step: set residency, capacity,
// and lookup/probe agreement. Run with `go test -fuzz FuzzCacheOps` for
// exploration; the seed corpus runs as a normal test.
func FuzzCacheOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 250, 251, 9, 9, 9, 100, 101, 102})
	f.Add([]byte{255, 254, 253, 252, 0, 0, 0, 0})
	f.Add([]byte{7})
	f.Fuzz(func(t *testing.T, tape []byte) {
		c := New("fuzz", 8*64*2, 2) // 8 sets x 2 ways
		live := map[memory.Addr]bool{}
		for i := 0; i+1 < len(tape); i += 2 {
			a := memory.Addr(tape[i]) * memory.LineSize
			switch tape[i+1] % 3 {
			case 0: // fill (possibly evicting)
				if c.Probe(a) == nil {
					v := c.Victim(a)
					if v.State != Invalid {
						delete(live, v.Addr)
					}
					c.Fill(v, a, Shared, nil)
					live[a] = true
				}
			case 1: // lookup
				got := c.Lookup(a) != nil
				if got != live[a] {
					t.Fatalf("lookup(%#x) = %v, live = %v", a, got, live[a])
				}
			case 2: // invalidate
				_, had := c.Invalidate(a)
				if had != live[a] {
					t.Fatalf("invalidate(%#x) = %v, live = %v", a, had, live[a])
				}
				delete(live, a)
			}
			// Global discipline: everything live is probeable, capacity
			// per set is never exceeded.
			perSet := map[int]int{}
			c.ForEach(func(l *Line) {
				perSet[c.setIndex(l.Addr)]++
				if !live[l.Addr] {
					t.Fatalf("cache holds dead line %#x", l.Addr)
				}
			})
			for _, n := range perSet {
				if n > c.Ways() {
					t.Fatalf("set over capacity: %d", n)
				}
			}
		}
	})
}
