package engine

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrder(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(10, func() { got = append(got, 2) })
	e.Schedule(5, func() { got = append(got, 1) })
	e.Schedule(10, func() { got = append(got, 3) }) // same cycle: FIFO
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %d, want 10", e.Now())
	}
}

func TestZeroDelaySameCycle(t *testing.T) {
	e := New()
	var order []string
	e.Schedule(0, func() {
		order = append(order, "a")
		e.Schedule(0, func() { order = append(order, "c") })
	})
	e.Schedule(0, func() { order = append(order, "b") })
	e.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", e.Now())
	}
}

func TestAt(t *testing.T) {
	e := New()
	fired := Cycle(0)
	e.At(42, func() { fired = e.Now() })
	e.Run()
	if fired != 42 {
		t.Fatalf("fired at %d, want 42", fired)
	}
}

func TestAtPastPanics(t *testing.T) {
	e := New()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At in the past did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []Cycle
	for _, d := range []Cycle{1, 5, 10, 11, 20} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(10)
	if len(fired) != 3 {
		t.Fatalf("fired %v, want 3 events up to cycle 10", fired)
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	e.RunUntil(100)
	if len(fired) != 5 {
		t.Fatalf("fired %v, want all 5", fired)
	}
}

func TestStop(t *testing.T) {
	e := New()
	n := 0
	e.Schedule(1, func() { n++; e.Stop() })
	e.Schedule(2, func() { n++ })
	e.Run()
	if n != 1 {
		t.Fatalf("n = %d, want 1 (Stop should halt the loop)", n)
	}
	e.Run() // resumes
	if n != 2 {
		t.Fatalf("n = %d, want 2 after resuming", n)
	}
}

func TestTicker(t *testing.T) {
	e := New()
	count := 0
	e.Ticker(10, func() bool {
		count++
		return count < 5
	})
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 50 {
		t.Fatalf("Now() = %d, want 50", e.Now())
	}
}

func TestNilFnPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("nil fn did not panic")
		}
	}()
	e.Schedule(1, nil)
}

// Property: events always fire in nondecreasing time order, and same-time
// events fire in scheduling order.
func TestPropertyMonotonicDispatch(t *testing.T) {
	f := func(delays []uint8) bool {
		e := New()
		type rec struct {
			when Cycle
			seq  int
		}
		var fired []rec
		for i, d := range delays {
			i, d := i, Cycle(d%64)
			e.Schedule(d, func() { fired = append(fired, rec{e.Now(), i}) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i].when < fired[i-1].when {
				return false
			}
			if fired[i].when == fired[i-1].when && fired[i].seq < fired[i-1].seq &&
				Cycle(delays[fired[i].seq]%64) == Cycle(delays[fired[i-1].seq]%64) {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
