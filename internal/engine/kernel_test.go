package engine

import (
	"testing"
	"testing/quick"
)

// ScheduleArg must interleave with Schedule in strict scheduling order at
// equal cycles — the two forms share one sequence counter.
func TestScheduleArgOrdering(t *testing.T) {
	e := New()
	var got []uint64
	rec := func(v uint64) { got = append(got, v) }
	e.Schedule(5, func() { got = append(got, 1) })
	e.ScheduleArg(5, rec, 2)
	e.Schedule(5, func() { got = append(got, 3) })
	e.ScheduleArg(0, rec, 0)
	e.Run()
	want := []uint64{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 5 {
		t.Fatalf("Now() = %d, want 5", e.Now())
	}
}

func TestScheduleArgNilFnPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("nil fn did not panic")
		}
	}()
	e.ScheduleArg(1, nil, 0)
}

// Property: the specialized heap dispatches any mix of Schedule and
// ScheduleArg in nondecreasing time order with FIFO ties.
func TestPropertyMixedDispatchOrder(t *testing.T) {
	f := func(delays []uint8) bool {
		e := New()
		var whens []Cycle
		var seqs []int
		rec := func(i uint64) {
			whens = append(whens, e.Now())
			seqs = append(seqs, int(i))
		}
		for i, d := range delays {
			i, d := i, Cycle(d%32)
			if i%2 == 0 {
				e.ScheduleArg(d, rec, uint64(i))
			} else {
				e.Schedule(d, func() { rec(uint64(i)) })
			}
		}
		e.Run()
		for i := 1; i < len(whens); i++ {
			if whens[i] < whens[i-1] {
				return false
			}
			if whens[i] == whens[i-1] && seqs[i] < seqs[i-1] {
				return false
			}
		}
		return len(whens) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The kernel contract the simulator's throughput rests on: once the heap's
// backing array has reached its high-water mark, Schedule, ScheduleArg and
// Step allocate nothing.
func TestScheduleStepZeroAllocSteadyState(t *testing.T) {
	e := New()
	fn := func() {}
	afn := func(uint64) {}
	// Warm every queue structure to its high-water mark: the ring, the
	// overflow heap, and all wheelSize timing-wheel buckets (each bucket's
	// FIFO keeps its capacity across laps, so one warm lap with the peak
	// per-cycle event count suffices).
	for lap := 0; lap < 2; lap++ {
		for i := 0; i < wheelSize+16; i++ {
			e.Schedule(Cycle(i), fn)
			e.ScheduleArg(Cycle(i), afn, uint64(i))
		}
		e.Run()
	}
	avg := testing.AllocsPerRun(500, func() {
		for i := 0; i < 16; i++ {
			e.Schedule(Cycle(i), fn)
			e.ScheduleArg(Cycle(i), afn, uint64(i))
		}
		for e.Step() {
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state Schedule+Step allocates %.1f objects per run, want 0", avg)
	}
}

// BenchmarkEngineKernel measures raw scheduler throughput at a steady queue
// depth — the floor under every simulated event in the system.
func BenchmarkEngineKernel(b *testing.B) {
	e := New()
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.Schedule(Cycle(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(64, fn)
		e.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkEngineKernelArg is BenchmarkEngineKernel over the ScheduleArg
// form (the closure-free hot path used by the cpu package).
func BenchmarkEngineKernelArg(b *testing.B) {
	e := New()
	afn := func(uint64) {}
	for i := 0; i < 64; i++ {
		e.ScheduleArg(Cycle(i), afn, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleArg(64, afn, uint64(i))
		e.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}
