// Package engine provides the discrete-event simulation kernel used by every
// timed component in the BBB simulator.
//
// The kernel is deliberately simple: a binary heap of events ordered by
// (time, sequence). Events scheduled for the same cycle fire in the order
// they were scheduled, which makes whole-system runs deterministic.
//
// The heap is hand-specialized over the event struct (no container/heap,
// no interface boxing), so Schedule and Step are allocation-free once the
// backing array has grown to the run's high-water mark. For the hottest
// schedule sites, ScheduleArg carries a uint64 argument in the event itself
// so callers can reuse one long-lived callback instead of allocating a
// closure per event.
package engine

import (
	"fmt"
	"math/bits"

	"bbb/internal/stats"
	"bbb/internal/trace"
)

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle = uint64

// event is a callback scheduled to fire at a particular cycle. Exactly one
// of fn and afn is set; afn receives arg, saving a closure allocation at
// call sites that would otherwise capture a single word.
type event struct {
	when Cycle
	seq  uint64
	fn   func()
	afn  func(uint64)
	arg  uint64
}

// heapEntry is the pointer-free heap node: ordering key plus an index into
// the event slab. Keeping the heap free of pointers makes every sift swap a
// plain word copy — no GC write barriers, and nothing in the (frequently
// shuffled) heap for the garbage collector to scan.
type heapEntry struct {
	when Cycle
	seq  uint64
	idx  int32
}

// wheelSize is the span of the timing wheel in cycles. Component latencies
// are tens of cycles, so nearly every event lands in the wheel; only
// far-future schedules (deep memory-channel queueing, coarse tickers) fall
// through to the overflow heap.
const (
	wheelSize = 1024
	wheelMask = wheelSize - 1
)

// bucket is one timing-wheel slot: a FIFO of events for a single cycle.
// Because events earlier than now always drain before the window wraps, a
// bucket never mixes cycles, and the globally monotonic seq means appends
// arrive in seq order — so FIFO pop preserves (when, seq) order with no
// sifting at all.
type bucket struct {
	evs  []event
	head int
}

// Engine is the discrete-event scheduler. The zero value is not usable;
// construct one with New.
//
// Events are kept in three structures, merged on pop by (when, seq):
//
//   - ring: events for the current cycle (delay 0) — plain FIFO.
//   - wheel: events within wheelSize cycles — indexed by when&wheelMask.
//   - pq: far-future overflow — a pointer-free binary heap over an event
//     slab. Entries whose time drifts into the wheel window stay put; the
//     pop-time merge keeps ordering exact.
//
// All three are allocation-free once grown to the run's high-water mark.
type Engine struct {
	pq   []heapEntry // overflow min-heap ordered by (when, seq)
	evs  []event     // slab of pending heap events, indexed by heapEntry.idx
	free []int32     // recycled slab slots

	wheel      []bucket
	wheelCount int   // events resident in the wheel
	wheelPos   Cycle // no wheel event is earlier than this cycle
	// wheelBits is the wheel's occupancy bitmap, one bit per bucket, set on
	// enqueue and cleared when a bucket fully drains. wheelHead hops empty
	// gaps a 64-bucket word at a time instead of probing slot by slot.
	wheelBits [wheelSize / 64]uint64

	// ring holds same-cycle events (when == now at enqueue time). The ring
	// must drain before the clock can advance — no queued event can order
	// before a ring event — so ring entries always satisfy when == now.
	ring    []event
	head    int // ring read position
	now     Cycle
	seq     uint64
	stopped bool
	// Dispatched counts events executed, useful for sanity limits in tests.
	Dispatched uint64
	// Trace, when non-nil, receives microarchitectural events from every
	// component sharing this engine (components call Engine.Trace.Emit
	// with Engine.Now(); a nil recorder drops events for free).
	Trace *trace.Recorder
	// Metrics, when non-nil, receives histogram observations and gauge
	// samples from the same components (latency distributions, occupancy
	// timelines); a nil registry drops them for free, mirroring Trace.
	Metrics *stats.Metrics
}

// EmitTrace records a trace event at the current cycle; free when tracing
// is off.
func (e *Engine) EmitTrace(kind trace.Kind, core int, addr, aux uint64) {
	e.Trace.Emit(e.now, kind, core, addr, aux)
}

// New returns an empty engine at cycle 0.
func New() *Engine {
	return &Engine{wheel: make([]bucket, wheelSize)}
}

// Now reports the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// less orders the heap by (when, seq).
func (e *Engine) less(i, j int) bool {
	if e.pq[i].when != e.pq[j].when {
		return e.pq[i].when < e.pq[j].when
	}
	return e.pq[i].seq < e.pq[j].seq
}

// alloc stores ev in the slab and returns its slot.
func (e *Engine) alloc(ev event) int32 {
	if n := len(e.free); n > 0 {
		i := e.free[n-1]
		e.free = e.free[:n-1]
		e.evs[i] = ev
		return i
	}
	e.evs = append(e.evs, ev)
	return int32(len(e.evs) - 1)
}

// push inserts ev, sifting its heap entry up to position.
func (e *Engine) push(ev event) {
	e.pq = append(e.pq, heapEntry{when: ev.when, seq: ev.seq, idx: e.alloc(ev)})
	i := len(e.pq) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.pq[i], e.pq[parent] = e.pq[parent], e.pq[i]
		i = parent
	}
}

// pop removes and returns the earliest event. The vacated slab slot is
// zeroed so the callback (and anything it captures) is released to the GC.
func (e *Engine) pop() event {
	top := e.pq[0]
	n := len(e.pq) - 1
	e.pq[0] = e.pq[n]
	e.pq = e.pq[:n]
	i := 0
	for {
		smallest := i
		if l := 2*i + 1; l < n && e.less(l, smallest) {
			smallest = l
		}
		if r := 2*i + 2; r < n && e.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		e.pq[i], e.pq[smallest] = e.pq[smallest], e.pq[i]
		i = smallest
	}
	// The vacated slab slot is left as-is (not zeroed): the callbacks it
	// references are long-lived prebuilt closures, so retaining them until
	// the slot is reused costs nothing and skips a GC write barrier here.
	e.free = append(e.free, top.idx)
	return e.evs[top.idx]
}

// enqueue routes an event to the same-cycle ring, the timing wheel, or the
// overflow heap.
func (e *Engine) enqueue(ev event) {
	d := ev.when - e.now
	if d == 0 {
		e.ring = append(e.ring, ev)
		return
	}
	if d < wheelSize {
		slot := ev.when & wheelMask
		b := &e.wheel[slot]
		b.evs = append(b.evs, ev)
		e.wheelBits[slot/64] |= 1 << (slot % 64)
		if e.wheelCount == 0 || ev.when < e.wheelPos {
			e.wheelPos = ev.when
		}
		e.wheelCount++
		return
	}
	e.push(ev)
}

// wheelHead returns the earliest pending wheel event (without removing it),
// advancing wheelPos past empty cycles via the occupancy bitmap: runs of
// empty buckets cost one word test per 64 instead of a probe per slot.
// Amortized O(1): wheelPos only moves forward between resets by nearer
// enqueues.
func (e *Engine) wheelHead() *event {
	if e.wheelCount == 0 {
		return nil
	}
	for {
		slot := e.wheelPos & wheelMask
		if w := e.wheelBits[slot/64] >> (slot % 64); w != 0 {
			e.wheelPos += Cycle(bits.TrailingZeros64(w))
			b := &e.wheel[e.wheelPos&wheelMask]
			// A bucket never mixes cycles, but the scan can reach a bucket
			// whose single resident cycle is a full lap ahead (inserted
			// after the clock advanced); match the exact cycle before
			// stopping.
			if b.head < len(b.evs) && b.evs[b.head].when == e.wheelPos {
				return &b.evs[b.head]
			}
			e.wheelPos++
			continue
		}
		// Rest of this bitmap word is empty; hop to the next word boundary.
		e.wheelPos += 64 - (e.wheelPos % 64)
	}
}

// wheelPop removes the event wheelHead returned. Drained slots are not
// zeroed — see pop.
func (e *Engine) wheelPop() event {
	slot := e.wheelPos & wheelMask
	b := &e.wheel[slot]
	ev := b.evs[b.head]
	b.head++
	if b.head == len(b.evs) {
		b.evs = b.evs[:0]
		b.head = 0
		e.wheelBits[slot/64] &^= 1 << (slot % 64)
	}
	e.wheelCount--
	return ev
}

// Schedule queues fn to run delay cycles from now. A delay of 0 runs fn
// later in the current cycle, after already-queued same-cycle events.
func (e *Engine) Schedule(delay Cycle, fn func()) {
	if fn == nil {
		panic("engine: Schedule called with nil fn")
	}
	e.seq++
	e.enqueue(event{when: e.now + delay, seq: e.seq, fn: fn})
}

// ScheduleArg queues fn(arg) to run delay cycles from now, with the same
// ordering rules as Schedule. It exists for hot paths: a long-lived fn plus
// a value argument schedules with zero allocations, where Schedule would
// force the caller to allocate a fresh capturing closure per event.
func (e *Engine) ScheduleArg(delay Cycle, fn func(uint64), arg uint64) {
	if fn == nil {
		panic("engine: ScheduleArg called with nil fn")
	}
	e.seq++
	e.enqueue(event{when: e.now + delay, seq: e.seq, afn: fn, arg: arg})
}

// At queues fn to run at the absolute cycle when, which must not be in the
// past.
func (e *Engine) At(when Cycle, fn func()) {
	if when < e.now {
		panic(fmt.Sprintf("engine: At(%d) is in the past (now=%d)", when, e.now))
	}
	e.Schedule(when-e.now, fn)
}

// Stop makes the current Run call return after the in-flight event.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of queued events.
func (e *Engine) Pending() int {
	return len(e.pq) + e.wheelCount + len(e.ring) - e.head
}

// next removes and returns the globally earliest event, merging the
// same-cycle ring, the timing wheel, and the overflow heap by (when, seq).
// Ring entries always have when == now, so they win unless an equal-cycle
// wheel or heap event carries a smaller seq (scheduled on an earlier cycle
// for this one). It reports false when no event is pending.
func (e *Engine) next() (event, bool) {
	const (
		fromRing = iota
		fromWheel
		fromHeap
	)
	src := -1
	var when Cycle
	var seq uint64
	if e.head < len(e.ring) {
		src, when, seq = fromRing, e.ring[e.head].when, e.ring[e.head].seq
	}
	if wh := e.wheelHead(); wh != nil {
		if src < 0 || wh.when < when || (wh.when == when && wh.seq < seq) {
			src, when, seq = fromWheel, wh.when, wh.seq
		}
	}
	if len(e.pq) > 0 {
		if src < 0 || e.pq[0].when < when || (e.pq[0].when == when && e.pq[0].seq < seq) {
			src = fromHeap
		}
	}
	switch src {
	case fromRing:
		// Drained slots are not zeroed — see pop.
		ev := e.ring[e.head]
		e.head++
		if e.head == len(e.ring) {
			e.ring = e.ring[:0]
			e.head = 0
		}
		return ev, true
	case fromWheel:
		return e.wheelPop(), true
	case fromHeap:
		return e.pop(), true
	default:
		return event{}, false
	}
}

// Step executes the single earliest event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	ev, ok := e.next()
	if !ok {
		return false
	}
	if ev.when < e.now {
		panic("engine: time went backwards")
	}
	e.now = ev.when
	e.Dispatched++
	if ev.afn != nil {
		ev.afn(ev.arg)
	} else {
		ev.fn()
	}
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events until the queue is empty, Stop is called, or the
// clock would pass limit. Events at exactly limit still execute.
func (e *Engine) RunUntil(limit Cycle) {
	e.stopped = false
	for !e.stopped {
		if e.Pending() == 0 {
			return
		}
		nextWhen := Cycle(0)
		have := false
		if e.head < len(e.ring) {
			nextWhen, have = e.ring[e.head].when, true
		}
		if wh := e.wheelHead(); wh != nil && (!have || wh.when < nextWhen) {
			nextWhen, have = wh.when, true
		}
		if len(e.pq) > 0 && (!have || e.pq[0].when < nextWhen) {
			nextWhen = e.pq[0].when
		}
		if nextWhen > limit {
			return
		}
		e.Step()
	}
}

// Ticker invokes fn every period cycles until fn returns false.
func (e *Engine) Ticker(period Cycle, fn func() bool) {
	if period == 0 {
		panic("engine: Ticker period must be positive")
	}
	var tick func()
	tick = func() {
		if fn() {
			e.Schedule(period, tick)
		}
	}
	e.Schedule(period, tick)
}
