// Package engine provides the discrete-event simulation kernel used by every
// timed component in the BBB simulator.
//
// The kernel is deliberately simple: a binary heap of events ordered by
// (time, sequence). Events scheduled for the same cycle fire in the order
// they were scheduled, which makes whole-system runs deterministic.
//
// The heap is hand-specialized over the event struct (no container/heap,
// no interface boxing), so Schedule and Step are allocation-free once the
// backing array has grown to the run's high-water mark. For the hottest
// schedule sites, ScheduleArg carries a uint64 argument in the event itself
// so callers can reuse one long-lived callback instead of allocating a
// closure per event.
package engine

import (
	"fmt"

	"bbb/internal/stats"
	"bbb/internal/trace"
)

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle = uint64

// event is a callback scheduled to fire at a particular cycle. Exactly one
// of fn and afn is set; afn receives arg, saving a closure allocation at
// call sites that would otherwise capture a single word.
type event struct {
	when Cycle
	seq  uint64
	fn   func()
	afn  func(uint64)
	arg  uint64
}

// Engine is the discrete-event scheduler. The zero value is not usable;
// construct one with New.
type Engine struct {
	pq      []event // binary min-heap ordered by (when, seq)
	now     Cycle
	seq     uint64
	stopped bool
	// Dispatched counts events executed, useful for sanity limits in tests.
	Dispatched uint64
	// Trace, when non-nil, receives microarchitectural events from every
	// component sharing this engine (components call Engine.Trace.Emit
	// with Engine.Now(); a nil recorder drops events for free).
	Trace *trace.Recorder
	// Metrics, when non-nil, receives histogram observations and gauge
	// samples from the same components (latency distributions, occupancy
	// timelines); a nil registry drops them for free, mirroring Trace.
	Metrics *stats.Metrics
}

// EmitTrace records a trace event at the current cycle; free when tracing
// is off.
func (e *Engine) EmitTrace(kind trace.Kind, core int, addr, aux uint64) {
	e.Trace.Emit(e.now, kind, core, addr, aux)
}

// New returns an empty engine at cycle 0.
func New() *Engine {
	return &Engine{}
}

// Now reports the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// less orders the heap by (when, seq).
func (e *Engine) less(i, j int) bool {
	if e.pq[i].when != e.pq[j].when {
		return e.pq[i].when < e.pq[j].when
	}
	return e.pq[i].seq < e.pq[j].seq
}

// push inserts ev, sifting it up to its heap position.
func (e *Engine) push(ev event) {
	e.pq = append(e.pq, ev)
	i := len(e.pq) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.pq[i], e.pq[parent] = e.pq[parent], e.pq[i]
		i = parent
	}
}

// pop removes and returns the earliest event. The vacated tail slot is
// zeroed so the callback (and anything it captures) is released to the GC.
func (e *Engine) pop() event {
	top := e.pq[0]
	n := len(e.pq) - 1
	e.pq[0] = e.pq[n]
	e.pq[n] = event{}
	e.pq = e.pq[:n]
	i := 0
	for {
		smallest := i
		if l := 2*i + 1; l < n && e.less(l, smallest) {
			smallest = l
		}
		if r := 2*i + 2; r < n && e.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		e.pq[i], e.pq[smallest] = e.pq[smallest], e.pq[i]
		i = smallest
	}
}

// Schedule queues fn to run delay cycles from now. A delay of 0 runs fn
// later in the current cycle, after already-queued same-cycle events.
func (e *Engine) Schedule(delay Cycle, fn func()) {
	if fn == nil {
		panic("engine: Schedule called with nil fn")
	}
	e.seq++
	e.push(event{when: e.now + delay, seq: e.seq, fn: fn})
}

// ScheduleArg queues fn(arg) to run delay cycles from now, with the same
// ordering rules as Schedule. It exists for hot paths: a long-lived fn plus
// a value argument schedules with zero allocations, where Schedule would
// force the caller to allocate a fresh capturing closure per event.
func (e *Engine) ScheduleArg(delay Cycle, fn func(uint64), arg uint64) {
	if fn == nil {
		panic("engine: ScheduleArg called with nil fn")
	}
	e.seq++
	e.push(event{when: e.now + delay, seq: e.seq, afn: fn, arg: arg})
}

// At queues fn to run at the absolute cycle when, which must not be in the
// past.
func (e *Engine) At(when Cycle, fn func()) {
	if when < e.now {
		panic(fmt.Sprintf("engine: At(%d) is in the past (now=%d)", when, e.now))
	}
	e.Schedule(when-e.now, fn)
}

// Stop makes the current Run call return after the in-flight event.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.pq) }

// Step executes the single earliest event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := e.pop()
	if ev.when < e.now {
		panic("engine: time went backwards")
	}
	e.now = ev.when
	e.Dispatched++
	if ev.afn != nil {
		ev.afn(ev.arg)
	} else {
		ev.fn()
	}
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events until the queue is empty, Stop is called, or the
// clock would pass limit. Events at exactly limit still execute.
func (e *Engine) RunUntil(limit Cycle) {
	e.stopped = false
	for !e.stopped {
		if len(e.pq) == 0 || e.pq[0].when > limit {
			return
		}
		e.Step()
	}
}

// Ticker invokes fn every period cycles until fn returns false.
func (e *Engine) Ticker(period Cycle, fn func() bool) {
	if period == 0 {
		panic("engine: Ticker period must be positive")
	}
	var tick func()
	tick = func() {
		if fn() {
			e.Schedule(period, tick)
		}
	}
	e.Schedule(period, tick)
}
