// Package engine provides the discrete-event simulation kernel used by every
// timed component in the BBB simulator.
//
// The kernel is deliberately simple: a binary heap of events ordered by
// (time, sequence). Events scheduled for the same cycle fire in the order
// they were scheduled, which makes whole-system runs deterministic.
package engine

import (
	"container/heap"
	"fmt"

	"bbb/internal/trace"
)

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle = uint64

// Event is a callback scheduled to fire at a particular cycle.
type event struct {
	when Cycle
	seq  uint64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is the discrete-event scheduler. The zero value is not usable;
// construct one with New.
type Engine struct {
	pq      eventHeap
	now     Cycle
	seq     uint64
	stopped bool
	// Dispatched counts events executed, useful for sanity limits in tests.
	Dispatched uint64
	// Trace, when non-nil, receives microarchitectural events from every
	// component sharing this engine (components call Engine.Trace.Emit
	// with Engine.Now(); a nil recorder drops events for free).
	Trace *trace.Recorder
}

// EmitTrace records a trace event at the current cycle; free when tracing
// is off.
func (e *Engine) EmitTrace(kind trace.Kind, core int, addr, aux uint64) {
	e.Trace.Emit(e.now, kind, core, addr, aux)
}

// New returns an empty engine at cycle 0.
func New() *Engine {
	e := &Engine{}
	heap.Init(&e.pq)
	return e
}

// Now reports the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Schedule queues fn to run delay cycles from now. A delay of 0 runs fn
// later in the current cycle, after already-queued same-cycle events.
func (e *Engine) Schedule(delay Cycle, fn func()) {
	if fn == nil {
		panic("engine: Schedule called with nil fn")
	}
	e.seq++
	heap.Push(&e.pq, event{when: e.now + delay, seq: e.seq, fn: fn})
}

// At queues fn to run at the absolute cycle when, which must not be in the
// past.
func (e *Engine) At(when Cycle, fn func()) {
	if when < e.now {
		panic(fmt.Sprintf("engine: At(%d) is in the past (now=%d)", when, e.now))
	}
	e.Schedule(when-e.now, fn)
}

// Stop makes the current Run call return after the in-flight event.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return e.pq.Len() }

// Step executes the single earliest event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if e.pq.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(event)
	if ev.when < e.now {
		panic("engine: time went backwards")
	}
	e.now = ev.when
	e.Dispatched++
	ev.fn()
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events until the queue is empty, Stop is called, or the
// clock would pass limit. Events at exactly limit still execute.
func (e *Engine) RunUntil(limit Cycle) {
	e.stopped = false
	for !e.stopped {
		if e.pq.Len() == 0 || e.pq[0].when > limit {
			return
		}
		e.Step()
	}
}

// Ticker invokes fn every period cycles until fn returns false.
func (e *Engine) Ticker(period Cycle, fn func() bool) {
	if period == 0 {
		panic("engine: Ticker period must be positive")
	}
	var tick func()
	tick = func() {
		if fn() {
			e.Schedule(period, tick)
		}
	}
	e.Schedule(period, tick)
}
