package crashmc

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"

	"bbb/internal/memory"
)

// Bounds keep the enumerated survival-set space tractable. The reachable
// space is exponential in the pending-write count (that is the point the
// paper makes about PMEM), so beyond a small exhaustive window the
// enumerator explores only the subsets near the two extreme images — the
// crash-consistency bugs this models (persist reordering across a missing
// barrier) are witnessed by small subsets, exactly as sampled-reordering
// crash testers bound their search.
type Bounds struct {
	// ExhaustiveLimit: a survival group with at most this many writes is
	// enumerated exhaustively (2^n subsets). Default 10.
	ExhaustiveLimit int
	// MaxFlips: a larger group is enumerated at every subset within
	// MaxFlips writes of either extreme (none survive / all survive),
	// i.e. |S| <= MaxFlips or |S| >= n-MaxFlips. Default 2.
	MaxFlips int
	// MaxImages caps the survival sets materialized per crash point;
	// enumeration past the cap is counted in SetsSkipped, never silent.
	// Default 4096.
	MaxImages int
}

// DefaultBounds are the short-campaign bounds used by `make mc-short`.
func DefaultBounds() Bounds { return Bounds{} }

func (b Bounds) withDefaults() Bounds {
	if b.ExhaustiveLimit <= 0 {
		b.ExhaustiveLimit = 10
	}
	if b.MaxFlips <= 0 {
		b.MaxFlips = 2
	}
	if b.MaxImages <= 0 {
		b.MaxImages = 4096
	}
	return b
}

// LineWrite is one line of an image's overlay relative to the base image.
type LineWrite struct {
	Addr memory.Addr
	Data [memory.LineSize]byte
}

// Image is one distinct reachable durable state.
type Image struct {
	// Survivors are indices into Record.Pending (ascending) of the first
	// enumerated survival set that produced this image.
	Survivors []int
	// Overlay holds the lines whose bytes differ from the base image,
	// ascending by address — the canonical form the hash covers.
	Overlay []LineWrite
	// Hash is the canonical image hash: images with equal hashes are the
	// same durable state even if reached by different survival sets.
	Hash [32]byte
}

// Enumeration is the materialized reachable space at one crash point.
type Enumeration struct {
	// Sets is the number of legal survival sets enumerated.
	Sets int
	// SetsSkipped counts legal sets the bounds left unexplored — pruned
	// by ExhaustiveLimit/MaxFlips or cut by MaxImages (bounded-model-
	// checking honesty: truncation is never silent).
	SetsSkipped uint64
	// Images are the distinct reachable images, in first-seen order.
	// Images[0] always exists and is the deterministic flush-on-fail
	// image (the empty survival set extends the base by nothing).
	Images []Image
}

// Enumerate materializes the reachable crash-state space of rec within b.
func Enumerate(rec *Record, b Bounds) Enumeration {
	b = b.withDefaults()
	groups, total := survivalGroups(rec, b)

	var (
		enum Enumeration
		seen = make(map[[32]byte]bool)
		pick = make([]int, len(groups))
	)
	emit := func(set []int) {
		if enum.Sets >= b.MaxImages {
			return
		}
		enum.Sets++
		img := materialize(rec, set)
		if !seen[img.Hash] {
			seen[img.Hash] = true
			enum.Images = append(enum.Images, img)
		}
	}
	// Odometer cross product over the groups' candidate sets, in
	// deterministic lexicographic order; the empty survival set (every
	// group's first candidate) always comes first.
	for {
		set := make([]int, 0)
		for gi, g := range groups {
			set = append(set, g[pick[gi]]...)
		}
		sort.Ints(set)
		emit(set)
		if enum.Sets >= b.MaxImages {
			break
		}
		i := len(groups) - 1
		for i >= 0 {
			pick[i]++
			if pick[i] < len(groups[i]) {
				break
			}
			pick[i] = 0
			i--
		}
		if i < 0 {
			break
		}
	}
	if total > uint64(enum.Sets) {
		enum.SetsSkipped = total - uint64(enum.Sets)
	}
	return enum
}

// survivalGroups splits the pending set into independent groups and
// returns each group's legal candidate subsets (indices into Pending),
// plus the size of the FULL legal space (saturating) so callers can
// report how much the bounds pruned. ClassFree writes form one group
// with unconstrained subsets; each BEP core's ClassEpoch writes form a
// group whose subsets are epoch-downward closed (full earlier epochs,
// any bounded subset of the frontier epoch).
func survivalGroups(rec *Record, b Bounds) ([][][]int, uint64) {
	var free []int
	perCore := make(map[int][]int)
	var coreOrder []int
	for i, w := range rec.Pending {
		switch w.Class {
		case ClassFree:
			free = append(free, i)
		case ClassEpoch:
			if _, ok := perCore[w.Core]; !ok {
				coreOrder = append(coreOrder, w.Core)
			}
			perCore[w.Core] = append(perCore[w.Core], i)
		}
	}
	var groups [][][]int
	total := uint64(1)
	if len(free) > 0 {
		groups = append(groups, boundedSubsets(free, b))
		total = satMul(total, satPow2(len(free)))
	}
	for _, c := range coreOrder {
		groups = append(groups, epochSubsets(rec, perCore[c], b))
		total = satMul(total, epochSpaceSize(rec, perCore[c]))
	}
	if len(groups) == 0 {
		// No pending writes: the space is exactly {base image}.
		groups = append(groups, [][]int{{}})
	}
	return groups, total
}

// epochSpaceSize counts one core's full legal survival space: the empty
// set plus, for each epoch as the frontier, its nonempty subsets (the
// full-frontier set of epoch e coincides with the empty-frontier cut at
// epoch e+1, so per-epoch counts are 2^|e| - 1).
func epochSpaceSize(rec *Record, idx []int) uint64 {
	counts := epochRuns(rec, idx)
	total := uint64(1)
	for _, n := range counts {
		total += satPow2(n) - 1
		if total == ^uint64(0) {
			break
		}
	}
	return total
}

// epochRuns returns the run lengths of consecutive equal-epoch entries
// (capture order is allocation order, so idx is epoch-nondecreasing).
func epochRuns(rec *Record, idx []int) []int {
	var (
		runs []int
		last uint64
	)
	for _, i := range idx {
		e := rec.Pending[i].Epoch
		if len(runs) == 0 || e != last {
			runs = append(runs, 0)
			last = e
		}
		runs[len(runs)-1]++
	}
	return runs
}

// boundedSubsets returns subsets of idx per Bounds, deterministically
// ordered: by cardinality ascending, lexicographic within a cardinality,
// with the near-full complements last. The empty set is always first.
func boundedSubsets(idx []int, b Bounds) [][]int {
	n := len(idx)
	if n <= b.ExhaustiveLimit {
		out := make([][]int, 0, 1<<uint(n))
		for mask := 0; mask < 1<<uint(n); mask++ {
			var s []int
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) != 0 {
					s = append(s, idx[i])
				}
			}
			out = append(out, s)
		}
		sort.SliceStable(out, func(i, j int) bool { return len(out[i]) < len(out[j]) })
		return out
	}
	var sizes []int
	for k := 0; k <= n; k++ {
		if k <= b.MaxFlips || k >= n-b.MaxFlips {
			sizes = append(sizes, k)
		}
	}
	var out [][]int
	for _, k := range sizes {
		combinations(idx, k, func(s []int) {
			out = append(out, append([]int(nil), s...))
		})
	}
	return out
}

// combinations calls fn with every k-of-idx combination in lexicographic
// order. fn must copy s if it retains it.
func combinations(idx []int, k int, fn func(s []int)) {
	if k == 0 {
		fn(nil)
		return
	}
	sel := make([]int, k)
	var rec func(start, d int)
	rec = func(start, d int) {
		if d == k {
			fn(sel)
			return
		}
		for i := start; i <= len(idx)-(k-d); i++ {
			sel[d] = idx[i]
			rec(i+1, d+1)
		}
	}
	rec(0, 0)
}

// epochSubsets returns one core's legal vpb survival sets: for each cut
// epoch, every earlier epoch survives in full and the frontier epoch
// contributes any bounded subset. Duplicates across adjacent cuts (full
// frontier == next cut's empty frontier) are removed.
func epochSubsets(rec *Record, idx []int, b Bounds) [][]int {
	// Group the core's pending indices by epoch, ascending. Capture
	// order is allocation order and epochs only ever increment, so idx
	// is already epoch-nondecreasing.
	var (
		epochs [][]int
		last   uint64
	)
	for _, i := range idx {
		e := rec.Pending[i].Epoch
		if len(epochs) == 0 || e != last {
			epochs = append(epochs, nil)
			last = e
		}
		epochs[len(epochs)-1] = append(epochs[len(epochs)-1], i)
	}
	var (
		out    [][]int
		seen   = make(map[string]bool)
		prefix []int
	)
	add := func(s []int) {
		key := setKey(s)
		if !seen[key] {
			seen[key] = true
			out = append(out, append([]int(nil), s...))
		}
	}
	add(nil) // nothing extra drained
	for _, frontier := range epochs {
		for _, fs := range boundedSubsets(frontier, b) {
			add(append(append([]int(nil), prefix...), fs...))
		}
		prefix = append(prefix, frontier...)
	}
	return out
}

func setKey(s []int) string {
	k := make([]byte, 0, 4*len(s))
	for _, i := range s {
		k = binary.LittleEndian.AppendUint32(k, uint32(i))
	}
	return string(k)
}

// materialize resolves a survival set into its canonical image: survivors
// apply in capture (Seq) order, lines whose final bytes equal the base
// image drop out, and the rest hash in address order.
func materialize(rec *Record, survivors []int) Image {
	img := Image{Survivors: survivors}
	var lines []LineWrite
	for _, i := range survivors { // ascending index == ascending Seq
		w := rec.Pending[i]
		found := false
		for j := range lines {
			if lines[j].Addr == w.Addr {
				lines[j].Data = w.Data
				found = true
				break
			}
		}
		if !found {
			lines = append(lines, LineWrite{Addr: w.Addr, Data: w.Data})
		}
	}
	var base [memory.LineSize]byte
	for _, lw := range lines {
		rec.Base.PeekLine(lw.Addr, &base)
		if base != lw.Data {
			img.Overlay = append(img.Overlay, lw)
		}
	}
	sort.Slice(img.Overlay, func(i, j int) bool { return img.Overlay[i].Addr < img.Overlay[j].Addr })
	h := sha256.New()
	var buf [8]byte
	for _, lw := range img.Overlay {
		binary.LittleEndian.PutUint64(buf[:], lw.Addr)
		h.Write(buf[:])
		h.Write(lw.Data[:])
	}
	copy(img.Hash[:], h.Sum(nil))
	return img
}

func satPow2(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return uint64(1) << uint(n)
}

func satMul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > ^uint64(0)/b {
		return ^uint64(0)
	}
	return a * b
}
