package crashmc

import (
	"reflect"
	"testing"

	"bbb/internal/persistency"
	"bbb/internal/system"
	"bbb/internal/workload"
)

// mcConfig is the shared short-bounds campaign over the Figures 2/3
// linked list: tiny caches so persists reorder aggressively, few ops so
// enumeration stays fast.
func mcConfig(w workload.Workload, s persistency.Scheme, noBarriers bool) Config {
	cfg := system.DefaultConfig(s)
	cfg.Hierarchy.L1Size = 1024
	cfg.Hierarchy.L2Size = 4096
	p := workload.DefaultParams()
	p.Threads = 2
	p.OpsPerThread = 60
	p.NoBarriers = noBarriers
	return Config{
		Workload:   w,
		Scheme:     s,
		System:     cfg,
		Params:     p,
		FirstCrash: 4_000,
		Step:       6_000,
		Points:     3,
	}
}

func TestBatteryCompleteSchemesSingleImage(t *testing.T) {
	// The paper's claim (§III-D): when the battery covers the whole
	// persistence path, the reachable crash-state space is one image per
	// crash point — persist order equals program order.
	for _, s := range []persistency.Scheme{persistency.BBB, persistency.BBBProc, persistency.EADR, persistency.NVCache} {
		rep := mcConfig(workload.NewLinkedList(), s, true).Run()
		if !rep.SingleImage() {
			t.Errorf("%v: expected exactly one reachable image per crash point, got report %s", s, rep.String())
		}
		if rep.TotalViolating != 0 {
			t.Errorf("%v: violating images in a battery-complete scheme: %s", s, rep.String())
		}
		for _, p := range rep.Points {
			if p.Pending != 0 {
				t.Errorf("%v: %d enumerable pending writes at cycle %d; the persistence domain should cover them",
					s, p.Pending, p.CrashCycle)
			}
		}
	}
}

func TestPMEMNoBarriersFindsViolatingImage(t *testing.T) {
	// Figure 2: without barriers, some subset of surviving cache lines
	// strands a published head at an unpersisted node. The deterministic
	// crash image may be lucky; the model checker must find the corner.
	rep := mcConfig(workload.NewLinkedList(), persistency.PMEM, true).Run()
	if rep.TotalViolating == 0 {
		t.Fatalf("PMEM without barriers: no violating image in %d enumerated (%s)", rep.TotalDistinct, rep.String())
	}
	wit := rep.FirstWitness()
	if wit == nil {
		t.Fatal("violating campaign produced no witness")
	}
	if len(wit.Survivors) == 0 {
		t.Fatal("witness has no surviving writes")
	}
	if wit.Err == "" {
		t.Fatal("witness has no checker complaint")
	}
	// Minimality: the witness survived greedy elimination, so it should
	// be small — the Figure 2 bug needs only the dangling publish.
	if len(wit.Survivors) > 2 {
		t.Errorf("witness not minimal: %d survivors", len(wit.Survivors))
	}
}

func TestPMEMWithBarriersCleanAcrossReachableSet(t *testing.T) {
	// Figure 3: with clwb+sfence ordering, *every* reachable image must
	// check out, not just the deterministic one.
	rep := mcConfig(workload.NewLinkedList(), persistency.PMEM, false).Run()
	if rep.TotalViolating != 0 {
		t.Fatalf("PMEM with barriers: %d violating images (%s)", rep.TotalViolating, rep.String())
	}
	if rep.MaxPending == 0 {
		t.Fatal("expected pending dirty lines under PMEM; recorder captured none")
	}
	if rep.TotalDistinct <= len(rep.Points) {
		t.Fatalf("expected a non-trivial reachable set under PMEM, got %d images over %d points",
			rep.TotalDistinct, len(rep.Points))
	}
}

func TestBEPEpochPrefixSemantics(t *testing.T) {
	// With epoch barriers, every enumerated epoch-prefix-plus-frontier
	// image is consistent; without them everything coalesces into one
	// epoch and the checker must find a reordered corner.
	withBarriers := mcConfig(workload.NewLinkedList(), persistency.BEP, false).Run()
	if withBarriers.TotalViolating != 0 {
		t.Errorf("BEP with epoch barriers: %d violating images (%s)",
			withBarriers.TotalViolating, withBarriers.String())
	}
	noBarriers := mcConfig(workload.NewLinkedList(), persistency.BEP, true).Run()
	if noBarriers.TotalViolating == 0 {
		t.Errorf("BEP without barriers: single-epoch reorder found no violating image (%s)",
			noBarriers.String())
	}
}

func TestDeterministicAcrossParallelWidths(t *testing.T) {
	// Mirror parallel_test.go: the enumerated image set (and the whole
	// report) is byte-identical at any fan-out width.
	base := mcConfig(workload.NewLinkedList(), persistency.PMEM, true)
	serial := base.Run()
	for _, width := range []int{2, 8} {
		cc := base
		cc.Parallel = width
		got := cc.Run()
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("report differs between serial and parallel=%d runs", width)
		}
	}
}

// TestGoldenImageCounts pins the distinct-image and violating-image
// counts for the Figure 2/3 linked-list programs per scheme. These are
// properties of the deterministic simulator at these exact parameters:
// a change here means the reachable crash-state space changed — bump the
// numbers only with an explanation of the machine change that moved them.
func TestGoldenImageCounts(t *testing.T) {
	cases := []struct {
		name          string
		scheme        persistency.Scheme
		noBarriers    bool
		wantDistinct  int
		wantViolating int
	}{
		{"pmem-nobarriers", persistency.PMEM, true, goldenPMEMNoBarrierImages, goldenPMEMNoBarrierViolations},
		{"pmem-barriers", persistency.PMEM, false, goldenPMEMBarrierImages, 0},
		{"bep-barriers", persistency.BEP, false, goldenBEPBarrierImages, 0},
		{"bep-nobarriers", persistency.BEP, true, goldenBEPNoBarrierImages, goldenBEPNoBarrierViolations},
		{"bbb", persistency.BBB, true, 3, 0},
		{"eadr", persistency.EADR, true, 3, 0},
	}
	for _, tc := range cases {
		rep := mcConfig(workload.NewLinkedList(), tc.scheme, tc.noBarriers).Run()
		if rep.TotalDistinct != tc.wantDistinct {
			t.Errorf("%s: distinct images = %d, want %d", tc.name, rep.TotalDistinct, tc.wantDistinct)
		}
		if rep.TotalViolating != tc.wantViolating {
			t.Errorf("%s: violating images = %d, want %d", tc.name, rep.TotalViolating, tc.wantViolating)
		}
	}
}

func TestWitnessRoundTripAndReplay(t *testing.T) {
	rep := mcConfig(workload.NewLinkedList(), persistency.PMEM, true).Run()
	wit := rep.FirstWitness()
	if wit == nil {
		t.Fatal("no witness to replay")
	}
	data, err := wit.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseWitness(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wit, parsed) {
		t.Fatal("witness did not round-trip through JSON")
	}
	out, err := Replay(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Reproduced {
		t.Fatalf("replay did not reproduce: got %q, witness says %q", out.Err, wit.Err)
	}
}

func TestWitnessSchemaVersion(t *testing.T) {
	rep := mcConfig(workload.NewLinkedList(), persistency.PMEM, true).Run()
	wit := rep.FirstWitness()
	if wit == nil {
		t.Fatal("no witness")
	}
	if wit.SchemaVersion != WitnessSchemaVersion {
		t.Fatalf("fresh witness carries schema version %d, want %d", wit.SchemaVersion, WitnessSchemaVersion)
	}
	data, err := wit.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if parsed, perr := ParseWitness(data); perr != nil || parsed.SchemaVersion != WitnessSchemaVersion {
		t.Fatalf("schema version did not round-trip: %v, %+v", perr, parsed)
	}

	// A witness from a different schema era must be rejected, not
	// misreplayed — including pre-versioned witnesses, which decode as
	// version 0.
	future := *wit
	future.SchemaVersion = WitnessSchemaVersion + 1
	if data, err = future.MarshalIndent(); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseWitness(data); err == nil {
		t.Fatal("ParseWitness accepted a future schema version")
	}
	old := *wit
	old.SchemaVersion = 0
	if data, err = old.MarshalIndent(); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseWitness(data); err == nil {
		t.Fatal("ParseWitness accepted a pre-versioned witness")
	}
}

func TestReplayRejectsStaleWitness(t *testing.T) {
	rep := mcConfig(workload.NewLinkedList(), persistency.PMEM, true).Run()
	wit := rep.FirstWitness()
	if wit == nil {
		t.Fatal("no witness")
	}
	stale := *wit
	stale.Survivors = append([]WitnessWrite(nil), wit.Survivors...)
	stale.Survivors[0].Addr += 64 * 1024 * 1024 // an address never pending
	if _, err := Replay(&stale); err == nil {
		t.Fatal("replay accepted a witness whose write is not pending")
	}
}

func TestMinimizedWitnessStillLegalUnderBEP(t *testing.T) {
	rep := mcConfig(workload.NewLinkedList(), persistency.BEP, true).Run()
	wit := rep.FirstWitness()
	if wit == nil {
		t.Skip("no BEP violation at these points")
	}
	out, err := Replay(wit)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Reproduced {
		t.Fatalf("BEP witness did not reproduce: got %q want %q", out.Err, wit.Err)
	}
}
