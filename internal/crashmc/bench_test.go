package crashmc

import (
	"testing"

	"bbb/internal/persistency"
	"bbb/internal/workload"
)

// BenchmarkCrashMCEnumerate measures enumeration throughput over a real
// captured pending set (PMEM, no barriers — the largest reachable space
// of the acceptance matrix). `make bench-json` records images/s in the
// BENCH_<n>.json trail.
func BenchmarkCrashMCEnumerate(b *testing.B) {
	c := mcConfig(workload.NewLinkedList(), persistency.PMEM, true)
	const crashAt = 16_000
	sys, finished := workload.BuildToCrash(c.Workload, c.Scheme, c.System, c.Params, crashAt)
	rec := Capture(sys, crashAt, finished)
	if len(rec.Pending) == 0 {
		b.Fatal("no pending writes captured; the benchmark would enumerate nothing")
	}
	bounds := DefaultBounds()
	images := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enum := Enumerate(rec, bounds)
		images += len(enum.Images)
	}
	b.ReportMetric(float64(images)/b.Elapsed().Seconds(), "images/s")
}
