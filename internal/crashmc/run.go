package crashmc

import (
	"fmt"

	"bbb/internal/engine"
	"bbb/internal/memory"
	"bbb/internal/persistency"
	"bbb/internal/sweep"
	"bbb/internal/system"
	"bbb/internal/workload"
)

// Config describes one model-checking campaign: like a crash-injection
// campaign (internal/recovery), but validating every reachable image at
// each crash point instead of the single deterministic one.
type Config struct {
	Workload workload.Workload
	Scheme   persistency.Scheme
	System   system.Config
	Params   workload.Params
	// Crash points: FirstCrash, then every Step cycles, Points times.
	FirstCrash engine.Cycle
	Step       engine.Cycle
	Points     int
	// Parallel bounds how many crash points run concurrently, each on a
	// fresh machine; the report is byte-identical at any width. Workloads
	// outside the registry run serially (no ByName re-resolution).
	Parallel int
	// Bounds prune the per-point enumeration.
	Bounds Bounds
	// MaxViolations caps the violations recorded per point (the counts
	// stay exact). Zero means 4.
	MaxViolations int
}

// Violation is one reachable durable image the recovery checker rejects.
type Violation struct {
	// Hash identifies the violating image.
	Hash [32]byte
	// Survivors are the pending-write indices whose survival produced it.
	Survivors []int
	// Err is the checker's complaint.
	Err string
	// Minimized is the smallest legal surviving subset that still fails
	// (computed for the first violation of each crash point); nil when
	// minimization was not attempted.
	Minimized []int
	// MinimizedErr is the checker's complaint on the minimized image.
	MinimizedErr string
}

// PointResult is one crash point's exploration.
type PointResult struct {
	CrashCycle engine.Cycle
	Finished   bool
	Drain      persistency.DrainReport
	// DomainLines counts pending writes already inside the persistence
	// domain (always survive); Pending counts the enumerable ones.
	DomainLines int
	Pending     int
	// Sets / SetsSkipped / DistinctImages summarize the enumeration.
	Sets           int
	SetsSkipped    uint64
	DistinctImages int
	// ViolatingImages counts distinct images the checker rejected.
	ViolatingImages int
	Violations      []Violation
	// Witness replays the first minimized violation via bbbmc -repro.
	Witness *Witness
}

// Report aggregates a campaign.
type Report struct {
	Workload string
	Scheme   persistency.Scheme
	Barriers bool
	Bounds   Bounds
	Points   []PointResult

	// Aggregates over the points.
	TotalSets       int
	TotalDistinct   int
	TotalViolating  int
	MaxPending      int
	DrainedLinesMax int
	Truncated       bool
}

// Run executes the campaign. Every crash point is an independent run from
// a fresh image, enumerated and validated in isolation, so the fan-out is
// embarrassingly parallel and deterministic.
func (c Config) Run() Report {
	if c.Points <= 0 {
		panic("crashmc: Points must be positive")
	}
	b := c.Bounds.withDefaults()
	maxViol := c.MaxViolations
	if maxViol <= 0 {
		maxViol = 4
	}
	rep := Report{
		Workload: c.Workload.Name(),
		Scheme:   c.Scheme,
		Barriers: !c.Params.NoBarriers,
		Bounds:   b,
	}
	workers := c.Parallel
	if workers > 1 {
		if _, err := workload.ByName(c.Workload.Name()); err != nil {
			workers = 1
		}
	}
	rep.Points = sweep.Map(workers, c.Points, func(i int) PointResult {
		w := c.Workload
		if workers > 1 {
			w, _ = workload.ByName(c.Workload.Name())
		}
		crashAt := c.FirstCrash + engine.Cycle(i)*c.Step
		return checkPoint(w, c, b, maxViol, crashAt)
	})
	for _, p := range rep.Points {
		rep.TotalSets += p.Sets
		rep.TotalDistinct += p.DistinctImages
		rep.TotalViolating += p.ViolatingImages
		if p.Pending > rep.MaxPending {
			rep.MaxPending = p.Pending
		}
		if n := p.Drain.Lines(); n > rep.DrainedLinesMax {
			rep.DrainedLinesMax = n
		}
		if p.SetsSkipped > 0 {
			rep.Truncated = true
		}
	}
	return rep
}

// checkPoint explores one crash cycle: run, capture, enumerate, validate.
func checkPoint(w workload.Workload, c Config, b Bounds, maxViol int, crashAt engine.Cycle) PointResult {
	sys, finished := workload.BuildToCrash(w, c.Scheme, c.System, c.Params, crashAt)
	rec := Capture(sys, crashAt, finished)
	enum := Enumerate(rec, b)

	res := PointResult{
		CrashCycle:     crashAt,
		Finished:       finished,
		Drain:          rec.Drain,
		DomainLines:    rec.DomainLines,
		Pending:        len(rec.Pending),
		Sets:           enum.Sets,
		SetsSkipped:    enum.SetsSkipped,
		DistinctImages: len(enum.Images),
	}

	// One scratch image per point: apply an overlay, check, revert.
	scratch := rec.Base.Clone()
	checkSet := func(survivors []int) string {
		img := materialize(rec, survivors)
		applyOverlay(scratch, img.Overlay)
		errStr := ""
		if err := w.Check(scratch); err != nil {
			errStr = err.Error()
		}
		revertOverlay(scratch, rec.Base, img.Overlay)
		return errStr
	}

	for _, img := range enum.Images {
		applyOverlay(scratch, img.Overlay)
		err := w.Check(scratch)
		revertOverlay(scratch, rec.Base, img.Overlay)
		if err == nil {
			continue
		}
		res.ViolatingImages++
		if len(res.Violations) >= maxViol {
			continue
		}
		v := Violation{Hash: img.Hash, Survivors: img.Survivors, Err: err.Error()}
		if len(res.Violations) == 0 {
			v.Minimized, v.MinimizedErr = minimize(rec, img.Survivors, checkSet)
			res.Witness = newWitness(c, crashAt, rec, v.Minimized, v.MinimizedErr)
		}
		res.Violations = append(res.Violations, v)
	}
	return res
}

func applyOverlay(m *memory.Memory, overlay []LineWrite) {
	for i := range overlay {
		m.WriteLine(overlay[i].Addr, &overlay[i].Data)
	}
}

func revertOverlay(m, base *memory.Memory, overlay []LineWrite) {
	var line [memory.LineSize]byte
	for i := range overlay {
		base.PeekLine(overlay[i].Addr, &line)
		m.WriteLine(overlay[i].Addr, &line)
	}
}

// minimize greedily shrinks a violating survival set: survivors drop
// youngest-first while the set stays legal (epoch-downward closed) and
// the checker still rejects the image, iterating to a fixpoint. The
// result is a minimal witness in the sense that no single remaining
// survivor can be dropped.
func minimize(rec *Record, survivors []int, check func([]int) string) ([]int, string) {
	cur := append([]int(nil), survivors...)
	errStr := check(cur)
	if errStr == "" {
		// The full set no longer fails through this path (cannot happen:
		// the caller only minimizes failing sets); keep it unminimized.
		return cur, errStr
	}
	for changed := true; changed; {
		changed = false
		for i := len(cur) - 1; i >= 0; i-- {
			cand := make([]int, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			if !legalSet(rec, cand) {
				continue
			}
			if e := check(cand); e != "" {
				cur, errStr = cand, e
				changed = true
			}
		}
	}
	return cur, errStr
}

// legalSet reports whether the survival set respects every class rule:
// a surviving epoch-class write requires every same-core pending write of
// an earlier epoch to survive too.
func legalSet(rec *Record, set []int) bool {
	in := make(map[int]bool, len(set))
	for _, i := range set {
		in[i] = true
	}
	for _, i := range set {
		w := rec.Pending[i]
		if w.Class != ClassEpoch {
			continue
		}
		for j, o := range rec.Pending {
			if o.Class == ClassEpoch && o.Core == w.Core && o.Epoch < w.Epoch && !in[j] {
				return false
			}
		}
	}
	return true
}

// String summarizes the report in the campaign-table format of the CLIs.
func (r Report) String() string {
	mode := "with barriers"
	if !r.Barriers {
		mode = "NO barriers"
	}
	trunc := ""
	if r.Truncated {
		trunc = "  (bounded)"
	}
	return fmt.Sprintf("%-10s %-9s %-13s points: %3d  pending(max): %3d  sets: %6d  images: %6d  violating: %5d%s",
		r.Workload, r.Scheme, mode, len(r.Points), r.MaxPending, r.TotalSets, r.TotalDistinct, r.TotalViolating, trunc)
}

// FirstWitness returns the first crash point's minimized witness, if any
// point violated.
func (r Report) FirstWitness() *Witness {
	for _, p := range r.Points {
		if p.Witness != nil {
			return p.Witness
		}
	}
	return nil
}

// SingleImage reports whether every crash point enumerated exactly one
// reachable image — the paper's claim for the battery-complete schemes.
func (r Report) SingleImage() bool {
	for _, p := range r.Points {
		if p.DistinctImages != 1 {
			return false
		}
	}
	return true
}
