package crashmc

import (
	"encoding/json"
	"fmt"
	"sort"

	"bbb/internal/engine"
	"bbb/internal/memory"
	"bbb/internal/persistency"
	"bbb/internal/system"
	"bbb/internal/workload"
)

// Witness is a minimized, self-contained repro of one crash-consistency
// violation: enough to rebuild the machine, rerun the workload to the
// crash cycle, re-apply the exact surviving-write subset and watch the
// recovery checker fail the same way. bbbmc -repro replays one.
//
// WitnessSchemaVersion is the wire format of Witness. Bump it whenever a
// field changes meaning or the survivor-matching rules move, so bbbmc
// -repro and bbblitmus explain reject stale witnesses instead of silently
// misreplaying them.
const WitnessSchemaVersion = 1

// The witness pins every knob the model checker varies from the default
// Table III machine; all other configuration is assumed default.
type Witness struct {
	// SchemaVersion is WitnessSchemaVersion at write time; ParseWitness
	// rejects any other value (including its absence in pre-versioned
	// witnesses).
	SchemaVersion int    `json:"schema_version"`
	Workload      string `json:"workload"`
	Scheme        string `json:"scheme"`
	NoBarriers    bool   `json:"no_barriers,omitempty"`
	Threads       int    `json:"threads"`
	OpsPerThread  int    `json:"ops_per_thread"`
	Seed          int64  `json:"seed"`
	VolatileWork  int    `json:"volatile_work,omitempty"`

	L1Size         int     `json:"l1_size,omitempty"`
	L2Size         int     `json:"l2_size,omitempty"`
	BBPBEntries    int     `json:"bbpb_entries,omitempty"`
	DrainThreshold float64 `json:"drain_threshold,omitempty"`

	CrashCycle engine.Cycle   `json:"crash_cycle"`
	Survivors  []WitnessWrite `json:"survivors"`
	// Err is the checker complaint the witness reproduces.
	Err string `json:"err"`
}

// WitnessWrite names one surviving pending write. Free-class writes match
// by line address alone (Core is -1); epoch-class writes match by
// (address, core, epoch) since one core may buffer a line in two epochs.
type WitnessWrite struct {
	Addr  memory.Addr `json:"addr"`
	Core  int         `json:"core"`
	Epoch uint64      `json:"epoch,omitempty"`
}

// newWitness pins a minimized violation for replay.
func newWitness(c Config, crashAt engine.Cycle, rec *Record, survivors []int, errStr string) *Witness {
	w := &Witness{
		SchemaVersion:  WitnessSchemaVersion,
		Workload:       c.Workload.Name(),
		Scheme:         c.Scheme.String(),
		NoBarriers:     c.Params.NoBarriers,
		Threads:        c.Params.Threads,
		OpsPerThread:   c.Params.OpsPerThread,
		Seed:           c.Params.Seed,
		VolatileWork:   c.Params.VolatileWork,
		L1Size:         c.System.Hierarchy.L1Size,
		L2Size:         c.System.Hierarchy.L2Size,
		BBPBEntries:    c.System.BBPB.Entries,
		DrainThreshold: c.System.BBPB.DrainThreshold,
		CrashCycle:     crashAt,
		Err:            errStr,
	}
	for _, i := range survivors {
		pw := rec.Pending[i]
		w.Survivors = append(w.Survivors, WitnessWrite{Addr: pw.Addr, Core: pw.Core, Epoch: pw.Epoch})
	}
	return w
}

// MarshalIndent renders the witness as stable, human-auditable JSON.
func (w *Witness) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(w, "", "  ")
}

// ParseWitness decodes a witness written by MarshalIndent (bbbmc
// -witness-out) or by hand.
func ParseWitness(data []byte) (*Witness, error) {
	var w Witness
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("crashmc: bad witness: %w", err)
	}
	if w.SchemaVersion != WitnessSchemaVersion {
		return nil, fmt.Errorf("crashmc: witness schema version %d, this build speaks %d — regenerate the witness",
			w.SchemaVersion, WitnessSchemaVersion)
	}
	if w.Workload == "" || w.Scheme == "" {
		return nil, fmt.Errorf("crashmc: witness missing workload or scheme")
	}
	return &w, nil
}

// ReplayOutcome is what replaying a witness observed.
type ReplayOutcome struct {
	// Pending is the size of the recaptured pending set.
	Pending int
	// Err is the checker complaint on the reconstructed image ("" means
	// the image checked out — the witness did not reproduce).
	Err string
	// Reproduced reports Err matching the witness's recorded complaint.
	Reproduced bool
}

// Recapture rebuilds the witnessed machine, runs the workload to the
// crash cycle, recaptures its pending set and resolves the witness's
// surviving writes against it — everything Replay does short of image
// validation, so other validators (bbblitmus explain checks against the
// axiomatic allowed set rather than the recovery checker) can share the
// reconstruction. The returned workload is the resolved instance whose
// Setup ran inside the rebuilt machine.
func (w *Witness) Recapture() (workload.Workload, *Record, []int, error) {
	wl, err := workload.ByName(w.Workload)
	if err != nil {
		return nil, nil, nil, err
	}
	scheme, err := persistency.ParseScheme(w.Scheme)
	if err != nil {
		return nil, nil, nil, err
	}
	cfg := system.DefaultConfig(scheme)
	if w.L1Size > 0 {
		cfg.Hierarchy.L1Size = w.L1Size
	}
	if w.L2Size > 0 {
		cfg.Hierarchy.L2Size = w.L2Size
	}
	if w.BBPBEntries > 0 {
		cfg.BBPB.Entries = w.BBPBEntries
	}
	if w.DrainThreshold > 0 {
		cfg.BBPB.DrainThreshold = w.DrainThreshold
	}
	params := workload.Params{
		Threads:      w.Threads,
		OpsPerThread: w.OpsPerThread,
		Seed:         w.Seed,
		NoBarriers:   w.NoBarriers,
		VolatileWork: w.VolatileWork,
	}
	sys, finished := workload.BuildToCrash(wl, scheme, cfg, params, w.CrashCycle)
	rec := Capture(sys, w.CrashCycle, finished)

	survivors, err := matchSurvivors(rec, w.Survivors)
	if err != nil {
		return wl, rec, nil, err
	}
	if !legalSet(rec, survivors) {
		return wl, rec, nil,
			fmt.Errorf("crashmc: witness survival set is not legal under %s ordering", w.Scheme)
	}
	return wl, rec, survivors, nil
}

// Replay rebuilds the witnessed machine, runs the workload to the crash
// cycle, re-applies the surviving-write subset and re-checks the image.
func Replay(w *Witness) (ReplayOutcome, error) {
	wl, rec, survivors, err := w.Recapture()
	if err != nil {
		out := ReplayOutcome{}
		if rec != nil {
			out.Pending = len(rec.Pending)
		}
		return out, err
	}
	img := materialize(rec, survivors)
	scratch := rec.Base.Clone()
	applyOverlay(scratch, img.Overlay)
	out := ReplayOutcome{Pending: len(rec.Pending)}
	if cerr := wl.Check(scratch); cerr != nil {
		out.Err = cerr.Error()
	}
	out.Reproduced = out.Err != "" && out.Err == w.Err
	return out, nil
}

// matchSurvivors resolves witness writes against the recaptured pending
// set, failing loudly when the machine state no longer matches the
// witness (simulator drift invalidates old witnesses).
func matchSurvivors(rec *Record, writes []WitnessWrite) ([]int, error) {
	var out []int
	for _, ww := range writes {
		found := -1
		for i, pw := range rec.Pending {
			if pw.Addr != ww.Addr || pw.Core != ww.Core {
				continue
			}
			if pw.Class == ClassEpoch && pw.Epoch != ww.Epoch {
				continue
			}
			found = i
			break
		}
		if found < 0 {
			return nil, fmt.Errorf("crashmc: witness write %#x (core %d, epoch %d) not pending at cycle %d — witness predates a simulator change?",
				ww.Addr, ww.Core, ww.Epoch, rec.CrashCycle)
		}
		out = append(out, found)
	}
	sort.Ints(out)
	return out, nil
}
