package crashmc

import (
	"testing"

	"bbb/internal/memory"
)

// Golden counts pinned by TestGoldenImageCounts (crashmc_test.go); kept
// here next to the enumeration logic that produces them.
const (
	goldenPMEMNoBarrierImages     = 1280
	goldenPMEMNoBarrierViolations = 992
	goldenPMEMBarrierImages       = 4
	goldenBEPBarrierImages        = 448
	// Without epoch barriers every BEP write coalesces into one epoch, so
	// the epoch rule degenerates to free-class enumeration over a pending
	// set the VPB kept larger than PMEM's caches would — the axiomatic
	// Epoch model leans on exactly this enumeration rule.
	goldenBEPNoBarrierImages     = 8448
	goldenBEPNoBarrierViolations = 6659
)

// testRecord builds a synthetic record over a zeroed base image.
func testRecord(pending []PendingWrite) *Record {
	return &Record{
		Base:    memory.New(memory.DefaultLayout()),
		Pending: pending,
	}
}

func lineData(b byte) (d [memory.LineSize]byte) {
	d[0] = b
	return
}

func addr(i int) memory.Addr {
	l := memory.DefaultLayout()
	return l.NVMMBase + memory.Addr(i)*memory.LineSize
}

func freeWrite(i int, b byte) PendingWrite {
	return PendingWrite{Addr: addr(i), Data: lineData(b), Class: ClassFree, Core: -1, Seq: i}
}

func TestEnumerateExhaustiveFreeSubsets(t *testing.T) {
	rec := testRecord([]PendingWrite{freeWrite(0, 1), freeWrite(1, 2), freeWrite(2, 3)})
	enum := Enumerate(rec, Bounds{})
	if enum.Sets != 8 {
		t.Fatalf("3 free writes should enumerate 2^3 = 8 sets, got %d", enum.Sets)
	}
	if len(enum.Images) != 8 {
		t.Fatalf("distinct data per line should give 8 distinct images, got %d", len(enum.Images))
	}
	if enum.SetsSkipped != 0 {
		t.Fatalf("nothing should be skipped, got %d", enum.SetsSkipped)
	}
	if len(enum.Images[0].Overlay) != 0 {
		t.Fatal("first image must be the deterministic (empty-overlay) one")
	}
}

func TestEnumerateDedupesEquivalentImages(t *testing.T) {
	// Two pending writes whose data equals the base image (all zero):
	// every subset materializes the same durable state.
	rec := testRecord([]PendingWrite{freeWrite(0, 0), freeWrite(1, 0)})
	enum := Enumerate(rec, Bounds{})
	if enum.Sets != 4 {
		t.Fatalf("want 4 sets, got %d", enum.Sets)
	}
	if len(enum.Images) != 1 {
		t.Fatalf("all-no-op subsets must dedupe to 1 image, got %d", len(enum.Images))
	}
}

func TestEnumerateBoundedPruning(t *testing.T) {
	var pending []PendingWrite
	for i := 0; i < 20; i++ {
		pending = append(pending, freeWrite(i, byte(i+1)))
	}
	rec := testRecord(pending)
	enum := Enumerate(rec, Bounds{ExhaustiveLimit: 4, MaxFlips: 2, MaxImages: 1 << 20})
	// |S| in {0,1,2,18,19,20}: 1+20+190+190+20+1 = 422.
	if enum.Sets != 422 {
		t.Fatalf("bounded enumeration of n=20, k=2 should try 422 sets, got %d", enum.Sets)
	}
	if enum.SetsSkipped != 1<<20-422 {
		t.Fatalf("skipped = %d, want 2^20-422", enum.SetsSkipped)
	}
}

func TestEnumerateMaxImagesCap(t *testing.T) {
	var pending []PendingWrite
	for i := 0; i < 8; i++ {
		pending = append(pending, freeWrite(i, byte(i+1)))
	}
	rec := testRecord(pending)
	enum := Enumerate(rec, Bounds{MaxImages: 10})
	if enum.Sets != 10 {
		t.Fatalf("cap of 10 sets, got %d", enum.Sets)
	}
	if enum.SetsSkipped != 256-10 {
		t.Fatalf("skipped %d, want 246", enum.SetsSkipped)
	}
}

func epochWrite(i, core int, epoch uint64, b byte) PendingWrite {
	return PendingWrite{Addr: addr(i), Data: lineData(b), Class: ClassEpoch, Core: core, Epoch: epoch, Seq: i}
}

func TestEpochSubsetsDownwardClosed(t *testing.T) {
	rec := testRecord([]PendingWrite{
		epochWrite(0, 0, 1, 1),
		epochWrite(1, 0, 1, 2),
		epochWrite(2, 0, 2, 3),
	})
	enum := Enumerate(rec, Bounds{})
	// Legal sets: {}, {0}, {1}, {0,1}, {0,1,2} — epoch 2 needs all of
	// epoch 1.
	if enum.Sets != 5 {
		t.Fatalf("want 5 legal epoch sets, got %d", enum.Sets)
	}
	for _, img := range enum.Images {
		if !legalSet(rec, img.Survivors) {
			t.Fatalf("enumerated illegal set %v", img.Survivors)
		}
	}
}

func TestEpochSubsetsPerCoreIndependent(t *testing.T) {
	rec := testRecord([]PendingWrite{
		epochWrite(0, 0, 1, 1),
		epochWrite(1, 1, 1, 2),
	})
	enum := Enumerate(rec, Bounds{})
	// Each core contributes {}, {entry}: 2*2 = 4 combined sets.
	if enum.Sets != 4 {
		t.Fatalf("want 4 cross-core sets, got %d", enum.Sets)
	}
}

func TestLegalSetRejectsEpochGap(t *testing.T) {
	rec := testRecord([]PendingWrite{
		epochWrite(0, 0, 1, 1),
		epochWrite(1, 0, 2, 2),
	})
	if legalSet(rec, []int{1}) {
		t.Fatal("surviving epoch 2 without epoch 1 must be illegal")
	}
	if !legalSet(rec, []int{0, 1}) {
		t.Fatal("full prefix must be legal")
	}
}

func TestMinimizeShrinksToSingleCulprit(t *testing.T) {
	// Checker fails iff write 2 (the "dangling publish") survives.
	rec := testRecord([]PendingWrite{freeWrite(0, 1), freeWrite(1, 2), freeWrite(2, 3)})
	check := func(set []int) string {
		for _, i := range set {
			if i == 2 {
				return "dangling publish"
			}
		}
		return ""
	}
	min, errStr := minimize(rec, []int{0, 1, 2}, check)
	if len(min) != 1 || min[0] != 2 {
		t.Fatalf("minimize = %v, want [2]", min)
	}
	if errStr != "dangling publish" {
		t.Fatalf("minimized error = %q", errStr)
	}
}

func TestMinimizeKeepsEpochClosure(t *testing.T) {
	// Violation needs write 1 (epoch 2); dropping write 0 (epoch 1)
	// would break downward closure, so both must remain.
	rec := testRecord([]PendingWrite{
		epochWrite(0, 0, 1, 1),
		epochWrite(1, 0, 2, 2),
	})
	check := func(set []int) string {
		for _, i := range set {
			if i == 1 {
				return "boom"
			}
		}
		return ""
	}
	min, _ := minimize(rec, []int{0, 1}, check)
	if len(min) != 2 {
		t.Fatalf("minimize = %v, want both writes (closure)", min)
	}
	if !legalSet(rec, min) {
		t.Fatalf("minimized set %v is illegal", min)
	}
}

func TestMaterializeAppliesSeqOrderPerLine(t *testing.T) {
	// Same line buffered in two epochs: the overlay must carry the
	// younger data when both survive.
	rec := testRecord([]PendingWrite{
		epochWrite(0, 0, 1, 0xAA),
		{Addr: addr(0), Data: lineData(0xBB), Class: ClassEpoch, Core: 0, Epoch: 2, Seq: 1},
	})
	img := materialize(rec, []int{0, 1})
	if len(img.Overlay) != 1 {
		t.Fatalf("one line expected, got %d", len(img.Overlay))
	}
	if img.Overlay[0].Data[0] != 0xBB {
		t.Fatalf("overlay byte = %#x, want the younger write 0xBB", img.Overlay[0].Data[0])
	}
}
