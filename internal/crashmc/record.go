// Package crashmc is the crash-image model checker: where crash injection
// (internal/recovery) validates the one durable image the deterministic
// flush-on-fail produces, crashmc enumerates *every* durable image a power
// failure at that cycle may leave behind under the scheme's persistency
// model, and runs the workload's recovery checker against each.
//
// The paper's programmability argument (§II-A, §III-D) is about exactly
// this set: under the PMEM baseline the caches may have written back any
// subset of dirty persistent lines before the crash, so the reachable
// crash-state space is exponential and the Figure 2 bug hides in one of
// its corners; under BBB the battery drains everything in the persistence
// path, so the set collapses to a single image and persist order equals
// program order. crashmc turns that claim from "checked at sampled points"
// into "checked over the reachable crash-state space".
//
// Three stages:
//
//   - the recorder (this file) captures, at one crash cycle, the durable
//     base image plus the pending persistence-domain writes and each
//     write's survival class;
//   - the enumerator (enumerate.go) materializes every legal survival
//     set within configurable bounds, deduplicating equivalent images by
//     canonical hash;
//   - the validator (run.go) checks every distinct image with the
//     workload's recovery checker and minimizes the surviving-write set
//     of the first violation into a replayable witness (witness.go).
package crashmc

import (
	"bbb/internal/engine"
	"bbb/internal/memory"
	"bbb/internal/persistency"
	"bbb/internal/system"
)

// Class says how one pending write may survive a crash.
type Class int

const (
	// ClassFree writes survive or vanish independently of every other
	// write: dirty persistent cache lines under PMEM, whose writeback
	// order is cache-replacement order — unconstrained by the program.
	ClassFree Class = iota
	// ClassEpoch writes survive only together with every same-core write
	// of an earlier epoch (BEP volatile persist buffers: drains follow
	// epoch order, but within an epoch coalescing may reorder freely).
	ClassEpoch
)

func (c Class) String() string {
	switch c {
	case ClassFree:
		return "free"
	case ClassEpoch:
		return "epoch"
	default:
		return "class?"
	}
}

// PendingWrite is one line-granular write that had reached the point of
// visibility but not the point of persistency when the machine stopped.
// Whether it survives the crash is the model's nondeterminism.
type PendingWrite struct {
	Addr memory.Addr
	Data [memory.LineSize]byte
	// Class picks the survival rule.
	Class Class
	// Core is the issuing core for ClassEpoch writes, -1 for ClassFree.
	Core int
	// Epoch is the BEP epoch tag (ClassEpoch only).
	Epoch uint64
	// Seq is the write's global capture order; overlays apply in Seq
	// order so a line buffered in two epochs resolves to the newer data.
	Seq int
}

// Record is everything the enumerator needs about one crash instant.
type Record struct {
	Scheme     persistency.Scheme
	CrashCycle engine.Cycle
	// Finished reports whether every program completed before the crash.
	Finished bool
	// Base is the machine's memory after the deterministic flush-on-fail:
	// the image every legal survival set extends. It aliases the stopped
	// machine's memory; the enumerator clones it before mutating.
	Base *memory.Memory
	// Drain is the flush-on-fail report (battery accounting).
	Drain persistency.DrainReport
	// DomainLines counts lines that were pending *inside* the persistence
	// domain (WPQ entries, stalled WPQ writers, battery-backed bbPB
	// entries) at the crash: they survive every crash, so they are part
	// of Base rather than of the enumerable set.
	DomainLines int
	// Pending is the nondeterministic set, in capture order. Empty for
	// the schemes whose persistence domain covers every committed
	// persisting store (BBB, BBBProc, eADR, NVCache): their reachable
	// crash-state space is exactly {Base}.
	Pending []PendingWrite
}

// Capture stops nothing and runs nothing: sys must already be halted at
// the crash cycle (workload.BuildToCrash). It snapshots the scheme's
// pending persistence-domain writes, then performs the deterministic
// flush-on-fail, and returns the record describing the reachable space.
//
// Survival classes per scheme:
//
//   - PMEM: the WPQ (ADR) survives — it is drained into Base — while
//     every dirty persistent cache line is ClassFree: real hardware could
//     have evicted any subset of them, in any order, before the crash.
//     Fence-induced ordering needs no extra bookkeeping here because a
//     clwb+sfence-ordered line is clean (and durable) by the time the
//     fence completes: ordered-earlier writes are never in the pending
//     set alongside ordered-later ones.
//   - BEP: the volatile persist buffers are lost by the deterministic
//     drain, but real hardware may have drained further than the
//     simulated schedule; every still-buffered entry is ClassEpoch.
//     Dirty persistent cache lines are NOT enumerable under BEP: the
//     hardware orders (or drops) their writebacks through the buffers.
//   - BBB, BBBProc, eADR, NVCache: flush-on-fail drains the whole
//     persistence path, so Pending is empty and the space is {Base}.
func Capture(sys *system.System, crashCycle engine.Cycle, finished bool) *Record {
	rec := &Record{
		Scheme:     sys.Cfg.Scheme,
		CrashCycle: crashCycle,
		Finished:   finished,
	}
	rec.DomainLines = len(sys.NVMM.PendingLines()) + sys.Model.BufferedLines()

	switch sys.Cfg.Scheme {
	case persistency.PMEM:
		sys.Hier.ForEachDirtyLine(func(la memory.Addr, persistent bool, data *[memory.LineSize]byte) {
			if !persistent {
				return
			}
			rec.Pending = append(rec.Pending, PendingWrite{
				Addr: la, Data: *data, Class: ClassFree, Core: -1, Seq: len(rec.Pending),
			})
		})
	case persistency.BEP:
		for core, entries := range sys.Model.VPBSnapshot() {
			for _, e := range entries {
				rec.Pending = append(rec.Pending, PendingWrite{
					Addr: e.Addr, Data: e.Data, Class: ClassEpoch,
					Core: core, Epoch: e.Epoch, Seq: len(rec.Pending),
				})
			}
		}
	}

	rec.Drain = sys.Crash()
	rec.Base = sys.Mem
	return rec
}
