package crashmc

import (
	"bbb/internal/engine"
	"bbb/internal/memory"
)

// Exported seams over the enumeration internals, for validators other
// than the built-in recovery-checker pass of Run: the litmus conformance
// driver (internal/litmus/conform) enumerates with Enumerate exactly as
// checkPoint does, but judges each image against the axiomatic allowed
// set instead of workload.Check — so it needs the image, overlay,
// minimization and witness plumbing individually.

// Materialize builds the durable image overlay for one survival set.
func Materialize(rec *Record, survivors []int) Image { return materialize(rec, survivors) }

// ApplyOverlay writes an image overlay into m.
func ApplyOverlay(m *memory.Memory, overlay []LineWrite) { applyOverlay(m, overlay) }

// RevertOverlay restores m's overlaid lines from base.
func RevertOverlay(m, base *memory.Memory, overlay []LineWrite) { revertOverlay(m, base, overlay) }

// LegalSet reports whether a survival set respects the class rules
// (epoch-downward closure per core).
func LegalSet(rec *Record, set []int) bool { return legalSet(rec, set) }

// Minimize greedily shrinks a failing survival set while check keeps
// rejecting it and the set stays legal; check returns the complaint ("" =
// image acceptable). See minimize.
func Minimize(rec *Record, survivors []int, check func([]int) string) ([]int, string) {
	return minimize(rec, survivors, check)
}

// NewWitness pins a minimized violation of campaign c for replay.
func NewWitness(c Config, crashAt engine.Cycle, rec *Record, survivors []int, errStr string) *Witness {
	return newWitness(c, crashAt, rec, survivors, errStr)
}
