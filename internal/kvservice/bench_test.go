package kvservice_test

import (
	"testing"

	"bbb/internal/persistency"
	"bbb/internal/system"
	"bbb/internal/workload"
)

// BenchmarkKVService measures service-tier simulation throughput
// (simulated requests per wall second) — the cost of running the full
// batching KV pipeline, pds structures included, through the machine.
// bench-json tracks it across commits.
func BenchmarkKVService(b *testing.B) {
	var reqs uint64
	for i := 0; i < b.N; i++ {
		w, err := workload.ByName("kv")
		if err != nil {
			b.Fatal(err)
		}
		res := workload.Run(w, persistency.BBB, system.DefaultConfig(persistency.BBB), params(4, 200))
		reqs += res.Metrics.Hist("kv.lat").Count()
	}
	b.ReportMetric(float64(reqs)/b.Elapsed().Seconds(), "sim_reqs/s")
}
