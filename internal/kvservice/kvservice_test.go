package kvservice_test

import (
	"reflect"
	"testing"

	"bbb/internal/engine"
	"bbb/internal/memory"
	"bbb/internal/persistency"
	"bbb/internal/system"
	"bbb/internal/workload"
)

func params(threads, ops int) workload.Params {
	p := workload.DefaultParams()
	p.Threads = threads
	p.OpsPerThread = ops
	return p
}

// completer is the exact-replay checker the kv workloads implement beyond
// the Workload interface.
type completer interface {
	CheckComplete(mem *memory.Memory) error
}

// TestServiceCompleteAndCheck runs both request mixes to completion under
// representative schemes and replays the schedule against the recovered
// shards, index and oplog. PMEM and BBB make every fenced operation durable,
// so the image must equal the full replay; BEP's epoch buffers are volatile
// and legally lose trailing epochs at the crash, so only the prefix
// invariants of Check apply.
func TestServiceCompleteAndCheck(t *testing.T) {
	for _, name := range []string{"kv", "kv/uniform"} {
		for _, s := range []persistency.Scheme{persistency.PMEM, persistency.BBB, persistency.BEP} {
			t.Run(name+"/"+s.String(), func(t *testing.T) {
				w, err := workload.ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				sys, progs := workload.Build(w, s, system.DefaultConfig(s), params(3, 60))
				defer sys.Shutdown()
				sys.Run(progs)
				sys.Crash() // flush-on-fail: settle the durable image
				check := w.Check
				if s != persistency.BEP {
					check = w.(completer).CheckComplete
				}
				if err := check(sys.Mem); err != nil {
					t.Fatalf("replay check: %v", err)
				}
			})
		}
	}
}

// TestServiceMetrics pins the Glossary contract: a service run surfaces
// every kv.* histogram through Result.Metrics.
func TestServiceMetrics(t *testing.T) {
	w, err := workload.ByName("kv")
	if err != nil {
		t.Fatal(err)
	}
	res := workload.Run(w, persistency.BBB, system.DefaultConfig(persistency.BBB), params(4, 120))
	if res.Metrics == nil {
		t.Fatal("service run returned nil Metrics")
	}
	for _, name := range []string{
		"kv.lat", "kv.lat.put", "kv.lat.get", "kv.lat.delete", "kv.lat.scan",
		"kv.batch_size", "kv.queue_delay",
	} {
		h := res.Metrics.Hist(name)
		if h == nil {
			t.Fatalf("histogram %q missing from Result.Metrics", name)
		}
		if h.Count() == 0 {
			t.Fatalf("histogram %q observed nothing", name)
		}
	}
	if got, want := res.Metrics.Hist("kv.lat").Count(), uint64(4*120); got != want {
		t.Fatalf("kv.lat holds %d samples, want one per request (%d)", got, want)
	}
}

// TestServiceWindowedSLO pins the latency-over-time series: every request
// lands in exactly one kv.lat.win window, the SLO bound follows
// Params.SLOTarget, and the per-window percentile gauges are projected one
// point per window.
func TestServiceWindowedSLO(t *testing.T) {
	runWith := func(slo uint64) system.Result {
		w, err := workload.ByName("kv")
		if err != nil {
			t.Fatal(err)
		}
		p := params(3, 80)
		p.SLOTarget = slo
		return workload.Run(w, persistency.BBB, system.DefaultConfig(persistency.BBB), p)
	}

	res := runWith(0) // workload default SLO
	win := res.Metrics.Windowed("kv.lat.win")
	if win == nil {
		t.Fatal("kv.lat.win missing from Result.Metrics")
	}
	if got, want := win.Total().Count(), uint64(3*80); got != want {
		t.Fatalf("kv.lat.win holds %d samples, want one per request (%d)", got, want)
	}
	snaps := win.Snapshots()
	if len(snaps) < 2 {
		t.Fatalf("run spans %d windows, want at least 2 for a timeline", len(snaps))
	}
	var sum, over uint64
	for _, s := range snaps {
		sum += s.Count
		over += s.Over
	}
	if sum != win.Total().Count() {
		t.Fatalf("window counts sum to %d, total is %d", sum, win.Total().Count())
	}
	if over != win.OverSLO() {
		t.Fatalf("window over-counts sum to %d, OverSLO is %d", over, win.OverSLO())
	}
	for _, name := range []string{"kv.lat.win.p50", "kv.lat.win.p99"} {
		g := res.Metrics.Gauge(name)
		if g == nil {
			t.Fatalf("gauge %q missing from Result.Metrics", name)
		}
		if got := len(g.Points()); got != len(snaps) {
			t.Fatalf("gauge %q has %d points, want one per window (%d)", name, got, len(snaps))
		}
	}

	// An unmeetable 1-cycle objective burns every request; a huge one none.
	if r := runWith(1); r.Metrics.Windowed("kv.lat.win").OverSLO() != r.Metrics.Windowed("kv.lat.win").Total().Count() {
		t.Fatal("SLO of 1 cycle should put every request over the objective")
	}
	if r := runWith(1 << 40); r.Metrics.Windowed("kv.lat.win").OverSLO() != 0 {
		t.Fatal("an astronomically loose SLO should burn nothing")
	}
}

// TestServiceDeterministic pins that a service run is a pure function of
// its parameters, metrics included.
func TestServiceDeterministic(t *testing.T) {
	run := func() system.Result {
		w, err := workload.ByName("kv")
		if err != nil {
			t.Fatal(err)
		}
		return workload.Run(w, persistency.BBB, system.DefaultConfig(persistency.BBB), params(3, 80))
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical service runs diverge:\n%+v\n%+v", a, b)
	}
}

// TestBatchWindowKnob pins Params.BatchWindow: a wider window forms larger
// batches.
func TestBatchWindowKnob(t *testing.T) {
	runWith := func(window engine.Cycle) float64 {
		w, err := workload.ByName("kv")
		if err != nil {
			t.Fatal(err)
		}
		p := params(2, 100)
		p.BatchWindow = window
		res := workload.Run(w, persistency.BBB, system.DefaultConfig(persistency.BBB), p)
		return res.Metrics.Hist("kv.batch_size").Mean()
	}
	narrow, wide := runWith(50), runWith(4000)
	if wide <= narrow {
		t.Fatalf("batch window has no effect: mean batch %f (window 50) vs %f (window 4000)", narrow, wide)
	}
}
