// Package kvservice is the multi-client KV service workload tier: a
// sharded key-value store built entirely from the internal/pds persistent
// structures, driven by deterministic request-arrival streams and measured
// with per-client latency histograms.
//
// Each client (one per core) owns a shard — a pds.Map for point operations
// plus a pds.List as the ordered index behind scans — so shard writers are
// single-threaded and the Map's out-of-place Resize runs under its
// quiescence contract. One pds.Queue is shared by every client as the
// commit oplog: a client batches consecutive requests inside a configurable
// batch window, applies them to its shard, then enqueues one batch record —
// the cross-core persist traffic the paper's Fig. 6 migration path exists
// for.
//
// Requests follow a precomputed schedule: arrival cycles, operation mix
// (put/get/delete/scan) and key draws (zipfian for "kv", uniform for
// "kv/uniform") all come from the drivers' seed formula, so the offered
// load is byte-identical across schemes — latency differences are purely
// the persistency scheme's. A request's latency is its batch-commit cycle
// minus its arrival cycle, observed into per-client histograms that
// workload.Run folds into Result.Metrics (kv.lat and friends in the stats
// Glossary).
package kvservice

import (
	"fmt"
	"math/rand"
	"sort"

	"bbb/internal/cpu"
	"bbb/internal/engine"
	"bbb/internal/memory"
	"bbb/internal/palloc"
	"bbb/internal/pds"
	"bbb/internal/stats"
	"bbb/internal/system"
	"bbb/internal/workload"
)

func init() {
	workload.Register(func() workload.Workload { return &Service{dist: distZipf} })
	workload.Register(func() workload.Workload { return &Service{dist: distUniform} })
}

const (
	distZipf = iota
	distUniform
)

const (
	opPut = iota
	opGet
	opDelete
	opScan
)

const (
	// keyspace is the per-client key range; keys stay >= 1.
	keyspace = 1 << 12
	// batchCap bounds a batch regardless of window length.
	batchCap = 16
	// defaultWindow is the batch window when Params.BatchWindow is zero.
	defaultWindow = engine.Cycle(400)
	// scanWidth is the range-query fan of a scan request.
	scanWidth = 8
	// latWindowWidth is the time-window width of the kv.lat.win latency
	// series in cycles: ~12 windows over a default 4x400 run, enough to
	// see warm-up and steady state without drowning the report.
	latWindowWidth = 25000
	// defaultSLO is the latency objective when Params.SLOTarget is zero:
	// 20000 cycles (10 us at 2 GHz) sits between every scheme's p50 and
	// p95, so burn rates separate the schemes without saturating.
	defaultSLO = 20000
)

// request is one precomputed service request.
type request struct {
	op      int
	key     uint64
	val     uint64
	arrival engine.Cycle
}

// client is one service client and its shard.
type client struct {
	reqs    []request
	shard   *pds.Map
	index   *pds.List
	oplog   *pds.Queue // shared across clients
	scratch memory.Addr

	// Host-side measurements, observed at simulated-commit time.
	lat, latPut, latGet, latDel, latScan stats.Histogram
	batchSize, queueDelay                stats.Histogram
	// latWin is the windowed latency series: per-time-window percentiles
	// and SLO over-counts, merged across clients into kv.lat.win.
	latWin  *stats.Windowed
	batches int
	scanned int
}

// Service implements workload.Workload for the "kv" (zipfian) and
// "kv/uniform" request mixes.
type Service struct {
	dist    int
	window  engine.Cycle
	clients []*client
}

func (s *Service) Name() string {
	if s.dist == distUniform {
		return "kv/uniform"
	}
	return "kv"
}

func (s *Service) Description() string {
	if s.dist == distUniform {
		return "multi-client KV service on pds shards, uniform keys, batched commits through the shared oplog"
	}
	return "multi-client KV service on pds shards, zipfian keys, batched commits through the shared oplog"
}

// PaperPStores is zero: the service tier is not a Table IV row.
func (s *Service) PaperPStores() float64 { return 0 }

// rng is the drivers' per-thread seed formula.
func rng(p workload.Params, thread int) *rand.Rand {
	return rand.New(rand.NewSource(p.Seed*1000003 + int64(thread)))
}

// schedule precomputes client c's request stream. Both the arrival process
// and the op/key mix come from the client's seeded rng, so every scheme
// sees the identical offered load.
func (s *Service) schedule(c int, p workload.Params) []request {
	r := rng(p, c)
	var zipf *rand.Zipf
	if s.dist == distZipf {
		zipf = rand.NewZipf(r, 1.2, 8, keyspace-1)
	}
	reqs := make([]request, p.OpsPerThread)
	arrival := engine.Cycle(0)
	for i := range reqs {
		// Mean interarrival ~720 cycles: between the PMEM baseline's
		// per-client service capacity and the battery schemes' — equal
		// offered load, visibly different queueing.
		arrival += engine.Cycle(600 + r.Intn(240))
		var key uint64
		if zipf != nil {
			key = 1 + zipf.Uint64()
		} else {
			key = 1 + uint64(r.Intn(keyspace))
		}
		req := request{key: key, arrival: arrival}
		switch roll := r.Intn(10); {
		case roll < 5:
			req.op = opPut
			req.val = uint64(c+1)<<48 | uint64(i+1)
		case roll < 8:
			req.op = opGet
		case roll < 9:
			req.op = opDelete
		default:
			req.op = opScan
		}
		reqs[i] = req
	}
	return reqs
}

// Setup precomputes every client's schedule and carves the shards and the
// shared oplog out of the persistent arena.
func (s *Service) Setup(mem *memory.Memory, arena *palloc.Arena, p workload.Params) {
	s.window = p.BatchWindow
	if s.window == 0 {
		s.window = defaultWindow
	}
	slo := p.SLOTarget
	if slo == 0 {
		slo = defaultSLO
	}
	s.clients = nil
	// The oplog sees at most one record per request from each client.
	oplog := pds.NewQueue(mem, arena, p.Threads, p.OpsPerThread+1)
	layout := mem.Layout()
	for c := 0; c < p.Threads; c++ {
		cl := &client{
			reqs:  s.schedule(c, p),
			oplog: oplog,
			// Pacing loads spin on a private DRAM line.
			scratch: layout.DRAMBase + memory.Addr(0x10000+c*int(memory.LineSize)),
			// Node heap: one node per put plus out-of-place resize copies.
			shard:  pds.NewMap(mem, arena, 1, p.OpsPerThread*6+64, 256),
			index:  pds.NewList(mem, arena, 1, p.OpsPerThread+1),
			latWin: stats.NewWindowed(latWindowWidth, slo),
		}
		s.clients = append(s.clients, cl)
	}
}

// batchRecord tags an oplog entry with its client and batch index.
func batchRecord(c, idx int) uint64 { return uint64(c+1)<<32 | uint64(idx) }

// apply executes one request against client c's shard.
func (s *Service) apply(e cpu.Env, cl *client, req request) {
	switch req.op {
	case opPut:
		cl.shard.Put(e, 0, req.key, req.val)
		cl.index.Insert(e, 0, req.key, req.val)
		if cl.shard.LoadFactor(e) > 4 {
			cl.shard.Resize(e, 0) // single writer: quiescence holds
		}
	case opGet:
		cl.shard.Get(e, req.key)
	case opDelete:
		cl.shard.Delete(e, req.key)
	case opScan:
		keys, _ := cl.index.Scan(e, req.key, scanWidth)
		cl.scanned += len(keys)
	}
}

// Programs returns one service loop per client: wait for the batch to
// form, apply it, commit it to the oplog, observe latencies.
func (s *Service) Programs(p workload.Params) []system.Program {
	progs := make([]system.Program, p.Threads)
	for c := 0; c < p.Threads; c++ {
		cl := s.clients[c]
		progs[c] = func(e cpu.Env) {
			i := 0
			for i < len(cl.reqs) {
				// Idle until the batch's first request arrives.
				for e.Now() < cl.reqs[i].arrival {
					cpu.Load64(e, cl.scratch)
				}
				deadline := e.Now() + s.window
				n := 0
				for i+n < len(cl.reqs) && n < batchCap {
					req := cl.reqs[i+n]
					if req.arrival > deadline {
						break
					}
					for e.Now() < req.arrival {
						cpu.Load64(e, cl.scratch)
					}
					cl.queueDelay.Observe(uint64(e.Now() - req.arrival))
					s.apply(e, cl, req)
					n++
				}
				// Commit: one oplog record makes the batch durable. The
				// enqueue's internal seal+fence+CAS is the only fence a
				// battery scheme pays for the whole batch.
				s.oplogEnqueue(e, cl, c)
				commit := e.Now()
				for j := i; j < i+n; j++ {
					lat := uint64(commit - cl.reqs[j].arrival)
					cl.lat.Observe(lat)
					cl.latWin.Observe(uint64(commit), lat)
					switch cl.reqs[j].op {
					case opPut:
						cl.latPut.Observe(lat)
					case opGet:
						cl.latGet.Observe(lat)
					case opDelete:
						cl.latDel.Observe(lat)
					case opScan:
						cl.latScan.Observe(lat)
					}
				}
				cl.batchSize.Observe(uint64(n))
				i += n
			}
		}
	}
	return progs
}

// oplogEnqueue commits client c's current batch.
func (s *Service) oplogEnqueue(e cpu.Env, cl *client, c int) {
	cl.oplog.Enqueue(e, c, batchRecord(c, cl.batches))
	cl.batches++
}

// authentic reports whether (key, val) matches some put in cl's stream —
// the value formula c+1 in the top bits, 1-based request index below.
func authentic(c int, cl *client, key, val uint64) bool {
	if val>>48 != uint64(c+1) {
		return false
	}
	i := int(val&0xFFFF_FFFF_FFFF) - 1
	if i < 0 || i >= len(cl.reqs) {
		return false
	}
	req := cl.reqs[i]
	return req.op == opPut && req.key == key && req.val == val
}

// Check validates invariants that hold on every legal durable image, under
// every scheme (BEP's epoch buffers are volatile, so recent fenced ops may
// be missing — only ordering survives): structural recovery, value
// authenticity against the client's schedule, and a gapless oplog prefix.
// CheckComplete adds exact-replay equality for the schemes whose fences
// imply durability.
func (s *Service) Check(mem *memory.Memory) error {
	for c, cl := range s.clients {
		img, err := pds.RecoverMap(mem, cl.shard.Base())
		if err != nil {
			return fmt.Errorf("kv: client %d shard: %w", c, err)
		}
		for _, key := range sortedKeys(img.Live) {
			if !authentic(c, cl, key, img.Live[key]) {
				return fmt.Errorf("kv: client %d key %d holds fabricated value %#x", c, key, img.Live[key])
			}
		}
		lst, err := pds.RecoverList(mem, cl.index.Base())
		if err != nil {
			return fmt.Errorf("kv: client %d index: %w", c, err)
		}
		for i, key := range lst.Keys {
			if !authentic(c, cl, key, lst.Vals[i]) {
				return fmt.Errorf("kv: client %d index key %d holds fabricated value %#x", c, key, lst.Vals[i])
			}
		}
	}
	// Oplog records per client must form a gapless prefix of the batch
	// sequence — a hole would mean a later batch commit became durable
	// before an earlier one.
	if len(s.clients) == 0 {
		return nil
	}
	img, err := pds.RecoverQueue(mem, s.clients[0].oplog.Base())
	if err != nil {
		return fmt.Errorf("kv: oplog: %w", err)
	}
	next := make([]int, len(s.clients))
	for _, v := range img.Vals {
		c := int(v>>32) - 1
		idx := int(v & 0xFFFF_FFFF)
		if c < 0 || c >= len(s.clients) {
			return fmt.Errorf("kv: oplog record %#x names client %d", v, c)
		}
		if idx != next[c] {
			return fmt.Errorf("kv: oplog client %d jumps from batch %d to %d", c, next[c], idx)
		}
		next[c]++
	}
	return nil
}

// CheckComplete is Check plus exact-replay equality: after a completed run
// whose scheme makes fenced operations durable (every scheme but BEP), the
// durable image must equal the host-side replay of every client's full
// schedule, and the oplog must hold every batch.
func (s *Service) CheckComplete(mem *memory.Memory) error {
	if err := s.Check(mem); err != nil {
		return err
	}
	for c, cl := range s.clients {
		wantLive := map[uint64]uint64{}
		wantDead := map[uint64]bool{}
		wantIndex := map[uint64]uint64{}
		for _, req := range cl.reqs {
			switch req.op {
			case opPut:
				wantLive[req.key] = req.val
				delete(wantDead, req.key)
				wantIndex[req.key] = req.val
			case opDelete:
				if _, live := wantLive[req.key]; live {
					delete(wantLive, req.key)
					wantDead[req.key] = true
				}
			}
		}
		img, err := pds.RecoverMap(mem, cl.shard.Base())
		if err != nil {
			return fmt.Errorf("kv: client %d shard: %w", c, err)
		}
		if len(img.Live) != len(wantLive) {
			return fmt.Errorf("kv: client %d shard has %d live keys, want %d", c, len(img.Live), len(wantLive))
		}
		for _, key := range sortedKeys(wantLive) {
			if got, ok := img.Live[key]; !ok || got != wantLive[key] {
				return fmt.Errorf("kv: client %d key %d = %d,%v, want %d", c, key, got, ok, wantLive[key])
			}
		}
		for _, key := range sortedKeys(wantDead) {
			if !img.Dead[key] {
				return fmt.Errorf("kv: client %d key %d should be tombstoned", c, key)
			}
		}
		lst, err := pds.RecoverList(mem, cl.index.Base())
		if err != nil {
			return fmt.Errorf("kv: client %d index: %w", c, err)
		}
		if len(lst.Keys) != len(wantIndex) {
			return fmt.Errorf("kv: client %d index has %d keys, want %d", c, len(lst.Keys), len(wantIndex))
		}
		for i, key := range lst.Keys {
			if want, ok := wantIndex[key]; !ok || lst.Vals[i] != want {
				return fmt.Errorf("kv: client %d index key %d = %d, want %d (present %v)", c, key, lst.Vals[i], want, ok)
			}
		}
	}
	img, err := pds.RecoverQueue(mem, s.clients[0].oplog.Base())
	if err != nil {
		return fmt.Errorf("kv: oplog: %w", err)
	}
	count := make([]int, len(s.clients))
	for _, v := range img.Vals {
		count[int(v>>32)-1]++
	}
	for c, cl := range s.clients {
		if count[c] != cl.batches {
			return fmt.Errorf("kv: oplog holds %d batches for client %d, want %d", count[c], c, cl.batches)
		}
	}
	return nil
}

// sortedKeys returns m's keys ascending, for deterministic checker walks.
func sortedKeys[V any](m map[uint64]V) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m { //bbbvet:ignore detlint keys sorted immediately below
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// MergeServiceMetrics implements workload.ServiceMetrics: fold the
// per-client histograms into the run's Metrics registry.
func (s *Service) MergeServiceMetrics(m *stats.Metrics) {
	for _, cl := range s.clients {
		m.MergeHist("kv.lat", &cl.lat)
		m.MergeHist("kv.lat.put", &cl.latPut)
		m.MergeHist("kv.lat.get", &cl.latGet)
		m.MergeHist("kv.lat.delete", &cl.latDel)
		m.MergeHist("kv.lat.scan", &cl.latScan)
		m.MergeHist("kv.batch_size", &cl.batchSize)
		m.MergeHist("kv.queue_delay", &cl.queueDelay)
		m.MergeWindowed("kv.lat.win", cl.latWin)
	}
	// Project the merged windows onto gauge timelines so the per-window
	// percentiles ride the standard GaugeSeries path (Perfetto counter
	// tracks, decimation, CLI summaries). Stamped at each window's last
	// cycle, machine-wide (core -1).
	if win := m.Windowed("kv.lat.win"); win != nil {
		for _, snap := range win.Snapshots() {
			end := snap.Start + win.Width() - 1
			m.Sample("kv.lat.win.p50", end, -1, uint64(snap.P50))
			m.Sample("kv.lat.win.p99", end, -1, uint64(snap.P99))
		}
	}
}
