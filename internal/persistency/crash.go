package persistency

import (
	"bbb/internal/coherence"
	"bbb/internal/cpu"
	"bbb/internal/memctrl"
	"bbb/internal/memory"
	"bbb/internal/trace"
)

// DrainReport records what flush-on-fail moved to NVMM at a crash; it feeds
// the energy model (bytes drained determines battery demand) and the
// recovery checks.
type DrainReport struct {
	Scheme     Scheme
	WPQLines   int
	BufLines   int // bbPB entries (BBB modes)
	CacheLines int // dirty persistent cache lines (eADR, NVCache)
	SBStores   int // battery-backed store-buffer entries
	// LostLines counts buffered persists discarded by a volatile persist
	// buffer at the crash (BEP) — durability the battery would have saved.
	LostLines int
}

// Lines returns the total number of cache-line-sized transfers the battery
// had to pay for (store-buffer entries count as one line each, the paper's
// worst case).
func (r DrainReport) Lines() int {
	return r.WPQLines + r.BufLines + r.CacheLines + r.SBStores
}

// Bytes returns the drained payload in bytes.
func (r DrainReport) Bytes() int { return r.Lines() * memory.LineSize }

// VPBEntry is one still-buffered volatile-persist-buffer record (BEP), as
// seen by the crash-image model checker's recorder. Entries whose drain is
// already in flight are excluded: the controller applies a write's data the
// moment Write is called, so an in-flight drain has already reached the WPQ
// and is part of the deterministic post-crash image.
type VPBEntry struct {
	Addr  memory.Addr
	Data  [memory.LineSize]byte
	Epoch uint64
}

// VPBSnapshot returns, per core, a copy of the volatile persist-buffer
// entries still pending at this instant, in allocation order (epochs
// non-decreasing). Non-BEP schemes return nil. These are exactly the writes
// a crash loses under the deterministic drain but that real BEP hardware
// may have drained further: any epoch-downward-closed subset of them is a
// legal extra survival set (epoch prefix plus same-epoch reorder).
func (m *Model) VPBSnapshot() [][]VPBEntry {
	if m.Scheme != BEP {
		return nil
	}
	out := make([][]VPBEntry, len(m.vpbs))
	for c, v := range m.vpbs {
		for i := range v.entries {
			if v.entries[i].draining {
				continue
			}
			out[c] = append(out[c], VPBEntry{
				Addr:  v.entries[i].addr,
				Data:  v.entries[i].data,
				Epoch: v.entries[i].epoch,
			})
		}
	}
	return out
}

// BufferedLines counts the lines currently resident in the scheme's
// battery-backed persist buffers (bbPB organizations). They are inside the
// persistence domain — all of them survive every crash — so the recorder
// reports them as domain-resident rather than enumerable.
func (m *Model) BufferedLines() int {
	n := 0
	for _, b := range m.Buffers {
		b.ForEachEntry(func(memory.Addr, uint64, bool) { n++ })
	}
	return n
}

// CrashDrain performs the scheme's flush-on-fail at the instant of a crash,
// mutating the NVMM image exactly as the battery-powered drain would. The
// simulation must already be stopped; no simulated time passes.
//
// Freshness ordering: the WPQ holds the oldest copies (earlier drains and
// writebacks), bbPB entries and cache lines are fresher, and battery-backed
// store-buffer entries are freshest, so stages apply in that order.
func (m *Model) CrashDrain(cores []*cpu.Core, h *coherence.Hierarchy, nvmm *memctrl.Controller, mem *memory.Memory) DrainReport {
	rep := DrainReport{Scheme: m.Scheme}
	layout := mem.Layout()

	// Stage 1: the WPQ is inside the persistence domain for every scheme
	// (ADR baseline, footnote 1 of the paper).
	rep.WPQLines = nvmm.CrashDrain()

	// Stage 2: the scheme's own persistence domain above the controller.
	switch m.Scheme {
	case PMEM:
		// Nothing: caches and store buffers are volatile.
	case EADR, NVCache:
		// eADR: flush-on-fail drains every dirty persistent line on
		// battery. NVCache: the NVM cells retain the same lines without a
		// battery; flushing them to the image models that retention.
		h.ForEachDirtyLine(func(la memory.Addr, persistent bool, data *[memory.LineSize]byte) {
			if !persistent {
				return // DRAM-bound dirty lines are simply lost state
			}
			mem.WriteLine(la, data)
			m.eng.EmitTrace(trace.KindCrashDrain, -1, uint64(la), 0)
			rep.CacheLines++
		})
	case BBB, BBBProc:
		for _, b := range m.Buffers {
			rep.BufLines += b.CrashDrain(func(la memory.Addr, data *[memory.LineSize]byte) {
				mem.WriteLine(la, data)
			})
		}
	case BEP:
		// Traditional persist buffers are volatile: their contents are
		// simply gone. Only the WPQ prefix survived.
		for _, v := range m.vpbs {
			rep.LostLines += v.crashLoss()
		}
	}

	// Stage 3: battery-backed store buffers (§III-C) drain last — they hold
	// the youngest committed stores. Each core's own flag is consulted so
	// the SB-battery ablation behaves coherently.
	for _, c := range cores {
		if !c.BatteryBackedSB() {
			continue
		}
		rep.SBStores += c.CrashDrainSB(
			mem.PeekLine,
			func(la memory.Addr, data *[memory.LineSize]byte) { mem.WriteLine(la, data) },
			layout.Persistent,
		)
	}
	return rep
}
