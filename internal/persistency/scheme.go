// Package persistency defines the persistency schemes the paper compares
// (Table I) and implements, for each, its coherence-policy hooks and its
// flush-on-fail crash drain:
//
//   - PMEM: the Intel-style ADR baseline. Programs order persists with
//     explicit clwb+sfence; the persistence domain is the NVMM controller's
//     WPQ. Caches, store buffers and everything above are lost on a crash.
//   - eADR: the whole SRAM cache hierarchy is battery backed. No persist
//     instructions; on a crash every dirty line drains to NVMM.
//   - BBB: the paper's contribution. A small battery-backed persist buffer
//     (bbPB) per core is the point of persistency; no persist instructions;
//     on a crash only the bbPBs (plus store buffers and WPQ) drain.
//   - BBBProc: BBB with the processor-side buffer organization (§III-B),
//     the paper's ~2.8x-more-writes comparison point.
package persistency

import (
	"fmt"

	"bbb/internal/bbpb"
	"bbb/internal/coherence"
	"bbb/internal/cpu"
	"bbb/internal/engine"
	"bbb/internal/memctrl"
	"bbb/internal/memory"
	"bbb/internal/stats"
)

// Scheme identifies a persistency scheme.
type Scheme int

// The schemes of Table I (BSP is discussed but not evaluated by the
// paper), plus two comparison designs the paper discusses qualitatively:
// BEP (traditional volatile persist buffers with epoch barriers, §III-A)
// and NVCache (a non-volatile cache hierarchy, §II-B).
const (
	PMEM Scheme = iota
	EADR
	BBB
	BBBProc
	BEP
	NVCache
)

func (s Scheme) String() string {
	switch s {
	case PMEM:
		return "pmem"
	case EADR:
		return "eadr"
	case BBB:
		return "bbb"
	case BBBProc:
		return "bbb-proc"
	case BEP:
		return "bep"
	case NVCache:
		return "nvcache"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// ParseScheme converts a CLI name into a Scheme.
func ParseScheme(name string) (Scheme, error) {
	switch name {
	case "pmem":
		return PMEM, nil
	case "eadr":
		return EADR, nil
	case "bbb":
		return BBB, nil
	case "bbb-proc", "bbbproc":
		return BBBProc, nil
	case "bep":
		return BEP, nil
	case "nvcache":
		return NVCache, nil
	}
	return 0, fmt.Errorf("persistency: unknown scheme %q (want pmem, eadr, bbb, bbb-proc, bep or nvcache)", name)
}

// Schemes lists every scheme, in Table I order with the two extra
// comparison designs last.
func Schemes() []Scheme { return []Scheme{PMEM, EADR, BBB, BBBProc, BEP, NVCache} }

// Traits is the qualitative row of Table I for a scheme.
type Traits struct {
	Name            string
	SWComplexity    string
	PersistInsts    string
	HWComplexity    string
	StrictPenalty   string
	BatteryNeeded   string
	PoPLocation     string
	ExplicitPersist bool // programs must issue clwb+fence
	EpochMode       bool // programs mark epochs instead (BEP)
	BatteryBackedSB bool // store buffer inside the persistence domain
}

// TraitsOf returns the Table I row for s.
func TraitsOf(s Scheme) Traits {
	switch s {
	case PMEM:
		return Traits{
			Name: "PMEM", SWComplexity: "High", PersistInsts: "clwb & fence",
			HWComplexity: "Low", StrictPenalty: "High", BatteryNeeded: "None (WPQ cap only)",
			PoPLocation: "WPQ/mem", ExplicitPersist: true,
		}
	case EADR:
		return Traits{
			Name: "eADR", SWComplexity: "Low", PersistInsts: "None",
			HWComplexity: "Low", StrictPenalty: "None", BatteryNeeded: "Large",
			PoPLocation: "L1D", BatteryBackedSB: true,
		}
	case BBB:
		return Traits{
			Name: "BBB", SWComplexity: "Low", PersistInsts: "None",
			HWComplexity: "Low", StrictPenalty: "Low", BatteryNeeded: "Small",
			PoPLocation: "bbPB/L1D", BatteryBackedSB: true,
		}
	case BBBProc:
		return Traits{
			Name: "BBB (proc-side)", SWComplexity: "Low", PersistInsts: "None",
			HWComplexity: "Low", StrictPenalty: "Low", BatteryNeeded: "Small",
			PoPLocation: "bbPB/L1D", BatteryBackedSB: true,
		}
	case BEP:
		return Traits{
			Name: "BEP (volatile PB)", SWComplexity: "Medium", PersistInsts: "epoch barrier",
			HWComplexity: "Medium", StrictPenalty: "Medium", BatteryNeeded: "None (WPQ cap only)",
			PoPLocation: "WPQ/mem", EpochMode: true,
		}
	case NVCache:
		return Traits{
			Name: "NVCache", SWComplexity: "Low", PersistInsts: "None",
			HWComplexity: "Medium", StrictPenalty: "None", BatteryNeeded: "None",
			PoPLocation: "L1D (NVM cells)", BatteryBackedSB: true,
		}
	default:
		panic("persistency: unknown scheme")
	}
}

// Model binds a scheme to its runtime pieces for one simulation.
type Model struct {
	Scheme Scheme
	// Buffers holds the per-core persist buffers (BBB modes only).
	Buffers []bbpb.PersistBuffer
	// vpbs holds the volatile epoch buffers (BEP only).
	vpbs   []*vpb
	policy coherence.PersistPolicy
	eng    *engine.Engine // for crash-drain trace emission
}

// NewModel builds the scheme's policy and buffers. cores is the core count;
// bufCfg sizes the persist buffers (ignored for PMEM/eADR/NVCache).
func NewModel(s Scheme, cores int, bufCfg bbpb.Config, eng *engine.Engine, nvmm *memctrl.Controller) *Model {
	m := &Model{Scheme: s, eng: eng}
	switch s {
	case PMEM, EADR, NVCache:
		m.policy = coherence.NullPolicy{}
	case BBB:
		for i := 0; i < cores; i++ {
			m.Buffers = append(m.Buffers, bbpb.New(bufCfg, i, eng, nvmm))
		}
		m.policy = &bbbPolicy{bufs: m.Buffers}
	case BBBProc:
		for i := 0; i < cores; i++ {
			m.Buffers = append(m.Buffers, bbpb.NewProcSide(bufCfg, i, eng, nvmm))
		}
		m.policy = &bbbPolicy{bufs: m.Buffers}
	case BEP:
		for i := 0; i < cores; i++ {
			m.vpbs = append(m.vpbs, newVPB(i, bufCfg.Entries, bufCfg.DrainThreshold, eng, nvmm))
		}
		m.policy = &bepPolicy{bufs: m.vpbs}
	default:
		panic("persistency: unknown scheme")
	}
	return m
}

// Policy returns the coherence hooks for the scheme.
func (m *Model) Policy() coherence.PersistPolicy { return m.policy }

// CoreConfig applies the scheme's programming model to a core config.
func (m *Model) CoreConfig(cfg cpu.Config) cpu.Config {
	tr := TraitsOf(m.Scheme)
	cfg.ExplicitPersist = tr.ExplicitPersist
	cfg.EpochMode = tr.EpochMode
	cfg.BatteryBackedSB = tr.BatteryBackedSB
	return cfg
}

// AdjustHierarchy applies scheme-specific hierarchy changes: NVCache swaps
// the SRAM arrays for NVM cells, whose writes are slower (§II-B: STT-RAM
// class latencies — the price of closing the PoV/PoP gap without a
// battery).
func (m *Model) AdjustHierarchy(cfg coherence.Config) coherence.Config {
	if m.Scheme == NVCache {
		cfg.L1Lat += 2  // NVM L1 write path
		cfg.L2Lat += 11 // NVM L2 write path
	}
	return cfg
}

// bepPolicy wires the volatile epoch buffers into the hierarchy hooks.
type bepPolicy struct {
	bufs []*vpb
}

var (
	_ coherence.PersistPolicy = (*bepPolicy)(nil)
	_ coherence.EpochPolicy   = (*bepPolicy)(nil)
)

func (p *bepPolicy) CanAcceptStore(core int, addr memory.Addr) bool {
	return p.bufs[core].canAccept(addr)
}

func (p *bepPolicy) OnSpace(core int, fn func()) {
	p.bufs[core].waitSpace(fn)
}

func (p *bepPolicy) CommitStore(core int, addr memory.Addr, data *[memory.LineSize]byte) {
	if !p.bufs[core].put(addr, data) {
		panic(fmt.Sprintf("persistency: vpb[%d] rejected a reserved store for %#x", core, addr))
	}
}

func (p *bepPolicy) OnRemoteInvalidate(victim int, addr memory.Addr) {
	// Volatile buffers cannot migrate entries (the data would leave the
	// persistence-ordering domain); drain the block and everything older
	// instead — the delegation cost of traditional persist buffers.
	p.bufs[victim].drainThrough(addr)
}

func (p *bepPolicy) OnLLCEvict(addr memory.Addr, persistent, dirty bool, done func(bool)) {
	if !persistent {
		done(dirty)
		return
	}
	// A plain writeback would let cache-replacement order leapfrog
	// buffered epochs (the unordered-persists hazard of §I). Real BEP
	// hardware blocks or orders such writebacks; model that by draining
	// the buffered block in epoch order and dropping the writeback. A
	// block with no buffered entry was already drained with its final
	// value, so it also drops.
	for _, v := range p.bufs {
		if v.find(addr) >= 0 {
			v.drainThrough(addr)
			break
		}
	}
	done(false)
}

func (p *bepPolicy) OnEpochBarrier(core int) {
	p.bufs[core].epochBarrier()
}

// bbbPolicy wires the per-core persist buffers into the hierarchy's hooks.
type bbbPolicy struct {
	bufs []bbpb.PersistBuffer

	// drainFree pools the force-drain completion adapters so the LLC
	// eviction path stays allocation-free (several evictions — one per
	// filling transaction — can be in flight at once).
	drainFree *evictDrain
}

// evictDrain adapts a hierarchy eviction callback (func(bool)) to the
// bbPB's ForceDrain completion (func()), recycling itself when it fires.
type evictDrain struct {
	p    *bbbPolicy
	next *evictDrain
	done func(bool)
	fn   func()
}

func (p *bbbPolicy) getEvictDrain(done func(bool)) *evictDrain {
	e := p.drainFree
	if e == nil {
		e = &evictDrain{p: p}
		e.fn = func() {
			cb := e.done
			e.done = nil
			e.next = e.p.drainFree
			e.p.drainFree = e
			// The drain already carried the data to NVMM: no writeback.
			cb(false)
		}
	} else {
		p.drainFree = e.next
		e.next = nil
	}
	e.done = done
	return e
}

var _ coherence.PersistPolicy = (*bbbPolicy)(nil)

func (p *bbbPolicy) CanAcceptStore(core int, addr memory.Addr) bool {
	return p.bufs[core].CanAccept(addr)
}

func (p *bbbPolicy) OnSpace(core int, fn func()) {
	p.bufs[core].WaitSpace(fn)
}

func (p *bbbPolicy) CommitStore(core int, addr memory.Addr, data *[memory.LineSize]byte) {
	if !p.bufs[core].Put(addr, data) {
		// CanAcceptStore reserved the slot and only the core's own stores
		// grow its buffer, so this cannot happen.
		panic(fmt.Sprintf("persistency: bbPB[%d] rejected a reserved store for %#x", core, addr))
	}
}

func (p *bbbPolicy) OnRemoteInvalidate(victim int, addr memory.Addr) {
	// The entry migrates: the writer's CommitStore re-allocates it with the
	// merged, freshest data in the same transaction (Fig. 6 a/b). No drain,
	// no NVMM write.
	p.bufs[victim].Remove(addr)
}

func (p *bbbPolicy) OnLLCEvict(addr memory.Addr, persistent, dirty bool, done func(bool)) {
	if !persistent {
		done(dirty)
		return
	}
	// Dirty inclusion (§III-B): force-drain the owning bbPB, then drop the
	// LLC victim without a writeback — the drain (or an earlier one)
	// already carries the freshest data to NVMM.
	for c := range p.bufs {
		if p.bufs[c].Has(addr) {
			p.bufs[c].ForceDrain(addr, p.getEvictDrain(done).fn)
			return
		}
	}
	done(false)
}

// Rejections sums persist-buffer rejections across cores (Fig. 8a).
func (m *Model) Rejections() uint64 {
	var n uint64
	for _, b := range m.Buffers {
		n += b.Counters().Get("bbpb.rejections")
	}
	for _, v := range m.vpbs {
		n += v.counters().Get("vpb.rejections")
	}
	return n
}

// Drains sums persist-buffer-to-NVMM drains across cores (Fig. 8c).
func (m *Model) Drains() uint64 {
	var n uint64
	for _, b := range m.Buffers {
		n += b.Counters().Get("bbpb.drains")
	}
	for _, v := range m.vpbs {
		n += v.counters().Get("vpb.drains")
	}
	return n
}

// BufferCounters returns every persist buffer's counter set (both
// organizations and the BEP volatile buffers), for stats aggregation.
func (m *Model) BufferCounters() []*stats.Counters {
	var out []*stats.Counters
	for _, b := range m.Buffers {
		out = append(out, b.Counters())
	}
	for _, v := range m.vpbs {
		out = append(out, v.counters())
	}
	return out
}
