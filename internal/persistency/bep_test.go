package persistency

import (
	"testing"

	"bbb/internal/bbpb"
	"bbb/internal/coherence"
	"bbb/internal/cpu"
	"bbb/internal/engine"
	"bbb/internal/memctrl"
	"bbb/internal/memory"
)

func cpuDefault() cpu.Config { return cpu.DefaultConfig() }

func coherenceDefault() coherence.Config {
	cfg := coherence.DefaultConfig()
	cfg.Cores = 1
	return cfg
}

func emptyHierarchy(eng *engine.Engine, mem *memory.Memory, nvmm *memctrl.Controller, m *Model) *coherence.Hierarchy {
	return coherence.New(coherenceDefault(), eng, mem.Layout(), nil, nvmm, m.Policy())
}

func newVPBParts(t *testing.T, capacity int, thresh float64) (*vpb, func(), *memory.Memory) {
	t.Helper()
	eng, mem, nvmm := newParts(t)
	v := newVPB(0, capacity, thresh, eng, nvmm)
	return v, func() { eng.Run() }, mem
}

func lineVal(b byte) [memory.LineSize]byte {
	var d [memory.LineSize]byte
	d[0] = b
	return d
}

func TestVPBCoalesceWithinEpochOnly(t *testing.T) {
	v, run, mem := newVPBParts(t, 8, 1.0)
	a := mem.Layout().PersistentBase
	d1, d2 := lineVal(1), lineVal(2)
	if !v.put(a, &d1) {
		t.Fatal("put rejected")
	}
	if !v.put(a, &d2) {
		t.Fatal("same-epoch coalesce rejected")
	}
	if len(v.entries) != 1 {
		t.Fatalf("entries = %d, want 1 (coalesced)", len(v.entries))
	}
	v.epochBarrier()
	d3 := lineVal(3)
	if !v.put(a, &d3) {
		t.Fatal("cross-epoch put rejected")
	}
	if len(v.entries) != 2 {
		t.Fatalf("entries = %d, want 2 (no cross-epoch coalescing)", len(v.entries))
	}
	run()
}

func TestVPBEpochOrderedDrain(t *testing.T) {
	v, run, mem := newVPBParts(t, 8, 0.0) // drain everything eagerly
	base := mem.Layout().PersistentBase
	// Two epochs; all of epoch 0 must reach the image before epoch 1.
	d := lineVal(10)
	v.put(base, &d)
	v.epochBarrier()
	d2 := lineVal(20)
	v.put(base+memory.LineSize, &d2)
	run()
	if len(v.entries) != 0 {
		t.Fatalf("entries = %d, want 0 after eager drain", len(v.entries))
	}
	if v.counters().Get("vpb.drains") != 2 {
		t.Fatalf("drains = %d", v.counters().Get("vpb.drains"))
	}
}

func TestVPBDrainCandidateRespectsEpochs(t *testing.T) {
	v, _, mem := newVPBParts(t, 8, 1.0)
	base := mem.Layout().PersistentBase
	d := lineVal(1)
	v.put(base, &d)
	v.epochBarrier()
	v.put(base+memory.LineSize, &d)
	// The candidate must be the epoch-0 entry.
	i := v.drainCandidate()
	if i != 0 || v.entries[i].epoch != 0 {
		t.Fatalf("candidate = %d (epoch %d), want the epoch-0 entry", i, v.entries[i].epoch)
	}
	// With epoch 0 in flight, nothing else may start.
	v.entries[0].draining = true
	if v.drainCandidate() != -1 {
		t.Fatal("epoch-1 entry offered while epoch 0 in flight")
	}
}

func TestVPBDrainThrough(t *testing.T) {
	v, run, mem := newVPBParts(t, 8, 1.0)
	base := mem.Layout().PersistentBase
	a0, a1, a2 := base, base+memory.LineSize, base+2*memory.LineSize
	d := lineVal(1)
	v.put(a0, &d)
	v.epochBarrier()
	v.put(a1, &d)
	v.put(a2, &d)
	v.drainThrough(a1) // must drain a0 (older epoch) then a1; a2 may stay
	run()
	if v.find(a0) >= 0 || v.find(a1) >= 0 {
		t.Fatal("drainThrough left ordered-before entries behind")
	}
	if v.counters().Get("vpb.forced_drains") != 2 {
		t.Fatalf("forced drains = %d, want 2", v.counters().Get("vpb.forced_drains"))
	}
}

func TestVPBCrashLoss(t *testing.T) {
	v, _, mem := newVPBParts(t, 8, 1.0)
	d := lineVal(9)
	v.put(mem.Layout().PersistentBase, &d)
	if n := v.crashLoss(); n != 1 {
		t.Fatalf("crashLoss = %d, want 1", n)
	}
	if len(v.entries) != 0 {
		t.Fatal("entries remain after crash loss")
	}
}

func TestBEPModelWiring(t *testing.T) {
	eng, _, nvmm := newParts(t)
	m := NewModel(BEP, 2, bbpb.DefaultConfig(), eng, nvmm)
	if len(m.vpbs) != 2 || len(m.Buffers) != 0 {
		t.Fatalf("BEP buffers: vpbs=%d bbpbs=%d", len(m.vpbs), len(m.Buffers))
	}
	tr := TraitsOf(BEP)
	if !tr.EpochMode || tr.ExplicitPersist || tr.BatteryBackedSB {
		t.Fatalf("BEP traits wrong: %+v", tr)
	}
	ccfg := m.CoreConfig(cpuDefault())
	if !ccfg.EpochMode {
		t.Fatal("CoreConfig did not enable epoch mode")
	}
}

func TestNVCacheModelWiring(t *testing.T) {
	eng, _, nvmm := newParts(t)
	m := NewModel(NVCache, 2, bbpb.DefaultConfig(), eng, nvmm)
	if len(m.vpbs) != 0 || len(m.Buffers) != 0 {
		t.Fatal("NVCache should have no persist buffers")
	}
	base := coherenceDefault()
	adj := m.AdjustHierarchy(base)
	if adj.L1Lat <= base.L1Lat || adj.L2Lat <= base.L2Lat {
		t.Fatal("NVCache must slow the cache write paths")
	}
	// Other schemes leave latencies alone.
	m2 := NewModel(BBB, 2, bbpb.DefaultConfig(), eng, nvmm)
	if got := m2.AdjustHierarchy(base); got != base {
		t.Fatal("BBB must not adjust hierarchy latencies")
	}
}

func TestBEPCrashLosesBufferedPersists(t *testing.T) {
	eng, mem, nvmm := newParts(t)
	m := NewModel(BEP, 1, bbpb.Config{Entries: 8, DrainThreshold: 1.0}, eng, nvmm)
	a := mem.Layout().PersistentBase
	var d [memory.LineSize]byte
	d[0] = 7
	m.policy.CommitStore(0, a, &d)
	rep := m.CrashDrain(nil, emptyHierarchy(eng, mem, nvmm, m), nvmm, mem)
	if rep.LostLines != 1 {
		t.Fatalf("LostLines = %d, want 1", rep.LostLines)
	}
	var got [memory.LineSize]byte
	mem.PeekLine(a, &got)
	if got[0] == 7 {
		t.Fatal("volatile buffer contents survived the crash")
	}
}
