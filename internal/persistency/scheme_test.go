package persistency

import (
	"testing"

	"bbb/internal/bbpb"
	"bbb/internal/coherence"
	"bbb/internal/cpu"
	"bbb/internal/engine"
	"bbb/internal/memctrl"
	"bbb/internal/memory"
)

func TestSchemeStringRoundTrip(t *testing.T) {
	for _, s := range Schemes() {
		got, err := ParseScheme(s.String())
		if err != nil {
			t.Fatalf("ParseScheme(%q): %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("round trip %v -> %v", s, got)
		}
	}
	if _, err := ParseScheme("bsp"); err == nil {
		t.Fatal("unsupported scheme should error")
	}
}

func TestTraitsTableI(t *testing.T) {
	if !TraitsOf(PMEM).ExplicitPersist {
		t.Fatal("PMEM must require explicit persists")
	}
	for _, s := range []Scheme{EADR, BBB, BBBProc} {
		tr := TraitsOf(s)
		if tr.ExplicitPersist {
			t.Fatalf("%v must not require persist instructions", s)
		}
		if !tr.BatteryBackedSB {
			t.Fatalf("%v must battery-back the store buffer (Fig. 4)", s)
		}
	}
	if TraitsOf(PMEM).BatteryBackedSB {
		t.Fatal("PMEM must not battery-back the store buffer")
	}
}

func newParts(t *testing.T) (*engine.Engine, *memory.Memory, *memctrl.Controller) {
	t.Helper()
	eng := engine.New()
	mem := memory.New(memory.DefaultLayout())
	nvmm := memctrl.New(memctrl.DefaultNVMM(), eng, mem)
	return eng, mem, nvmm
}

func TestNewModelBuffers(t *testing.T) {
	eng, _, nvmm := newParts(t)
	for _, s := range Schemes() {
		m := NewModel(s, 4, bbpb.DefaultConfig(), eng, nvmm)
		switch s {
		case PMEM, EADR:
			if len(m.Buffers) != 0 {
				t.Fatalf("%v should have no buffers", s)
			}
			if _, ok := m.Policy().(coherence.NullPolicy); !ok {
				t.Fatalf("%v should use NullPolicy", s)
			}
		case BBB, BBBProc:
			if len(m.Buffers) != 4 {
				t.Fatalf("%v buffers = %d, want 4", s, len(m.Buffers))
			}
		}
	}
}

func TestBBBPolicyReservation(t *testing.T) {
	eng, mem, nvmm := newParts(t)
	cfg := bbpb.Config{Entries: 2, DrainThreshold: 1.0}
	m := NewModel(BBB, 2, cfg, eng, nvmm)
	pol := m.Policy()
	base := mem.Layout().PersistentBase
	var line [memory.LineSize]byte

	for i := 0; i < 2; i++ {
		a := base + memory.Addr(i)*memory.LineSize
		if !pol.CanAcceptStore(0, a) {
			t.Fatalf("store %d refused early", i)
		}
		pol.CommitStore(0, a, &line)
	}
	// Full: a new block is refused, a resident block coalesces.
	if pol.CanAcceptStore(0, base+10*memory.LineSize) {
		t.Fatal("full buffer accepted a new block")
	}
	if !pol.CanAcceptStore(0, base) {
		t.Fatal("resident block refused while full")
	}
	// The other core's buffer is independent.
	if !pol.CanAcceptStore(1, base+10*memory.LineSize) {
		t.Fatal("core 1's empty buffer refused a store")
	}
	woken := false
	pol.OnSpace(0, func() { woken = true })
	m.Buffers[0].Remove(base)
	eng.Run()
	if !woken {
		t.Fatal("OnSpace not fired after Remove")
	}
}

func TestBBBPolicyMigration(t *testing.T) {
	eng, mem, nvmm := newParts(t)
	m := NewModel(BBB, 2, bbpb.DefaultConfig(), eng, nvmm)
	pol := m.Policy()
	a := mem.Layout().PersistentBase
	var line [memory.LineSize]byte
	line[0] = 7
	pol.CommitStore(0, a, &line)
	if !m.Buffers[0].Has(a) {
		t.Fatal("entry not in core 0's buffer")
	}
	// Core 1 writes the block: invalidation migrates the entry.
	pol.OnRemoteInvalidate(0, a)
	if m.Buffers[0].Has(a) {
		t.Fatal("entry still in core 0's buffer after migration")
	}
	line[0] = 9
	pol.CommitStore(1, a, &line)
	if !m.Buffers[1].Has(a) {
		t.Fatal("entry not installed in core 1's buffer")
	}
	// Migration must not have produced NVMM traffic.
	if nvmm.Stats.Get("nvmm.writes") != 0 {
		t.Fatal("migration wrote NVMM")
	}
}

func TestBBBPolicyLLCEvict(t *testing.T) {
	eng, mem, nvmm := newParts(t)
	m := NewModel(BBB, 1, bbpb.DefaultConfig(), eng, nvmm)
	pol := m.Policy()
	a := mem.Layout().PersistentBase
	var line [memory.LineSize]byte
	line[0] = 5
	pol.CommitStore(0, a, &line)

	// Dirty persistent victim with a live bbPB entry: forced drain, no
	// writeback.
	var wb *bool
	pol.OnLLCEvict(a, true, true, func(writeBack bool) { wb = &writeBack })
	eng.Run()
	if wb == nil {
		t.Fatal("evict decision never delivered")
	}
	if *wb {
		t.Fatal("persistent victim was written back (should be dropped)")
	}
	if m.Buffers[0].Has(a) {
		t.Fatal("entry not drained by eviction")
	}
	if nvmm.Stats.Get("nvmm.writes") != 1 {
		t.Fatalf("forced drain wrote %d times, want 1", nvmm.Stats.Get("nvmm.writes"))
	}

	// Dirty persistent victim with NO bbPB entry: silent drop.
	wb = nil
	pol.OnLLCEvict(a, true, true, func(writeBack bool) { wb = &writeBack })
	eng.Run()
	if wb == nil || *wb {
		t.Fatal("already-drained persistent victim should drop silently")
	}

	// Dirty non-persistent victim: normal writeback.
	wb = nil
	pol.OnLLCEvict(0x1000, false, true, func(writeBack bool) { wb = &writeBack })
	eng.Run()
	if wb == nil || !*wb {
		t.Fatal("non-persistent dirty victim must write back")
	}
}

func TestCrashDrainFreshnessOrder(t *testing.T) {
	// A line with an old value in the WPQ and a new value in the bbPB must
	// end up with the bbPB value after CrashDrain.
	eng, mem, nvmm := newParts(t)
	m := NewModel(BBB, 1, bbpb.DefaultConfig(), eng, nvmm)
	a := mem.Layout().PersistentBase
	var oldLine, newLine [memory.LineSize]byte
	oldLine[0], newLine[0] = 1, 2
	nvmm.Write(a, oldLine, nil) // stale copy sitting in the WPQ
	if !m.Buffers[0].Put(a, &newLine) {
		t.Fatal("Put failed")
	}
	hcfg := coherence.DefaultConfig()
	hcfg.Cores = 1
	h := coherence.New(hcfg, eng, mem.Layout(), nil, nvmm, m.Policy())
	core := cpu.New(0, cpu.DefaultConfig(), eng, h)
	rep := m.CrashDrain([]*cpu.Core{core}, h, nvmm, mem)
	if rep.WPQLines != 1 || rep.BufLines != 1 {
		t.Fatalf("report = %+v", rep)
	}
	var got [memory.LineSize]byte
	mem.PeekLine(a, &got)
	if got[0] != 2 {
		t.Fatalf("image holds %d, want the fresher bbPB value 2", got[0])
	}
}

func TestCrashDrainPMEMDropsVolatileState(t *testing.T) {
	eng, mem, nvmm := newParts(t)
	m := NewModel(PMEM, 1, bbpb.DefaultConfig(), eng, nvmm)
	hcfg := coherence.DefaultConfig()
	hcfg.Cores = 1
	h := coherence.New(hcfg, eng, mem.Layout(), nil, nvmm, m.Policy())
	core := cpu.New(0, cpu.DefaultConfig(), eng, h)
	rep := m.CrashDrain([]*cpu.Core{core}, h, nvmm, mem)
	if rep.CacheLines != 0 || rep.BufLines != 0 || rep.SBStores != 0 {
		t.Fatalf("PMEM drained volatile state: %+v", rep)
	}
}

func TestDrainReportArithmetic(t *testing.T) {
	r := DrainReport{WPQLines: 2, BufLines: 3, CacheLines: 4, SBStores: 1}
	if r.Lines() != 10 {
		t.Fatalf("Lines = %d", r.Lines())
	}
	if r.Bytes() != 640 {
		t.Fatalf("Bytes = %d", r.Bytes())
	}
}
