package persistency

import (
	"bbb/internal/engine"
	"bbb/internal/memctrl"
	"bbb/internal/memory"
	"bbb/internal/stats"
	"bbb/internal/trace"
)

// This file implements Buffered Epoch Persistency (BEP) with traditional
// *volatile* per-core persist buffers — the delegated-persist design the
// paper contrasts BBB against (§III-A: "traditional persist buffers are
// volatile as they lose content if power is lost", and require explicit
// epoch barriers because the PoV/PoP gap remains).
//
// Semantics implemented:
//
//   - Persisting stores enter the core's volatile persist buffer tagged
//     with the core's current epoch.
//   - Stores may coalesce only within the same epoch — coalescing across
//     an epoch boundary would reorder persists across the barrier.
//   - Entries drain to the NVMM WPQ strictly in epoch order: nothing from
//     epoch e+1 drains while epoch e still has entries.
//   - An epoch barrier is one cheap marker instruction (it waits only for
//     the core's store buffer, not for draining) — the buffered part.
//   - On a crash the buffers are LOST; only the WPQ survives. Durability
//     is therefore "some epoch prefix", which is exactly what epoch
//     persistency promises and why recovery code must be epoch-aware.
//
// Cross-core simplification (documented in DESIGN.md): when another core
// writes a buffered block, the victim buffer eagerly drains the block and
// every older entry before surrendering it, approximating DPO's ordering
// delegation without its timestamp machinery.

// vpbEntry is one volatile-persist-buffer record.
type vpbEntry struct {
	addr     memory.Addr
	data     [memory.LineSize]byte
	epoch    uint64
	draining bool
}

// vpb is one core's volatile persist buffer.
type vpb struct {
	coreID  int
	cap     int
	thresh  float64
	eng     *engine.Engine
	nvmm    *memctrl.Controller
	epoch   uint64
	entries []vpbEntry
	waiters []func()
	stats   *stats.Counters
}

func newVPB(coreID, capacity int, thresh float64, eng *engine.Engine, nvmm *memctrl.Controller) *vpb {
	return &vpb{
		coreID: coreID, cap: capacity, thresh: thresh,
		eng: eng, nvmm: nvmm, stats: stats.NewCounters(),
	}
}

func (v *vpb) counters() *stats.Counters { return v.stats }

func (v *vpb) find(addr memory.Addr) int {
	for i := len(v.entries) - 1; i >= 0; i-- {
		if v.entries[i].addr == addr {
			return i
		}
	}
	return -1
}

// canAccept: same-epoch resident blocks coalesce; otherwise a slot is
// needed.
func (v *vpb) canAccept(addr memory.Addr) bool {
	if i := v.find(addr); i >= 0 && v.entries[i].epoch == v.epoch && !v.entries[i].draining {
		return true
	}
	return len(v.entries) < v.cap
}

// put records a persisting store in the current epoch.
func (v *vpb) put(addr memory.Addr, data *[memory.LineSize]byte) bool {
	if i := v.find(addr); i >= 0 && v.entries[i].epoch == v.epoch && !v.entries[i].draining {
		v.entries[i].data = *data
		v.stats.Inc("vpb.coalesced")
		v.eng.EmitTrace(trace.KindBufCoalesce, v.coreID, addr, uint64(len(v.entries)))
		return true
	}
	if len(v.entries) >= v.cap {
		v.stats.Inc("vpb.rejections")
		v.eng.EmitTrace(trace.KindBufReject, v.coreID, addr, uint64(len(v.entries)))
		return false
	}
	v.entries = append(v.entries, vpbEntry{addr: addr, data: *data, epoch: v.epoch})
	v.stats.Inc("vpb.allocations")
	v.eng.EmitTrace(trace.KindBufAlloc, v.coreID, addr, uint64(len(v.entries)))
	v.eng.Metrics.Sample("vpb.occupancy", uint64(v.eng.Now()), v.coreID, uint64(len(v.entries)))
	v.maybeDrain()
	return true
}

func (v *vpb) waitSpace(fn func()) {
	if len(v.entries) < v.cap {
		v.eng.Schedule(0, fn)
		return
	}
	v.waiters = append(v.waiters, fn)
}

func (v *vpb) wake() {
	waiters := v.waiters
	v.waiters = nil
	for _, fn := range waiters {
		fn()
	}
}

func (v *vpb) epochBarrier() {
	v.epoch++
	v.stats.Inc("vpb.epochs")
}

func (v *vpb) numDraining() int {
	n := 0
	for i := range v.entries {
		if v.entries[i].draining {
			n++
		}
	}
	return n
}

// drainCandidate returns the oldest non-draining entry of the minimum
// epoch, or -1. Ordering rule: an entry may drain only when no entry of an
// earlier epoch remains (draining ones of that epoch count as remaining
// until their write is accepted).
func (v *vpb) drainCandidate() int {
	if len(v.entries) == 0 {
		return -1
	}
	minEpoch := v.entries[0].epoch
	for i := range v.entries {
		if v.entries[i].epoch < minEpoch {
			minEpoch = v.entries[i].epoch
		}
	}
	for i := range v.entries {
		if v.entries[i].epoch == minEpoch && !v.entries[i].draining {
			return i
		}
	}
	return -1 // the whole minimum epoch is in flight
}

func (v *vpb) threshold() int { return int(float64(v.cap) * v.thresh) }

func (v *vpb) maybeDrain() {
	for len(v.entries)-v.numDraining() > v.threshold() {
		i := v.drainCandidate()
		if i < 0 {
			return
		}
		v.startDrain(i)
	}
}

func (v *vpb) startDrain(i int) {
	v.entries[i].draining = true
	addr := v.entries[i].addr
	data := v.entries[i].data
	v.stats.Inc("vpb.drains")
	v.eng.EmitTrace(trace.KindBufDrain, v.coreID, addr, uint64(len(v.entries)))
	v.nvmm.Write(addr, data, func() {
		for j := range v.entries {
			if v.entries[j].addr == addr && v.entries[j].draining {
				v.entries = append(v.entries[:j], v.entries[j+1:]...)
				v.eng.Metrics.Sample("vpb.occupancy", uint64(v.eng.Now()), v.coreID, uint64(len(v.entries)))
				break
			}
		}
		v.wake()
		v.maybeDrain()
	})
}

// drainThrough initiates drains in buffer (FIFO/epoch) order until addr's
// newest entry is on its way to the WPQ. Because the controller applies a
// write's data at the moment Write is called, the WPQ observes these in
// initiation order, preserving epoch order even past in-flight drains.
// Used when another core takes the block or the LLC evicts it.
func (v *vpb) drainThrough(addr memory.Addr) {
	for {
		last := v.find(addr)
		if last < 0 || v.entries[last].draining {
			return
		}
		idx := -1
		for i := 0; i <= last; i++ {
			if !v.entries[i].draining {
				idx = i
				break
			}
		}
		if idx < 0 {
			return
		}
		v.stats.Inc("vpb.forced_drains")
		v.eng.EmitTrace(trace.KindBufForcedDrain, v.coreID, v.entries[idx].addr, uint64(len(v.entries)))
		v.startDrain(idx)
	}
}

// crashLoss discards the buffer, returning how many entries were lost —
// this is the volatility the paper's battery fixes.
func (v *vpb) crashLoss() int {
	n := len(v.entries)
	for i := range v.entries {
		v.eng.EmitTrace(trace.KindBufCrashLost, v.coreID, v.entries[i].addr, 0)
	}
	v.entries = nil
	v.stats.Add("vpb.crash_lost", uint64(n))
	return n
}
