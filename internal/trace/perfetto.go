package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Perfetto/Chrome trace-event export. The output is the classic JSON
// trace format ({"traceEvents":[...]}) that both chrome://tracing and
// ui.perfetto.dev load directly:
//
//   - every simulator event becomes a thread-scoped instant event on its
//     core's track (tid = core+1; tid 0 is the machine-wide track), and
//   - bbPB occupancy, WPQ depth, and the forced-drain count become
//     counter tracks, reconstructed from the Aux fields of the buffer and
//     WPQ events.
//
// Timestamps are simulated cycles passed through as microseconds (the
// format's ts unit); there is no wall-clock anywhere, so exports of the
// same run are byte-identical. Entries are serialized one struct at a
// time (fixed field order — no map marshalling).

// PerfettoMeta labels the exported trace.
type PerfettoMeta struct {
	// Process names the top-level track group, e.g. "bbbsim counter/bbb".
	Process string
}

// pfEvent is one trace-event entry. Field order here is serialization
// order, which golden tests pin.
type pfEvent struct {
	Ph   string `json:"ph"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
	Ts   uint64 `json:"ts"`
	Name string `json:"name"`
	S    string `json:"s,omitempty"`
	Args any    `json:"args,omitempty"`
}

type pfNameArgs struct {
	Name string `json:"name"`
}

type pfInstantArgs struct {
	Addr string `json:"addr"`
	Aux  uint64 `json:"aux"`
}

type pfCounterArgs struct {
	Value uint64 `json:"value"`
}

// WritePerfetto renders events as a Perfetto-loadable JSON trace.
func WritePerfetto(w io.Writer, events []Event, meta PerfettoMeta) error {
	proc := meta.Process
	if proc == "" {
		proc = "bbb-sim"
	}
	maxCore := -1
	for _, e := range events {
		if int(e.Core) > maxCore {
			maxCore = int(e.Core)
		}
	}

	ew := &entryWriter{w: w}
	ew.begin()
	ew.entry(pfEvent{Ph: "M", Pid: 0, Tid: 0, Name: "process_name", Args: pfNameArgs{Name: proc}})
	ew.entry(pfEvent{Ph: "M", Pid: 0, Tid: 0, Name: "thread_name", Args: pfNameArgs{Name: "machine"}})
	for c := 0; c <= maxCore; c++ {
		ew.entry(pfEvent{Ph: "M", Pid: 0, Tid: c + 1, Name: "thread_name",
			Args: pfNameArgs{Name: fmt.Sprintf("core %d", c)}})
	}

	var forcedDrains uint64
	for _, e := range events {
		tid := int(e.Core) + 1
		ew.entry(pfEvent{Ph: "i", Pid: 0, Tid: tid, Ts: e.Cycle, Name: e.Kind.String(), S: "t",
			Args: pfInstantArgs{Addr: fmt.Sprintf("%#x", e.Addr), Aux: e.Aux}})
		switch e.Kind {
		case KindBufAlloc, KindBufCoalesce, KindBufDrain, KindBufForcedDrain:
			// Aux carries the bbPB occupancy after the operation; render
			// it as a per-core counter track.
			ew.entry(pfEvent{Ph: "C", Pid: 0, Tid: 0, Ts: e.Cycle,
				Name: fmt.Sprintf("bbpb occupancy c%d", e.Core),
				Args: pfCounterArgs{Value: e.Aux}})
			if e.Kind == KindBufForcedDrain {
				forcedDrains++
				ew.entry(pfEvent{Ph: "C", Pid: 0, Tid: 0, Ts: e.Cycle,
					Name: "forced drains", Args: pfCounterArgs{Value: forcedDrains}})
			}
		case KindWPQInsert, KindWPQDrain:
			// Aux carries the WPQ depth after the operation.
			ew.entry(pfEvent{Ph: "C", Pid: 0, Tid: 0, Ts: e.Cycle,
				Name: "wpq depth", Args: pfCounterArgs{Value: e.Aux}})
		}
	}
	ew.end()
	return ew.err
}

// entryWriter emits the {"traceEvents":[...]} envelope with correct
// comma placement, swallowing work after the first error.
type entryWriter struct {
	w     io.Writer
	wrote bool
	err   error
}

func (ew *entryWriter) begin() {
	if ew.err == nil {
		_, ew.err = io.WriteString(ew.w, "{\"traceEvents\":[\n")
	}
}

func (ew *entryWriter) entry(e pfEvent) {
	if ew.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		ew.err = err
		return
	}
	if ew.wrote {
		if _, ew.err = io.WriteString(ew.w, ",\n"); ew.err != nil {
			return
		}
	}
	ew.wrote = true
	_, ew.err = ew.w.Write(b)
}

func (ew *entryWriter) end() {
	if ew.err == nil {
		_, ew.err = io.WriteString(ew.w, "\n]}\n")
	}
}
