package trace

// Filtering helpers shared by cmd/bbbtrace and the test suite, replacing
// the ad-hoc loops each caller used to write.

// EventsByKind returns the events of kind k, preserving order.
func EventsByKind(events []Event, k Kind) []Event {
	var out []Event
	for _, e := range events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// EventsByCore returns the events attributed to core, preserving order.
// Pass -1 for machine-wide events.
func EventsByCore(events []Event, core int) []Event {
	var out []Event
	for _, e := range events {
		if int(e.Core) == core {
			out = append(out, e)
		}
	}
	return out
}

// EventsInRange returns the events with first <= Cycle <= last,
// preserving order.
func EventsInRange(events []Event, first, last uint64) []Event {
	var out []Event
	for _, e := range events {
		if e.Cycle >= first && e.Cycle <= last {
			out = append(out, e)
		}
	}
	return out
}

// CountKinds tallies events per kind (the slice analogue of
// Recorder.CountByKind).
func CountKinds(events []Event) map[Kind]int {
	out := map[Kind]int{}
	for _, e := range events {
		out[e.Kind]++
	}
	return out
}
