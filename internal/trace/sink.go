package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Sink consumes a stream of trace events. Sinks are single-goroutine,
// matching the simulator's deterministic event loop.
type Sink interface {
	// Write accepts one event. Implementations must not reorder events.
	Write(e Event)
	// Flush pushes any buffered output to its destination.
	Flush() error
}

// RetentionSink is a Sink that can replay what it holds.
type RetentionSink interface {
	Sink
	Events() []Event
	Len() int
}

// RingSink keeps the most recent capacity events — the tail a user
// debugging a persistency bug wants, at fixed memory cost.
type RingSink struct {
	ring    []Event
	next    int
	wrapped bool
}

// NewRing returns a ring sink keeping the last capacity events.
func NewRing(capacity int) *RingSink {
	if capacity <= 0 {
		panic("trace: capacity must be positive")
	}
	return &RingSink{ring: make([]Event, capacity)}
}

// Write implements Sink (allocation-free).
func (s *RingSink) Write(e Event) {
	s.ring[s.next] = e
	s.next++
	if s.next == len(s.ring) {
		s.next = 0
		s.wrapped = true
	}
}

// Flush implements Sink (nothing buffered).
func (s *RingSink) Flush() error { return nil }

// Len reports how many events are retained.
func (s *RingSink) Len() int {
	if s.wrapped {
		return len(s.ring)
	}
	return s.next
}

// Events returns the retained events, oldest first.
func (s *RingSink) Events() []Event {
	if !s.wrapped {
		return append([]Event(nil), s.ring[:s.next]...)
	}
	out := make([]Event, 0, len(s.ring))
	out = append(out, s.ring[s.next:]...)
	out = append(out, s.ring[:s.next]...)
	return out
}

// BufferSink retains the entire event stream in memory.
type BufferSink struct {
	events []Event
}

// Write implements Sink.
func (s *BufferSink) Write(e Event) { s.events = append(s.events, e) }

// Flush implements Sink (nothing buffered externally).
func (s *BufferSink) Flush() error { return nil }

// Len reports how many events are retained.
func (s *BufferSink) Len() int { return len(s.events) }

// Events returns the retained events, oldest first.
func (s *BufferSink) Events() []Event { return append([]Event(nil), s.events...) }

// JSONLSink streams events as JSON lines (one object per event) to an
// io.Writer, typically a file. Fields are written in a fixed order by
// hand — no map marshalling — so output is byte-deterministic, and every
// field is a cycle stamp or architectural value (never wall-clock time).
type JSONLSink struct {
	w   *bufio.Writer
	err error
}

// NewJSONL returns a sink streaming JSON lines to w.
func NewJSONL(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// Write implements Sink.
func (s *JSONLSink) Write(e Event) {
	if s.err != nil {
		return
	}
	_, s.err = fmt.Fprintf(s.w, `{"cycle":%d,"kind":%q,"core":%d,"addr":"%#x","aux":%d}`+"\n",
		e.Cycle, e.Kind.String(), e.Core, e.Addr, e.Aux)
}

// Flush implements Sink, reporting the first write error encountered.
func (s *JSONLSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// jsonlEvent mirrors the JSONL wire format for parsing.
type jsonlEvent struct {
	Cycle uint64 `json:"cycle"`
	Kind  string `json:"kind"`
	Core  int    `json:"core"`
	Addr  string `json:"addr"`
	Aux   uint64 `json:"aux"`
}

// ParseJSONL reads a JSON-lines trace stream (the JSONLSink format) back
// into events. Blank lines are skipped; any malformed line is an error.
func ParseJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		k, ok := ParseKind(je.Kind)
		if !ok {
			return nil, fmt.Errorf("trace: line %d: unknown kind %q", line, je.Kind)
		}
		if je.Core < -1 || je.Core > MaxCore {
			return nil, fmt.Errorf("trace: line %d: core %d outside [-1, %d]", line, je.Core, MaxCore)
		}
		addr, err := strconv.ParseUint(je.Addr, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad addr %q: %w", line, je.Addr, err)
		}
		out = append(out, Event{Cycle: je.Cycle, Kind: k, Core: int16(je.Core), Addr: addr, Aux: je.Aux})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return out, nil
}
