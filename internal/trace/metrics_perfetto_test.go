package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"bbb/internal/stats"
)

func sampleMetrics() *stats.Metrics {
	m := stats.NewMetrics()
	m.Sample("bbpb.occupancy", 100, 0, 3)
	m.Sample("bbpb.occupancy", 200, 0, 5)
	m.Sample("bbpb.occupancy", 150, 1, 2)
	m.Sample("wpq.depth", 400, -1, 7)
	win := stats.NewWindowed(1000, 500)
	win.Observe(250, 400) // window 0, under SLO
	win.Observe(800, 900) // window 0, over
	win.Observe(1500, 90) // window 1, under
	m.MergeWindowed("kv.lat.win", win)
	return m
}

// TestWriteMetricsPerfettoShape pins the counter-track export: every gauge
// point becomes one counter entry on a per-core track, every window two
// (count and over_slo) stamped at the window's end, all under a named
// process.
func TestWriteMetricsPerfettoShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetricsPerfetto(&buf, sampleMetrics(), PerfettoMeta{Process: "test"}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
			Ts   uint64 `json:"ts"`
			Args struct {
				Value *float64 `json:"value"`
				Name  string   `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	tracks := map[string]int{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Args.Name != "test" {
				t.Fatalf("process_name = %q, want test", e.Args.Name)
			}
		case "C":
			if e.Args.Value == nil {
				t.Fatalf("counter %q has no value", e.Name)
			}
			tracks[e.Name]++
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	want := map[string]int{
		"bbpb.occupancy c0":   2,
		"bbpb.occupancy c1":   1,
		"wpq.depth":           1, // core -1 is the machine-wide track
		"kv.lat.win count":    2,
		"kv.lat.win over_slo": 2,
	}
	for name, n := range want {
		if tracks[name] != n {
			t.Fatalf("track %q has %d entries, want %d (all: %v)", name, tracks[name], n, tracks)
		}
	}
	// Windowed counters stamp at the window end, not its start.
	for _, e := range doc.TraceEvents {
		if e.Name == "kv.lat.win count" && e.Ts != 999 && e.Ts != 1999 {
			t.Fatalf("window counter at ts %d, want a window end (999 or 1999)", e.Ts)
		}
	}
}

func TestWriteMetricsPerfettoDeterministic(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		if err := WriteMetricsPerfetto(&buf, sampleMetrics(), PerfettoMeta{}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render() != render() {
		t.Fatal("metrics Perfetto export not byte-identical across runs")
	}
}
