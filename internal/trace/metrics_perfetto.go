package trace

import (
	"fmt"
	"io"

	"bbb/internal/stats"
)

// WriteMetricsPerfetto renders a run's Metrics registry — gauge timelines
// and windowed latency series — as Perfetto counter tracks, the
// time-series companion to WritePerfetto's event export. Output order is
// the registries' (registration order, then sample order), so exports of
// the same run are byte-identical.
//
//   - Every GaugeSeries becomes one counter track per sampled core
//     ("<name>" machine-wide, "<name> c<core>" per core), e.g. the bbPB
//     occupancy timeline or kv.lat.win.p50.
//   - Every Windowed series becomes two counter tracks stamped at each
//     window's end: "<name> count" (samples in the window) and
//     "<name> over_slo" (samples beyond the SLO bound).
func WriteMetricsPerfetto(w io.Writer, m *stats.Metrics, meta PerfettoMeta) error {
	proc := meta.Process
	if proc == "" {
		proc = "bbb-metrics"
	}
	ew := &entryWriter{w: w}
	ew.begin()
	ew.entry(pfEvent{Ph: "M", Pid: 0, Tid: 0, Name: "process_name", Args: pfNameArgs{Name: proc}})
	for _, name := range m.GaugeNames() {
		g := m.Gauge(name)
		for _, pt := range g.Points() {
			track := name
			if pt.Core >= 0 {
				track = fmt.Sprintf("%s c%d", name, pt.Core)
			}
			ew.entry(pfEvent{Ph: "C", Pid: 0, Tid: 0, Ts: pt.Cycle, Name: track,
				Args: pfCounterArgs{Value: pt.Value}})
		}
	}
	for _, name := range m.WindowedNames() {
		win := m.Windowed(name)
		width := win.Width()
		for _, snap := range win.Snapshots() {
			end := snap.Start + width - 1
			ew.entry(pfEvent{Ph: "C", Pid: 0, Tid: 0, Ts: end, Name: name + " count",
				Args: pfCounterArgs{Value: snap.Count}})
			ew.entry(pfEvent{Ph: "C", Pid: 0, Tid: 0, Ts: end, Name: name + " over_slo",
				Args: pfCounterArgs{Value: snap.Over}})
		}
	}
	ew.end()
	return ew.err
}
