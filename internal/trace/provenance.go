package trace

import "bbb/internal/stats"

// Durability provenance: the observability heart of the BBB argument.
// The paper's §III gap is the distance between the point of visibility
// (a store commits to the L1D and other cores can see it) and the point
// of persistency (the value is safe across power failure). Provenance
// watches the event stream, tags every persisting-store commit with its
// visibility cycle, matches it to the event that made the line durable,
// and feeds the per-store gap into the persist.vis_to_dur_gap histogram:
//
//   - BBB/BBB-proc: the bbPB allocation (or coalesce) in the same commit
//     cycle — the near-zero gap the paper claims;
//   - eADR/NVCache: the commit itself (battery covers the caches);
//   - PMEM/BEP: acceptance into the ADR write-pending queue, which a
//     line only reaches via clwb, eviction, or an epoch drain — the
//     long, workload-dependent tail BBB removes;
//   - any scheme: a crash-time battery/ADR drain (flush-on-fail) also
//     makes a pending line durable, at the crash cycle.
//
// Stores whose line never reaches the durability point (still dirty in a
// volatile cache when the machine stops) stay unresolved and are counted,
// never silently dropped.

// DurabilityPoint says which event marks a committed store durable.
type DurabilityPoint uint8

const (
	// DurableAtCommit: visibility and persistency coincide (eADR,
	// NVCache — battery-backed or nonvolatile caches).
	DurableAtCommit DurabilityPoint = iota
	// DurableAtBufAlloc: bbPB allocation/coalesce persists the store
	// (BBB, BBB-proc).
	DurableAtBufAlloc
	// DurableAtWPQ: acceptance into the ADR write-pending queue persists
	// the line (PMEM, BEP).
	DurableAtWPQ
)

func (p DurabilityPoint) String() string {
	switch p {
	case DurableAtCommit:
		return "at-commit"
	case DurableAtBufAlloc:
		return "at-bbpb-alloc"
	case DurableAtWPQ:
		return "at-wpq"
	default:
		return "unknown"
	}
}

// Provenance is a Sink that matches store commits to their durability
// events. Attach it to a Recorder; read the result from the Metrics
// registry (histogram persist.vis_to_dur_gap) and Resolved/Unresolved.
type Provenance struct {
	point   DurabilityPoint
	metrics *stats.Metrics
	// pending maps a line address to the visibility cycles of committed
	// stores to that line that are not yet durable.
	pending      map[uint64][]uint64
	pendingCount uint64
	resolved     uint64
}

// NewProvenance returns a tracker that resolves durability at point and
// observes gaps into m (which may be nil to only count).
func NewProvenance(point DurabilityPoint, m *stats.Metrics) *Provenance {
	return &Provenance{point: point, metrics: m, pending: make(map[uint64][]uint64)}
}

// Point returns the configured durability point.
func (p *Provenance) Point() DurabilityPoint { return p.point }

// Write implements Sink.
func (p *Provenance) Write(e Event) {
	switch e.Kind {
	// KindAtomic marks CAS attempts (including failed and non-persistent
	// ones); the coherence layer emits a paired KindStoreCommit for the
	// CAS writes that actually persist, so only commits are tracked here.
	case KindStoreCommit:
		if p.point == DurableAtCommit {
			p.metrics.Observe("persist.vis_to_dur_gap", 0)
			p.resolved++
			return
		}
		p.pending[e.Addr] = append(p.pending[e.Addr], e.Cycle)
		p.pendingCount++
	case KindBufAlloc, KindBufCoalesce:
		if p.point == DurableAtBufAlloc {
			p.resolve(e.Addr, e.Cycle)
		}
	case KindWPQInsert:
		if p.point == DurableAtWPQ {
			p.resolve(e.Addr, e.Cycle)
		}
	case KindCrashDrain:
		// Flush-on-fail: the battery/ADR drain persists the line now,
		// whatever the scheme's steady-state durability point.
		p.resolve(e.Addr, e.Cycle)
	}
}

// Flush implements Sink.
func (p *Provenance) Flush() error { return nil }

func (p *Provenance) resolve(addr, cycle uint64) {
	cycles := p.pending[addr]
	if len(cycles) == 0 {
		return
	}
	for _, c := range cycles {
		gap := uint64(0)
		if cycle > c {
			gap = cycle - c
		}
		p.metrics.Observe("persist.vis_to_dur_gap", gap)
	}
	p.resolved += uint64(len(cycles))
	p.pendingCount -= uint64(len(cycles))
	delete(p.pending, addr)
}

// Resolved returns how many committed stores have been matched to a
// durability event.
func (p *Provenance) Resolved() uint64 { return p.resolved }

// Unresolved returns how many committed stores are still awaiting one —
// at end of run these are the stores that were visible but would have
// been lost without flush-on-fail.
func (p *Provenance) Unresolved() uint64 { return p.pendingCount }
