package trace

import (
	"strings"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Emit(1, KindStoreCommit, 0, 0x40, 0) // must not panic
	if r.Len() != 0 {
		t.Fatal("nil recorder has length")
	}
	if r.Events() != nil {
		t.Fatal("nil recorder has events")
	}
}

func TestEmitAndOrder(t *testing.T) {
	r := New(8)
	for i := uint64(0); i < 5; i++ {
		r.Emit(i, KindBufAlloc, int(i%2), 0x100+i*64, i)
	}
	evs := r.Events()
	if len(evs) != 5 || r.Len() != 5 {
		t.Fatalf("len = %d/%d", len(evs), r.Len())
	}
	for i, e := range evs {
		if e.Cycle != uint64(i) {
			t.Fatalf("event %d out of order: %+v", i, e)
		}
	}
	if r.Emitted != 5 {
		t.Fatalf("Emitted = %d", r.Emitted)
	}
}

func TestRingWraps(t *testing.T) {
	r := New(4)
	for i := uint64(0); i < 10; i++ {
		r.Emit(i, KindWPQDrain, -1, i, 0)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	if evs[0].Cycle != 6 || evs[3].Cycle != 9 {
		t.Fatalf("wrong window: %v..%v", evs[0].Cycle, evs[3].Cycle)
	}
	if r.Emitted != 10 {
		t.Fatalf("Emitted = %d", r.Emitted)
	}
}

func TestDumpFormat(t *testing.T) {
	r := New(4)
	r.Emit(42, KindBufDrain, 3, 0x200000000, 0)
	r.Emit(43, KindLLCEvict, -1, 0x200000040, 1)
	var b strings.Builder
	r.Dump(&b)
	out := b.String()
	if !strings.Contains(out, "pb-drain") || !strings.Contains(out, "llc-evict") {
		t.Fatalf("dump missing kinds:\n%s", out)
	}
	if !strings.Contains(out, "c03") || !strings.Contains(out, "  -") {
		t.Fatalf("dump core formatting wrong:\n%s", out)
	}
}

func TestCountByKind(t *testing.T) {
	r := New(16)
	r.Emit(1, KindBufAlloc, 0, 0, 0)
	r.Emit(2, KindBufAlloc, 1, 0, 0)
	r.Emit(3, KindBufDrain, 0, 0, 0)
	c := r.CountByKind()
	if c[KindBufAlloc] != 2 || c[KindBufDrain] != 1 {
		t.Fatalf("counts = %v", c)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindNone + 1; k <= KindCrashDrain; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

func TestBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(0)
}
