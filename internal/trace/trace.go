// Package trace provides the simulator's event-tracing layer. When
// enabled, components emit one fixed-size record per interesting
// microarchitectural event (persisting-store commits, bbPB
// allocations/coalesces/drains/migrations, coherence invalidations, WPQ
// traffic, epoch marks, crash drains). Records flow through a Recorder
// into pluggable sinks — a bounded ring for tail debugging, a full
// in-memory buffer for analysis, or a JSON-lines stream for offline
// tooling — and can be exported as a Perfetto/Chrome trace or fed to the
// durability-provenance tracker. Everything is cycle-stamped: no wall
// clock anywhere, so traces of the same seed are byte-identical.
package trace

import (
	"fmt"
	"io"
	"math"
)

// Kind classifies an event.
type Kind uint8

// Event kinds, grouped by component.
const (
	KindNone Kind = iota
	// Core events.
	KindStoreCommit // a persisting store wrote the L1D (Aux = value low bits)
	KindClwb
	KindFence
	KindEpochMark
	KindAtomic
	// Persist-buffer events. Aux = buffer occupancy after the operation,
	// except KindBufMigrate (Aux = destination core).
	KindBufAlloc
	KindBufCoalesce
	KindBufDrain
	KindBufForcedDrain
	KindBufMigrate // Aux = destination core
	KindBufReject
	KindBufCrashLost
	// Coherence events.
	KindInvalidate // Aux = requesting core
	KindIntervene  // Aux = requesting core
	KindLLCEvict   // Aux = 1 if writeback, 0 if dropped
	// Memory-controller events. Aux = WPQ depth after the operation.
	KindWPQInsert
	KindWPQDrain
	KindCrashDrain
)

func (k Kind) String() string {
	switch k {
	case KindStoreCommit:
		return "store-commit"
	case KindClwb:
		return "clwb"
	case KindFence:
		return "fence"
	case KindEpochMark:
		return "epoch"
	case KindAtomic:
		return "atomic"
	case KindBufAlloc:
		return "pb-alloc"
	case KindBufCoalesce:
		return "pb-coalesce"
	case KindBufDrain:
		return "pb-drain"
	case KindBufForcedDrain:
		return "pb-forced-drain"
	case KindBufMigrate:
		return "pb-migrate"
	case KindBufReject:
		return "pb-reject"
	case KindBufCrashLost:
		return "pb-crash-lost"
	case KindInvalidate:
		return "invalidate"
	case KindIntervene:
		return "intervene"
	case KindLLCEvict:
		return "llc-evict"
	case KindWPQInsert:
		return "wpq-insert"
	case KindWPQDrain:
		return "wpq-drain"
	case KindCrashDrain:
		return "crash-drain"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind inverts Kind.String. It reports false for unknown names.
func ParseKind(s string) (Kind, bool) {
	for k := KindNone + 1; k <= KindCrashDrain; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return KindNone, false
}

// Event is one fixed-size trace record.
type Event struct {
	Cycle uint64
	Kind  Kind
	Core  int16 // -1 when not core-specific
	Addr  uint64
	Aux   uint64
}

// MaxCore is the largest core id an Event can carry; Emit panics beyond
// it rather than silently truncating (a 40000-core machine would
// otherwise alias down to a small id and corrupt every per-core view).
const MaxCore = math.MaxInt16

// Recorder is the tracing front-end. Every Emit lands in the retention
// sink (ring or full buffer, queryable afterwards) and is forwarded to
// any attached streaming sinks. A nil *Recorder is a valid, disabled
// recorder: Emit on nil is an allocation-free no-op, so components hold
// one unconditionally.
type Recorder struct {
	retain RetentionSink
	sinks  []Sink
	// Emitted counts all events ever emitted, including ones a ring
	// retention sink has overwritten.
	Emitted uint64
}

// New returns a recorder whose retention sink keeps the last capacity
// events (a ring — the cheap tail-debugging default).
func New(capacity int) *Recorder {
	if capacity <= 0 {
		panic("trace: capacity must be positive")
	}
	return &Recorder{retain: NewRing(capacity)}
}

// NewFull returns a recorder that retains the entire event stream
// in memory, for analysis and export.
func NewFull() *Recorder {
	return &Recorder{retain: &BufferSink{}}
}

// Attach adds a streaming sink that receives every subsequent event
// (in addition to the retention sink). Safe on a nil recorder (no-op).
func (r *Recorder) Attach(s Sink) {
	if r == nil {
		return
	}
	r.sinks = append(r.sinks, s)
}

// Emit records one event. Safe on a nil recorder. It panics if core is
// outside [-1, MaxCore]: Event stores cores as int16 and silent
// truncation would misattribute events.
func (r *Recorder) Emit(cycle uint64, kind Kind, core int, addr, aux uint64) {
	if r == nil {
		return
	}
	if core < -1 || core > MaxCore {
		panic(fmt.Sprintf("trace: core %d outside [-1, %d]", core, MaxCore))
	}
	e := Event{Cycle: cycle, Kind: kind, Core: int16(core), Addr: addr, Aux: aux}
	r.retain.Write(e)
	for _, s := range r.sinks {
		s.Write(e)
	}
	r.Emitted++
}

// Flush flushes the retention sink and every attached sink, returning
// the first error. Safe on a nil recorder.
func (r *Recorder) Flush() error {
	if r == nil {
		return nil
	}
	err := r.retain.Flush()
	for _, s := range r.sinks {
		if e := s.Flush(); err == nil {
			err = e
		}
	}
	return err
}

// Len reports how many events are currently retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return r.retain.Len()
}

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.retain.Events()
}

// Dump writes the retained events, one per line, oldest first.
func (r *Recorder) Dump(w io.Writer) {
	for _, e := range r.Events() {
		core := "  -"
		if e.Core >= 0 {
			core = fmt.Sprintf("c%02d", e.Core)
		}
		fmt.Fprintf(w, "%12d %s %-16s addr=%#012x aux=%d\n", e.Cycle, core, e.Kind, e.Addr, e.Aux)
	}
}

// CountByKind tallies retained events per kind.
func (r *Recorder) CountByKind() map[Kind]int {
	out := map[Kind]int{}
	for _, e := range r.Events() {
		out[e.Kind]++
	}
	return out
}
