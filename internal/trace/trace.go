// Package trace provides a lightweight ring-buffer event recorder for the
// simulator. When enabled, components emit one fixed-size record per
// interesting microarchitectural event (persisting-store commits, bbPB
// allocations/coalesces/drains/migrations, coherence invalidations, WPQ
// traffic, epoch marks, crash drains), and tools can dump the tail of the
// run — the kind of observability a user debugging a persistency bug needs.
package trace

import (
	"fmt"
	"io"
)

// Kind classifies an event.
type Kind uint8

// Event kinds, grouped by component.
const (
	KindNone Kind = iota
	// Core events.
	KindStoreCommit // a persisting store wrote the L1D (Aux = value low bits)
	KindClwb
	KindFence
	KindEpochMark
	KindAtomic
	// Persist-buffer events.
	KindBufAlloc
	KindBufCoalesce
	KindBufDrain
	KindBufForcedDrain
	KindBufMigrate // Aux = destination core
	KindBufReject
	KindBufCrashLost
	// Coherence events.
	KindInvalidate // Aux = requesting core
	KindIntervene  // Aux = requesting core
	KindLLCEvict   // Aux = 1 if writeback, 0 if dropped
	// Memory-controller events.
	KindWPQInsert
	KindWPQDrain
	KindCrashDrain
)

func (k Kind) String() string {
	switch k {
	case KindStoreCommit:
		return "store-commit"
	case KindClwb:
		return "clwb"
	case KindFence:
		return "fence"
	case KindEpochMark:
		return "epoch"
	case KindAtomic:
		return "atomic"
	case KindBufAlloc:
		return "pb-alloc"
	case KindBufCoalesce:
		return "pb-coalesce"
	case KindBufDrain:
		return "pb-drain"
	case KindBufForcedDrain:
		return "pb-forced-drain"
	case KindBufMigrate:
		return "pb-migrate"
	case KindBufReject:
		return "pb-reject"
	case KindBufCrashLost:
		return "pb-crash-lost"
	case KindInvalidate:
		return "invalidate"
	case KindIntervene:
		return "intervene"
	case KindLLCEvict:
		return "llc-evict"
	case KindWPQInsert:
		return "wpq-insert"
	case KindWPQDrain:
		return "wpq-drain"
	case KindCrashDrain:
		return "crash-drain"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one fixed-size trace record.
type Event struct {
	Cycle uint64
	Kind  Kind
	Core  int16 // -1 when not core-specific
	Addr  uint64
	Aux   uint64
}

// Recorder is a fixed-capacity ring buffer of events. A nil *Recorder is a
// valid, disabled recorder: Emit on nil is a no-op, so components can hold
// one unconditionally.
type Recorder struct {
	ring    []Event
	next    int
	wrapped bool
	// Emitted counts all events ever emitted, including overwritten ones.
	Emitted uint64
}

// New returns a recorder keeping the last capacity events.
func New(capacity int) *Recorder {
	if capacity <= 0 {
		panic("trace: capacity must be positive")
	}
	return &Recorder{ring: make([]Event, capacity)}
}

// Emit records one event. Safe on a nil recorder.
func (r *Recorder) Emit(cycle uint64, kind Kind, core int, addr, aux uint64) {
	if r == nil {
		return
	}
	r.ring[r.next] = Event{Cycle: cycle, Kind: kind, Core: int16(core), Addr: addr, Aux: aux}
	r.next++
	r.Emitted++
	if r.next == len(r.ring) {
		r.next = 0
		r.wrapped = true
	}
}

// Len reports how many events are currently retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	if r.wrapped {
		return len(r.ring)
	}
	return r.next
}

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	if !r.wrapped {
		return append([]Event(nil), r.ring[:r.next]...)
	}
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Dump writes the retained events, one per line, oldest first.
func (r *Recorder) Dump(w io.Writer) {
	for _, e := range r.Events() {
		core := "  -"
		if e.Core >= 0 {
			core = fmt.Sprintf("c%02d", e.Core)
		}
		fmt.Fprintf(w, "%12d %s %-16s addr=%#012x aux=%d\n", e.Cycle, core, e.Kind, e.Addr, e.Aux)
	}
}

// CountByKind tallies retained events per kind.
func (r *Recorder) CountByKind() map[Kind]int {
	out := map[Kind]int{}
	for _, e := range r.Events() {
		out[e.Kind]++
	}
	return out
}
